//! # ftsim-analysis — fault-site sensitivity and outcome analysis
//!
//! The simulator's sweeps answer "how fast is the redundant datapath";
//! this crate answers the reliability questions the follow-on literature
//! treats as primary: **which injection sites are most vulnerable, how
//! long does detection take, and did an escaped fault actually corrupt
//! anything?** It consumes the flat [`RunRecord`](ftsim::harness::RunRecord)s
//! every sweep already produces — a one-shot
//! [`Experiment`](ftsim::harness::Experiment) grid, an exported
//! CSV/JSON, or a daemon job's `cells.csv`/`results.csv` — and produces:
//!
//! * **outcome classification** ([`classify`], [`CellOutcome`]) — each
//!   cell lands in the masked / detected / SDC / hang taxonomy. The
//!   silent-data-corruption call compares the cell's committed-state
//!   digest with its family's fault-free baseline at equal retirement
//!   counts, so an escaped fault that left no architectural trace is
//!   honestly reported as masked;
//! * **per-site sensitivity tables** ([`SensitivityTable`]) — fate
//!   probabilities per (model, site mix, injection site), with Wilson
//!   95% intervals ([`ftsim_stats::wilson_interval`]);
//! * **detection-latency distributions** ([`LatencyReport`]) — mean and
//!   percentile injection→detection latencies in cycles and retired
//!   instructions, per (model, site mix);
//! * **MTTF extrapolation** ([`MttfTable`]) — SDC probability per cell
//!   and mean instructions/cycles between escaped faults, per model ×
//!   fault rate.
//!
//! Everything is a pure function of the records ([`analyze_records`]),
//! which is the interoperability guarantee behind `ftsimd report`: the
//! daemon's report of a job and [`Analyze::analyze`] on the equivalent
//! one-shot grid render identical tables.
//!
//! # Examples
//!
//! ```
//! use ftsim::core::MachineConfig;
//! use ftsim::harness::Experiment;
//! use ftsim::workloads::profile;
//! use ftsim_analysis::{Analyze, CellOutcome};
//!
//! let report = Experiment::grid()
//!     .workloads([profile("gcc").unwrap()])
//!     .models([MachineConfig::ss2()])
//!     .fault_rates([0.0, 5_000.0])
//!     .budget(2_000)
//!     .analyze()
//!     .unwrap();
//! assert_eq!(report.cells, 2);
//! assert_eq!(report.outcome_count(CellOutcome::Sdc), 0); // R = 2 protects
//! println!("{}", report.render());
//! ```

#![warn(missing_docs)]

mod outcome;
mod report;
mod sensitivity;

pub use outcome::{classify, BaselineIndex, CellOutcome};
pub use report::{
    analyze_records, AnalysisReport, Analyze, LatencyReport, LatencyRow, MttfRow, MttfTable,
};
pub use sensitivity::{SensitivityTable, SiteRow, Z_95};
