//! Cell-level outcome classification: the masked / detected / SDC / hang
//! taxonomy.
//!
//! A [`RunRecord`] carries everything needed to classify its cell after
//! the fact — fault fate counts, the final-state digest, the retirement
//! count, and the error message of a failed run — so classification is a
//! pure function of the record set. The silent-data-corruption call
//! compares the cell's committed-state digest against its *family
//! baseline*: any successful cell of the same (workload, model, budget)
//! in which no fault fired, typically the grid's rate-0 cell. Because an
//! injector that never fires leaves the machine bit-identical to a
//! fault-free run, every such cell digests identically and any of them
//! can anchor the comparison.

use ftsim::harness::RunRecord;
use std::collections::HashMap;

/// What ultimately happened to one grid cell.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CellOutcome {
    /// No fault was injected (rate 0, or no Bernoulli draw fired).
    FaultFree,
    /// Faults were injected but none needed recovery and committed state
    /// matches the fault-free baseline: everything was architecturally
    /// masked or squashed.
    Masked,
    /// At least one fault was caught (commit-stage detection, majority
    /// election, or the control-flow check) and committed state matches
    /// the fault-free baseline — recovery worked.
    Detected,
    /// Committed state diverged from the fault-free baseline (or faults
    /// escaped and no baseline was available to exonerate them): silent
    /// data corruption.
    Sdc,
    /// The run exhausted its cycle budget or the commit watchdog fired
    /// before reaching its instruction budget — the machine hung.
    Hang,
    /// The cell failed for a reason other than a hang (e.g. an oracle
    /// mismatch raised as an error).
    Failed,
}

impl CellOutcome {
    /// All outcomes, in reporting order.
    pub const ALL: [CellOutcome; 6] = [
        CellOutcome::FaultFree,
        CellOutcome::Masked,
        CellOutcome::Detected,
        CellOutcome::Sdc,
        CellOutcome::Hang,
        CellOutcome::Failed,
    ];

    /// A short stable label for tables and reports.
    pub fn label(self) -> &'static str {
        match self {
            CellOutcome::FaultFree => "fault-free",
            CellOutcome::Masked => "masked",
            CellOutcome::Detected => "detected",
            CellOutcome::Sdc => "sdc",
            CellOutcome::Hang => "hang",
            CellOutcome::Failed => "failed",
        }
    }
}

/// Per-family fault-free final states, indexed for SDC classification.
#[derive(Debug, Default)]
pub struct BaselineIndex {
    /// (workload, suite, model, budget) → (retired instructions, digest).
    digests: HashMap<(String, String, String, u64), (u64, u64)>,
}

impl BaselineIndex {
    /// Collects one baseline per family from the record set: the first
    /// successful cell in which no fault fired.
    pub fn build(records: &[RunRecord]) -> Self {
        let mut digests = HashMap::new();
        for r in records {
            if r.ok() && r.faults_injected == 0 {
                digests
                    .entry(family_key(r))
                    .or_insert((r.retired_instructions, r.state_digest));
            }
        }
        Self { digests }
    }

    /// The fault-free (retired, digest) pair for `record`'s family, if
    /// the record set contains one.
    pub fn lookup(&self, record: &RunRecord) -> Option<(u64, u64)> {
        self.digests.get(&family_key(record)).copied()
    }
}

fn family_key(r: &RunRecord) -> (String, String, String, u64) {
    (
        r.workload.clone(),
        r.suite.clone(),
        r.model.clone(),
        r.budget,
    )
}

/// Classifies one cell against the family baselines (see the module
/// docs for the decision rules).
pub fn classify(record: &RunRecord, baselines: &BaselineIndex) -> CellOutcome {
    if !record.ok() {
        // Records carry only the rendered error string, so hang detection
        // substring-matches ftsim-core's SimError display text; the
        // `failures_split_into_hang_and_failed` test formats real
        // SimErrors to pin these patterns against rewording.
        let e = &record.error;
        return if e.contains("watchdog") || e.contains("cycle limit") {
            CellOutcome::Hang
        } else {
            CellOutcome::Failed
        };
    }
    if record.faults_injected == 0 {
        return CellOutcome::FaultFree;
    }
    let recovered = record.faults_detected + record.faults_outvoted > 0;
    // The digest comparison is meaningful only at equal retirement counts
    // (budget-limited runs may overshoot their budget by different
    // amounts when the final cycle commits more than one instruction).
    let sdc = match baselines.lookup(record) {
        Some((retired, digest)) if retired == record.retired_instructions => {
            digest != record.state_digest
        }
        // No usable baseline: fall back on the ledger — any escaped
        // fault is assumed to have corrupted state.
        _ => record.faults_escaped > 0,
    };
    if sdc {
        CellOutcome::Sdc
    } else if recovered {
        CellOutcome::Detected
    } else {
        CellOutcome::Masked
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record(rate: f64, injected: u64) -> RunRecord {
        RunRecord {
            workload: "gcc".to_string(),
            model: "SS-2".to_string(),
            budget: 1_000,
            fault_rate_pm: rate,
            retired_instructions: 1_000,
            state_digest: 0xabc,
            faults_injected: injected,
            ..RunRecord::default()
        }
    }

    #[test]
    fn baseline_anchors_the_sdc_call() {
        let baseline = record(0.0, 0);
        let mut detected = record(500.0, 3);
        detected.faults_detected = 3;
        let mut masked = record(500.0, 2);
        masked.faults_masked = 2;
        let mut sdc = record(500.0, 1);
        sdc.faults_escaped = 1;
        sdc.state_digest = 0xdef; // diverged from the baseline
        let mut lucky_escape = record(500.0, 1);
        lucky_escape.faults_escaped = 1; // escaped but state matches
        let records = vec![
            baseline.clone(),
            detected.clone(),
            masked.clone(),
            sdc.clone(),
            lucky_escape.clone(),
        ];
        let base = BaselineIndex::build(&records);
        assert_eq!(classify(&baseline, &base), CellOutcome::FaultFree);
        assert_eq!(classify(&detected, &base), CellOutcome::Detected);
        assert_eq!(classify(&masked, &base), CellOutcome::Masked);
        assert_eq!(classify(&sdc, &base), CellOutcome::Sdc);
        assert_eq!(
            classify(&lucky_escape, &base),
            CellOutcome::Masked,
            "state comparison exonerates an escape that left no trace"
        );
    }

    #[test]
    fn without_baseline_escapes_are_presumed_corrupting() {
        let mut escaped = record(500.0, 1);
        escaped.faults_escaped = 1;
        let base = BaselineIndex::build(&[escaped.clone()]);
        assert_eq!(classify(&escaped, &base), CellOutcome::Sdc);
    }

    #[test]
    fn retirement_mismatch_disables_the_digest_comparison() {
        let baseline = record(0.0, 0);
        let mut over = record(500.0, 1);
        over.retired_instructions = 1_001; // commit-burst overshoot
        over.state_digest = 0x999; // trivially different state
        over.faults_masked = 1;
        let base = BaselineIndex::build(&[baseline, over.clone()]);
        assert_eq!(
            classify(&over, &base),
            CellOutcome::Masked,
            "digest must not be compared across different retirement counts"
        );
    }

    #[test]
    fn failures_split_into_hang_and_failed() {
        // The hang patterns are substring-matched against the *actual*
        // SimError rendering (records carry only the display string), so
        // this test formats real errors: rewording SimError's Display in
        // ftsim-core must fail here, not silently reclassify hangs.
        use ftsim_core::SimError;
        let mut hang = record(500.0, 5);
        hang.error = SimError::Watchdog { cycle: 99 }.to_string();
        let mut limit = record(500.0, 5);
        limit.error = SimError::CycleLimit {
            cycles: 100,
            retired: 7,
        }
        .to_string();
        let mut other = record(500.0, 5);
        other.error = SimError::OracleMismatch {
            details: "r1 differs".to_string(),
        }
        .to_string();
        let base = BaselineIndex::default();
        assert_eq!(classify(&hang, &base), CellOutcome::Hang);
        assert_eq!(classify(&limit, &base), CellOutcome::Hang);
        assert_eq!(classify(&other, &base), CellOutcome::Failed);
    }

    #[test]
    fn a_zero_fire_faulty_cell_can_serve_as_baseline() {
        // rate > 0 but the Bernoulli process never fired: machine state
        // is bit-identical to fault-free, so it anchors the family.
        let quiet = record(10.0, 0);
        let mut sdc = record(500.0, 1);
        sdc.faults_escaped = 1;
        sdc.state_digest = 0x777;
        let base = BaselineIndex::build(&[quiet.clone(), sdc.clone()]);
        assert_eq!(classify(&quiet, &base), CellOutcome::FaultFree);
        assert_eq!(classify(&sdc, &base), CellOutcome::Sdc);
    }
}
