//! The assembled analysis report: outcome summary, per-site sensitivity,
//! detection-latency distributions and MTTF extrapolation.

use crate::outcome::{classify, BaselineIndex, CellOutcome};
use crate::sensitivity::{SensitivityTable, Z_95};
use ftsim::harness::{Experiment, ExperimentError, RunRecord};
use ftsim_stats::{fmt_f, fmt_pct, wilson_interval, Histogram, JsonValue, Table};

/// Detection-latency distribution for one (model, site mix) group.
#[derive(Debug, Clone, PartialEq)]
pub struct LatencyRow {
    /// Machine model name.
    pub model: String,
    /// Site-mix name.
    pub site_mix: String,
    /// Detection events summed over the group's cells.
    pub events: u64,
    /// Event-weighted mean injection→resolution latency in cycles.
    pub mean_cycles: f64,
    /// Event-weighted mean latency in retired instructions.
    pub mean_instructions: f64,
    /// Largest single detection latency in cycles.
    pub max_cycles: u64,
    /// Histogram of per-cell mean latencies (one sample per cell with at
    /// least one detection event), for percentile reporting.
    pub histogram: Histogram,
}

/// Per-(model, site mix) detection-latency report.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct LatencyReport {
    /// Rows sorted by model then mix.
    pub rows: Vec<LatencyRow>,
}

impl LatencyReport {
    /// Builds the report from the records' detection-latency sums.
    pub fn build(records: &[RunRecord]) -> Self {
        let mut groups: Vec<(String, String, Vec<&RunRecord>)> = Vec::new();
        for r in records {
            if r.detect_events == 0 {
                continue;
            }
            match groups
                .iter_mut()
                .find(|(m, x, _)| *m == r.model && *x == r.site_mix)
            {
                Some((_, _, cells)) => cells.push(r),
                None => groups.push((r.model.clone(), r.site_mix.clone(), vec![r])),
            }
        }
        groups.sort_by(|a, b| (&a.0, &a.1).cmp(&(&b.0, &b.1)));
        let rows = groups
            .into_iter()
            .map(|(model, site_mix, cells)| {
                let events: u64 = cells.iter().map(|r| r.detect_events).sum();
                let cycles: u64 = cells.iter().map(|r| r.detect_latency_cycles).sum();
                let insts: u64 = cells.iter().map(|r| r.detect_latency_insts).sum();
                let max_cycles = cells
                    .iter()
                    .map(|r| r.detect_latency_max)
                    .max()
                    .unwrap_or(0);
                // One sample per cell: its mean detection latency, bucketed
                // into 16 equal-width bins spanning the observed maximum.
                let means: Vec<u64> = cells
                    .iter()
                    .map(|r| (r.detect_latency_cycles as f64 / r.detect_events as f64) as u64)
                    .collect();
                let top = means.iter().copied().max().unwrap_or(0);
                let mut histogram = Histogram::new((top / 16).max(1), 16);
                for m in means {
                    histogram.record(m);
                }
                LatencyRow {
                    model,
                    site_mix,
                    events,
                    mean_cycles: cycles as f64 / events as f64,
                    mean_instructions: insts as f64 / events as f64,
                    max_cycles,
                    histogram,
                }
            })
            .collect();
        Self { rows }
    }

    /// Renders the report as aligned text with p50/p90 of per-cell mean
    /// latencies.
    pub fn render(&self) -> String {
        let mut t = Table::new([
            "model",
            "mix",
            "events",
            "mean-cyc",
            "mean-inst",
            "p50",
            "p90",
            "max-cyc",
        ]);
        t.numeric();
        for row in &self.rows {
            t.row([
                row.model.clone(),
                row.site_mix.clone(),
                row.events.to_string(),
                fmt_f(row.mean_cycles, 1),
                fmt_f(row.mean_instructions, 1),
                fmt_f(row.histogram.percentile(50.0), 0),
                fmt_f(row.histogram.percentile(90.0), 0),
                row.max_cycles.to_string(),
            ]);
        }
        t.render()
    }
}

/// MTTF-style extrapolation for one (model, fault rate) coordinate.
#[derive(Debug, Clone, PartialEq)]
pub struct MttfRow {
    /// Machine model name.
    pub model: String,
    /// Fault rate in faults per million instructions.
    pub fault_rate_pm: f64,
    /// Cells aggregated (all site mixes, budgets and seeds at this
    /// coordinate).
    pub cells: u64,
    /// Cells classified [`CellOutcome::Sdc`].
    pub sdc_cells: u64,
    /// Cells classified [`CellOutcome::Hang`].
    pub hang_cells: u64,
    /// Total instructions retired by successful cells.
    pub retired_total: u64,
    /// Total cycles elapsed in successful cells.
    pub cycles_total: u64,
    /// Total escaped faults across the coordinate's cells.
    pub escaped_total: u64,
}

impl MttfRow {
    /// Probability that a cell at this coordinate ends in silent data
    /// corruption, with its Wilson 95% interval.
    pub fn p_sdc(&self) -> (f64, (f64, f64)) {
        let p = if self.cells == 0 {
            0.0
        } else {
            self.sdc_cells as f64 / self.cells as f64
        };
        (p, wilson_interval(self.sdc_cells, self.cells, Z_95))
    }

    /// Mean retired instructions between escaped faults — the workload's
    /// MTTF in instructions at this fault rate, extrapolated from the
    /// observed escape rate. `None` when nothing escaped (MTTF beyond
    /// the observed horizon).
    pub fn mttf_instructions(&self) -> Option<f64> {
        (self.escaped_total > 0).then(|| self.retired_total as f64 / self.escaped_total as f64)
    }

    /// Mean cycles between escaped faults; `None` when nothing escaped.
    pub fn mttf_cycles(&self) -> Option<f64> {
        (self.escaped_total > 0).then(|| self.cycles_total as f64 / self.escaped_total as f64)
    }
}

/// The MTTF table over every (model, fault rate) coordinate.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct MttfTable {
    /// Rows sorted by model then rate.
    pub rows: Vec<MttfRow>,
}

impl MttfTable {
    /// Builds the table, classifying each record against `baselines`.
    pub fn build(records: &[RunRecord], baselines: &BaselineIndex) -> Self {
        let mut rows: Vec<MttfRow> = Vec::new();
        for r in records {
            if r.fault_rate_pm == 0.0 {
                continue; // the fault-free axis extrapolates nothing
            }
            let outcome = classify(r, baselines);
            let row = match rows.iter_mut().find(|x| {
                x.model == r.model && x.fault_rate_pm.to_bits() == r.fault_rate_pm.to_bits()
            }) {
                Some(row) => row,
                None => {
                    rows.push(MttfRow {
                        model: r.model.clone(),
                        fault_rate_pm: r.fault_rate_pm,
                        cells: 0,
                        sdc_cells: 0,
                        hang_cells: 0,
                        retired_total: 0,
                        cycles_total: 0,
                        escaped_total: 0,
                    });
                    rows.last_mut().expect("just pushed")
                }
            };
            row.cells += 1;
            match outcome {
                CellOutcome::Sdc => row.sdc_cells += 1,
                CellOutcome::Hang => row.hang_cells += 1,
                _ => {}
            }
            if r.ok() {
                row.retired_total += r.retired_instructions;
                row.cycles_total += r.cycles;
                row.escaped_total += r.faults_escaped;
            }
        }
        rows.sort_by(|a, b| {
            (&a.model, a.fault_rate_pm)
                .partial_cmp(&(&b.model, b.fault_rate_pm))
                .expect("rates are finite")
        });
        Self { rows }
    }

    /// Renders the table as aligned text.
    pub fn render(&self) -> String {
        let mut t = Table::new([
            "model",
            "rate/M",
            "cells",
            "sdc",
            "hang",
            "P(sdc)",
            "ci95",
            "mttf-inst",
            "mttf-cyc",
        ]);
        t.numeric();
        for row in &self.rows {
            let (p, (lo, hi)) = row.p_sdc();
            let mttf = |v: Option<f64>| v.map_or("inf".to_string(), |x| fmt_f(x, 0));
            t.row([
                row.model.clone(),
                fmt_f(row.fault_rate_pm, 0),
                row.cells.to_string(),
                row.sdc_cells.to_string(),
                row.hang_cells.to_string(),
                fmt_pct(p),
                format!("[{},{}]", fmt_f(lo, 3), fmt_f(hi, 3)),
                mttf(row.mttf_instructions()),
                mttf(row.mttf_cycles()),
            ]);
        }
        t.render()
    }
}

/// The complete analysis of one record set.
#[derive(Debug, Clone, PartialEq)]
pub struct AnalysisReport {
    /// Number of records analyzed.
    pub cells: usize,
    /// Each cell's outcome, in record order.
    pub outcomes: Vec<CellOutcome>,
    /// Per-site sensitivity table.
    pub sensitivity: SensitivityTable,
    /// Detection-latency distributions.
    pub latency: LatencyReport,
    /// MTTF extrapolation per model × fault rate.
    pub mttf: MttfTable,
}

impl AnalysisReport {
    /// How many cells landed in `outcome`.
    pub fn outcome_count(&self, outcome: CellOutcome) -> usize {
        self.outcomes.iter().filter(|o| **o == outcome).count()
    }

    /// Renders the full report as text: outcome summary, sensitivity,
    /// latency and MTTF sections.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!("# outcome summary ({} cells)\n", self.cells));
        for o in CellOutcome::ALL {
            let n = self.outcome_count(o);
            if n > 0 {
                out.push_str(&format!("{:<11} {n}\n", o.label()));
            }
        }
        out.push_str("\n# per-site sensitivity\n");
        out.push_str(&self.sensitivity.render());
        out.push_str("\n# detection latency\n");
        out.push_str(&self.latency.render());
        out.push_str("\n# mttf extrapolation\n");
        out.push_str(&self.mttf.render());
        out
    }

    /// Renders the report as a JSON document — the machine-readable
    /// twin of [`AnalysisReport::render`], served by the daemon's
    /// `GET /jobs/<id>/report` endpoint. Same sections: outcome counts
    /// by label, sensitivity rows, latency rows, MTTF rows.
    pub fn to_json(&self) -> String {
        let s = |v: &str| JsonValue::Str(v.to_string());
        let outcomes = JsonValue::Obj(
            CellOutcome::ALL
                .into_iter()
                .map(|o| {
                    (
                        o.label().to_string(),
                        JsonValue::U64(self.outcome_count(o) as u64),
                    )
                })
                .collect(),
        );
        let sensitivity = JsonValue::Arr(
            self.sensitivity
                .rows
                .iter()
                .map(|row| {
                    let (lo, hi) = row.p_escaped_interval();
                    JsonValue::obj([
                        ("model".to_string(), s(&row.model)),
                        ("site_mix".to_string(), s(&row.site_mix)),
                        ("site".to_string(), s(row.point.code())),
                        ("injected".to_string(), JsonValue::U64(row.counts.injected)),
                        ("detected".to_string(), JsonValue::U64(row.counts.detected)),
                        ("outvoted".to_string(), JsonValue::U64(row.counts.outvoted)),
                        ("masked".to_string(), JsonValue::U64(row.counts.masked)),
                        (
                            "squashed".to_string(),
                            JsonValue::U64(
                                row.counts.squashed_wrong_path + row.counts.squashed_by_rewind,
                            ),
                        ),
                        ("escaped".to_string(), JsonValue::U64(row.counts.escaped)),
                        ("p_caught".to_string(), JsonValue::F64(row.p_caught())),
                        ("p_escaped".to_string(), JsonValue::F64(row.p_escaped())),
                        (
                            "p_escaped_ci95".to_string(),
                            JsonValue::Arr(vec![JsonValue::F64(lo), JsonValue::F64(hi)]),
                        ),
                    ])
                })
                .collect(),
        );
        let latency = JsonValue::Arr(
            self.latency
                .rows
                .iter()
                .map(|row| {
                    JsonValue::obj([
                        ("model".to_string(), s(&row.model)),
                        ("site_mix".to_string(), s(&row.site_mix)),
                        ("events".to_string(), JsonValue::U64(row.events)),
                        ("mean_cycles".to_string(), JsonValue::F64(row.mean_cycles)),
                        (
                            "mean_instructions".to_string(),
                            JsonValue::F64(row.mean_instructions),
                        ),
                        (
                            "p50_cycles".to_string(),
                            JsonValue::F64(row.histogram.percentile(50.0)),
                        ),
                        (
                            "p90_cycles".to_string(),
                            JsonValue::F64(row.histogram.percentile(90.0)),
                        ),
                        ("max_cycles".to_string(), JsonValue::U64(row.max_cycles)),
                    ])
                })
                .collect(),
        );
        let mttf = JsonValue::Arr(
            self.mttf
                .rows
                .iter()
                .map(|row| {
                    let (p, (lo, hi)) = row.p_sdc();
                    let opt = |v: Option<f64>| v.map_or(JsonValue::Null, JsonValue::F64);
                    JsonValue::obj([
                        ("model".to_string(), s(&row.model)),
                        (
                            "fault_rate_pm".to_string(),
                            JsonValue::F64(row.fault_rate_pm),
                        ),
                        ("cells".to_string(), JsonValue::U64(row.cells)),
                        ("sdc_cells".to_string(), JsonValue::U64(row.sdc_cells)),
                        ("hang_cells".to_string(), JsonValue::U64(row.hang_cells)),
                        ("p_sdc".to_string(), JsonValue::F64(p)),
                        (
                            "p_sdc_ci95".to_string(),
                            JsonValue::Arr(vec![JsonValue::F64(lo), JsonValue::F64(hi)]),
                        ),
                        (
                            "mttf_instructions".to_string(),
                            opt(row.mttf_instructions()),
                        ),
                        ("mttf_cycles".to_string(), opt(row.mttf_cycles())),
                    ])
                })
                .collect(),
        );
        JsonValue::obj([
            ("cells".to_string(), JsonValue::U64(self.cells as u64)),
            ("outcomes".to_string(), outcomes),
            ("sensitivity".to_string(), sensitivity),
            ("latency".to_string(), latency),
            ("mttf".to_string(), mttf),
        ])
        .render_pretty(2)
    }
}

/// Analyzes a record set: classifies every cell against its family's
/// fault-free baseline and assembles the sensitivity, latency and MTTF
/// tables.
///
/// The function is pure in the records — the same records (in any
/// serialization, from a one-shot grid or a daemon job) produce the same
/// report, which is what makes `ftsimd report` and
/// [`Analyze::analyze`] interchangeable.
pub fn analyze_records(records: &[RunRecord]) -> AnalysisReport {
    let baselines = BaselineIndex::build(records);
    AnalysisReport {
        cells: records.len(),
        outcomes: records.iter().map(|r| classify(r, &baselines)).collect(),
        sensitivity: SensitivityTable::build(records),
        latency: LatencyReport::build(records),
        mttf: MttfTable::build(records, &baselines),
    }
}

/// Extension trait wiring the analysis layer into the experiment
/// harness: `experiment.analyze()` runs the grid and reports on it.
pub trait Analyze {
    /// Runs the grid and analyzes its records.
    ///
    /// # Errors
    ///
    /// [`ExperimentError`] when the grid is misconfigured.
    fn analyze(self) -> Result<AnalysisReport, ExperimentError>;
}

impl Analyze for Experiment {
    fn analyze(self) -> Result<AnalysisReport, ExperimentError> {
        Ok(analyze_records(&self.run()?))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn faulty(model: &str, rate: f64, escaped: u64, detected: u64) -> RunRecord {
        RunRecord {
            workload: "gcc".to_string(),
            model: model.to_string(),
            budget: 1_000,
            fault_rate_pm: rate,
            site_mix: "uniform".to_string(),
            retired_instructions: 1_000,
            cycles: 3_000,
            state_digest: if escaped > 0 { 0xbad } else { 0xaaa },
            faults_injected: escaped + detected,
            faults_escaped: escaped,
            faults_detected: detected,
            detect_events: detected,
            detect_latency_cycles: detected * 40,
            detect_latency_insts: detected * 12,
            detect_latency_max: if detected > 0 { 55 } else { 0 },
            ..RunRecord::default()
        }
    }

    fn baseline(model: &str) -> RunRecord {
        RunRecord {
            workload: "gcc".to_string(),
            model: model.to_string(),
            budget: 1_000,
            site_mix: "uniform".to_string(),
            retired_instructions: 1_000,
            cycles: 2_500,
            state_digest: 0xaaa,
            ..RunRecord::default()
        }
    }

    #[test]
    fn report_assembles_all_sections() {
        let records = vec![
            baseline("SS-1"),
            faulty("SS-1", 100.0, 1, 0),
            faulty("SS-1", 100.0, 0, 2),
            faulty("SS-1", 2_000.0, 2, 1),
        ];
        let report = analyze_records(&records);
        assert_eq!(report.cells, 4);
        assert_eq!(report.outcome_count(CellOutcome::FaultFree), 1);
        assert_eq!(report.outcome_count(CellOutcome::Sdc), 2);
        assert_eq!(report.outcome_count(CellOutcome::Detected), 1);

        assert_eq!(report.mttf.rows.len(), 2);
        let low = &report.mttf.rows[0];
        assert_eq!(low.fault_rate_pm, 100.0);
        assert_eq!(low.cells, 2);
        assert_eq!(low.sdc_cells, 1);
        assert_eq!(low.escaped_total, 1);
        assert_eq!(low.mttf_instructions(), Some(2_000.0));
        assert_eq!(low.mttf_cycles(), Some(6_000.0));
        let (p, (lo, hi)) = low.p_sdc();
        assert_eq!(p, 0.5);
        assert!(lo < 0.5 && hi > 0.5);

        assert_eq!(report.latency.rows.len(), 1);
        let lat = &report.latency.rows[0];
        assert_eq!(lat.events, 3);
        assert!((lat.mean_cycles - 40.0).abs() < 1e-9);
        assert!((lat.mean_instructions - 12.0).abs() < 1e-9);
        assert_eq!(lat.max_cycles, 55);

        let text = report.render();
        for section in [
            "# outcome summary",
            "# per-site sensitivity",
            "# detection latency",
            "# mttf extrapolation",
        ] {
            assert!(text.contains(section), "missing {section}");
        }
        assert!(text.contains("sdc"));
        assert!(text.contains("inf") || text.contains("mttf"));
    }

    #[test]
    fn report_json_parses_and_carries_the_sections() {
        let records = vec![
            baseline("SS-1"),
            faulty("SS-1", 100.0, 1, 0),
            faulty("SS-1", 2_000.0, 2, 1),
        ];
        let report = analyze_records(&records);
        let doc = ftsim_stats::JsonValue::parse(&report.to_json()).unwrap();
        assert_eq!(doc.get("cells").and_then(|v| v.as_u64()), Some(3));
        let outcomes = doc.get("outcomes").unwrap();
        assert_eq!(
            outcomes
                .get(CellOutcome::Sdc.label())
                .and_then(|v| v.as_u64()),
            Some(2)
        );
        assert_eq!(
            doc.get("mttf").and_then(|v| v.as_arr()).map(|a| a.len()),
            Some(2)
        );
        let row = &doc.get("mttf").unwrap().as_arr().unwrap()[0];
        assert_eq!(
            row.get("fault_rate_pm").and_then(|v| v.as_f64()),
            Some(100.0)
        );
        assert!(doc.get("latency").unwrap().as_arr().is_some());
        assert!(doc.get("sensitivity").unwrap().as_arr().is_some());
    }

    #[test]
    fn mttf_with_no_escapes_is_unbounded() {
        let records = vec![baseline("SS-2"), faulty("SS-2", 500.0, 0, 3)];
        let report = analyze_records(&records);
        let row = &report.mttf.rows[0];
        assert_eq!(row.escaped_total, 0);
        assert_eq!(row.mttf_instructions(), None);
        assert!(report.mttf.render().contains("inf"));
    }

    #[test]
    fn analysis_is_a_pure_function_of_the_records() {
        let records = vec![baseline("SS-1"), faulty("SS-1", 100.0, 1, 1)];
        assert_eq!(analyze_records(&records), analyze_records(&records));
    }
}
