//! Per-site sensitivity tables: which injection sites are caught, masked
//! or escape, with binomial confidence bounds.

use ftsim::harness::RunRecord;
use ftsim_faults::{FaultCounts, InjectionPoint, SiteCounts};
use ftsim_stats::{fmt_f, fmt_pct, wilson_interval, Table};

/// The normal quantile used for every confidence interval in the
/// analysis reports (95% two-sided).
pub const Z_95: f64 = 1.96;

/// Aggregated fate counts for one (model, site mix, injection site)
/// coordinate.
#[derive(Debug, Clone, PartialEq)]
pub struct SiteRow {
    /// Machine model name.
    pub model: String,
    /// Site-mix name the cells ran under.
    pub site_mix: String,
    /// The injection site.
    pub point: InjectionPoint,
    /// Fate counts summed over every contributing cell.
    pub counts: FaultCounts,
}

impl SiteRow {
    /// Probability that a fault at this site was caught (detected or
    /// out-voted), over all injected faults at the site.
    pub fn p_caught(&self) -> f64 {
        ratio(
            self.counts.detected + self.counts.outvoted,
            self.counts.injected,
        )
    }

    /// Wilson 95% interval on [`SiteRow::p_caught`].
    pub fn p_caught_interval(&self) -> (f64, f64) {
        wilson_interval(
            self.counts.detected + self.counts.outvoted,
            self.counts.injected,
            Z_95,
        )
    }

    /// Probability that a fault at this site was architecturally masked.
    pub fn p_masked(&self) -> f64 {
        ratio(self.counts.masked, self.counts.injected)
    }

    /// Probability that a fault at this site was squashed before commit
    /// (wrong path or an unrelated rewind).
    pub fn p_squashed(&self) -> f64 {
        ratio(
            self.counts.squashed_wrong_path + self.counts.squashed_by_rewind,
            self.counts.injected,
        )
    }

    /// Probability that a fault at this site escaped to committed state.
    pub fn p_escaped(&self) -> f64 {
        ratio(self.counts.escaped, self.counts.injected)
    }

    /// Wilson 95% interval on [`SiteRow::p_escaped`].
    pub fn p_escaped_interval(&self) -> (f64, f64) {
        wilson_interval(self.counts.escaped, self.counts.injected, Z_95)
    }
}

fn ratio(k: u64, n: u64) -> f64 {
    if n == 0 {
        0.0
    } else {
        k as f64 / n as f64
    }
}

/// The per-site sensitivity table of one record set.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct SensitivityTable {
    /// One row per (model, site mix, site) with at least one injected
    /// fault, sorted by model, then mix, then canonical site order.
    pub rows: Vec<SiteRow>,
}

impl SensitivityTable {
    /// Builds the table by merging every record's `site_fates` counts
    /// into its (model, site mix) group. Records whose `site_fates`
    /// field does not parse (foreign CSVs) contribute nothing.
    pub fn build(records: &[RunRecord]) -> Self {
        let mut groups: Vec<(String, String, SiteCounts)> = Vec::new();
        for r in records {
            let Ok(sites) = SiteCounts::from_compact(&r.site_fates) else {
                continue;
            };
            if sites.is_empty() {
                continue;
            }
            match groups
                .iter_mut()
                .find(|(m, x, _)| *m == r.model && *x == r.site_mix)
            {
                Some((_, _, acc)) => acc.merge(&sites),
                None => groups.push((r.model.clone(), r.site_mix.clone(), sites)),
            }
        }
        groups.sort_by(|a, b| (&a.0, &a.1).cmp(&(&b.0, &b.1)));
        let mut rows = Vec::new();
        for (model, site_mix, sites) in groups {
            for (point, counts) in sites.iter() {
                if counts.injected == 0 {
                    continue;
                }
                rows.push(SiteRow {
                    model: model.clone(),
                    site_mix: site_mix.clone(),
                    point,
                    counts: *counts,
                });
            }
        }
        Self { rows }
    }

    /// Renders the table as aligned text (model, mix, site, injected,
    /// caught/masked/squashed/escaped probabilities, and the Wilson 95%
    /// interval on the caught probability).
    pub fn render(&self) -> String {
        let mut t = Table::new([
            "model", "mix", "site", "inj", "caught", "ci95", "masked", "squash", "escape",
        ]);
        t.numeric();
        for row in &self.rows {
            let (lo, hi) = row.p_caught_interval();
            t.row([
                row.model.clone(),
                row.site_mix.clone(),
                row.point.code().to_string(),
                row.counts.injected.to_string(),
                fmt_pct(row.p_caught()),
                format!("[{},{}]", fmt_f(lo, 3), fmt_f(hi, 3)),
                fmt_pct(row.p_masked()),
                fmt_pct(row.p_squashed()),
                fmt_pct(row.p_escaped()),
            ]);
        }
        t.render()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ftsim_faults::FaultFate;
    use ftsim_faults::{FaultEvent, FaultLog};

    fn record_with(model: &str, mix: &str, fates: &[(InjectionPoint, FaultFate)]) -> RunRecord {
        let mut log = FaultLog::new();
        for (i, &(point, fate)) in fates.iter().enumerate() {
            let id = log.record(i as u64, 0, FaultEvent { point, bit: 0 }, 0, 0);
            log.resolve(id, fate, 1, 1);
        }
        RunRecord {
            model: model.to_string(),
            site_mix: mix.to_string(),
            faults_injected: fates.len() as u64,
            site_fates: log.per_site().to_compact(),
            ..RunRecord::default()
        }
    }

    #[test]
    fn groups_by_model_and_mix_and_merges_cells() {
        use FaultFate::*;
        use InjectionPoint::*;
        let records = vec![
            record_with("SS-2", "uniform", &[(EffAddr, Detected), (Result, Masked)]),
            record_with("SS-2", "uniform", &[(EffAddr, Detected)]),
            record_with("SS-2", "addr-heavy", &[(EffAddr, Escaped)]),
            record_with("SS-1", "uniform", &[(Result, Escaped)]),
        ];
        let table = SensitivityTable::build(&records);
        // Groups sorted by (model, mix); sites within a group follow the
        // canonical InjectionPoint::ALL order (res precedes ea).
        let keys: Vec<(&str, &str, &str)> = table
            .rows
            .iter()
            .map(|r| (r.model.as_str(), r.site_mix.as_str(), r.point.code()))
            .collect();
        assert_eq!(
            keys,
            [
                ("SS-1", "uniform", "res"),
                ("SS-2", "addr-heavy", "ea"),
                ("SS-2", "uniform", "res"),
                ("SS-2", "uniform", "ea"),
            ]
        );
        let merged = &table.rows[3];
        assert_eq!(merged.counts.injected, 2, "two uniform cells merged");
        assert_eq!(merged.counts.detected, 2);
        assert_eq!(merged.p_caught(), 1.0);
        let (lo, hi) = merged.p_caught_interval();
        assert!(lo > 0.0 && hi == 1.0);

        let text = table.render();
        assert!(text.contains("addr-heavy"));
        assert!(text.contains("ea"));
    }

    #[test]
    fn empty_and_unparsable_fates_contribute_nothing() {
        let bad = RunRecord {
            site_fates: "not a table".to_string(),
            ..RunRecord::default()
        };
        let table = SensitivityTable::build(&[RunRecord::default(), bad]);
        assert!(table.rows.is_empty());
        assert!(table.render().contains("model"));
    }
}
