//! Figure 3 — analytical IPC vs fault frequency for W = 20.
//!
//! Plots the normalized model of §4.3: `IPC₁ = B = 1`, so the error-free
//! redundant IPCs are 1/2 (R=2) and 1/3 (R=3). Curves: R=2 rewind, R=3
//! rewind, R=3 with 2-of-3 majority election.

use ftsim_bench::{banner, measured};
use ftsim_model::{crossover_frequency, figure3_curves, validity_bound};
use ftsim_stats::{AsciiPlot, Series, Table};

fn main() {
    banner(
        "Figure 3",
        "IPC vs fault frequency for W = 20 (analytical model, normalized IPC1 = B = 1)",
        "R=2 and R=3 IPC stay relatively constant until 1/f is within two orders of \
         magnitude of W; the R=3 majority curve stays flat to much higher f",
    );
    let curves = figure3_curves();

    let mut table = Table::new([
        "f (faults/inst)",
        "R=2 rewind",
        "R=3 rewind",
        "R=3 majority",
    ]);
    table.numeric();
    for i in 0..curves[0].points.len() {
        let f = curves[0].points[i].0;
        table.row([
            format!("{f:.2e}"),
            format!("{:.4}", curves[0].points[i].1),
            format!("{:.4}", curves[1].points[i].1),
            format!("{:.4}", curves[2].points[i].1),
        ]);
    }
    print!("{table}");

    let mut plot = AsciiPlot::new("IPC vs fault frequency (W=20)", 64, 16);
    for c in &curves {
        plot = plot.series(Series::from_points(
            c.name.clone(),
            c.points.iter().copied(),
        ));
    }
    println!("{}", plot.render());

    let crossover = crossover_frequency(0.5, 1.0 / 3.0, 20.0).expect("curves cross");
    measured(&format!(
        "R=2 falls below R=3-majority at f = {crossover:.2e} faults/inst \
         ({:.0} faults per million instructions)",
        crossover * 1e6
    ));
    measured(&format!(
        "first-order model validity bound 1/W = {:.2e} faults/inst",
        validity_bound(20.0)
    ));
    // Shape check mirroring the paper's reading of the figure.
    let at = |ci: usize, f: f64| -> f64 {
        curves[ci]
            .points
            .iter()
            .min_by(|a, b| (a.0 - f).abs().total_cmp(&(b.0 - f).abs()))
            .unwrap()
            .1
    };
    let flat_r2 = at(0, 1e-5) / 0.5;
    measured(&format!(
        "R=2 retains {:.1}% of error-free IPC at f = 1e-5 (flat region)",
        flat_r2 * 100.0
    ));
    assert!(flat_r2 > 0.95, "flat region should be flat");
    assert!(at(2, 1e-3) > at(1, 1e-3), "majority outlasts rewind at R=3");
}
