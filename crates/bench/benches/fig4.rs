//! Figure 4 — analytical IPC vs fault frequency for W = 2000.
//!
//! Same model as Figure 3 with a coarse-grain recovery penalty; the knees
//! move two orders of magnitude toward lower fault frequencies, which is
//! the paper's argument for fine-grain (rewind) recovery — and for why a
//! large W destroys fine-grain real-time guarantees even when average IPC
//! is barely affected.

use ftsim_bench::{banner, measured};
use ftsim_model::{figure3_curves, figure4_curves};
use ftsim_stats::{AsciiPlot, Series, Table};

fn main() {
    banner(
        "Figure 4",
        "IPC vs fault frequency for W = 2000 (analytical model)",
        "same curves as Figure 3 with knees ~two orders of magnitude earlier; \
         W has minimal effect on average IPC at any reasonable f",
    );
    let w2000 = figure4_curves();
    let w20 = figure3_curves();

    let mut table = Table::new([
        "f (faults/inst)",
        "R=2 rewind",
        "R=3 rewind",
        "R=3 majority",
    ]);
    table.numeric();
    for i in 0..w2000[0].points.len() {
        let f = w2000[0].points[i].0;
        table.row([
            format!("{f:.2e}"),
            format!("{:.4}", w2000[0].points[i].1),
            format!("{:.4}", w2000[1].points[i].1),
            format!("{:.4}", w2000[2].points[i].1),
        ]);
    }
    print!("{table}");

    let mut plot = AsciiPlot::new("IPC vs fault frequency (W=2000)", 64, 16);
    for c in &w2000 {
        plot = plot.series(Series::from_points(
            c.name.clone(),
            c.points.iter().copied(),
        ));
    }
    println!("{}", plot.render());

    // Knee comparison against Figure 3.
    let knee = |curves: &[ftsim_model::Curve]| {
        curves[0]
            .points
            .iter()
            .find(|(_, ipc)| *ipc < 0.9 * 0.5)
            .map(|(f, _)| *f)
            .expect("curve eventually drops")
    };
    let (k20, k2000) = (knee(&w20), knee(&w2000));
    measured(&format!(
        "R=2 IPC drops 10% at f = {k20:.1e} (W=20) vs f = {k2000:.1e} (W=2000): ratio {:.0}x",
        k20 / k2000
    ));
    assert!(k20 / k2000 > 10.0, "larger W must move the knee earlier");

    // The paper's reading: at reasonable f, even W=2000 leaves IPC intact.
    let at_low = w2000[0]
        .points
        .iter()
        .min_by(|a, b| (a.0 - 1e-6).abs().total_cmp(&(b.0 - 1e-6).abs()))
        .unwrap()
        .1;
    measured(&format!(
        "even with W=2000, R=2 retains {:.1}% of error-free IPC at f = 1e-6",
        at_low / 0.5 * 100.0
    ));
}
