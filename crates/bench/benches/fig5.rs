//! Figure 5 — steady-state IPC comparison of SS-1, Static-2 and SS-2 on
//! the 11 benchmarks.
//!
//! The paper's headline evaluation: fault-free IPC of the baseline
//! superscalar (SS-1), one pipe of a statically-duplicated lock-step pair
//! (Static-2), and the 2-way dynamically redundant design (SS-2), on
//! synthetic stand-ins calibrated to each benchmark's Table 2 mix and
//! §5.2 bottleneck structure.
//!
//! The whole sweep is one [`Experiment::grid`]: 11 workloads × 3 machine
//! models, run in parallel across the host's cores, exported as CSV and
//! JSON under `target/experiments/`, and rendered from the records.

use ftsim::harness::Experiment;
use ftsim_bench::{banner, budget, expect_record, export_records, figure5_models, measured};
use ftsim_stats::{fmt_f, Table};
use ftsim_workloads::spec_profiles;

fn main() {
    banner(
        "Figure 5",
        "steady-state IPC: SS-1 vs Static-2 vs SS-2 (fault-free)",
        "SS-2 throughput penalty 2%..45% (30-32% average); ammp/go/vpr suffer least; \
         overall SS-2 comparable to Static-2, but Static-2 significantly outperforms \
         SS-2 on fpppp, swim and art (extra FP Mult/Div per pipe)",
    );

    let records = Experiment::grid()
        .workloads(spec_profiles())
        .models(figure5_models())
        .budget(budget())
        .run()
        .expect("figure 5 grid is well-formed");
    export_records("fig5", &records).expect("exporting figure 5 records");

    let mut t = Table::new(["Benchmark", "SS-1", "Static-2", "SS-2", "SS-2 penalty"]);
    t.numeric();
    let mut penalties = Vec::new();
    let mut rows = Vec::new();
    for p in spec_profiles() {
        let ipc_of = |model: &str| expect_record(&records, p.name, model).ipc;
        let (r1, rs, r2) = (ipc_of("SS-1"), ipc_of("Static-2"), ipc_of("SS-2"));
        let pen = 1.0 - r2 / r1;
        penalties.push((p.name, pen));
        rows.push((p.name, r1, rs, r2));
        t.row([
            p.name.to_string(),
            fmt_f(r1, 3),
            fmt_f(rs, 3),
            fmt_f(r2, 3),
            format!("{}%", fmt_f(pen * 100.0, 1)),
        ]);
    }
    print!("{t}");
    println!();

    let avg = penalties.iter().map(|(_, p)| p).sum::<f64>() / penalties.len() as f64;
    let min = penalties.iter().min_by(|a, b| a.1.total_cmp(&b.1)).unwrap();
    let max = penalties.iter().max_by(|a, b| a.1.total_cmp(&b.1)).unwrap();
    measured(&format!(
        "SS-2 penalty range {}% ({}) .. {}% ({}), average {}%",
        fmt_f(min.1 * 100.0, 1),
        min.0,
        fmt_f(max.1 * 100.0, 1),
        max.0,
        fmt_f(avg * 100.0, 1),
    ));

    // The paper's three callouts, checked mechanically.
    let pen_of = |name: &str| penalties.iter().find(|(n, _)| *n == name).unwrap().1;
    let low3 = ["ammp", "go", "vpr"];
    let low_avg = low3.iter().map(|n| pen_of(n)).sum::<f64>() / 3.0;
    measured(&format!(
        "ammp/go/vpr suffer least: average penalty {}% vs overall {}%",
        fmt_f(low_avg * 100.0, 1),
        fmt_f(avg * 100.0, 1)
    ));
    assert!(low_avg < avg, "ammp/go/vpr must be below-average penalty");

    for name in ["fpppp", "swim", "art"] {
        let (_, _, s2ipc, ss2ipc) = *rows.iter().find(|(n, ..)| *n == name).unwrap();
        measured(&format!(
            "{name}: Static-2 {} vs SS-2 {} ({}% advantage from the extra FP Mult/Div)",
            fmt_f(s2ipc, 3),
            fmt_f(ss2ipc, 3),
            fmt_f((s2ipc / ss2ipc - 1.0) * 100.0, 1)
        ));
        assert!(
            s2ipc > ss2ipc,
            "{name}: Static-2 must beat SS-2 (extra FP Mult/Div)"
        );
    }
    assert!(
        (0.15..=0.45).contains(&avg),
        "average penalty {avg:.2} out of the paper's envelope"
    );
}
