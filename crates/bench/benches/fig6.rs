//! Figure 6 — simulated IPC vs fault frequency for fpppp.
//!
//! The fault-injection experiment of §5.3: the `R = 2` rewind design and
//! the `R = 3` majority-election design on fpppp, swept over fault
//! frequencies (x-axis in faults per one million instructions, as in the
//! paper). Checks the three observations the paper draws from this plot:
//! R=2's IPC drops only when recovery penalties become a significant
//! fraction of execution time; R=3+majority stays flat until much higher
//! frequencies; the crossover sits far beyond the intended operating
//! range. Also reports the observed recovery cost (paper: ~30 cycles).
//!
//! The sweep is an [`Experiment::grid`] over the fault-rate axis × two
//! machine models. At the extreme end of the sweep an *identical*
//! corruption of every copy of one control instruction can commit
//! garbage control flow and wedge the machine (the paper's
//! indiscernible-error case §2.2), so rates whose first-seed cell fails
//! get one retry grid with three fresh seeds and each point keeps the
//! first seed that survives. Records are exported as CSV and JSON.

use ftsim::harness::{Experiment, RunRecord};
use ftsim_bench::{banner, budget, export_records, measured};
use ftsim_core::MachineConfig;
use ftsim_stats::{fmt_f, AsciiPlot, Series, Table};
use ftsim_workloads::profile;

fn main() {
    banner(
        "Figure 6",
        "IPC vs fault frequency for fpppp (simulated, R=2 rewind vs R=3 majority)",
        "R=2 drops sharply when faults are frequent enough for recovery penalties to \
         matter; R=3 stays unaffected until much higher frequencies (no rewind until \
         2 of 3 copies corrupted); typical recovery costs ~30 cycles; crossover far \
         beyond the intended operating range",
    );
    let fpppp = profile("fpppp").expect("fpppp profile exists");

    // Faults per million instructions, log-spaced like the paper's x-axis.
    let rates: &[f64] = &[
        0.0, 10.0, 30.0, 100.0, 300.0, 1_000.0, 3_000.0, 10_000.0, 30_000.0, 100_000.0,
    ];

    let models = [MachineConfig::ss2(), MachineConfig::ss3_majority()];
    let grid = |models: Vec<MachineConfig>, rates: Vec<f64>, seeds: Vec<u64>| {
        Experiment::grid()
            .workloads([fpppp.clone()])
            .models(models)
            .fault_rates(rates)
            .seeds(seeds)
            .budget(budget())
            .run()
            .expect("figure 6 grid is well-formed")
    };
    let mut records = grid(models.to_vec(), rates.to_vec(), vec![42]);
    // Retry only the (model, rate) cells that wedged, with fresh seeds —
    // fault-free and moderate rates never need this, so the common case
    // stays 1 run per point, and a healthy model is not re-run just
    // because the other one wedged at the same rate.
    for model in &models {
        let wedged: Vec<f64> = rates
            .iter()
            .copied()
            .filter(|&fpm| {
                records
                    .iter()
                    .any(|r| r.model == model.name && r.fault_rate_pm == fpm && !r.ok())
            })
            .collect();
        if !wedged.is_empty() {
            records.extend(grid(vec![model.clone()], wedged, vec![43, 44, 45]));
        }
    }
    export_records("fig6", &records).expect("exporting figure 6 records");

    // First surviving seed per (model, rate); grid order makes that the
    // lowest surviving seed.
    let survivor = |model: &str, rate: f64| -> Option<&RunRecord> {
        records
            .iter()
            .find(|r| r.model == model && r.fault_rate_pm == rate && r.ok())
    };

    let mut r2_series = Series::new("R=2 (rewind)");
    let mut r3_series = Series::new("R=3 (2-of-3 majority)");
    let mut table = Table::new([
        "faults/M inst",
        "R=2 IPC",
        "R=2 rewinds",
        "R=2 mean W",
        "R=3M IPC",
        "R=3M elections",
        "R=3M rewinds",
    ]);
    table.numeric();

    let mut observed_w = Vec::new();
    for &fpm in rates {
        let (Some(r2), Some(r3)) = (survivor("SS-2", fpm), survivor("SS-3M", fpm)) else {
            println!(
                "  (skipping {fpm:.0} faults/M: machine wedged on escaped control fault \
                 in all seeds)"
            );
            continue;
        };
        // Gate on a completed penalty measurement (a rewind with no commit
        // after it leaves the mean at 0.0, which would drag the average).
        if r2.mean_rewind_penalty > 0.0 {
            observed_w.push(r2.mean_rewind_penalty);
        }
        if fpm > 0.0 {
            r2_series.push(fpm, r2.ipc);
            r3_series.push(fpm, r3.ipc);
        }
        table.row([
            if fpm == 0.0 {
                "0 (error-free)".to_string()
            } else {
                format!("{fpm:.0}")
            },
            fmt_f(r2.ipc, 3),
            r2.fault_rewinds.to_string(),
            fmt_f(r2.mean_rewind_penalty, 1),
            fmt_f(r3.ipc, 3),
            r3.majority_elections.to_string(),
            r3.fault_rewinds.to_string(),
        ]);
    }
    print!("{table}");
    println!();
    println!(
        "{}",
        AsciiPlot::new("fpppp IPC vs faults per million instructions", 64, 14)
            .series(r2_series.clone())
            .series(r3_series.clone())
            .render()
    );

    // Paper's reading of the figure.
    let ff_r2 = table_first_ipc(&r2_series, 10.0);
    let hi_r2 = r2_series.y_at_or_before(100_000.0).unwrap();
    measured(&format!(
        "R=2: {} IPC at 10 faults/M vs {} at 100k faults/M ({}% loss at the extreme)",
        fmt_f(ff_r2, 3),
        fmt_f(hi_r2, 3),
        fmt_f((1.0 - hi_r2 / ff_r2) * 100.0, 1)
    ));
    let r3_low = table_first_ipc(&r3_series, 10.0);
    let r3_mid = r3_series.y_at_or_before(3_000.0).unwrap();
    measured(&format!(
        "R=3 majority: {} IPC at 10 faults/M, still {} at 3000 faults/M \
         (unaffected until much higher frequencies)",
        fmt_f(r3_low, 3),
        fmt_f(r3_mid, 3)
    ));
    if !observed_w.is_empty() {
        let w = observed_w.iter().sum::<f64>() / observed_w.len() as f64;
        measured(&format!(
            "typical observed recovery cost W = {} cycles (paper: ~30 for fpppp)",
            fmt_f(w, 1)
        ));
    }
    // Crossover: find the first swept rate where R=3M beats R=2.
    let crossover = r2_series
        .points()
        .iter()
        .zip(r3_series.points())
        .find(|((_, a), (_, b))| b > a)
        .map(|((f, _), _)| *f);
    match crossover {
        Some(f) => measured(&format!(
            "R=2 falls below R=3-majority near {f:.0} faults/M inst — far beyond any \
             realistic soft-error rate"
        )),
        None => measured(
            "R=2 stays above R=3-majority across the whole swept range \
             (crossover beyond 100k faults/M inst)",
        ),
    }
    // "Unaffected until much higher frequencies": R=3M holds within a few
    // percent out to 3000 faults/M, a rate where R=2 has already bent.
    assert!(
        r3_mid / r3_low > 0.90,
        "R=3 majority must stay near-flat to 3000/M"
    );
    assert!(hi_r2 / ff_r2 < 0.9, "R=2 must degrade at 100k faults/M");
}

fn table_first_ipc(s: &Series, x: f64) -> f64 {
    s.y_at_or_before(x).expect("series covers the sweep")
}
