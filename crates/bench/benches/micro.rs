//! Criterion micro-benchmarks of the simulator substrates.
//!
//! These are engineering benchmarks (simulator speed), not paper
//! reproductions — the paper's tables and figures live in the
//! `table*`/`fig*`/`sensitivity` targets.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion, Throughput};
use ftsim_core::{MachineConfig, OracleMode, RunLimits, Simulator};
use ftsim_isa::Emulator;
use ftsim_mem::{AccessKind, Cache, CacheConfig, Hierarchy, HierarchyConfig};
use ftsim_predict::{Bimodal, CombinedPredictor, DirectionPredictor, PredictorConfig};
use ftsim_workloads::{pointer_chase, profile};

fn bench_cache(c: &mut Criterion) {
    let mut g = c.benchmark_group("cache");
    g.throughput(Throughput::Elements(1024));
    g.bench_function("dl1_access_stream", |b| {
        let mut cache = Cache::new(CacheConfig::new("dl1", 32 * 1024, 2, 32));
        let mut addr = 0u64;
        b.iter(|| {
            for _ in 0..1024 {
                addr = addr.wrapping_add(40) & 0xf_ffff;
                std::hint::black_box(cache.access(addr, addr % 3 == 0));
            }
        });
    });
    g.bench_function("hierarchy_access", |b| {
        let mut h = Hierarchy::new(&HierarchyConfig::default());
        let mut addr = 0u64;
        b.iter(|| {
            for _ in 0..1024 {
                addr = addr.wrapping_add(72) & 0xff_ffff;
                std::hint::black_box(h.data_access(addr, AccessKind::Read));
            }
        });
    });
    g.finish();
}

fn bench_predictor(c: &mut Criterion) {
    let mut g = c.benchmark_group("predictor");
    g.throughput(Throughput::Elements(1024));
    g.bench_function("bimodal", |b| {
        let mut p = Bimodal::new(2048);
        b.iter(|| {
            for i in 0..1024u64 {
                let pc = (i * 4) & 0xffff;
                let taken = i % 3 == 0;
                std::hint::black_box(p.predict(pc));
                p.update(pc, taken);
            }
        });
    });
    g.bench_function("combined_table1", |b| {
        let mut p = CombinedPredictor::new(PredictorConfig::default());
        b.iter(|| {
            for i in 0..1024u64 {
                let pc = (i * 4) & 0xffff;
                let taken = (i / 2) % 2 == 0;
                std::hint::black_box(p.predict(pc));
                p.update(pc, taken);
            }
        });
    });
    g.finish();
}

fn bench_emulator(c: &mut Criterion) {
    let mut g = c.benchmark_group("emulator");
    let prog = pointer_chase(256, 5_000);
    g.throughput(Throughput::Elements(15_000)); // ~3 inst per hop
    g.bench_function("in_order_oracle", |b| {
        b.iter_batched(
            || Emulator::new(&prog),
            |mut e| {
                e.run(1_000_000).unwrap();
                e.retired()
            },
            BatchSize::SmallInput,
        );
    });
    g.finish();
}

fn bench_pipeline(c: &mut Criterion) {
    let mut g = c.benchmark_group("pipeline");
    let p = profile("ijpeg").expect("profile");
    let prog = p.program_for_instructions(10_000);
    for config in [MachineConfig::ss1(), MachineConfig::ss2()] {
        let name = config.name.clone();
        g.throughput(Throughput::Elements(10_000));
        g.bench_function(format!("{name}_10k_insts"), |b| {
            b.iter_batched(
                || {
                    Simulator::builder()
                        .config(config.clone())
                        .program(&prog)
                        .oracle(OracleMode::Off)
                        .limits(RunLimits::instructions(10_000))
                        .build()
                        .expect("benchmark machine is valid")
                },
                |sim| sim.run().unwrap().cycles,
                BatchSize::SmallInput,
            );
        });
    }
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .sample_size(20)
        .measurement_time(std::time::Duration::from_secs(2))
        .warm_up_time(std::time::Duration::from_millis(500));
    targets = bench_cache, bench_predictor, bench_emulator, bench_pipeline
}
criterion_main!(benches);
