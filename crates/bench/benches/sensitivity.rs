//! §5.2 sensitivity study — functional-unit and RUU scaling.
//!
//! The paper explains Figure 5's per-benchmark penalties by testing each
//! benchmark's "sensitivity to varying numbers of functional units (0.5x,
//! 2x, infinite) and RUU sizes (0.5x, 2x, infinite)": benchmarks whose
//! baseline IPC rises with more resources are *resource-limited* (high
//! SS-2 penalty); benchmarks that are "almost insensitive to the amount of
//! resources available" (go, vpr) are *ILP-limited* and lose little.
//! swim is additionally RUU-limited.
//!
//! One [`Experiment::grid`]: 11 workloads × 8 scaled machine models
//! (FU 0.5x/1x/2x/inf crossed with RUU 0.5x/1x/2x/inf along each axis
//! separately), run in parallel and exported as CSV/JSON.

use ftsim::harness::Experiment;
use ftsim_bench::{banner, budget, expect_record, export_records, measured};
use ftsim_core::{MachineConfig, Scale};
use ftsim_stats::{fmt_f, Table};
use ftsim_workloads::spec_profiles;

fn main() {
    banner(
        "Section 5.2 sensitivity study",
        "baseline IPC under FU scaling and RUU scaling (0.5x / 1x / 2x / inf)",
        "high-penalty benchmarks are functional-unit limited in the baseline \
         configuration (swim also RUU-limited); go and vpr are almost insensitive \
         to resources (ILP-limited), ammp is division-latency limited",
    );
    let scales = [Scale::Half, Scale::One, Scale::Two, Scale::Infinite];

    let mut models = Vec::new();
    for s in scales {
        models.push(
            MachineConfig::ss1()
                .with_fu_scale(s)
                .named(&format!("FU-{}", s.label())),
        );
    }
    for s in scales {
        models.push(
            MachineConfig::ss1()
                .with_ruu_scale(s)
                .named(&format!("RUU-{}", s.label())),
        );
    }

    let records = Experiment::grid()
        .workloads(spec_profiles())
        .models(models)
        .budget(budget())
        .run()
        .expect("sensitivity grid is well-formed");
    export_records("sensitivity", &records).expect("exporting sensitivity records");

    let mut t = Table::new([
        "Benchmark",
        "FU 0.5x",
        "FU 1x",
        "FU 2x",
        "FU inf",
        "RUU 0.5x",
        "RUU 1x",
        "RUU 2x",
        "RUU inf",
        "class",
    ]);
    t.numeric();
    let mut findings = Vec::new();
    for p in spec_profiles() {
        let ipc_of = |model: String| expect_record(&records, p.name, &model).ipc;
        let fu: Vec<f64> = scales
            .iter()
            .map(|s| ipc_of(format!("FU-{}", s.label())))
            .collect();
        let ruu: Vec<f64> = scales
            .iter()
            .map(|s| ipc_of(format!("RUU-{}", s.label())))
            .collect();
        // Sensitivity: how much IPC changes between 1x and the extremes.
        let fu_sens = (fu[3] - fu[0]) / fu[1];
        let ruu_sens = (ruu[3] - ruu[0]) / ruu[1];
        let class = if fu_sens < 0.25 && ruu_sens < 0.25 {
            "ILP-limited"
        } else if ruu_sens > fu_sens {
            "RUU-limited"
        } else {
            "FU/port-limited"
        };
        findings.push((p.name, fu_sens, ruu_sens, class));
        t.row([
            p.name.to_string(),
            fmt_f(fu[0], 2),
            fmt_f(fu[1], 2),
            fmt_f(fu[2], 2),
            fmt_f(fu[3], 2),
            fmt_f(ruu[0], 2),
            fmt_f(ruu[1], 2),
            fmt_f(ruu[2], 2),
            fmt_f(ruu[3], 2),
            class.to_string(),
        ]);
    }
    print!("{t}");
    println!();

    for (name, fu_s, ruu_s, class) in &findings {
        measured(&format!(
            "{name}: FU sensitivity {}%, RUU sensitivity {}% -> {class}",
            fmt_f(fu_s * 100.0, 0),
            fmt_f(ruu_s * 100.0, 0)
        ));
    }

    // The paper's specific calls.
    let get = |n: &str| findings.iter().find(|(f, ..)| *f == n).unwrap();
    for low in ["go", "vpr"] {
        let (_, fu_s, ruu_s, _) = get(low);
        assert!(
            *fu_s < 0.3 && *ruu_s < 0.3,
            "{low} should be nearly insensitive to resources (ILP-limited)"
        );
    }
    let (_, swim_fu, swim_ruu, _) = get("swim");
    measured(&format!(
        "swim: RUU sensitivity {}% (paper: swim is also RUU-limited)",
        fmt_f(swim_ruu * 100.0, 0)
    ));
    assert!(
        *swim_ruu > 0.15 || *swim_fu > 0.15,
        "swim should respond to resources"
    );
    let hi: Vec<&str> = findings
        .iter()
        .filter(|(_, fu_s, ruu_s, _)| *fu_s >= 0.3 || *ruu_s >= 0.3)
        .map(|(n, ..)| *n)
        .collect();
    measured(&format!(
        "resource-limited benchmarks (expect high SS-2 penalty): {}",
        hi.join(", ")
    ));
}
