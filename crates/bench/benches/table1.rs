//! Table 1 — `sim-outorder` machine parameters for the baseline
//! superscalar model.
//!
//! Regenerates the paper's Table 1 from the live `MachineConfig::ss1()`
//! preset, so any drift between the documented and simulated machine is
//! visible immediately.

use ftsim_bench::banner;
use ftsim_core::MachineConfig;
use ftsim_stats::Table;

fn main() {
    banner(
        "Table 1",
        "sim-outorder machine parameters (baseline superscalar model)",
        "8-wide, RUU 128 / LSQ 64, combined 2K-bimodal + 2-level predictor, \
         64KB/2-way L1I, 32KB/2-way 2-port L1D, 512KB/4-way L2, \
         FU mix 4 IntALU / 2 IntMult / 2 FPAdd / 1 FPMult-Div",
    );
    let m = MachineConfig::ss1();
    m.validate().expect("Table 1 baseline is self-consistent");

    let mut t = Table::new(["Parameter", "Value"]);
    t.row([
        "Fetch/Decode/Dispatch/Issue Width".to_string(),
        format!("{}", m.fetch_width),
    ]);
    t.row([
        "RUU/LSQ size".to_string(),
        format!("{}/{}", m.ruu_size, m.lsq_size),
    ]);
    t.row([
        "Branch Predictor".to_string(),
        format!(
            "combined: {}-entry bimodal + 2-level (L1 {} x {}-bit hist, L2 {}, xor {}); 1 pred/cycle",
            m.predictor.bimodal_entries,
            m.predictor.two_level.l1_entries,
            m.predictor.two_level.hist_bits,
            m.predictor.two_level.l2_entries,
            u8::from(m.predictor.two_level.xor),
        ),
    ]);
    t.row([
        "Instruction L1 cache".to_string(),
        format!(
            "{} KBytes, {}-way associative",
            m.hierarchy.il1.size_bytes / 1024,
            m.hierarchy.il1.assoc
        ),
    ]);
    t.row([
        "Data L1 cache".to_string(),
        format!(
            "{} KBytes, {}-way associative, {} R/W ports",
            m.hierarchy.dl1.size_bytes / 1024,
            m.hierarchy.dl1.assoc,
            m.hierarchy.dl1_ports
        ),
    ]);
    t.row([
        "Unified L2 cache".to_string(),
        format!(
            "{} KBytes, {}-way associative",
            m.hierarchy.l2.size_bytes / 1024,
            m.hierarchy.l2.assoc
        ),
    ]);
    t.row([
        "Functional Unit Mix".to_string(),
        format!(
            "{} Int ALU, {} Int Mult, {} FP Add, {} FP Mult/Div (pipelined except division)",
            m.fu.int_alu, m.fu.int_mul, m.fu.fp_add, m.fu.fp_mul
        ),
    ]);
    t.row([
        "Operation latencies".to_string(),
        format!(
            "ialu {} / imul {} / idiv {} / fadd {} / fmul {} / fdiv {} / fsqrt {}",
            m.lat.int_alu,
            m.lat.int_mul,
            m.lat.int_div,
            m.lat.fp_add,
            m.lat.fp_mul,
            m.lat.fp_div,
            m.lat.fp_sqrt
        ),
    ]);
    print!("{t}");
    println!();
    println!("SS-2 = same hardware with R=2 dynamic redundancy;");
    let s = MachineConfig::static2();
    println!(
        "Static-2 = one of two lock-step pipes: width {}, RUU/LSQ {}/{}, FU {}/{}/{}/{} (caches and branch predictor NOT halved).",
        s.fetch_width, s.ruu_size, s.lsq_size, s.fu.int_alu, s.fu.int_mul, s.fu.fp_add, s.fu.fp_mul
    );
}
