//! Table 2 — summary of benchmark characteristics (dynamic instruction
//! mix).
//!
//! Runs every synthetic workload on the baseline machine — one
//! [`Experiment::grid`] over the 11 profiles — and reports the
//! *committed* dynamic mix (carried in each [`RunRecord`]) next to the
//! paper's Table 2 targets. The match validates the workload generator's
//! calibration.

use ftsim::harness::Experiment;
use ftsim_bench::{banner, budget, expect_record, export_records, measured};
use ftsim_core::MachineConfig;
use ftsim_stats::{fmt_f, Table};
use ftsim_workloads::spec_profiles;

fn main() {
    banner(
        "Table 2",
        "summary of benchmark characteristics (dynamic instruction mix, %)",
        "mixes as tabulated (gcc 74.55/25.45/0/0/0 ... art 35.29/43.50/11.07/8.39/1.36)",
    );
    let records = Experiment::grid()
        .workloads(spec_profiles())
        .models([MachineConfig::ss1()])
        .budget(budget())
        .run()
        .expect("table 2 grid is well-formed");
    export_records("table2", &records).expect("exporting table 2 records");

    let mut t = Table::new([
        "Benchmark",
        "%Mem",
        "(tgt)",
        "%Int",
        "(tgt)",
        "%FPAdd",
        "(tgt)",
        "%FPMult",
        "(tgt)",
        "%FPDiv",
        "(tgt)",
    ]);
    t.numeric();
    let mut worst: f64 = 0.0;
    for p in spec_profiles() {
        let r = expect_record(&records, p.name, "SS-1");
        let meas = [
            r.mix_mem,
            r.mix_int,
            r.mix_fp_add,
            r.mix_fp_mul,
            r.mix_fp_div,
        ];
        let tgt = [
            p.mix.mem,
            p.mix.int,
            p.mix.fp_add,
            p.mix.fp_mul,
            p.mix.fp_div,
        ];
        for (m, g) in meas.iter().zip(tgt.iter()) {
            worst = worst.max((m - g).abs());
        }
        t.row([
            p.name.to_string(),
            fmt_f(meas[0] * 100.0, 2),
            fmt_f(tgt[0] * 100.0, 2),
            fmt_f(meas[1] * 100.0, 2),
            fmt_f(tgt[1] * 100.0, 2),
            fmt_f(meas[2] * 100.0, 2),
            fmt_f(tgt[2] * 100.0, 2),
            fmt_f(meas[3] * 100.0, 2),
            fmt_f(tgt[3] * 100.0, 2),
            fmt_f(meas[4] * 100.0, 2),
            fmt_f(tgt[4] * 100.0, 2),
        ]);
    }
    print!("{t}");
    measured(&format!(
        "largest |measured - Table 2| deviation across all benchmarks and classes: {} percentage points",
        fmt_f(worst * 100.0, 2)
    ));
}
