//! Throughput — simulated cycles/second and retired-instructions/second.
//!
//! Every paper figure is a grid of full-program simulations, so sweep
//! wall-time is bounded by how fast `Processor::cycle` turns. This target
//! measures that directly on two fixed workload sets:
//!
//! * `fig6_grid` — the exact shape of the Figure 6 sweep (fpppp on the
//!   R=2 rewind and R=3 majority machines across the fault-rate axis),
//!   the acceptance workload for scheduler performance work;
//! * `fault_free_trio` — gcc/fpppp/equake on SS-1 and SS-2 with no
//!   injection, isolating the fault-free steady-state cycle loop;
//! * `daemon_cells_per_sec` — a 4-cell smoke grid run end-to-end
//!   through the `ftsimd` fabric (submit → claim → stream → finalize),
//!   pricing the daemon's bookkeeping on top of raw simulation.
//!
//! Two observability rows price the instrumentation added by
//! `ftsim-obs`: `fig6_grid_profiled` reruns the Figure 6 grid with
//! `FTSIM_PROFILE`-style stage profiling forced on (its sampled timers
//! must stay under the 5% overhead budget documented in
//! `ftsim_core::profile`), and `daemon_cells_per_sec_metrics_off`
//! reruns the daemon grid with the metrics registry disabled so the
//! `obs_overhead` summary in the JSON can report metrics-on vs -off
//! daemon throughput.
//!
//! Grids run on one worker thread so the metric is per-core simulator
//! speed, independent of the host's core count. Each grid is measured
//! twice — cold, and as a `*_checkpointed` variant with checkpoint-forking
//! enabled (fault-free prefixes shared across cells; records are
//! byte-identical either way, so `sim_cycles` match and only wall time
//! moves). Each measurement is repeated `FTSIM_REPS` times (default 3,
//! minimum 1) and the best wall time wins, damping scheduler noise.
//! `FTSIM_SMOKE=1` shrinks budgets and repetitions for CI.
//!
//! Results are printed and written to `BENCH_throughput.json` at the
//! workspace root, where the perf trajectory across PRs is recorded.

use ftsim::harness::{Experiment, RunRecord};
use ftsim_bench::banner;
use ftsim_core::MachineConfig;
use ftsim_stats::JsonValue;
use ftsim_workloads::profile;
use std::path::PathBuf;
use std::time::Instant;

struct GridResult {
    name: &'static str,
    cells: usize,
    sim_cycles: u64,
    retired: u64,
    wall_s: f64,
}

impl GridResult {
    fn cycles_per_sec(&self) -> f64 {
        self.sim_cycles as f64 / self.wall_s
    }
    fn instr_per_sec(&self) -> f64 {
        self.retired as f64 / self.wall_s
    }
    fn cells_per_sec(&self) -> f64 {
        self.cells as f64 / self.wall_s
    }
    fn to_json(&self) -> JsonValue {
        JsonValue::obj([
            ("name".into(), JsonValue::Str(self.name.into())),
            ("cells".into(), JsonValue::U64(self.cells as u64)),
            ("sim_cycles".into(), JsonValue::U64(self.sim_cycles)),
            ("retired_instructions".into(), JsonValue::U64(self.retired)),
            ("wall_seconds".into(), JsonValue::F64(self.wall_s)),
            (
                "cycles_per_second".into(),
                JsonValue::F64(self.cycles_per_sec()),
            ),
            (
                "instructions_per_second".into(),
                JsonValue::F64(self.instr_per_sec()),
            ),
            (
                "cells_per_second".into(),
                JsonValue::F64(self.cells_per_sec()),
            ),
        ])
    }
}

/// Worker threads every grid runs on — recorded in the JSON so the
/// per-core claim is auditable rather than assumed.
const WORKER_THREADS: usize = 1;

fn smoke() -> bool {
    std::env::var_os("FTSIM_SMOKE").is_some()
}

fn budget() -> u64 {
    if smoke() {
        5_000
    } else {
        ftsim_bench::budget()
    }
}

fn reps() -> usize {
    std::env::var("FTSIM_REPS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(if smoke() { 1 } else { 3 })
        .max(1)
}

/// Runs `build()` `reps()` times, keeping the best wall time; simulated
/// work totals are identical across repetitions (the grid is
/// deterministic), so only the clock varies.
fn measure(name: &'static str, build: impl Fn() -> Experiment) -> GridResult {
    let mut best: Option<(f64, Vec<RunRecord>)> = None;
    for _ in 0..reps() {
        let grid = build();
        let start = Instant::now();
        let records = grid.run().expect("throughput grid is well-formed");
        let wall = start.elapsed().as_secs_f64();
        if best.as_ref().map_or(true, |(b, _)| wall < *b) {
            best = Some((wall, records));
        }
    }
    let (wall_s, records) = best.expect("at least one repetition");
    let failed = records.iter().filter(|r| !r.ok()).count();
    if failed > 0 {
        // Wedged cells at extreme fault rates still burn (and therefore
        // still count) simulated cycles, but surface the count so a
        // regression that wedges everything can't masquerade as "fast".
        println!("  ({failed}/{} cells did not complete)", records.len());
    }
    GridResult {
        name,
        cells: records.len(),
        sim_cycles: records.iter().map(|r| r.cycles).sum(),
        retired: records.iter().map(|r| r.retired_instructions).sum(),
        wall_s,
    }
}

fn fig6_grid() -> Experiment {
    let rates: [f64; 10] = [
        0.0, 10.0, 30.0, 100.0, 300.0, 1_000.0, 3_000.0, 10_000.0, 30_000.0, 100_000.0,
    ];
    Experiment::grid()
        .workloads([profile("fpppp").expect("fpppp profile exists")])
        .models([MachineConfig::ss2(), MachineConfig::ss3_majority()])
        .fault_rates(rates)
        .seeds([42])
        .budget(budget())
        .threads(WORKER_THREADS)
        .checkpointing(false)
}

fn fault_free_trio() -> Experiment {
    let trio: Vec<_> = ["gcc", "fpppp", "equake"]
        .iter()
        .map(|n| profile(n).unwrap_or_else(|| panic!("profile {n} exists")))
        .collect();
    Experiment::grid()
        .workloads(trio)
        .models([MachineConfig::ss1(), MachineConfig::ss2()])
        .budget(budget())
        .threads(WORKER_THREADS)
        .checkpointing(false)
}

/// The same 4-cell smoke grid CI submits over HTTP, run end-to-end
/// through the daemon fabric (submit → claim → stream → finalize) in
/// one process. `cells_per_second` on this row is the
/// `daemon_cells_per_sec` figure tracked in `ROADMAP.md` — it prices
/// the fabric's overhead (claim files, per-row fsync, finalize) on top
/// of raw simulation, which the other rows measure.
fn measure_daemon(name: &'static str) -> GridResult {
    use ftsim_daemon::{JobSpec, JobStore, ServeOptions};
    let mut best: Option<(f64, Vec<RunRecord>)> = None;
    for rep in 0..reps() {
        let dir =
            std::env::temp_dir().join(format!("ftsim-bench-daemon-{}-{rep}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        let store = JobStore::open(&dir).expect("open bench state dir");
        let mut spec = JobSpec::new("throughput-smoke");
        spec.workloads = vec!["gcc".to_string()];
        spec.models = vec!["SS-2".to_string()];
        spec.fault_rates_pm = vec![0.0, 5_000.0];
        spec.seeds = vec![3, 4];
        spec.budgets = vec![budget()];
        spec.threads = WORKER_THREADS;
        let (id, _) = store.submit(&spec).expect("submit bench job");
        let start = Instant::now();
        ftsim_daemon::serve(
            &store,
            &ServeOptions {
                drain: true,
                ..Default::default()
            },
        )
        .expect("drain bench job");
        let wall = start.elapsed().as_secs_f64();
        let job = store.job(&id).expect("bench job exists");
        let text = std::fs::read_to_string(job.results_path()).expect("bench job finalized");
        let records = ftsim::harness::from_csv(&text).expect("bench results parse");
        if best.as_ref().map_or(true, |(b, _)| wall < *b) {
            best = Some((wall, records));
        }
        std::fs::remove_dir_all(&dir).ok();
    }
    let (wall_s, records) = best.expect("at least one repetition");
    GridResult {
        name,
        cells: records.len(),
        sim_cycles: records.iter().map(|r| r.cycles).sum(),
        retired: records.iter().map(|r| r.retired_instructions).sum(),
        wall_s,
    }
}

fn main() {
    banner(
        "Throughput",
        "simulated cycles/second and retired-instructions/second (1 worker)",
        "sweep wall-time is bounded by Processor::cycle; this target tracks the \
         perf trajectory of the scheduler core across PRs",
    );
    println!(
        "budget {} instructions/cell, best of {} repetition(s)\n",
        budget(),
        reps()
    );

    let mut results = vec![
        measure("fig6_grid", fig6_grid),
        measure("fig6_grid_checkpointed", || fig6_grid().checkpointing(true)),
        measure("fault_free_trio", fault_free_trio),
        measure("fault_free_trio_checkpointed", || {
            fault_free_trio().checkpointing(true)
        }),
    ];

    // Same grid with stage profiling forced on: the sampled timers must
    // stay inside the 5% budget `ftsim_core::profile` documents.
    ftsim_core::profile::set_enabled(true);
    results.push(measure("fig6_grid_profiled", fig6_grid));
    ftsim_core::profile::set_enabled(false);

    // Daemon throughput with the metrics registry on (the default) and
    // off; the delta is the exporter's bookkeeping cost.
    results.push(measure_daemon("daemon_cells_per_sec"));
    ftsim_obs::metrics::set_enabled(false);
    results.push(measure_daemon("daemon_cells_per_sec_metrics_off"));
    ftsim_obs::metrics::set_enabled(true);

    for r in &results {
        println!(
            "{:<28} {:>3} cells  {:>12} sim cycles  {:>8.3} s  {:>12.0} cycles/s  {:>12.0} instr/s",
            r.name,
            r.cells,
            r.sim_cycles,
            r.wall_s,
            r.cycles_per_sec(),
            r.instr_per_sec()
        );
    }

    // Observability overhead summary: profiled-vs-cold grid wall time
    // and metrics-on-vs-off daemon wall time, as percentages (positive =
    // instrumentation cost). Wall-clock noise can make either negative.
    let wall_of = |name: &str| {
        results
            .iter()
            .find(|r| r.name == name)
            .map(|r| r.wall_s)
            .unwrap_or(f64::NAN)
    };
    let pct = |on: f64, off: f64| (on - off) / off * 100.0;
    let profile_pct = pct(wall_of("fig6_grid_profiled"), wall_of("fig6_grid"));
    let metrics_pct = pct(
        wall_of("daemon_cells_per_sec"),
        wall_of("daemon_cells_per_sec_metrics_off"),
    );
    println!(
        "\nobs overhead: stage profiling {profile_pct:+.2}% (budget < 5%), \
         daemon metrics {metrics_pct:+.2}%"
    );

    let doc = JsonValue::obj([
        ("bench".into(), JsonValue::Str("throughput".into())),
        ("budget".into(), JsonValue::U64(budget())),
        ("reps".into(), JsonValue::U64(reps() as u64)),
        ("threads".into(), JsonValue::U64(WORKER_THREADS as u64)),
        (
            "grids".into(),
            JsonValue::Arr(results.iter().map(GridResult::to_json).collect()),
        ),
        (
            "obs_overhead".into(),
            JsonValue::obj([
                ("stage_profiling_pct".into(), JsonValue::F64(profile_pct)),
                ("daemon_metrics_pct".into(), JsonValue::F64(metrics_pct)),
            ]),
        ),
    ]);
    // Anchor at the workspace root (this crate lives two levels below it);
    // fall back to the cwd for a relocated binary.
    let root = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../..");
    let path = if root.join("Cargo.toml").exists() {
        root.join("BENCH_throughput.json")
    } else {
        PathBuf::from("BENCH_throughput.json")
    };
    std::fs::write(&path, doc.render_pretty(2) + "\n").expect("write BENCH_throughput.json");
    println!("\nwrote {}", path.display());
}
