//! Shared harness for the paper-reproduction experiments.
//!
//! Every table and figure of the paper's evaluation has a `cargo bench`
//! target in this crate (`table1`, `table2`, `fig3`, `fig4`, `fig5`,
//! `fig6`, `sensitivity`); each prints the same rows or series the paper
//! reports, plus the paper's headline claim next to the measured value.
//! `micro` holds Criterion micro-benchmarks of the substrates.
//!
//! Instruction budgets are deliberately small (the paper simulates 1 B
//! instructions per benchmark; we default to 60 k per run, overridable via
//! the `FTSIM_BUDGET` environment variable) — the *shape* of every result
//! is stable well below the paper's budget because the synthetic workloads
//! are steady-state loops.

use ftsim_core::{MachineConfig, OracleMode, RunLimits, SimResult, Simulator};
use ftsim_faults::FaultInjector;
use ftsim_workloads::WorkloadProfile;

/// Default committed-instruction budget per simulation.
pub const DEFAULT_BUDGET: u64 = 60_000;

/// The per-run instruction budget (`FTSIM_BUDGET` env override).
///
/// # Examples
///
/// ```
/// let b = ftsim_bench::budget();
/// assert!(b >= 1_000);
/// ```
pub fn budget() -> u64 {
    std::env::var("FTSIM_BUDGET")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(DEFAULT_BUDGET)
        .max(1_000)
}

/// Runs `profile` on `config` for the standard budget, without oracle
/// verification (performance sweeps) and with deterministic fault
/// injection disabled.
///
/// # Panics
///
/// Panics if the simulation errors (an experiment configuration bug).
pub fn run_workload(profile: &WorkloadProfile, config: MachineConfig, n: u64) -> SimResult {
    let program = profile.program_for_instructions(n);
    Simulator::new(config, &program)
        .oracle(OracleMode::Off)
        .run_with_limits(RunLimits::instructions(n))
        .unwrap_or_else(|e| panic!("{} on {}: {e}", profile.name, e))
}

/// As [`run_workload`] with a fault injector.
///
/// Returns `Err` when the machine wedges or overruns its cycle budget —
/// which legitimately happens at extreme fault rates when an *identical*
/// corruption strikes every copy of a control instruction (the paper's
/// §2.2 indiscernible-error case) and garbage control flow commits.
pub fn run_workload_with_faults(
    profile: &WorkloadProfile,
    config: MachineConfig,
    n: u64,
    injector: FaultInjector,
) -> Result<SimResult, ftsim_core::SimError> {
    let program = profile.program_for_instructions(n);
    Simulator::with_injector(config, &program, injector)
        .oracle(OracleMode::Off)
        .run_with_limits(RunLimits {
            max_cycles: 100 * n.max(1_000),
            ..RunLimits::instructions(n)
        })
}

/// The three machine models of Figure 5, in the paper's order.
pub fn figure5_models() -> [MachineConfig; 3] {
    [
        MachineConfig::ss1(),
        MachineConfig::static2(),
        MachineConfig::ss2(),
    ]
}

/// Prints a standard experiment banner.
pub fn banner(id: &str, title: &str, paper_claim: &str) {
    println!("================================================================");
    println!("{id}: {title}");
    println!("paper: {paper_claim}");
    println!("================================================================");
}

/// Prints a `measured:` line used by the experiment summaries.
pub fn measured(text: &str) {
    println!("measured: {text}");
}

#[cfg(test)]
mod tests {
    use super::*;
    use ftsim_workloads::profile;

    #[test]
    fn budget_floor() {
        assert!(budget() >= 1_000);
    }

    #[test]
    fn run_workload_produces_ipc() {
        let p = profile("ijpeg").unwrap();
        let r = run_workload(&p, MachineConfig::ss1(), 5_000);
        assert!(r.ipc > 0.5);
        // The generated program halts within ~10% of the requested budget.
        assert!(r.retired_instructions >= 4_000);
    }

    #[test]
    fn figure5_models_are_distinct() {
        let m = figure5_models();
        assert_eq!(m[0].name, "SS-1");
        assert_eq!(m[1].name, "Static-2");
        assert_eq!(m[2].name, "SS-2");
    }
}
