//! Shared harness for the paper-reproduction experiments.
//!
//! Every table and figure of the paper's evaluation has a `cargo bench`
//! target in this crate (`table1`, `table2`, `fig3`, `fig4`, `fig5`,
//! `fig6`, `sensitivity`); each prints the same rows or series the paper
//! reports, plus the paper's headline claim next to the measured value.
//! `micro` holds micro-benchmarks of the substrates.
//!
//! The sweep targets are built on [`ftsim::harness::Experiment`]: each
//! declares its grid (workloads × machine models × fault rates ×
//! budgets), lets the harness fan the cells out across worker threads,
//! and renders its tables from the returned [`RunRecord`]s — which are
//! also exported as CSV and JSON under `target/experiments/` (see
//! [`export_records`]).
//!
//! Instruction budgets are deliberately small (the paper simulates 1 B
//! instructions per benchmark; we default to 60 k per run, overridable via
//! the `FTSIM_BUDGET` environment variable) — the *shape* of every result
//! is stable well below the paper's budget because the synthetic workloads
//! are steady-state loops.

#![warn(missing_docs)]

use ftsim::harness::{to_csv, to_json, RunRecord};
use ftsim_core::{MachineConfig, OracleMode, SimError, SimResult, Simulator};
use ftsim_faults::FaultInjector;
use ftsim_workloads::WorkloadProfile;
use std::path::PathBuf;
use std::sync::Arc;

pub use ftsim::harness::DEFAULT_BUDGET;

/// The per-run instruction budget (`FTSIM_BUDGET` env override).
///
/// # Examples
///
/// ```
/// let b = ftsim_bench::budget();
/// assert!(b >= 1_000);
/// ```
pub fn budget() -> u64 {
    std::env::var("FTSIM_BUDGET")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(DEFAULT_BUDGET)
        .max(1_000)
}

/// Runs `profile` on `config` for `n` committed instructions, without
/// oracle verification (performance sweeps) and without fault injection.
///
/// # Errors
///
/// The run's [`SimError`] — e.g. the watchdog or cycle ceiling on a
/// misconfigured experiment.
pub fn try_run_workload(
    profile: &WorkloadProfile,
    config: MachineConfig,
    n: u64,
) -> Result<SimResult, SimError> {
    let program = profile.program_for_instructions(n);
    Simulator::builder()
        .config(config)
        .program_shared(Arc::new(program))
        .oracle(OracleMode::Off)
        .budget(n)
        .run()
}

/// As [`try_run_workload`] with a fault injector.
///
/// Returns `Err` when the machine wedges or overruns its cycle budget —
/// which legitimately happens at extreme fault rates when an *identical*
/// corruption strikes every copy of a control instruction (the paper's
/// §2.2 indiscernible-error case) and garbage control flow commits.
pub fn try_run_workload_with_faults(
    profile: &WorkloadProfile,
    config: MachineConfig,
    n: u64,
    injector: FaultInjector,
) -> Result<SimResult, SimError> {
    let program = profile.program_for_instructions(n);
    Simulator::builder()
        .config(config)
        .program_shared(Arc::new(program))
        .injector(injector)
        .oracle(OracleMode::Off)
        .budget(n)
        .run()
}

/// The three machine models of Figure 5, in the paper's order.
pub fn figure5_models() -> [MachineConfig; 3] {
    [
        MachineConfig::ss1(),
        MachineConfig::static2(),
        MachineConfig::ss2(),
    ]
}

/// Writes `records` as `<name>.csv` and `<name>.json` under
/// `target/experiments/` (or `$FTSIM_OUT` when set), printing and
/// returning the two paths.
///
/// # Errors
///
/// Any I/O error creating the directory or writing the files.
pub fn export_records(name: &str, records: &[RunRecord]) -> std::io::Result<(PathBuf, PathBuf)> {
    // Anchor at the workspace root (this crate lives two levels below it)
    // so `cargo bench`'s package-relative cwd doesn't scatter outputs
    // across member directories. The anchor is a compile-time path, so a
    // binary relocated off its build machine falls back to the cwd.
    let dir = std::env::var_os("FTSIM_OUT")
        .map(PathBuf::from)
        .unwrap_or_else(|| {
            let anchored =
                PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../target/experiments");
            if std::fs::create_dir_all(&anchored).is_ok() {
                anchored
            } else {
                PathBuf::from("target/experiments")
            }
        });
    std::fs::create_dir_all(&dir)?;
    let csv_path = dir.join(format!("{name}.csv"));
    let json_path = dir.join(format!("{name}.json"));
    std::fs::write(&csv_path, to_csv(records))?;
    std::fs::write(&json_path, to_json(records))?;
    println!(
        "exported {} records to {} and {}",
        records.len(),
        csv_path.display(),
        json_path.display()
    );
    Ok((csv_path, json_path))
}

pub use ftsim::harness::{expect_record, record_for};

/// Prints a standard experiment banner.
pub fn banner(id: &str, title: &str, paper_claim: &str) {
    println!("================================================================");
    println!("{id}: {title}");
    println!("paper: {paper_claim}");
    println!("================================================================");
}

/// Prints a `measured:` line used by the experiment summaries.
pub fn measured(text: &str) {
    println!("measured: {text}");
}

#[cfg(test)]
mod tests {
    use super::*;
    use ftsim_workloads::profile;

    #[test]
    fn budget_floor() {
        assert!(budget() >= 1_000);
    }

    #[test]
    fn try_run_workload_produces_ipc() {
        let p = profile("ijpeg").unwrap();
        let r = try_run_workload(&p, MachineConfig::ss1(), 5_000).unwrap();
        assert!(r.ipc > 0.5);
        // The generated program halts within ~10% of the requested budget.
        assert!(r.retired_instructions >= 4_000);
    }

    #[test]
    fn try_run_workload_reports_errors_instead_of_panicking() {
        // An impossible machine: validation fails in the builder, and the
        // Result surfaces it instead of a panic mid-sweep.
        let mut bad = MachineConfig::ss2();
        bad.dispatch_width = 1;
        let p = profile("gcc").unwrap();
        let err = try_run_workload(&p, bad, 2_000).unwrap_err();
        assert!(matches!(err, SimError::Invalid(_)), "{err}");
    }

    #[test]
    fn figure5_models_are_distinct() {
        let m = figure5_models();
        assert_eq!(m[0].name, "SS-1");
        assert_eq!(m[1].name, "Static-2");
        assert_eq!(m[2].name, "SS-2");
    }

    #[test]
    fn record_lookup_finds_ok_cells() {
        use ftsim::harness::Experiment;
        let records = Experiment::grid()
            .workloads([profile("gcc").unwrap()])
            .models(figure5_models())
            .budget(1_500)
            .run()
            .unwrap();
        assert!(record_for(&records, "gcc", "SS-2").is_some());
        assert!(record_for(&records, "gcc", "SS-9").is_none());
    }
}
