//! Deterministic I/O failpoint layer for the ftsim daemon fabric.
//!
//! The paper's premise is that faults are inevitable and must be recovered
//! from without corrupting architectural state. This crate applies the same
//! discipline to our own service layer: every filesystem and socket
//! operation in the daemon routes through the [`IoEnv`] trait, and the
//! chaos implementation — enabled by setting `FTSIM_CHAOS=<seed>:<spec>` —
//! injects faults at named **failpoint sites** according to a seeded,
//! reproducible plan.
//!
//! Injectable faults (see [`plan`] for the grammar):
//!
//! * `EIO` / `ENOSPC` errors at a site, deterministically or by probability;
//! * torn writes (a seeded prefix of the payload persists, then EIO);
//! * dropped renames (the destination is lost after the unlink-visible
//!   moment);
//! * per-operation delays, to widen race windows in concurrency tests;
//! * lease-clock skew;
//! * `process::abort()` at the N-th hit of a site, for crash-matrix tests;
//! * NFS-grade primitive weakening (`nfs@GLOB`): `create_new` silently
//!   loses `O_EXCL` (every racing creator "wins", last writer's bytes
//!   stick), `rename` degrades to copy-then-delete, and mtimes coarsen
//!   to whole seconds — the failure model of a lowest-common-denominator
//!   network filesystem, used to prove the daemon's relaxed lease mode.
//!
//! Production code calls [`io()`] once per operation; without `FTSIM_CHAOS`
//! in the environment this resolves to [`RealIo`], a zero-cost pass-through
//! to `std::fs` / `std::time`. The companion [`retry::Backoff`] policy gives
//! callers a bounded, jittered retry schedule for the transient errors this
//! layer (or a real flaky filesystem) produces.

#![warn(missing_docs)]

pub mod plan;
pub mod retry;

use std::fmt::Debug;
use std::fs::{self, File, OpenOptions};
use std::io::{self, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::{Duration, SystemTime, UNIX_EPOCH};

use plan::{glob_matches, Clause, Plan};

/// Raw OS error code for `ENOSPC` ("no space left on device").
///
/// `io::ErrorKind::StorageFull` is not stable at our MSRV, so callers that
/// need to special-case disk-full detection compare
/// `error.raw_os_error() == Some(ftsim_chaos::ENOSPC)`.
pub const ENOSPC: i32 = 28;

/// Raw OS error code for `EIO` (generic I/O error).
pub const EIO: i32 = 5;

static TEMP_SEQ: AtomicU64 = AtomicU64::new(0);

fn temp_path(path: &Path) -> PathBuf {
    let seq = TEMP_SEQ.fetch_add(1, Ordering::Relaxed);
    path.with_extension(format!("tmp.{}.{}", std::process::id(), seq))
}

fn wall_clock_ms() -> u64 {
    SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .map(|d| d.as_millis() as u64)
        .unwrap_or(0)
}

/// The injectable I/O surface the daemon's persistence and network layers
/// run on.
///
/// Every method takes a `site` — a stable, dotted failpoint name from the
/// daemon's failpoint catalog (e.g. `fabric.claim.renew`). [`RealIo`]
/// ignores the site; [`ChaosIo`] uses it to decide which fault, if any, to
/// inject before (or instead of) performing the operation.
pub trait IoEnv: Send + Sync + Debug {
    /// Reads an entire file to a string (lossy conversion is the caller's
    /// concern; this fails on invalid UTF-8 like `fs::read_to_string`).
    fn read_to_string(&self, site: &str, path: &Path) -> io::Result<String>;

    /// Reads an entire file to bytes.
    fn read(&self, site: &str, path: &Path) -> io::Result<Vec<u8>>;

    /// Writes `data` to `path`, truncating, without durability guarantees.
    fn write_file(&self, site: &str, path: &Path, data: &[u8]) -> io::Result<()>;

    /// Durably replaces `path` with `data`: writes a unique sibling temp
    /// file, `sync_data`s it, then renames over `path`.
    ///
    /// Under chaos, a `torn` clause tears the temp-file write and a
    /// `drop-rename` clause loses the destination at the rename step.
    fn write_atomic(&self, site: &str, path: &Path, data: &[u8]) -> io::Result<()>;

    /// Exclusively creates `path` with `data` (`O_CREAT|O_EXCL` semantics),
    /// fsyncing on success. Returns `Ok(false)` if the path already exists.
    fn create_new(&self, site: &str, path: &Path, data: &[u8]) -> io::Result<bool>;

    /// Creates a single directory (fails with `AlreadyExists` if present).
    fn create_dir(&self, site: &str, path: &Path) -> io::Result<()>;

    /// Creates a directory and all missing parents.
    fn create_dir_all(&self, site: &str, path: &Path) -> io::Result<()>;

    /// Renames `from` to `to`.
    fn rename(&self, site: &str, from: &Path, to: &Path) -> io::Result<()>;

    /// Removes a file.
    fn remove_file(&self, site: &str, path: &Path) -> io::Result<()>;

    /// Removes a directory tree.
    fn remove_dir_all(&self, site: &str, path: &Path) -> io::Result<()>;

    /// Lists the entries of a directory, sorted by path for determinism.
    fn list_dir(&self, site: &str, path: &Path) -> io::Result<Vec<PathBuf>>;

    /// Appends `data` to an open file and `sync_data`s it — the fsynced
    /// CSV-append primitive. Under chaos a `torn` clause persists a seeded
    /// prefix of `data` before failing.
    fn append_sync(&self, site: &str, file: &mut File, data: &[u8]) -> io::Result<()>;

    /// Bare failpoint gate for operations without a dedicated primitive
    /// (socket accept/read/write, file opens). Returns an injected error
    /// (or aborts) per the plan; [`RealIo`] always succeeds.
    fn gate(&self, site: &str) -> io::Result<()>;

    /// Milliseconds since the Unix epoch, as seen by the lease clock.
    /// Chaos plans may skew this.
    fn now_ms(&self) -> u64;

    /// Whether an `nfs@GLOB` clause weakens the primitives at `site`.
    /// Callers that *depend* on `create_new`/`rename` atomicity (the
    /// fabric's strict lease mode) can consult this to warn; correctness
    /// must never require it. Always `false` for [`RealIo`].
    fn nfs_weak(&self, site: &str) -> bool {
        let _ = site;
        false
    }
}

/// Pass-through [`IoEnv`]: plain `std::fs` / `std::time` with no faults.
#[derive(Debug, Default, Clone, Copy)]
pub struct RealIo;

impl IoEnv for RealIo {
    fn read_to_string(&self, _site: &str, path: &Path) -> io::Result<String> {
        fs::read_to_string(path)
    }

    fn read(&self, _site: &str, path: &Path) -> io::Result<Vec<u8>> {
        fs::read(path)
    }

    fn write_file(&self, _site: &str, path: &Path, data: &[u8]) -> io::Result<()> {
        fs::write(path, data)
    }

    fn write_atomic(&self, _site: &str, path: &Path, data: &[u8]) -> io::Result<()> {
        let tmp = temp_path(path);
        {
            let mut file = File::create(&tmp)?;
            file.write_all(data)?;
            file.sync_data()?;
        }
        match fs::rename(&tmp, path) {
            Ok(()) => Ok(()),
            Err(e) => {
                let _ = fs::remove_file(&tmp);
                Err(e)
            }
        }
    }

    fn create_new(&self, _site: &str, path: &Path, data: &[u8]) -> io::Result<bool> {
        let mut file = match OpenOptions::new().write(true).create_new(true).open(path) {
            Ok(file) => file,
            Err(e) if e.kind() == io::ErrorKind::AlreadyExists => return Ok(false),
            Err(e) => return Err(e),
        };
        file.write_all(data)?;
        file.sync_data()?;
        Ok(true)
    }

    fn create_dir(&self, _site: &str, path: &Path) -> io::Result<()> {
        fs::create_dir(path)
    }

    fn create_dir_all(&self, _site: &str, path: &Path) -> io::Result<()> {
        fs::create_dir_all(path)
    }

    fn rename(&self, _site: &str, from: &Path, to: &Path) -> io::Result<()> {
        fs::rename(from, to)
    }

    fn remove_file(&self, _site: &str, path: &Path) -> io::Result<()> {
        fs::remove_file(path)
    }

    fn remove_dir_all(&self, _site: &str, path: &Path) -> io::Result<()> {
        fs::remove_dir_all(path)
    }

    fn list_dir(&self, _site: &str, path: &Path) -> io::Result<Vec<PathBuf>> {
        let mut entries = Vec::new();
        for entry in fs::read_dir(path)? {
            entries.push(entry?.path());
        }
        entries.sort();
        Ok(entries)
    }

    fn append_sync(&self, _site: &str, file: &mut File, data: &[u8]) -> io::Result<()> {
        file.write_all(data)?;
        file.sync_data()
    }

    fn gate(&self, _site: &str) -> io::Result<()> {
        Ok(())
    }

    fn now_ms(&self) -> u64 {
        wall_clock_ms()
    }
}

/// What a chaos plan decided for one hit of one failpoint site.
#[derive(Debug)]
enum Verdict {
    /// Perform the operation normally.
    Pass,
    /// Fail with the given raw OS error.
    Fail(i32),
    /// Persist `keep` bytes of the payload, then fail with EIO.
    Tear { keep: usize },
    /// Remove the rename destination, then fail with EIO.
    DropRename,
}

#[derive(Debug)]
struct ChaosState {
    rng: u64,
    hits: std::collections::HashMap<String, u64>,
}

impl ChaosState {
    fn next_f64(&mut self) -> f64 {
        self.rng ^= self.rng << 13;
        self.rng ^= self.rng >> 7;
        self.rng ^= self.rng << 17;
        (self.rng.wrapping_mul(0x2545_f491_4f6c_dd1d) >> 11) as f64 / (1u64 << 53) as f64
    }

    fn below(&mut self, bound: u64) -> u64 {
        if bound == 0 {
            return 0;
        }
        self.rng ^= self.rng << 13;
        self.rng ^= self.rng >> 7;
        self.rng ^= self.rng << 17;
        self.rng.wrapping_mul(0x2545_f491_4f6c_dd1d) % bound
    }
}

/// Fault-injecting [`IoEnv`] driven by a parsed [`Plan`].
///
/// Hit counters are tracked per site; probabilistic clauses draw from a
/// seeded xorshift stream, so a given `(seed, spec, operation sequence)` is
/// fully reproducible.
#[derive(Debug)]
pub struct ChaosIo {
    plan: Plan,
    skew_ms: i64,
    state: Mutex<ChaosState>,
}

impl ChaosIo {
    /// Builds a chaos environment from a parsed plan.
    pub fn new(plan: Plan) -> ChaosIo {
        let skew_ms = plan
            .clauses
            .iter()
            .filter_map(|c| match c {
                Clause::Skew { ms } => Some(*ms),
                _ => None,
            })
            .sum();
        ChaosIo {
            skew_ms,
            state: Mutex::new(ChaosState {
                rng: plan.seed | 1,
                hits: std::collections::HashMap::new(),
            }),
            plan,
        }
    }

    /// Parses `spec` (the `FTSIM_CHAOS` value) and builds the environment.
    pub fn from_spec(spec: &str) -> Result<ChaosIo, plan::ParseError> {
        Ok(ChaosIo::new(Plan::parse(spec)?))
    }

    /// Number of times `site` has been hit so far.
    pub fn hits(&self, site: &str) -> u64 {
        let state = self.state.lock().unwrap();
        state.hits.get(site).copied().unwrap_or(0)
    }

    /// Records a hit of `site` and evaluates the plan's clauses against it.
    ///
    /// `payload_len` bounds the kept prefix for `torn` clauses; sites that
    /// carry no payload pass 0. Delays sleep here; `abort` clauses do not
    /// return.
    fn gate(&self, site: &str, payload_len: usize) -> Verdict {
        let mut state = self.state.lock().unwrap();
        let hit = state.hits.entry(site.to_string()).or_insert(0);
        *hit += 1;
        let hit = *hit;
        let mut sleep_ms = 0u64;
        let mut verdict = Verdict::Pass;
        for clause in &self.plan.clauses {
            match clause {
                Clause::Abort { site: s, nth } if s == site && *nth == hit => {
                    eprintln!("ftsim-chaos: abort at failpoint {site}#{hit}");
                    std::process::abort();
                }
                Clause::Torn { site: s, nth } if s == site && *nth == hit => {
                    let keep = state.below(payload_len as u64) as usize;
                    verdict = Verdict::Tear { keep };
                    break;
                }
                Clause::DropRename { site: s, nth } if s == site && *nth == hit => {
                    verdict = Verdict::DropRename;
                    break;
                }
                Clause::Eio { glob, prob }
                    if glob_matches(glob, site) && (*prob >= 1.0 || state.next_f64() < *prob) =>
                {
                    verdict = Verdict::Fail(EIO);
                    break;
                }
                Clause::Enospc { glob, prob }
                    if glob_matches(glob, site) && (*prob >= 1.0 || state.next_f64() < *prob) =>
                {
                    verdict = Verdict::Fail(ENOSPC);
                    break;
                }
                Clause::Delay { glob, prob, ms }
                    if glob_matches(glob, site) && (*prob >= 1.0 || state.next_f64() < *prob) =>
                {
                    sleep_ms = sleep_ms.max(*ms);
                }
                Clause::DelayNth { site: s, nth, ms } if s == site && *nth == hit => {
                    sleep_ms = sleep_ms.max(*ms);
                }
                _ => {}
            }
        }
        drop(state);
        if sleep_ms > 0 {
            std::thread::sleep(Duration::from_millis(sleep_ms));
        }
        verdict
    }

    /// Whether an `nfs@GLOB` clause covers `site`.
    fn nfs_site(&self, site: &str) -> bool {
        self.plan.clauses.iter().any(|c| match c {
            Clause::Nfs { glob } => glob_matches(glob, site),
            _ => false,
        })
    }

    /// Coarsens `path`'s mtime to whole seconds, the granularity a
    /// hostile NFS server reports. Best-effort: a racing unlink loses
    /// nothing (the staleness heuristics already treat missing files as
    /// resolved).
    fn coarsen_mtime(path: &Path) {
        let Ok(file) = OpenOptions::new().write(true).open(path) else {
            return;
        };
        let Ok(modified) = file.metadata().and_then(|m| m.modified()) else {
            return;
        };
        if let Ok(d) = modified.duration_since(UNIX_EPOCH) {
            let coarse = UNIX_EPOCH + Duration::from_secs(d.as_secs());
            let _ = file.set_times(fs::FileTimes::new().set_modified(coarse));
        }
    }

    fn injected(code: i32, site: &str) -> io::Error {
        // Keep the raw OS code intact (callers detect ENOSPC via
        // `raw_os_error`); the site context goes to stderr instead.
        eprintln!("ftsim-chaos: injected fault at {site} (os error {code})");
        if let Some(observer) = INJECTION_OBSERVER.get() {
            observer(code, site);
        }
        io::Error::from_raw_os_error(code)
    }

    fn check(&self, site: &str) -> io::Result<()> {
        match self.gate(site, 0) {
            Verdict::Pass => Ok(()),
            Verdict::Fail(code) => Err(Self::injected(code, site)),
            // Tear/drop-rename clauses degrade to plain EIO at sites that
            // carry no payload or rename.
            Verdict::Tear { .. } | Verdict::DropRename => Err(Self::injected(EIO, site)),
        }
    }
}

impl IoEnv for ChaosIo {
    fn read_to_string(&self, site: &str, path: &Path) -> io::Result<String> {
        self.check(site)?;
        fs::read_to_string(path)
    }

    fn read(&self, site: &str, path: &Path) -> io::Result<Vec<u8>> {
        self.check(site)?;
        fs::read(path)
    }

    fn write_file(&self, site: &str, path: &Path, data: &[u8]) -> io::Result<()> {
        match self.gate(site, data.len()) {
            Verdict::Pass => fs::write(path, data),
            Verdict::Fail(code) => Err(Self::injected(code, site)),
            Verdict::Tear { keep } => {
                let _ = fs::write(path, &data[..keep]);
                Err(Self::injected(EIO, site))
            }
            Verdict::DropRename => Err(Self::injected(EIO, site)),
        }
    }

    fn write_atomic(&self, site: &str, path: &Path, data: &[u8]) -> io::Result<()> {
        match self.gate(site, data.len()) {
            Verdict::Pass if self.nfs_site(site) => {
                // No atomic replace on this mount: a plain truncating
                // write, leaving the usual torn window, then a coarse
                // mtime.
                fs::write(path, data)?;
                Self::coarsen_mtime(path);
                Ok(())
            }
            Verdict::Pass => RealIo.write_atomic(site, path, data),
            Verdict::Fail(code) => Err(Self::injected(code, site)),
            Verdict::Tear { keep } => {
                // The temp-file write tears: a prefix survives under the
                // temp name, the destination is never replaced.
                let tmp = temp_path(path);
                let _ = fs::write(&tmp, &data[..keep]);
                Err(Self::injected(EIO, site))
            }
            Verdict::DropRename => {
                // The rename happens after the unlink-visible moment on a
                // hostile filesystem: the old destination is gone and the
                // new contents never land.
                let _ = fs::remove_file(path);
                Err(Self::injected(EIO, site))
            }
        }
    }

    fn create_new(&self, site: &str, path: &Path, data: &[u8]) -> io::Result<bool> {
        match self.gate(site, data.len()) {
            Verdict::Pass if self.nfs_site(site) => {
                // O_EXCL is silently ignored (NFSv2 semantics): every
                // racing creator "succeeds" and the last writer's bytes
                // stick. Exclusivity consumers must verify after write.
                fs::write(path, data)?;
                Self::coarsen_mtime(path);
                Ok(true)
            }
            Verdict::Pass => RealIo.create_new(site, path, data),
            Verdict::Fail(code) => Err(Self::injected(code, site)),
            Verdict::Tear { keep } => {
                match OpenOptions::new().write(true).create_new(true).open(path) {
                    Ok(mut file) => {
                        let _ = file.write_all(&data[..keep]);
                        Err(Self::injected(EIO, site))
                    }
                    Err(e) if e.kind() == io::ErrorKind::AlreadyExists => Ok(false),
                    Err(e) => Err(e),
                }
            }
            Verdict::DropRename => Err(Self::injected(EIO, site)),
        }
    }

    fn create_dir(&self, site: &str, path: &Path) -> io::Result<()> {
        self.check(site)?;
        fs::create_dir(path)
    }

    fn create_dir_all(&self, site: &str, path: &Path) -> io::Result<()> {
        self.check(site)?;
        fs::create_dir_all(path)
    }

    fn rename(&self, site: &str, from: &Path, to: &Path) -> io::Result<()> {
        match self.gate(site, 0) {
            Verdict::Pass if self.nfs_site(site) => {
                // Cross-directory rename degrades to copy-then-delete: a
                // window exists where both paths are visible, and a crash
                // inside it leaves two copies.
                let data = fs::read(from)?;
                fs::write(to, &data)?;
                Self::coarsen_mtime(to);
                fs::remove_file(from)
            }
            Verdict::Pass => fs::rename(from, to),
            Verdict::Fail(code) => Err(Self::injected(code, site)),
            Verdict::Tear { .. } => Err(Self::injected(EIO, site)),
            Verdict::DropRename => {
                let _ = fs::remove_file(to);
                let _ = fs::remove_file(from);
                Err(Self::injected(EIO, site))
            }
        }
    }

    fn remove_file(&self, site: &str, path: &Path) -> io::Result<()> {
        self.check(site)?;
        fs::remove_file(path)
    }

    fn remove_dir_all(&self, site: &str, path: &Path) -> io::Result<()> {
        self.check(site)?;
        fs::remove_dir_all(path)
    }

    fn list_dir(&self, site: &str, path: &Path) -> io::Result<Vec<PathBuf>> {
        self.check(site)?;
        RealIo.list_dir(site, path)
    }

    fn append_sync(&self, site: &str, file: &mut File, data: &[u8]) -> io::Result<()> {
        match self.gate(site, data.len()) {
            Verdict::Pass => RealIo.append_sync(site, file, data),
            Verdict::Fail(code) => Err(Self::injected(code, site)),
            Verdict::Tear { keep } => {
                let _ = file.write_all(&data[..keep]);
                let _ = file.sync_data();
                Err(Self::injected(EIO, site))
            }
            Verdict::DropRename => Err(Self::injected(EIO, site)),
        }
    }

    fn gate(&self, site: &str) -> io::Result<()> {
        self.check(site)
    }

    fn now_ms(&self) -> u64 {
        let now = wall_clock_ms() as i64 + self.skew_ms;
        now.max(0) as u64
    }

    fn nfs_weak(&self, site: &str) -> bool {
        self.nfs_site(site)
    }
}

static GLOBAL: OnceLock<Box<dyn IoEnv>> = OnceLock::new();

/// Called with `(os error code, site)` on every injected fault.
type InjectionObserver = Box<dyn Fn(i32, &str) + Send + Sync>;

static INJECTION_OBSERVER: OnceLock<InjectionObserver> = OnceLock::new();

/// Registers a process-wide callback invoked on every fault this layer
/// injects (after the stderr note, before the error is returned to the
/// faulted call site). First registration wins; later calls are ignored.
///
/// This exists so the observability layer can count and trace injections
/// without this crate depending on it (the dependency arrow runs
/// metrics → stats → chaos). The observer must be cheap and must not
/// perform I/O through chaos-gated paths — it runs inside those paths.
pub fn set_injection_observer(observer: impl Fn(i32, &str) + Send + Sync + 'static) {
    let _ = INJECTION_OBSERVER.set(Box::new(observer));
}

/// Returns the process-wide [`IoEnv`].
///
/// On first call, reads `FTSIM_CHAOS`; if set and non-empty the value must
/// parse as a chaos plan (a malformed plan panics — silently running clean
/// would defeat the point of an explicitly requested fault schedule).
/// Otherwise resolves to [`RealIo`].
pub fn io() -> &'static dyn IoEnv {
    GLOBAL
        .get_or_init(|| match std::env::var("FTSIM_CHAOS") {
            Ok(spec) if !spec.trim().is_empty() => match ChaosIo::from_spec(&spec) {
                Ok(chaos) => Box::new(chaos),
                Err(e) => panic!("{e}"),
            },
            _ => Box::new(RealIo),
        })
        .as_ref()
}

/// True when the process-wide environment is injecting faults.
pub fn chaos_active() -> bool {
    std::env::var("FTSIM_CHAOS").map(|s| !s.trim().is_empty()) == Ok(true)
}

/// Returns true if `error` is a disk-full condition (`ENOSPC`), injected
/// or real.
pub fn is_enospc(error: &io::Error) -> bool {
    error.raw_os_error() == Some(ENOSPC)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "ftsim-chaos-{tag}-{}-{}",
            std::process::id(),
            TEMP_SEQ.fetch_add(1, Ordering::Relaxed)
        ));
        fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn real_write_atomic_roundtrip() {
        let dir = tmp_dir("atomic");
        let path = dir.join("x.json");
        RealIo.write_atomic("t", &path, b"one").unwrap();
        RealIo.write_atomic("t", &path, b"two").unwrap();
        assert_eq!(fs::read(&path).unwrap(), b"two");
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn eio_fires_deterministically_and_counts_hits() {
        let chaos = ChaosIo::from_spec("1:eio@a.b").unwrap();
        let dir = tmp_dir("eio");
        let path = dir.join("f");
        let err = chaos.write_file("a.b", &path, b"x").unwrap_err();
        assert_eq!(err.raw_os_error(), Some(EIO));
        assert!(!path.exists());
        chaos.write_file("other.site", &path, b"x").unwrap();
        assert_eq!(chaos.hits("a.b"), 1);
        assert_eq!(chaos.hits("other.site"), 1);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn enospc_is_detectable() {
        let chaos = ChaosIo::from_spec("1:enospc@csv.append").unwrap();
        let dir = tmp_dir("enospc");
        let mut file = File::create(dir.join("cells.csv")).unwrap();
        let err = chaos
            .append_sync("csv.append", &mut file, b"row\n")
            .unwrap_err();
        assert!(is_enospc(&err));
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn torn_write_persists_strict_prefix() {
        let chaos = ChaosIo::from_spec("9:torn@csv.append#2").unwrap();
        let dir = tmp_dir("torn");
        let path = dir.join("cells.csv");
        let mut file = OpenOptions::new()
            .create(true)
            .append(true)
            .read(true)
            .open(&path)
            .unwrap();
        chaos
            .append_sync("csv.append", &mut file, b"first-row\n")
            .unwrap();
        let err = chaos
            .append_sync("csv.append", &mut file, b"second-row\n")
            .unwrap_err();
        assert_eq!(err.raw_os_error(), Some(EIO));
        let bytes = fs::read(&path).unwrap();
        assert!(bytes.starts_with(b"first-row\n"));
        assert!(bytes.len() < b"first-row\nsecond-row\n".len());
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn drop_rename_loses_destination() {
        let chaos = ChaosIo::from_spec("3:drop-rename@store.write_status#2").unwrap();
        let dir = tmp_dir("droprename");
        let path = dir.join("status.json");
        chaos
            .write_atomic("store.write_status", &path, b"v1")
            .unwrap();
        assert!(path.exists());
        let err = chaos
            .write_atomic("store.write_status", &path, b"v2")
            .unwrap_err();
        assert_eq!(err.raw_os_error(), Some(EIO));
        assert!(!path.exists(), "destination must be lost");
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn skew_shifts_clock() {
        let chaos = ChaosIo::from_spec("1:skew=60000,eio@nothing").unwrap();
        let real = RealIo.now_ms();
        let skewed = chaos.now_ms();
        assert!(skewed >= real + 59_000, "skewed {skewed} vs real {real}");
    }

    #[test]
    fn probability_stream_is_reproducible() {
        let run = || {
            let chaos = ChaosIo::from_spec("77:eio@s=0.5").unwrap();
            (0..64)
                .map(|_| IoEnv::gate(&chaos, "s").is_err())
                .collect::<Vec<_>>()
        };
        let a = run();
        assert_eq!(a, run());
        assert!(a.iter().any(|x| *x), "some ops must fail at p=0.5");
        assert!(a.iter().any(|x| !*x), "some ops must pass at p=0.5");
    }

    #[test]
    fn nfs_create_new_loses_exclusivity() {
        let chaos = ChaosIo::from_spec("1:nfs@fabric.claim.*").unwrap();
        let dir = tmp_dir("nfs-create");
        let path = dir.join("claim.lease");
        // Both creators "win"; the second writer's bytes stick.
        assert!(chaos
            .create_new("fabric.claim.create", &path, b"owner-a")
            .unwrap());
        assert!(chaos
            .create_new("fabric.claim.create", &path, b"owner-b")
            .unwrap());
        assert_eq!(fs::read(&path).unwrap(), b"owner-b");
        // Sites outside the glob keep O_EXCL semantics.
        let other = dir.join("other.lease");
        assert!(chaos.create_new("store.write_spec", &other, b"a").unwrap());
        assert!(!chaos.create_new("store.write_spec", &other, b"b").unwrap());
        assert!(chaos.nfs_weak("fabric.claim.create"));
        assert!(!chaos.nfs_weak("store.write_spec"));
        assert!(!RealIo.nfs_weak("fabric.claim.create"));
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn nfs_rename_copies_then_deletes_and_coarsens_mtime() {
        let chaos = ChaosIo::from_spec("1:nfs@fabric.*").unwrap();
        let dir = tmp_dir("nfs-rename");
        let from = dir.join("a.lease");
        let to = dir.join("a.stale");
        fs::write(&from, b"payload").unwrap();
        chaos.rename("fabric.claim.steal", &from, &to).unwrap();
        assert!(!from.exists());
        assert_eq!(fs::read(&to).unwrap(), b"payload");
        let mtime = fs::metadata(&to)
            .unwrap()
            .modified()
            .unwrap()
            .duration_since(UNIX_EPOCH)
            .unwrap();
        assert_eq!(mtime.subsec_nanos(), 0, "mtime coarsened to seconds");
        // A missing source still reports NotFound, like a real rename.
        assert!(chaos.rename("fabric.claim.steal", &from, &to).is_err());
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn nfs_write_atomic_degrades_to_plain_write() {
        let chaos = ChaosIo::from_spec("1:nfs@fabric.claim.renew").unwrap();
        let dir = tmp_dir("nfs-atomic");
        let path = dir.join("claim.lease");
        chaos
            .write_atomic("fabric.claim.renew", &path, b"v1")
            .unwrap();
        assert_eq!(fs::read(&path).unwrap(), b"v1");
        // No temp-file dance: the directory holds only the target.
        let entries = fs::read_dir(&dir).unwrap().count();
        assert_eq!(entries, 1);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn create_new_reports_existing() {
        let chaos = ChaosIo::from_spec("1:delay@none=1:0").unwrap();
        let dir = tmp_dir("createnew");
        let path = dir.join("claim.json");
        assert!(chaos
            .create_new("fabric.claim.create", &path, b"a")
            .unwrap());
        assert!(!chaos
            .create_new("fabric.claim.create", &path, b"b")
            .unwrap());
        assert_eq!(fs::read(&path).unwrap(), b"a");
        fs::remove_dir_all(&dir).unwrap();
    }
}
