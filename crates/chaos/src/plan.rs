//! Parsing for the `FTSIM_CHAOS=<seed>:<spec>` fault plan grammar.
//!
//! A plan is a 64-bit seed followed by a comma-separated list of clauses.
//! Each clause names a fault kind, the failpoint site (or site glob) it
//! applies to, and either a deterministic hit number or a probability:
//!
//! ```text
//! FTSIM_CHAOS="42:abort@fabric.claim.renew#2,eio@store.*=0.1,skew=5000"
//! ```
//!
//! Supported clauses:
//!
//! | clause                  | effect                                              |
//! |-------------------------|-----------------------------------------------------|
//! | `abort@SITE#N`          | `process::abort()` on the N-th hit of `SITE`        |
//! | `torn@SITE#N`           | write a seeded prefix of the payload, then EIO      |
//! | `drop-rename@SITE#N`    | destination lost after the unlink-visible moment    |
//! | `eio@GLOB[=P]`          | return EIO with probability `P` (default 1)         |
//! | `enospc@GLOB[=P]`       | return ENOSPC with probability `P` (default 1)      |
//! | `delay@GLOB=P:MS`       | sleep `MS` milliseconds with probability `P`        |
//! | `delay@SITE#N:MS`       | sleep `MS` milliseconds on the N-th hit of `SITE`   |
//! | `nfs@GLOB`              | weaken primitives at matching sites to NFS grade    |
//! | `skew=MS`               | shift [`IoEnv::now_ms`] by `MS` (may be negative)   |
//!
//! `GLOB` is an exact site name, a prefix ending in `*`, or a bare `*`
//! matching every site. Hit numbers are 1-based and counted per site.
//!
//! [`IoEnv::now_ms`]: crate::IoEnv::now_ms

use std::fmt;

/// One parsed fault clause. See the [module docs](self) for the grammar.
#[derive(Debug, Clone, PartialEq)]
pub enum Clause {
    /// Abort the process on the `nth` hit of `site`.
    Abort {
        /// Exact failpoint site name.
        site: String,
        /// 1-based hit number at which to abort.
        nth: u64,
    },
    /// Tear the write on the `nth` hit of `site`: persist a seeded prefix
    /// of the payload, then fail with EIO.
    Torn {
        /// Exact failpoint site name.
        site: String,
        /// 1-based hit number at which to tear.
        nth: u64,
    },
    /// Drop a rename on the `nth` hit of `site`: the destination is removed
    /// (the unlink-visible moment) and the rename itself fails with EIO.
    DropRename {
        /// Exact failpoint site name.
        site: String,
        /// 1-based hit number at which to drop.
        nth: u64,
    },
    /// Fail matching sites with EIO at the given probability.
    Eio {
        /// Site glob (exact, `prefix*`, or `*`).
        glob: String,
        /// Injection probability in `[0, 1]`.
        prob: f64,
    },
    /// Fail matching sites with ENOSPC at the given probability.
    Enospc {
        /// Site glob (exact, `prefix*`, or `*`).
        glob: String,
        /// Injection probability in `[0, 1]`.
        prob: f64,
    },
    /// Sleep before matching sites at the given probability.
    Delay {
        /// Site glob (exact, `prefix*`, or `*`).
        glob: String,
        /// Injection probability in `[0, 1]`.
        prob: f64,
        /// Sleep duration in milliseconds.
        ms: u64,
    },
    /// Sleep before exactly the `nth` hit of `site`. The deterministic
    /// sibling of [`Clause::Delay`]: a hung operation that recovers on
    /// retry, independent of machine timing or RNG draw order.
    DelayNth {
        /// Exact failpoint site name.
        site: String,
        /// 1-based hit number at which to sleep.
        nth: u64,
        /// Sleep duration in milliseconds.
        ms: u64,
    },
    /// Weaken filesystem primitives at matching sites to what a lowest-
    /// common-denominator NFS mount provides: `create_new` loses its
    /// exclusivity guarantee (it becomes check-then-write, so two racing
    /// creators can both "win"), `rename` loses atomicity (it becomes
    /// copy-then-delete, leaving a window where both paths exist), and
    /// file mtimes are coarsened to whole seconds.
    Nfs {
        /// Site glob (exact, `prefix*`, or `*`).
        glob: String,
    },
    /// Shift the fabric clock by this many milliseconds (may be negative).
    Skew {
        /// Clock offset in milliseconds.
        ms: i64,
    },
}

/// A parsed `FTSIM_CHAOS` plan: RNG seed plus fault clauses.
#[derive(Debug, Clone, PartialEq)]
pub struct Plan {
    /// Seed for the plan's deterministic RNG (probabilities, tear points).
    pub seed: u64,
    /// Fault clauses, applied in order at each failpoint hit.
    pub clauses: Vec<Clause>,
}

/// Error produced when a `FTSIM_CHAOS` spec does not parse.
#[derive(Debug, Clone, PartialEq)]
pub struct ParseError {
    message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid FTSIM_CHAOS spec: {}", self.message)
    }
}

impl std::error::Error for ParseError {}

fn err<T>(message: impl Into<String>) -> Result<T, ParseError> {
    Err(ParseError {
        message: message.into(),
    })
}

fn parse_site_nth(body: &str, kind: &str) -> Result<(String, u64), ParseError> {
    let Some((site, nth)) = body.rsplit_once('#') else {
        return err(format!("`{kind}@{body}`: expected `{kind}@SITE#N`"));
    };
    if site.is_empty() {
        return err(format!("`{kind}@{body}`: empty site name"));
    }
    let Ok(nth) = nth.parse::<u64>() else {
        return err(format!(
            "`{kind}@{body}`: hit number `{nth}` is not an integer"
        ));
    };
    if nth == 0 {
        return err(format!("`{kind}@{body}`: hit numbers are 1-based"));
    }
    Ok((site.to_string(), nth))
}

fn parse_glob_prob(body: &str, kind: &str) -> Result<(String, f64), ParseError> {
    let (glob, prob) = match body.split_once('=') {
        Some((glob, prob)) => {
            let Ok(prob) = prob.parse::<f64>() else {
                return err(format!(
                    "`{kind}@{body}`: probability `{prob}` is not a number"
                ));
            };
            (glob, prob)
        }
        None => (body, 1.0),
    };
    if glob.is_empty() {
        return err(format!("`{kind}@{body}`: empty site glob"));
    }
    if !(0.0..=1.0).contains(&prob) {
        return err(format!("`{kind}@{body}`: probability must be in [0, 1]"));
    }
    Ok((glob.to_string(), prob))
}

impl Plan {
    /// Parses a `<seed>:<clause>[,<clause>...]` spec.
    pub fn parse(spec: &str) -> Result<Plan, ParseError> {
        let Some((seed, rest)) = spec.split_once(':') else {
            return err("expected `<seed>:<clause>,...`");
        };
        let Ok(seed) = seed.trim().parse::<u64>() else {
            return err(format!("seed `{seed}` is not a u64"));
        };
        let mut clauses = Vec::new();
        for raw in rest.split(',') {
            let raw = raw.trim();
            if raw.is_empty() {
                continue;
            }
            if let Some(ms) = raw.strip_prefix("skew=") {
                let Ok(ms) = ms.parse::<i64>() else {
                    return err(format!("`{raw}`: skew `{ms}` is not an i64"));
                };
                clauses.push(Clause::Skew { ms });
                continue;
            }
            let Some((kind, body)) = raw.split_once('@') else {
                return err(format!("`{raw}`: expected `<kind>@<site>`"));
            };
            let clause = match kind {
                "abort" => {
                    let (site, nth) = parse_site_nth(body, kind)?;
                    Clause::Abort { site, nth }
                }
                "torn" => {
                    let (site, nth) = parse_site_nth(body, kind)?;
                    Clause::Torn { site, nth }
                }
                "drop-rename" => {
                    let (site, nth) = parse_site_nth(body, kind)?;
                    Clause::DropRename { site, nth }
                }
                "eio" => {
                    let (glob, prob) = parse_glob_prob(body, kind)?;
                    Clause::Eio { glob, prob }
                }
                "enospc" => {
                    let (glob, prob) = parse_glob_prob(body, kind)?;
                    Clause::Enospc { glob, prob }
                }
                "nfs" => {
                    if body.is_empty() {
                        return err(format!("`{raw}`: empty site glob"));
                    }
                    Clause::Nfs {
                        glob: body.to_string(),
                    }
                }
                "delay" => {
                    let Some((head, ms)) = body.rsplit_once(':') else {
                        return err(format!(
                            "`{raw}`: expected `delay@GLOB=P:MS` or `delay@SITE#N:MS`"
                        ));
                    };
                    let Ok(ms) = ms.parse::<u64>() else {
                        return err(format!("`{raw}`: delay `{ms}` is not a u64"));
                    };
                    if head.contains('#') {
                        let (site, nth) = parse_site_nth(head, kind)?;
                        Clause::DelayNth { site, nth, ms }
                    } else {
                        let (glob, prob) = parse_glob_prob(head, kind)?;
                        Clause::Delay { glob, prob, ms }
                    }
                }
                other => return err(format!("`{raw}`: unknown fault kind `{other}`")),
            };
            clauses.push(clause);
        }
        if clauses.is_empty() {
            return err("plan has no clauses");
        }
        Ok(Plan { seed, clauses })
    }
}

/// Returns true when `glob` matches the failpoint `site`.
///
/// A glob is an exact name, a prefix ending in `*`, or a bare `*`.
pub fn glob_matches(glob: &str, site: &str) -> bool {
    match glob.strip_suffix('*') {
        Some(prefix) => site.starts_with(prefix),
        None => glob == site,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_every_clause_kind() {
        let plan = Plan::parse(
            "42:abort@fabric.claim.renew#2,torn@csv.append#3,drop-rename@store.write_status#1,\
             eio@store.*=0.25,enospc@csv.append,delay@http.*=0.5:20,nfs@fabric.claim.*,skew=-1500",
        )
        .unwrap();
        assert_eq!(plan.seed, 42);
        assert_eq!(plan.clauses.len(), 8);
        assert_eq!(
            plan.clauses[0],
            Clause::Abort {
                site: "fabric.claim.renew".into(),
                nth: 2
            }
        );
        assert_eq!(
            plan.clauses[3],
            Clause::Eio {
                glob: "store.*".into(),
                prob: 0.25
            }
        );
        assert_eq!(
            plan.clauses[4],
            Clause::Enospc {
                glob: "csv.append".into(),
                prob: 1.0
            }
        );
        assert_eq!(
            plan.clauses[5],
            Clause::Delay {
                glob: "http.*".into(),
                prob: 0.5,
                ms: 20
            }
        );
        assert_eq!(
            plan.clauses[6],
            Clause::Nfs {
                glob: "fabric.claim.*".into()
            }
        );
        assert_eq!(plan.clauses[7], Clause::Skew { ms: -1500 });
    }

    #[test]
    fn parses_hit_numbered_delay() {
        let plan = Plan::parse("7:delay@fabric.cell.alpha#3:2500").unwrap();
        assert_eq!(
            plan.clauses[0],
            Clause::DelayNth {
                site: "fabric.cell.alpha".into(),
                nth: 3,
                ms: 2500
            }
        );
        for bad in ["1:delay@site#0:10", "1:delay@site#2", "1:delay@#1:10"] {
            assert!(Plan::parse(bad).is_err(), "spec {bad:?} should not parse");
        }
    }

    #[test]
    fn rejects_malformed_specs() {
        for bad in [
            "",
            "no-colon",
            "x:abort@a#1",
            "1:",
            "1:abort@site",
            "1:abort@site#0",
            "1:abort@#1",
            "1:eio@site=2.0",
            "1:eio@=0.5",
            "1:delay@site=0.5",
            "1:nfs@",
            "1:warp@site#1",
            "1:skew=abc",
        ] {
            assert!(Plan::parse(bad).is_err(), "spec {bad:?} should not parse");
        }
    }

    #[test]
    fn glob_semantics() {
        assert!(glob_matches("*", "anything.at.all"));
        assert!(glob_matches("store.*", "store.write_spec"));
        assert!(!glob_matches("store.*", "fabric.lease.read"));
        assert!(glob_matches("csv.append", "csv.append"));
        assert!(!glob_matches("csv.append", "csv.append2"));
    }
}
