//! Exponential backoff with jitter, cap, and a bounded retry budget.
//!
//! Used by the `--remote` HTTP client, the claim-lease acquisition path,
//! and the `results --watch` loops: transient failures retry with doubling,
//! jittered delays; once the budget is exhausted the caller surfaces the
//! last error instead of looping forever.

use std::time::Duration;

/// Exponential backoff policy: `base * 2^attempt`, jittered to between 50%
/// and 100% of the nominal delay, clamped to `cap`, for at most `budget`
/// retries.
///
/// The jitter stream is deterministic per [`Backoff::with_seed`] seed, so
/// retry schedules are reproducible under test.
///
/// ```
/// use std::time::Duration;
/// use ftsim_chaos::retry::Backoff;
///
/// let mut backoff = Backoff::new(Duration::from_millis(10), Duration::from_secs(1), 3);
/// let mut delays = Vec::new();
/// while let Some(delay) = backoff.next_delay() {
///     delays.push(delay); // would sleep here before retrying
/// }
/// assert_eq!(delays.len(), 3);
/// ```
#[derive(Debug, Clone)]
pub struct Backoff {
    base: Duration,
    cap: Duration,
    budget: u32,
    attempt: u32,
    rng: u64,
}

impl Backoff {
    /// Creates a policy with a fixed default jitter seed.
    pub fn new(base: Duration, cap: Duration, budget: u32) -> Backoff {
        Backoff::with_seed(base, cap, budget, 0x9e37_79b9_7f4a_7c15)
    }

    /// Creates a policy whose jitter stream is derived from `seed`.
    pub fn with_seed(base: Duration, cap: Duration, budget: u32, seed: u64) -> Backoff {
        Backoff {
            base,
            cap,
            budget,
            attempt: 0,
            rng: seed | 1,
        }
    }

    /// Number of retries handed out so far.
    pub fn attempts(&self) -> u32 {
        self.attempt
    }

    /// Returns the next delay to sleep before retrying, or `None` when the
    /// retry budget is exhausted and the caller should give up.
    pub fn next_delay(&mut self) -> Option<Duration> {
        if self.attempt >= self.budget {
            return None;
        }
        let nominal = self
            .base
            .saturating_mul(1u32.checked_shl(self.attempt).unwrap_or(u32::MAX))
            .min(self.cap);
        self.attempt += 1;
        // xorshift64* jitter: scale nominal into [50%, 100%].
        self.rng ^= self.rng << 13;
        self.rng ^= self.rng >> 7;
        self.rng ^= self.rng << 17;
        let frac =
            (self.rng.wrapping_mul(0x2545_f491_4f6c_dd1d) >> 11) as f64 / (1u64 << 53) as f64;
        let scaled = nominal.as_secs_f64() * (0.5 + 0.5 * frac);
        Some(Duration::from_secs_f64(scaled).min(self.cap))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn budget_bounds_retries() {
        let mut b = Backoff::new(Duration::from_millis(1), Duration::from_secs(1), 4);
        let mut n = 0;
        while b.next_delay().is_some() {
            n += 1;
        }
        assert_eq!(n, 4);
        assert_eq!(b.attempts(), 4);
        assert!(b.next_delay().is_none());
    }

    #[test]
    fn delays_grow_and_are_capped() {
        let mut b =
            Backoff::with_seed(Duration::from_millis(100), Duration::from_millis(350), 8, 7);
        let delays: Vec<Duration> = std::iter::from_fn(|| b.next_delay()).collect();
        assert_eq!(delays.len(), 8);
        for (i, d) in delays.iter().enumerate() {
            // Nominal for attempt i is min(100ms * 2^i, cap); jitter keeps it
            // within [50%, 100%] of nominal.
            let nominal = Duration::from_millis(100)
                .saturating_mul(1 << i.min(20))
                .min(Duration::from_millis(350));
            assert!(*d <= nominal, "attempt {i}: {d:?} > nominal {nominal:?}");
            assert!(
                d.as_secs_f64() >= nominal.as_secs_f64() * 0.5 - 1e-9,
                "attempt {i}: {d:?} below jitter floor"
            );
        }
        // The tail is capped.
        assert!(delays[7] <= Duration::from_millis(350));
    }

    #[test]
    fn jitter_bounds_hold_across_seeds() {
        // Every delay from every seed must land in [50%, 100%] of the
        // nominal exponential value — the jitter never widens the
        // schedule, only thins it.
        for seed in 0..64u64 {
            let mut b =
                Backoff::with_seed(Duration::from_millis(40), Duration::from_secs(10), 6, seed);
            for i in 0.. {
                let Some(d) = b.next_delay() else { break };
                let nominal = Duration::from_millis(40)
                    .saturating_mul(1 << i)
                    .min(Duration::from_secs(10));
                assert!(d <= nominal, "seed {seed} attempt {i}: {d:?} > {nominal:?}");
                assert!(
                    d.as_secs_f64() >= nominal.as_secs_f64() * 0.5 - 1e-9,
                    "seed {seed} attempt {i}: {d:?} below 50% of {nominal:?}"
                );
            }
        }
    }

    #[test]
    fn cap_saturates_without_overflow() {
        // Budgets past the shift width must not panic or wrap: the
        // nominal saturates at the cap and every late delay stays inside
        // [cap/2, cap].
        let cap = Duration::from_millis(200);
        let mut b = Backoff::with_seed(Duration::from_millis(50), cap, 48, 11);
        let delays: Vec<Duration> = std::iter::from_fn(|| b.next_delay()).collect();
        assert_eq!(delays.len(), 48);
        for (i, d) in delays.iter().enumerate().skip(2) {
            assert!(*d <= cap, "attempt {i}: {d:?} exceeds cap");
            assert!(
                d.as_secs_f64() >= cap.as_secs_f64() * 0.5 - 1e-9,
                "attempt {i}: {d:?} below cap/2 once saturated"
            );
        }
        // A zero-duration base degenerates cleanly to zero delays.
        let mut zero = Backoff::new(Duration::ZERO, Duration::ZERO, 3);
        assert_eq!(zero.next_delay(), Some(Duration::ZERO));
    }

    #[test]
    fn exhausted_budget_stays_exhausted() {
        let mut b = Backoff::new(Duration::from_millis(1), Duration::from_millis(8), 2);
        assert!(b.next_delay().is_some());
        assert!(b.next_delay().is_some());
        // Exhaustion is terminal: repeated polls keep returning None and
        // the attempt counter freezes at the budget.
        for _ in 0..4 {
            assert!(b.next_delay().is_none());
            assert_eq!(b.attempts(), 2);
        }
        // A zero budget never grants a retry at all.
        let mut none = Backoff::new(Duration::from_millis(1), Duration::from_millis(8), 0);
        assert!(none.next_delay().is_none());
        assert_eq!(none.attempts(), 0);
    }

    #[test]
    fn jitter_is_deterministic_per_seed() {
        let collect = |seed| {
            let mut b =
                Backoff::with_seed(Duration::from_millis(10), Duration::from_secs(1), 5, seed);
            std::iter::from_fn(move || b.next_delay()).collect::<Vec<_>>()
        };
        assert_eq!(collect(3), collect(3));
        assert_ne!(collect(3), collect(4));
    }
}
