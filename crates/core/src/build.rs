//! The fluent simulator builder: config, program, injector, oracle mode
//! and run limits in one place, validated before a single cycle runs.

use crate::config::{ConfigError, MachineConfig};
use crate::sim::{OracleMode, RunLimits, SimError, SimResult, Simulator};
use ftsim_faults::FaultInjector;
use ftsim_isa::Program;
use std::fmt;
use std::sync::Arc;

/// Builder misuse detected by [`SimBuilder::build`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BuildError {
    /// No machine configuration was supplied.
    MissingConfig,
    /// No program was supplied.
    MissingProgram,
    /// The supplied configuration violates a structural invariant.
    Config(ConfigError),
}

impl fmt::Display for BuildError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BuildError::MissingConfig => write!(f, "no machine configuration supplied"),
            BuildError::MissingProgram => write!(f, "no program supplied"),
            BuildError::Config(e) => write!(f, "invalid machine configuration: {e}"),
        }
    }
}

impl std::error::Error for BuildError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            BuildError::Config(e) => Some(e),
            _ => None,
        }
    }
}

impl From<ConfigError> for BuildError {
    fn from(e: ConfigError) -> Self {
        BuildError::Config(e)
    }
}

/// Fluent construction of a [`Simulator`].
///
/// Every run parameter — machine configuration, program, fault injector,
/// oracle mode, run limits — is set in one place, and [`SimBuilder::build`]
/// rejects inconsistent configurations (zero functional units, acceptance
/// threshold above `R`, ...) with a typed [`BuildError`] instead of
/// panicking mid-experiment.
///
/// # Examples
///
/// ```
/// use ftsim_core::{MachineConfig, OracleMode, Simulator};
/// use ftsim_isa::asm;
///
/// let program = asm::assemble("addi r1, r0, 3\nmul r1, r1, r1\nhalt\n").unwrap();
/// let result = Simulator::builder()
///     .config(MachineConfig::ss2())
///     .program(&program)
///     .oracle(OracleMode::Final)
///     .run()
///     .unwrap();
/// assert_eq!(result.retired_instructions, 3);
/// ```
#[derive(Debug, Default)]
pub struct SimBuilder {
    config: Option<MachineConfig>,
    program: Option<Arc<Program>>,
    injector: Option<FaultInjector>,
    oracle: OracleMode,
    limits: RunLimits,
}

impl SimBuilder {
    /// An empty builder; prefer [`Simulator::builder`].
    pub fn new() -> Self {
        Self {
            config: None,
            program: None,
            injector: None,
            oracle: OracleMode::default(),
            limits: RunLimits::default(),
        }
    }

    /// Sets the machine configuration (required).
    #[must_use]
    pub fn config(mut self, config: MachineConfig) -> Self {
        self.config = Some(config);
        self
    }

    /// Sets the program to run (required), deep-copying it into the
    /// builder. Prefer [`SimBuilder::program_shared`] when the same
    /// program backs many simulators (every grid cell of a sweep): the
    /// copy is made once and shared by reference count.
    #[must_use]
    pub fn program(mut self, program: &Program) -> Self {
        self.program = Some(Arc::new(program.clone()));
        self
    }

    /// Sets an already-shared program image to run (required, alternative
    /// to [`SimBuilder::program`]). No instruction or data bytes are
    /// copied.
    #[must_use]
    pub fn program_shared(mut self, program: Arc<Program>) -> Self {
        self.program = Some(program);
        self
    }

    /// Sets the fault injector (default: no injection).
    #[must_use]
    pub fn injector(mut self, injector: FaultInjector) -> Self {
        self.injector = Some(injector);
        self
    }

    /// Sets the oracle mode (default: [`OracleMode::Final`]).
    #[must_use]
    pub fn oracle(mut self, oracle: OracleMode) -> Self {
        self.oracle = oracle;
        self
    }

    /// Sets the run limits (default: [`RunLimits::default`]).
    #[must_use]
    pub fn limits(mut self, limits: RunLimits) -> Self {
        self.limits = limits;
        self
    }

    /// Convenience: stop (successfully) after `n` committed instructions,
    /// with a proportionate cycle ceiling — the standard shape of every
    /// budgeted experiment run.
    #[must_use]
    pub fn budget(mut self, n: u64) -> Self {
        self.limits = RunLimits {
            max_cycles: 100 * n.max(1_000),
            ..RunLimits::instructions(n)
        };
        self
    }

    /// Validates the configuration and constructs the simulator.
    ///
    /// # Errors
    ///
    /// [`BuildError::MissingConfig`] / [`BuildError::MissingProgram`] on
    /// incomplete builders, [`BuildError::Config`] when the machine
    /// description violates an invariant.
    pub fn build(self) -> Result<Simulator, BuildError> {
        let config = self.config.ok_or(BuildError::MissingConfig)?;
        let program = self.program.ok_or(BuildError::MissingProgram)?;
        config.validate()?;
        let injector = self.injector.unwrap_or_else(FaultInjector::none);
        Ok(Simulator::from_parts(
            config,
            program,
            injector,
            self.oracle,
            self.limits,
        ))
    }

    /// Builds and runs in one step.
    ///
    /// # Errors
    ///
    /// [`SimError::Invalid`] for builder misuse, otherwise the run's own
    /// [`SimError`].
    pub fn run(self) -> Result<SimResult, SimError> {
        self.build().map_err(SimError::Invalid)?.run()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ftsim_isa::asm;

    fn tiny() -> Program {
        asm::assemble("addi r1, r0, 1\nhalt\n").unwrap()
    }

    #[test]
    fn missing_pieces_are_reported() {
        assert_eq!(
            SimBuilder::new().build().unwrap_err(),
            BuildError::MissingConfig
        );
        assert_eq!(
            SimBuilder::new()
                .config(MachineConfig::ss1())
                .build()
                .unwrap_err(),
            BuildError::MissingProgram
        );
    }

    #[test]
    fn invalid_config_is_reported_not_panicked() {
        let mut bad = MachineConfig::ss2();
        bad.dispatch_width = 1;
        let err = SimBuilder::new()
            .config(bad)
            .program(&tiny())
            .build()
            .unwrap_err();
        assert_eq!(
            err,
            BuildError::Config(ConfigError::GroupExceedsDispatch { width: 1, r: 2 })
        );
        assert!(err.to_string().contains("dispatch width"));
    }

    #[test]
    fn run_surfaces_build_errors_as_sim_errors() {
        let err = SimBuilder::new().run().unwrap_err();
        assert_eq!(err, SimError::Invalid(BuildError::MissingConfig));
    }

    #[test]
    fn full_builder_runs() {
        let r = Simulator::builder()
            .config(MachineConfig::ss2())
            .program(&tiny())
            .oracle(OracleMode::Final)
            .run()
            .unwrap();
        assert!(r.halted);
        assert_eq!(r.retired_instructions, 2);
    }

    #[test]
    fn budget_sets_instruction_limit_and_cycle_ceiling() {
        let b = SimBuilder::new().budget(5_000);
        assert_eq!(b.limits.max_instructions, 5_000);
        assert_eq!(b.limits.max_cycles, 500_000);
    }
}
