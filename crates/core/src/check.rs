//! The commit-stage cross-check and majority election (paper §3.2).
//!
//! When all `R` copies of an instruction are complete and oldest in the
//! RUU, their architecturally-relevant fields are compared:
//!
//! * result value (register writers, including load data and link
//!   addresses),
//! * effective address (memory operations — addresses are computed
//!   redundantly even though only one access is performed),
//! * store datum,
//! * branch direction and the implied next PC.
//!
//! "If all entries agree, then they are freed from ROB, retiring a single
//! instruction. If any fields of the entries disagree, then an error has
//! occurred and recovery is required." With `R ≥ 3` and majority election
//! enabled, a value agreed by at least the acceptance threshold commits and
//! the dissenting copies are simply out-voted.

use crate::entry::Entry;

/// Comparable signature of one copy's architectural effects.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
struct Signature {
    result: Option<u64>,
    ea: Option<u64>,
    store_data: Option<u64>,
    taken: Option<bool>,
    next_pc: u64,
}

impl Signature {
    fn of(e: &Entry) -> Self {
        Self {
            result: e.result,
            ea: e.ea,
            store_data: e.store_data,
            taken: e.taken,
            next_pc: e.computed_next_pc(),
        }
    }
}

/// What commit should do with a checked group.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GroupDecision {
    /// Commit, taking architectural values from the copy at this index
    /// within the group (0 when unanimous; a majority representative
    /// otherwise).
    Commit {
        /// Index of the copy whose values are committed.
        representative: usize,
    },
    /// No acceptable agreement: discard all speculative state and refetch
    /// from the committed next-PC.
    Rewind,
}

/// Result of cross-checking one replication group.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CheckOutcome {
    /// The action commit must take.
    pub decision: GroupDecision,
    /// Whether every copy agreed on every field.
    pub unanimous: bool,
    /// Indices (within the group) of copies that disagreed with the
    /// winning value — out-voted under majority election, or all copies on
    /// a rewind (the corrupted copy cannot be identified without a
    /// majority).
    pub dissenters: Vec<usize>,
}

/// Cross-checks the copies of one retiring instruction.
///
/// `majority` enables election with the given acceptance `threshold`
/// (the paper's "how many copies must agree before one accepts the
/// majority result as correct").
///
/// # Panics
///
/// Panics if `group` is empty.
///
/// # Examples
///
/// ```
/// // Unanimous single-copy group commits trivially (R = 1).
/// use ftsim_core::{majority_vote, GroupDecision};
/// // See `majority_vote` for the election primitive.
/// assert_eq!(majority_vote(&[5, 5, 6], 2), Some(0));
/// ```
pub fn check_group(group: &[Entry], majority: bool, threshold: u8) -> CheckOutcome {
    assert!(!group.is_empty(), "cannot check an empty group");
    let sigs: Vec<Signature> = group.iter().map(Signature::of).collect();
    let first = sigs[0];
    if sigs.iter().all(|s| *s == first) {
        return CheckOutcome {
            decision: GroupDecision::Commit { representative: 0 },
            unanimous: true,
            dissenters: Vec::new(),
        };
    }
    // Loads are special under election: the group shares copy 0's single
    // memory access, so a corrupted *address* poisons every copy's loaded
    // value identically — the corrupted data can then hold a majority while
    // only the address fields disagree. Election is therefore only safe for
    // a load when all copies agree on the effective address; otherwise the
    // shared access cannot be trusted and we must rewind.
    if group[0].inst.op.is_load() {
        let ea0 = group[0].ea;
        if group.iter().any(|e| e.ea != ea0) {
            return CheckOutcome {
                decision: GroupDecision::Rewind,
                unanimous: false,
                dissenters: (0..group.len()).collect(),
            };
        }
    }
    if majority {
        // Find the most-agreed signature.
        let mut best = (0usize, 0usize); // (index, votes)
        for (i, s) in sigs.iter().enumerate() {
            let votes = sigs.iter().filter(|t| *t == s).count();
            if votes > best.1 {
                best = (i, votes);
            }
        }
        if best.1 >= threshold as usize {
            let winner = sigs[best.0];
            let dissenters = sigs
                .iter()
                .enumerate()
                .filter(|(_, s)| **s != winner)
                .map(|(i, _)| i)
                .collect();
            return CheckOutcome {
                decision: GroupDecision::Commit {
                    representative: best.0,
                },
                unanimous: false,
                dissenters,
            };
        }
    }
    CheckOutcome {
        decision: GroupDecision::Rewind,
        unanimous: false,
        dissenters: (0..group.len()).collect(),
    }
}

/// Generic majority election over opaque values: returns the index of a
/// value shared by at least `threshold` entries, preferring the earliest
/// such index, or `None` when no acceptable majority exists.
///
/// # Examples
///
/// ```
/// use ftsim_core::majority_vote;
///
/// assert_eq!(majority_vote(&[7, 7, 7], 2), Some(0));
/// assert_eq!(majority_vote(&[7, 3, 7], 2), Some(0));
/// assert_eq!(majority_vote(&[3, 7, 7], 2), Some(1));
/// assert_eq!(majority_vote(&[1, 2, 3], 2), None);
/// ```
pub fn majority_vote<T: PartialEq>(values: &[T], threshold: u8) -> Option<usize> {
    for (i, v) in values.iter().enumerate() {
        let votes = values.iter().filter(|w| *w == v).count();
        if votes >= threshold as usize {
            return Some(i);
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::entry::EntryState;
    use ftsim_isa::{Inst, Opcode};

    fn done_entry(seq: u64, copy: u8, result: u64) -> Entry {
        let mut e = Entry::new(seq, 0, copy, 0x1000, Inst::new(Opcode::Add, 1, 2, 3, 0), 0);
        e.state = EntryState::Done;
        e.result = Some(result);
        e
    }

    #[test]
    fn unanimous_commits_copy_zero() {
        let a = done_entry(0, 0, 42);
        let b = done_entry(1, 1, 42);
        let out = check_group(&[a, b], false, 2);
        assert_eq!(out.decision, GroupDecision::Commit { representative: 0 });
        assert!(out.unanimous);
        assert!(out.dissenters.is_empty());
    }

    #[test]
    fn single_copy_trivially_commits() {
        let a = done_entry(0, 0, 1);
        let out = check_group(&[a], false, 1);
        assert_eq!(out.decision, GroupDecision::Commit { representative: 0 });
    }

    #[test]
    fn disagreement_without_majority_rewinds() {
        let a = done_entry(0, 0, 42);
        let b = done_entry(1, 1, 43);
        let out = check_group(&[a, b], false, 2);
        assert_eq!(out.decision, GroupDecision::Rewind);
        assert_eq!(out.dissenters, vec![0, 1]);
    }

    #[test]
    fn two_of_three_majority_elects() {
        let a = done_entry(0, 0, 42);
        let b = done_entry(1, 1, 99); // corrupted copy
        let c = done_entry(2, 2, 42);
        let out = check_group(&[a, b, c], true, 2);
        assert_eq!(out.decision, GroupDecision::Commit { representative: 0 });
        assert!(!out.unanimous);
        assert_eq!(out.dissenters, vec![1]);
    }

    #[test]
    fn corrupted_copy_zero_is_outvoted() {
        let a = done_entry(0, 0, 99); // corrupted copy 0
        let b = done_entry(1, 1, 42);
        let c = done_entry(2, 2, 42);
        let out = check_group(&[a, b, c], true, 2);
        assert_eq!(out.decision, GroupDecision::Commit { representative: 1 });
        assert_eq!(out.dissenters, vec![0]);
    }

    #[test]
    fn three_way_disagreement_rewinds_even_with_majority() {
        let a = done_entry(0, 0, 1);
        let b = done_entry(1, 1, 2);
        let c = done_entry(2, 2, 3);
        let out = check_group(&[a, b, c], true, 2);
        assert_eq!(out.decision, GroupDecision::Rewind);
        assert_eq!(out.dissenters.len(), 3);
    }

    #[test]
    fn threshold_three_demands_unanimity() {
        let a = done_entry(0, 0, 42);
        let b = done_entry(1, 1, 42);
        let c = done_entry(2, 2, 7);
        let out = check_group(&[a, b, c], true, 3);
        assert_eq!(out.decision, GroupDecision::Rewind);
    }

    #[test]
    fn mismatch_in_ea_detected() {
        let mut a = done_entry(0, 0, 0);
        let mut b = done_entry(1, 1, 0);
        a.ea = Some(0x100);
        b.ea = Some(0x108); // corrupted address
        let out = check_group(&[a, b], false, 2);
        assert_eq!(out.decision, GroupDecision::Rewind);
    }

    #[test]
    fn mismatch_in_branch_outcome_detected() {
        let mut a = done_entry(0, 0, 0);
        let mut b = done_entry(1, 1, 0);
        a.taken = Some(true);
        a.target = Some(0x2000);
        b.taken = Some(false);
        let out = check_group(&[a, b], false, 2);
        assert_eq!(out.decision, GroupDecision::Rewind);
    }

    #[test]
    fn store_data_mismatch_detected() {
        let mut a = done_entry(0, 0, 0);
        let mut b = done_entry(1, 1, 0);
        a.result = None;
        b.result = None;
        a.ea = Some(0x100);
        b.ea = Some(0x100);
        a.store_data = Some(5);
        b.store_data = Some(6);
        let out = check_group(&[a, b], false, 2);
        assert_eq!(out.decision, GroupDecision::Rewind);
    }

    #[test]
    fn load_with_address_disagreement_never_elects() {
        // Copies of a load share one access: if copy 0's address was
        // corrupted, every copy holds the same wrong value and only the
        // address fields dissent. Election must refuse and rewind.
        let mk = |seq, copy, ea: u64| {
            let mut e = Entry::new(seq, 0, copy, 0x1000, Inst::new(Opcode::Ld, 1, 2, 0, 0), 0);
            e.state = EntryState::Done;
            e.result = Some(0xbad); // identical (poisoned) loaded value
            e.ea = Some(ea);
            e
        };
        let a = mk(0, 0, 0x9000); // corrupted address performed the access
        let b = mk(1, 1, 0x1000);
        let c = mk(2, 2, 0x1000);
        let out = check_group(&[a, b, c], true, 2);
        assert_eq!(out.decision, GroupDecision::Rewind);
    }

    #[test]
    fn load_with_unanimous_address_can_elect_on_value() {
        // Address agrees; one copy's value was struck post-load (RobWait):
        // the two pristine copies out-vote it safely.
        let mk = |seq, copy, v: u64| {
            let mut e = Entry::new(seq, 0, copy, 0x1000, Inst::new(Opcode::Ld, 1, 2, 0, 0), 0);
            e.state = EntryState::Done;
            e.result = Some(v);
            e.ea = Some(0x1000);
            e
        };
        let a = mk(0, 0, 42);
        let b = mk(1, 1, 42);
        let c = mk(2, 2, 43);
        let out = check_group(&[a, b, c], true, 2);
        assert_eq!(out.decision, GroupDecision::Commit { representative: 0 });
        assert_eq!(out.dissenters, vec![2]);
    }

    #[test]
    #[should_panic(expected = "empty group")]
    fn empty_group_panics() {
        let _ = check_group(&[], false, 1);
    }

    #[test]
    fn majority_vote_prefers_earliest() {
        assert_eq!(majority_vote(&["a", "b", "a"], 2), Some(0));
        assert_eq!(majority_vote::<u32>(&[], 1), None);
    }
}
