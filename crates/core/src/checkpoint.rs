//! Whole-machine snapshot and restore.
//!
//! A [`Checkpoint`] captures every piece of microarchitectural and
//! architectural state a [`Processor`] evolves during a run — the RUU and
//! LSQ (with the LSQ's store index), the event-driven scheduler
//! (wait-lists, ready queue, deferred/parked entries, pending stores), the
//! rename map and its per-branch checkpoints, committed registers and
//! copy-on-write memory, the committed next-PC register, the whole front
//! end (fetch queue, predictor/BTB/RAS training state, stall clock), cache
//! and TLB contents, functional-unit busy clocks, the completion-event
//! heap, the fault ledger, and the statistics counters.
//!
//! Restoring a checkpoint into a processor built over the same
//! configuration and program therefore resumes the run **bit-identically**:
//! every subsequent cycle computes exactly what the uninterrupted run would
//! have computed. The experiment harness leans on this to share the
//! fault-free prefix of a sweep across grid cells: one baseline run drops
//! periodic checkpoints, and each faulty cell forks from the newest
//! checkpoint that precedes its first possible fault injection.
//!
//! What a checkpoint deliberately does **not** capture:
//!
//! * the **fault injector** — a fork's whole point is to continue under a
//!   *different* injector than the baseline's; the caller pairs a restore
//!   with [`ftsim_faults::FaultInjector::fast_forward_fault_free`] so the
//!   injector's draw stream stays aligned with the restored draw count
//!   (one draw per dispatched entry, i.e. [`Checkpoint::draws`]);
//! * the reusable scratch buffers — they are empty between cycles and
//!   carry no machine state.
//!
//! Cost: cloning the caches/TLB tag arrays dominates (a few hundred KB for
//! the default Table 1 hierarchy); memory pages are shared copy-on-write
//! (see [`SparseMemory`](ftsim_mem::SparseMemory)), so repeated snapshots
//! of a multi-megabyte footprint stay cheap.

use crate::config::MachineConfig;
use crate::fetch::FetchUnit;
use crate::fu::FuPool;
use crate::lsq::Lsq;
use crate::pipeline::Processor;
use crate::rename::{MapCheckpoint, MapTable};
use crate::ruu::Ruu;
use crate::sched::Scheduler;
use crate::seqhash::SeqHashMap;
use crate::stats::SimStats;
use ftsim_faults::FaultLog;
use ftsim_isa::{ArchRegs, Program};
use ftsim_mem::{Hierarchy, SparseMemory};
use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::sync::Arc;

/// A complete, restorable snapshot of one [`Processor`] between cycles.
///
/// Obtain via [`Processor::snapshot`] (or
/// [`Simulator::run_with_checkpoints`](crate::Simulator::run_with_checkpoints)),
/// restore via [`Processor::restore`]. The snapshot records the identity of
/// the machine it was taken from (configuration and program) and refuses to
/// restore into a mismatched processor.
#[derive(Debug, Clone)]
pub struct Checkpoint {
    /// Identity guard: configuration of the source machine.
    config: MachineConfig,
    /// Identity guard + restore source: the shared program image.
    program: Arc<Program>,
    now: u64,
    next_seq: u64,
    next_group: u64,
    ruu: Ruu,
    lsq: Lsq,
    map: MapTable,
    map_checkpoints: SeqHashMap<u64, MapCheckpoint>,
    regs: ArchRegs,
    mem: SparseMemory,
    committed_next_pc: u64,
    fetch: FetchUnit,
    hierarchy: Hierarchy,
    fu: FuPool,
    events: BinaryHeap<Reverse<(u64, u64)>>,
    fault_log: FaultLog,
    stats: SimStats,
    halted: bool,
    pending_rewind_start: Option<u64>,
    last_commit_cycle: u64,
    sched: Scheduler,
}

impl Checkpoint {
    /// The cycle at which the snapshot was taken; a restored machine's
    /// next [`Processor::cycle`] executes this cycle.
    pub fn cycle(&self) -> u64 {
        self.now
    }

    /// Number of fault-injector draws the machine had made when the
    /// snapshot was taken (exactly one draw per dispatched RUU entry).
    ///
    /// A fork pairs [`Processor::restore`] with
    /// [`ftsim_faults::FaultInjector::fast_forward_fault_free`] over this
    /// many draws, and is sound only when the forked cell's first possible
    /// injection lies at or beyond this draw index.
    pub fn draws(&self) -> u64 {
        self.next_seq
    }

    /// Architectural instructions retired at snapshot time.
    pub fn retired_instructions(&self) -> u64 {
        self.stats.retired_instructions
    }

    /// Whether the snapshot was taken from a machine whose `halt` had
    /// already committed.
    pub fn halted(&self) -> bool {
        self.halted
    }

    /// Rough retained size of this snapshot in bytes, for observability
    /// (checkpoint-volume metrics), **not** accounting. Counts the
    /// dominant terms — cache/TLB tag arrays from the configured
    /// geometry, referenced memory pages (shared copy-on-write pages
    /// count fully here, so repeated snapshots over-report), and the
    /// occupied RUU/LSQ entries — and ignores small fixed-size state.
    pub fn approx_bytes(&self) -> u64 {
        // Per cache line the simulator keeps a tag + state word besides
        // the data; ~16 bytes of metadata per line is close enough for a
        // trend metric.
        let cache = |c: &ftsim_mem::CacheConfig| {
            let lines = (c.size_bytes / c.line_bytes) as u64;
            c.size_bytes as u64 + lines * 16
        };
        let h = &self.config.hierarchy;
        let caches = cache(&h.il1) + cache(&h.dl1) + cache(&h.l2);
        let pages = self.mem.page_count() as u64 * ftsim_mem::PAGE_BYTES as u64;
        // An RUU entry carries operands, results and per-copy check
        // state; ~256 bytes each. LSQ entries are lighter.
        let queues = self.ruu.len() as u64 * 256 + self.lsq.len() as u64 * 128;
        caches + pages + queues + 4096
    }
}

impl Processor {
    /// Captures the complete machine state between cycles.
    ///
    /// Call only at a cycle boundary (never from inside a stage); the
    /// per-cycle scratch buffers are empty there, so nothing transient is
    /// lost. Memory pages are shared copy-on-write rather than copied.
    pub fn snapshot(&self) -> Checkpoint {
        Checkpoint {
            config: self.config.clone(),
            program: Arc::clone(&self.program),
            now: self.now,
            next_seq: self.next_seq,
            next_group: self.next_group,
            ruu: self.ruu.clone(),
            lsq: self.lsq.clone(),
            map: self.map.clone(),
            map_checkpoints: self.checkpoints.clone(),
            regs: self.regs.clone(),
            mem: self.mem.clone(),
            committed_next_pc: self.committed_next_pc,
            fetch: self.fetch.clone(),
            hierarchy: self.hierarchy.clone(),
            fu: self.fu.clone(),
            events: self.events.clone(),
            fault_log: self.fault_log.clone(),
            stats: self.stats.clone(),
            halted: self.halted,
            pending_rewind_start: self.pending_rewind_start,
            last_commit_cycle: self.last_commit_cycle,
            sched: self.sched.clone(),
        }
    }

    /// Restores the machine to `cp`'s state; the run then continues
    /// bit-identically to the uninterrupted original.
    ///
    /// The processor's own fault injector is deliberately left in place
    /// (see the module docs); everything else — including the statistics
    /// prefix, which is how forked sweep cells keep their records
    /// byte-identical to cold-start runs — comes from the checkpoint.
    ///
    /// # Panics
    ///
    /// Panics if the checkpoint was taken from a machine with a different
    /// configuration or program: resuming foreign state on a mismatched
    /// machine would silently compute garbage.
    pub fn restore(&mut self, cp: &Checkpoint) {
        self.restore_owned(cp.clone());
    }

    /// As [`Processor::restore`], consuming the checkpoint — the state
    /// moves in without a second copy. Prefer this when the checkpoint was
    /// already cloned out of shared storage (the forked-cell path).
    ///
    /// # Panics
    ///
    /// As [`Processor::restore`].
    pub fn restore_owned(&mut self, cp: Checkpoint) {
        assert!(
            self.config == cp.config,
            "checkpoint from machine `{}` cannot restore into `{}` (configuration differs)",
            cp.config.name,
            self.config.name
        );
        assert!(
            Arc::ptr_eq(&self.program, &cp.program) || *self.program == *cp.program,
            "checkpoint was taken over a different program"
        );
        self.now = cp.now;
        self.next_seq = cp.next_seq;
        self.next_group = cp.next_group;
        self.ruu = cp.ruu;
        self.lsq = cp.lsq;
        self.map = cp.map;
        self.checkpoints = cp.map_checkpoints;
        self.regs = cp.regs;
        self.mem = cp.mem;
        self.committed_next_pc = cp.committed_next_pc;
        self.fetch = cp.fetch;
        self.hierarchy = cp.hierarchy;
        self.fu = cp.fu;
        self.events = cp.events;
        self.fault_log = cp.fault_log;
        self.stats = cp.stats;
        self.halted = cp.halted;
        self.pending_rewind_start = cp.pending_rewind_start;
        self.last_commit_cycle = cp.last_commit_cycle;
        self.sched = cp.sched;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::MachineConfig;
    use ftsim_faults::FaultInjector;
    use ftsim_isa::asm;

    fn busy_program() -> Program {
        asm::assemble(
            r"
                addi r1, r0, 40
                addi r2, r0, 0
                addi r3, r0, 256
            loop:
                mul  r4, r1, r1
                sd   r4, 0(r3)
                ld   r5, 0(r3)
                add  r2, r2, r5
                addi r3, r3, 8
                addi r1, r1, -1
                bne  r1, r0, loop
                halt
            ",
        )
        .unwrap()
    }

    #[test]
    fn snapshot_restore_resumes_bit_identically() {
        let p = busy_program();
        let mut a = Processor::new(MachineConfig::ss2(), &p, FaultInjector::none());
        for _ in 0..150 {
            a.cycle();
        }
        assert!(!a.halted(), "snapshot point must be mid-flight");
        let cp = a.snapshot();
        assert_eq!(cp.cycle(), 150);
        assert_eq!(cp.draws(), a.stats_snapshot().dispatched_entries);

        let mut b = Processor::new(MachineConfig::ss2(), &p, FaultInjector::none());
        b.restore(&cp);
        while !a.halted() {
            a.cycle();
            b.cycle();
            assert_eq!(a.now(), b.now());
        }
        assert!(b.halted());
        let (sa, sb) = (a.stats_snapshot(), b.stats_snapshot());
        assert_eq!(sa.cycles, sb.cycles);
        assert_eq!(sa.retired_instructions, sb.retired_instructions);
        assert_eq!(sa.fetched, sb.fetched);
        assert_eq!(sa.dl1.accesses, sb.dl1.accesses);
        assert!(a.regs().diff(b.regs()).is_empty());
        assert!(a.mem().diff(b.mem(), 4).is_empty());
    }

    #[test]
    fn snapshot_shares_memory_pages() {
        let p = busy_program();
        let mut proc = Processor::new(MachineConfig::ss1(), &p, FaultInjector::none());
        while !proc.halted() {
            proc.cycle();
        }
        let cp = proc.snapshot();
        assert!(
            cp.mem.pages_shared_with(proc.mem()) == proc.mem().page_count(),
            "snapshot must not deep-copy pages"
        );
    }

    #[test]
    #[should_panic(expected = "configuration differs")]
    fn mismatched_config_is_rejected() {
        let p = busy_program();
        let a = Processor::new(MachineConfig::ss1(), &p, FaultInjector::none());
        let cp = a.snapshot();
        let mut b = Processor::new(MachineConfig::ss2(), &p, FaultInjector::none());
        b.restore(&cp);
    }

    #[test]
    #[should_panic(expected = "different program")]
    fn mismatched_program_is_rejected() {
        let a_prog = busy_program();
        let b_prog = asm::assemble("addi r1, r0, 1\nhalt\n").unwrap();
        let a = Processor::new(MachineConfig::ss1(), &a_prog, FaultInjector::none());
        let cp = a.snapshot();
        let mut b = Processor::new(MachineConfig::ss1(), &b_prog, FaultInjector::none());
        b.restore(&cp);
    }
}
