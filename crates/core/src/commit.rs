//! Commit stage: in-order retirement with the redundant cross-check,
//! majority election, the control-flow check, and rewind recovery.

use crate::check::{check_group, GroupDecision};
use crate::entry::{Entry, EntryState};
use crate::pipeline::Processor;
use crate::stats::RewindCause;
use ftsim_faults::FaultFate;
use ftsim_mem::AccessKind;
use ftsim_predict::DirectionPredictor;

impl Processor {
    /// Retires as many whole replication groups as bandwidth and
    /// correctness allow this cycle.
    pub(crate) fn stage_commit(&mut self) {
        let r = self.r() as usize;
        let mut budget = self.config.commit_width as usize;
        let mut committed_any = false;
        // Reused snapshot buffer: the head group is copied (≤ R small,
        // heap-free entries) so the decision logic does not hold a borrow
        // on the RUU; the buffer itself persists across cycles, so the
        // steady-state commit loop allocates nothing.
        let mut group = std::mem::take(&mut self.commit_scratch);

        while budget >= r {
            group.clear();
            group.extend(self.ruu.head_group().cloned());
            if group.is_empty() {
                break;
            }
            debug_assert_eq!(group.len(), r, "replication groups dispatch atomically");
            if !group.iter().all(|e| e.state == EntryState::Done) {
                break;
            }

            // Control-flow check against the ECC-protected committed
            // next-PC register: "every retiring instruction's PC must be
            // checked against the last committed next-PC" (§3.2).
            if group[0].pc != self.committed_next_pc {
                for e in &group {
                    if let Some((id, _)) = e.fault {
                        let fate = if e.fault_effective {
                            FaultFate::Detected
                        } else {
                            FaultFate::Masked
                        };
                        self.fault_log
                            .resolve(id, fate, self.now, self.stats.retired_instructions);
                    }
                }
                self.full_rewind(RewindCause::ControlFlowCheck);
                break;
            }

            let outcome = check_group(
                &group,
                self.config.redundancy.majority,
                self.config.redundancy.threshold,
            );

            match outcome.decision {
                GroupDecision::Rewind => {
                    // Detection: attribute attached faults, then recover by
                    // rewinding to the committed state (§3.2 Recovery).
                    for e in &group {
                        if let Some((id, _)) = e.fault {
                            let fate = if e.fault_effective {
                                FaultFate::Detected
                            } else {
                                FaultFate::Masked
                            };
                            self.fault_log.resolve(
                                id,
                                fate,
                                self.now,
                                self.stats.retired_instructions,
                            );
                        }
                    }
                    self.full_rewind(RewindCause::FaultDetected);
                    break;
                }
                GroupDecision::Commit { representative } => {
                    let rep = &group[representative];

                    // A corrupted copy of a control instruction may have
                    // redirected the front end to a bogus target at
                    // resolution time. Election commits the correct
                    // outcome, but the fetch stream is still poisoned —
                    // repair it like a commit-time mispredict: squash
                    // everything younger and re-steer to the elected
                    // next-PC. (Without this, a wrong-target redirect can
                    // leave fetch outside the text segment forever.)
                    if !outcome.unanimous && rep.inst.op.is_control() {
                        let elected_next = rep.computed_next_pc();
                        let steered = rep
                            .resteer_next
                            .or(rep.pred.map(|p| p.next_pc))
                            .expect("control instruction carries a prediction");
                        if steered != elected_next {
                            let last_seq = rep.seq - u64::from(rep.copy) + self.r() - 1;
                            self.branch_rewind(rep.group, last_seq, elected_next);
                        }
                    }

                    // Stores write committed memory only now, after the
                    // cross-check passed — and need an L1D port.
                    if rep.inst.op.is_store() {
                        if !self.hierarchy.try_data_port() {
                            self.stats.store_port_stalls += 1;
                            break;
                        }
                        let ea = rep.ea.expect("store has an address");
                        let data = rep.store_data.expect("store has a datum");
                        self.hierarchy.data_access(ea, AccessKind::Write);
                        self.mem.write_sized(ea, data, rep.inst.op.mem_bytes());
                    }

                    if !outcome.unanimous {
                        self.stats.majority_elections += 1;
                    }
                    for (idx, e) in group.iter().enumerate() {
                        let Some((id, _)) = e.fault else { continue };
                        let fate = if outcome.dissenters.contains(&idx) {
                            FaultFate::Outvoted
                        } else if e.fault_effective {
                            // An architecturally-visible corruption sits on
                            // the side whose values are committing: either
                            // R = 1 (no protection), or every committing
                            // copy was corrupted *identically* — the
                            // indiscernible-error case of §2.2 that no
                            // degree of replication can detect (it can even
                            // win a majority election). Committed state is
                            // now corrupt; account it honestly.
                            FaultFate::Escaped
                        } else {
                            FaultFate::Masked
                        };
                        self.fault_log
                            .resolve(id, fate, self.now, self.stats.retired_instructions);
                    }

                    self.retire_group(rep.clone(), representative == 0);
                    budget -= r;
                    committed_any = true;
                    if self.halted {
                        break;
                    }
                }
            }
        }

        group.clear();
        self.commit_scratch = group;

        if committed_any {
            self.stats.commit_active_cycles += 1;
            self.last_commit_cycle = self.now;
        }
    }

    /// Applies one group's architectural effects and frees its resources.
    fn retire_group(&mut self, rep: Entry, _rep_is_copy0: bool) {
        // First commit after a full rewind closes the recovery-penalty
        // measurement (the W of §4.2/§5.3). This runs before the group is
        // counted so same-cycle commits preceding a rewind can't zero it.
        if let Some(start) = self.pending_rewind_start.take() {
            let penalty = self.now - start;
            self.stats.rewind_penalty_cycles += penalty;
            self.stats.rewind_penalty_events += 1;
            self.stats.rewind_penalty_max = self.stats.rewind_penalty_max.max(penalty);
        }
        let r = self.r() as usize;
        let inst = rep.inst;
        let copy0_seq = rep.seq - u64::from(rep.copy);

        if let (Some(rd), Some(v)) = (inst.effective_rd(), rep.result) {
            self.regs.write(rd, v);
        }

        if inst.op.is_cond_branch() {
            let taken = rep.taken.expect("resolved branch");
            self.stats.branches += 1;
            let pred = rep.pred.expect("branch carries prediction");
            if rep.computed_next_pc() != pred.next_pc {
                self.stats.branch_mispredicts += 1;
            }
            self.fetch.predictor_mut().update(rep.pc, taken);
            if taken {
                self.fetch
                    .btb_mut()
                    .update(rep.pc, rep.target.expect("taken branch has target"));
            }
        } else if inst.op.is_indirect_jump() {
            self.fetch
                .btb_mut()
                .update(rep.pc, rep.target.expect("jump has target"));
        }

        self.committed_next_pc = rep.computed_next_pc();

        if let Some(rd) = inst.effective_rd() {
            self.map.retire(rd, copy0_seq);
        }
        self.checkpoints.remove(&rep.group);
        if inst.op.is_mem() {
            self.lsq.remove_group(rep.group);
        }

        self.stats.retired_instructions += 1;
        self.stats.retired_entries += r as u64;
        self.stats.inflight_latency_sum += self.now.saturating_sub(rep.dispatched_at);
        self.stats.count_mix(inst.op.mix_class());

        self.ruu.pop_front(r);

        if rep.halt {
            self.halted = true;
        }
    }
}
