//! Machine configuration and the paper's evaluated machine models.

use ftsim_mem::HierarchyConfig;
use ftsim_predict::{BtbConfig, PredictorConfig};
use std::fmt;

/// A structurally invalid machine description, reported by
/// [`MachineConfig::validate`] / [`RedundancyConfig::validate`] and
/// surfaced through the simulator builder before any cycle is simulated.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ConfigError {
    /// `r = 0`: there must be at least one copy of every instruction.
    ZeroRedundancy,
    /// `threshold = 0`: at least one copy must be required to agree.
    ZeroThreshold,
    /// The acceptance threshold exceeds the number of copies.
    ThresholdExceedsR {
        /// Configured acceptance threshold.
        threshold: u8,
        /// Configured redundancy degree.
        r: u8,
    },
    /// Majority election demands `r >= 3` (with 2 copies a disagreement
    /// has no majority to elect).
    MajorityNeedsThree {
        /// Configured redundancy degree.
        r: u8,
    },
    /// A majority threshold must be a strict majority of the copies.
    WeakMajorityThreshold {
        /// Configured acceptance threshold.
        threshold: u8,
        /// Configured redundancy degree.
        r: u8,
    },
    /// Dispatch must be able to move one replication group per cycle.
    GroupExceedsDispatch {
        /// Configured dispatch width.
        width: u32,
        /// Configured redundancy degree.
        r: u8,
    },
    /// Commit must be able to retire one replication group per cycle.
    GroupExceedsCommit {
        /// Configured commit width.
        width: u32,
        /// Configured redundancy degree.
        r: u8,
    },
    /// The RUU cannot hold even one replication group.
    RuuTooSmall {
        /// Configured RUU capacity.
        size: usize,
        /// Configured redundancy degree.
        r: u8,
    },
    /// The LSQ cannot hold even one replication group.
    LsqTooSmall {
        /// Configured LSQ capacity.
        size: usize,
        /// Configured redundancy degree.
        r: u8,
    },
    /// Fetch width or fetch queue capacity is zero.
    FrontEndTooSmall,
    /// A functional-unit class has no units (every class is required:
    /// integer ALUs resolve branches, and the workloads exercise the
    /// multiplier and both FP classes).
    ZeroFuCount {
        /// Which unit class is missing (e.g. `"int_alu"`).
        unit: &'static str,
    },
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ConfigError::ZeroRedundancy => write!(f, "redundancy degree must be at least 1"),
            ConfigError::ZeroThreshold => write!(f, "acceptance threshold must be at least 1"),
            ConfigError::ThresholdExceedsR { threshold, r } => write!(
                f,
                "acceptance threshold {threshold} exceeds redundancy degree {r}"
            ),
            ConfigError::MajorityNeedsThree { r } => {
                write!(f, "majority election requires R >= 3 (got R = {r})")
            }
            ConfigError::WeakMajorityThreshold { threshold, r } => write!(
                f,
                "majority threshold {threshold} is not a strict majority of {r} copies"
            ),
            ConfigError::GroupExceedsDispatch { width, r } => write!(
                f,
                "dispatch width {width} cannot move one replication group of {r}"
            ),
            ConfigError::GroupExceedsCommit { width, r } => write!(
                f,
                "commit width {width} cannot retire one replication group of {r}"
            ),
            ConfigError::RuuTooSmall { size, r } => {
                write!(f, "RUU of {size} cannot hold one replication group of {r}")
            }
            ConfigError::LsqTooSmall { size, r } => {
                write!(f, "LSQ of {size} cannot hold one replication group of {r}")
            }
            ConfigError::FrontEndTooSmall => {
                write!(f, "fetch width and fetch queue capacity must be nonzero")
            }
            ConfigError::ZeroFuCount { unit } => {
                write!(f, "functional-unit class {unit} has zero units")
            }
        }
    }
}

impl std::error::Error for ConfigError {}

/// Functional-unit counts (paper Table 1: 4 / 2 / 2 / 1).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FuConfig {
    /// Integer ALUs (also resolve branches).
    pub int_alu: u32,
    /// Integer multiplier/divider units.
    pub int_mul: u32,
    /// FP adders.
    pub fp_add: u32,
    /// FP multiplier/divider units.
    pub fp_mul: u32,
}

impl Default for FuConfig {
    fn default() -> Self {
        Self {
            int_alu: 4,
            int_mul: 2,
            fp_add: 2,
            fp_mul: 1,
        }
    }
}

/// Operation latencies in cycles (SimpleScalar defaults). "All FU
/// operations are pipelined except for division" (Table 1) — divisions and
/// square roots block their unit for the full latency.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OpLatencies {
    /// Integer ALU operations (and branch resolution).
    pub int_alu: u64,
    /// Integer multiply (pipelined).
    pub int_mul: u64,
    /// Integer divide/remainder (blocking).
    pub int_div: u64,
    /// FP add class (pipelined).
    pub fp_add: u64,
    /// FP multiply (pipelined).
    pub fp_mul: u64,
    /// FP divide (blocking).
    pub fp_div: u64,
    /// FP square root (blocking).
    pub fp_sqrt: u64,
    /// Store-to-load forwarding latency.
    pub forward: u64,
    /// Extra front-end refill cycles charged on a branch mispredict
    /// redirect (on top of the natural refetch delay).
    pub mispredict_extra: u64,
}

impl Default for OpLatencies {
    fn default() -> Self {
        Self {
            int_alu: 1,
            int_mul: 3,
            int_div: 20,
            fp_add: 2,
            fp_mul: 4,
            fp_div: 12,
            fp_sqrt: 24,
            forward: 1,
            mispredict_extra: 2,
        }
    }
}

/// Redundant-execution configuration (the paper's `R`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RedundancyConfig {
    /// Degree of redundancy: 1 = plain superscalar, 2–3 as studied.
    pub r: u8,
    /// With `r >= 3`, resolve commit-time disagreements by majority
    /// election instead of always rewinding (§3.2 Recovery).
    pub majority: bool,
    /// Copies that must agree for a majority to be accepted (the paper's
    /// "correctness acceptance threshold"). Ignored unless `majority`.
    pub threshold: u8,
}

impl RedundancyConfig {
    /// No redundancy.
    pub fn none() -> Self {
        Self {
            r: 1,
            majority: false,
            threshold: 1,
        }
    }

    /// `R`-way redundancy with rewind-only recovery.
    pub fn rewind(r: u8) -> Self {
        Self {
            r,
            majority: false,
            threshold: r,
        }
    }

    /// `R`-way redundancy with majority election (threshold ⌈(r+1)/2⌉).
    pub fn majority(r: u8) -> Self {
        Self {
            r,
            majority: true,
            threshold: r / 2 + 1,
        }
    }

    /// Checks the redundancy invariants in isolation: `r >= 1`,
    /// `1 <= threshold <= r`, and majority election only with `r >= 3`
    /// and a strict-majority threshold.
    ///
    /// # Errors
    ///
    /// The first violated invariant as a [`ConfigError`].
    ///
    /// # Examples
    ///
    /// ```
    /// use ftsim_core::{ConfigError, RedundancyConfig};
    ///
    /// assert!(RedundancyConfig::rewind(2).validate().is_ok());
    /// let bad = RedundancyConfig { r: 2, majority: true, threshold: 2 };
    /// assert_eq!(bad.validate(), Err(ConfigError::MajorityNeedsThree { r: 2 }));
    /// ```
    pub fn validate(&self) -> Result<(), ConfigError> {
        if self.r == 0 {
            return Err(ConfigError::ZeroRedundancy);
        }
        if self.threshold == 0 {
            return Err(ConfigError::ZeroThreshold);
        }
        if self.threshold > self.r {
            return Err(ConfigError::ThresholdExceedsR {
                threshold: self.threshold,
                r: self.r,
            });
        }
        if self.majority {
            if self.r < 3 {
                return Err(ConfigError::MajorityNeedsThree { r: self.r });
            }
            if self.threshold <= self.r / 2 {
                return Err(ConfigError::WeakMajorityThreshold {
                    threshold: self.threshold,
                    r: self.r,
                });
            }
        }
        Ok(())
    }
}

/// Resource scaling factors for the §5.2 sensitivity study
/// (0.5×, 1×, 2×, ∞).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Scale {
    /// Half the baseline resources.
    Half,
    /// Baseline.
    One,
    /// Double.
    Two,
    /// Effectively unbounded.
    Infinite,
}

impl Scale {
    /// Applies the scale to a count, with `lo` as the floor and a large
    /// constant for `Infinite`.
    fn apply(self, base: u32, lo: u32, inf: u32) -> u32 {
        match self {
            Scale::Half => (base / 2).max(lo),
            Scale::One => base,
            Scale::Two => base * 2,
            Scale::Infinite => inf,
        }
    }

    /// Human-readable factor used in experiment tables.
    pub fn label(self) -> &'static str {
        match self {
            Scale::Half => "0.5x",
            Scale::One => "1x",
            Scale::Two => "2x",
            Scale::Infinite => "inf",
        }
    }
}

/// Complete machine description for one simulation.
///
/// Construct via a preset ([`MachineConfig::ss1`], [`MachineConfig::ss2`],
/// [`MachineConfig::ss3`], [`MachineConfig::static2`]) and refine with the
/// `with_*` builder methods.
///
/// # Examples
///
/// ```
/// use ftsim_core::{MachineConfig, Scale};
///
/// let m = MachineConfig::ss1().with_fu_scale(Scale::Two);
/// assert_eq!(m.fu.int_alu, 8);
/// let inf = MachineConfig::ss1().with_ruu_scale(Scale::Infinite);
/// assert!(inf.ruu_size >= 4096);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct MachineConfig {
    /// Display name ("SS-1", "SS-2", "Static-2", ...).
    pub name: String,
    /// Instructions fetched per cycle (Table 1: 8).
    pub fetch_width: u32,
    /// RUU entries dispatched per cycle (Table 1: 8; each redundant copy
    /// consumes one slot, so effective architectural width is `width / R`).
    pub dispatch_width: u32,
    /// RUU entries issued to functional units per cycle (Table 1: 8).
    pub issue_width: u32,
    /// RUU entries retired per cycle (Table 1: 8; "R accesses to ROB are
    /// needed to retire a single instruction").
    pub commit_width: u32,
    /// RUU (ROB + rename registers) capacity (Table 1: 128).
    pub ruu_size: usize,
    /// Load/store queue capacity (Table 1: 64).
    pub lsq_size: usize,
    /// Fetch queue capacity.
    pub ifq_size: usize,
    /// Functional-unit mix.
    pub fu: FuConfig,
    /// Operation latencies.
    pub lat: OpLatencies,
    /// Cache/TLB hierarchy.
    pub hierarchy: HierarchyConfig,
    /// Direction predictor (Table 1 combined predictor).
    pub predictor: PredictorConfig,
    /// Branch target buffer.
    pub btb: BtbConfig,
    /// Return address stack depth.
    pub ras_depth: usize,
    /// Redundancy mode.
    pub redundancy: RedundancyConfig,
}

impl MachineConfig {
    /// The baseline superscalar of Table 1 (no redundancy) — the paper's
    /// **SS-1** model.
    pub fn ss1() -> Self {
        Self {
            name: "SS-1".to_string(),
            fetch_width: 8,
            dispatch_width: 8,
            issue_width: 8,
            commit_width: 8,
            ruu_size: 128,
            lsq_size: 64,
            ifq_size: 16,
            fu: FuConfig::default(),
            lat: OpLatencies::default(),
            hierarchy: HierarchyConfig::default(),
            predictor: PredictorConfig::default(),
            btb: BtbConfig::default(),
            ras_depth: 8,
            redundancy: RedundancyConfig::none(),
        }
    }

    /// The 2-way dynamically-redundant fault-tolerant superscalar —
    /// the paper's **SS-2** model (same hardware as SS-1).
    pub fn ss2() -> Self {
        Self {
            name: "SS-2".to_string(),
            redundancy: RedundancyConfig::rewind(2),
            ..Self::ss1()
        }
    }

    /// 3-way redundancy with rewind-only recovery.
    pub fn ss3() -> Self {
        Self {
            name: "SS-3".to_string(),
            redundancy: RedundancyConfig::rewind(3),
            ..Self::ss1()
        }
    }

    /// 3-way redundancy with 2-of-3 majority election (the `R = 3` design
    /// of Figures 3 and 6).
    pub fn ss3_majority() -> Self {
        Self {
            name: "SS-3M".to_string(),
            redundancy: RedundancyConfig::majority(3),
            ..Self::ss1()
        }
    }

    /// One pipe of the statically-redundant two-pipeline processor —
    /// the paper's **Static-2** model: half of every SS-1 resource
    /// *except* caches and branch prediction hardware, and each pipe keeps
    /// one FP multiplier/divider (the paper notes Static-2 thereby "has
    /// the advantage of an extra FP Mult/Div unit").
    pub fn static2() -> Self {
        Self {
            name: "Static-2".to_string(),
            fetch_width: 4,
            dispatch_width: 4,
            issue_width: 4,
            commit_width: 4,
            ruu_size: 64,
            lsq_size: 32,
            ifq_size: 8,
            fu: FuConfig {
                int_alu: 2,
                int_mul: 1,
                fp_add: 1,
                fp_mul: 1, // cannot halve a single unit
            },
            redundancy: RedundancyConfig::none(),
            ..Self::ss1()
        }
    }

    /// Overrides the redundancy mode, renaming the model accordingly.
    pub fn with_redundancy(mut self, redundancy: RedundancyConfig) -> Self {
        self.redundancy = redundancy;
        self
    }

    /// Scales every functional-unit count (sensitivity study §5.2).
    ///
    /// Memory ports scale too: in `sim-outorder` the L1D ports are
    /// functional-unit resources (`res:memport`), so the paper's FU sweep
    /// includes them.
    pub fn with_fu_scale(mut self, scale: Scale) -> Self {
        self.fu.int_alu = scale.apply(self.fu.int_alu, 1, 64);
        self.fu.int_mul = scale.apply(self.fu.int_mul, 1, 64);
        self.fu.fp_add = scale.apply(self.fu.fp_add, 1, 64);
        self.fu.fp_mul = scale.apply(self.fu.fp_mul, 1, 64);
        self.hierarchy.dl1_ports = scale.apply(self.hierarchy.dl1_ports, 1, 64);
        self
    }

    /// Scales the RUU (and LSQ proportionally; sensitivity study §5.2).
    pub fn with_ruu_scale(mut self, scale: Scale) -> Self {
        self.ruu_size = scale.apply(self.ruu_size as u32, 8, 4096) as usize;
        self.lsq_size = scale.apply(self.lsq_size as u32, 4, 2048) as usize;
        self
    }

    /// Renames the model (for experiment tables).
    pub fn named(mut self, name: &str) -> Self {
        self.name = name.to_string();
        self
    }

    /// Validates internal consistency: the redundancy invariants plus
    /// the structural requirements that every replication group can be
    /// dispatched, held and retired atomically and that every
    /// functional-unit class exists.
    ///
    /// # Errors
    ///
    /// The first violated invariant as a [`ConfigError`]. The simulator
    /// builder calls this before constructing a pipeline, so a
    /// misconfigured experiment fails fast instead of wedging mid-run.
    ///
    /// # Examples
    ///
    /// ```
    /// use ftsim_core::{ConfigError, MachineConfig};
    ///
    /// assert!(MachineConfig::ss2().validate().is_ok());
    ///
    /// let mut narrow = MachineConfig::ss2();
    /// narrow.dispatch_width = 1;
    /// assert_eq!(
    ///     narrow.validate(),
    ///     Err(ConfigError::GroupExceedsDispatch { width: 1, r: 2 })
    /// );
    /// ```
    pub fn validate(&self) -> Result<(), ConfigError> {
        self.redundancy.validate()?;
        let r = u32::from(self.redundancy.r);
        if self.dispatch_width < r {
            return Err(ConfigError::GroupExceedsDispatch {
                width: self.dispatch_width,
                r: self.redundancy.r,
            });
        }
        if self.commit_width < r {
            return Err(ConfigError::GroupExceedsCommit {
                width: self.commit_width,
                r: self.redundancy.r,
            });
        }
        if self.ruu_size < self.redundancy.r as usize {
            return Err(ConfigError::RuuTooSmall {
                size: self.ruu_size,
                r: self.redundancy.r,
            });
        }
        if self.lsq_size < self.redundancy.r as usize {
            return Err(ConfigError::LsqTooSmall {
                size: self.lsq_size,
                r: self.redundancy.r,
            });
        }
        if self.fetch_width == 0 || self.ifq_size == 0 {
            return Err(ConfigError::FrontEndTooSmall);
        }
        for (count, unit) in [
            (self.fu.int_alu, "int_alu"),
            (self.fu.int_mul, "int_mul"),
            (self.fu.fp_add, "fp_add"),
            (self.fu.fp_mul, "fp_mul"),
        ] {
            if count == 0 {
                return Err(ConfigError::ZeroFuCount { unit });
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_baseline() {
        let m = MachineConfig::ss1();
        m.validate().unwrap();
        assert_eq!(m.fetch_width, 8);
        assert_eq!(m.ruu_size, 128);
        assert_eq!(m.lsq_size, 64);
        assert_eq!(
            m.fu,
            FuConfig {
                int_alu: 4,
                int_mul: 2,
                fp_add: 2,
                fp_mul: 1
            }
        );
        assert_eq!(m.redundancy.r, 1);
    }

    #[test]
    fn ss2_shares_hardware_with_ss1() {
        let a = MachineConfig::ss1();
        let b = MachineConfig::ss2();
        b.validate().unwrap();
        assert_eq!(b.redundancy.r, 2);
        assert_eq!(a.fu, b.fu);
        assert_eq!(a.ruu_size, b.ruu_size);
        assert_eq!(a.hierarchy, b.hierarchy);
    }

    #[test]
    fn static2_halves_core_keeps_caches_and_fpmul() {
        let m = MachineConfig::static2();
        m.validate().unwrap();
        assert_eq!(m.fetch_width, 4);
        assert_eq!(m.ruu_size, 64);
        assert_eq!(m.fu.int_alu, 2);
        assert_eq!(m.fu.fp_mul, 1); // the "extra" FP Mult/Div per pipe
        assert_eq!(m.hierarchy, MachineConfig::ss1().hierarchy);
        assert_eq!(m.predictor, MachineConfig::ss1().predictor);
    }

    #[test]
    fn majority_preset() {
        let m = MachineConfig::ss3_majority();
        m.validate().unwrap();
        assert!(m.redundancy.majority);
        assert_eq!(m.redundancy.threshold, 2);
    }

    #[test]
    fn scales() {
        let m = MachineConfig::ss1().with_fu_scale(Scale::Half);
        assert_eq!(m.fu.int_alu, 2);
        assert_eq!(m.fu.fp_mul, 1); // floor at 1
        let m = MachineConfig::ss1().with_ruu_scale(Scale::Two);
        assert_eq!(m.ruu_size, 256);
        assert_eq!(m.lsq_size, 128);
        assert_eq!(Scale::Infinite.label(), "inf");
    }

    #[test]
    fn group_must_fit_dispatch() {
        let mut m = MachineConfig::ss2();
        m.dispatch_width = 1;
        assert_eq!(
            m.validate(),
            Err(ConfigError::GroupExceedsDispatch { width: 1, r: 2 })
        );
    }

    #[test]
    fn group_must_fit_commit() {
        let mut m = MachineConfig::ss3();
        m.commit_width = 2;
        assert_eq!(
            m.validate(),
            Err(ConfigError::GroupExceedsCommit { width: 2, r: 3 })
        );
    }

    #[test]
    fn majority_needs_three() {
        let m = MachineConfig::ss2().with_redundancy(RedundancyConfig {
            r: 2,
            majority: true,
            threshold: 2,
        });
        assert_eq!(m.validate(), Err(ConfigError::MajorityNeedsThree { r: 2 }));
    }

    #[test]
    fn zero_redundancy_rejected() {
        let m = MachineConfig::ss1().with_redundancy(RedundancyConfig {
            r: 0,
            majority: false,
            threshold: 1,
        });
        assert_eq!(m.validate(), Err(ConfigError::ZeroRedundancy));
    }

    #[test]
    fn threshold_invariants() {
        let zero = RedundancyConfig {
            r: 2,
            majority: false,
            threshold: 0,
        };
        assert_eq!(zero.validate(), Err(ConfigError::ZeroThreshold));
        let high = RedundancyConfig {
            r: 2,
            majority: false,
            threshold: 3,
        };
        assert_eq!(
            high.validate(),
            Err(ConfigError::ThresholdExceedsR { threshold: 3, r: 2 })
        );
        let weak = RedundancyConfig {
            r: 3,
            majority: true,
            threshold: 1,
        };
        assert_eq!(
            weak.validate(),
            Err(ConfigError::WeakMajorityThreshold { threshold: 1, r: 3 })
        );
    }

    #[test]
    fn zero_fu_counts_rejected() {
        let mut m = MachineConfig::ss1();
        m.fu.int_alu = 0;
        assert_eq!(
            m.validate(),
            Err(ConfigError::ZeroFuCount { unit: "int_alu" })
        );
        let mut m = MachineConfig::ss1();
        m.fu.fp_mul = 0;
        assert_eq!(
            m.validate(),
            Err(ConfigError::ZeroFuCount { unit: "fp_mul" })
        );
    }

    #[test]
    fn small_queues_rejected() {
        let mut m = MachineConfig::ss3();
        m.ruu_size = 2;
        assert_eq!(
            m.validate(),
            Err(ConfigError::RuuTooSmall { size: 2, r: 3 })
        );
        let mut m = MachineConfig::ss3();
        m.lsq_size = 2;
        assert_eq!(
            m.validate(),
            Err(ConfigError::LsqTooSmall { size: 2, r: 3 })
        );
        let mut m = MachineConfig::ss1();
        m.ifq_size = 0;
        assert_eq!(m.validate(), Err(ConfigError::FrontEndTooSmall));
    }

    #[test]
    fn config_error_display_is_descriptive() {
        let e = ConfigError::GroupExceedsDispatch { width: 1, r: 2 };
        assert!(e.to_string().contains("dispatch width 1"));
        let e = ConfigError::ZeroFuCount { unit: "fp_add" };
        assert!(e.to_string().contains("fp_add"));
    }
}
