//! Machine configuration and the paper's evaluated machine models.

use ftsim_mem::HierarchyConfig;
use ftsim_predict::{BtbConfig, PredictorConfig};

/// Functional-unit counts (paper Table 1: 4 / 2 / 2 / 1).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FuConfig {
    /// Integer ALUs (also resolve branches).
    pub int_alu: u32,
    /// Integer multiplier/divider units.
    pub int_mul: u32,
    /// FP adders.
    pub fp_add: u32,
    /// FP multiplier/divider units.
    pub fp_mul: u32,
}

impl Default for FuConfig {
    fn default() -> Self {
        Self {
            int_alu: 4,
            int_mul: 2,
            fp_add: 2,
            fp_mul: 1,
        }
    }
}

/// Operation latencies in cycles (SimpleScalar defaults). "All FU
/// operations are pipelined except for division" (Table 1) — divisions and
/// square roots block their unit for the full latency.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OpLatencies {
    /// Integer ALU operations (and branch resolution).
    pub int_alu: u64,
    /// Integer multiply (pipelined).
    pub int_mul: u64,
    /// Integer divide/remainder (blocking).
    pub int_div: u64,
    /// FP add class (pipelined).
    pub fp_add: u64,
    /// FP multiply (pipelined).
    pub fp_mul: u64,
    /// FP divide (blocking).
    pub fp_div: u64,
    /// FP square root (blocking).
    pub fp_sqrt: u64,
    /// Store-to-load forwarding latency.
    pub forward: u64,
    /// Extra front-end refill cycles charged on a branch mispredict
    /// redirect (on top of the natural refetch delay).
    pub mispredict_extra: u64,
}

impl Default for OpLatencies {
    fn default() -> Self {
        Self {
            int_alu: 1,
            int_mul: 3,
            int_div: 20,
            fp_add: 2,
            fp_mul: 4,
            fp_div: 12,
            fp_sqrt: 24,
            forward: 1,
            mispredict_extra: 2,
        }
    }
}

/// Redundant-execution configuration (the paper's `R`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RedundancyConfig {
    /// Degree of redundancy: 1 = plain superscalar, 2–3 as studied.
    pub r: u8,
    /// With `r >= 3`, resolve commit-time disagreements by majority
    /// election instead of always rewinding (§3.2 Recovery).
    pub majority: bool,
    /// Copies that must agree for a majority to be accepted (the paper's
    /// "correctness acceptance threshold"). Ignored unless `majority`.
    pub threshold: u8,
}

impl RedundancyConfig {
    /// No redundancy.
    pub fn none() -> Self {
        Self {
            r: 1,
            majority: false,
            threshold: 1,
        }
    }

    /// `R`-way redundancy with rewind-only recovery.
    pub fn rewind(r: u8) -> Self {
        Self {
            r,
            majority: false,
            threshold: r,
        }
    }

    /// `R`-way redundancy with majority election (threshold ⌈(r+1)/2⌉).
    pub fn majority(r: u8) -> Self {
        Self {
            r,
            majority: true,
            threshold: r / 2 + 1,
        }
    }
}

/// Resource scaling factors for the §5.2 sensitivity study
/// (0.5×, 1×, 2×, ∞).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Scale {
    /// Half the baseline resources.
    Half,
    /// Baseline.
    One,
    /// Double.
    Two,
    /// Effectively unbounded.
    Infinite,
}

impl Scale {
    /// Applies the scale to a count, with `lo` as the floor and a large
    /// constant for `Infinite`.
    fn apply(self, base: u32, lo: u32, inf: u32) -> u32 {
        match self {
            Scale::Half => (base / 2).max(lo),
            Scale::One => base,
            Scale::Two => base * 2,
            Scale::Infinite => inf,
        }
    }

    /// Human-readable factor used in experiment tables.
    pub fn label(self) -> &'static str {
        match self {
            Scale::Half => "0.5x",
            Scale::One => "1x",
            Scale::Two => "2x",
            Scale::Infinite => "inf",
        }
    }
}

/// Complete machine description for one simulation.
///
/// Construct via a preset ([`MachineConfig::ss1`], [`MachineConfig::ss2`],
/// [`MachineConfig::ss3`], [`MachineConfig::static2`]) and refine with the
/// `with_*` builder methods.
///
/// # Examples
///
/// ```
/// use ftsim_core::{MachineConfig, Scale};
///
/// let m = MachineConfig::ss1().with_fu_scale(Scale::Two);
/// assert_eq!(m.fu.int_alu, 8);
/// let inf = MachineConfig::ss1().with_ruu_scale(Scale::Infinite);
/// assert!(inf.ruu_size >= 4096);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct MachineConfig {
    /// Display name ("SS-1", "SS-2", "Static-2", ...).
    pub name: String,
    /// Instructions fetched per cycle (Table 1: 8).
    pub fetch_width: u32,
    /// RUU entries dispatched per cycle (Table 1: 8; each redundant copy
    /// consumes one slot, so effective architectural width is `width / R`).
    pub dispatch_width: u32,
    /// RUU entries issued to functional units per cycle (Table 1: 8).
    pub issue_width: u32,
    /// RUU entries retired per cycle (Table 1: 8; "R accesses to ROB are
    /// needed to retire a single instruction").
    pub commit_width: u32,
    /// RUU (ROB + rename registers) capacity (Table 1: 128).
    pub ruu_size: usize,
    /// Load/store queue capacity (Table 1: 64).
    pub lsq_size: usize,
    /// Fetch queue capacity.
    pub ifq_size: usize,
    /// Functional-unit mix.
    pub fu: FuConfig,
    /// Operation latencies.
    pub lat: OpLatencies,
    /// Cache/TLB hierarchy.
    pub hierarchy: HierarchyConfig,
    /// Direction predictor (Table 1 combined predictor).
    pub predictor: PredictorConfig,
    /// Branch target buffer.
    pub btb: BtbConfig,
    /// Return address stack depth.
    pub ras_depth: usize,
    /// Redundancy mode.
    pub redundancy: RedundancyConfig,
}

impl MachineConfig {
    /// The baseline superscalar of Table 1 (no redundancy) — the paper's
    /// **SS-1** model.
    pub fn ss1() -> Self {
        Self {
            name: "SS-1".to_string(),
            fetch_width: 8,
            dispatch_width: 8,
            issue_width: 8,
            commit_width: 8,
            ruu_size: 128,
            lsq_size: 64,
            ifq_size: 16,
            fu: FuConfig::default(),
            lat: OpLatencies::default(),
            hierarchy: HierarchyConfig::default(),
            predictor: PredictorConfig::default(),
            btb: BtbConfig::default(),
            ras_depth: 8,
            redundancy: RedundancyConfig::none(),
        }
    }

    /// The 2-way dynamically-redundant fault-tolerant superscalar —
    /// the paper's **SS-2** model (same hardware as SS-1).
    pub fn ss2() -> Self {
        Self {
            name: "SS-2".to_string(),
            redundancy: RedundancyConfig::rewind(2),
            ..Self::ss1()
        }
    }

    /// 3-way redundancy with rewind-only recovery.
    pub fn ss3() -> Self {
        Self {
            name: "SS-3".to_string(),
            redundancy: RedundancyConfig::rewind(3),
            ..Self::ss1()
        }
    }

    /// 3-way redundancy with 2-of-3 majority election (the `R = 3` design
    /// of Figures 3 and 6).
    pub fn ss3_majority() -> Self {
        Self {
            name: "SS-3M".to_string(),
            redundancy: RedundancyConfig::majority(3),
            ..Self::ss1()
        }
    }

    /// One pipe of the statically-redundant two-pipeline processor —
    /// the paper's **Static-2** model: half of every SS-1 resource
    /// *except* caches and branch prediction hardware, and each pipe keeps
    /// one FP multiplier/divider (the paper notes Static-2 thereby "has
    /// the advantage of an extra FP Mult/Div unit").
    pub fn static2() -> Self {
        Self {
            name: "Static-2".to_string(),
            fetch_width: 4,
            dispatch_width: 4,
            issue_width: 4,
            commit_width: 4,
            ruu_size: 64,
            lsq_size: 32,
            ifq_size: 8,
            fu: FuConfig {
                int_alu: 2,
                int_mul: 1,
                fp_add: 1,
                fp_mul: 1, // cannot halve a single unit
            },
            redundancy: RedundancyConfig::none(),
            ..Self::ss1()
        }
    }

    /// Overrides the redundancy mode, renaming the model accordingly.
    pub fn with_redundancy(mut self, redundancy: RedundancyConfig) -> Self {
        self.redundancy = redundancy;
        self
    }

    /// Scales every functional-unit count (sensitivity study §5.2).
    ///
    /// Memory ports scale too: in `sim-outorder` the L1D ports are
    /// functional-unit resources (`res:memport`), so the paper's FU sweep
    /// includes them.
    pub fn with_fu_scale(mut self, scale: Scale) -> Self {
        self.fu.int_alu = scale.apply(self.fu.int_alu, 1, 64);
        self.fu.int_mul = scale.apply(self.fu.int_mul, 1, 64);
        self.fu.fp_add = scale.apply(self.fu.fp_add, 1, 64);
        self.fu.fp_mul = scale.apply(self.fu.fp_mul, 1, 64);
        self.hierarchy.dl1_ports = scale.apply(self.hierarchy.dl1_ports, 1, 64);
        self
    }

    /// Scales the RUU (and LSQ proportionally; sensitivity study §5.2).
    pub fn with_ruu_scale(mut self, scale: Scale) -> Self {
        self.ruu_size = scale.apply(self.ruu_size as u32, 8, 4096) as usize;
        self.lsq_size = scale.apply(self.lsq_size as u32, 4, 2048) as usize;
        self
    }

    /// Renames the model (for experiment tables).
    pub fn named(mut self, name: &str) -> Self {
        self.name = name.to_string();
        self
    }

    /// Validates internal consistency.
    ///
    /// # Panics
    ///
    /// Panics if the configuration cannot dispatch or retire a full
    /// replication group atomically, or if sizes are zero.
    pub fn validate(&self) {
        let r = u32::from(self.redundancy.r);
        assert!(r >= 1, "redundancy degree must be at least 1");
        assert!(
            self.dispatch_width >= r,
            "dispatch width must fit one replication group"
        );
        assert!(
            self.commit_width >= r,
            "commit width must fit one replication group"
        );
        assert!(
            self.ruu_size >= self.redundancy.r as usize,
            "RUU must hold one replication group"
        );
        assert!(
            self.lsq_size >= self.redundancy.r as usize,
            "LSQ must hold one replication group"
        );
        assert!(self.fetch_width >= 1 && self.ifq_size >= 1, "front end too small");
        assert!(
            self.fu.int_alu >= 1,
            "at least one integer ALU is required (branch resolution)"
        );
        if self.redundancy.majority {
            assert!(
                self.redundancy.r >= 3,
                "majority election requires R >= 3"
            );
            assert!(
                self.redundancy.threshold > self.redundancy.r / 2
                    && self.redundancy.threshold <= self.redundancy.r,
                "majority threshold must be a strict majority"
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_baseline() {
        let m = MachineConfig::ss1();
        m.validate();
        assert_eq!(m.fetch_width, 8);
        assert_eq!(m.ruu_size, 128);
        assert_eq!(m.lsq_size, 64);
        assert_eq!(m.fu, FuConfig { int_alu: 4, int_mul: 2, fp_add: 2, fp_mul: 1 });
        assert_eq!(m.redundancy.r, 1);
    }

    #[test]
    fn ss2_shares_hardware_with_ss1() {
        let a = MachineConfig::ss1();
        let b = MachineConfig::ss2();
        b.validate();
        assert_eq!(b.redundancy.r, 2);
        assert_eq!(a.fu, b.fu);
        assert_eq!(a.ruu_size, b.ruu_size);
        assert_eq!(a.hierarchy, b.hierarchy);
    }

    #[test]
    fn static2_halves_core_keeps_caches_and_fpmul() {
        let m = MachineConfig::static2();
        m.validate();
        assert_eq!(m.fetch_width, 4);
        assert_eq!(m.ruu_size, 64);
        assert_eq!(m.fu.int_alu, 2);
        assert_eq!(m.fu.fp_mul, 1); // the "extra" FP Mult/Div per pipe
        assert_eq!(m.hierarchy, MachineConfig::ss1().hierarchy);
        assert_eq!(m.predictor, MachineConfig::ss1().predictor);
    }

    #[test]
    fn majority_preset() {
        let m = MachineConfig::ss3_majority();
        m.validate();
        assert!(m.redundancy.majority);
        assert_eq!(m.redundancy.threshold, 2);
    }

    #[test]
    fn scales() {
        let m = MachineConfig::ss1().with_fu_scale(Scale::Half);
        assert_eq!(m.fu.int_alu, 2);
        assert_eq!(m.fu.fp_mul, 1); // floor at 1
        let m = MachineConfig::ss1().with_ruu_scale(Scale::Two);
        assert_eq!(m.ruu_size, 256);
        assert_eq!(m.lsq_size, 128);
        assert_eq!(Scale::Infinite.label(), "inf");
    }

    #[test]
    #[should_panic(expected = "dispatch width")]
    fn group_must_fit_dispatch() {
        let mut m = MachineConfig::ss2();
        m.dispatch_width = 1;
        m.validate();
    }

    #[test]
    #[should_panic(expected = "majority election requires")]
    fn majority_needs_three() {
        let m = MachineConfig::ss2().with_redundancy(RedundancyConfig {
            r: 2,
            majority: true,
            threshold: 2,
        });
        m.validate();
    }
}
