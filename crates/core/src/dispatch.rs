//! Dispatch stage: decode, redundant instruction injection (replication),
//! renaming, RUU/LSQ allocation.
//!
//! This is the paper's "instruction injection" step (§3.2): one fetched
//! instruction becomes `R` decoded copies in consecutive RUU entries;
//! renaming links copy *k*'s sources to copy *k* of the producer group, so
//! the copies form data-independent threads sharing one map table.

use crate::entry::Entry;
use crate::lsq::LsqEntry;
use crate::pipeline::Processor;
use ftsim_faults::InjectionPoint;
use ftsim_isa::{Inst, Opcode, RegRef};

/// Injection points that make sense for a given instruction kind.
pub(crate) fn applicable_points(inst: &Inst) -> &'static [InjectionPoint] {
    use InjectionPoint::*;
    let op = inst.op;
    if op.is_load() {
        &[OperandA, EffAddr, Result, RobWait]
    } else if op.is_store() {
        &[OperandA, OperandB, EffAddr, StoreData]
    } else if op.is_cond_branch() {
        &[OperandA, OperandB, BranchDirection, BranchTarget]
    } else if op.is_jump() {
        match op {
            Opcode::Jal => &[Result, BranchTarget, RobWait],
            Opcode::Jalr => &[OperandA, Result, BranchTarget, RobWait],
            Opcode::Jr => &[OperandA, BranchTarget],
            _ => &[BranchTarget], // J: only the target can be corrupted
        }
    } else if matches!(op, Opcode::Nop | Opcode::Halt) {
        &[]
    } else if op.rs2_class().is_some() {
        &[OperandA, OperandB, Result, RobWait]
    } else if op.rs1_class().is_some() {
        &[OperandA, Result, RobWait]
    } else {
        // lui: immediate-only producer.
        &[Result, RobWait]
    }
}

impl Processor {
    /// Runs the dispatch stage for one cycle.
    pub(crate) fn stage_dispatch(&mut self) {
        let r = self.r() as usize;
        let mut budget = self.config.dispatch_width as usize;

        while budget >= r {
            let Some(fetched) = self.fetch.peek().copied() else {
                break;
            };
            if self.ruu.free() < r {
                self.stats.dispatch_stalls[0] += 1;
                break;
            }
            if fetched.inst.op.is_mem() && self.lsq.free() < r {
                self.stats.dispatch_stalls[1] += 1;
                break;
            }
            self.fetch.pop();

            let group = self.next_group;
            self.next_group += 1;
            self.stats.dispatched_groups += 1;
            let copy0_seq = self.next_seq;
            let inst = fetched.inst;

            for copy in 0..r as u8 {
                let seq = self.next_seq;
                self.next_seq += 1;
                let mut e = Entry::new(seq, group, copy, fetched.pc, inst, self.now);
                e.pred = fetched.pred;
                e.halt = inst.op == Opcode::Halt;
                e.ops[0] = self.rename_operand(inst.rs1(), copy);
                e.ops[1] = self.rename_operand(inst.rs2(), copy);
                // Register with each awaited producer's wait-list, so the
                // producer's completion wakes exactly this entry.
                for op in e.ops {
                    if let crate::entry::Operand::Wait(producer) = op {
                        self.sched.add_waiter(producer, seq);
                    }
                }
                e.refresh_readiness();
                if e.state == crate::entry::EntryState::Ready {
                    self.sched.push_ready(seq);
                }

                if let Some(event) = self.injector.draw(group, copy, applicable_points(&inst)) {
                    let id = self.fault_log.record(
                        group,
                        copy,
                        event,
                        self.now,
                        self.stats.retired_instructions,
                    );
                    e.fault = Some((id, event));
                }

                if inst.op.is_mem() {
                    self.lsq.push(LsqEntry {
                        seq,
                        group,
                        copy,
                        is_store: inst.op.is_store(),
                        size: inst.op.mem_bytes(),
                        addr: None,
                        data: None,
                        mem_value: None,
                    });
                    e.in_lsq = true;
                }
                self.ruu.push(e);
                self.stats.dispatched_entries += 1;
            }

            // Rename the destination once per group: the map records copy 0;
            // copy k's producer is derived by the +k offset rule.
            if let Some(rd) = inst.effective_rd() {
                self.map.define(rd, copy0_seq);
            }
            // Control instructions checkpoint the map (taken after the
            // group's own definitions, e.g. jal's link register).
            if inst.op.is_control() {
                self.checkpoints.insert(group, self.map.checkpoint());
            }
            budget -= r;
        }
    }

    /// Resolves one source operand for copy `copy`.
    fn rename_operand(&self, reg: Option<RegRef>, copy: u8) -> crate::entry::Operand {
        use crate::entry::{EntryState, Operand};
        let Some(reg) = reg else {
            return Operand::Unused;
        };
        if reg.is_zero_reg() {
            return Operand::Value(0);
        }
        match self.map.lookup(reg) {
            None => Operand::Value(self.regs.read(reg)),
            Some(copy0_seq) => {
                let producer = copy0_seq + u64::from(copy);
                match self.ruu.get(producer) {
                    Some(p) if p.state == EntryState::Done => {
                        Operand::Value(p.result.expect("done producer has a result"))
                    }
                    Some(_) => Operand::Wait(producer),
                    // The mapped producer already committed. This happens
                    // after a commit-time front-end repair restores a map
                    // checkpoint containing since-retired producers; the
                    // committed register file holds their values.
                    None => Operand::Value(self.regs.read(reg)),
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::MachineConfig;
    use crate::entry::Operand;
    use ftsim_faults::FaultInjector;
    use ftsim_isa::{IntReg, ProgramBuilder};

    fn machine_after_dispatch(r: u8) -> Processor {
        let r1 = IntReg::new(1);
        let mut b = ProgramBuilder::new();
        b.addi(r1, IntReg::ZERO, 5); // producer
        b.add(r1, r1, r1); // consumer (reads its own group's producer)
        b.halt();
        let p = b.build().unwrap();
        let cfg = if r == 2 {
            MachineConfig::ss2()
        } else {
            MachineConfig::ss1()
        };
        let mut proc = Processor::new(cfg, &p, FaultInjector::none());
        // Run until all three groups are dispatched (cold I-cache and TLB
        // misses delay the first fetch by ~80 cycles).
        for _ in 0..300 {
            proc.cycle();
            if proc.ruu_len() >= 3 * r as usize {
                break;
            }
        }
        assert_eq!(proc.ruu_len(), 3 * r as usize, "dispatch never completed");
        proc
    }

    #[test]
    fn copies_occupy_consecutive_entries() {
        let proc = machine_after_dispatch(2);
        proc.assert_group_invariants();
        let entries: Vec<_> = proc.ruu.iter().collect();
        assert!(entries.len() >= 4);
        assert_eq!(entries[0].group, entries[1].group);
        assert_eq!(entries[0].copy, 0);
        assert_eq!(entries[1].copy, 1);
        assert_eq!(entries[1].seq, entries[0].seq + 1);
    }

    #[test]
    fn renaming_links_copy_k_to_copy_k() {
        let proc = machine_after_dispatch(2);
        let entries: Vec<_> = proc.ruu.iter().collect();
        // entries[2], entries[3] are the two copies of `add r1, r1, r1`.
        let producer0 = entries[0].seq;
        let producer1 = entries[1].seq;
        for (i, consumer) in [entries[2], entries[3]].iter().enumerate() {
            let want = if i == 0 { producer0 } else { producer1 };
            for op in &consumer.ops {
                match op {
                    Operand::Wait(s) => assert_eq!(*s, want, "cross-thread rename"),
                    Operand::Value(v) => assert_eq!(*v, 10, "forwarded done value"),
                    Operand::Unused => panic!("add has two operands"),
                }
            }
        }
    }

    #[test]
    fn r1_dispatch_has_single_copies() {
        let proc = machine_after_dispatch(1);
        proc.assert_group_invariants();
        let entries: Vec<_> = proc.ruu.iter().collect();
        assert!(entries.iter().all(|e| e.copy == 0));
    }

    #[test]
    fn applicable_points_match_kind() {
        use ftsim_isa::Opcode;
        let ld = Inst::new(Opcode::Ld, 1, 2, 0, 0);
        assert!(applicable_points(&ld).contains(&InjectionPoint::EffAddr));
        let sd = Inst::new(Opcode::Sd, 0, 2, 3, 0);
        assert!(applicable_points(&sd).contains(&InjectionPoint::StoreData));
        assert!(!applicable_points(&sd).contains(&InjectionPoint::Result));
        let beq = Inst::new(Opcode::Beq, 0, 1, 2, 1);
        assert!(applicable_points(&beq).contains(&InjectionPoint::BranchDirection));
        let nop = Inst::nop();
        assert!(applicable_points(&nop).is_empty());
        let lui = Inst::new(Opcode::Lui, 1, 0, 0, 4);
        assert_eq!(
            applicable_points(&lui),
            &[InjectionPoint::Result, InjectionPoint::RobWait]
        );
    }
}
