//! RUU (register update unit / reorder buffer) entry state.

use ftsim_faults::{FaultEvent, FaultId};
use ftsim_isa::Inst;

/// Lifecycle of an RUU entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EntryState {
    /// Dispatched; waiting for source operands.
    Waiting,
    /// All operands available; eligible for issue.
    Ready,
    /// Executing on a functional unit (or memory access in flight).
    Issued,
    /// Result produced; eligible for commit when oldest.
    Done,
}

/// One renamed source operand.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Operand {
    /// The instruction does not use this operand slot.
    Unused,
    /// Value available (read from committed state or forwarded).
    Value(u64),
    /// Waiting for the RUU entry with this sequence number to complete.
    Wait(u64),
}

impl Operand {
    /// The operand's value.
    ///
    /// # Panics
    ///
    /// Panics if the operand is still waiting (callers must only read
    /// operands of `Ready` entries; `Unused` reads as 0, keeping the
    /// execute path total).
    pub fn value(&self) -> u64 {
        match self {
            Operand::Unused => 0,
            Operand::Value(v) => *v,
            Operand::Wait(seq) => panic!("operand still waiting on seq {seq}"),
        }
    }

    /// Whether this operand no longer blocks issue.
    pub fn ready(&self) -> bool {
        !matches!(self, Operand::Wait(_))
    }
}

/// The branch prediction recorded at fetch and carried to resolution.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Prediction {
    /// Predicted direction.
    pub taken: bool,
    /// Predicted next PC (target when taken, fall-through otherwise).
    pub next_pc: u64,
}

/// One RUU entry: a single *copy* of a dispatched instruction.
///
/// All `R` copies of an architectural instruction share a `group`
/// (dispatch index) and occupy consecutive sequence numbers — the paper's
/// "consecutive ROB entries" placement, which the cross-check relies on.
#[derive(Debug, Clone)]
pub struct Entry {
    /// Globally unique, monotonically increasing allocation number.
    pub seq: u64,
    /// Architectural-instruction dispatch index shared by all copies.
    pub group: u64,
    /// Copy number in `0..R`.
    pub copy: u8,
    /// Fetch PC.
    pub pc: u64,
    /// The instruction.
    pub inst: Inst,
    /// Lifecycle state.
    pub state: EntryState,
    /// Source operands: `[rs1, rs2]`.
    pub ops: [Operand; 2],
    /// Result value once executed (register value or link address).
    pub result: Option<u64>,
    /// Effective address for memory operations.
    pub ea: Option<u64>,
    /// Store datum once read.
    pub store_data: Option<u64>,
    /// Resolved branch direction.
    pub taken: Option<bool>,
    /// Resolved branch target (valid when `taken == Some(true)`).
    pub target: Option<u64>,
    /// Prediction from fetch, for control instructions.
    pub pred: Option<Prediction>,
    /// Next-PC the front end was last steered to for this group, set when
    /// a copy's resolution triggers a redirect. Later-resolving sibling
    /// copies compare against this instead of the original prediction so
    /// an already-repaired mispredict is not "re-discovered" — while a
    /// *disagreeing* sibling (fault) still triggers its own redirect and
    /// is then caught by the commit cross-check.
    pub resteer_next: Option<u64>,
    /// Associated LSQ sequence (same as `seq`; presence marks a mem op).
    pub in_lsq: bool,
    /// Whether this entry is a `halt`.
    pub halt: bool,
    /// Injected fault scheduled for this copy, with its log id and
    /// whether its application changed an architecturally-checked value.
    pub fault: Option<(FaultId, FaultEvent)>,
    /// Set when the fault's corruption altered a checked field.
    pub fault_effective: bool,
    /// Cycle the entry was dispatched (statistics).
    pub dispatched_at: u64,
}

impl Entry {
    /// Creates a freshly dispatched entry in `Waiting` state.
    pub fn new(seq: u64, group: u64, copy: u8, pc: u64, inst: Inst, now: u64) -> Self {
        Self {
            seq,
            group,
            copy,
            pc,
            inst,
            state: EntryState::Waiting,
            ops: [Operand::Unused, Operand::Unused],
            result: None,
            ea: None,
            store_data: None,
            taken: None,
            target: None,
            pred: None,
            resteer_next: None,
            in_lsq: false,
            halt: false,
            fault: None,
            fault_effective: false,
            dispatched_at: now,
        }
    }

    /// Whether every source operand is available.
    pub fn operands_ready(&self) -> bool {
        self.ops.iter().all(Operand::ready)
    }

    /// Whether the entry can issue: stores issue their address phase as
    /// soon as the base register (`ops[0]`) is ready — the datum merges
    /// later in the LSQ — while every other kind waits for all operands.
    pub fn issue_ready(&self) -> bool {
        if self.inst.op.is_store() {
            self.ops[0].ready()
        } else {
            self.operands_ready()
        }
    }

    /// Promotes `Waiting` to `Ready` if operands allow.
    pub fn refresh_readiness(&mut self) {
        if self.state == EntryState::Waiting && self.issue_ready() {
            self.state = EntryState::Ready;
        }
    }

    /// The architecturally-correct next PC implied by this copy's resolved
    /// outcome (fall-through unless a taken control transfer).
    pub fn computed_next_pc(&self) -> u64 {
        match (self.taken, self.target) {
            (Some(true), Some(t)) => t,
            _ => self.pc.wrapping_add(ftsim_isa::INST_BYTES as u64),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ftsim_isa::{Inst, Opcode};

    #[test]
    fn readiness_transition() {
        let mut e = Entry::new(0, 0, 0, 0x1000, Inst::new(Opcode::Add, 1, 2, 3, 0), 5);
        e.ops = [Operand::Wait(7), Operand::Value(1)];
        e.refresh_readiness();
        assert_eq!(e.state, EntryState::Waiting);
        e.ops[0] = Operand::Value(9);
        e.refresh_readiness();
        assert_eq!(e.state, EntryState::Ready);
    }

    #[test]
    fn unused_operand_reads_zero() {
        assert_eq!(Operand::Unused.value(), 0);
        assert!(Operand::Unused.ready());
        assert_eq!(Operand::Value(3).value(), 3);
    }

    #[test]
    #[should_panic(expected = "still waiting")]
    fn waiting_operand_value_panics() {
        let _ = Operand::Wait(3).value();
    }

    #[test]
    fn next_pc_fallthrough_and_taken() {
        let mut e = Entry::new(0, 0, 0, 0x1000, Inst::new(Opcode::Beq, 0, 1, 2, 4), 0);
        assert_eq!(e.computed_next_pc(), 0x1004);
        e.taken = Some(true);
        e.target = Some(0x2000);
        assert_eq!(e.computed_next_pc(), 0x2000);
        e.taken = Some(false);
        assert_eq!(e.computed_next_pc(), 0x1004);
    }
}
