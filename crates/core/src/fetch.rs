//! The front end: instruction fetch, branch prediction, fetch queue.

use crate::config::MachineConfig;
use crate::entry::Prediction;
use ftsim_isa::{Inst, Opcode, Program, INST_BYTES};
use ftsim_mem::Hierarchy;
use ftsim_predict::{Btb, CombinedPredictor, DirectionPredictor, Ras};
use std::collections::VecDeque;

/// An instruction sitting in the fetch queue, with its prediction.
#[derive(Debug, Clone, Copy)]
pub struct FetchedInst {
    /// Fetch PC.
    pub pc: u64,
    /// Decoded instruction.
    pub inst: Inst,
    /// Prediction recorded at fetch (control instructions only). Shared by
    /// all `R` copies at dispatch — prediction happens once, before
    /// replication.
    pub pred: Option<Prediction>,
}

/// Fetch-stage statistics.
#[derive(Debug, Clone, Copy, Default)]
pub struct FetchStats {
    /// Instructions delivered into the fetch queue.
    pub fetched: u64,
    /// Cycles the front end produced nothing (miss, redirect, queue full,
    /// out of text).
    pub stall_cycles: u64,
    /// I-cache-miss stall cycles (subset of `stall_cycles`).
    pub icache_stall_cycles: u64,
}

/// The fetch unit: PC register, I-cache access, one-prediction-per-cycle
/// branch prediction (Table 1), and the fetch queue feeding dispatch.
///
/// Per the paper (§3.4) the fetch queue contents are ECC-protected (simple
/// RAM), and the PC register's window of vulnerability is covered by the
/// retirement-time control-flow check — so none of this state is a fault-
/// injection target. `Clone` snapshots the whole front end (queue,
/// predictor/BTB/RAS training state, stall clock) for checkpointing.
#[derive(Debug, Clone)]
pub struct FetchUnit {
    pc: u64,
    ifq: VecDeque<FetchedInst>,
    ifq_size: usize,
    fetch_width: u32,
    stall_until: u64,
    predictor: CombinedPredictor,
    btb: Btb,
    ras: Ras,
    stats: FetchStats,
}

impl FetchUnit {
    /// Creates a fetch unit starting at `entry_pc`.
    pub fn new(config: &MachineConfig, entry_pc: u64) -> Self {
        Self {
            pc: entry_pc,
            ifq: VecDeque::with_capacity(config.ifq_size),
            ifq_size: config.ifq_size,
            fetch_width: config.fetch_width,
            stall_until: 0,
            predictor: CombinedPredictor::new(config.predictor),
            btb: Btb::new(config.btb),
            ras: Ras::new(config.ras_depth),
            stats: FetchStats::default(),
        }
    }

    /// Steers fetch to `target`; nothing is fetched before `resume_cycle`.
    /// Clears the fetch queue (wrong-path instructions are discarded).
    pub fn redirect(&mut self, target: u64, resume_cycle: u64) {
        self.pc = target;
        self.ifq.clear();
        self.stall_until = self.stall_until.max(resume_cycle);
    }

    /// Full rewind: redirect plus return-address-stack clear.
    pub fn rewind(&mut self, target: u64, resume_cycle: u64) {
        self.redirect(target, resume_cycle);
        self.ras.clear();
    }

    /// Removes the oldest queued instruction for dispatch.
    pub fn pop(&mut self) -> Option<FetchedInst> {
        self.ifq.pop_front()
    }

    /// Peeks the oldest queued instruction.
    pub fn peek(&self) -> Option<&FetchedInst> {
        self.ifq.front()
    }

    /// Queue occupancy.
    pub fn queued(&self) -> usize {
        self.ifq.len()
    }

    /// Direction predictor (commit-time training).
    pub fn predictor_mut(&mut self) -> &mut CombinedPredictor {
        &mut self.predictor
    }

    /// BTB (commit-time training).
    pub fn btb_mut(&mut self) -> &mut Btb {
        &mut self.btb
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> FetchStats {
        self.stats
    }

    /// Runs one fetch cycle: up to `fetch_width` instructions from one
    /// I-cache line, stopping at a predicted-taken control transfer or the
    /// first conditional branch (one prediction per cycle).
    pub fn fetch_cycle(&mut self, now: u64, program: &Program, hierarchy: &mut Hierarchy) {
        if now < self.stall_until {
            self.stats.stall_cycles += 1;
            return;
        }
        if self.ifq.len() >= self.ifq_size {
            self.stats.stall_cycles += 1;
            return;
        }
        if program.inst_at(self.pc).is_none() {
            // Off the text segment (wrong path, or straight-line past the
            // end): nothing to deliver until something redirects us.
            self.stats.stall_cycles += 1;
            return;
        }

        // One I-cache line access per cycle.
        let access = hierarchy.fetch_access(self.pc);
        if !access.l1_hit {
            self.stall_until = now + access.latency;
            self.stats.stall_cycles += 1;
            self.stats.icache_stall_cycles += access.latency;
            return;
        }
        let line_bytes = 32u64;
        let line_end = (self.pc | (line_bytes - 1)) + 1;

        let mut budget = self.fetch_width;
        let mut predicted_this_cycle = false;
        while budget > 0 && self.ifq.len() < self.ifq_size && self.pc < line_end {
            let Some(&inst) = program.inst_at(self.pc) else {
                break;
            };
            let pc = self.pc;
            let mut pred = None;
            let mut next = pc + INST_BYTES as u64;
            let mut stop = false;

            match inst.op {
                Opcode::Beq | Opcode::Bne | Opcode::Blt | Opcode::Bge => {
                    if predicted_this_cycle {
                        break; // one prediction per cycle (Table 1)
                    }
                    predicted_this_cycle = true;
                    let taken = self.predictor.predict(pc);
                    let target = branch_target(pc, inst.imm);
                    let next_pc = if taken { target } else { next };
                    pred = Some(Prediction { taken, next_pc });
                    next = next_pc;
                    stop = taken; // redirected fetch resumes next cycle
                }
                Opcode::J => {
                    let target = branch_target(pc, inst.imm);
                    pred = Some(Prediction {
                        taken: true,
                        next_pc: target,
                    });
                    next = target;
                    stop = true;
                }
                Opcode::Jal => {
                    let target = branch_target(pc, inst.imm);
                    self.ras.push(pc + INST_BYTES as u64);
                    pred = Some(Prediction {
                        taken: true,
                        next_pc: target,
                    });
                    next = target;
                    stop = true;
                }
                Opcode::Jr => {
                    let target = self
                        .ras
                        .pop()
                        .or_else(|| self.btb.lookup(pc))
                        .unwrap_or(next);
                    pred = Some(Prediction {
                        taken: true,
                        next_pc: target,
                    });
                    next = target;
                    stop = true;
                }
                Opcode::Jalr => {
                    self.ras.push(pc + INST_BYTES as u64);
                    let target = self.btb.lookup(pc).unwrap_or(next);
                    pred = Some(Prediction {
                        taken: true,
                        next_pc: target,
                    });
                    next = target;
                    stop = true;
                }
                _ => {}
            }

            self.ifq.push_back(FetchedInst { pc, inst, pred });
            self.stats.fetched += 1;
            self.pc = next;
            budget -= 1;
            if stop {
                break;
            }
        }
    }
}

/// PC-relative target of a direct control transfer (imm in instructions).
fn branch_target(pc: u64, imm: i32) -> u64 {
    pc.wrapping_add(INST_BYTES as u64)
        .wrapping_add((imm as i64 as u64).wrapping_mul(INST_BYTES as u64))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::MachineConfig;
    use ftsim_isa::{IntReg, ProgramBuilder, TEXT_BASE};
    use ftsim_mem::HierarchyConfig;

    fn setup(prog: &Program) -> (FetchUnit, Hierarchy) {
        let cfg = MachineConfig::ss1();
        (
            FetchUnit::new(&cfg, prog.entry()),
            Hierarchy::new(&HierarchyConfig::default()),
        )
    }

    fn straight_line(n: usize) -> Program {
        let mut b = ProgramBuilder::new();
        for _ in 0..n {
            b.nop();
        }
        b.halt();
        b.build().unwrap()
    }

    #[test]
    fn fetches_up_to_width_from_one_line() {
        let p = straight_line(20);
        let (mut f, mut h) = setup(&p);
        // First cycle: cold I-cache miss stalls.
        f.fetch_cycle(0, &p, &mut h);
        assert_eq!(f.queued(), 0);
        assert!(f.stats().icache_stall_cycles > 0);
        // After the miss resolves, a full-width fetch succeeds.
        let resume = f.stall_until;
        f.fetch_cycle(resume, &p, &mut h);
        assert_eq!(f.queued(), 8);
    }

    #[test]
    fn taken_jump_redirects_within_cycle_and_stops() {
        let mut b = ProgramBuilder::new();
        b.j("target");
        for _ in 0..4 {
            b.nop();
        }
        b.label("target");
        b.halt();
        let p = b.build().unwrap();
        let (mut f, mut h) = setup(&p);
        f.fetch_cycle(0, &p, &mut h); // miss
        f.fetch_cycle(f.stall_until, &p, &mut h);
        assert_eq!(f.queued(), 1); // only the jump
        let fetched = f.pop().unwrap();
        assert_eq!(fetched.inst.op, Opcode::J);
        assert!(fetched.pred.unwrap().taken);
        // PC is now at the jump target.
        assert_eq!(f.pc, p.pc_of(5));
    }

    #[test]
    fn one_conditional_prediction_per_cycle() {
        let r1 = IntReg::new(1);
        let mut b = ProgramBuilder::new();
        b.label("a");
        b.beq(r1, r1, "a"); // always-taken... but predicted cold
        b.beq(r1, r1, "a");
        b.nop();
        b.halt();
        let p = b.build().unwrap();
        let (mut f, mut h) = setup(&p);
        f.fetch_cycle(0, &p, &mut h);
        f.fetch_cycle(f.stall_until, &p, &mut h);
        // Whatever the direction, at most one cond branch was predicted.
        let branches = f
            .ifq
            .iter()
            .filter(|fi| fi.inst.op.is_cond_branch())
            .count();
        assert_eq!(branches, 1);
    }

    #[test]
    fn redirect_clears_queue_and_stalls() {
        let p = straight_line(20);
        let (mut f, mut h) = setup(&p);
        f.fetch_cycle(0, &p, &mut h);
        let t = f.stall_until;
        f.fetch_cycle(t, &p, &mut h);
        assert!(f.queued() > 0);
        f.redirect(TEXT_BASE + 8, t + 4);
        assert_eq!(f.queued(), 0);
        f.fetch_cycle(t + 1, &p, &mut h);
        assert_eq!(f.queued(), 0); // still stalled
        f.fetch_cycle(t + 4, &p, &mut h);
        assert!(f.queued() > 0);
        assert_eq!(f.peek().unwrap().pc, TEXT_BASE + 8);
    }

    #[test]
    fn ras_predicts_return() {
        let mut b = ProgramBuilder::new();
        b.jal(IntReg::new(31), "fn"); // idx 0
        b.nop(); // idx 1 — return lands here
        b.halt(); // idx 2
        b.label("fn");
        b.jr(IntReg::new(31)); // idx 3
        let p = b.build().unwrap();
        let (mut f, mut h) = setup(&p);
        f.fetch_cycle(0, &p, &mut h);
        let mut now = f.stall_until;
        f.fetch_cycle(now, &p, &mut h); // fetch jal, redirect to fn
        assert_eq!(f.pop().unwrap().inst.op, Opcode::Jal);
        loop {
            now += 1;
            f.fetch_cycle(now, &p, &mut h);
            if let Some(fi) = f.pop() {
                assert_eq!(fi.inst.op, Opcode::Jr);
                // Predicted return target is the instruction after the jal.
                assert_eq!(fi.pred.unwrap().next_pc, p.pc_of(1));
                break;
            }
            assert!(now < 200, "jr never fetched");
        }
    }

    #[test]
    fn out_of_text_stalls_without_panic() {
        let p = straight_line(2);
        let (mut f, mut h) = setup(&p);
        f.redirect(0xdead_0000, 0);
        f.fetch_cycle(1, &p, &mut h);
        assert_eq!(f.queued(), 0);
        assert!(f.stats().stall_cycles > 0);
    }

    #[test]
    fn queue_capacity_respected() {
        let p = straight_line(100);
        let cfg = MachineConfig::ss1();
        let mut f = FetchUnit::new(&cfg, p.entry());
        let mut h = Hierarchy::new(&HierarchyConfig::default());
        let mut now = 0;
        for _ in 0..20 {
            f.fetch_cycle(now, &p, &mut h);
            now = (now + 1).max(f.stall_until);
        }
        assert!(f.queued() <= cfg.ifq_size);
    }
}
