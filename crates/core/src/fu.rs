//! Functional-unit pool with pipelined and blocking operations.

use crate::config::{FuConfig, OpLatencies};
use ftsim_isa::{FuClass, Opcode};

/// Tracks per-unit availability for one functional-unit class.
///
/// A pipelined operation occupies its unit for one cycle (a new operation
/// can start every cycle); a blocking operation (division, square root —
/// Table 1: "all FU operations are pipelined except for division") holds
/// the unit for its full latency.
#[derive(Debug, Clone)]
struct UnitClass {
    busy_until: Vec<u64>,
}

impl UnitClass {
    fn new(units: u32) -> Self {
        Self {
            busy_until: vec![0; units as usize],
        }
    }

    /// Tries to claim a unit at `now`, holding it until `now + occupancy`.
    fn try_issue(&mut self, now: u64, occupancy: u64) -> bool {
        if let Some(slot) = self.busy_until.iter_mut().find(|b| **b <= now) {
            *slot = now + occupancy;
            true
        } else {
            false
        }
    }

    fn busy_count(&self, now: u64) -> usize {
        self.busy_until.iter().filter(|b| **b > now).count()
    }
}

/// The machine's functional units (integer ALU, integer multiplier/divider,
/// FP adder, FP multiplier/divider).
///
/// Memory operations do not pass through this pool — they contend for L1D
/// ports instead, matching `sim-outorder`'s separate memory-port resources.
///
/// # Examples
///
/// ```
/// use ftsim_core::{FuConfig, OpLatencies};
/// # use ftsim_isa::Opcode;
/// // (FuPool itself is crate-internal; configuration shown for context.)
/// let fu = FuConfig::default();
/// assert_eq!(fu.fp_mul, 1); // the single FP Mult/Div of Table 1
/// ```
#[derive(Debug, Clone)]
pub struct FuPool {
    int_alu: UnitClass,
    int_mul: UnitClass,
    fp_add: UnitClass,
    fp_mul: UnitClass,
    lat: OpLatencies,
}

impl FuPool {
    /// Creates the pool from counts and latencies.
    pub fn new(config: &FuConfig, lat: OpLatencies) -> Self {
        Self {
            int_alu: UnitClass::new(config.int_alu),
            int_mul: UnitClass::new(config.int_mul),
            fp_add: UnitClass::new(config.fp_add),
            fp_mul: UnitClass::new(config.fp_mul),
            lat,
        }
    }

    /// Result latency of `op` in cycles.
    pub fn latency(&self, op: Opcode) -> u64 {
        match op {
            Opcode::Mul => self.lat.int_mul,
            Opcode::Div | Opcode::Rem => self.lat.int_div,
            Opcode::Fmul => self.lat.fp_mul,
            Opcode::Fdiv => self.lat.fp_div,
            Opcode::Fsqrt => self.lat.fp_sqrt,
            op if op.fu_class() == FuClass::FpAdd => self.lat.fp_add,
            _ => self.lat.int_alu,
        }
    }

    /// Attempts to issue `op` at cycle `now`; returns its result latency on
    /// success, or `None` when every unit of the class is busy.
    ///
    /// # Panics
    ///
    /// Panics if called for a memory operation (those use L1D ports).
    pub fn try_issue(&mut self, op: Opcode, now: u64) -> Option<u64> {
        let latency = self.latency(op);
        let occupancy = if op.is_blocking() { latency } else { 1 };
        let class = match op.fu_class() {
            FuClass::IntAlu => &mut self.int_alu,
            FuClass::IntMul => &mut self.int_mul,
            FuClass::FpAdd => &mut self.fp_add,
            FuClass::FpMul => &mut self.fp_mul,
            FuClass::Mem => panic!("memory ops issue through L1D ports, not FUs"),
        };
        class.try_issue(now, occupancy).then_some(latency)
    }

    /// Units of `class` still executing at `now` (occupancy statistics).
    pub fn busy(&self, class: FuClass, now: u64) -> usize {
        match class {
            FuClass::IntAlu => self.int_alu.busy_count(now),
            FuClass::IntMul => self.int_mul.busy_count(now),
            FuClass::FpAdd => self.fp_add.busy_count(now),
            FuClass::FpMul => self.fp_mul.busy_count(now),
            FuClass::Mem => 0,
        }
    }

    /// Releases every unit (full rewind; in-flight results are discarded).
    pub fn reset(&mut self) {
        for c in [
            &mut self.int_alu,
            &mut self.int_mul,
            &mut self.fp_add,
            &mut self.fp_mul,
        ] {
            c.busy_until.fill(0);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pool() -> FuPool {
        FuPool::new(&FuConfig::default(), OpLatencies::default())
    }

    #[test]
    fn pipelined_alu_issues_up_to_unit_count() {
        let mut p = pool();
        for _ in 0..4 {
            assert_eq!(p.try_issue(Opcode::Add, 10), Some(1));
        }
        assert_eq!(p.try_issue(Opcode::Add, 10), None); // 4 ALUs busy
        assert_eq!(p.try_issue(Opcode::Add, 11), Some(1)); // next cycle frees
    }

    #[test]
    fn blocking_division_holds_unit() {
        let mut p = pool();
        assert_eq!(p.try_issue(Opcode::Fdiv, 0), Some(12));
        // The single FP Mult/Div unit is now busy for 12 cycles.
        assert_eq!(p.try_issue(Opcode::Fmul, 1), None);
        assert_eq!(p.try_issue(Opcode::Fmul, 11), None);
        assert_eq!(p.try_issue(Opcode::Fmul, 12), Some(4));
    }

    #[test]
    fn pipelined_multiplier_accepts_back_to_back() {
        let mut p = pool();
        assert_eq!(p.try_issue(Opcode::Fmul, 0), Some(4));
        assert_eq!(p.try_issue(Opcode::Fmul, 1), Some(4)); // pipelined
    }

    #[test]
    fn classes_are_independent() {
        let mut p = pool();
        for _ in 0..4 {
            p.try_issue(Opcode::Add, 0);
        }
        // ALUs exhausted, but multiplier and FP adder remain available.
        assert!(p.try_issue(Opcode::Mul, 0).is_some());
        assert!(p.try_issue(Opcode::Fadd, 0).is_some());
    }

    #[test]
    fn latencies_match_config() {
        let p = pool();
        assert_eq!(p.latency(Opcode::Add), 1);
        assert_eq!(p.latency(Opcode::Mul), 3);
        assert_eq!(p.latency(Opcode::Div), 20);
        assert_eq!(p.latency(Opcode::Fadd), 2);
        assert_eq!(p.latency(Opcode::Feq), 2);
        assert_eq!(p.latency(Opcode::Fmul), 4);
        assert_eq!(p.latency(Opcode::Fdiv), 12);
        assert_eq!(p.latency(Opcode::Fsqrt), 24);
        assert_eq!(p.latency(Opcode::Beq), 1);
    }

    #[test]
    fn busy_counts_and_reset() {
        let mut p = pool();
        p.try_issue(Opcode::Div, 0);
        assert_eq!(p.busy(FuClass::IntMul, 5), 1);
        assert_eq!(p.busy(FuClass::IntMul, 20), 0);
        p.try_issue(Opcode::Fdiv, 0);
        p.reset();
        assert_eq!(p.busy(FuClass::FpMul, 1), 0);
        assert!(p.try_issue(Opcode::Fdiv, 1).is_some());
    }

    #[test]
    #[should_panic(expected = "memory ops")]
    fn memory_ops_rejected() {
        let mut p = pool();
        let _ = p.try_issue(Opcode::Ld, 0);
    }
}
