//! Issue stage: operand read, functional-unit allocation, execution, and
//! memory scheduling — including the application of injected faults at
//! their microarchitectural points.

use crate::entry::EntryState;
use crate::lsq::LoadSearch;
use crate::pipeline::Processor;
use ftsim_faults::InjectionPoint;
use ftsim_isa::{direct_target, execute, ExecOutcome};
use ftsim_mem::AccessKind;

/// Compares the architecturally-checked fields of two outcomes; used to
/// decide whether a corruption was *effective* (visible to the commit
/// cross-check) or masked.
fn outcomes_differ(a: &ExecOutcome, b: &ExecOutcome) -> bool {
    a != b
}

impl Processor {
    /// Runs the issue stage for one cycle.
    pub(crate) fn stage_issue(&mut self) {
        let mut budget = self.config.issue_width;
        let ready: Vec<u64> = self
            .ruu
            .iter()
            .filter(|e| e.state == EntryState::Ready)
            .map(|e| e.seq)
            .collect();
        for seq in ready {
            if budget == 0 {
                break;
            }
            let is_mem = self
                .ruu
                .get(seq)
                .map(|e| e.inst.op.is_mem())
                .unwrap_or(false);
            let consumed = if is_mem {
                self.try_issue_mem(seq)
            } else {
                self.try_issue_fu(seq)
            };
            if consumed {
                budget -= 1;
            }
        }
        self.merge_store_data();
    }

    /// Issues a non-memory instruction to its functional unit.
    fn try_issue_fu(&mut self, seq: u64) -> bool {
        let (inst, pc, mut a, mut b, fault) = {
            let e = self.ruu.get(seq).expect("ready entry exists");
            (e.inst, e.pc, e.ops[0].value(), e.ops[1].value(), e.fault)
        };
        let Some(latency) = self.fu.try_issue(inst.op, self.now) else {
            return false; // structural hazard: retry next cycle
        };

        let mut effective = false;
        if let Some((_, ev)) = fault {
            match ev.point {
                InjectionPoint::OperandA => {
                    let clean = execute(&inst, pc, a, b);
                    a = ev.corrupt(a);
                    effective = outcomes_differ(&clean, &execute(&inst, pc, a, b));
                }
                InjectionPoint::OperandB => {
                    let clean = execute(&inst, pc, a, b);
                    b = ev.corrupt(b);
                    effective = outcomes_differ(&clean, &execute(&inst, pc, a, b));
                }
                _ => {}
            }
        }
        let mut out = execute(&inst, pc, a, b);
        if let Some((_, ev)) = fault {
            match ev.point {
                InjectionPoint::Result => {
                    if let Some(r) = out.result.as_mut() {
                        *r = ev.corrupt(*r);
                        effective = true;
                    }
                }
                InjectionPoint::BranchDirection => {
                    if let Some(t) = out.taken {
                        let flipped = !t;
                        out.taken = Some(flipped);
                        out.target = flipped.then(|| direct_target(pc, inst.imm));
                        effective = true;
                    }
                }
                InjectionPoint::BranchTarget => {
                    if let Some(t) = out.target.as_mut() {
                        *t = ev.corrupt(*t);
                        effective = true;
                    }
                    // Not-taken branch: the corrupted target is never
                    // consumed — the fault is architecturally masked.
                }
                _ => {}
            }
        }

        {
            let e = self.ruu.get_mut(seq).expect("entry still live");
            e.result = out.result;
            e.taken = out.taken;
            e.target = out.target;
            e.fault_effective |= effective;
        }
        self.schedule_completion(seq, self.now + latency);
        true
    }

    /// Issues a memory instruction: address generation, disambiguation,
    /// forwarding, and (for copy 0) the single shared cache access.
    fn try_issue_mem(&mut self, seq: u64) -> bool {
        let (inst, pc, copy, base, fault, ea_known) = {
            let e = self.ruu.get(seq).expect("ready entry exists");
            (e.inst, e.pc, e.copy, e.ops[0].value(), e.fault, e.ea)
        };

        // Address generation (once).
        let ea = match ea_known {
            Some(ea) => ea,
            None => {
                let mut a = base;
                let mut effective = false;
                if let Some((_, ev)) = fault {
                    if ev.point == InjectionPoint::OperandA {
                        let clean = execute(&inst, pc, a, 0);
                        a = ev.corrupt(a);
                        effective = outcomes_differ(&clean, &execute(&inst, pc, a, 0));
                    }
                }
                let mut ea = execute(&inst, pc, a, 0)
                    .ea
                    .expect("mem op computes an address");
                if let Some((_, ev)) = fault {
                    if ev.point == InjectionPoint::EffAddr {
                        ea = ev.corrupt(ea);
                        effective = true;
                    }
                }
                let e = self.ruu.get_mut(seq).expect("entry still live");
                e.ea = Some(ea);
                e.fault_effective |= effective;
                self.lsq
                    .get_mut(seq)
                    .expect("mem entry has an LSQ slot")
                    .addr = Some(ea);
                ea
            }
        };

        if inst.op.is_store() {
            // The store's address phase occupies a memory port for its
            // issue slot, like `sim-outorder`'s memport units. Every
            // redundant copy pays this — the paper keeps the port count
            // unchanged ("the overall processor design must remain
            // balanced", §3.2), so redundant address computations compete
            // for the same two ports.
            if !self.hierarchy.try_data_port() {
                return false;
            }
            // Address phase complete; the datum merges off the issue path.
            let e = self.ruu.get_mut(seq).expect("entry still live");
            e.state = EntryState::Issued;
            return true;
        }

        // Loads: search older same-thread stores. Each copy occupies one
        // memory port when it starts its access/forward (address
        // calculation + data delivery), but only copy 0 actually touches
        // the cache: "the memory addresses are computed redundantly, but
        // only one memory access is performed" (§5.1.2).
        let size = inst.op.mem_bytes();
        match self.lsq.search_for_load(seq, copy, ea, size) {
            LoadSearch::Forward(raw) => {
                if !self.hierarchy.try_data_port() {
                    return false;
                }
                self.lsq.get_mut(seq).expect("lsq slot").mem_value = Some(raw);
                self.schedule_completion(seq, self.now + self.config.lat.forward);
                self.stats.load_forwards += 1;
                true
            }
            LoadSearch::WaitData | LoadSearch::Conflict => false,
            LoadSearch::Memory => {
                if copy == 0 {
                    if !self.hierarchy.try_data_port() {
                        return false;
                    }
                    let access = self.hierarchy.data_access(ea, AccessKind::Read);
                    let raw = self.mem.read_sized(ea, size);
                    self.lsq.get_mut(seq).expect("lsq slot").mem_value = Some(raw);
                    self.schedule_completion(seq, self.now + access.latency);
                    self.stats.load_accesses += 1;
                    true
                } else {
                    // Redundant copies take the shared access's value.
                    let copy0_seq = seq - u64::from(copy);
                    match self.lsq.get(copy0_seq).and_then(|l| l.mem_value) {
                        Some(raw) => {
                            if !self.hierarchy.try_data_port() {
                                return false;
                            }
                            self.lsq.get_mut(seq).expect("lsq slot").mem_value = Some(raw);
                            self.schedule_completion(seq, self.now + 1);
                            true
                        }
                        None => false, // copy 0 hasn't accessed yet
                    }
                }
            }
        }
    }

    /// Merges store data into the LSQ as it becomes available (does not
    /// consume issue bandwidth) and schedules the store's completion.
    fn merge_store_data(&mut self) {
        let pending: Vec<u64> = self
            .ruu
            .iter()
            .filter(|e| {
                e.inst.op.is_store()
                    && e.state == EntryState::Issued
                    && e.store_data.is_none()
                    && e.ops[1].ready()
            })
            .map(|e| e.seq)
            .collect();
        for seq in pending {
            let (mut data, fault) = {
                let e = self.ruu.get(seq).expect("entry live");
                (e.ops[1].value(), e.fault)
            };
            let mut effective = false;
            if let Some((_, ev)) = fault {
                if matches!(
                    ev.point,
                    InjectionPoint::StoreData | InjectionPoint::OperandB
                ) {
                    data = ev.corrupt(data);
                    effective = true;
                }
            }
            {
                let e = self.ruu.get_mut(seq).expect("entry live");
                e.store_data = Some(data);
                e.fault_effective |= effective;
            }
            self.lsq.get_mut(seq).expect("lsq slot").data = Some(data);
            self.schedule_completion(seq, self.now + 1);
        }
    }
}

/// Applies a fault event to an instruction for unit tests (exposed via
/// `pub(crate)` helpers above; this free function keeps the module's tests
/// close to the logic they exercise).
#[cfg(test)]
fn corrupted(
    inst: &ftsim_isa::Inst,
    pc: u64,
    a: u64,
    b: u64,
    ev: ftsim_faults::FaultEvent,
) -> ExecOutcome {
    let (mut a, mut b) = (a, b);
    match ev.point {
        InjectionPoint::OperandA => a = ev.corrupt(a),
        InjectionPoint::OperandB => b = ev.corrupt(b),
        _ => {}
    }
    execute(inst, pc, a, b)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ftsim_faults::FaultEvent;
    use ftsim_isa::{Inst, Opcode};

    #[test]
    fn operand_fault_changes_alu_outcome() {
        let inst = Inst::new(Opcode::Add, 1, 2, 3, 0);
        let clean = execute(&inst, 0, 10, 20);
        let ev = FaultEvent {
            point: InjectionPoint::OperandA,
            bit: 0,
        };
        let bad = corrupted(&inst, 0, 10, 20, ev);
        assert!(outcomes_differ(&clean, &bad));
        assert_eq!(bad.result, Some(31)); // (10^1) + 20
    }

    #[test]
    fn operand_fault_can_be_masked() {
        // AND with 0: corrupting the other operand cannot change the result.
        let inst = Inst::new(Opcode::And, 1, 2, 3, 0);
        let clean = execute(&inst, 0, 0xff, 0);
        let ev = FaultEvent {
            point: InjectionPoint::OperandA,
            bit: 9, // bit outside the mask
        };
        let bad = corrupted(&inst, 0, 0xff, 0, ev);
        assert!(!outcomes_differ(&clean, &bad));
    }
}
