//! Issue stage: operand read, functional-unit allocation, execution, and
//! memory scheduling — including the application of injected faults at
//! their microarchitectural points.

use crate::entry::EntryState;
use crate::lsq::LoadSearch;
use crate::pipeline::Processor;
use ftsim_faults::InjectionPoint;
use ftsim_isa::{direct_target, execute, ExecOutcome};
use ftsim_mem::AccessKind;

/// Compares the architecturally-checked fields of two outcomes; used to
/// decide whether a corruption was *effective* (visible to the commit
/// cross-check) or masked.
fn outcomes_differ(a: &ExecOutcome, b: &ExecOutcome) -> bool {
    a != b
}

impl Processor {
    /// Runs the issue stage for one cycle.
    ///
    /// Candidates come from two sequence-ordered sources merged on the
    /// fly, reproducing the seed's oldest-first full-RUU scan order
    /// without the scan:
    ///
    /// * the scheduler's **ready queue** — entries that became
    ///   issue-eligible at dispatch or wakeup;
    /// * the scheduler's **parked-memory list** — memory entries that
    ///   already failed an issue attempt (port lost, dependence conflict,
    ///   shared access not ready) and retry while this cycle's L1D ports
    ///   last.
    ///
    /// A memory attempt in a cycle whose data ports are exhausted is
    /// *provably* fruitless and side-effect-free once its address is
    /// generated (every failure path returns before mutating anything —
    /// except the opt-in `FTSIM_PLANT` defect counter the fuzz harness's
    /// self-test plants here, see `Processor::plant_counter`),
    /// so parked entries are then skipped wholesale and newly-ready
    /// memory entries only run first-touch address generation before
    /// parking — this is what turns the mem-bound steady state from
    /// O(occupancy) retries into O(ports) work per cycle. Non-memory
    /// entries that lose their functional unit are deferred back onto
    /// the ready queue for the next cycle. Sequence numbers squashed
    /// since they were queued are dropped when visited (seqs are never
    /// reused).
    pub(crate) fn stage_issue(&mut self) {
        let mut budget = self.config.issue_width;
        let (parked, mut keep) = self.sched.take_parked_mem();
        let mut pi = 0;

        while budget > 0 {
            // Merge step: the smaller head of the two ascending sources.
            let from_parked = match (parked.get(pi), self.sched.peek_ready()) {
                (Some(&p), Some(r)) => p < r,
                (Some(_), None) => true,
                (None, Some(_)) => false,
                (None, None) => break,
            };
            if from_parked {
                let seq = parked[pi];
                pi += 1;
                // Port check first: once the cycle's L1D ports are gone a
                // parked attempt cannot succeed, so the entry is re-parked
                // without even resolving its RUU slot. (A seq squashed
                // while parked may thus survive one extra port-starved
                // cycle in the list; it is dropped at the next visit that
                // has a port — parked contents are not observable state.)
                if self.hierarchy.data_ports_available() == 0 {
                    keep.push(seq);
                    continue;
                }
                let Some(idx) = self.ruu.position(seq) else {
                    continue; // squashed while parked
                };
                debug_assert_eq!(self.ruu.at(idx).state, EntryState::Ready);
                if self.try_issue_mem(seq, idx) {
                    budget -= 1;
                } else {
                    keep.push(seq);
                }
            } else {
                let seq = self.sched.pop_ready().expect("peeked non-empty");
                let Some(idx) = self.ruu.position(seq) else {
                    continue; // squashed while queued
                };
                debug_assert_eq!(self.ruu.at(idx).state, EntryState::Ready);
                if self.ruu.at(idx).inst.op.is_mem() {
                    if self.hierarchy.data_ports_available() == 0 {
                        // The seed still generated the address on a
                        // port-starved first attempt; everything after
                        // that is failure-path and effect-free.
                        self.ensure_mem_addr(seq, idx);
                        keep.push(seq);
                    } else if self.try_issue_mem(seq, idx) {
                        budget -= 1;
                    } else {
                        keep.push(seq);
                    }
                } else if self.try_issue_fu(seq, idx) {
                    budget -= 1;
                } else {
                    self.sched.defer_ready(seq);
                }
            }
        }
        // Whatever the walk did not reach stays parked, still in order
        // (every remaining parked seq is younger than every visited one).
        keep.extend_from_slice(&parked[pi..]);
        self.sched.put_parked_mem(parked, keep);
        self.sched.flush_deferred();
        self.merge_store_data();
    }

    /// First-touch effective-address generation for a memory entry,
    /// including the operand/address fault injections that ride on it.
    /// This is the *only* seed-visible side effect of a memory issue
    /// attempt that cannot win a data port, so the port-starved fast
    /// path runs just this before parking the entry.
    fn ensure_mem_addr(&mut self, seq: u64, idx: usize) -> u64 {
        let (inst, pc, base, fault, ea_known) = {
            let e = self.ruu.at(idx);
            (e.inst, e.pc, e.ops[0].value(), e.fault, e.ea)
        };
        if let Some(ea) = ea_known {
            return ea;
        }
        let mut a = base;
        let mut effective = false;
        if let Some((_, ev)) = fault {
            if ev.point == InjectionPoint::OperandA {
                let clean = execute(&inst, pc, a, 0);
                a = ev.corrupt(a);
                effective = outcomes_differ(&clean, &execute(&inst, pc, a, 0));
            }
        }
        let mut ea = execute(&inst, pc, a, 0)
            .ea
            .expect("mem op computes an address");
        if let Some((_, ev)) = fault {
            if ev.point == InjectionPoint::EffAddr {
                ea = ev.corrupt(ea);
                effective = true;
            }
        }
        let e = self.ruu.at_mut(idx);
        e.ea = Some(ea);
        e.fault_effective |= effective;
        self.lsq.set_addr(seq, ea);
        ea
    }

    /// Issues a non-memory instruction to its functional unit.
    fn try_issue_fu(&mut self, seq: u64, idx: usize) -> bool {
        let (inst, pc, mut a, mut b, fault) = {
            let e = self.ruu.at(idx);
            (e.inst, e.pc, e.ops[0].value(), e.ops[1].value(), e.fault)
        };
        let Some(latency) = self.fu.try_issue(inst.op, self.now) else {
            return false; // structural hazard: retry next cycle
        };

        let mut effective = false;
        if let Some((_, ev)) = fault {
            match ev.point {
                InjectionPoint::OperandA => {
                    let clean = execute(&inst, pc, a, b);
                    a = ev.corrupt(a);
                    effective = outcomes_differ(&clean, &execute(&inst, pc, a, b));
                }
                InjectionPoint::OperandB => {
                    let clean = execute(&inst, pc, a, b);
                    b = ev.corrupt(b);
                    effective = outcomes_differ(&clean, &execute(&inst, pc, a, b));
                }
                _ => {}
            }
        }
        let mut out = execute(&inst, pc, a, b);
        if let Some((_, ev)) = fault {
            match ev.point {
                InjectionPoint::Result => {
                    if let Some(r) = out.result.as_mut() {
                        *r = ev.corrupt(*r);
                        effective = true;
                    }
                }
                InjectionPoint::BranchDirection => {
                    if let Some(t) = out.taken {
                        let flipped = !t;
                        out.taken = Some(flipped);
                        out.target = flipped.then(|| direct_target(pc, inst.imm));
                        effective = true;
                    }
                }
                InjectionPoint::BranchTarget => {
                    if let Some(t) = out.target.as_mut() {
                        *t = ev.corrupt(*t);
                        effective = true;
                    }
                    // Not-taken branch: the corrupted target is never
                    // consumed — the fault is architecturally masked.
                }
                _ => {}
            }
        }

        {
            let e = self.ruu.at_mut(idx);
            e.result = out.result;
            e.taken = out.taken;
            e.target = out.target;
            e.fault_effective |= effective;
        }
        self.schedule_completion_at(idx, seq, self.now + latency);
        true
    }

    /// Issues a memory instruction: address generation, disambiguation,
    /// forwarding, and (for copy 0) the single shared cache access.
    fn try_issue_mem(&mut self, seq: u64, idx: usize) -> bool {
        let (inst, copy) = {
            let e = self.ruu.at(idx);
            (e.inst, e.copy)
        };

        // Address generation (once).
        let ea = self.ensure_mem_addr(seq, idx);
        let lidx = self.lsq.position(seq).expect("mem entry has an LSQ slot");

        if inst.op.is_store() {
            // The store's address phase occupies a memory port for its
            // issue slot, like `sim-outorder`'s memport units. Every
            // redundant copy pays this — the paper keeps the port count
            // unchanged ("the overall processor design must remain
            // balanced", §3.2), so redundant address computations compete
            // for the same two ports.
            if !self.hierarchy.try_data_port() {
                return false;
            }
            // Address phase complete; the datum merges off the issue path.
            self.ruu.at_mut(idx).state = EntryState::Issued;
            self.sched.add_pending_store(seq);
            return true;
        }

        // Loads: search older same-thread stores. Each copy occupies one
        // memory port when it starts its access/forward (address
        // calculation + data delivery), but only copy 0 actually touches
        // the cache: "the memory addresses are computed redundantly, but
        // only one memory access is performed" (§5.1.2).
        let size = inst.op.mem_bytes();
        match self.lsq.search_for_load(seq, copy, ea, size) {
            LoadSearch::Forward(raw) => {
                if !self.hierarchy.try_data_port() {
                    return false;
                }
                self.lsq.at_mut(lidx).mem_value = Some(raw);
                self.schedule_completion_at(idx, seq, self.now + self.config.lat.forward);
                self.stats.load_forwards += 1;
                true
            }
            LoadSearch::WaitData | LoadSearch::Conflict => {
                if self.plant_enabled {
                    // Planted defect (FTSIM_PLANT only): a stat bump on a
                    // failure return, outside checkpoint state. See
                    // `Processor::plant_counter`.
                    self.plant_counter += 1;
                }
                false
            }
            LoadSearch::Memory => {
                if copy == 0 {
                    if !self.hierarchy.try_data_port() {
                        return false;
                    }
                    let access = self.hierarchy.data_access(ea, AccessKind::Read);
                    let raw = self.mem.read_sized(ea, size);
                    self.lsq.at_mut(lidx).mem_value = Some(raw);
                    self.schedule_completion_at(idx, seq, self.now + access.latency);
                    self.stats.load_accesses += 1;
                    true
                } else {
                    // Redundant copies take the shared access's value.
                    let copy0_seq = seq - u64::from(copy);
                    match self.lsq.get(copy0_seq).and_then(|l| l.mem_value) {
                        Some(raw) => {
                            if !self.hierarchy.try_data_port() {
                                return false;
                            }
                            self.lsq.at_mut(lidx).mem_value = Some(raw);
                            self.schedule_completion_at(idx, seq, self.now + 1);
                            true
                        }
                        None => false, // copy 0 hasn't accessed yet
                    }
                }
            }
        }
    }

    /// Merges store data into the LSQ as it becomes available (does not
    /// consume issue bandwidth) and schedules the store's completion.
    ///
    /// Walks only the scheduler's pending-store list — stores whose
    /// address phase issued and whose datum has not merged — in sequence
    /// order, instead of filtering the whole RUU every cycle. A store
    /// leaves the list when its datum merges, or on squash (dropped here
    /// when its sequence number no longer resolves, and proactively by
    /// `Scheduler::squash_after`/`clear`).
    fn merge_store_data(&mut self) {
        let mut pending = self.sched.take_pending_stores();
        pending.retain(|&seq| {
            let Some(idx) = self.ruu.position(seq) else {
                return false; // squashed since its address phase issued
            };
            let (mut data, fault) = {
                let e = self.ruu.at(idx);
                debug_assert!(
                    e.inst.op.is_store() && e.state == EntryState::Issued && e.store_data.is_none()
                );
                if !e.ops[1].ready() {
                    return true; // datum still in flight: stay pending
                }
                (e.ops[1].value(), e.fault)
            };
            let mut effective = false;
            if let Some((_, ev)) = fault {
                if matches!(
                    ev.point,
                    InjectionPoint::StoreData | InjectionPoint::OperandB
                ) {
                    data = ev.corrupt(data);
                    effective = true;
                }
            }
            {
                let e = self.ruu.at_mut(idx);
                e.store_data = Some(data);
                e.fault_effective |= effective;
            }
            self.lsq.set_store_data(seq, data);
            crate::pipeline::schedule(&mut self.events, self.now + 1, seq);
            false // merged: leave the pending list
        });
        self.sched.put_pending_stores(pending);
    }
}

/// Applies a fault event to an instruction for unit tests (exposed via
/// `pub(crate)` helpers above; this free function keeps the module's tests
/// close to the logic they exercise).
#[cfg(test)]
fn corrupted(
    inst: &ftsim_isa::Inst,
    pc: u64,
    a: u64,
    b: u64,
    ev: ftsim_faults::FaultEvent,
) -> ExecOutcome {
    let (mut a, mut b) = (a, b);
    match ev.point {
        InjectionPoint::OperandA => a = ev.corrupt(a),
        InjectionPoint::OperandB => b = ev.corrupt(b),
        _ => {}
    }
    execute(inst, pc, a, b)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ftsim_faults::FaultEvent;
    use ftsim_isa::{Inst, Opcode};

    #[test]
    fn operand_fault_changes_alu_outcome() {
        let inst = Inst::new(Opcode::Add, 1, 2, 3, 0);
        let clean = execute(&inst, 0, 10, 20);
        let ev = FaultEvent {
            point: InjectionPoint::OperandA,
            bit: 0,
        };
        let bad = corrupted(&inst, 0, 10, 20, ev);
        assert!(outcomes_differ(&clean, &bad));
        assert_eq!(bad.result, Some(31)); // (10^1) + 20
    }

    #[test]
    fn operand_fault_can_be_masked() {
        // AND with 0: corrupting the other operand cannot change the result.
        let inst = Inst::new(Opcode::And, 1, 2, 3, 0);
        let clean = execute(&inst, 0, 0xff, 0);
        let ev = FaultEvent {
            point: InjectionPoint::OperandA,
            bit: 9, // bit outside the mask
        };
        let bad = corrupted(&inst, 0, 0xff, 0, ev);
        assert!(!outcomes_differ(&clean, &bad));
    }
}
