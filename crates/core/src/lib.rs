//! # ftsim-core — the fault-tolerant superscalar
//!
//! A cycle-level, execution-driven out-of-order superscalar simulator
//! implementing the MICRO 2001 proposal of Ray, Hoe and Falsafi: *dual use
//! of the superscalar datapath for transient-fault detection and recovery*.
//!
//! ## The mechanism (paper §3)
//!
//! 1. **Instruction injection** — at decode, every fetched instruction is
//!    replicated into `R` copies occupying *consecutive* RUU (ROB) entries.
//!    Register renaming links copy *k* of a consumer to copy *k* of its
//!    producer, creating `R` data-independent threads from one instruction
//!    stream with a single (ECC-protected) map table.
//! 2. **Fault detection** — the threads re-merge at commit: an instruction
//!    retires only when all `R` copies are complete and the oldest, and
//!    their results, effective addresses, store data and branch outcomes
//!    agree. A retiring instruction's PC is also checked against the
//!    ECC-protected committed next-PC register (control-flow check).
//! 3. **Recovery** — any disagreement triggers the pre-existing
//!    instruction-rewind mechanism: discard all speculative state and
//!    refetch from the committed next-PC. With `R ≥ 3`, majority election
//!    can instead commit the agreeing value. Only cross-checked values ever
//!    reach committed state, so committed state stays correct under any
//!    single transient fault.
//!
//! ## The machine
//!
//! The baseline configuration reproduces the paper's Table 1 (8-wide,
//! RUU 128 / LSQ 64, 4 integer ALUs, 2 integer multipliers, 2 FP adders,
//! 1 FP multiplier/divider, combined branch predictor, 64 KB L1I / 32 KB
//! 2-port L1D / 512 KB L2). Presets for the three evaluated machines —
//! SS-1, SS-2 and Static-2 — live in [`MachineConfig`].
//!
//! ## Example
//!
//! ```
//! use ftsim_core::{MachineConfig, Simulator};
//! use ftsim_isa::asm;
//!
//! let program = asm::assemble(r"
//!     addi r1, r0, 100
//!     addi r2, r0, 0
//! loop:
//!     add  r2, r2, r1
//!     addi r1, r1, -1
//!     bne  r1, r0, loop
//!     halt
//! ").unwrap();
//!
//! // Run once on the plain superscalar, once with 2-way redundancy.
//! let base = Simulator::builder()
//!     .config(MachineConfig::ss1())
//!     .program(&program)
//!     .run()
//!     .unwrap();
//! let dual = Simulator::builder()
//!     .config(MachineConfig::ss2())
//!     .program(&program)
//!     .run()
//!     .unwrap();
//! assert_eq!(base.retired_instructions, dual.retired_instructions);
//! assert!(dual.cycles >= base.cycles); // redundancy costs throughput
//! ```

#![warn(missing_docs)]

mod build;
mod check;
mod checkpoint;
mod commit;
mod config;
mod dispatch;
mod entry;
mod fetch;
mod fu;
mod issue;
mod lsq;
mod pipeline;
pub mod profile;
mod rename;
mod ruu;
mod sched;
mod seqhash;
mod sim;
mod stats;
mod writeback;

pub use build::{BuildError, SimBuilder};
pub use check::{majority_vote, CheckOutcome, GroupDecision};
pub use checkpoint::Checkpoint;
pub use config::{ConfigError, FuConfig, MachineConfig, OpLatencies, RedundancyConfig, Scale};
pub use entry::{EntryState, Prediction};
pub use pipeline::{Processor, SchedulerDepths};
pub use profile::StageProfile;
pub use sim::{OracleMode, RunLimits, SimError, SimResult, Simulator};
pub use stats::SimStats;
