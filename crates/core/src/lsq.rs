//! Load/store queue with thread-local forwarding and conservative
//! disambiguation.

use std::collections::VecDeque;

/// One LSQ slot, paralleling an RUU entry (same sequence number).
#[derive(Debug, Clone)]
pub struct LsqEntry {
    /// RUU sequence of the owning entry.
    pub seq: u64,
    /// Replication group (dispatch index).
    pub group: u64,
    /// Copy number; forwarding and disambiguation are *thread-local*
    /// (copy *k* interacts only with stores of copy *k*), so a corrupted
    /// store value or address stays confined to its thread and is exposed
    /// by the commit-stage cross-check.
    pub copy: u8,
    /// Store (`true`) or load.
    pub is_store: bool,
    /// Access width in bytes.
    pub size: u8,
    /// Effective address once computed.
    pub addr: Option<u64>,
    /// Store datum once available.
    pub data: Option<u64>,
    /// For loads of copy 0: the raw value returned by the single shared
    /// memory access, kept pristine so sibling copies can consume it even
    /// if copy 0's own register result is later corrupted in the ROB.
    pub mem_value: Option<u64>,
}

/// Outcome of a load's dependence search.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LoadSearch {
    /// An older same-thread store to exactly this address/size has its
    /// datum ready: forward this raw value.
    Forward(u64),
    /// The matching store exists but its datum is not yet available; retry
    /// later (the producer's completion will unblock it).
    WaitData,
    /// An older same-thread store overlaps inexactly, or has an unresolved
    /// address: conservatively stall until it leaves the queue.
    Conflict,
    /// No older dependence: safe to read memory.
    Memory,
}

/// Compact mirror of one store entry's disambiguation-relevant fields,
/// kept in the per-copy store index so a load's dependence search touches
/// only same-thread stores instead of walking the whole queue.
#[derive(Debug, Clone, Copy)]
struct StoreRef {
    seq: u64,
    addr: Option<u64>,
    size: u8,
    data: Option<u64>,
}

/// The load/store queue.
///
/// Entries are ordered by sequence number (program order × copies). All
/// `R` copies of a memory instruction occupy slots, halving (for `R = 2`)
/// the queue's effective capacity exactly as the paper describes for the
/// ROB and rename registers.
///
/// Stores are additionally indexed per copy ([`StoreRef`]) because the
/// dependence search is *thread-local*: copy *k* loads only ever interact
/// with copy *k* stores, so the search walks a short, dense store list
/// instead of every load and foreign-copy entry in between. Store `addr`
/// and `data` must therefore be set through [`Lsq::set_addr`] /
/// [`Lsq::set_store_data`], which keep the index coherent.
#[derive(Debug, Clone, Default)]
pub struct Lsq {
    entries: VecDeque<LsqEntry>,
    capacity: usize,
    /// Store index: `stores[copy]` holds this copy's in-flight stores in
    /// ascending sequence order.
    stores: Vec<VecDeque<StoreRef>>,
}

impl Lsq {
    /// Creates an empty queue.
    pub fn new(capacity: usize) -> Self {
        Self {
            entries: VecDeque::with_capacity(capacity),
            capacity,
            stores: Vec::new(),
        }
    }

    /// Live entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// `true` when no entries are live.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Free slots.
    pub fn free(&self) -> usize {
        self.capacity - self.entries.len()
    }

    /// Appends an entry.
    ///
    /// # Panics
    ///
    /// Panics on overflow or non-monotonic sequence.
    pub fn push(&mut self, entry: LsqEntry) {
        assert!(self.entries.len() < self.capacity, "LSQ overflow");
        if let Some(last) = self.entries.back() {
            assert!(entry.seq > last.seq, "LSQ sequence must increase");
        }
        if entry.is_store {
            let copy = entry.copy as usize;
            if self.stores.len() <= copy {
                self.stores.resize_with(copy + 1, VecDeque::new);
            }
            self.stores[copy].push_back(StoreRef {
                seq: entry.seq,
                addr: entry.addr,
                size: entry.size,
                data: entry.data,
            });
        }
        self.entries.push_back(entry);
    }

    /// Records the resolved effective address of the entry `seq`, keeping
    /// the store index coherent.
    ///
    /// # Panics
    ///
    /// Panics if `seq` is not in the queue.
    pub fn set_addr(&mut self, seq: u64, addr: u64) {
        let e = self.get_mut(seq).expect("mem entry has an LSQ slot");
        e.addr = Some(addr);
        if e.is_store {
            let copy = e.copy as usize;
            self.store_ref_mut(copy, seq).addr = Some(addr);
        }
    }

    /// Records the merged datum of the store `seq`, keeping the store
    /// index coherent.
    ///
    /// # Panics
    ///
    /// Panics if `seq` is not in the queue or is not a store.
    pub fn set_store_data(&mut self, seq: u64, data: u64) {
        let e = self.get_mut(seq).expect("store has an LSQ slot");
        debug_assert!(e.is_store);
        e.data = Some(data);
        let copy = e.copy as usize;
        self.store_ref_mut(copy, seq).data = Some(data);
    }

    /// The index slot of store `seq` of `copy`.
    fn store_ref_mut(&mut self, copy: usize, seq: u64) -> &mut StoreRef {
        let list = &mut self.stores[copy];
        let i = list.partition_point(|s| s.seq < seq);
        debug_assert!(
            i < list.len() && list[i].seq == seq,
            "store index out of sync"
        );
        &mut list[i]
    }

    /// Position (index handle) of `seq`, if present. Valid until the next
    /// structural mutation; the issue stage resolves a sequence once and
    /// reuses the handle.
    ///
    /// Unlike the RUU, the LSQ holds only memory entries, so its window is
    /// rarely dense; the bounds check still rejects most stale lookups
    /// before the binary search.
    pub fn position(&self, seq: u64) -> Option<usize> {
        let first = self.entries.front()?.seq;
        let last = self.entries.back().expect("front exists").seq;
        if seq < first || seq > last {
            return None;
        }
        let i = self.entries.partition_point(|e| e.seq < seq);
        (i < self.entries.len() && self.entries[i].seq == seq).then_some(i)
    }

    /// Mutable access through an index handle.
    ///
    /// # Panics
    ///
    /// Panics if `idx` is out of bounds (a stale handle).
    pub fn at_mut(&mut self, idx: usize) -> &mut LsqEntry {
        &mut self.entries[idx]
    }

    /// Lookup by sequence.
    pub fn get(&self, seq: u64) -> Option<&LsqEntry> {
        self.position(seq).map(|i| &self.entries[i])
    }

    /// Mutable lookup by sequence.
    pub fn get_mut(&mut self, seq: u64) -> Option<&mut LsqEntry> {
        self.position(seq).map(|i| &mut self.entries[i])
    }

    /// Searches for the dependence governing a load (`seq`, copy `copy`)
    /// at address `addr`/`size`.
    ///
    /// Scans older same-copy stores youngest-first: the first store with an
    /// unknown address or an inexact overlap wins as [`LoadSearch::Conflict`];
    /// an exact match forwards (or waits for) its datum; otherwise memory.
    pub fn search_for_load(&self, seq: u64, copy: u8, addr: u64, size: u8) -> LoadSearch {
        let Some(list) = self.stores.get(copy as usize) else {
            return LoadSearch::Memory;
        };
        let end = addr.wrapping_add(u64::from(size));
        // The index is seq-ascending, so the reverse walk visits this
        // copy's older stores youngest-first — the same visit order the
        // full-queue scan produced, minus the loads and foreign copies in
        // between.
        let older = list.partition_point(|s| s.seq < seq);
        for s in list.iter().take(older).rev() {
            match s.addr {
                None => return LoadSearch::Conflict,
                Some(sa) => {
                    let send = sa.wrapping_add(u64::from(s.size));
                    let overlap = sa < end && addr < send;
                    if !overlap {
                        continue;
                    }
                    if sa == addr && s.size == size {
                        return match s.data {
                            Some(d) => LoadSearch::Forward(d),
                            None => LoadSearch::WaitData,
                        };
                    }
                    return LoadSearch::Conflict;
                }
            }
        }
        LoadSearch::Memory
    }

    /// Removes every entry belonging to `group` (called as the group
    /// commits).
    ///
    /// Commit retires in order and groups are numbered in dispatch order,
    /// so a committing group's slots are contiguous at the queue's front:
    /// pop there instead of filtering the whole queue.
    pub fn remove_group(&mut self, group: u64) {
        while self.entries.front().is_some_and(|e| e.group == group) {
            let e = self.entries.pop_front().expect("front exists");
            if e.is_store {
                let popped = self.stores[e.copy as usize].pop_front();
                debug_assert_eq!(
                    popped.map(|s| s.seq),
                    Some(e.seq),
                    "store index out of sync at commit"
                );
            }
        }
        debug_assert!(
            !self.entries.iter().any(|e| e.group == group),
            "group {group} was not contiguous at the LSQ front"
        );
    }

    /// Removes entries with `seq > cutoff` (branch rewind).
    pub fn squash_after(&mut self, cutoff: u64) {
        let keep = self.entries.partition_point(|e| e.seq <= cutoff);
        self.entries.truncate(keep);
        for list in &mut self.stores {
            let keep = list.partition_point(|s| s.seq <= cutoff);
            list.truncate(keep);
        }
    }

    /// Removes everything (full rewind).
    pub fn squash_all(&mut self) {
        self.entries.clear();
        for list in &mut self.stores {
            list.clear();
        }
    }

    /// Iterates oldest-first.
    pub fn iter(&self) -> impl Iterator<Item = &LsqEntry> {
        self.entries.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn store(seq: u64, copy: u8, addr: Option<u64>, size: u8, data: Option<u64>) -> LsqEntry {
        LsqEntry {
            seq,
            group: seq,
            copy,
            is_store: true,
            size,
            addr,
            data,
            mem_value: None,
        }
    }

    fn load(seq: u64, copy: u8) -> LsqEntry {
        LsqEntry {
            seq,
            group: seq,
            copy,
            is_store: false,
            size: 8,
            addr: None,
            data: None,
            mem_value: None,
        }
    }

    #[test]
    fn forward_exact_match() {
        let mut q = Lsq::new(8);
        q.push(store(1, 0, Some(0x100), 8, Some(42)));
        q.push(load(2, 0));
        assert_eq!(q.search_for_load(2, 0, 0x100, 8), LoadSearch::Forward(42));
    }

    #[test]
    fn wait_for_store_data() {
        let mut q = Lsq::new(8);
        q.push(store(1, 0, Some(0x100), 8, None));
        assert_eq!(q.search_for_load(2, 0, 0x100, 8), LoadSearch::WaitData);
    }

    #[test]
    fn unknown_store_address_conflicts() {
        let mut q = Lsq::new(8);
        q.push(store(1, 0, None, 8, Some(1)));
        assert_eq!(q.search_for_load(2, 0, 0x500, 8), LoadSearch::Conflict);
    }

    #[test]
    fn partial_overlap_conflicts() {
        let mut q = Lsq::new(8);
        q.push(store(1, 0, Some(0x100), 4, Some(1)));
        assert_eq!(q.search_for_load(2, 0, 0x100, 8), LoadSearch::Conflict);
        // Overlap from below.
        let mut q = Lsq::new(8);
        q.push(store(1, 0, Some(0xfc), 8, Some(1)));
        assert_eq!(q.search_for_load(2, 0, 0x100, 8), LoadSearch::Conflict);
    }

    #[test]
    fn disjoint_store_goes_to_memory() {
        let mut q = Lsq::new(8);
        q.push(store(1, 0, Some(0x200), 8, Some(1)));
        assert_eq!(q.search_for_load(2, 0, 0x100, 8), LoadSearch::Memory);
    }

    #[test]
    fn youngest_older_store_wins() {
        let mut q = Lsq::new(8);
        q.push(store(1, 0, Some(0x100), 8, Some(1)));
        q.push(store(2, 0, Some(0x100), 8, Some(2)));
        assert_eq!(q.search_for_load(3, 0, 0x100, 8), LoadSearch::Forward(2));
    }

    #[test]
    fn forwarding_is_thread_local() {
        let mut q = Lsq::new(8);
        q.push(store(1, 0, Some(0x100), 8, Some(10)));
        q.push(store(2, 1, Some(0x100), 8, Some(20)));
        assert_eq!(q.search_for_load(3, 0, 0x100, 8), LoadSearch::Forward(10));
        assert_eq!(q.search_for_load(4, 1, 0x100, 8), LoadSearch::Forward(20));
    }

    #[test]
    fn younger_stores_ignored() {
        let mut q = Lsq::new(8);
        q.push(load(1, 0));
        q.push(store(2, 0, Some(0x100), 8, Some(9)));
        assert_eq!(q.search_for_load(1, 0, 0x100, 8), LoadSearch::Memory);
    }

    #[test]
    fn group_removal_and_squash() {
        let mut q = Lsq::new(8);
        q.push(store(1, 0, Some(0x100), 8, Some(1)));
        q.push(load(5, 0));
        q.push(load(6, 0));
        q.remove_group(1);
        assert_eq!(q.len(), 2);
        q.squash_after(5);
        assert_eq!(q.len(), 1);
        assert!(q.get(5).is_some());
        q.squash_all();
        assert!(q.is_empty());
        assert_eq!(q.free(), 8);
    }

    #[test]
    #[should_panic(expected = "LSQ overflow")]
    fn overflow_panics() {
        let mut q = Lsq::new(1);
        q.push(load(1, 0));
        q.push(load(2, 0));
    }
}
