//! The processor: pipeline state and the per-cycle stage driver.
//!
//! Stage methods live in sibling modules (`commit`, `writeback`, `issue`,
//! `dispatch`) as `impl Processor` blocks; this module owns the shared
//! state and the cross-cutting mechanics (branch rewind, full rewind,
//! wakeup).

use crate::config::MachineConfig;
use crate::entry::{EntryState, Operand};
use crate::fetch::FetchUnit;
use crate::fu::FuPool;
use crate::lsq::Lsq;
use crate::rename::{MapCheckpoint, MapTable};
use crate::ruu::Ruu;
use crate::stats::SimStats;
use ftsim_faults::{FaultFate, FaultInjector, FaultLog};
use ftsim_isa::{ArchRegs, Program};
use ftsim_mem::{Hierarchy, SparseMemory};
use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap};

/// The complete microarchitectural state of one simulated processor.
///
/// Prefer the [`Simulator`](crate::Simulator) facade for running programs;
/// `Processor` is exposed for tests and tools that need to single-step
/// cycles or inspect in-flight state.
#[derive(Debug)]
pub struct Processor {
    pub(crate) config: MachineConfig,
    pub(crate) program: Program,
    pub(crate) now: u64,
    pub(crate) next_seq: u64,
    pub(crate) next_group: u64,
    pub(crate) ruu: Ruu,
    pub(crate) lsq: Lsq,
    pub(crate) map: MapTable,
    pub(crate) checkpoints: HashMap<u64, MapCheckpoint>,
    pub(crate) regs: ArchRegs,
    pub(crate) mem: SparseMemory,
    /// The ECC-protected committed next-PC register (§3.2): "an
    /// ECC-protected register must hold the next-PC of the last committed
    /// instruction as part of the committed program state."
    pub(crate) committed_next_pc: u64,
    pub(crate) fetch: FetchUnit,
    pub(crate) hierarchy: Hierarchy,
    pub(crate) fu: FuPool,
    pub(crate) events: BinaryHeap<Reverse<(u64, u64)>>,
    pub(crate) injector: FaultInjector,
    pub(crate) fault_log: FaultLog,
    pub(crate) stats: SimStats,
    pub(crate) halted: bool,
    pub(crate) pending_rewind_start: Option<u64>,
    pub(crate) last_commit_cycle: u64,
}

impl Processor {
    /// Builds a processor over `program` with the given fault injector.
    ///
    /// # Panics
    ///
    /// Panics if `config` is inconsistent (see
    /// [`MachineConfig::validate`]).
    pub fn new(config: MachineConfig, program: &Program, injector: FaultInjector) -> Self {
        config
            .validate()
            .expect("invalid machine configuration (use SimBuilder to surface this as an error)");
        let mut mem = SparseMemory::new();
        program.load_data(&mut mem);
        Self {
            now: 0,
            next_seq: 0,
            next_group: 0,
            ruu: Ruu::new(config.ruu_size),
            lsq: Lsq::new(config.lsq_size),
            map: MapTable::new(),
            checkpoints: HashMap::new(),
            regs: ArchRegs::new(),
            mem,
            committed_next_pc: program.entry(),
            fetch: FetchUnit::new(&config, program.entry()),
            hierarchy: Hierarchy::new(&config.hierarchy),
            fu: FuPool::new(&config.fu, config.lat),
            events: BinaryHeap::new(),
            injector,
            fault_log: FaultLog::new(),
            stats: SimStats::default(),
            halted: false,
            pending_rewind_start: None,
            last_commit_cycle: 0,
            program: program.clone(),
            config,
        }
    }

    /// Advances the machine one cycle.
    ///
    /// Stages run commit → writeback → issue → dispatch → fetch
    /// (SimpleScalar's reverse traversal) so that values become visible
    /// with correct single-cycle timing.
    pub fn cycle(&mut self) {
        self.hierarchy.begin_cycle();
        self.stage_commit();
        if !self.halted {
            self.stage_writeback();
            self.stage_issue();
            self.stage_dispatch();
            self.fetch
                .fetch_cycle(self.now, &self.program, &mut self.hierarchy);
        }
        self.stats.ruu_occupancy_sum += self.ruu.len() as u64;
        self.stats.lsq_occupancy_sum += self.lsq.len() as u64;
        #[cfg(debug_assertions)]
        self.assert_group_invariants();
        self.stats.cycles += 1;
        self.now += 1;
    }

    /// Whether `halt` has committed.
    pub fn halted(&self) -> bool {
        self.halted
    }

    /// Current cycle.
    pub fn now(&self) -> u64 {
        self.now
    }

    /// Committed architectural registers.
    pub fn regs(&self) -> &ArchRegs {
        &self.regs
    }

    /// Committed memory.
    pub fn mem(&self) -> &SparseMemory {
        &self.mem
    }

    /// Statistics gathered so far. Cache/fetch counters are synchronized
    /// on access.
    pub fn stats(&mut self) -> &SimStats {
        let (il1, dl1, l2) = self.hierarchy.cache_stats();
        self.stats.il1 = il1;
        self.stats.dl1 = dl1;
        self.stats.l2 = l2;
        let f = self.fetch.stats();
        self.stats.fetched = f.fetched;
        self.stats.fetch_stall_cycles = f.stall_cycles;
        self.stats.icache_stall_cycles = f.icache_stall_cycles;
        self.stats.faults = self.fault_log.counts();
        &self.stats
    }

    /// The machine configuration.
    pub fn config(&self) -> &MachineConfig {
        &self.config
    }

    /// The fault ledger.
    pub fn fault_log(&self) -> &FaultLog {
        &self.fault_log
    }

    /// In-flight RUU occupancy (tests/inspection).
    pub fn ruu_len(&self) -> usize {
        self.ruu.len()
    }

    /// Dumps the oldest `n` RUU entries and LSQ state (debugging aid).
    pub fn debug_dump_head(&self, n: usize) {
        eprintln!(
            "ruu={} lsq={} events={} ifq={} next_pc={:#x} busy[alu={} mul={} fadd={} fmul={}]",
            self.ruu.len(),
            self.lsq.len(),
            self.events.len(),
            self.fetch.queued(),
            self.committed_next_pc,
            self.fu.busy(ftsim_isa::FuClass::IntAlu, self.now),
            self.fu.busy(ftsim_isa::FuClass::IntMul, self.now),
            self.fu.busy(ftsim_isa::FuClass::FpAdd, self.now),
            self.fu.busy(ftsim_isa::FuClass::FpMul, self.now),
        );
        eprintln!(
            "  ruu {}/{} oldest={:?} map-live={}",
            self.ruu.len(),
            self.ruu.capacity(),
            self.ruu.head().map(|e| e.seq),
            self.map.live_mappings()
        );
        for e in self.ruu.iter().take(n) {
            eprintln!(
                "  seq={} grp={} cp={} pc={:#x} {:?} {} ops={:?} ea={:?} res={:?}",
                e.seq, e.group, e.copy, e.pc, e.state, e.inst, e.ops, e.ea, e.result
            );
        }
        for l in self.lsq.iter().take(n) {
            eprintln!(
                "  lsq seq={} cp={} st={} addr={:?} data={:?} mv={:?}",
                l.seq, l.copy, l.is_store, l.addr, l.data, l.mem_value
            );
        }
    }

    /// The degree of redundancy R.
    pub(crate) fn r(&self) -> u64 {
        u64::from(self.config.redundancy.r)
    }

    /// Broadcasts a completed producer's result to waiting consumers.
    pub(crate) fn wakeup(&mut self, producer_seq: u64, value: u64) {
        for e in self.ruu.iter_mut() {
            let mut changed = false;
            for op in &mut e.ops {
                if *op == Operand::Wait(producer_seq) {
                    *op = Operand::Value(value);
                    changed = true;
                }
            }
            if changed {
                e.refresh_readiness();
            }
        }
    }

    /// Selective squash after a branch rewind: removes every entry younger
    /// than `cutoff_seq`, restores the branch's map checkpoint, and marks
    /// squashed faults as wrong-path.
    pub(crate) fn branch_rewind(&mut self, branch_group: u64, cutoff_seq: u64, new_target: u64) {
        let squashed = self.ruu.squash_after(cutoff_seq);
        for e in &squashed {
            if let Some((id, _)) = e.fault {
                self.fault_log.resolve(id, FaultFate::SquashedWrongPath);
            }
            // Squashed younger branches' checkpoints are dead.
            if e.inst.op.is_control() && e.copy == 0 {
                self.checkpoints.remove(&e.group);
            }
        }
        self.lsq.squash_after(cutoff_seq);
        let cp = self
            .checkpoints
            .get(&branch_group)
            .expect("branch group has a checkpoint")
            .clone();
        self.map.restore(&cp);
        self.fetch
            .redirect(new_target, self.now + 1 + self.config.lat.mispredict_extra);
        self.stats.branch_rewinds += 1;
    }

    /// Full rewind (§3.2 Recovery): "discard the entire ROB contents and
    /// restart execution by refetching from the committed next-PC
    /// register."
    pub(crate) fn full_rewind(&mut self, cause: crate::stats::RewindCause) {
        let squashed = self.ruu.squash_all();
        for e in &squashed {
            if let Some((id, _)) = e.fault {
                self.fault_log.resolve(id, FaultFate::SquashedByRewind);
            }
        }
        self.lsq.squash_all();
        debug_assert!(self.lsq.is_empty() && self.ruu.is_empty());
        self.checkpoints.clear();
        self.map.clear();
        self.events.clear();
        self.fu.reset();
        self.fetch.rewind(
            self.committed_next_pc,
            self.now + 1 + self.config.lat.mispredict_extra,
        );
        self.pending_rewind_start = Some(self.now);
        match cause {
            crate::stats::RewindCause::FaultDetected => self.stats.fault_rewinds += 1,
            crate::stats::RewindCause::ControlFlowCheck => self.stats.pc_check_rewinds += 1,
        }
    }

    /// Debug invariant: every replication group in the RUU is contiguous,
    /// complete, and placed so copies have consecutive sequence numbers
    /// (the paper's ⌊i/R⌋ placement rule).
    #[cfg(debug_assertions)]
    pub(crate) fn assert_group_invariants(&self) {
        let r = self.r();
        let mut iter = self.ruu.iter().peekable();
        while let Some(first) = iter.next() {
            assert_eq!(first.copy, 0, "group must start at copy 0");
            for k in 1..r {
                let e = iter.next().expect("incomplete replication group");
                assert_eq!(e.group, first.group, "group interleaved");
                assert_eq!(u64::from(e.copy), k, "copy order broken");
                assert_eq!(e.seq, first.seq + k, "copies not consecutive");
            }
        }
    }

    /// No-op counterpart for builds without `debug_assertions` (the bench
    /// profile compiles unit tests too, so the symbol must exist).
    #[cfg(not(debug_assertions))]
    #[allow(dead_code)]
    pub(crate) fn assert_group_invariants(&self) {}
}

/// Schedules a completion event (free function to avoid borrow tangles).
pub(crate) fn schedule(events: &mut BinaryHeap<Reverse<(u64, u64)>>, cycle: u64, seq: u64) {
    events.push(Reverse((cycle, seq)));
}

impl Processor {
    /// Marks `entry` issued and schedules its completion.
    pub(crate) fn schedule_completion(&mut self, seq: u64, at: u64) {
        schedule(&mut self.events, at, seq);
        if let Some(e) = self.ruu.get_mut(seq) {
            e.state = EntryState::Issued;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::MachineConfig;
    use ftsim_isa::{IntReg, ProgramBuilder};

    fn tiny_program() -> Program {
        let mut b = ProgramBuilder::new();
        b.addi(IntReg::new(1), IntReg::ZERO, 7);
        b.halt();
        b.build().unwrap()
    }

    #[test]
    fn runs_trivial_program_to_halt() {
        let p = tiny_program();
        let mut proc = Processor::new(MachineConfig::ss1(), &p, FaultInjector::none());
        for _ in 0..200 {
            proc.cycle();
            if proc.halted() {
                break;
            }
        }
        assert!(proc.halted());
        assert_eq!(proc.regs().read_int(IntReg::new(1)), 7);
        assert_eq!(proc.stats().retired_instructions, 2);
    }

    #[test]
    fn redundant_mode_retires_same_instructions() {
        let p = tiny_program();
        let mut proc = Processor::new(MachineConfig::ss2(), &p, FaultInjector::none());
        for _ in 0..200 {
            proc.cycle();
            if proc.halted() {
                break;
            }
        }
        assert!(proc.halted());
        let s = proc.stats();
        assert_eq!(s.retired_instructions, 2);
        assert_eq!(s.retired_entries, 4); // R = 2 entries per instruction
    }

    #[test]
    fn committed_next_pc_tracks_entry() {
        let p = tiny_program();
        let mut proc = Processor::new(MachineConfig::ss1(), &p, FaultInjector::none());
        assert_eq!(proc.committed_next_pc, p.entry());
        while !proc.halted() {
            proc.cycle();
        }
        // After halt commits, next-PC is one past the halt.
        assert_eq!(proc.committed_next_pc, p.entry() + 8);
    }
}
