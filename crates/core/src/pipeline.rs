//! The processor: pipeline state and the per-cycle stage driver.
//!
//! Stage methods live in sibling modules (`commit`, `writeback`, `issue`,
//! `dispatch`) as `impl Processor` blocks; this module owns the shared
//! state and the cross-cutting mechanics (branch rewind, full rewind,
//! wakeup).

use crate::config::MachineConfig;
use crate::entry::{Entry, EntryState, Operand};
use crate::fetch::FetchUnit;
use crate::fu::FuPool;
use crate::lsq::Lsq;
use crate::rename::{MapCheckpoint, MapTable};
use crate::ruu::Ruu;
use crate::sched::Scheduler;
use crate::seqhash::SeqHashMap;
use crate::stats::SimStats;
use ftsim_faults::{FaultFate, FaultInjector, FaultLog};
use ftsim_isa::{ArchRegs, Program};
use ftsim_mem::{Hierarchy, SparseMemory};
use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::sync::Arc;

/// The complete microarchitectural state of one simulated processor.
///
/// Prefer the [`Simulator`](crate::Simulator) facade for running programs;
/// `Processor` is exposed for tests and tools that need to single-step
/// cycles or inspect in-flight state.
#[derive(Debug)]
pub struct Processor {
    pub(crate) config: MachineConfig,
    /// The immutable program image, shared (not deep-copied) between the
    /// processor, the simulator facade and every sibling grid cell.
    pub(crate) program: Arc<Program>,
    pub(crate) now: u64,
    pub(crate) next_seq: u64,
    pub(crate) next_group: u64,
    pub(crate) ruu: Ruu,
    pub(crate) lsq: Lsq,
    pub(crate) map: MapTable,
    pub(crate) checkpoints: SeqHashMap<u64, MapCheckpoint>,
    pub(crate) regs: ArchRegs,
    pub(crate) mem: SparseMemory,
    /// The ECC-protected committed next-PC register (§3.2): "an
    /// ECC-protected register must hold the next-PC of the last committed
    /// instruction as part of the committed program state."
    pub(crate) committed_next_pc: u64,
    pub(crate) fetch: FetchUnit,
    pub(crate) hierarchy: Hierarchy,
    pub(crate) fu: FuPool,
    pub(crate) events: BinaryHeap<Reverse<(u64, u64)>>,
    pub(crate) injector: FaultInjector,
    pub(crate) fault_log: FaultLog,
    pub(crate) stats: SimStats,
    pub(crate) halted: bool,
    pub(crate) pending_rewind_start: Option<u64>,
    pub(crate) last_commit_cycle: u64,
    /// Event-driven scheduler state: wakeup wait-lists, the ready queue
    /// and the pending-store list.
    pub(crate) sched: Scheduler,
    /// Reused buffer for squashed entries (branch and full rewinds).
    pub(crate) squash_scratch: Vec<Entry>,
    /// Reused buffer for the commit stage's head-group snapshot.
    pub(crate) commit_scratch: Vec<Entry>,
    /// **Deliberately planted defect, off unless `FTSIM_PLANT` is set.**
    ///
    /// Counts load issue attempts that failed on a store-set dependence
    /// (wait-for-data or address conflict). The defect is that this
    /// counter is *not* part of [`Checkpoint`](crate::Checkpoint) state
    /// but *is* folded into the `load_forwards` statistic by
    /// [`Processor::stats_snapshot`]: a run forked from a checkpoint
    /// restores into a fresh processor whose counter restarts at zero, so
    /// its records under-count relative to an identical cold run. The
    /// `ftsim-fuzz` acceptance tests flip `FTSIM_PLANT` on to prove the
    /// forked-vs-cold identity invariant actually catches (and shrinks)
    /// this class of bug; production runs never set the variable, and the
    /// counter then stays zero and unobservable.
    pub(crate) plant_counter: u64,
    /// Whether `FTSIM_PLANT` was set when this processor was built (the
    /// planted defect above is active).
    pub(crate) plant_enabled: bool,
}

impl Processor {
    /// Builds a processor over `program` with the given fault injector.
    ///
    /// # Panics
    ///
    /// Panics if `config` is inconsistent (see
    /// [`MachineConfig::validate`]).
    pub fn new(config: MachineConfig, program: &Program, injector: FaultInjector) -> Self {
        Self::with_shared_program(config, Arc::new(program.clone()), injector)
    }

    /// Builds a processor over an already-shared program image, avoiding
    /// the deep copy [`Processor::new`] makes for API compatibility. This
    /// is what the builder and the experiment grid use: one `Arc` per
    /// distinct program, cloned by reference count into every cell.
    ///
    /// # Panics
    ///
    /// Panics if `config` is inconsistent (see
    /// [`MachineConfig::validate`]).
    pub fn with_shared_program(
        config: MachineConfig,
        program: Arc<Program>,
        injector: FaultInjector,
    ) -> Self {
        config
            .validate()
            .expect("invalid machine configuration (use SimBuilder to surface this as an error)");
        let mut mem = SparseMemory::new();
        program.load_data(&mut mem);
        Self {
            now: 0,
            next_seq: 0,
            next_group: 0,
            ruu: Ruu::new(config.ruu_size),
            lsq: Lsq::new(config.lsq_size),
            map: MapTable::new(),
            checkpoints: SeqHashMap::default(),
            regs: ArchRegs::new(),
            mem,
            committed_next_pc: program.entry(),
            fetch: FetchUnit::new(&config, program.entry()),
            hierarchy: Hierarchy::new(&config.hierarchy),
            fu: FuPool::new(&config.fu, config.lat),
            events: BinaryHeap::new(),
            injector,
            fault_log: FaultLog::new(),
            stats: SimStats::default(),
            halted: false,
            pending_rewind_start: None,
            last_commit_cycle: 0,
            sched: Scheduler::default(),
            squash_scratch: Vec::new(),
            commit_scratch: Vec::new(),
            plant_counter: 0,
            plant_enabled: std::env::var_os("FTSIM_PLANT").is_some(),
            program,
            config,
        }
    }

    /// Advances the machine one cycle.
    ///
    /// Stages run commit → writeback → issue → dispatch → fetch
    /// (SimpleScalar's reverse traversal) so that values become visible
    /// with correct single-cycle timing.
    pub fn cycle(&mut self) {
        if crate::profile::enabled() {
            self.cycle_profiled();
            return;
        }
        self.hierarchy.begin_cycle();
        self.stage_commit();
        if !self.halted {
            self.stage_writeback();
            self.stage_issue();
            self.stage_dispatch();
            self.fetch
                .fetch_cycle(self.now, &self.program, &mut self.hierarchy);
        }
        self.stats.ruu_occupancy_sum += self.ruu.len() as u64;
        self.stats.lsq_occupancy_sum += self.lsq.len() as u64;
        #[cfg(debug_assertions)]
        self.assert_group_invariants();
        self.stats.cycles += 1;
        self.now += 1;
    }

    /// [`Processor::cycle`] with stage profiling: same stages, same
    /// order, same conditions — simulation state evolves identically —
    /// plus exact per-stage call counts and, on one cycle in 64, wall
    /// time per stage (see [`crate::profile`] for why sampling).
    fn cycle_profiled(&mut self) {
        use std::time::Instant;
        let sampled = self.now & 63 == 0;
        let mut ran = [true, false, false, false, false];
        let mut ns = [0u64; 5];
        let mut stage = |i: usize, f: &mut dyn FnMut()| {
            if sampled {
                let t = Instant::now();
                f();
                ns[i] = t.elapsed().as_nanos() as u64;
            } else {
                f();
            }
        };
        self.hierarchy.begin_cycle();
        stage(0, &mut || self.stage_commit());
        if !self.halted {
            ran = [true; 5];
            stage(1, &mut || self.stage_writeback());
            stage(2, &mut || self.stage_issue());
            stage(3, &mut || self.stage_dispatch());
            stage(4, &mut || {
                self.fetch
                    .fetch_cycle(self.now, &self.program, &mut self.hierarchy);
            });
        }
        self.stats.ruu_occupancy_sum += self.ruu.len() as u64;
        self.stats.lsq_occupancy_sum += self.lsq.len() as u64;
        #[cfg(debug_assertions)]
        self.assert_group_invariants();
        self.stats.cycles += 1;
        self.now += 1;
        crate::profile::record(&ran, &ns, sampled);
    }

    /// Whether `halt` has committed.
    pub fn halted(&self) -> bool {
        self.halted
    }

    /// Current cycle.
    pub fn now(&self) -> u64 {
        self.now
    }

    /// Committed architectural registers.
    pub fn regs(&self) -> &ArchRegs {
        &self.regs
    }

    /// Committed memory.
    pub fn mem(&self) -> &SparseMemory {
        &self.mem
    }

    /// A synchronized snapshot of the statistics gathered so far: the
    /// core counters plus the cache, fetch and fault counters that live
    /// in their own units, folded in at read time. Needs only `&self` —
    /// inspection never mutates the machine.
    pub fn stats_snapshot(&self) -> SimStats {
        let mut stats = self.stats.clone();
        let (il1, dl1, l2) = self.hierarchy.cache_stats();
        stats.il1 = il1;
        stats.dl1 = dl1;
        stats.l2 = l2;
        let f = self.fetch.stats();
        stats.fetched = f.fetched;
        stats.fetch_stall_cycles = f.stall_cycles;
        stats.icache_stall_cycles = f.icache_stall_cycles;
        stats.faults = self.fault_log.counts();
        stats.fault_sites = self.fault_log.per_site();
        stats.fault_latency = self.fault_log.latency();
        if self.plant_enabled {
            // Deliberately wrong when FTSIM_PLANT is set — see the
            // `plant_counter` field docs.
            stats.load_forwards += self.plant_counter;
        }
        stats
    }

    /// A 64-bit FNV-1a digest of the committed architectural state:
    /// registers, the committed next-PC, the halt flag, and memory
    /// contents (content-based — all-zero pages digest like unmapped
    /// ones).
    ///
    /// Two runs of the same program that committed the same number of
    /// instructions digest equally iff their committed state is
    /// architecturally identical, which is how the analysis layer
    /// classifies a cell's escaped faults as masked vs. silent data
    /// corruption against the family's fault-free baseline.
    pub fn state_digest(&self) -> u64 {
        const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
        const PRIME: u64 = 0x0000_0100_0000_01b3;
        let mut h = OFFSET;
        let mut fold = |v: u64| {
            for b in v.to_le_bytes() {
                h = (h ^ u64::from(b)).wrapping_mul(PRIME);
            }
        };
        for (_, value) in self.regs.iter() {
            fold(value);
        }
        fold(self.committed_next_pc);
        fold(u64::from(self.halted));
        self.mem.content_digest(h)
    }

    /// Statistics gathered so far. Cache/fetch counters are synchronized
    /// on access.
    #[deprecated(
        since = "0.3.0",
        note = "use `stats_snapshot()`; reading statistics does not need `&mut self`"
    )]
    pub fn stats(&mut self) -> &SimStats {
        self.stats = self.stats_snapshot();
        &self.stats
    }

    /// The machine configuration.
    pub fn config(&self) -> &MachineConfig {
        &self.config
    }

    /// The fault ledger.
    pub fn fault_log(&self) -> &FaultLog {
        &self.fault_log
    }

    /// Mutable access to the fault injector.
    ///
    /// Forking uses this to fast-forward a freshly built cell's injector
    /// past a restored fault-free prefix (see
    /// [`FaultInjector::fast_forward_fault_free`]).
    pub fn injector_mut(&mut self) -> &mut FaultInjector {
        &mut self.injector
    }

    /// In-flight RUU occupancy (tests/inspection).
    pub fn ruu_len(&self) -> usize {
        self.ruu.len()
    }

    /// Occupancy of the event-driven scheduler's structures — how much
    /// genuinely in-flight state a snapshot at this boundary captures.
    pub fn scheduler_depths(&self) -> SchedulerDepths {
        let (waiters, ready, parked_mem, pending_stores) = self.sched.depths();
        SchedulerDepths {
            waiters,
            ready,
            parked_mem,
            pending_stores,
            events: self.events.len(),
        }
    }

    /// Dumps the oldest `n` RUU entries and LSQ state (debugging aid).
    pub fn debug_dump_head(&self, n: usize) {
        eprintln!(
            "ruu={} lsq={} events={} ifq={} next_pc={:#x} busy[alu={} mul={} fadd={} fmul={}]",
            self.ruu.len(),
            self.lsq.len(),
            self.events.len(),
            self.fetch.queued(),
            self.committed_next_pc,
            self.fu.busy(ftsim_isa::FuClass::IntAlu, self.now),
            self.fu.busy(ftsim_isa::FuClass::IntMul, self.now),
            self.fu.busy(ftsim_isa::FuClass::FpAdd, self.now),
            self.fu.busy(ftsim_isa::FuClass::FpMul, self.now),
        );
        eprintln!(
            "  ruu {}/{} oldest={:?} map-live={}",
            self.ruu.len(),
            self.ruu.capacity(),
            self.ruu.head().map(|e| e.seq),
            self.map.live_mappings()
        );
        for e in self.ruu.iter().take(n) {
            eprintln!(
                "  seq={} grp={} cp={} pc={:#x} {:?} {} ops={:?} ea={:?} res={:?}",
                e.seq, e.group, e.copy, e.pc, e.state, e.inst, e.ops, e.ea, e.result
            );
        }
        for l in self.lsq.iter().take(n) {
            eprintln!(
                "  lsq seq={} cp={} st={} addr={:?} data={:?} mv={:?}",
                l.seq, l.copy, l.is_store, l.addr, l.data, l.mem_value
            );
        }
    }

    /// The degree of redundancy R.
    pub(crate) fn r(&self) -> u64 {
        u64::from(self.config.redundancy.r)
    }

    /// Delivers a completed producer's result to its waiting consumers.
    ///
    /// Dispatch registered every consumer on the producer's wait-list, so
    /// this touches only entries that actually wait — not the whole RUU.
    /// Consumers squashed since registration are skipped (their sequence
    /// numbers are never reused, so a miss is definitive).
    pub(crate) fn wakeup(&mut self, producer_seq: u64, value: u64) {
        let Some(list) = self.sched.take_wait_list(producer_seq) else {
            return;
        };
        for &consumer in &list {
            let Some(e) = self.ruu.get_mut(consumer) else {
                continue; // squashed while waiting
            };
            let mut changed = false;
            for op in &mut e.ops {
                if *op == Operand::Wait(producer_seq) {
                    *op = Operand::Value(value);
                    changed = true;
                }
            }
            if changed && e.state == EntryState::Waiting {
                e.refresh_readiness();
                if e.state == EntryState::Ready {
                    self.sched.push_ready(consumer);
                }
            }
        }
        self.sched.recycle(list);
    }

    /// Selective squash after a branch rewind: removes every entry younger
    /// than `cutoff_seq`, restores the branch's map checkpoint, and marks
    /// squashed faults as wrong-path.
    pub(crate) fn branch_rewind(&mut self, branch_group: u64, cutoff_seq: u64, new_target: u64) {
        let (now, retired) = (self.now, self.stats.retired_instructions);
        let mut squashed = std::mem::take(&mut self.squash_scratch);
        self.ruu.squash_after_into(cutoff_seq, &mut squashed);
        for e in &squashed {
            self.sched.on_squash(e.seq);
            if let Some((id, _)) = e.fault {
                self.fault_log
                    .resolve(id, FaultFate::SquashedWrongPath, now, retired);
            }
            // Squashed younger branches' checkpoints are dead.
            if e.inst.op.is_control() && e.copy == 0 {
                self.checkpoints.remove(&e.group);
            }
        }
        squashed.clear();
        self.squash_scratch = squashed;
        self.sched.squash_after(cutoff_seq);
        self.lsq.squash_after(cutoff_seq);
        let cp = self
            .checkpoints
            .get(&branch_group)
            .expect("branch group has a checkpoint")
            .clone();
        self.map.restore(&cp);
        self.fetch
            .redirect(new_target, self.now + 1 + self.config.lat.mispredict_extra);
        self.stats.branch_rewinds += 1;
    }

    /// Full rewind (§3.2 Recovery): "discard the entire ROB contents and
    /// restart execution by refetching from the committed next-PC
    /// register."
    pub(crate) fn full_rewind(&mut self, cause: crate::stats::RewindCause) {
        let (now, retired) = (self.now, self.stats.retired_instructions);
        let mut squashed = std::mem::take(&mut self.squash_scratch);
        self.ruu.squash_all_into(&mut squashed);
        for e in &squashed {
            if let Some((id, _)) = e.fault {
                self.fault_log
                    .resolve(id, FaultFate::SquashedByRewind, now, retired);
            }
        }
        squashed.clear();
        self.squash_scratch = squashed;
        self.lsq.squash_all();
        self.sched.clear();
        debug_assert!(self.lsq.is_empty() && self.ruu.is_empty());
        self.checkpoints.clear();
        self.map.clear();
        // Drain-and-filter rather than `clear()`: keep any completion
        // whose entry survives the squash. Today `squash_all` leaves the
        // RUU empty so nothing survives, but filtering by liveness (the
        // same `ruu.get` guard writeback applies when it pops) means a
        // same-cycle `schedule_completion` racing a future partial-rewind
        // variant can never resurrect a stale sequence number.
        self.events
            .retain(|&Reverse((_, seq))| self.ruu.get(seq).is_some());
        self.fu.reset();
        self.fetch.rewind(
            self.committed_next_pc,
            self.now + 1 + self.config.lat.mispredict_extra,
        );
        self.pending_rewind_start = Some(self.now);
        match cause {
            crate::stats::RewindCause::FaultDetected => self.stats.fault_rewinds += 1,
            crate::stats::RewindCause::ControlFlowCheck => self.stats.pc_check_rewinds += 1,
        }
    }

    /// Debug invariant: every replication group in the RUU is contiguous,
    /// complete, and placed so copies have consecutive sequence numbers
    /// (the paper's ⌊i/R⌋ placement rule).
    #[cfg(debug_assertions)]
    pub(crate) fn assert_group_invariants(&self) {
        let r = self.r();
        let mut iter = self.ruu.iter().peekable();
        while let Some(first) = iter.next() {
            assert_eq!(first.copy, 0, "group must start at copy 0");
            for k in 1..r {
                let e = iter.next().expect("incomplete replication group");
                assert_eq!(e.group, first.group, "group interleaved");
                assert_eq!(u64::from(e.copy), k, "copy order broken");
                assert_eq!(e.seq, first.seq + k, "copies not consecutive");
            }
        }
    }

    /// No-op counterpart for builds without `debug_assertions` (the bench
    /// profile compiles unit tests too, so the symbol must exist).
    #[cfg(not(debug_assertions))]
    #[allow(dead_code)]
    pub(crate) fn assert_group_invariants(&self) {}
}

/// Scheduler-structure occupancy reported by
/// [`Processor::scheduler_depths`] (checkpoint tests and debugging use
/// this to prove a snapshot point carries real in-flight state).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SchedulerDepths {
    /// Consumers registered on producer wait-lists (in-flight wakeups).
    pub waiters: usize,
    /// Issue-eligible entries (including this cycle's deferred retries).
    pub ready: usize,
    /// Memory entries parked after a failed issue attempt.
    pub parked_mem: usize,
    /// Stores whose address phase issued but whose datum has not merged.
    pub pending_stores: usize,
    /// Scheduled completion events.
    pub events: usize,
}

/// Schedules a completion event (free function to avoid borrow tangles).
pub(crate) fn schedule(events: &mut BinaryHeap<Reverse<(u64, u64)>>, cycle: u64, seq: u64) {
    events.push(Reverse((cycle, seq)));
}

impl Processor {
    /// Marks the entry at index handle `idx` (sequence `seq`) issued and
    /// schedules its completion event.
    pub(crate) fn schedule_completion_at(&mut self, idx: usize, seq: u64, at: u64) {
        debug_assert_eq!(self.ruu.at(idx).seq, seq, "stale index handle");
        schedule(&mut self.events, at, seq);
        self.ruu.at_mut(idx).state = EntryState::Issued;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::MachineConfig;
    use ftsim_isa::{IntReg, ProgramBuilder};

    fn tiny_program() -> Program {
        let mut b = ProgramBuilder::new();
        b.addi(IntReg::new(1), IntReg::ZERO, 7);
        b.halt();
        b.build().unwrap()
    }

    #[test]
    fn runs_trivial_program_to_halt() {
        let p = tiny_program();
        let mut proc = Processor::new(MachineConfig::ss1(), &p, FaultInjector::none());
        for _ in 0..200 {
            proc.cycle();
            if proc.halted() {
                break;
            }
        }
        assert!(proc.halted());
        assert_eq!(proc.regs().read_int(IntReg::new(1)), 7);
        assert_eq!(proc.stats_snapshot().retired_instructions, 2);
    }

    #[test]
    fn redundant_mode_retires_same_instructions() {
        let p = tiny_program();
        let mut proc = Processor::new(MachineConfig::ss2(), &p, FaultInjector::none());
        for _ in 0..200 {
            proc.cycle();
            if proc.halted() {
                break;
            }
        }
        assert!(proc.halted());
        let s = proc.stats_snapshot();
        assert_eq!(s.retired_instructions, 2);
        assert_eq!(s.retired_entries, 4); // R = 2 entries per instruction
    }

    #[test]
    fn committed_next_pc_tracks_entry() {
        let p = tiny_program();
        let mut proc = Processor::new(MachineConfig::ss1(), &p, FaultInjector::none());
        assert_eq!(proc.committed_next_pc, p.entry());
        while !proc.halted() {
            proc.cycle();
        }
        // After halt commits, next-PC is one past the halt.
        assert_eq!(proc.committed_next_pc, p.entry() + 8);
    }

    #[test]
    fn stats_snapshot_needs_no_mutable_access() {
        let p = tiny_program();
        let mut proc = Processor::new(MachineConfig::ss1(), &p, FaultInjector::none());
        while !proc.halted() {
            proc.cycle();
        }
        let frozen = &proc; // snapshot through a shared reference
        let s = frozen.stats_snapshot();
        assert_eq!(s.retired_instructions, 2);
        assert!(s.fetched > 0, "fetch counters are folded into snapshots");
        #[allow(deprecated)]
        let legacy = proc.stats().clone();
        assert_eq!(legacy.retired_instructions, s.retired_instructions);
        assert_eq!(legacy.fetched, s.fetched);
    }

    #[test]
    fn completion_event_on_rewind_cycle_cannot_resurrect() {
        // A long-latency producer keeps a completion event in flight;
        // a full rewind landing on the same cycle the event is due must
        // drop it (drain-and-filter) rather than let the stale sequence
        // resurrect, and the machine must recover cleanly by refetching
        // from the committed next-PC.
        let r1 = IntReg::new(1);
        let r2 = IntReg::new(2);
        let mut b = ProgramBuilder::new();
        b.addi(r1, IntReg::ZERO, 7);
        b.mul(r2, r1, r1); // multi-cycle: completion scheduled ahead
        b.halt();
        let p = b.build().unwrap();
        let mut proc = Processor::new(MachineConfig::ss1(), &p, FaultInjector::none());
        for _ in 0..400 {
            proc.cycle();
            if !proc.events.is_empty() {
                break;
            }
        }
        assert!(!proc.events.is_empty(), "a completion event is in flight");
        // Advance to the exact cycle the earliest event is due, then force
        // the rewind the commit stage would issue on a detected fault.
        let due = proc.events.peek().expect("event pending").0 .0;
        proc.now = proc.now.max(due);
        proc.full_rewind(crate::stats::RewindCause::FaultDetected);
        assert!(
            proc.events.is_empty(),
            "no event may survive a full rewind (every entry was squashed)"
        );
        for _ in 0..1_000 {
            proc.cycle();
            if proc.halted() {
                break;
            }
        }
        assert!(proc.halted(), "machine recovers after the rewind");
        assert_eq!(proc.regs().read_int(r2), 49);
        assert_eq!(proc.stats_snapshot().fault_rewinds, 1);
    }
}
