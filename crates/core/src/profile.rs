//! Opt-in per-stage wall-time profiling of the pipeline hot loop.
//!
//! With `FTSIM_PROFILE=1` (or [`set_enabled`]),
//! [`Processor::cycle`](crate::pipeline::Processor::cycle) switches to
//! an instrumented twin that counts
//! every stage invocation and samples per-stage wall time on one cycle in
//! 64. The aggregate accumulates in a **thread-local** [`StageProfile`]
//! the harness drains per cell with [`take`].
//!
//! Like the `FTSIM_PLANT` counter, profiling state is deliberately **not**
//! part of [`Checkpoint`](crate::Checkpoint): it observes the machine
//! without being machine state, so records stay byte-identical whether a
//! cell ran cold, forked, or with profiling off. The instrumented cycle
//! calls the same stages, in the same order, under the same conditions —
//! only `Instant::now()` reads are interleaved, and those touch no
//! simulation state and consume no RNG.
//!
//! Sampling (rather than timing every cycle) keeps the overhead under the
//! harness's 5% budget: ten `Instant::now()` calls per ~800ns cycle would
//! cost ~20%, one cycle in 64 costs well under 1%. Call *counts* are exact
//! every cycle; only the nanosecond figures are sampled.

use std::cell::RefCell;
use std::sync::atomic::{AtomicU8, Ordering};

/// Pipeline stage names, indexed like [`StageProfile::calls`]: the order
/// the stages run each cycle (SimpleScalar's reverse traversal).
pub const STAGE_NAMES: [&str; 5] = ["commit", "writeback", "issue", "dispatch", "fetch"];

/// Aggregated per-stage profile over some span of cycles (one cell, in
/// harness use). Obtain via [`take`]; merge spans with
/// [`StageProfile::accumulate`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StageProfile {
    /// Exact number of invocations of each stage (see [`STAGE_NAMES`]).
    /// After `halt` commits only the commit stage still runs, so these
    /// differ across stages.
    pub calls: [u64; 5],
    /// Wall-time nanoseconds spent in each stage **on sampled cycles
    /// only** — scale by `cycles / samples` to estimate totals.
    pub sampled_ns: [u64; 5],
    /// Number of cycles on which wall time was sampled.
    pub samples: u64,
    /// Total cycles this profile spans.
    pub cycles: u64,
}

impl StageProfile {
    /// Whether any cycles were recorded.
    pub fn is_empty(&self) -> bool {
        self.cycles == 0
    }

    /// Folds another span into this one (e.g. merging threads or cells).
    pub fn accumulate(&mut self, other: &StageProfile) {
        for (mine, theirs) in self.calls.iter_mut().zip(other.calls) {
            *mine += theirs;
        }
        for (mine, theirs) in self.sampled_ns.iter_mut().zip(other.sampled_ns) {
            *mine += theirs;
        }
        self.samples += other.samples;
        self.cycles += other.cycles;
    }

    /// Estimated *total* nanoseconds per stage, extrapolated from the
    /// sampled cycles (`sampled_ns * cycles / samples`); zeros when
    /// nothing was sampled.
    pub fn est_total_ns(&self) -> [u64; 5] {
        if self.samples == 0 {
            return [0u64; 5];
        }
        self.sampled_ns
            .map(|ns| ns.saturating_mul(self.cycles) / self.samples)
    }
}

/// 0 = undecided (consult `FTSIM_PROFILE`), 1 = off, 2 = on.
static ENABLED: AtomicU8 = AtomicU8::new(0);

/// Whether stage profiling is on for this process. Decided once from
/// `FTSIM_PROFILE` (any value but `0` enables), overridable at runtime
/// with [`set_enabled`].
#[inline]
pub fn enabled() -> bool {
    match ENABLED.load(Ordering::Relaxed) {
        2 => true,
        1 => false,
        _ => {
            let on =
                matches!(std::env::var("FTSIM_PROFILE"), Ok(v) if v.trim() != "0" && !v.is_empty());
            ENABLED.store(if on { 2 } else { 1 }, Ordering::Relaxed);
            on
        }
    }
}

/// Forces profiling on or off, overriding `FTSIM_PROFILE` (benches use
/// this to measure the same binary both ways).
pub fn set_enabled(on: bool) {
    ENABLED.store(if on { 2 } else { 1 }, Ordering::Relaxed);
}

thread_local! {
    static PROFILE: RefCell<StageProfile> = const { RefCell::new(StageProfile {
        calls: [0; 5],
        sampled_ns: [0; 5],
        samples: 0,
        cycles: 0,
    }) };
}

/// Folds one instrumented cycle into the thread-local aggregate. Called
/// by the profiled cycle path only.
pub(crate) fn record(ran: &[bool; 5], ns: &[u64; 5], sampled: bool) {
    PROFILE.with(|p| {
        let mut p = p.borrow_mut();
        for (i, &stage_ran) in ran.iter().enumerate() {
            if stage_ran {
                p.calls[i] += 1;
                if sampled {
                    p.sampled_ns[i] += ns[i];
                }
            }
        }
        if sampled {
            p.samples += 1;
        }
        p.cycles += 1;
    });
}

/// Drains this thread's aggregate, returning it and resetting to zero.
/// The harness calls this after each cell so per-cell profiles do not
/// bleed into each other on reused worker threads.
pub fn take() -> StageProfile {
    PROFILE.with(|p| std::mem::take(&mut *p.borrow_mut()))
}

/// Resets this thread's aggregate without reading it.
pub fn reset() {
    let _ = take();
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::MachineConfig;
    use crate::pipeline::Processor;
    use ftsim_faults::FaultInjector;
    use ftsim_isa::asm;

    fn run_to_halt(prof: bool) -> (crate::stats::SimStats, StageProfile) {
        let program = asm::assemble(
            r"
                addi r1, r0, 64
                addi r2, r0, 0
            loop:
                add  r2, r2, r1
                addi r1, r1, -1
                bne  r1, r0, loop
                halt
            ",
        )
        .unwrap();
        set_enabled(prof);
        reset();
        let mut proc = Processor::new(MachineConfig::ss2(), &program, FaultInjector::none());
        let mut guard = 0u64;
        while !proc.halted() && guard < 100_000 {
            proc.cycle();
            guard += 1;
        }
        set_enabled(false);
        (proc.stats_snapshot(), take())
    }

    #[test]
    fn profiled_run_is_cycle_identical_and_counts_stages() {
        let (base, empty) = run_to_halt(false);
        let (prof, profile) = run_to_halt(true);
        // Semantics unchanged: identical cycle/retire counts either way.
        assert_eq!(base.cycles, prof.cycles);
        assert_eq!(base.retired_instructions, prof.retired_instructions);
        // Profiling off records nothing.
        assert!(empty.is_empty());
        // Profiling on: commit ran every cycle, the front-end stages only
        // until halt committed.
        assert_eq!(profile.cycles, prof.cycles);
        assert_eq!(profile.calls[0], prof.cycles);
        assert!(profile.calls[4] <= profile.calls[0]);
        assert!(
            profile.samples >= 1,
            "a run this long must hit a sample cycle"
        );
        let est = profile.est_total_ns();
        assert!(est.iter().any(|&ns| ns > 0));
    }

    #[test]
    fn accumulate_sums_fields() {
        let mut a = StageProfile {
            calls: [1, 2, 3, 4, 5],
            sampled_ns: [10, 20, 30, 40, 50],
            samples: 2,
            cycles: 7,
        };
        let b = a;
        a.accumulate(&b);
        assert_eq!(a.calls, [2, 4, 6, 8, 10]);
        assert_eq!(a.sampled_ns, [20, 40, 60, 80, 100]);
        assert_eq!(a.samples, 4);
        assert_eq!(a.cycles, 14);
    }
}
