//! Register renaming: the single ECC-protected map table and its
//! per-branch checkpoints.
//!
//! The paper's renaming trick (§3.2): because all `R` copies of an
//! instruction occupy consecutive ROB entries, only the operands of copy 0
//! need a map-table lookup — copy *k*'s producer is the mapped entry plus
//! offset *k*. One map table therefore serves any degree of redundancy; its
//! contents must be ECC-protected (we model that by never targeting it
//! with fault injection).

use ftsim_isa::RegRef;

const FLAT_REGS: usize = 64;

/// Maps each architectural register to the sequence number of *copy 0* of
/// the youngest in-flight producer group, or `None` when the committed
/// register file holds the current value.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MapTable {
    map: [Option<u64>; FLAT_REGS],
}

impl Default for MapTable {
    fn default() -> Self {
        Self::new()
    }
}

impl MapTable {
    /// A map with every register committed.
    pub fn new() -> Self {
        Self {
            map: [None; FLAT_REGS],
        }
    }

    /// The copy-0 producer sequence for `reg`, if any in flight.
    pub fn lookup(&self, reg: RegRef) -> Option<u64> {
        self.map[reg.flat_index()]
    }

    /// Records `copy0_seq` as the youngest producer of `reg`. Writes to the
    /// hardwired zero register are ignored.
    pub fn define(&mut self, reg: RegRef, copy0_seq: u64) {
        if !reg.is_zero_reg() {
            self.map[reg.flat_index()] = Some(copy0_seq);
        }
    }

    /// Clears the mapping for `reg` if it still points at `copy0_seq`
    /// (called when that producer group commits).
    pub fn retire(&mut self, reg: RegRef, copy0_seq: u64) {
        let slot = &mut self.map[reg.flat_index()];
        if *slot == Some(copy0_seq) {
            *slot = None;
        }
    }

    /// Resets every mapping (full rewind: all values live in the committed
    /// register file).
    pub fn clear(&mut self) {
        self.map = [None; FLAT_REGS];
    }

    /// Snapshots the table (taken after dispatching a branch group).
    pub fn checkpoint(&self) -> MapCheckpoint {
        MapCheckpoint { map: self.map }
    }

    /// Restores a snapshot (branch rewind).
    pub fn restore(&mut self, cp: &MapCheckpoint) {
        self.map = cp.map;
    }

    /// Number of registers currently mapped to in-flight producers.
    pub fn live_mappings(&self) -> usize {
        self.map.iter().filter(|m| m.is_some()).count()
    }
}

/// An immutable snapshot of the map table.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MapCheckpoint {
    map: [Option<u64>; FLAT_REGS],
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn define_lookup_retire() {
        let mut m = MapTable::new();
        let r5 = RegRef::int(5);
        assert_eq!(m.lookup(r5), None);
        m.define(r5, 100);
        assert_eq!(m.lookup(r5), Some(100));
        m.define(r5, 200); // younger producer
        m.retire(r5, 100); // stale retire is a no-op
        assert_eq!(m.lookup(r5), Some(200));
        m.retire(r5, 200);
        assert_eq!(m.lookup(r5), None);
    }

    #[test]
    fn zero_register_never_mapped() {
        let mut m = MapTable::new();
        m.define(RegRef::int(0), 7);
        assert_eq!(m.lookup(RegRef::int(0)), None);
        // f0 is a real register though.
        m.define(RegRef::fp(0), 7);
        assert_eq!(m.lookup(RegRef::fp(0)), Some(7));
    }

    #[test]
    fn int_and_fp_do_not_alias() {
        let mut m = MapTable::new();
        m.define(RegRef::int(3), 1);
        m.define(RegRef::fp(3), 2);
        assert_eq!(m.lookup(RegRef::int(3)), Some(1));
        assert_eq!(m.lookup(RegRef::fp(3)), Some(2));
        assert_eq!(m.live_mappings(), 2);
    }

    #[test]
    fn checkpoint_restore() {
        let mut m = MapTable::new();
        m.define(RegRef::int(1), 10);
        let cp = m.checkpoint();
        m.define(RegRef::int(1), 20);
        m.define(RegRef::int(2), 30);
        m.restore(&cp);
        assert_eq!(m.lookup(RegRef::int(1)), Some(10));
        assert_eq!(m.lookup(RegRef::int(2)), None);
    }

    #[test]
    fn clear_resets_all() {
        let mut m = MapTable::new();
        m.define(RegRef::int(1), 1);
        m.define(RegRef::fp(9), 2);
        m.clear();
        assert_eq!(m.live_mappings(), 0);
    }
}
