//! The register update unit: a circular in-order buffer of [`Entry`]s.

use crate::entry::Entry;
use std::collections::VecDeque;

/// The RUU (reorder buffer with integrated rename registers, after
/// Sohi's RUU [17] as used by SimpleScalar).
///
/// Entries are kept in dispatch (sequence) order. Replication groups are
/// dispatched and retired atomically, so the `R` copies of an instruction
/// always occupy consecutive positions — the invariant the commit-stage
/// cross-check indexes by.
#[derive(Debug, Clone, Default)]
pub struct Ruu {
    entries: VecDeque<Entry>,
    capacity: usize,
}

impl Ruu {
    /// Creates an empty RUU with the given capacity.
    pub fn new(capacity: usize) -> Self {
        Self {
            entries: VecDeque::with_capacity(capacity),
            capacity,
        }
    }

    /// Configured capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Live entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// `true` when no entries are live.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Free slots.
    pub fn free(&self) -> usize {
        self.capacity - self.entries.len()
    }

    /// Appends a freshly dispatched entry.
    ///
    /// # Panics
    ///
    /// Panics if the RUU is full or `entry.seq` is not monotonically
    /// increasing.
    pub fn push(&mut self, entry: Entry) {
        assert!(self.entries.len() < self.capacity, "RUU overflow");
        if let Some(last) = self.entries.back() {
            assert!(entry.seq > last.seq, "RUU sequence must increase");
        }
        self.entries.push_back(entry);
    }

    /// Position of `seq` in the buffer, if present.
    fn position(&self, seq: u64) -> Option<usize> {
        let i = self.entries.partition_point(|e| e.seq < seq);
        (i < self.entries.len() && self.entries[i].seq == seq).then_some(i)
    }

    /// Immutable entry lookup by sequence number.
    pub fn get(&self, seq: u64) -> Option<&Entry> {
        self.position(seq).map(|i| &self.entries[i])
    }

    /// Mutable entry lookup by sequence number.
    pub fn get_mut(&mut self, seq: u64) -> Option<&mut Entry> {
        self.position(seq).map(|i| &mut self.entries[i])
    }

    /// The oldest entry.
    pub fn head(&self) -> Option<&Entry> {
        self.entries.front()
    }

    /// The oldest replication group: all leading entries sharing the head's
    /// `group`. Returns an empty slice when the RUU is empty.
    pub fn head_group(&self) -> Vec<&Entry> {
        let Some(first) = self.entries.front() else {
            return Vec::new();
        };
        self.entries
            .iter()
            .take_while(|e| e.group == first.group)
            .collect()
    }

    /// Removes the oldest `n` entries (used by commit after a group
    /// retires).
    ///
    /// # Panics
    ///
    /// Panics if fewer than `n` entries are live.
    pub fn pop_front(&mut self, n: usize) -> Vec<Entry> {
        assert!(n <= self.entries.len(), "RUU underflow");
        self.entries.drain(..n).collect()
    }

    /// Removes every entry with `seq > cutoff` (branch rewind), returning
    /// the squashed entries youngest-last.
    pub fn squash_after(&mut self, cutoff: u64) -> Vec<Entry> {
        let keep = self.entries.partition_point(|e| e.seq <= cutoff);
        self.entries.drain(keep..).collect()
    }

    /// Removes everything (full rewind), returning the squashed entries.
    pub fn squash_all(&mut self) -> Vec<Entry> {
        self.entries.drain(..).collect()
    }

    /// Iterates over live entries oldest-first.
    pub fn iter(&self) -> impl Iterator<Item = &Entry> {
        self.entries.iter()
    }

    /// Iterates mutably over live entries oldest-first.
    pub fn iter_mut(&mut self) -> impl Iterator<Item = &mut Entry> {
        self.entries.iter_mut()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ftsim_isa::Inst;

    fn entry(seq: u64, group: u64, copy: u8) -> Entry {
        Entry::new(seq, group, copy, 0x1000 + 4 * group, Inst::nop(), 0)
    }

    #[test]
    fn push_lookup_pop() {
        let mut r = Ruu::new(8);
        for s in 0..4 {
            r.push(entry(s, s / 2, (s % 2) as u8));
        }
        assert_eq!(r.len(), 4);
        assert_eq!(r.free(), 4);
        assert_eq!(r.get(2).unwrap().seq, 2);
        assert!(r.get(9).is_none());
        let popped = r.pop_front(2);
        assert_eq!(popped.len(), 2);
        assert_eq!(r.head().unwrap().seq, 2);
    }

    #[test]
    fn head_group_takes_all_copies() {
        let mut r = Ruu::new(8);
        r.push(entry(0, 0, 0));
        r.push(entry(1, 0, 1));
        r.push(entry(2, 1, 0));
        let g = r.head_group();
        assert_eq!(g.len(), 2);
        assert!(g.iter().all(|e| e.group == 0));
    }

    #[test]
    fn squash_after_removes_younger_only() {
        let mut r = Ruu::new(8);
        for s in 0..6 {
            r.push(entry(s, s, 0));
        }
        let squashed = r.squash_after(2);
        assert_eq!(squashed.len(), 3);
        assert_eq!(squashed[0].seq, 3);
        assert_eq!(r.len(), 3);
        assert_eq!(r.entries.back().unwrap().seq, 2);
    }

    #[test]
    fn squash_with_sequence_gaps() {
        let mut r = Ruu::new(8);
        r.push(entry(0, 0, 0));
        r.push(entry(5, 1, 0)); // gap after an earlier squash
        r.push(entry(6, 2, 0));
        assert_eq!(r.squash_after(4).len(), 2);
        assert_eq!(r.len(), 1);
        assert!(r.get(5).is_none());
        assert!(r.get(0).is_some());
    }

    #[test]
    fn squash_all_empties() {
        let mut r = Ruu::new(4);
        r.push(entry(0, 0, 0));
        r.push(entry(1, 1, 0));
        assert_eq!(r.squash_all().len(), 2);
        assert!(r.is_empty());
        assert!(r.head_group().is_empty());
    }

    #[test]
    #[should_panic(expected = "RUU overflow")]
    fn overflow_panics() {
        let mut r = Ruu::new(1);
        r.push(entry(0, 0, 0));
        r.push(entry(1, 1, 0));
    }

    #[test]
    #[should_panic(expected = "sequence must increase")]
    fn non_monotonic_rejected() {
        let mut r = Ruu::new(4);
        r.push(entry(5, 0, 0));
        r.push(entry(3, 1, 0));
    }
}
