//! The register update unit: a circular in-order buffer of [`Entry`]s.

use crate::entry::Entry;
use std::collections::VecDeque;

/// The RUU (reorder buffer with integrated rename registers, after
/// Sohi's RUU [17] as used by SimpleScalar).
///
/// Entries are kept in dispatch (sequence) order. Replication groups are
/// dispatched and retired atomically, so the `R` copies of an instruction
/// always occupy consecutive positions — the invariant the commit-stage
/// cross-check indexes by.
#[derive(Debug, Clone, Default)]
pub struct Ruu {
    entries: VecDeque<Entry>,
    capacity: usize,
}

impl Ruu {
    /// Creates an empty RUU with the given capacity.
    pub fn new(capacity: usize) -> Self {
        Self {
            entries: VecDeque::with_capacity(capacity),
            capacity,
        }
    }

    /// Configured capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Live entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// `true` when no entries are live.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Free slots.
    pub fn free(&self) -> usize {
        self.capacity - self.entries.len()
    }

    /// Appends a freshly dispatched entry.
    ///
    /// # Panics
    ///
    /// Panics if the RUU is full or `entry.seq` is not monotonically
    /// increasing.
    pub fn push(&mut self, entry: Entry) {
        assert!(self.entries.len() < self.capacity, "RUU overflow");
        if let Some(last) = self.entries.back() {
            assert!(entry.seq > last.seq, "RUU sequence must increase");
        }
        self.entries.push_back(entry);
    }

    /// Position (index handle) of `seq` in the buffer, if present.
    ///
    /// The returned index stays valid until the next structural mutation
    /// (`push`, `pop_front`, `squash_*`): the stage code resolves a
    /// sequence number once and threads the handle through its per-entry
    /// work instead of re-running the binary search at every access.
    ///
    /// Sequences are strictly ascending, so the buffer is gap-free exactly
    /// when its sequence span equals its length — the common state between
    /// rewinds — and the slot is then computed directly; only a buffer
    /// holding a squash-induced gap pays the binary search.
    pub fn position(&self, seq: u64) -> Option<usize> {
        let first = self.entries.front()?.seq;
        let last = self.entries.back().expect("front exists").seq;
        if seq < first || seq > last {
            return None;
        }
        if last - first + 1 == self.entries.len() as u64 {
            return Some((seq - first) as usize);
        }
        let i = self.entries.partition_point(|e| e.seq < seq);
        (i < self.entries.len() && self.entries[i].seq == seq).then_some(i)
    }

    /// The entry at an index handle obtained from [`Ruu::position`].
    ///
    /// # Panics
    ///
    /// Panics if `idx` is out of bounds (a stale handle).
    pub fn at(&self, idx: usize) -> &Entry {
        &self.entries[idx]
    }

    /// Mutable access through an index handle.
    ///
    /// # Panics
    ///
    /// Panics if `idx` is out of bounds (a stale handle).
    pub fn at_mut(&mut self, idx: usize) -> &mut Entry {
        &mut self.entries[idx]
    }

    /// Immutable entry lookup by sequence number.
    pub fn get(&self, seq: u64) -> Option<&Entry> {
        self.position(seq).map(|i| &self.entries[i])
    }

    /// Mutable entry lookup by sequence number.
    pub fn get_mut(&mut self, seq: u64) -> Option<&mut Entry> {
        self.position(seq).map(|i| &mut self.entries[i])
    }

    /// The oldest entry.
    pub fn head(&self) -> Option<&Entry> {
        self.entries.front()
    }

    /// The oldest replication group: all leading entries sharing the head's
    /// `group`. Empty when the RUU is empty; borrows, never allocates.
    pub fn head_group(&self) -> impl Iterator<Item = &Entry> {
        let group = self.entries.front().map(|e| e.group);
        self.entries
            .iter()
            .take_while(move |e| Some(e.group) == group)
    }

    /// Drops the oldest `n` entries (used by commit after a group
    /// retires).
    ///
    /// # Panics
    ///
    /// Panics if fewer than `n` entries are live.
    pub fn pop_front(&mut self, n: usize) {
        assert!(n <= self.entries.len(), "RUU underflow");
        self.entries.drain(..n);
    }

    /// Removes every entry with `seq > cutoff` (branch rewind), appending
    /// the squashed entries youngest-last to `out` (a caller-owned scratch
    /// buffer, so the steady state allocates nothing).
    pub fn squash_after_into(&mut self, cutoff: u64, out: &mut Vec<Entry>) {
        let keep = self.entries.partition_point(|e| e.seq <= cutoff);
        out.extend(self.entries.drain(keep..));
    }

    /// Removes everything (full rewind), appending the squashed entries
    /// to `out`.
    pub fn squash_all_into(&mut self, out: &mut Vec<Entry>) {
        out.extend(self.entries.drain(..));
    }

    /// Iterates over live entries oldest-first.
    pub fn iter(&self) -> impl Iterator<Item = &Entry> {
        self.entries.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ftsim_isa::Inst;

    fn entry(seq: u64, group: u64, copy: u8) -> Entry {
        Entry::new(seq, group, copy, 0x1000 + 4 * group, Inst::nop(), 0)
    }

    #[test]
    fn push_lookup_pop() {
        let mut r = Ruu::new(8);
        for s in 0..4 {
            r.push(entry(s, s / 2, (s % 2) as u8));
        }
        assert_eq!(r.len(), 4);
        assert_eq!(r.free(), 4);
        assert_eq!(r.get(2).unwrap().seq, 2);
        assert!(r.get(9).is_none());
        r.pop_front(2);
        assert_eq!(r.len(), 2);
        assert_eq!(r.head().unwrap().seq, 2);
    }

    #[test]
    fn position_handles_resolve_entries() {
        let mut r = Ruu::new(8);
        for s in 0..4 {
            r.push(entry(s, s, 0));
        }
        let idx = r.position(2).unwrap();
        assert_eq!(r.at(idx).seq, 2);
        r.at_mut(idx).result = Some(7);
        assert_eq!(r.get(2).unwrap().result, Some(7));
        assert!(r.position(9).is_none());
    }

    #[test]
    fn head_group_takes_all_copies() {
        let mut r = Ruu::new(8);
        r.push(entry(0, 0, 0));
        r.push(entry(1, 0, 1));
        r.push(entry(2, 1, 0));
        let g: Vec<_> = r.head_group().collect();
        assert_eq!(g.len(), 2);
        assert!(g.iter().all(|e| e.group == 0));
    }

    #[test]
    fn squash_after_removes_younger_only() {
        let mut r = Ruu::new(8);
        for s in 0..6 {
            r.push(entry(s, s, 0));
        }
        let mut squashed = Vec::new();
        r.squash_after_into(2, &mut squashed);
        assert_eq!(squashed.len(), 3);
        assert_eq!(squashed[0].seq, 3);
        assert_eq!(r.len(), 3);
        assert_eq!(r.entries.back().unwrap().seq, 2);
    }

    #[test]
    fn squash_with_sequence_gaps() {
        let mut r = Ruu::new(8);
        r.push(entry(0, 0, 0));
        r.push(entry(5, 1, 0)); // gap after an earlier squash
        r.push(entry(6, 2, 0));
        let mut squashed = Vec::new();
        r.squash_after_into(4, &mut squashed);
        assert_eq!(squashed.len(), 2);
        assert_eq!(r.len(), 1);
        assert!(r.get(5).is_none());
        assert!(r.get(0).is_some());
    }

    #[test]
    fn squash_all_empties() {
        let mut r = Ruu::new(4);
        r.push(entry(0, 0, 0));
        r.push(entry(1, 1, 0));
        let mut squashed = Vec::new();
        r.squash_all_into(&mut squashed);
        assert_eq!(squashed.len(), 2);
        assert!(r.is_empty());
        assert_eq!(r.head_group().count(), 0);
    }

    #[test]
    #[should_panic(expected = "RUU overflow")]
    fn overflow_panics() {
        let mut r = Ruu::new(1);
        r.push(entry(0, 0, 0));
        r.push(entry(1, 1, 0));
    }

    #[test]
    #[should_panic(expected = "sequence must increase")]
    fn non_monotonic_rejected() {
        let mut r = Ruu::new(4);
        r.push(entry(5, 0, 0));
        r.push(entry(3, 1, 0));
    }
}
