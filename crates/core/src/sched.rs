//! The event-driven scheduler core: per-producer consumer wait-lists, the
//! incremental ready queue, and the pending-store list.
//!
//! The seed implementation rediscovered schedulable work by scanning the
//! whole RUU every cycle (wakeup broadcast, ready filter, store-datum
//! merge) — O(occupancy) per cycle regardless of how much actually
//! happened. This module makes each of those paths O(work):
//!
//! * **Wait-lists** — dispatch registers a consumer with each producer it
//!   waits on; a producer's completion walks only its actual consumers.
//! * **Ready queue** — entries enter when they become issue-eligible
//!   (dispatch or wakeup) and leave when issued; a min-heap on the
//!   sequence number reproduces the seed's oldest-first scan order
//!   exactly. Entries that lose a structural hazard are deferred and
//!   re-queued for the next cycle, just as they stayed `Ready` under the
//!   scan.
//! * **Pending stores** — stores whose address phase has issued but whose
//!   datum has not yet merged, kept in sequence order.
//!
//! Squash interaction: sequence numbers are never reused, so the ready
//! queue and pending-store list tolerate stale entries — consumers gone
//! from the RUU are dropped when popped (the same guard the event heap
//! has always used). Wait-lists are removed eagerly when their *producer*
//! is squashed (the list dies with the entry) and lazily when a
//! *consumer* is squashed (the wakeup walk skips it). All containers
//! recycle their backing storage, so the steady-state cycle loop
//! allocates nothing.

use crate::seqhash::SeqHashMap;
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Upper bound on recycled wait-list vectors kept around; beyond this the
/// extras are dropped (a producer rarely has more than a handful of live
/// consumers, so the pool stays tiny in practice).
const POOL_CAP: usize = 64;

/// Scheduler bookkeeping owned by the [`Processor`](crate::Processor).
///
/// `Clone` is what checkpointing leans on: every container (wait-lists,
/// ready queue, deferred/parked lists, pending stores) is plain owned
/// data, so a clone captures the exact scheduling state mid-flight.
#[derive(Debug, Default, Clone)]
pub(crate) struct Scheduler {
    /// Producer sequence → consumers whose operands wait on it.
    wait_lists: SeqHashMap<u64, Vec<u64>>,
    /// Recycled wait-list vectors.
    pool: Vec<Vec<u64>>,
    /// Issue-eligible entries, popped oldest-first.
    ready: BinaryHeap<Reverse<u64>>,
    /// Entries that failed to issue this cycle (structural hazard) and
    /// retry next cycle.
    deferred: Vec<u64>,
    /// Memory entries that failed an issue attempt (port lost, dependence
    /// conflict, shared access pending), in ascending sequence order.
    /// They retry while each cycle's data ports last and are skipped for
    /// free once the ports are gone.
    parked_mem: Vec<u64>,
    /// Scratch buffer the issue walk fills with the next cycle's parked
    /// list (swapped with `parked_mem`, so neither ever reallocates).
    parked_scratch: Vec<u64>,
    /// Stores whose address phase issued but whose datum has not merged,
    /// in ascending sequence order.
    pending_stores: Vec<u64>,
}

impl Scheduler {
    /// Registers `consumer` to be woken when `producer` completes.
    pub(crate) fn add_waiter(&mut self, producer: u64, consumer: u64) {
        self.wait_lists
            .entry(producer)
            .or_insert_with(|| self.pool.pop().unwrap_or_default())
            .push(consumer);
    }

    /// Detaches `producer`'s wait-list for the wakeup walk; the caller
    /// returns the vector via [`Scheduler::recycle`].
    pub(crate) fn take_wait_list(&mut self, producer: u64) -> Option<Vec<u64>> {
        self.wait_lists.remove(&producer)
    }

    /// Returns a drained wait-list vector to the pool.
    pub(crate) fn recycle(&mut self, mut list: Vec<u64>) {
        list.clear();
        if self.pool.len() < POOL_CAP {
            self.pool.push(list);
        }
    }

    /// Enqueues a newly issue-eligible entry.
    pub(crate) fn push_ready(&mut self, seq: u64) {
        self.ready.push(Reverse(seq));
    }

    /// Pops the oldest issue-eligible entry.
    pub(crate) fn pop_ready(&mut self) -> Option<u64> {
        self.ready.pop().map(|Reverse(seq)| seq)
    }

    /// The oldest issue-eligible entry, without removing it.
    pub(crate) fn peek_ready(&self) -> Option<u64> {
        self.ready.peek().map(|&Reverse(seq)| seq)
    }

    /// Detaches `(parked list, empty scratch)` for the issue walk; the
    /// caller hands both back via [`Scheduler::put_parked_mem`].
    pub(crate) fn take_parked_mem(&mut self) -> (Vec<u64>, Vec<u64>) {
        debug_assert!(self.parked_scratch.is_empty());
        (
            std::mem::take(&mut self.parked_mem),
            std::mem::take(&mut self.parked_scratch),
        )
    }

    /// Restores the parked-memory list after an issue walk: `next`
    /// (the refilled buffer) becomes the live list, `old` (now drained)
    /// becomes the scratch for the next walk.
    pub(crate) fn put_parked_mem(&mut self, mut old: Vec<u64>, next: Vec<u64>) {
        debug_assert!(next.windows(2).all(|w| w[0] < w[1]));
        old.clear();
        self.parked_mem = next;
        self.parked_scratch = old;
    }

    /// Parks an entry that failed to issue (tried once this cycle; the
    /// seed's scan likewise retried hazard losers only on later cycles).
    pub(crate) fn defer_ready(&mut self, seq: u64) {
        self.deferred.push(seq);
    }

    /// Re-queues every deferred entry for the next issue cycle.
    pub(crate) fn flush_deferred(&mut self) {
        for seq in self.deferred.drain(..) {
            self.ready.push(Reverse(seq));
        }
    }

    /// Records a store whose address phase issued and whose datum is
    /// outstanding. Out-of-order arrival (an older store winning its port
    /// a cycle late) inserts in place to keep the merge walk in the
    /// seed's sequence order.
    pub(crate) fn add_pending_store(&mut self, seq: u64) {
        match self.pending_stores.last() {
            Some(&last) if last > seq => {
                let i = self.pending_stores.partition_point(|&s| s < seq);
                self.pending_stores.insert(i, seq);
            }
            _ => self.pending_stores.push(seq),
        }
    }

    /// Detaches the pending-store list for the merge walk; the caller
    /// returns it via [`Scheduler::put_pending_stores`].
    pub(crate) fn take_pending_stores(&mut self) -> Vec<u64> {
        std::mem::take(&mut self.pending_stores)
    }

    /// Restores the (retained) pending-store list after a merge walk.
    pub(crate) fn put_pending_stores(&mut self, list: Vec<u64>) {
        debug_assert!(self.pending_stores.is_empty());
        self.pending_stores = list;
    }

    /// Occupancy of each scheduler structure: `(wait-list consumers,
    /// ready entries, parked memory entries, pending stores)`. Deferred
    /// entries are counted as ready — they re-enter the queue before the
    /// next issue cycle.
    pub(crate) fn depths(&self) -> (usize, usize, usize, usize) {
        (
            self.wait_lists.values().map(Vec::len).sum(),
            self.ready.len() + self.deferred.len(),
            self.parked_mem.len(),
            self.pending_stores.len(),
        )
    }

    /// A squashed entry's producer role dies with it: drop its wait-list.
    /// (Its consumer role is cleaned lazily — wakeup walks skip sequence
    /// numbers no longer in the RUU.)
    pub(crate) fn on_squash(&mut self, producer_seq: u64) {
        if let Some(list) = self.wait_lists.remove(&producer_seq) {
            self.recycle(list);
        }
    }

    /// Branch rewind: drops pending stores and parked memory entries
    /// younger than `cutoff`. Stale ready-queue entries are cleaned
    /// lazily at pop time.
    pub(crate) fn squash_after(&mut self, cutoff: u64) {
        self.pending_stores.retain(|&s| s <= cutoff);
        self.parked_mem.retain(|&s| s <= cutoff);
    }

    /// Full rewind: every in-flight entry is gone.
    pub(crate) fn clear(&mut self) {
        let pool = &mut self.pool;
        for (_, mut list) in self.wait_lists.drain() {
            list.clear();
            if pool.len() < POOL_CAP {
                pool.push(list);
            }
        }
        self.ready.clear();
        self.deferred.clear();
        self.parked_mem.clear();
        self.pending_stores.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ready_queue_pops_oldest_first() {
        let mut s = Scheduler::default();
        s.push_ready(5);
        s.push_ready(2);
        s.push_ready(9);
        assert_eq!(s.pop_ready(), Some(2));
        s.defer_ready(5); // popped 5 would retry next cycle
        assert_eq!(s.pop_ready(), Some(5));
        assert_eq!(s.pop_ready(), Some(9));
        assert_eq!(s.pop_ready(), None);
        s.flush_deferred();
        assert_eq!(s.pop_ready(), Some(5));
    }

    #[test]
    fn wait_lists_round_trip_through_pool() {
        let mut s = Scheduler::default();
        s.add_waiter(3, 10);
        s.add_waiter(3, 11);
        assert!(s.take_wait_list(4).is_none());
        let list = s.take_wait_list(3).unwrap();
        assert_eq!(list, vec![10, 11]);
        s.recycle(list);
        s.add_waiter(7, 20);
        assert_eq!(s.take_wait_list(7).unwrap(), vec![20]);
    }

    #[test]
    fn pending_stores_stay_sorted() {
        let mut s = Scheduler::default();
        s.add_pending_store(4);
        s.add_pending_store(9);
        s.add_pending_store(6); // late arrival inserts in order
        assert_eq!(s.take_pending_stores(), vec![4, 6, 9]);
        s.put_pending_stores(Vec::new());
        s.add_pending_store(1);
        s.squash_after(0);
        assert!(s.take_pending_stores().is_empty());
    }

    #[test]
    fn parked_mem_round_trips_and_squashes() {
        let mut s = Scheduler::default();
        let (parked, mut keep) = s.take_parked_mem();
        assert!(parked.is_empty());
        keep.push(3);
        keep.push(8);
        s.put_parked_mem(parked, keep);
        s.squash_after(5);
        let (parked, keep) = s.take_parked_mem();
        assert_eq!(parked, vec![3]);
        s.put_parked_mem(parked, keep); // keep (empty) becomes the list
        let (parked, _keep) = s.take_parked_mem();
        assert!(parked.is_empty());
    }

    #[test]
    fn clear_empties_everything() {
        let mut s = Scheduler::default();
        s.add_waiter(1, 2);
        s.push_ready(2);
        s.defer_ready(3);
        s.add_pending_store(4);
        let (parked, mut keep) = s.take_parked_mem();
        keep.push(5);
        s.put_parked_mem(parked, keep);
        s.clear();
        assert!(s.take_wait_list(1).is_none());
        assert_eq!(s.pop_ready(), None);
        assert_eq!(s.peek_ready(), None);
        s.flush_deferred();
        assert_eq!(s.pop_ready(), None);
        assert!(s.take_pending_stores().is_empty());
        let (parked, _keep) = s.take_parked_mem();
        assert!(parked.is_empty());
    }
}
