//! A trivial multiplicative hasher for maps keyed by sequence/group
//! numbers.
//!
//! The scheduler's wait-lists and the per-branch map checkpoints are
//! `HashMap`s keyed by monotonically increasing `u64`s. The default
//! SipHash is DoS-resistant but costs more than the lookup it guards;
//! these keys are simulator-internal (never attacker-controlled), so a
//! single Fibonacci multiply gives a well-mixed bucket index at a fraction
//! of the cost. Map *iteration order* must stay unobservable — callers only
//! get/insert/remove by key, or drain into order-insensitive pools.

use std::collections::HashMap;
use std::hash::{BuildHasherDefault, Hasher};

/// Multiplicative hasher over the written words (Fibonacci hashing).
#[derive(Debug, Default, Clone)]
pub(crate) struct SeqHasher(u64);

/// 2^64 / φ, the usual Fibonacci-hashing multiplier.
const PHI: u64 = 0x9e37_79b9_7f4a_7c15;

impl Hasher for SeqHasher {
    fn finish(&self) -> u64 {
        self.0
    }

    fn write(&mut self, bytes: &[u8]) {
        // Generic fallback (derived tuple keys route through the typed
        // writers below; this covers any remaining field kinds).
        for &b in bytes {
            self.write_u8(b);
        }
    }

    fn write_u8(&mut self, v: u8) {
        self.write_u64(u64::from(v));
    }

    fn write_u64(&mut self, v: u64) {
        self.0 = (self.0 ^ v).wrapping_mul(PHI).rotate_left(29);
    }
}

/// A `HashMap` using [`SeqHasher`].
pub(crate) type SeqHashMap<K, V> = HashMap<K, V, BuildHasherDefault<SeqHasher>>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_round_trips_and_distinguishes_keys() {
        let mut m: SeqHashMap<u64, u32> = SeqHashMap::default();
        for k in 0..1_000u64 {
            m.insert(k, k as u32 * 3);
        }
        assert_eq!(m.len(), 1_000);
        for k in 0..1_000u64 {
            assert_eq!(m.remove(&k), Some(k as u32 * 3));
        }
        assert!(m.is_empty());
    }

    #[test]
    fn consecutive_keys_spread() {
        use std::hash::{BuildHasher, BuildHasherDefault};
        let b: BuildHasherDefault<SeqHasher> = BuildHasherDefault::default();
        let h = |k: u64| {
            let mut s = b.build_hasher();
            s.write_u64(k);
            s.finish()
        };
        // Adjacent keys must land in different low-bit buckets most of the
        // time (HashMap uses the low bits of the hash).
        let buckets: std::collections::HashSet<u64> = (0..64).map(|k| h(k) & 63).collect();
        assert!(
            buckets.len() > 32,
            "only {} distinct buckets",
            buckets.len()
        );
    }
}
