//! The `Simulator` facade: run a program, gather results, verify against
//! the in-order oracle.

use crate::build::{BuildError, SimBuilder};
use crate::checkpoint::Checkpoint;
use crate::config::MachineConfig;
use crate::pipeline::Processor;
use crate::stats::SimStats;
use ftsim_faults::{FaultCounts, FaultInjector};
use ftsim_isa::{EmuError, Emulator, Program};
use std::fmt;
use std::sync::Arc;

/// How to validate the out-of-order machine against the in-order oracle
/// (the paper's dual committed-state sanity check, §5.1.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum OracleMode {
    /// No oracle execution (fastest; used for performance sweeps).
    Off,
    /// After the run, execute the reference emulator for exactly the same
    /// number of retired instructions and require identical committed
    /// registers and memory.
    #[default]
    Final,
}

impl OracleMode {
    /// Canonical lower-case name, stable across serializations (job
    /// specs, the harness's `RunRecord` identity column): `off` or
    /// `final`.
    pub fn name(self) -> &'static str {
        match self {
            OracleMode::Off => "off",
            OracleMode::Final => "final",
        }
    }

    /// Resolves a name produced by [`OracleMode::name`].
    pub fn from_name(name: &str) -> Option<Self> {
        match name {
            "off" => Some(OracleMode::Off),
            "final" => Some(OracleMode::Final),
            _ => None,
        }
    }
}

/// Run-length limits.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RunLimits {
    /// Hard cycle ceiling.
    pub max_cycles: u64,
    /// Stop (successfully) once this many instructions have committed —
    /// how the experiments sample long-running workloads, mirroring the
    /// paper's N-instruction simulation windows.
    pub max_instructions: u64,
    /// Abort if no instruction commits for this many consecutive cycles
    /// (simulator-bug tripwire).
    pub watchdog: u64,
}

impl Default for RunLimits {
    fn default() -> Self {
        Self {
            max_cycles: 100_000_000,
            max_instructions: u64::MAX,
            watchdog: 100_000,
        }
    }
}

impl RunLimits {
    /// Limits that stop after `n` committed instructions.
    pub fn instructions(n: u64) -> Self {
        Self {
            max_instructions: n,
            ..Self::default()
        }
    }
}

/// Simulation failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SimError {
    /// The builder was misused ([`SimBuilder::run`] only).
    Invalid(BuildError),
    /// The cycle ceiling was reached before `halt` committed.
    CycleLimit {
        /// Cycles executed.
        cycles: u64,
        /// Instructions retired.
        retired: u64,
    },
    /// Commit made no progress for the watchdog window.
    Watchdog {
        /// Cycle at which the watchdog fired.
        cycle: u64,
    },
    /// The committed state diverged from the in-order oracle — with
    /// redundancy enabled this indicates an escaped fault (or a simulator
    /// bug); at `R = 1` under fault injection it demonstrates the paper's
    /// motivation.
    OracleMismatch {
        /// Human-readable divergence summary.
        details: String,
    },
    /// The reference emulator itself failed (bad program).
    Oracle(EmuError),
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::Invalid(e) => write!(f, "invalid simulator construction: {e}"),
            SimError::CycleLimit { cycles, retired } => {
                write!(
                    f,
                    "cycle limit reached ({cycles} cycles, {retired} retired)"
                )
            }
            SimError::Watchdog { cycle } => write!(f, "commit watchdog fired at cycle {cycle}"),
            SimError::OracleMismatch { details } => write!(f, "oracle mismatch: {details}"),
            SimError::Oracle(e) => write!(f, "oracle emulator error: {e}"),
        }
    }
}

impl std::error::Error for SimError {}

/// Results of one simulation run.
#[derive(Debug, Clone)]
pub struct SimResult {
    /// Machine model name.
    pub model: String,
    /// Elapsed cycles.
    pub cycles: u64,
    /// Committed architectural instructions.
    pub retired_instructions: u64,
    /// Instructions per cycle (the paper's headline metric).
    pub ipc: f64,
    /// Whether `halt` committed (false when stopped by instruction limit).
    pub halted: bool,
    /// FNV-1a digest of the final committed architectural state
    /// (registers, committed next-PC, halt flag, memory contents); see
    /// [`Processor::state_digest`]. Comparing a faulty cell's digest with
    /// its family's fault-free baseline (at equal retirement counts)
    /// distinguishes masked escapes from silent data corruption.
    pub state_digest: u64,
    /// Fault-injection outcome counts.
    pub faults: FaultCounts,
    /// Full statistics.
    pub stats: SimStats,
}

/// Runs a [`Program`] on a configured machine.
///
/// Construct via [`Simulator::builder`], which gathers the configuration,
/// program, fault injector, oracle mode and run limits in one validated
/// place.
///
/// # Examples
///
/// ```
/// use ftsim_core::{MachineConfig, Simulator};
/// use ftsim_isa::asm;
///
/// let p = asm::assemble("addi r1, r0, 3\nmul r1, r1, r1\nhalt\n").unwrap();
/// let result = Simulator::builder()
///     .config(MachineConfig::ss2())
///     .program(&p)
///     .run()
///     .unwrap();
/// assert_eq!(result.retired_instructions, 3);
/// assert!(result.halted);
/// ```
#[derive(Debug)]
pub struct Simulator {
    proc: Processor,
    program: Arc<Program>,
    oracle: OracleMode,
    limits: RunLimits,
}

impl Simulator {
    /// Starts a fluent [`SimBuilder`] — the only supported way to
    /// construct a simulator.
    pub fn builder() -> SimBuilder {
        SimBuilder::new()
    }

    /// Assembles a simulator from already-validated parts.
    ///
    /// Called by [`SimBuilder::build`] after validation; not public so
    /// that every construction path goes through the builder's checks.
    ///
    /// # Panics
    ///
    /// Panics if `config` is invalid (the builder validates first).
    pub(crate) fn from_parts(
        config: MachineConfig,
        program: Arc<Program>,
        injector: FaultInjector,
        oracle: OracleMode,
        limits: RunLimits,
    ) -> Self {
        Self {
            proc: Processor::with_shared_program(config, Arc::clone(&program), injector),
            program,
            oracle,
            limits,
        }
    }

    /// Access to the underlying processor (single-stepping, inspection,
    /// checkpoint restore, injector fast-forward).
    pub fn processor_mut(&mut self) -> &mut Processor {
        &mut self.proc
    }

    /// Runs to `halt` under the limits configured at build time.
    ///
    /// # Errors
    ///
    /// See [`SimError`].
    pub fn run(self) -> Result<SimResult, SimError> {
        let limits = self.limits;
        self.run_with_limits(limits)
    }

    /// Runs until `halt`, the instruction quota, or a limit error.
    ///
    /// # Errors
    ///
    /// See [`SimError`]; reaching `max_instructions` is success, reaching
    /// `max_cycles` without halting is [`SimError::CycleLimit`].
    pub fn run_with_limits(mut self, limits: RunLimits) -> Result<SimResult, SimError> {
        self.run_loop(limits, None)?;
        self.finish()
    }

    /// As [`Simulator::run`], additionally snapshotting the machine every
    /// `every` cycles (starting at the first nonzero boundary — a cycle-0
    /// snapshot is just a cold start, so it is never taken), until the
    /// machine has made more than `horizon_draws` fault-injector draws.
    ///
    /// This is the producer side of prefix-sharing sweeps: the fault-free
    /// baseline of a grid family runs once through here, and each faulty
    /// sibling cell restores the newest checkpoint that precedes its first
    /// possible injection instead of re-simulating the shared prefix. The
    /// horizon lets the caller stop paying snapshot cost once every
    /// sibling's divergence point has been passed; `u64::MAX` snapshots to
    /// the end of the run.
    ///
    /// # Errors
    ///
    /// See [`SimError`]. The checkpoints gathered before the failure are
    /// returned alongside the error so a caller can still fork cells whose
    /// divergence point precedes it.
    ///
    /// # Panics
    ///
    /// Panics if `every` is zero.
    pub fn run_with_checkpoints(
        mut self,
        every: u64,
        horizon_draws: u64,
    ) -> (Result<SimResult, SimError>, Vec<Checkpoint>) {
        assert!(every > 0, "checkpoint interval must be nonzero");
        let limits = self.limits;
        let mut checkpoints = Vec::new();
        let sink = (every, horizon_draws, &mut checkpoints);
        if let Err(e) = self.run_loop(limits, Some(sink)) {
            return (Err(e), checkpoints);
        }
        (self.finish(), checkpoints)
    }

    /// The shared cycle loop: halt / instruction-quota / cycle-ceiling /
    /// watchdog checks in the exact order every run mode uses, with an
    /// optional periodic checkpoint sink.
    fn run_loop(
        &mut self,
        limits: RunLimits,
        mut checkpoints: Option<(u64, u64, &mut Vec<Checkpoint>)>,
    ) -> Result<(), SimError> {
        while !self.proc.halted() {
            if self.proc.stats.retired_instructions >= limits.max_instructions {
                break;
            }
            if self.proc.now() >= limits.max_cycles {
                return Err(SimError::CycleLimit {
                    cycles: self.proc.now(),
                    retired: self.proc.stats.retired_instructions,
                });
            }
            if self.proc.now() - self.proc.last_commit_cycle > limits.watchdog {
                return Err(SimError::Watchdog {
                    cycle: self.proc.now(),
                });
            }
            if let Some((every, horizon, sink)) = checkpoints.as_mut() {
                let now = self.proc.now();
                if now > 0 && now % *every == 0 && self.proc.next_seq <= *horizon {
                    sink.push(self.proc.snapshot());
                }
            }
            self.proc.cycle();
        }
        Ok(())
    }

    /// Oracle verification and result assembly shared by every run mode.
    fn finish(mut self) -> Result<SimResult, SimError> {
        if self.oracle == OracleMode::Final {
            self.verify_against_oracle()?;
        }

        let halted = self.proc.halted();
        let stats = self.proc.stats_snapshot();
        Ok(SimResult {
            model: self.proc.config().name.clone(),
            cycles: stats.cycles,
            retired_instructions: stats.retired_instructions,
            ipc: stats.ipc(),
            halted,
            state_digest: self.proc.state_digest(),
            faults: stats.faults,
            stats,
        })
    }

    /// Compares committed registers and memory against the in-order
    /// reference emulator run for the same number of instructions.
    ///
    /// # Errors
    ///
    /// [`SimError::OracleMismatch`] with a summary of divergent state, or
    /// [`SimError::Oracle`] if the emulator cannot replay the program.
    pub fn verify_against_oracle(&mut self) -> Result<(), SimError> {
        let retired = self.proc.stats.retired_instructions;
        let mut emu = Emulator::new(&self.program);
        let executed = emu.run_steps(retired).map_err(SimError::Oracle)?;
        if executed != retired {
            return Err(SimError::OracleMismatch {
                details: format!(
                    "oracle halted after {executed} instructions, pipeline committed {retired}"
                ),
            });
        }
        if self.proc.halted() != emu.halted() {
            return Err(SimError::OracleMismatch {
                details: format!(
                    "halt state diverged: pipeline {} vs oracle {}",
                    self.proc.halted(),
                    emu.halted()
                ),
            });
        }
        let reg_diff = emu.regs().diff(self.proc.regs());
        let mem_diff = emu.mem().diff(self.proc.mem(), 4);
        if reg_diff.is_empty() && mem_diff.is_empty() {
            return Ok(());
        }
        let mut details = String::new();
        for (r, oracle, mine) in reg_diff.iter().take(4) {
            details.push_str(&format!("{r}: oracle={oracle:#x} pipeline={mine:#x}; "));
        }
        for d in &mem_diff {
            details.push_str(&format!(
                "[{:#x}]: oracle={:#x} pipeline={:#x}; ",
                d.addr, d.left, d.right
            ));
        }
        Err(SimError::OracleMismatch { details })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ftsim_isa::asm;

    fn sum_loop(n: u32) -> Program {
        asm::assemble(&format!(
            r"
                addi r1, r0, {n}
                addi r2, r0, 0
            loop:
                add  r2, r2, r1
                addi r1, r1, -1
                bne  r1, r0, loop
                halt
            "
        ))
        .unwrap()
    }

    fn sim(config: MachineConfig, p: &Program) -> crate::build::SimBuilder {
        Simulator::builder().config(config).program(p)
    }

    #[test]
    fn ss1_matches_oracle() {
        let p = sum_loop(50);
        let r = sim(MachineConfig::ss1(), &p).run().unwrap();
        assert!(r.halted);
        assert_eq!(r.retired_instructions, 3 + 50 * 3);
        assert!(r.ipc > 0.0);
    }

    #[test]
    fn ss2_matches_oracle_and_is_slower() {
        let p = sum_loop(200);
        let r1 = sim(MachineConfig::ss1(), &p).run().unwrap();
        let r2 = sim(MachineConfig::ss2(), &p).run().unwrap();
        assert_eq!(r1.retired_instructions, r2.retired_instructions);
        assert!(r2.cycles >= r1.cycles, "redundancy cannot be free");
    }

    #[test]
    fn instruction_limit_stops_cleanly() {
        let p = sum_loop(10_000);
        let r = sim(MachineConfig::ss1(), &p)
            .limits(RunLimits::instructions(100))
            .run()
            .unwrap();
        assert!(!r.halted);
        assert!(r.retired_instructions >= 100);
        assert!(r.retired_instructions < 200);
    }

    #[test]
    fn cycle_limit_errors() {
        let p = sum_loop(100_000);
        let err = sim(MachineConfig::ss1(), &p)
            .limits(RunLimits {
                max_cycles: 50,
                ..RunLimits::default()
            })
            .run()
            .unwrap_err();
        assert!(matches!(err, SimError::CycleLimit { .. }));
    }

    #[test]
    fn oracle_off_skips_verification() {
        let p = sum_loop(10);
        let r = sim(MachineConfig::ss1(), &p)
            .oracle(OracleMode::Off)
            .run()
            .unwrap();
        assert!(r.halted);
    }

    #[test]
    fn error_display() {
        let e = SimError::Watchdog { cycle: 9 };
        assert!(e.to_string().contains("watchdog"));
    }
}
