//! Simulation statistics.

use ftsim_faults::{FaultCounts, LatencySummary, SiteCounts};
use ftsim_isa::MixClass;
use ftsim_mem::CacheStats;
use std::fmt;

/// Why a full rewind happened.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RewindCause {
    /// Commit-stage cross-check disagreement (transient-fault recovery).
    FaultDetected,
    /// Retiring PC differed from the committed next-PC register
    /// (control-flow check, §3.2 Fault Detection).
    ControlFlowCheck,
}

/// Everything the simulator counts during a run.
///
/// `ipc()` is the headline number of the paper's Figures 3–6: committed
/// *architectural* instructions per cycle (redundant copies of one
/// instruction count once, exactly as the paper reports IPC).
#[derive(Debug, Clone, Default)]
pub struct SimStats {
    /// Elapsed cycles.
    pub cycles: u64,
    /// Committed architectural instructions.
    pub retired_instructions: u64,
    /// Committed RUU entries (= instructions × R).
    pub retired_entries: u64,
    /// Dispatched RUU entries (including squashed ones).
    pub dispatched_entries: u64,
    /// Dispatched architectural instructions (groups).
    pub dispatched_groups: u64,
    /// Committed instruction mix: `[mem, int, fp-add, fp-mul, fp-div]`.
    pub mix: [u64; 5],
    /// Conditional branches committed.
    pub branches: u64,
    /// Conditional branches that had been mispredicted.
    pub branch_mispredicts: u64,
    /// Branch-rewind (selective squash) events, including wrong-path ones.
    pub branch_rewinds: u64,
    /// Full rewinds triggered by fault detection.
    pub fault_rewinds: u64,
    /// Full rewinds triggered by the committed-PC control-flow check.
    pub pc_check_rewinds: u64,
    /// Majority elections that out-voted a corrupted copy.
    pub majority_elections: u64,
    /// Cycles from each full rewind until the next instruction committed
    /// (the observed recovery penalty W of §5.3): total and count.
    pub rewind_penalty_cycles: u64,
    /// Number of completed full-rewind penalty measurements.
    pub rewind_penalty_events: u64,
    /// Maximum observed single-rewind penalty.
    pub rewind_penalty_max: u64,
    /// Cycles in which at least one instruction committed.
    pub commit_active_cycles: u64,
    /// Sum over committed instructions of (commit cycle - dispatch cycle),
    /// for mean in-flight latency.
    pub inflight_latency_sum: u64,
    /// Cycles dispatch was blocked with a non-empty fetch queue, by cause:
    /// `[ruu_full, lsq_full]`.
    pub dispatch_stalls: [u64; 2],
    /// Sum of RUU occupancy sampled each cycle (for average occupancy).
    pub ruu_occupancy_sum: u64,
    /// Sum of LSQ occupancy sampled each cycle.
    pub lsq_occupancy_sum: u64,
    /// Loads satisfied by store-to-load forwarding.
    pub load_forwards: u64,
    /// Loads that performed a memory access.
    pub load_accesses: u64,
    /// Store commits that waited for an L1D port.
    pub store_port_stalls: u64,
    /// Fault-injection outcome counts.
    pub faults: FaultCounts,
    /// Fault-injection outcome counts split by injection site.
    pub fault_sites: SiteCounts,
    /// Detection-latency telemetry (injection → commit-time resolution).
    pub fault_latency: LatencySummary,
    /// Fetch statistics.
    pub fetched: u64,
    /// Fetch stall cycles.
    pub fetch_stall_cycles: u64,
    /// I-cache stall cycles.
    pub icache_stall_cycles: u64,
    /// L1 instruction cache statistics.
    pub il1: CacheStats,
    /// L1 data cache statistics.
    pub dl1: CacheStats,
    /// Unified L2 statistics.
    pub l2: CacheStats,
}

impl SimStats {
    /// Committed architectural instructions per cycle.
    pub fn ipc(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.retired_instructions as f64 / self.cycles as f64
        }
    }

    /// Cycles per committed architectural instruction.
    pub fn cpi(&self) -> f64 {
        if self.retired_instructions == 0 {
            0.0
        } else {
            self.cycles as f64 / self.retired_instructions as f64
        }
    }

    /// Branch misprediction rate over committed conditional branches.
    pub fn mispredict_rate(&self) -> f64 {
        if self.branches == 0 {
            0.0
        } else {
            self.branch_mispredicts as f64 / self.branches as f64
        }
    }

    /// Mean observed full-rewind penalty in cycles (the paper's W; §5.3
    /// reports ≈30 cycles for fpppp).
    pub fn mean_rewind_penalty(&self) -> f64 {
        if self.rewind_penalty_events == 0 {
            0.0
        } else {
            self.rewind_penalty_cycles as f64 / self.rewind_penalty_events as f64
        }
    }

    /// Committed dynamic instruction-mix fraction for `class` (Table 2).
    pub fn mix_fraction(&self, class: MixClass) -> f64 {
        let total: u64 = self.mix.iter().sum();
        if total == 0 {
            return 0.0;
        }
        self.mix[Self::mix_index(class)] as f64 / total as f64
    }

    /// Records one committed instruction of `class`.
    pub fn count_mix(&mut self, class: MixClass) {
        self.mix[Self::mix_index(class)] += 1;
    }

    fn mix_index(class: MixClass) -> usize {
        match class {
            MixClass::Mem => 0,
            MixClass::Int => 1,
            MixClass::FpAdd => 2,
            MixClass::FpMul => 3,
            MixClass::FpDiv => 4,
        }
    }

    /// Mean dispatch-to-commit latency of committed instructions.
    pub fn mean_inflight_latency(&self) -> f64 {
        if self.retired_instructions == 0 {
            0.0
        } else {
            self.inflight_latency_sum as f64 / self.retired_instructions as f64
        }
    }

    /// Mean RUU occupancy per cycle.
    pub fn mean_ruu_occupancy(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.ruu_occupancy_sum as f64 / self.cycles as f64
        }
    }

    /// Total full rewinds (fault + control-flow-check).
    pub fn full_rewinds(&self) -> u64 {
        self.fault_rewinds + self.pc_check_rewinds
    }
}

impl fmt::Display for SimStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "cycles={} retired={} IPC={:.3} CPI={:.3}",
            self.cycles,
            self.retired_instructions,
            self.ipc(),
            self.cpi()
        )?;
        writeln!(
            f,
            "branches={} mispredicts={} ({:.2}%) branch-rewinds={}",
            self.branches,
            self.branch_mispredicts,
            self.mispredict_rate() * 100.0,
            self.branch_rewinds
        )?;
        writeln!(
            f,
            "fault-rewinds={} pc-check-rewinds={} elections={} mean-W={:.1}",
            self.fault_rewinds,
            self.pc_check_rewinds,
            self.majority_elections,
            self.mean_rewind_penalty()
        )?;
        writeln!(
            f,
            "mix mem/int/fpadd/fpmul/fpdiv = {:?} forwards={} dl1-miss={:.2}%",
            self.mix,
            self.load_forwards,
            self.dl1.miss_rate() * 100.0
        )?;
        write!(f, "faults: {}", self.faults)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ipc_cpi_roundtrip() {
        let s = SimStats {
            cycles: 200,
            retired_instructions: 100,
            ..SimStats::default()
        };
        assert_eq!(s.ipc(), 0.5);
        assert_eq!(s.cpi(), 2.0);
    }

    #[test]
    fn empty_stats_are_zero() {
        let s = SimStats::default();
        assert_eq!(s.ipc(), 0.0);
        assert_eq!(s.cpi(), 0.0);
        assert_eq!(s.mispredict_rate(), 0.0);
        assert_eq!(s.mean_rewind_penalty(), 0.0);
        assert_eq!(s.mix_fraction(MixClass::Mem), 0.0);
    }

    #[test]
    fn mix_fractions_sum_to_one() {
        let mut s = SimStats::default();
        for _ in 0..3 {
            s.count_mix(MixClass::Mem);
        }
        for _ in 0..7 {
            s.count_mix(MixClass::Int);
        }
        let total: f64 = [
            MixClass::Mem,
            MixClass::Int,
            MixClass::FpAdd,
            MixClass::FpMul,
            MixClass::FpDiv,
        ]
        .iter()
        .map(|&c| s.mix_fraction(c))
        .sum();
        assert!((total - 1.0).abs() < 1e-12);
        assert!((s.mix_fraction(MixClass::Mem) - 0.3).abs() < 1e-12);
    }

    #[test]
    fn display_contains_key_numbers() {
        let s = SimStats {
            cycles: 10,
            retired_instructions: 5,
            ..SimStats::default()
        };
        let text = s.to_string();
        assert!(text.contains("IPC=0.500"));
        assert!(text.contains("cycles=10"));
    }
}
