//! Writeback stage: completion events, consumer wakeup, and branch
//! resolution with immediate rewind on mispredicts.

use crate::entry::EntryState;
use crate::pipeline::Processor;
use ftsim_faults::InjectionPoint;
use ftsim_isa::load_extend;
use std::cmp::Reverse;

impl Processor {
    /// Processes every completion event due this cycle.
    pub(crate) fn stage_writeback(&mut self) {
        while let Some(&Reverse((cycle, seq))) = self.events.peek() {
            if cycle > self.now {
                break;
            }
            self.events.pop();
            self.complete(seq);
        }
    }

    /// Finalizes one entry's execution.
    fn complete(&mut self, seq: u64) {
        let Some(idx) = self.ruu.position(seq) else {
            return; // squashed while in flight
        };
        let e = self.ruu.at(idx);
        if e.state != EntryState::Issued {
            return; // stale event
        }
        let inst = e.inst;
        let fault = e.fault;
        let mut result = e.result;

        // Loads: extend the raw (pristine, shared) memory value now.
        if inst.op.is_load() {
            let raw = self
                .lsq
                .get(seq)
                .and_then(|l| l.mem_value)
                .expect("completed load carries its raw value");
            result = Some(load_extend(inst.op, raw));
        }

        // Late corruptions: load results, and values struck while sitting
        // in the ROB awaiting commit ("a value becomes corrupted while
        // waiting to commit", §3.2 — the reason copies are re-checked at
        // commit time).
        let mut effective = false;
        if let Some((_, ev)) = fault {
            match ev.point {
                InjectionPoint::Result if inst.op.is_load() => {
                    result = result.map(|r| ev.corrupt(r));
                    effective = true;
                }
                InjectionPoint::RobWait if result.is_some() => {
                    result = result.map(|r| ev.corrupt(r));
                    effective = true;
                }
                _ => {}
            }
        }

        {
            let e = self.ruu.at_mut(idx);
            e.result = result;
            e.state = EntryState::Done;
            e.fault_effective |= effective;
        }
        if let Some(v) = result {
            self.wakeup(seq, v);
        }
        if inst.op.is_control() {
            self.resolve_control(seq);
        }
    }

    /// Branch resolution: "as soon as one copy of a branch instruction
    /// evaluates and disagrees with the predicted branch direction or
    /// target, branch rewind is triggered immediately based on this
    /// singular result" (§3.2).
    fn resolve_control(&mut self, seq: u64) {
        let (group, copy, actual_next, expected) = {
            let e = self.ruu.get(seq).expect("entry live");
            let pred_next = e
                .pred
                .expect("control instruction carries a prediction")
                .next_pc;
            (
                e.group,
                e.copy,
                e.computed_next_pc(),
                e.resteer_next.unwrap_or(pred_next),
            )
        };
        if actual_next == expected {
            return;
        }
        let r = self.r();
        let copy0_seq = seq - u64::from(copy);
        let cutoff = copy0_seq + r - 1;
        self.branch_rewind(group, cutoff, actual_next);
        // Record the applied redirect on every sibling copy: a copy that
        // later resolves to the same next-PC must not re-trigger, while a
        // disagreeing copy (corrupted branch) still will — and the
        // disagreement is then caught by the commit-stage cross-check.
        for k in 0..r {
            if let Some(sib) = self.ruu.get_mut(copy0_seq + k) {
                sib.resteer_next = Some(actual_next);
            }
        }
    }
}
