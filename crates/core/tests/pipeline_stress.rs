//! Stress tests for the out-of-order pipeline: branchy control flow,
//! memory dependences, fault injection, and recovery — all validated
//! against the in-order oracle.

use ftsim_core::{MachineConfig, OracleMode, RedundancyConfig, Simulator};
use ftsim_faults::{FaultInjector, FaultPlan, InjectionPoint};
use ftsim_isa::{asm, IntReg, Program, ProgramBuilder, DATA_BASE};

/// A data-dependent-branch workload: computes a pseudo-random walk and
/// histogram over memory. Exercises mispredicts, loads, stores,
/// forwarding, and multiply/divide units.
fn mixed_workload(iters: i32) -> Program {
    asm::assemble(&format!(
        r"
            li   r10, {DATA_BASE}
            addi r1, r0, {iters}    ; loop counter
            addi r2, r0, 12345      ; lcg state
            addi r3, r0, 0          ; checksum
        loop:
            ; lcg: state = state * 1103515245 + 12345 (mod 2^64)
            li   r4, 1103515245
            mul  r2, r2, r4
            addi r2, r2, 12345
            ; idx = (state >> 16) & 63
            srli r5, r2, 16
            andi r5, r5, 63
            slli r6, r5, 3
            add  r6, r6, r10
            ; histogram[idx] += state (data-dependent address)
            ld   r7, 0(r6)
            add  r7, r7, r2
            sd   r7, 0(r6)
            ; data-dependent branch on a high-entropy bit (LCG bit 13;
            ; the low bits of an LCG alternate trivially and a 2-level
            ; predictor would learn them exactly)
            srli r8, r2, 13
            andi r8, r8, 1
            beq  r8, r0, even
            addi r3, r3, 1
            j    next
        even:
            sub  r3, r3, r8
            addi r3, r3, 2
        next:
            addi r1, r1, -1
            bne  r1, r0, loop
            ; fold checksum into memory
            sd   r3, 512(r10)
            halt
        "
    ))
    .unwrap()
}

/// FP + division workload: long dependence chains through the blocking
/// FP divider, with calls and returns.
fn fp_workload(iters: i32) -> Program {
    asm::assemble(&format!(
        r"
            li   r10, {DATA_BASE}
            addi r1, r0, {iters}
            lfd  f1, 0(r10)         ; 3.0
            lfd  f2, 8(r10)         ; 0.5
            fmov f3, f1
        loop:
            jal  r31, body
            addi r1, r1, -1
            bne  r1, r0, loop
            sfd  f3, 16(r10)
            cvtfi r2, f3
            halt
        body:
            fmul f4, f3, f1
            fdiv f5, f4, f1
            fadd f3, f5, f2
            fsub f3, f3, f2
            jr   r31
        .f64 {DATA_BASE} 3.0 0.5
        "
    ))
    .unwrap()
}

fn run(config: MachineConfig, p: &Program) -> ftsim_core::SimResult {
    Simulator::builder()
        .config(config)
        .program(p)
        .oracle(OracleMode::Final)
        .run()
        .expect("run must succeed and match the oracle")
}

/// Builder-based run with fault injection.
fn run_injected(
    config: MachineConfig,
    p: &Program,
    injector: FaultInjector,
    oracle: OracleMode,
) -> Result<ftsim_core::SimResult, ftsim_core::SimError> {
    Simulator::builder()
        .config(config)
        .program(p)
        .injector(injector)
        .oracle(oracle)
        .run()
}

#[test]
fn mixed_workload_all_models_match_oracle() {
    let p = mixed_workload(300);
    for config in [
        MachineConfig::ss1(),
        MachineConfig::ss2(),
        MachineConfig::ss3(),
        MachineConfig::ss3_majority(),
        MachineConfig::static2(),
    ] {
        let name = config.name.clone();
        let r = run(config, &p);
        assert!(r.halted, "{name} did not halt");
        assert!(r.ipc > 0.05, "{name} IPC implausibly low: {}", r.ipc);
    }
}

#[test]
fn fp_workload_all_models_match_oracle() {
    let p = fp_workload(100);
    for config in [
        MachineConfig::ss1(),
        MachineConfig::ss2(),
        MachineConfig::static2(),
    ] {
        let r = run(config, &p);
        assert!(r.halted);
    }
}

/// Eight independent integer chains: enough ILP to saturate the four
/// integer ALUs, so redundant execution must pay close to the full 2x.
fn saturated_workload(iters: i32) -> Program {
    let mut body = String::new();
    for c in 0..8 {
        body.push_str(&format!("    addi r{0}, r{0}, {1}\n", c + 2, c + 1));
        body.push_str(&format!("    xori r{0}, r{0}, 21\n", c + 2));
        body.push_str(&format!("    slli r{0}, r{0}, 1\n", c + 2));
        body.push_str(&format!("    srli r{0}, r{0}, 1\n", c + 2));
    }
    asm::assemble(&format!(
        r"
            addi r1, r0, {iters}
        loop:
{body}
            addi r1, r1, -1
            bne  r1, r0, loop
            halt
        "
    ))
    .unwrap()
}

#[test]
fn redundancy_is_never_free_on_saturated_code() {
    let p = saturated_workload(300);
    let r1 = run(MachineConfig::ss1(), &p);
    let r2 = run(MachineConfig::ss2(), &p);
    assert_eq!(r1.retired_instructions, r2.retired_instructions);
    assert!(
        r2.cycles > r1.cycles,
        "SS-2 ({}) should be slower than SS-1 ({})",
        r2.cycles,
        r1.cycles
    );
    // Paper: the IPC penalty for 2-way redundancy is at most ~50%+ε.
    let penalty = 1.0 - r2.ipc / r1.ipc;
    assert!(
        penalty < 0.60,
        "SS-2 penalty {penalty:.2} exceeds the paper's envelope"
    );
}

#[test]
fn planned_fault_on_alu_result_is_detected_and_recovered() {
    let p = mixed_workload(50);
    // OperandA applies to nearly every kind; plant faults on several
    // groups so at least one lands on an applicable, committed-path copy.
    let mut detected_runs = 0;
    let mut injected_total = 0;
    for group in [12u64, 14, 16, 18, 20, 22] {
        let mut plan = FaultPlan::new();
        plan.add(group, 1, InjectionPoint::OperandA, 13);
        let r = run_injected(
            MachineConfig::ss2(),
            &p,
            FaultInjector::from_plan(plan),
            OracleMode::Final,
        )
        .expect("fault must be recovered, final state correct");
        let f = r.faults;
        injected_total += f.injected;
        assert_eq!(f.escaped, 0, "group {group}: {f}");
        assert_eq!(f.pending, 0, "group {group}: {f}");
        if f.detected > 0 {
            detected_runs += 1;
            assert!(r.stats.fault_rewinds >= 1);
            assert!(r.stats.rewind_penalty_events >= 1);
            assert!(r.stats.mean_rewind_penalty() > 0.0);
        }
    }
    assert!(injected_total > 0, "no planned fault ever applied");
    assert!(detected_runs > 0, "no planned fault was detected at commit");
}

#[test]
fn random_faults_r2_always_recover() {
    let p = mixed_workload(200);
    for seed in 0..5 {
        let inj = FaultInjector::random(2e-3, seed);
        let r = run_injected(MachineConfig::ss2(), &p, inj, OracleMode::Final)
            .expect("R=2 must recover from every injected fault");
        let f = r.faults;
        assert_eq!(f.escaped, 0, "escape at seed {seed}: {f}");
        assert_eq!(f.pending, 0, "unresolved fault at seed {seed}: {f}");
    }
}

#[test]
fn random_faults_r3_majority_elects_without_rewind() {
    let p = mixed_workload(200);
    let inj = FaultInjector::random(2e-3, 7);
    let r = run_injected(MachineConfig::ss3_majority(), &p, inj, OracleMode::Final)
        .expect("majority election must keep state correct");
    let f = r.faults;
    assert_eq!(f.escaped, 0);
    assert!(f.outvoted > 0, "expected some out-voted faults: {f}");
    // A corrupted value forwarded to in-flight consumers makes *their*
    // groups dissent too (copy k inherited the bad operand), so elections
    // can outnumber the originally injected, out-voted faults.
    assert!(
        r.stats.majority_elections >= f.outvoted,
        "elections {} < outvoted {}",
        r.stats.majority_elections,
        f.outvoted
    );
}

/// At extreme fault rates, two copies of one instruction can receive the
/// *identical* corruption — the paper's §2.2 indiscernible-error case that
/// no replication scheme detects (it can even win a majority election).
/// These runs therefore demand: if the ledger reports zero escapes, the
/// final state must match the oracle exactly; if it reports escapes, the
/// oracle must disagree (or the machine may wedge on corrupted control
/// flow). Anything else is a simulator bug.
fn assert_escape_accounting(config: MachineConfig, rate: f64, seed: u64, p: &Program) {
    // Pass 1: observe the ledger without verification.
    let inj = FaultInjector::random(rate, seed);
    let first = run_injected(config.clone(), p, inj, OracleMode::Off);
    // Pass 2 (same seed = identical run): verify against the oracle.
    let inj = FaultInjector::random(rate, seed);
    let second = run_injected(config.clone(), p, inj, OracleMode::Final);
    match first {
        Ok(r) if r.faults.escaped == 0 => {
            second.unwrap_or_else(|e| {
                panic!(
                    "{} seed {seed}: clean ledger but oracle says {e}",
                    config.name
                )
            });
        }
        Ok(r) => {
            assert!(
                second.is_err(),
                "{} seed {seed}: {} escapes but the oracle matched",
                config.name,
                r.faults.escaped
            );
        }
        // Escaped control-flow corruption may wedge or overrun the machine
        // — legitimate for committed garbage targets.
        Err(ftsim_core::SimError::Watchdog { .. } | ftsim_core::SimError::CycleLimit { .. }) => {}
        Err(e) => panic!("{} seed {seed}: unexpected {e}", config.name),
    }
}

#[test]
fn majority_survives_corrupted_branch_redirects_at_high_rates() {
    // Regression: a corrupted branch copy used to redirect fetch to a
    // bogus target; majority election committed the correct outcome but
    // never repaired the front end, wedging the machine with an empty
    // pipeline. High fault rates make this near-certain to occur.
    let p = mixed_workload(400);
    for seed in [7u64, 42, 99, 123] {
        assert_escape_accounting(MachineConfig::ss3_majority(), 0.03, seed, &p);
    }
}

#[test]
fn rewind_mode_survives_very_high_fault_rates() {
    let p = mixed_workload(300);
    for seed in [1u64, 5, 9] {
        assert_escape_accounting(MachineConfig::ss2(), 0.05, seed, &p);
    }
}

#[test]
fn unprotected_r1_lets_faults_escape() {
    let p = mixed_workload(300);
    // High rate so at least one effective fault commits.
    let inj = FaultInjector::random(5e-3, 11);
    let result = run_injected(MachineConfig::ss1(), &p, inj, OracleMode::Final);
    match result {
        // Corrupted committed state detected by the oracle...
        Err(ftsim_core::SimError::OracleMismatch { .. }) => {}
        // ...or corrupted control flow wedged/looped the machine — both
        // are real failure modes of an unprotected core.
        Err(ftsim_core::SimError::Watchdog { .. })
        | Err(ftsim_core::SimError::CycleLimit { .. }) => {}
        Ok(r) => {
            // The run may survive if every fault was masked or squashed,
            // but then the ledger must show no escapes.
            assert_eq!(
                r.faults.escaped, 0,
                "escaped faults must imply oracle mismatch"
            );
        }
        Err(e) => panic!("unexpected error: {e}"),
    }
}

#[test]
fn store_data_fault_never_corrupts_memory_r2() {
    // A store datum is corrupted; the cross-check must catch it before the
    // write reaches committed memory.
    let r5 = IntReg::new(5);
    let r1 = IntReg::new(1);
    let mut b = ProgramBuilder::new();
    b.li(r1, DATA_BASE as i64);
    b.addi(r5, IntReg::ZERO, 77);
    b.sd(r5, r1, 0);
    b.ld(r5, r1, 0);
    b.halt();
    let p = b.build().unwrap();

    // Dispatch indices: 0..n. The store is the group after li's expansion
    // (li -> lui+ori = 2 groups, addi = 1) => store is group 3.
    let mut plan = FaultPlan::new();
    plan.add(3, 0, InjectionPoint::StoreData, 5);
    let r = run_injected(
        MachineConfig::ss2(),
        &p,
        FaultInjector::from_plan(plan),
        OracleMode::Final,
    )
    .expect("corrupted store must be caught before commit");
    assert_eq!(r.faults.escaped, 0);
}

#[test]
fn branch_direction_fault_recovers() {
    let p = mixed_workload(60);
    let mut hit_any = false;
    for group in [15u64, 16, 17, 18, 19, 20] {
        let mut plan = FaultPlan::new();
        plan.add(group, 1, InjectionPoint::BranchDirection, 0);
        let r = run_injected(
            MachineConfig::ss2(),
            &p,
            FaultInjector::from_plan(plan),
            OracleMode::Final,
        )
        .expect("branch-direction fault must be recovered");
        hit_any |= r.faults.injected > 0;
        assert_eq!(r.faults.escaped, 0);
    }
    assert!(hit_any, "no plan entry landed on a branch");
}

#[test]
fn deterministic_same_seed_same_cycles() {
    let p = mixed_workload(150);
    let run_once = |seed| {
        let inj = FaultInjector::random(1e-3, seed);
        run_injected(MachineConfig::ss2(), &p, inj, OracleMode::Off).unwrap()
    };
    let a = run_once(3);
    let b = run_once(3);
    assert_eq!(a.cycles, b.cycles);
    assert_eq!(a.stats.fault_rewinds, b.stats.fault_rewinds);
    assert_eq!(a.faults, b.faults);
}

#[test]
fn rewind_based_recovery_throughput_unaffected_at_low_rates() {
    // Paper abstract: "overall throughput remains unaffected by even a
    // high frequency of faults because of the low cost of rewind-based
    // recovery."
    let p = mixed_workload(400);
    let clean = run(MachineConfig::ss2(), &p);
    let inj = FaultInjector::random(ftsim_faults::per_million(100.0), 1);
    let faulty = run_injected(MachineConfig::ss2(), &p, inj, OracleMode::Final).unwrap();
    let slowdown = faulty.cycles as f64 / clean.cycles as f64;
    assert!(
        slowdown < 1.05,
        "100 faults/M inst should cost <5% (got {slowdown:.3})"
    );
}

#[test]
fn static2_uses_half_width_but_full_caches() {
    let p = mixed_workload(300);
    let half = run(MachineConfig::static2(), &p);
    let full = run(MachineConfig::ss1(), &p);
    assert!(half.cycles >= full.cycles);
}

#[test]
fn r4_rewind_configuration_works() {
    let p = mixed_workload(50);
    let cfg = MachineConfig::ss1().with_redundancy(RedundancyConfig::rewind(4));
    let r = run(cfg, &p);
    assert_eq!(r.stats.retired_entries, r.retired_instructions * 4);
}
