//! The `ftsimd` command-line front end.
//!
//! ```text
//! ftsimd submit <spec.toml|spec.json> [--state DIR]
//! ftsimd serve  [--state DIR] [--drain] [--poll-ms N]
//! ftsimd status [JOB] [--state DIR]
//! ftsimd results <JOB> [--state DIR] [--json | --watch [--poll-ms N]]
//! ftsimd report <JOB> [--state DIR]
//! ftsimd stop   [--state DIR]
//! ```
//!
//! The state directory defaults to `./ftsimd-state`, overridable with
//! `--state` or the `FTSIMD_STATE` environment variable. `submit`
//! prints the job id alone on stdout (scripts capture it; the human
//! detail goes to stderr) and deduplicates byte-identical specs by
//! attaching to the existing job. `results` prints a finished job's
//! grid-order CSV verbatim; for a job still in flight it merges the
//! streamed records into grid order and reports the gaps on stderr —
//! or, with `--watch`, follows the job's `cells.csv` and streams each
//! record as it completes. `report` runs the `ftsim-analysis` layer over
//! a job's records: outcome taxonomy (masked / detected / SDC / hang),
//! per-site sensitivity with Wilson intervals, detection-latency
//! distributions, and MTTF extrapolation.

use crate::runner::{install_signal_handlers, serve, ServeOptions};
use crate::spec::JobSpec;
use crate::store::{Job, JobState, JobStatus, JobStore};
use ftsim::harness::{
    from_csv, from_csv_tolerant, from_csv_tolerant_prefix, to_csv, to_json, RunRecord,
};
use std::collections::HashMap;
use std::time::Duration;

const USAGE: &str = "\
ftsimd — long-running sweep daemon for the ftsim fault-tolerant superscalar

USAGE:
    ftsimd submit <spec.toml|spec.json> [--state DIR]
    ftsimd serve  [--state DIR] [--drain] [--poll-ms N]
    ftsimd status [JOB] [--state DIR]
    ftsimd results <JOB> [--state DIR] [--json | --watch [--poll-ms N]]
    ftsimd report <JOB> [--state DIR]
    ftsimd stop   [--state DIR]

COMMANDS:
    submit    Validate a job spec and enqueue it (or attach to an
              identical existing job). Prints the job id on stdout.
    serve     Run the daemon: execute queued jobs, streaming results;
              --drain exits once the queue is empty. Ctrl-C, SIGTERM or
              `ftsimd stop` shut down gracefully (the interrupted job is
              re-queued and resumes from its streamed records).
    status    Show the queue, or one job's progress (with per-family
              cells-done counts for a single job).
    results   Print a job's records as grid-order CSV (--json for JSON);
              --watch follows the streamed results until the job is done.
    report    Analyze a job's records: outcome taxonomy, per-site
              sensitivity (Wilson 95% CIs), detection latency, MTTF.
    stop      Ask the serving daemon to shut down gracefully.

The state directory defaults to ./ftsimd-state, or $FTSIMD_STATE.
";

/// Parsed global options.
struct Args {
    state: String,
    flags: Vec<String>,
    positional: Vec<String>,
}

fn parse_args(args: &[String]) -> Result<Args, String> {
    let mut state = std::env::var("FTSIMD_STATE").unwrap_or_else(|_| "ftsimd-state".to_string());
    let mut flags = Vec::new();
    let mut positional = Vec::new();
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--state" => {
                state = iter
                    .next()
                    .ok_or("--state needs a directory argument")?
                    .clone();
            }
            "--poll-ms" => {
                let value = iter.next().ok_or("--poll-ms needs a number argument")?;
                value
                    .parse::<u64>()
                    .map_err(|_| format!("bad --poll-ms value `{value}`"))?;
                flags.push(format!("--poll-ms={value}"));
            }
            flag if flag.starts_with("--") => flags.push(flag.to_string()),
            _ => positional.push(arg.clone()),
        }
    }
    Ok(Args {
        state,
        flags,
        positional,
    })
}

impl Args {
    fn flag(&self, name: &str) -> bool {
        self.flags.iter().any(|f| f == name)
    }

    /// Rejects any flag the current command does not define — a typo
    /// must fail loudly, not silently change behavior (`--drian` running
    /// a drain-mode invocation as a forever-polling daemon, say).
    fn ensure_flags(&self, allowed: &[&str]) -> Result<(), String> {
        for flag in &self.flags {
            let name = flag.split_once('=').map_or(flag.as_str(), |(n, _)| n);
            if !allowed.contains(&name) {
                return Err(format!("unknown flag `{name}` for this command"));
            }
        }
        Ok(())
    }

    fn poll(&self) -> Duration {
        self.flags
            .iter()
            .find_map(|f| f.strip_prefix("--poll-ms="))
            .and_then(|v| v.parse().ok())
            .map_or(Duration::from_millis(500), Duration::from_millis)
    }
}

/// Runs the CLI with the given arguments (everything after the program
/// name) and returns the process exit code. The `ftsimd` binary is a
/// one-line wrapper around this.
pub fn run(args: &[String]) -> i32 {
    match dispatch(args) {
        Ok(()) => 0,
        Err(message) => {
            eprintln!("ftsimd: {message}");
            1
        }
    }
}

fn dispatch(args: &[String]) -> Result<(), String> {
    let Some((command, rest)) = args.split_first() else {
        eprint!("{USAGE}");
        return Err("missing command".to_string());
    };
    let parsed = parse_args(rest)?;
    match command.as_str() {
        "submit" => cmd_submit(&parsed),
        "serve" => cmd_serve(&parsed),
        "status" => cmd_status(&parsed),
        "results" => cmd_results(&parsed),
        "report" => cmd_report(&parsed),
        "stop" => cmd_stop(&parsed),
        "help" | "--help" | "-h" => {
            print!("{USAGE}");
            Ok(())
        }
        other => {
            eprint!("{USAGE}");
            Err(format!("unknown command `{other}`"))
        }
    }
}

fn open_store(args: &Args) -> Result<JobStore, String> {
    JobStore::open(&args.state).map_err(|e| e.to_string())
}

fn cmd_submit(args: &Args) -> Result<(), String> {
    args.ensure_flags(&[])?;
    let [path] = args.positional.as_slice() else {
        return Err("submit takes exactly one spec file".to_string());
    };
    let text = std::fs::read_to_string(path).map_err(|e| format!("reading spec {path}: {e}"))?;
    let spec = JobSpec::parse(&text).map_err(|e| e.to_string())?;
    let store = open_store(args)?;
    let (id, created) = store.submit(&spec).map_err(|e| e.to_string())?;
    if created {
        eprintln!(
            "ftsimd: submitted job {id} ({} cells)",
            cells_of(&store, &id)
        );
    } else {
        eprintln!("ftsimd: identical spec already submitted as {id}; attaching");
    }
    println!("{id}");
    Ok(())
}

fn cells_of(store: &JobStore, id: &str) -> String {
    store
        .job(id)
        .and_then(|job| store.load_status(&job))
        .map_or_else(|_| "?".to_string(), |s| s.cells_total.to_string())
}

fn cmd_serve(args: &Args) -> Result<(), String> {
    args.ensure_flags(&["--drain", "--poll-ms"])?;
    if !args.positional.is_empty() {
        return Err("serve takes no positional arguments".to_string());
    }
    install_signal_handlers();
    let store = open_store(args)?;
    let opts = ServeOptions {
        drain: args.flag("--drain"),
        poll: args.poll(),
    };
    eprintln!(
        "ftsimd: serving {} ({})",
        store.root().display(),
        if opts.drain {
            "drain mode"
        } else {
            "daemon mode"
        }
    );
    serve(&store, &opts).map_err(|e| e.to_string())
}

fn cmd_status(args: &Args) -> Result<(), String> {
    args.ensure_flags(&[])?;
    let store = open_store(args)?;
    match args.positional.as_slice() {
        [] => {
            let jobs = store.jobs().map_err(|e| e.to_string())?;
            if jobs.is_empty() {
                println!("no jobs in {}", store.root().display());
                return Ok(());
            }
            for job in jobs {
                match store.load_status(&job) {
                    Ok(s) => println!(
                        "{:<28} {:<8} {:>6}/{} {}",
                        job.id, s.state, s.cells_done, s.cells_total, s.error
                    ),
                    Err(e) => println!("{:<28} <unreadable status: {e}>", job.id),
                }
            }
            Ok(())
        }
        [id] => {
            let job = store.job(id).map_err(|e| e.to_string())?;
            let status = store.load_status(&job).map_err(|e| e.to_string())?;
            println!("job:    {id}");
            println!("state:  {}", status.state);
            println!("cells:  {}/{}", status.cells_done, status.cells_total);
            if !status.error.is_empty() {
                println!("error:  {}", status.error);
            }
            println!("dir:    {}", job.dir().display());
            match family_progress(&store, &job, &status) {
                Ok(families) => {
                    println!("families:");
                    for f in families {
                        println!(
                            "  {:<10} budget {:>7}  {:<10} {:>4}/{}",
                            f.workload, f.budget, f.model, f.done, f.total
                        );
                    }
                }
                // Family progress is best-effort decoration: an old job
                // whose spec no longer resolves still shows its totals.
                Err(e) => eprintln!("ftsimd: cannot compute family progress: {e}"),
            }
            Ok(())
        }
        _ => Err("status takes at most one job id".to_string()),
    }
}

/// One (workload, budget, model) shard's progress in a job.
struct FamilyProgress {
    workload: String,
    budget: u64,
    model: String,
    done: usize,
    total: usize,
}

/// Computes per-family cells-done counts: the job's grid identities
/// grouped by (workload, budget, model) — the same shards the runner's
/// workers pull — each matched against the streamed `cells.csv`.
fn family_progress(
    store: &JobStore,
    job: &Job,
    status: &JobStatus,
) -> Result<Vec<FamilyProgress>, String> {
    let spec = store.load_spec(job).map_err(|e| e.to_string())?;
    let identities = spec
        .to_experiment()
        .map_err(|e| e.to_string())?
        .identities()
        .map_err(|e| e.to_string())?;
    let streamed = std::fs::read_to_string(job.cells_path()).unwrap_or_default();
    let (streamed, _) = from_csv_tolerant(&streamed);
    let streamed = identity_index(&streamed);
    let mut families: Vec<FamilyProgress> = Vec::new();
    for id in &identities {
        // A done job has every cell even if some were never streamed
        // (resume-matched cells are not re-appended to cells.csv).
        let done = status.state == JobState::Done || streamed.contains_key(&identity_key(id));
        match families
            .iter_mut()
            .find(|f| f.workload == id.workload && f.budget == id.budget && f.model == id.model)
        {
            Some(f) => {
                f.total += 1;
                f.done += usize::from(done);
            }
            None => families.push(FamilyProgress {
                workload: id.workload.clone(),
                budget: id.budget,
                model: id.model.clone(),
                done: usize::from(done),
                total: 1,
            }),
        }
    }
    Ok(families)
}

/// The hashable projection of [`RunRecord::same_identity`]: two records
/// are the same grid cell iff their keys are equal. Keeping this next to
/// [`identity_index`] is what lets `status`/`results`/`report` match a
/// job's thousands of grid identities against its streamed log in O(1)
/// per cell instead of a quadratic `same_identity` scan.
type IdentityKey<'a> = (
    &'a str,
    &'a str,
    &'a str,
    u8,
    bool,
    u8,
    u64,
    &'a str,
    u64,
    u64,
);

fn identity_key(r: &RunRecord) -> IdentityKey<'_> {
    (
        r.workload.as_str(),
        r.suite.as_str(),
        r.model.as_str(),
        r.r,
        r.majority,
        r.threshold,
        r.fault_rate_pm.to_bits(),
        r.site_mix.as_str(),
        r.seed,
        r.budget,
    )
}

/// Indexes streamed records by identity, newest row winning: a cell that
/// failed on one pass and was re-run later (failed records are never
/// resume-matched) appears twice in the log, and the recent record is
/// the truthful one.
fn identity_index<'a>(streamed: &'a [RunRecord]) -> HashMap<IdentityKey<'a>, &'a RunRecord> {
    let mut index = HashMap::with_capacity(streamed.len());
    for r in streamed {
        index.insert(identity_key(r), r); // later rows overwrite earlier
    }
    index
}

fn cmd_results(args: &Args) -> Result<(), String> {
    args.ensure_flags(&["--json", "--watch", "--poll-ms"])?;
    let [id] = args.positional.as_slice() else {
        return Err("results takes exactly one job id".to_string());
    };
    let store = open_store(args)?;
    let job = store.job(id).map_err(|e| e.to_string())?;
    if args.flag("--watch") {
        if args.flag("--json") {
            return Err("--watch streams CSV rows; it cannot combine with --json".to_string());
        }
        return watch_results(&store, &job, args.poll());
    }
    let json = args.flag("--json");
    let status = store.load_status(&job).map_err(|e| e.to_string())?;

    if status.state == JobState::Done {
        // A finished job's artifacts are canonical: print them verbatim.
        let path = if json {
            job.results_json_path()
        } else {
            job.results_path()
        };
        let text = std::fs::read_to_string(&path)
            .map_err(|e| format!("reading {}: {e}", path.display()))?;
        print!("{text}");
        return Ok(());
    }

    let (merged, total) = merged_records(&store, &job)?;
    eprintln!(
        "ftsimd: job {id} is {} — {} of {total} cells merged (grid order)",
        status.state,
        merged.len(),
    );
    if json {
        print!("{}", to_json(&merged));
    } else {
        print!("{}", to_csv(&merged));
    }
    Ok(())
}

/// Merges an in-flight job's streamed records into grid order (newest
/// row per cell, via [`identity_index`]), returning them with the grid's
/// total cell count.
fn merged_records(store: &JobStore, job: &Job) -> Result<(Vec<RunRecord>, usize), String> {
    let streamed = std::fs::read_to_string(job.cells_path()).unwrap_or_default();
    let (streamed, _) = from_csv_tolerant(&streamed);
    let index = identity_index(&streamed);
    let spec = store.load_spec(job).map_err(|e| e.to_string())?;
    let identities = spec
        .to_experiment()
        .map_err(|e| e.to_string())?
        .identities()
        .map_err(|e| e.to_string())?;
    let merged: Vec<RunRecord> = identities
        .iter()
        .filter_map(|id| index.get(&identity_key(id)).copied().cloned())
        .collect();
    Ok((merged, identities.len()))
}

/// Follows a job's `cells.csv`, printing each streamed record (CSV, in
/// completion order) as it appears, until the job reaches a terminal
/// state. The tolerant loader is what makes mid-write polling safe: a
/// torn tail row simply does not count as arrived yet. A closed stdout
/// (`ftsimd results --watch | head`) ends the watch cleanly instead of
/// panicking on the broken pipe.
///
/// Polling is incremental: the byte boundary after the last complete
/// record ([`from_csv_tolerant_prefix`]) is remembered, and each poll
/// parses only the appended suffix — a watch on a large job stays O(new
/// rows) per tick instead of re-parsing the whole growing log.
fn watch_results(store: &JobStore, job: &Job, poll: Duration) -> Result<(), String> {
    use std::io::Write;
    let stdout = std::io::stdout();
    let mut out = stdout.lock();
    let header = RunRecord::csv_header();
    if writeln!(out, "{header}").is_err() {
        return Ok(()); // reader went away before the header
    }
    let mut printed = 0usize;
    let mut consumed = 0usize; // bytes of cells.csv fully parsed
    loop {
        // Status first, cells second: anything streamed before a
        // terminal status was set is guaranteed to be seen by the final
        // read, so no record can slip between the last poll and exit.
        let status = store.load_status(job).map_err(|e| e.to_string())?;
        let text = std::fs::read_to_string(job.cells_path()).unwrap_or_default();
        // `consumed` always sits on a record boundary; re-prefix the
        // unparsed suffix with the header so it parses standalone.
        let rows = if text.len() > consumed {
            let (rows, parsed) = if consumed == 0 {
                from_csv_tolerant_prefix(&text)
            } else {
                let doc = format!("{header}\n{}", &text[consumed..]);
                let (rows, parsed) = from_csv_tolerant_prefix(&doc);
                (rows, parsed.saturating_sub(header.len() + 1))
            };
            consumed += parsed;
            rows
        } else {
            Vec::new()
        };
        for r in &rows {
            if writeln!(out, "{}", r.to_csv_row()).is_err() {
                return Ok(()); // downstream pipe closed mid-stream
            }
        }
        printed += rows.len();
        if out.flush().is_err() {
            return Ok(());
        }
        match status.state {
            JobState::Done | JobState::Failed => {
                eprintln!(
                    "ftsimd: job {} is {} — {printed} record(s) streamed{}",
                    job.id,
                    status.state,
                    if status.state == JobState::Done && printed < status.cells_total {
                        " (resumed cells were not re-streamed; see `results` for the full grid)"
                    } else {
                        ""
                    }
                );
                return Ok(());
            }
            JobState::Queued | JobState::Running => std::thread::sleep(poll),
        }
    }
}

fn cmd_report(args: &Args) -> Result<(), String> {
    args.ensure_flags(&[])?;
    let [id] = args.positional.as_slice() else {
        return Err("report takes exactly one job id".to_string());
    };
    let store = open_store(args)?;
    let job = store.job(id).map_err(|e| e.to_string())?;
    let status = store.load_status(&job).map_err(|e| e.to_string())?;

    let records = if status.state == JobState::Done {
        // The canonical grid-order artifact — byte-identical to what the
        // one-shot Experiment would serialize, so the report matches
        // `Experiment::analyze()` exactly.
        let path = job.results_path();
        let text = std::fs::read_to_string(&path)
            .map_err(|e| format!("reading {}: {e}", path.display()))?;
        from_csv(&text).map_err(|e| format!("parsing {}: {e}", path.display()))?
    } else {
        let (merged, total) = merged_records(&store, &job)?;
        eprintln!(
            "ftsimd: job {id} is {} — report covers {} of {total} cells",
            status.state,
            merged.len(),
        );
        merged
    };
    print!("{}", ftsim_analysis::analyze_records(&records).render());
    Ok(())
}

fn cmd_stop(args: &Args) -> Result<(), String> {
    args.ensure_flags(&[])?;
    if !args.positional.is_empty() {
        return Err("stop takes no positional arguments".to_string());
    }
    let store = open_store(args)?;
    store.request_stop().map_err(|e| e.to_string())?;
    eprintln!("ftsimd: stop requested; the daemon will finish its cell in flight and exit");
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn strs(args: &[&str]) -> Vec<String> {
        args.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn args_parse_state_flags_and_positionals() {
        let args = parse_args(&strs(&[
            "job-1",
            "--state",
            "/tmp/x",
            "--json",
            "--poll-ms",
            "50",
        ]))
        .unwrap();
        assert_eq!(args.state, "/tmp/x");
        assert_eq!(args.positional, ["job-1"]);
        assert!(args.flag("--json"));
        assert_eq!(args.poll(), Duration::from_millis(50));

        assert!(parse_args(&strs(&["--state"])).is_err());
        assert!(parse_args(&strs(&["--poll-ms", "soon"])).is_err());
    }

    #[test]
    fn mistyped_flags_fail_instead_of_changing_behavior() {
        // `--drian` must not silently run a forever-polling daemon.
        assert_eq!(run(&strs(&["serve", "--drian"])), 1);
        assert_eq!(run(&strs(&["results", "x", "--jsn"])), 1);
        assert_eq!(run(&strs(&["stop", "--force"])), 1);
        assert_eq!(run(&strs(&["report", "x", "--json"])), 1);
    }

    #[test]
    fn report_watch_and_family_status_run_on_a_completed_job() {
        let dir = std::env::temp_dir().join(format!("ftsimd-cli-report-{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        let store = JobStore::open(&dir).unwrap();
        let mut spec = JobSpec::new("cli-report");
        spec.workloads = vec!["gcc".to_string()];
        spec.models = vec!["SS-2".to_string()];
        spec.fault_rates_pm = vec![0.0, 5_000.0];
        spec.site_mixes = vec!["uniform".to_string(), "addr-heavy".to_string()];
        spec.budgets = vec![1_200];
        let (id, _) = store.submit(&spec).unwrap();
        let job = store.job(&id).unwrap();
        crate::runner::run_job(&store, &job, &std::sync::atomic::AtomicBool::new(false)).unwrap();

        let state = dir.to_string_lossy().to_string();
        // report renders the analysis sections over the job's records.
        assert_eq!(run(&strs(&["report", &id, "--state", &state])), 0);
        // --watch on a terminal job prints everything streamed and exits.
        assert_eq!(
            run(&strs(&["results", &id, "--watch", "--state", &state])),
            0
        );
        // --watch and --json are mutually exclusive.
        assert_eq!(
            run(&strs(&[
                "results", &id, "--watch", "--json", "--state", &state
            ])),
            1
        );
        // Single-job status includes the per-family progress lines.
        assert_eq!(run(&strs(&["status", &id, "--state", &state])), 0);
        let status = store.load_status(&job).unwrap();
        let families = family_progress(&store, &job, &status).unwrap();
        assert_eq!(families.len(), 1, "one (workload, budget, model) shard");
        assert_eq!(families[0].workload, "gcc");
        assert_eq!(families[0].model, "SS-2");
        assert_eq!(families[0].budget, 1_200);
        assert_eq!((families[0].done, families[0].total), (4, 4));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn unknown_command_fails_with_usage() {
        assert_eq!(run(&strs(&["explode"])), 1);
        assert_eq!(run(&strs(&[])), 1);
        assert_eq!(run(&strs(&["help"])), 0);
    }
}
