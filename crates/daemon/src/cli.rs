//! The `ftsimd` command-line front end.
//!
//! ```text
//! ftsimd submit <spec.toml|spec.json> [--state DIR]
//! ftsimd serve  [--state DIR] [--drain] [--poll-ms N]
//! ftsimd status [JOB] [--state DIR]
//! ftsimd results <JOB> [--state DIR] [--json]
//! ftsimd stop   [--state DIR]
//! ```
//!
//! The state directory defaults to `./ftsimd-state`, overridable with
//! `--state` or the `FTSIMD_STATE` environment variable. `submit`
//! prints the job id alone on stdout (scripts capture it; the human
//! detail goes to stderr) and deduplicates byte-identical specs by
//! attaching to the existing job. `results` prints a finished job's
//! grid-order CSV verbatim; for a job still in flight it merges the
//! streamed records into grid order and reports the gaps on stderr.

use crate::runner::{install_signal_handlers, serve, ServeOptions};
use crate::spec::JobSpec;
use crate::store::{JobState, JobStore};
use ftsim::harness::{from_csv_tolerant, to_csv, to_json, RunRecord};
use std::time::Duration;

const USAGE: &str = "\
ftsimd — long-running sweep daemon for the ftsim fault-tolerant superscalar

USAGE:
    ftsimd submit <spec.toml|spec.json> [--state DIR]
    ftsimd serve  [--state DIR] [--drain] [--poll-ms N]
    ftsimd status [JOB] [--state DIR]
    ftsimd results <JOB> [--state DIR] [--json]
    ftsimd stop   [--state DIR]

COMMANDS:
    submit    Validate a job spec and enqueue it (or attach to an
              identical existing job). Prints the job id on stdout.
    serve     Run the daemon: execute queued jobs, streaming results;
              --drain exits once the queue is empty. Ctrl-C, SIGTERM or
              `ftsimd stop` shut down gracefully (the interrupted job is
              re-queued and resumes from its streamed records).
    status    Show the queue, or one job's progress.
    results   Print a job's records as grid-order CSV (--json for JSON).
    stop      Ask the serving daemon to shut down gracefully.

The state directory defaults to ./ftsimd-state, or $FTSIMD_STATE.
";

/// Parsed global options.
struct Args {
    state: String,
    flags: Vec<String>,
    positional: Vec<String>,
}

fn parse_args(args: &[String]) -> Result<Args, String> {
    let mut state = std::env::var("FTSIMD_STATE").unwrap_or_else(|_| "ftsimd-state".to_string());
    let mut flags = Vec::new();
    let mut positional = Vec::new();
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--state" => {
                state = iter
                    .next()
                    .ok_or("--state needs a directory argument")?
                    .clone();
            }
            "--poll-ms" => {
                let value = iter.next().ok_or("--poll-ms needs a number argument")?;
                value
                    .parse::<u64>()
                    .map_err(|_| format!("bad --poll-ms value `{value}`"))?;
                flags.push(format!("--poll-ms={value}"));
            }
            flag if flag.starts_with("--") => flags.push(flag.to_string()),
            _ => positional.push(arg.clone()),
        }
    }
    Ok(Args {
        state,
        flags,
        positional,
    })
}

impl Args {
    fn flag(&self, name: &str) -> bool {
        self.flags.iter().any(|f| f == name)
    }

    /// Rejects any flag the current command does not define — a typo
    /// must fail loudly, not silently change behavior (`--drian` running
    /// a drain-mode invocation as a forever-polling daemon, say).
    fn ensure_flags(&self, allowed: &[&str]) -> Result<(), String> {
        for flag in &self.flags {
            let name = flag.split_once('=').map_or(flag.as_str(), |(n, _)| n);
            if !allowed.contains(&name) {
                return Err(format!("unknown flag `{name}` for this command"));
            }
        }
        Ok(())
    }

    fn poll(&self) -> Duration {
        self.flags
            .iter()
            .find_map(|f| f.strip_prefix("--poll-ms="))
            .and_then(|v| v.parse().ok())
            .map_or(Duration::from_millis(500), Duration::from_millis)
    }
}

/// Runs the CLI with the given arguments (everything after the program
/// name) and returns the process exit code. The `ftsimd` binary is a
/// one-line wrapper around this.
pub fn run(args: &[String]) -> i32 {
    match dispatch(args) {
        Ok(()) => 0,
        Err(message) => {
            eprintln!("ftsimd: {message}");
            1
        }
    }
}

fn dispatch(args: &[String]) -> Result<(), String> {
    let Some((command, rest)) = args.split_first() else {
        eprint!("{USAGE}");
        return Err("missing command".to_string());
    };
    let parsed = parse_args(rest)?;
    match command.as_str() {
        "submit" => cmd_submit(&parsed),
        "serve" => cmd_serve(&parsed),
        "status" => cmd_status(&parsed),
        "results" => cmd_results(&parsed),
        "stop" => cmd_stop(&parsed),
        "help" | "--help" | "-h" => {
            print!("{USAGE}");
            Ok(())
        }
        other => {
            eprint!("{USAGE}");
            Err(format!("unknown command `{other}`"))
        }
    }
}

fn open_store(args: &Args) -> Result<JobStore, String> {
    JobStore::open(&args.state).map_err(|e| e.to_string())
}

fn cmd_submit(args: &Args) -> Result<(), String> {
    args.ensure_flags(&[])?;
    let [path] = args.positional.as_slice() else {
        return Err("submit takes exactly one spec file".to_string());
    };
    let text = std::fs::read_to_string(path).map_err(|e| format!("reading spec {path}: {e}"))?;
    let spec = JobSpec::parse(&text).map_err(|e| e.to_string())?;
    let store = open_store(args)?;
    let (id, created) = store.submit(&spec).map_err(|e| e.to_string())?;
    if created {
        eprintln!(
            "ftsimd: submitted job {id} ({} cells)",
            cells_of(&store, &id)
        );
    } else {
        eprintln!("ftsimd: identical spec already submitted as {id}; attaching");
    }
    println!("{id}");
    Ok(())
}

fn cells_of(store: &JobStore, id: &str) -> String {
    store
        .job(id)
        .and_then(|job| store.load_status(&job))
        .map_or_else(|_| "?".to_string(), |s| s.cells_total.to_string())
}

fn cmd_serve(args: &Args) -> Result<(), String> {
    args.ensure_flags(&["--drain", "--poll-ms"])?;
    if !args.positional.is_empty() {
        return Err("serve takes no positional arguments".to_string());
    }
    install_signal_handlers();
    let store = open_store(args)?;
    let opts = ServeOptions {
        drain: args.flag("--drain"),
        poll: args.poll(),
    };
    eprintln!(
        "ftsimd: serving {} ({})",
        store.root().display(),
        if opts.drain {
            "drain mode"
        } else {
            "daemon mode"
        }
    );
    serve(&store, &opts).map_err(|e| e.to_string())
}

fn cmd_status(args: &Args) -> Result<(), String> {
    args.ensure_flags(&[])?;
    let store = open_store(args)?;
    match args.positional.as_slice() {
        [] => {
            let jobs = store.jobs().map_err(|e| e.to_string())?;
            if jobs.is_empty() {
                println!("no jobs in {}", store.root().display());
                return Ok(());
            }
            for job in jobs {
                match store.load_status(&job) {
                    Ok(s) => println!(
                        "{:<28} {:<8} {:>6}/{} {}",
                        job.id, s.state, s.cells_done, s.cells_total, s.error
                    ),
                    Err(e) => println!("{:<28} <unreadable status: {e}>", job.id),
                }
            }
            Ok(())
        }
        [id] => {
            let job = store.job(id).map_err(|e| e.to_string())?;
            let status = store.load_status(&job).map_err(|e| e.to_string())?;
            println!("job:    {id}");
            println!("state:  {}", status.state);
            println!("cells:  {}/{}", status.cells_done, status.cells_total);
            if !status.error.is_empty() {
                println!("error:  {}", status.error);
            }
            println!("dir:    {}", job.dir().display());
            Ok(())
        }
        _ => Err("status takes at most one job id".to_string()),
    }
}

fn cmd_results(args: &Args) -> Result<(), String> {
    args.ensure_flags(&["--json"])?;
    let [id] = args.positional.as_slice() else {
        return Err("results takes exactly one job id".to_string());
    };
    let store = open_store(args)?;
    let job = store.job(id).map_err(|e| e.to_string())?;
    let json = args.flag("--json");
    let status = store.load_status(&job).map_err(|e| e.to_string())?;

    if status.state == JobState::Done {
        // A finished job's artifacts are canonical: print them verbatim.
        let path = if json {
            job.results_json_path()
        } else {
            job.results_path()
        };
        let text = std::fs::read_to_string(&path)
            .map_err(|e| format!("reading {}: {e}", path.display()))?;
        print!("{text}");
        return Ok(());
    }

    // In-flight (or interrupted) job: merge the streamed records into
    // grid order and report what is still missing.
    let streamed = std::fs::read_to_string(job.cells_path()).unwrap_or_default();
    let (streamed, _) = from_csv_tolerant(&streamed);
    let spec = store.load_spec(&job).map_err(|e| e.to_string())?;
    let identities = spec
        .to_experiment()
        .map_err(|e| e.to_string())?
        .identities()
        .map_err(|e| e.to_string())?;
    // Newest row wins: a cell that failed on one pass and was re-run on
    // a later one (failed records are never resume-matched) appears
    // twice in the log, and the recent record is the truthful one.
    let merged: Vec<RunRecord> = identities
        .iter()
        .filter_map(|id| streamed.iter().rev().find(|r| r.same_identity(id)).cloned())
        .collect();
    eprintln!(
        "ftsimd: job {id} is {} — {} of {} cells merged (grid order)",
        status.state,
        merged.len(),
        identities.len()
    );
    if json {
        print!("{}", to_json(&merged));
    } else {
        print!("{}", to_csv(&merged));
    }
    Ok(())
}

fn cmd_stop(args: &Args) -> Result<(), String> {
    args.ensure_flags(&[])?;
    if !args.positional.is_empty() {
        return Err("stop takes no positional arguments".to_string());
    }
    let store = open_store(args)?;
    store.request_stop().map_err(|e| e.to_string())?;
    eprintln!("ftsimd: stop requested; the daemon will finish its cell in flight and exit");
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn strs(args: &[&str]) -> Vec<String> {
        args.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn args_parse_state_flags_and_positionals() {
        let args = parse_args(&strs(&[
            "job-1",
            "--state",
            "/tmp/x",
            "--json",
            "--poll-ms",
            "50",
        ]))
        .unwrap();
        assert_eq!(args.state, "/tmp/x");
        assert_eq!(args.positional, ["job-1"]);
        assert!(args.flag("--json"));
        assert_eq!(args.poll(), Duration::from_millis(50));

        assert!(parse_args(&strs(&["--state"])).is_err());
        assert!(parse_args(&strs(&["--poll-ms", "soon"])).is_err());
    }

    #[test]
    fn mistyped_flags_fail_instead_of_changing_behavior() {
        // `--drian` must not silently run a forever-polling daemon.
        assert_eq!(run(&strs(&["serve", "--drian"])), 1);
        assert_eq!(run(&strs(&["results", "x", "--jsn"])), 1);
        assert_eq!(run(&strs(&["stop", "--force"])), 1);
    }

    #[test]
    fn unknown_command_fails_with_usage() {
        assert_eq!(run(&strs(&["explode"])), 1);
        assert_eq!(run(&strs(&[])), 1);
        assert_eq!(run(&strs(&["help"])), 0);
    }
}
