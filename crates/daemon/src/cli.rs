//! The `ftsimd` command-line front end.
//!
//! ```text
//! ftsimd submit <spec.toml|spec.json> [--state DIR | --remote ADDR]
//! ftsimd serve  [--state DIR] [--drain] [--poll-ms N] [--listen ADDR]
//!               [--lease-ms N] [--lease-mode strict|relaxed] [--workers N]
//!               [--max-body BYTES] [--head-timeout-ms N] [--token-file FILE]
//!               [--gc-interval-ms N] [--max-live-jobs N]
//!               [--max-queued-cells N] [--max-state-bytes N]
//! ftsimd gc     [--state DIR] [--quarantine-retain-secs N]
//! ftsimd jobs   [--state DIR | --remote ADDR]
//! ftsimd status [JOB] [--state DIR | --remote ADDR]
//! ftsimd results <JOB> [--state DIR | --remote ADDR]
//!               [--json | --watch [--interval MS]]
//! ftsimd report <JOB> [--state DIR | --remote ADDR]
//!               [--json | --watch [--interval MS]]
//! ftsimd trace  [--state DIR | --remote ADDR] [-n N] [--follow]
//! ftsimd profile <JOB> [--state DIR]
//! ftsimd stop   [JOB] [--state DIR | --remote ADDR]
//! ```
//!
//! The state directory defaults to `./ftsimd-state`, overridable with
//! `--state` or the `FTSIMD_STATE` environment variable. `submit`
//! prints the job id alone on stdout (scripts capture it; the human
//! detail goes to stderr) and deduplicates byte-identical specs by
//! attaching to the existing job. `results` prints a finished job's
//! grid-order CSV verbatim; for a job still in flight it merges the
//! streamed records into grid order and reports the gaps on stderr —
//! or, with `--watch`, follows the job's `cells.csv` and streams each
//! record as it completes (`--interval` sets the poll cadence).
//! `report` runs the `ftsim-analysis` layer over a job's records:
//! outcome taxonomy (masked / detected / SDC / hang), per-site
//! sensitivity with Wilson intervals, detection-latency distributions,
//! and MTTF extrapolation — `--json` renders it as a JSON document.
//!
//! **Remote mode.** Every verb except `serve` also speaks to a running
//! `ftsimd serve --listen <addr>` over its HTTP API when given
//! `--remote <addr>` (or `FTSIMD_REMOTE`): the client touches no state
//! directory at all — submissions, listings, streamed results and
//! reports all travel over the socket. `stop` with a job id pauses that
//! job; without one it shuts the serving daemon down.

use crate::fabric::{family_progress, merged_records, LeaseMode};
use crate::gc::{gc_pass, GcOptions};
use crate::http::{http_request, http_stream};
use crate::runner::{install_signal_handlers, serve, ServeOptions};
use crate::spec::JobSpec;
use crate::store::{Job, JobState, JobStore, QuotaPolicy};
use ftsim::harness::{from_csv, from_csv_tolerant_prefix, to_csv, to_json, RunRecord};
use ftsim_stats::JsonValue;
use std::time::Duration;

const USAGE: &str = "\
ftsimd — long-running sweep daemon for the ftsim fault-tolerant superscalar

USAGE:
    ftsimd submit <spec.toml|spec.json> [--state DIR | --remote ADDR]
    ftsimd serve  [--state DIR] [--drain] [--poll-ms N] [--listen ADDR]
                  [--lease-ms N] [--lease-mode strict|relaxed] [--workers N]
                  [--max-body BYTES] [--head-timeout-ms N] [--token-file FILE]
                  [--gc-interval-ms N] [--max-live-jobs N]
                  [--max-queued-cells N] [--max-state-bytes N]
    ftsimd gc     [--state DIR] [--quarantine-retain-secs N]
    ftsimd jobs   [--state DIR | --remote ADDR]
    ftsimd status [JOB] [--state DIR | --remote ADDR]
    ftsimd results <JOB> [--state DIR | --remote ADDR]
                  [--json | --watch [--interval MS]]
    ftsimd report <JOB> [--state DIR | --remote ADDR]
                  [--json | --watch [--interval MS]]
    ftsimd trace  [--state DIR | --remote ADDR] [-n N] [--follow]
    ftsimd profile <JOB> [--state DIR]
    ftsimd stop   [JOB] [--state DIR | --remote ADDR]

COMMANDS:
    submit    Validate a job spec and enqueue it (or attach to an
              identical existing job). Prints the job id on stdout.
    serve     Run the daemon: execute queued jobs, streaming results;
              --drain exits once the queue is empty. Several serve
              processes may share one state directory — they partition
              work by family claims with --lease-ms expiry (default
              30000) and steal from crashed peers. --listen exposes the
              HTTP API (the bound address lands in <state>/http.addr);
              --workers caps this process's worker threads; --max-body
              and --head-timeout-ms bound HTTP request size (413) and
              slow-loris patience (408). --lease-mode relaxed verifies
              every claim by owner echo (for NFS-grade filesystems
              whose O_EXCL/rename are unreliable). --token-file FILE
              (or $FTSIMD_TOKEN) gates every mutating HTTP verb behind
              `Authorization: Bearer <token>` (401 without it).
              --max-live-jobs/--max-queued-cells/--max-state-bytes
              install a per-submitter admission quota (0 = unlimited;
              over-quota submissions get 429 + Retry-After).
              --gc-interval-ms sets the background TTL garbage
              collection cadence (default hourly; 0 disables). Ctrl-C,
              SIGTERM or `ftsimd stop` shut down gracefully (claimed
              work is re-queued and resumes from its streamed records).
    gc        Run one garbage-collection pass now: expire terminal jobs
              whose spec's ttl_secs/retain_secs elapsed, drop cells.csv
              working files sealed into results.csv, sweep stale-lease
              debris, and age out quarantine evidence older than
              --quarantine-retain-secs (default 7 days). Live jobs are
              never touched.
    jobs      List every job: state, cell progress, submitter, priority.
    status    Show the queue, or one job's progress (with per-family
              cells-done counts for a single job).
    results   Print a job's records as grid-order CSV (--json for JSON);
              --watch follows the streamed results until the job is
              done, polling every --interval MS (default 500).
    report    Analyze a job's records: outcome taxonomy, per-site
              sensitivity (Wilson 95% CIs), detection latency, MTTF.
              --json emits the report as a JSON document. --watch
              re-runs the analysis whenever new cells land and prints
              one compact JSON snapshot per line until the job is
              terminal (the final line covers the canonical results).
    trace     Print recent span events from the fabric's trace journals
              (<state>/trace/*.ndjson, merged across processes by
              timestamp), one JSON object per line. -n caps the tail
              (default 50); --follow keeps polling for new events until
              interrupted (local mode only).
    profile   Show a job's per-cell stage profile (profile.csv): calls
              and estimated wall time per pipeline stage. Rows exist
              only for cells run under FTSIM_PROFILE=1.
    stop      With a job id: pause that job (resubmit its spec to
              resume). Without: ask the serving daemon(s) on the state
              directory to shut down gracefully.

Any verb but serve accepts --remote ADDR (or $FTSIMD_REMOTE) to talk to
a `serve --listen` daemon over HTTP instead of a local state directory.
The state directory defaults to ./ftsimd-state, or $FTSIMD_STATE.
";

/// Flags that take a value (`--flag VALUE`); stored as `--flag=VALUE`.
/// The `true` entries are validated as unsigned integers at parse time.
const VALUE_FLAGS: [(&str, bool); 16] = [
    ("-n", true),
    ("--poll-ms", true),
    ("--interval", true),
    ("--lease-ms", true),
    ("--workers", true),
    ("--max-body", true),
    ("--head-timeout-ms", true),
    ("--gc-interval-ms", true),
    ("--max-live-jobs", true),
    ("--max-queued-cells", true),
    ("--max-state-bytes", true),
    ("--quarantine-retain-secs", true),
    ("--listen", false),
    ("--remote", false),
    ("--token-file", false),
    ("--lease-mode", false),
];

/// Parsed global options.
struct Args {
    state: String,
    remote: Option<String>,
    flags: Vec<String>,
    positional: Vec<String>,
}

fn parse_args(args: &[String]) -> Result<Args, String> {
    let mut state = std::env::var("FTSIMD_STATE").unwrap_or_else(|_| "ftsimd-state".to_string());
    let mut remote = std::env::var("FTSIMD_REMOTE").ok();
    let mut flags = Vec::new();
    let mut positional = Vec::new();
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        if arg == "--state" {
            state = iter
                .next()
                .ok_or("--state needs a directory argument")?
                .clone();
            continue;
        }
        if arg == "--remote" {
            remote = Some(iter.next().ok_or("--remote needs an address")?.clone());
            continue;
        }
        if let Some((name, numeric)) = VALUE_FLAGS.iter().find(|(n, _)| n == arg) {
            let value = iter.next().ok_or(format!("{name} needs an argument"))?;
            if *numeric {
                value
                    .parse::<u64>()
                    .map_err(|_| format!("bad {name} value `{value}`"))?;
            }
            flags.push(format!("{name}={value}"));
            continue;
        }
        if arg.starts_with("--") {
            flags.push(arg.clone());
        } else {
            positional.push(arg.clone());
        }
    }
    Ok(Args {
        state,
        remote,
        flags,
        positional,
    })
}

impl Args {
    fn flag(&self, name: &str) -> bool {
        self.flags.iter().any(|f| f == name)
    }

    fn value(&self, name: &str) -> Option<&str> {
        self.flags
            .iter()
            .find_map(|f| f.strip_prefix(name)?.strip_prefix('='))
    }

    /// Rejects any flag the current command does not define — a typo
    /// must fail loudly, not silently change behavior (`--drian` running
    /// a drain-mode invocation as a forever-polling daemon, say).
    fn ensure_flags(&self, allowed: &[&str]) -> Result<(), String> {
        for flag in &self.flags {
            let name = flag.split_once('=').map_or(flag.as_str(), |(n, _)| n);
            if !allowed.contains(&name) {
                return Err(format!("unknown flag `{name}` for this command"));
            }
        }
        Ok(())
    }

    fn poll(&self) -> Duration {
        self.value("--poll-ms")
            .and_then(|v| v.parse().ok())
            .map_or(Duration::from_millis(500), Duration::from_millis)
    }

    /// The watch poll cadence: `--interval MS`, falling back to
    /// `--poll-ms` for symmetry with serve, then 500 ms.
    fn interval_ms(&self) -> u64 {
        self.value("--interval")
            .or_else(|| self.value("--poll-ms"))
            .and_then(|v| v.parse().ok())
            .unwrap_or(500)
    }

    /// Remote mode: every verb but serve routes over HTTP when set.
    fn remote(&self) -> Option<&str> {
        self.remote.as_deref()
    }
}

/// Runs the CLI with the given arguments (everything after the program
/// name) and returns the process exit code. The `ftsimd` binary is a
/// one-line wrapper around this.
pub fn run(args: &[String]) -> i32 {
    match dispatch(args) {
        Ok(()) => 0,
        Err(message) => {
            eprintln!("ftsimd: {message}");
            1
        }
    }
}

fn dispatch(args: &[String]) -> Result<(), String> {
    let Some((command, rest)) = args.split_first() else {
        eprint!("{USAGE}");
        return Err("missing command".to_string());
    };
    let parsed = parse_args(rest)?;
    match command.as_str() {
        "submit" => cmd_submit(&parsed),
        "serve" => cmd_serve(&parsed),
        "gc" => cmd_gc(&parsed),
        "jobs" => cmd_jobs(&parsed),
        "status" => cmd_status(&parsed),
        "results" => cmd_results(&parsed),
        "report" => cmd_report(&parsed),
        "trace" => cmd_trace(&parsed),
        "profile" => cmd_profile(&parsed),
        "stop" => cmd_stop(&parsed),
        "help" | "--help" | "-h" => {
            print!("{USAGE}");
            Ok(())
        }
        other => {
            eprint!("{USAGE}");
            Err(format!("unknown command `{other}`"))
        }
    }
}

fn open_store(args: &Args) -> Result<JobStore, String> {
    JobStore::open(&args.state).map_err(|e| e.to_string())
}

// ---------------------------------------------------------------------
// Remote plumbing.

/// Performs one remote request, turning non-2xx responses (which carry
/// a JSON `{"error": ...}` body) into CLI errors.
fn remote_call(addr: &str, method: &str, path: &str, body: Option<&str>) -> Result<String, String> {
    let (code, body) = http_request(addr, method, path, body)?;
    if (200..300).contains(&code) {
        return Ok(body);
    }
    let detail = JsonValue::parse(&body)
        .ok()
        .and_then(|v| v.get("error").and_then(|e| e.as_str().map(String::from)))
        .unwrap_or(body);
    Err(format!("remote {addr}: {detail} (http {code})"))
}

fn remote_json(addr: &str, path: &str) -> Result<JsonValue, String> {
    let body = remote_call(addr, "GET", path, None)?;
    JsonValue::parse(&body).map_err(|e| format!("remote {addr}: bad response: {e}"))
}

fn str_of(doc: &JsonValue, key: &str) -> String {
    doc.get(key)
        .and_then(|v| v.as_str())
        .unwrap_or("?")
        .to_string()
}

fn u64_of(doc: &JsonValue, key: &str) -> u64 {
    doc.get(key).and_then(|v| v.as_u64()).unwrap_or(0)
}

// ---------------------------------------------------------------------
// Verbs.

fn cmd_submit(args: &Args) -> Result<(), String> {
    args.ensure_flags(&[])?;
    let [path] = args.positional.as_slice() else {
        return Err("submit takes exactly one spec file".to_string());
    };
    let text = std::fs::read_to_string(path).map_err(|e| format!("reading spec {path}: {e}"))?;
    if let Some(addr) = args.remote() {
        // The server validates; the client only reads the file.
        let doc = JsonValue::parse(&remote_call(addr, "POST", "/jobs", Some(&text))?)
            .map_err(|e| format!("remote {addr}: bad response: {e}"))?;
        let id = str_of(&doc, "id");
        if doc.get("created").and_then(|v| v.as_bool()) == Some(true) {
            eprintln!(
                "ftsimd: submitted job {id} ({} cells) to {addr}",
                u64_of(&doc, "cells_total")
            );
        } else {
            eprintln!("ftsimd: identical spec already submitted as {id}; attaching");
        }
        println!("{id}");
        return Ok(());
    }
    let spec = JobSpec::parse(&text).map_err(|e| e.to_string())?;
    let store = open_store(args)?;
    let (id, created) = store.submit(&spec).map_err(|e| e.to_string())?;
    if created {
        eprintln!(
            "ftsimd: submitted job {id} ({} cells)",
            cells_of(&store, &id)
        );
    } else {
        eprintln!("ftsimd: identical spec already submitted as {id}; attaching");
    }
    println!("{id}");
    Ok(())
}

fn cells_of(store: &JobStore, id: &str) -> String {
    store
        .job(id)
        .and_then(|job| store.load_status(&job))
        .map_or_else(|_| "?".to_string(), |s| s.cells_total.to_string())
}

/// `--token-file FILE` (trimmed file contents) or `$FTSIMD_TOKEN`;
/// `None` leaves the HTTP API open.
fn serve_token(args: &Args) -> Result<Option<String>, String> {
    if let Some(path) = args.value("--token-file") {
        let text =
            std::fs::read_to_string(path).map_err(|e| format!("reading token file {path}: {e}"))?;
        let token = text.trim().to_string();
        if token.is_empty() {
            return Err(format!("token file {path} is empty"));
        }
        return Ok(Some(token));
    }
    Ok(std::env::var("FTSIMD_TOKEN")
        .ok()
        .map(|t| t.trim().to_string())
        .filter(|t| !t.is_empty()))
}

/// The admission quota the serve flags describe, or `None` when no
/// quota flag was given (leaving `<state>/quota.json` untouched).
fn serve_quota(args: &Args) -> Option<QuotaPolicy> {
    let get = |name: &str| args.value(name).and_then(|v| v.parse().ok());
    let (live, cells, bytes) = (
        get("--max-live-jobs"),
        get("--max-queued-cells"),
        get("--max-state-bytes"),
    );
    if live.is_none() && cells.is_none() && bytes.is_none() {
        return None;
    }
    Some(QuotaPolicy {
        max_live_jobs: live.unwrap_or(0),
        max_queued_cells: cells.unwrap_or(0),
        max_state_bytes: bytes.unwrap_or(0),
    })
}

fn cmd_serve(args: &Args) -> Result<(), String> {
    args.ensure_flags(&[
        "--drain",
        "--poll-ms",
        "--listen",
        "--lease-ms",
        "--lease-mode",
        "--workers",
        "--max-body",
        "--head-timeout-ms",
        "--token-file",
        "--gc-interval-ms",
        "--max-live-jobs",
        "--max-queued-cells",
        "--max-state-bytes",
    ])?;
    if !args.positional.is_empty() {
        return Err("serve takes no positional arguments".to_string());
    }
    if args.remote().is_some() {
        return Err("serve runs against a state directory, not --remote".to_string());
    }
    install_signal_handlers();
    let store = open_store(args)?;
    let defaults = ServeOptions::default();
    let lease_mode = match args.value("--lease-mode") {
        Some(mode) => LeaseMode::parse(mode)
            .ok_or_else(|| format!("bad --lease-mode `{mode}` (strict or relaxed)"))?,
        None => defaults.lease_mode,
    };
    let opts = ServeOptions {
        drain: args.flag("--drain"),
        poll: args.poll(),
        lease: args
            .value("--lease-ms")
            .and_then(|v| v.parse().ok())
            .map_or(Duration::from_secs(30), Duration::from_millis),
        workers: args
            .value("--workers")
            .and_then(|v| v.parse().ok())
            .unwrap_or(0),
        listen: args.value("--listen").map(String::from),
        max_body: args
            .value("--max-body")
            .and_then(|v| v.parse().ok())
            .unwrap_or(defaults.max_body),
        head_timeout: args
            .value("--head-timeout-ms")
            .and_then(|v| v.parse().ok())
            .map_or(defaults.head_timeout, Duration::from_millis),
        lease_mode,
        token: serve_token(args)?,
        gc_interval: args
            .value("--gc-interval-ms")
            .and_then(|v| v.parse().ok())
            .map_or(defaults.gc_interval, Duration::from_millis),
        quota: serve_quota(args),
    };
    eprintln!(
        "ftsimd: serving {} ({})",
        store.root().display(),
        if opts.drain {
            "drain mode"
        } else {
            "daemon mode"
        }
    );
    serve(&store, &opts).map_err(|e| e.to_string())
}

fn cmd_gc(args: &Args) -> Result<(), String> {
    args.ensure_flags(&["--quarantine-retain-secs"])?;
    if !args.positional.is_empty() {
        return Err("gc takes no positional arguments".to_string());
    }
    if args.remote().is_some() {
        return Err("gc runs against a state directory, not --remote".to_string());
    }
    let store = open_store(args)?;
    let mut opts = GcOptions::default();
    if let Some(secs) = args
        .value("--quarantine-retain-secs")
        .and_then(|v| v.parse().ok())
    {
        opts.quarantine_retain = Duration::from_secs(secs);
    }
    let report = gc_pass(&store, &opts).map_err(|e| e.to_string())?;
    if report.is_empty() {
        println!("ftsimd: gc: nothing to reclaim");
    } else {
        println!("ftsimd: gc: {report}");
    }
    Ok(())
}

/// One row of the `jobs` table, from either a local store or `/jobs`.
fn print_job_row(id: &str, state: &str, done: u64, total: u64, submitter: &str, error: &str) {
    println!(
        "{:<28} {:<8} {:>6}/{:<6} {:<12} {}",
        id,
        state,
        done,
        total,
        if submitter.is_empty() { "-" } else { submitter },
        error
    );
}

fn cmd_jobs(args: &Args) -> Result<(), String> {
    args.ensure_flags(&[])?;
    if !args.positional.is_empty() {
        return Err("jobs takes no positional arguments".to_string());
    }
    if let Some(addr) = args.remote() {
        let doc = remote_json(addr, "/jobs")?;
        let entries = doc
            .get("jobs")
            .and_then(|j| j.as_arr())
            .ok_or("remote response has no jobs array")?;
        if entries.is_empty() {
            println!("no jobs at {addr}");
            return Ok(());
        }
        for e in entries {
            print_job_row(
                &str_of(e, "id"),
                &str_of(e, "state"),
                u64_of(e, "cells_done"),
                u64_of(e, "cells_total"),
                &str_of(e, "submitter"),
                e.get("error").and_then(|v| v.as_str()).unwrap_or(""),
            );
        }
        return Ok(());
    }
    let store = open_store(args)?;
    let jobs = store.jobs().map_err(|e| e.to_string())?;
    if jobs.is_empty() {
        println!("no jobs in {}", store.root().display());
        return Ok(());
    }
    for job in jobs {
        let submitter = store
            .load_spec(&job)
            .map(|s| s.submitter)
            .unwrap_or_default();
        match store.load_status(&job) {
            Ok(s) => print_job_row(
                &job.id,
                &s.state.to_string(),
                s.cells_done as u64,
                s.cells_total as u64,
                &submitter,
                &s.error,
            ),
            Err(e) => println!("{:<28} <unreadable status: {e}>", job.id),
        }
    }
    Ok(())
}

fn cmd_status(args: &Args) -> Result<(), String> {
    args.ensure_flags(&[])?;
    if let Some(addr) = args.remote() {
        return match args.positional.as_slice() {
            [] => cmd_jobs(args),
            [id] => {
                let doc = remote_json(addr, &format!("/jobs/{id}/status"))?;
                println!("job:    {id}");
                println!("state:  {}", str_of(&doc, "state"));
                println!(
                    "cells:  {}/{}",
                    u64_of(&doc, "cells_done"),
                    u64_of(&doc, "cells_total")
                );
                let error = str_of(&doc, "error");
                if !error.is_empty() && error != "?" {
                    println!("error:  {error}");
                }
                if let Some(families) = doc.get("families").and_then(|f| f.as_arr()) {
                    println!("families:");
                    for f in families {
                        println!(
                            "  {:<10} budget {:>7}  {:<10} {:>4}/{}",
                            str_of(f, "workload"),
                            u64_of(f, "budget"),
                            str_of(f, "model"),
                            u64_of(f, "done"),
                            u64_of(f, "total")
                        );
                    }
                }
                Ok(())
            }
            _ => Err("status takes at most one job id".to_string()),
        };
    }
    let store = open_store(args)?;
    match args.positional.as_slice() {
        [] => {
            let jobs = store.jobs().map_err(|e| e.to_string())?;
            if jobs.is_empty() {
                println!("no jobs in {}", store.root().display());
                return Ok(());
            }
            for job in jobs {
                match store.load_status(&job) {
                    Ok(s) => println!(
                        "{:<28} {:<8} {:>6}/{} {}",
                        job.id, s.state, s.cells_done, s.cells_total, s.error
                    ),
                    Err(e) => println!("{:<28} <unreadable status: {e}>", job.id),
                }
            }
            Ok(())
        }
        [id] => {
            let job = store.job(id).map_err(|e| e.to_string())?;
            let status = store.load_status(&job).map_err(|e| e.to_string())?;
            println!("job:    {id}");
            println!("state:  {}", status.state);
            println!("cells:  {}/{}", status.cells_done, status.cells_total);
            if !status.error.is_empty() {
                println!("error:  {}", status.error);
            }
            println!("dir:    {}", job.dir().display());
            match family_progress(&store, &job) {
                Ok(families) => {
                    println!("families:");
                    for f in families {
                        println!(
                            "  {:<10} budget {:>7}  {:<10} {:>4}/{}",
                            f.family.workload, f.family.budget, f.family.model, f.done, f.total
                        );
                    }
                }
                // Family progress is best-effort decoration: an old job
                // whose spec no longer resolves still shows its totals.
                Err(e) => eprintln!("ftsimd: cannot compute family progress: {e}"),
            }
            Ok(())
        }
        _ => Err("status takes at most one job id".to_string()),
    }
}

fn cmd_results(args: &Args) -> Result<(), String> {
    args.ensure_flags(&["--json", "--watch", "--poll-ms", "--interval"])?;
    let [id] = args.positional.as_slice() else {
        return Err("results takes exactly one job id".to_string());
    };
    if args.flag("--watch") && args.flag("--json") {
        return Err("--watch streams CSV rows; it cannot combine with --json".to_string());
    }
    if let Some(addr) = args.remote() {
        if args.flag("--watch") {
            return watch_remote(addr, id, args.interval_ms());
        }
        let path = if args.flag("--json") {
            format!("/jobs/{id}/results?json")
        } else {
            format!("/jobs/{id}/results")
        };
        print!("{}", remote_call(addr, "GET", &path, None)?);
        return Ok(());
    }
    let store = open_store(args)?;
    let job = store.job(id).map_err(|e| e.to_string())?;
    if args.flag("--watch") {
        return watch_results(&store, &job, Duration::from_millis(args.interval_ms()));
    }
    let json = args.flag("--json");
    let status = store.load_status(&job).map_err(|e| e.to_string())?;

    if status.state == JobState::Done {
        // A finished job's artifacts are canonical: print them verbatim.
        let path = if json {
            job.results_json_path()
        } else {
            job.results_path()
        };
        let text = std::fs::read_to_string(&path)
            .map_err(|e| format!("reading {}: {e}", path.display()))?;
        print!("{text}");
        return Ok(());
    }

    let spec = store.load_spec(&job).map_err(|e| e.to_string())?;
    let (merged, total) = merged_records(&job, &spec).map_err(|e| e.to_string())?;
    eprintln!(
        "ftsimd: job {id} is {} — {} of {total} cells merged (grid order)",
        status.state,
        merged.len(),
    );
    if json {
        print!("{}", to_json(&merged));
    } else {
        print!("{}", to_csv(&merged));
    }
    Ok(())
}

/// `results --watch` over `--remote`: the server streams CSV rows as
/// cells complete and closes the connection when the job is terminal;
/// the client just forwards lines to stdout, stopping early if the
/// downstream pipe closes.
fn watch_remote(addr: &str, id: &str, interval_ms: u64) -> Result<(), String> {
    use std::io::Write;
    let stdout = std::io::stdout();
    let mut out = stdout.lock();
    let path = format!("/jobs/{id}/results?watch&interval={interval_ms}");
    let code = http_stream(addr, &path, &mut |line| {
        writeln!(out, "{line}").and_then(|()| out.flush()).is_ok()
    })?;
    if code != 200 {
        return Err(format!("remote {addr}: watch failed (http {code})"));
    }
    Ok(())
}

/// Follows a job's `cells.csv`, printing each streamed record (CSV, in
/// completion order) as it appears, until the job reaches a terminal
/// state. The tolerant loader is what makes mid-write polling safe: a
/// torn tail row simply does not count as arrived yet. A closed stdout
/// (`ftsimd results --watch | head`) ends the watch cleanly instead of
/// panicking on the broken pipe.
///
/// **Exit condition.** The watch exits exactly when (1) a terminal
/// status (`done`/`failed`) has been observed, and (2) one final read of
/// the *canonical* record set taken after that observation —
/// `results.csv` for a done job, the merged streamed records otherwise —
/// has been forwarded. Cells the watch never saw stream (they were
/// resumed from an earlier run, or `cells.csv` was already sealed into
/// `results.csv` and dropped by GC) are backfilled from that final read,
/// so a watch on a terminal-but-unmerged job prints the full record set
/// and exits instead of hanging or silently truncating.
///
/// Polling is incremental: the byte boundary after the last complete
/// record ([`from_csv_tolerant_prefix`]) is remembered, and each poll
/// parses only the appended suffix — a watch on a large job stays O(new
/// rows) per tick instead of re-parsing the whole growing log.
///
/// Read trouble (a flaky disk, an injected `eio@fabric.cells.read`)
/// does not kill the watch outright: consecutive failures back off
/// exponentially under the shared [`crate::http::watch_backoff`]
/// budget, and only an exhausted budget becomes a CLI error.
fn watch_results(store: &JobStore, job: &Job, poll: Duration) -> Result<(), String> {
    use std::io::Write;
    let stdout = std::io::stdout();
    let mut out = stdout.lock();
    let header = RunRecord::csv_header();
    if writeln!(out, "{header}").is_err() {
        return Ok(()); // reader went away before the header
    }
    let mut printed = 0usize;
    let mut consumed = 0usize; // bytes of cells.csv fully parsed
    let mut seen: std::collections::HashSet<String> = std::collections::HashSet::new();
    let mut backoff = crate::http::watch_backoff();
    let retry_or = |backoff: &mut ftsim_chaos::retry::Backoff, e: String| match backoff.next_delay()
    {
        Some(delay) => {
            std::thread::sleep(delay);
            Ok(())
        }
        None => Err(format!(
            "watching {}: {e} (after {} consecutive failed reads)",
            job.id,
            backoff.attempts()
        )),
    };
    loop {
        // Status first, cells second: anything streamed before a
        // terminal status was set is guaranteed to be seen by the final
        // read, so no record can slip between the last poll and exit.
        let status = match store.load_status(job) {
            Ok(status) => status,
            Err(e) => {
                retry_or(&mut backoff, e.to_string())?;
                continue;
            }
        };
        let text =
            match ftsim_chaos::io().read(crate::failpoints::FABRIC_CELLS_READ, &job.cells_path()) {
                Ok(bytes) => String::from_utf8_lossy(&bytes).into_owned(),
                Err(e) if e.kind() == std::io::ErrorKind::NotFound => String::new(),
                Err(e) => {
                    retry_or(&mut backoff, e.to_string())?;
                    continue;
                }
            };
        backoff = crate::http::watch_backoff(); // a clean poll resets the budget
                                                // `consumed` always sits on a record boundary; re-prefix the
                                                // unparsed suffix with the header so it parses standalone.
        let rows = if text.len() > consumed {
            let (rows, parsed) = if consumed == 0 {
                from_csv_tolerant_prefix(&text)
            } else {
                let doc = format!("{header}\n{}", &text[consumed..]);
                let (rows, parsed) = from_csv_tolerant_prefix(&doc);
                (rows, parsed.saturating_sub(header.len() + 1))
            };
            consumed += parsed;
            rows
        } else {
            Vec::new()
        };
        for r in &rows {
            if writeln!(out, "{}", r.to_csv_row()).is_err() {
                return Ok(()); // downstream pipe closed mid-stream
            }
            seen.insert(r.cell_label());
        }
        printed += rows.len();
        if out.flush().is_err() {
            return Ok(());
        }
        match status.state {
            JobState::Done | JobState::Failed => {
                // Final merged read: backfill anything that never
                // streamed past this watch (resumed cells from an
                // earlier run, or a cells.csv GC already sealed into
                // results.csv) so the watch always ends with the full
                // record set.
                let canonical = if status.state == JobState::Done {
                    std::fs::read_to_string(job.results_path())
                        .ok()
                        .and_then(|text| from_csv(&text).ok())
                } else {
                    store
                        .load_spec(job)
                        .ok()
                        .and_then(|spec| merged_records(job, &spec).ok())
                        .map(|(records, _total)| records)
                };
                let mut backfilled = 0usize;
                if let Some(records) = canonical {
                    for r in records.iter().filter(|r| !seen.contains(&r.cell_label())) {
                        if writeln!(out, "{}", r.to_csv_row()).is_err() {
                            return Ok(());
                        }
                        backfilled += 1;
                    }
                    if out.flush().is_err() {
                        return Ok(());
                    }
                }
                printed += backfilled;
                eprintln!(
                    "ftsimd: job {} is {} — {printed} record(s) streamed{}",
                    job.id,
                    status.state,
                    if backfilled > 0 {
                        format!(" ({backfilled} backfilled from the final merged read)")
                    } else {
                        String::new()
                    }
                );
                return Ok(());
            }
            JobState::Queued | JobState::Running => std::thread::sleep(poll),
        }
    }
}

fn cmd_report(args: &Args) -> Result<(), String> {
    args.ensure_flags(&["--json", "--watch", "--poll-ms", "--interval"])?;
    let [id] = args.positional.as_slice() else {
        return Err("report takes exactly one job id".to_string());
    };
    if args.flag("--watch") && args.flag("--json") {
        return Err("--watch already streams JSON snapshots; drop --json".to_string());
    }
    if let Some(addr) = args.remote() {
        if args.flag("--watch") {
            return watch_report_remote(addr, id, args.interval_ms());
        }
        let path = if args.flag("--json") {
            format!("/jobs/{id}/report")
        } else {
            format!("/jobs/{id}/report?format=text")
        };
        print!("{}", remote_call(addr, "GET", &path, None)?);
        return Ok(());
    }
    let store = open_store(args)?;
    let job = store.job(id).map_err(|e| e.to_string())?;
    if args.flag("--watch") {
        return watch_report(&store, &job, Duration::from_millis(args.interval_ms()));
    }
    let status = store.load_status(&job).map_err(|e| e.to_string())?;

    let records = if status.state == JobState::Done {
        // The canonical grid-order artifact — byte-identical to what the
        // one-shot Experiment would serialize, so the report matches
        // `Experiment::analyze()` exactly.
        let path = job.results_path();
        let text = std::fs::read_to_string(&path)
            .map_err(|e| format!("reading {}: {e}", path.display()))?;
        from_csv(&text).map_err(|e| format!("parsing {}: {e}", path.display()))?
    } else {
        let spec = store.load_spec(&job).map_err(|e| e.to_string())?;
        let (merged, total) = merged_records(&job, &spec).map_err(|e| e.to_string())?;
        eprintln!(
            "ftsimd: job {id} is {} — report covers {} of {total} cells",
            status.state,
            merged.len(),
        );
        merged
    };
    let report = ftsim_analysis::analyze_records(&records);
    if args.flag("--json") {
        print!("{}", report.to_json());
    } else {
        print!("{}", report.render());
    }
    Ok(())
}

/// `report --watch` against a local store: re-analyzes the merged
/// records whenever new cells land, printing one compact JSON snapshot
/// per line — the same lines `GET /jobs/<id>/report?watch` streams —
/// and exits after the snapshot taken at the terminal state (which
/// analyzes the canonical `results.csv` when the job finished).
fn watch_report(store: &JobStore, job: &Job, poll: Duration) -> Result<(), String> {
    use std::io::Write;
    let stdout = std::io::stdout();
    let mut out = stdout.lock();
    let mut last_cells: Option<usize> = None;
    loop {
        let status = store.load_status(job).map_err(|e| e.to_string())?;
        let terminal = matches!(status.state, JobState::Done | JobState::Failed);
        let records = if status.state == JobState::Done {
            let text = std::fs::read_to_string(job.results_path())
                .map_err(|e| format!("reading results: {e}"))?;
            from_csv(&text).map_err(|e| e.to_string())?
        } else {
            let spec = store.load_spec(job).map_err(|e| e.to_string())?;
            merged_records(job, &spec).map_err(|e| e.to_string())?.0
        };
        if terminal || last_cells != Some(records.len()) {
            last_cells = Some(records.len());
            let line = crate::http::report_snapshot(status.state, &records);
            if writeln!(out, "{line}").is_err() || out.flush().is_err() {
                return Ok(()); // downstream pipe closed
            }
        }
        if terminal {
            return Ok(());
        }
        std::thread::sleep(poll);
    }
}

/// `report --watch` over `--remote`: the server re-analyzes as cells
/// land and closes the stream after the terminal snapshot; the client
/// forwards lines to stdout.
fn watch_report_remote(addr: &str, id: &str, interval_ms: u64) -> Result<(), String> {
    use std::io::Write;
    let stdout = std::io::stdout();
    let mut out = stdout.lock();
    let path = format!("/jobs/{id}/report?watch&interval={interval_ms}");
    let code = http_stream(addr, &path, &mut |line| {
        writeln!(out, "{line}").and_then(|()| out.flush()).is_ok()
    })?;
    if code != 200 {
        return Err(format!("remote {addr}: report watch failed (http {code})"));
    }
    Ok(())
}

fn cmd_trace(args: &Args) -> Result<(), String> {
    args.ensure_flags(&["-n", "--follow", "--poll-ms", "--interval"])?;
    if !args.positional.is_empty() {
        return Err("trace takes no positional arguments".to_string());
    }
    let n: usize = args.value("-n").and_then(|v| v.parse().ok()).unwrap_or(50);
    if let Some(addr) = args.remote() {
        if args.flag("--follow") {
            return Err(
                "--follow tails local journals; use plain `trace` over --remote".to_string(),
            );
        }
        print!(
            "{}",
            remote_call(addr, "GET", &format!("/trace?n={n}"), None)?
        );
        return Ok(());
    }
    let store = open_store(args)?;
    let dir = store.trace_dir();
    use std::io::Write;
    let stdout = std::io::stdout();
    let mut out = stdout.lock();
    let events = crate::http::read_trace_journals(&dir);
    let skip = events.len().saturating_sub(n);
    for e in &events[skip..] {
        if writeln!(out, "{}", e.render_line()).is_err() {
            return Ok(());
        }
    }
    if out.flush().is_err() || !args.flag("--follow") {
        return Ok(());
    }
    // Follow mode: tail each journal incrementally from its current
    // length, interleaving new events by timestamp, until interrupted
    // (or stdout closes). Only whole lines are consumed, so an append
    // caught mid-write is picked up complete on the next poll.
    let mut consumed: std::collections::HashMap<std::path::PathBuf, usize> =
        std::collections::HashMap::new();
    for entry in std::fs::read_dir(&dir).into_iter().flatten().flatten() {
        if let Ok(meta) = entry.metadata() {
            consumed.insert(entry.path(), meta.len() as usize);
        }
    }
    let poll = Duration::from_millis(args.interval_ms());
    loop {
        std::thread::sleep(poll);
        let mut fresh = Vec::new();
        for entry in std::fs::read_dir(&dir).into_iter().flatten().flatten() {
            let path = entry.path();
            let name = path.file_name().and_then(|f| f.to_str()).unwrap_or("");
            if !name.contains(".ndjson") {
                continue;
            }
            let Ok(text) = std::fs::read_to_string(&path) else {
                continue;
            };
            let at = consumed.entry(path).or_insert(0);
            if text.len() < *at {
                *at = 0; // the journal rotated under us: restart it
            }
            let upto = text[*at..].rfind('\n').map_or(*at, |i| *at + i + 1);
            fresh.extend(
                text[*at..upto]
                    .lines()
                    .filter_map(ftsim_obs::trace::TraceEvent::parse_line),
            );
            *at = upto;
        }
        fresh.sort_by_key(|e| e.ts_ms);
        for e in &fresh {
            if writeln!(out, "{}", e.render_line()).is_err() {
                return Ok(());
            }
        }
        if out.flush().is_err() {
            return Ok(());
        }
    }
}

fn cmd_profile(args: &Args) -> Result<(), String> {
    args.ensure_flags(&[])?;
    let [id] = args.positional.as_slice() else {
        return Err("profile takes exactly one job id".to_string());
    };
    if args.remote().is_some() {
        return Err("profile reads the job's local profile.csv; --remote is not supported".into());
    }
    let store = open_store(args)?;
    let job = store.job(id).map_err(|e| e.to_string())?;
    let path = job.profile_path();
    let text = std::fs::read_to_string(&path).map_err(|_| {
        format!("no stage profile for {id}; run the sweep under FTSIM_PROFILE=1 to collect one")
    })?;
    let mut lines = text.lines();
    if lines.next() != Some(crate::fabric::profile_header().as_str()) {
        return Err(format!("unrecognized profile header in {}", path.display()));
    }
    use ftsim_core::profile::STAGE_NAMES;
    let stage_cols: String = STAGE_NAMES
        .map(|s| format!("{:>13}", format!("{s}_ms")))
        .concat();
    println!(
        "{:<42} {:<8} {:>10} {:>8}{stage_cols}",
        "cell", "path", "cycles", "samples"
    );
    let mut total_ns = [0u64; 5];
    let mut total_calls = [0u64; 5];
    let mut rows = 0u64;
    for line in lines {
        let cols: Vec<&str> = line.split(',').collect();
        if cols.len() != 14 {
            continue; // torn tail row: the profile is best-effort
        }
        let num = |i: usize| cols[i].parse::<u64>().unwrap_or(0);
        let mut est = String::new();
        for s in 0..STAGE_NAMES.len() {
            total_calls[s] += num(4 + s);
            total_ns[s] += num(9 + s);
            est.push_str(&format!("{:>13.3}", num(9 + s) as f64 / 1e6));
        }
        println!(
            "{:<42} {:<8} {:>10} {:>8}{est}",
            cols[0],
            cols[1],
            num(2),
            num(3)
        );
        rows += 1;
    }
    let total: String = total_ns
        .map(|ns| format!("{:>13.3}", ns as f64 / 1e6))
        .concat();
    println!(
        "{:<42} {:<8} {:>10} {:>8}{total}",
        format!("TOTAL ({rows} cells)"),
        "",
        "",
        ""
    );
    println!(
        "stage calls: {}",
        STAGE_NAMES
            .iter()
            .zip(total_calls)
            .map(|(s, c)| format!("{s}={c}"))
            .collect::<Vec<_>>()
            .join("  ")
    );
    Ok(())
}

fn cmd_stop(args: &Args) -> Result<(), String> {
    args.ensure_flags(&[])?;
    if let Some(addr) = args.remote() {
        return match args.positional.as_slice() {
            [] => {
                remote_call(addr, "POST", "/stop", None)?;
                eprintln!("ftsimd: stop requested; {addr} will finish its cell in flight and exit");
                Ok(())
            }
            [id] => {
                remote_call(addr, "POST", &format!("/jobs/{id}/stop"), None)?;
                eprintln!("ftsimd: job {id} paused; resubmit its spec to resume");
                Ok(())
            }
            _ => Err("stop takes at most one job id".to_string()),
        };
    }
    let store = open_store(args)?;
    match args.positional.as_slice() {
        [] => {
            store.request_stop().map_err(|e| e.to_string())?;
            eprintln!("ftsimd: stop requested; the daemon will finish its cell in flight and exit");
            Ok(())
        }
        [id] => {
            let job = store.job(id).map_err(|e| e.to_string())?;
            store.request_job_stop(&job).map_err(|e| e.to_string())?;
            eprintln!("ftsimd: job {id} paused; resubmit its spec to resume");
            Ok(())
        }
        _ => Err("stop takes at most one job id".to_string()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn strs(args: &[&str]) -> Vec<String> {
        args.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn args_parse_state_flags_and_positionals() {
        let args = parse_args(&strs(&[
            "job-1",
            "--state",
            "/tmp/x",
            "--json",
            "--poll-ms",
            "50",
        ]))
        .unwrap();
        assert_eq!(args.state, "/tmp/x");
        assert_eq!(args.positional, ["job-1"]);
        assert!(args.flag("--json"));
        assert_eq!(args.poll(), Duration::from_millis(50));

        assert!(parse_args(&strs(&["--state"])).is_err());
        assert!(parse_args(&strs(&["--poll-ms", "soon"])).is_err());
        assert!(parse_args(&strs(&["--lease-ms", "ages"])).is_err());
        assert!(parse_args(&strs(&["--remote"])).is_err());
    }

    #[test]
    fn interval_falls_back_to_poll_ms_then_default() {
        let args = parse_args(&strs(&["--interval", "75"])).unwrap();
        assert_eq!(args.interval_ms(), 75);
        let args = parse_args(&strs(&["--poll-ms", "40"])).unwrap();
        assert_eq!(args.interval_ms(), 40);
        let args = parse_args(&strs(&[])).unwrap();
        assert_eq!(args.interval_ms(), 500);
    }

    #[test]
    fn serve_value_flags_reach_serve_options() {
        let args = parse_args(&strs(&[
            "--lease-ms",
            "1500",
            "--workers",
            "2",
            "--listen",
            "127.0.0.1:0",
        ]))
        .unwrap();
        assert_eq!(args.value("--lease-ms"), Some("1500"));
        assert_eq!(args.value("--workers"), Some("2"));
        assert_eq!(args.value("--listen"), Some("127.0.0.1:0"));
    }

    #[test]
    fn mistyped_flags_fail_instead_of_changing_behavior() {
        // `--drian` must not silently run a forever-polling daemon.
        assert_eq!(run(&strs(&["serve", "--drian"])), 1);
        assert_eq!(run(&strs(&["results", "x", "--jsn"])), 1);
        assert_eq!(run(&strs(&["stop", "--force"])), 1);
        assert_eq!(run(&strs(&["jobs", "--all"])), 1);
    }

    #[test]
    fn report_watch_and_family_status_run_on_a_completed_job() {
        let dir = std::env::temp_dir().join(format!("ftsimd-cli-report-{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        let store = JobStore::open(&dir).unwrap();
        let mut spec = JobSpec::new("cli-report");
        spec.workloads = vec!["gcc".to_string()];
        spec.models = vec!["SS-2".to_string()];
        spec.fault_rates_pm = vec![0.0, 5_000.0];
        spec.site_mixes = vec!["uniform".to_string(), "addr-heavy".to_string()];
        spec.budgets = vec![1_200];
        let (id, _) = store.submit(&spec).unwrap();
        let job = store.job(&id).unwrap();
        crate::runner::run_job(&store, &job, &std::sync::atomic::AtomicBool::new(false)).unwrap();

        let state = dir.to_string_lossy().to_string();
        // report renders the analysis sections over the job's records.
        assert_eq!(run(&strs(&["report", &id, "--state", &state])), 0);
        assert_eq!(run(&strs(&["report", &id, "--json", "--state", &state])), 0);
        // --watch on a terminal job prints everything streamed and exits.
        assert_eq!(
            run(&strs(&["results", &id, "--watch", "--state", &state])),
            0
        );
        // --watch and --json are mutually exclusive.
        assert_eq!(
            run(&strs(&[
                "results", &id, "--watch", "--json", "--state", &state
            ])),
            1
        );
        // jobs lists the finished job; single-job status includes the
        // per-family progress lines.
        assert_eq!(run(&strs(&["jobs", "--state", &state])), 0);
        assert_eq!(run(&strs(&["status", &id, "--state", &state])), 0);
        let families = family_progress(&store, &job).unwrap();
        assert_eq!(families.len(), 1, "one (workload, budget, model) shard");
        assert_eq!(families[0].family.workload, "gcc");
        assert_eq!(families[0].family.model, "SS-2");
        assert_eq!(families[0].family.budget, 1_200);
        assert_eq!((families[0].done, families[0].total), (4, 4));

        // Pausing the (already done) job writes its stop sentinel.
        assert_eq!(run(&strs(&["stop", &id, "--state", &state])), 0);
        assert!(store.job_stop_requested(&job));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn gc_verb_runs_and_bad_serve_flags_fail_fast() {
        let dir = std::env::temp_dir().join(format!("ftsimd-cli-gc-{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        JobStore::open(&dir).unwrap();
        let state = dir.to_string_lossy().to_string();
        // An empty store GC's cleanly (nothing to reclaim).
        assert_eq!(run(&strs(&["gc", "--state", &state])), 0);
        assert_eq!(
            run(&strs(&[
                "gc",
                "--state",
                &state,
                "--quarantine-retain-secs",
                "0"
            ])),
            0
        );
        // gc is local-only and rejects foreign flags.
        assert_eq!(run(&strs(&["gc", "--state", &state, "--json"])), 1);
        // A bad lease mode fails before the daemon starts serving.
        assert_eq!(
            run(&strs(&[
                "serve",
                "--state",
                &state,
                "--drain",
                "--lease-mode",
                "sideways"
            ])),
            1
        );
        // A missing token file is an error, not an open API.
        assert_eq!(
            run(&strs(&[
                "serve",
                "--state",
                &state,
                "--drain",
                "--token-file",
                "/nonexistent/token"
            ])),
            1
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn unknown_command_fails_with_usage() {
        assert_eq!(run(&strs(&["explode"])), 1);
        assert_eq!(run(&strs(&[])), 1);
        assert_eq!(run(&strs(&["help"])), 0);
    }
}
