//! The sweep fabric: cooperative multi-process execution of one job
//! store.
//!
//! N `ftsimd serve` processes — on one host or many sharing a state
//! directory — partition work at **family** granularity: the
//! (workload, budget, model) groups that share a fault-free prefix
//! ([`FamilyId`]). Ownership is a *claim lease*, a small JSON file under
//! `<job>/claims/<family-slug>.lease` naming the owner and an expiry
//! time:
//!
//! * **Acquisition** only ever happens through an exclusive
//!   `create_new` of the claim file — the one filesystem primitive
//!   where exactly one racer wins.
//! * **Renewal** (the heartbeat) happens between cells: the holder
//!   re-reads the file, verifies it still names him, and atomically
//!   replaces it with a pushed-out expiry. A holder that finds someone
//!   else's name abandons the family mid-run.
//! * **Steal**: a lease past its expiry — the signature of a crashed or
//!   wedged peer — is first `rename`d to a unique stale name (only one
//!   renamer of a given path succeeds; the loser sees `NotFound`), then
//!   re-acquired through the normal `create_new` race.
//!
//! The protocol is deliberately only *mostly* exclusive. The harness's
//! determinism invariant — a record is a pure function of its cell
//! coordinates — makes duplicate execution benign: if a lost-claim
//! window lets two processes run the same cell, both append
//! byte-identical rows and the newest-wins merge keeps one. Leases are
//! therefore a throughput optimization, never a correctness mechanism,
//! which is what lets the whole fabric run on plain files with no
//! server. (Hosts sharing a state dir are assumed to have roughly
//! synchronized clocks; skew eats into the lease margin.)
//!
//! Scheduling — which family a free worker claims next — orders
//! candidate jobs by priority (descending), then by the submitter's
//! live-claim count (ascending: fair share across tenants), then by job
//! id (submission order). A job's `threads` field caps its live claims
//! fabric-wide, so one wide job cannot monopolize every process.

use crate::failpoints as fp;
use crate::spec::JobSpec;
use crate::store::{io_err, write_atomic, DaemonError, Job, JobState, JobStatus, JobStore};
use ftsim::harness::{
    from_csv_tolerant, group_families, to_csv, to_json, CellPath, FamilyId, RunRecord,
};
use ftsim_chaos::retry::Backoff;
use ftsim_core::profile::{StageProfile, STAGE_NAMES};
use ftsim_obs::metrics;
use ftsim_obs::trace::{self, TraceEvent};
use ftsim_stats::csv::AppendWriter;
use ftsim_stats::JsonValue;
use std::collections::HashMap;
use std::io;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::{Duration, Instant};

/// Fabric-level metric handles, resolved once per process. These count
/// protocol events (claims, steals, watchdog kills, appended bytes) —
/// the *fabric's* vitals, complementing the per-simulation counters the
/// harness registers (`ftsim_cells_total`, `ftsim_sim_cycles_total`).
/// Like every observability surface, they live entirely outside the
/// simulation: nothing here feeds back into scheduling or records.
struct FabricObs {
    claims_acquired: metrics::Counter,
    claims_renewed: metrics::Counter,
    claims_stolen: metrics::Counter,
    claims_released: metrics::Counter,
    /// Wall time from asking for a family to holding its lease,
    /// backoff included.
    lease_wait_ms: metrics::Histo,
    cells_completed: metrics::Counter,
    cells_retried: metrics::Counter,
    watchdog_kills: metrics::Counter,
    append_bytes: metrics::Counter,
    backoff_retries: metrics::Counter,
    jobs_finalized: metrics::Counter,
}

fn fobs() -> &'static FabricObs {
    static HANDLES: OnceLock<FabricObs> = OnceLock::new();
    let claim = |event| metrics::counter("ftsimd_claims_total", &[("event", event)]);
    HANDLES.get_or_init(|| FabricObs {
        claims_acquired: claim("acquired"),
        claims_renewed: claim("renewed"),
        claims_stolen: claim("stolen"),
        claims_released: claim("released"),
        lease_wait_ms: metrics::histogram("ftsimd_lease_wait_ms", &[], 5, 40),
        cells_completed: metrics::counter("ftsimd_cells_completed_total", &[]),
        cells_retried: metrics::counter("ftsimd_cells_retried_total", &[]),
        watchdog_kills: metrics::counter("ftsimd_watchdog_kills_total", &[]),
        append_bytes: metrics::counter("ftsimd_append_bytes_total", &[]),
        backoff_retries: metrics::counter(
            "ftsimd_backoff_retries_total",
            &[("site", "fabric.claim")],
        ),
        jobs_finalized: metrics::counter("ftsimd_jobs_finalized_total", &[]),
    })
}

/// Milliseconds since the Unix epoch — the fabric's shared clock.
/// Routed through the chaos layer so plans can skew it (`skew=MS`).
fn now_ms() -> u64 {
    ftsim_chaos::io().now_ms()
}

/// Stale (expired or unparseable) leases this process has stolen or
/// quarantined — surfaced by `GET /healthz` as a flaky-peer indicator.
static STALE_LEASES_OBSERVED: AtomicU64 = AtomicU64::new(0);

/// Wall-clock of this process's last completed scheduler pass
/// ([`next_assignment`]), for `GET /healthz` liveness checks.
static LAST_SCHED_PASS_MS: AtomicU64 = AtomicU64::new(0);

/// Stale leases this process has observed (see `GET /healthz`).
pub(crate) fn stale_leases_observed() -> u64 {
    STALE_LEASES_OBSERVED.load(Ordering::Relaxed)
}

/// Unix-ms timestamp of the last completed scheduler pass, 0 if none.
pub(crate) fn last_scheduler_pass_ms() -> u64 {
    LAST_SCHED_PASS_MS.load(Ordering::Relaxed)
}

/// How much the claim protocol trusts the filesystem's primitives
/// (`serve --lease-mode`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum LeaseMode {
    /// Trust `create_new` to be exclusive and `rename` to be atomic —
    /// correct on every local filesystem and NFSv3+ with proper locking.
    #[default]
    Strict,
    /// Assume a lowest-common-denominator NFS mount where `create_new`
    /// may silently lose its exclusivity: every acquisition is followed
    /// by a jittered re-read that must echo this process's owner id
    /// before the claim counts as held. Collisions become unlikely, not
    /// impossible — which is fine, because leases are a throughput
    /// optimization and duplicate execution is byte-identical.
    Relaxed,
}

impl LeaseMode {
    /// Parses a `--lease-mode` value.
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "strict" => Some(Self::Strict),
            "relaxed" => Some(Self::Relaxed),
            _ => None,
        }
    }

    /// The flag spelling of this mode.
    pub fn as_str(self) -> &'static str {
        match self {
            Self::Strict => "strict",
            Self::Relaxed => "relaxed",
        }
    }
}

/// One process's fabric identity and lease policy.
#[derive(Debug, Clone)]
pub struct FabricConfig {
    /// This worker's owner id, written into every claim it holds.
    pub owner: String,
    /// How long a claim lives without renewal before peers may steal it.
    pub lease: Duration,
    /// How much to trust the filesystem's claim primitives.
    pub mode: LeaseMode,
    /// Wall-clock budget for a cell of a family with no observed cell
    /// times yet (the first cell, which also pays for the family's
    /// baseline). Once a cell has completed, budgets derive from the
    /// family's observed maximum instead.
    pub cell_floor: Duration,
}

impl FabricConfig {
    /// A config with a process-unique owner id and the given lease.
    /// Multiple configs in one process (tests) get distinct owners.
    pub fn new(lease: Duration) -> Self {
        static SEQ: AtomicU64 = AtomicU64::new(0);
        let seq = SEQ.fetch_add(1, Ordering::Relaxed);
        let host = std::env::var("HOSTNAME").unwrap_or_else(|_| "local".to_string());
        Self {
            owner: format!("{host}:{}:{seq}", std::process::id()),
            lease,
            mode: LeaseMode::Strict,
            cell_floor: default_cell_floor(),
        }
    }
}

/// The stuck-cell watchdog's no-data budget: `FTSIMD_CELL_FLOOR_MS`
/// (tests shrink it to trigger quickly) or two minutes — comfortably
/// above any baseline computation in the paper's budget range.
fn default_cell_floor() -> Duration {
    std::env::var("FTSIMD_CELL_FLOOR_MS")
        .ok()
        .and_then(|v| v.parse().ok())
        .map_or(Duration::from_secs(120), Duration::from_millis)
}

impl Default for FabricConfig {
    fn default() -> Self {
        Self::new(Duration::from_secs(30))
    }
}

/// A parsed claim-lease document.
struct Lease {
    owner: String,
    expires_unix_ms: u64,
    renewals: u64,
    /// When the claim was first acquired (preserved across renewals), so
    /// `/healthz` can report the oldest live claim's age. Additive field:
    /// leases written by older daemons parse with 0 here, which reads as
    /// "age unknown" and is skipped by the age scan.
    created_unix_ms: u64,
}

impl Lease {
    fn to_json(&self) -> String {
        JsonValue::obj([
            ("owner".to_string(), JsonValue::Str(self.owner.clone())),
            (
                "expires_unix_ms".to_string(),
                JsonValue::U64(self.expires_unix_ms),
            ),
            ("renewals".to_string(), JsonValue::U64(self.renewals)),
            (
                "created_unix_ms".to_string(),
                JsonValue::U64(self.created_unix_ms),
            ),
        ])
        .render_pretty(2)
    }

    fn parse(text: &str) -> Option<Self> {
        let doc = JsonValue::parse(text).ok()?;
        Some(Self {
            owner: doc.get("owner")?.as_str()?.to_string(),
            expires_unix_ms: doc.get("expires_unix_ms")?.as_u64()?,
            renewals: doc.get("renewals")?.as_u64()?,
            created_unix_ms: doc
                .get("created_unix_ms")
                .and_then(JsonValue::as_u64)
                .unwrap_or(0),
        })
    }
}

fn read_lease(path: &Path) -> Option<Lease> {
    Lease::parse(
        &ftsim_chaos::io()
            .read_to_string(fp::FABRIC_LEASE_READ, path)
            .ok()?,
    )
}

/// A held claim on one family. Dropping the guard releases the claim
/// (best-effort — an unreleased claim simply expires).
#[derive(Debug)]
pub struct ClaimGuard {
    path: PathBuf,
    owner: String,
    lease: Duration,
    renewals: u64,
    renewed: Instant,
}

impl ClaimGuard {
    /// Renews the lease when it is due (past a quarter of the lease
    /// period — cheap enough to call after every cell). Returns `false`
    /// when the claim has been lost: the file no longer names this
    /// owner, so a peer stole an expired lease or finalization cleaned
    /// the claims up, and the caller must abandon the family. (Any cell
    /// the thief re-runs produces a byte-identical record, so the
    /// overlap is wasted work, not corruption.)
    ///
    /// # Errors
    ///
    /// [`DaemonError::Io`] when the renewed lease cannot be written.
    pub fn renew(&mut self) -> Result<bool, DaemonError> {
        if self.renewed.elapsed() < self.lease / 4 {
            return Ok(true);
        }
        match read_lease(&self.path) {
            Some(l) if l.owner == self.owner => {
                self.renewals += 1;
                let doc = Lease {
                    owner: self.owner.clone(),
                    expires_unix_ms: now_ms() + self.lease.as_millis() as u64,
                    renewals: self.renewals,
                    created_unix_ms: l.created_unix_ms,
                };
                write_atomic(fp::FABRIC_CLAIM_RENEW, &self.path, doc.to_json().as_bytes())?;
                self.renewed = Instant::now();
                fobs().claims_renewed.inc();
                Ok(true)
            }
            _ => Ok(false),
        }
    }
}

impl Drop for ClaimGuard {
    fn drop(&mut self) {
        // Release only what is still ours; a stolen claim belongs to the
        // thief now.
        if read_lease(&self.path).is_some_and(|l| l.owner == self.owner)
            && ftsim_chaos::io()
                .remove_file(fp::FABRIC_CLAIM_RELEASE, &self.path)
                .is_ok()
        {
            fobs().claims_released.inc();
        }
    }
}

/// Writes a fresh lease at `path` with `create_new` semantics. Returns
/// `Ok(false)` when someone else holds the file.
fn create_claim(path: &Path, owner: &str, lease: Duration) -> io::Result<bool> {
    let now = now_ms();
    let doc = Lease {
        owner: owner.to_string(),
        expires_unix_ms: now + lease.as_millis() as u64,
        renewals: 0,
        created_unix_ms: now,
    };
    ftsim_chaos::io().create_new(fp::FABRIC_CLAIM_CREATE, path, doc.to_json().as_bytes())
}

/// Tries to claim `family` in `job`. Returns `None` when the family is
/// held by a live lease (or this process lost the race for it).
///
/// Transient I/O errors (a flaky NFS mount, an injected EIO) retry a
/// few times with jittered exponential backoff before surfacing;
/// acquisition races are *not* retried — losing `create_new` means a
/// peer owns the family, which is the protocol working.
///
/// # Errors
///
/// [`DaemonError::Io`] for persistent claims-directory trouble.
pub fn try_claim(
    job: &Job,
    family: &FamilyId,
    cfg: &FabricConfig,
) -> Result<Option<ClaimGuard>, DaemonError> {
    let started = Instant::now();
    let mut backoff = Backoff::new(Duration::from_millis(5), Duration::from_millis(80), 3);
    let outcome = loop {
        match try_claim_once(job, family, cfg) {
            Ok(outcome) => break outcome,
            Err(e) => match backoff.next_delay() {
                Some(delay) => {
                    fobs().backoff_retries.inc();
                    std::thread::sleep(delay);
                }
                None => return Err(e),
            },
        }
    };
    if outcome.is_some() {
        let m = fobs();
        m.claims_acquired.inc();
        m.lease_wait_ms.record(started.elapsed().as_millis() as u64);
        trace::emit(TraceEvent::new(
            "claim",
            &job.id,
            &family.slug(),
            &format!("owner={}", cfg.owner),
        ));
    }
    Ok(outcome)
}

/// Relaxed-mode owner-echo verification: after a `create_new` that may
/// silently have lost its exclusivity (an NFS-grade mount — see
/// [`LeaseMode::Relaxed`]), wait a jittered beat for any racing write to
/// land, then re-read the lease. The claim stands only if the file still
/// echoes this process's owner id, which is process-unique
/// (`host:pid:seq`) — two racers cannot both read their own name out of
/// one file. An unreadable re-read walks away: a claim we cannot prove
/// we hold is a claim we do not hold.
fn claim_verified(path: &Path, cfg: &FabricConfig) -> bool {
    if cfg.mode == LeaseMode::Strict {
        return true;
    }
    // Deterministic per-owner jitter desynchronizes racing verifiers so
    // they do not re-read in lockstep.
    let mut jitter = Backoff::with_seed(
        Duration::from_millis(15),
        Duration::from_millis(60),
        1,
        fnv1a(cfg.owner.as_bytes()),
    );
    if let Some(delay) = jitter.next_delay() {
        std::thread::sleep(delay);
    }
    match ftsim_chaos::io().read_to_string(fp::FABRIC_CLAIM_VERIFY, path) {
        Ok(text) => Lease::parse(&text).is_some_and(|l| l.owner == cfg.owner),
        Err(_) => false,
    }
}

/// FNV-1a, for deriving a jitter seed from an owner id.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        hash ^= b as u64;
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

fn try_claim_once(
    job: &Job,
    family: &FamilyId,
    cfg: &FabricConfig,
) -> Result<Option<ClaimGuard>, DaemonError> {
    let env = ftsim_chaos::io();
    let dir = job.claims_dir();
    env.create_dir_all(fp::FABRIC_CLAIM_CREATE, &dir)
        .map_err(io_err(format!("creating {}", dir.display())))?;
    let path = dir.join(format!("{}.lease", family.slug()));
    let claim = |path: &Path| {
        create_claim(path, &cfg.owner, cfg.lease)
            .map_err(io_err(format!("claiming {}", path.display())))
    };
    if claim(&path)? {
        if !claim_verified(&path, cfg) {
            return Ok(None); // the echo named a peer: we lost the race
        }
        return Ok(Some(ClaimGuard {
            path,
            owner: cfg.owner.clone(),
            lease: cfg.lease,
            renewals: 0,
            renewed: Instant::now(),
        }));
    }

    // The file exists. Decide live vs stealable: a parseable lease
    // speaks for itself; an unparseable one (a writer caught between
    // create and write, or torn by a crash) is presumed live until its
    // mtime is two leases old.
    let parseable = read_lease(&path).is_some();
    let stealable = match read_lease(&path) {
        Some(l) => l.expires_unix_ms <= now_ms(),
        None => match std::fs::metadata(&path).and_then(|m| m.modified()) {
            Ok(mtime) => mtime
                .elapsed()
                .map(|age| age >= cfg.lease * 2)
                .unwrap_or(false),
            Err(_) => return Ok(None), // vanished between create and stat
        },
    };
    if !stealable {
        return Ok(None);
    }

    // Steal: rename to a unique stale name first. `rename` of a given
    // source succeeds for exactly one racer, so two stealers cannot both
    // proceed; the loser's `NotFound` means somebody else is handling
    // it. Ownership itself still only comes from the `create_new` below.
    static STALE_SEQ: AtomicU64 = AtomicU64::new(0);
    let stale = dir.join(format!(
        "{}.stale.{}.{}",
        family.slug(),
        std::process::id(),
        STALE_SEQ.fetch_add(1, Ordering::Relaxed)
    ));
    match env.rename(fp::FABRIC_CLAIM_STEAL, &path, &stale) {
        Ok(()) => {
            STALE_LEASES_OBSERVED.fetch_add(1, Ordering::Relaxed);
            fobs().claims_stolen.inc();
            if parseable {
                // Ordinary expiry of a crashed peer: debris.
                env.remove_file(fp::FABRIC_CLAIM_STEAL, &stale).ok();
            } else {
                // Aged-out garbage is evidence of a torn write or a
                // hostile filesystem — quarantine it for post-mortems
                // instead of destroying it. (Best-effort: failing to
                // file the evidence must not block the steal.)
                quarantine_debris(job, &stale, "unparseable claim lease aged past 2x lease");
            }
        }
        Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(None),
        Err(e) => return Err(io_err(format!("stealing {}", path.display()))(e)),
    }
    Ok(if claim(&path)? && claim_verified(&path, cfg) {
        Some(ClaimGuard {
            path,
            owner: cfg.owner.clone(),
            lease: cfg.lease,
            renewals: 0,
            renewed: Instant::now(),
        })
    } else {
        None
    })
}

/// Best-effort quarantine for debris discovered inside a job directory
/// (`<state>/jobs/<id>/...`): derives the state root from the job's
/// path. Failures are swallowed — the caller is already on a recovery
/// path and the debris has been renamed out of the protocol's way.
fn quarantine_debris(job: &Job, path: &Path, reason: &str) {
    let Some(root) = job.dir().parent().and_then(Path::parent) else {
        return;
    };
    if let Ok(store) = JobStore::open(root) {
        if let Err(e) = store.quarantine(path, reason) {
            eprintln!("ftsimd: could not quarantine {}: {e}", path.display());
        }
    }
}

/// Live (unexpired) claims held on a job, by any owner.
pub(crate) fn live_claims(job: &Job) -> usize {
    let Ok(entries) = ftsim_chaos::io().list_dir(fp::FABRIC_CLAIMS_LIST, &job.claims_dir()) else {
        return 0;
    };
    let now = now_ms();
    entries
        .iter()
        .filter(|p| p.extension().is_some_and(|x| x == "lease"))
        .filter(|p| read_lease(p).is_some_and(|l| l.expires_unix_ms > now))
        .count()
}

/// Age in milliseconds of the oldest live (unexpired) claim on a job,
/// or 0 when none carries a creation stamp — `/healthz` surfaces the
/// fabric-wide maximum as a wedged-family indicator (a claim alive far
/// past the typical family runtime is being renewed but not finishing).
/// Leases written by pre-stamp daemons lack `created_unix_ms` and are
/// skipped rather than misreported.
pub(crate) fn oldest_live_claim_age_ms(job: &Job) -> u64 {
    let Ok(entries) = ftsim_chaos::io().list_dir(fp::FABRIC_CLAIMS_LIST, &job.claims_dir()) else {
        return 0;
    };
    let now = now_ms();
    entries
        .iter()
        .filter(|p| p.extension().is_some_and(|x| x == "lease"))
        .filter_map(|p| read_lease(p))
        .filter(|l| l.expires_unix_ms > now && l.created_unix_ms > 0)
        .map(|l| now.saturating_sub(l.created_unix_ms))
        .max()
        .unwrap_or(0)
}

/// The hashable projection of `RunRecord::same_identity`: two records
/// are the same grid cell iff their keys are equal. Shared by the
/// fabric's progress accounting and the CLI's `status`/`results`
/// merging, so every layer matches streamed rows to grid cells the same
/// way (newest row winning).
pub(crate) type IdentityKey<'a> = (
    &'a str,
    &'a str,
    &'a str,
    u8,
    bool,
    u8,
    u64,
    &'a str,
    u64,
    u64,
);

pub(crate) fn identity_key(r: &RunRecord) -> IdentityKey<'_> {
    (
        r.workload.as_str(),
        r.suite.as_str(),
        r.model.as_str(),
        r.r,
        r.majority,
        r.threshold,
        r.fault_rate_pm.to_bits(),
        r.site_mix.as_str(),
        r.seed,
        r.budget,
    )
}

/// Indexes streamed records by identity, newest row winning: a cell
/// re-run later (after a failure, or by a second claimant in a
/// lost-lease window) appears twice in the log, and the recent record
/// is the one kept.
pub(crate) fn identity_index<'a>(
    streamed: &'a [RunRecord],
) -> HashMap<IdentityKey<'a>, &'a RunRecord> {
    let mut index = HashMap::with_capacity(streamed.len());
    for r in streamed {
        index.insert(identity_key(r), r); // later rows overwrite earlier
    }
    index
}

/// One family's progress within a job.
#[derive(Debug)]
pub(crate) struct FamilyProgress {
    /// The family coordinate.
    pub family: FamilyId,
    /// Cells of the family with a streamed (or final) record.
    pub done: usize,
    /// Cells in the family.
    pub total: usize,
}

/// Per-family cells-done counts for a job: its grid identities grouped
/// by family, each matched against the streamed `cells.csv`. A done
/// job counts every cell even if some were never streamed
/// (resume-matched cells are not re-appended).
pub(crate) fn family_progress(
    store: &JobStore,
    job: &Job,
) -> Result<Vec<FamilyProgress>, DaemonError> {
    let spec = store.load_spec(job)?;
    let identities = spec.to_experiment()?.identities()?;
    let done_job = store
        .load_status(job)
        .map(|s| s.state == JobState::Done)
        .unwrap_or(false);
    let streamed = read_cells(job);
    let (streamed, _) = from_csv_tolerant(&streamed);
    let index = identity_index(&streamed);
    Ok(group_families(&identities)
        .into_iter()
        .map(|(family, members)| {
            let done = if done_job {
                members.len()
            } else {
                members
                    .iter()
                    .filter(|&&i| index.contains_key(&identity_key(&identities[i])))
                    .count()
            };
            FamilyProgress {
                family,
                done,
                total: members.len(),
            }
        })
        .collect())
}

/// A claimed unit of work: one family of one job.
#[derive(Debug)]
pub(crate) struct Assignment {
    /// The job being worked.
    pub job: Job,
    /// Its parsed spec.
    pub spec: JobSpec,
    /// The claimed family.
    pub family: FamilyId,
    /// The held lease.
    pub claim: ClaimGuard,
    /// Job-level cells-done count at claim time (this worker's view —
    /// peers advance it concurrently; stale counts are corrected by the
    /// next status bump or finalization).
    pub job_done: usize,
    /// Job-level cell total.
    pub job_total: usize,
}

/// What [`next_assignment`] found.
#[derive(Debug)]
pub(crate) enum NextWork {
    /// A family was claimed; run it.
    Work(Box<Assignment>),
    /// Nothing claimable right now. `incomplete` counts non-terminal,
    /// un-paused jobs — zero means the queue is truly drained, non-zero
    /// means work exists but is held by live foreign claims (or needs a
    /// lease to expire), so a draining server waits instead of exiting.
    Idle {
        /// Non-terminal, un-paused jobs left in the store.
        incomplete: usize,
    },
}

/// Picks and claims the next family to run, scanning jobs in scheduling
/// order: priority descending, then the submitter's live-claim count
/// ascending (fair share), then job id. Jobs whose spec no longer
/// parses or resolves are marked failed in passing (with the error in
/// their status) rather than wedging the queue. `only` restricts the
/// scan to one job id — the single-job ([`run_job`](crate::run_job))
/// special case.
///
/// # Errors
///
/// [`DaemonError`] only for store-level trouble (the queue itself being
/// unreadable).
pub(crate) fn next_assignment(
    store: &JobStore,
    cfg: &FabricConfig,
    only: Option<&str>,
) -> Result<NextWork, DaemonError> {
    struct Candidate {
        job: Job,
        spec: JobSpec,
        claims: usize,
    }
    let mut candidates: Vec<Candidate> = Vec::new();
    let mut incomplete = 0usize;
    for job in store.jobs()? {
        if only.is_some_and(|id| id != job.id) {
            continue;
        }
        let status = match store.load_status(&job) {
            Ok(status) => status,
            Err(DaemonError::Corrupt { path, message }) => {
                // A torn or scribbled-on status must not wedge the job
                // forever: move the evidence aside and recompute the
                // truth from the spec and the streamed cells.
                eprintln!(
                    "ftsimd: job {}: corrupt status.json quarantined ({message})",
                    job.id
                );
                if let Err(e) = store.quarantine(&path, &message) {
                    eprintln!("ftsimd: quarantine failed: {e}");
                }
                match rebuild_status(store, &job) {
                    Ok(status) => status,
                    Err(e) => {
                        note_job_error(store, &job, e, &mut incomplete);
                        continue;
                    }
                }
            }
            Err(DaemonError::Io { source, .. }) if source.kind() == io::ErrorKind::NotFound => {
                // No status at all — a crash between claiming the job
                // dir and the first status write, or a dropped rename.
                match rebuild_status(store, &job) {
                    Ok(status) => status,
                    Err(e) => {
                        note_job_error(store, &job, e, &mut incomplete);
                        continue;
                    }
                }
            }
            Err(_) => {
                // Transient read error: the job is still outstanding
                // work; keep a draining server alive and retry on the
                // next pass.
                incomplete += 1;
                continue;
            }
        };
        if !matches!(status.state, JobState::Queued | JobState::Running) {
            continue;
        }
        if store.job_stop_requested(&job) {
            continue; // paused: not claimable, not blocking drain
        }
        let spec = match store.load_spec(&job) {
            Ok(spec) => spec,
            Err(e) => {
                note_job_error(store, &job, e, &mut incomplete);
                continue;
            }
        };
        incomplete += 1;
        let claims = live_claims(&job);
        if spec.threads > 0 && claims >= spec.threads {
            continue; // at its fabric-wide concurrency cap
        }
        candidates.push(Candidate { job, spec, claims });
    }

    // Fair share: a submitter's weight is the live claims across all
    // their incomplete jobs.
    let mut by_submitter: HashMap<String, usize> = HashMap::new();
    for c in &candidates {
        *by_submitter.entry(c.spec.submitter.clone()).or_default() += c.claims;
    }
    candidates.sort_by(|a, b| {
        b.spec
            .priority
            .cmp(&a.spec.priority)
            .then_with(|| by_submitter[&a.spec.submitter].cmp(&by_submitter[&b.spec.submitter]))
            .then_with(|| a.job.id.cmp(&b.job.id))
    });

    for c in candidates {
        let identities = match c
            .spec
            .to_experiment()
            .map_err(DaemonError::from)
            .and_then(|e| e.identities().map_err(DaemonError::from))
        {
            Ok(ids) => ids,
            Err(e) => {
                mark_failed(store, &c.job, &e);
                incomplete -= 1;
                continue;
            }
        };
        let streamed = read_cells(&c.job);
        let (streamed, _) = from_csv_tolerant(&streamed);
        let index = identity_index(&streamed);
        let job_done = identities
            .iter()
            .filter(|id| index.contains_key(&identity_key(id)))
            .count();
        if job_done == identities.len() {
            // Every cell has a record — e.g. a peer was killed after its
            // last cell but before finalizing. Finish the paperwork.
            try_finalize(store, &c.job, &c.spec)?;
            incomplete -= 1;
            continue;
        }
        for (family, members) in group_families(&identities) {
            let missing = members
                .iter()
                .any(|&i| !index.contains_key(&identity_key(&identities[i])));
            if !missing {
                continue;
            }
            if let Some(claim) = try_claim(&c.job, &family, cfg)? {
                LAST_SCHED_PASS_MS.store(now_ms(), Ordering::Relaxed);
                return Ok(NextWork::Work(Box::new(Assignment {
                    job: c.job,
                    spec: c.spec,
                    family,
                    claim,
                    job_done,
                    job_total: identities.len(),
                })));
            }
        }
    }
    LAST_SCHED_PASS_MS.store(now_ms(), Ordering::Relaxed);
    Ok(NextWork::Idle { incomplete })
}

/// Recomputes a job's status document from first principles — the
/// spec's grid size and the streamed `cells.csv` — after the persisted
/// status was found missing or corrupt, and persists the rebuilt
/// document so dashboards see the recovery. Finalization (results
/// files, `Done`) is re-derived by the normal scheduler path once the
/// rebuilt job is scanned again.
///
/// # Errors
///
/// [`DaemonError`] when the spec itself is unreadable or unresolvable.
fn rebuild_status(store: &JobStore, job: &Job) -> Result<JobStatus, DaemonError> {
    let spec = store.load_spec(job)?;
    let (records, total) = merged_records(job, &spec)?;
    let status = JobStatus {
        state: if records.len() == total {
            // Every cell streamed: stays Running so the next scan's
            // finalize path writes the results files and flips to Done.
            JobState::Running
        } else {
            JobState::Queued
        },
        cells_total: total,
        cells_done: records.len(),
        error: String::new(),
        // write_status inherits the real submit timestamp from the prior
        // status when one survives; 0 means genuinely unknown.
        created_unix_ms: 0,
        finished_unix_ms: 0,
    };
    store.write_status(job, &status)?;
    eprintln!(
        "ftsimd: job {}: rebuilt status.json from cells.csv ({}/{} cells)",
        job.id, status.cells_done, status.cells_total
    );
    Ok(status)
}

/// Scheduler passes a job directory may sit without its `spec.json`
/// before it is declared an aborted submit. `submit` creates the job
/// directory and then writes the spec as two steps, so a concurrent
/// scan can catch the gap; the file appears whole (the write is atomic)
/// milliseconds later. A dead submit never fills the gap, and parking
/// it after the grace keeps `--drain` from waiting forever.
const SPECLESS_GRACE_PASSES: u32 = 8;

/// Counts consecutive-ish scan passes that found a job specless (keyed
/// by job id, process-local: the race this papers over is between
/// threads of one process, and a fresh process re-counts harmlessly).
fn specless_strikes(job_id: &str) -> u32 {
    static STRIKES: OnceLock<Mutex<HashMap<String, u32>>> = OnceLock::new();
    let mut map = STRIKES
        .get_or_init(|| Mutex::new(HashMap::new()))
        .lock()
        .unwrap();
    let n = map.entry(job_id.to_string()).or_insert(0);
    *n += 1;
    *n
}

/// Decides what a failed spec/status load means for the queue: a spec
/// that no longer parses is permanent (quarantine it, park the job as
/// failed), a spec still *missing* after a grace period is an aborted
/// submit (park the shell job too), an unresolvable grid is permanent —
/// and anything else is transient, so the job counts as incomplete (a
/// draining server keeps waiting) and is retried on the next pass.
fn note_job_error(store: &JobStore, job: &Job, err: DaemonError, incomplete: &mut usize) {
    match &err {
        DaemonError::Spec(_) => {
            if let Err(e) = store.quarantine(&job.spec_path(), &err.to_string()) {
                eprintln!("ftsimd: quarantine failed: {e}");
            }
            mark_failed(store, job, &err);
        }
        DaemonError::Io { source, .. } if source.kind() == io::ErrorKind::NotFound => {
            // Either a submit caught between creating the directory and
            // writing the spec, or one that died between the two. Give
            // the former time to land before declaring the latter.
            if specless_strikes(&job.id) > SPECLESS_GRACE_PASSES {
                mark_failed(store, job, &err);
            } else {
                *incomplete += 1;
            }
        }
        DaemonError::Experiment(_) => mark_failed(store, job, &err),
        _ => *incomplete += 1,
    }
}

/// Reads a job's streamed `cells.csv` leniently: a missing file is an
/// empty log, a transient read error is treated the same (the rows are
/// still on disk and re-run cells are byte-identical), and invalid
/// UTF-8 from a write torn mid-character is decoded lossily so the
/// damage stays confined to the trailing line the tolerant parser
/// drops.
fn read_cells(job: &Job) -> String {
    match ftsim_chaos::io().read(fp::FABRIC_CELLS_READ, &job.cells_path()) {
        Ok(bytes) => String::from_utf8_lossy(&bytes).into_owned(),
        Err(_) => String::new(),
    }
}

/// Parks a job as failed with the error in its status (best-effort).
pub(crate) fn mark_failed(store: &JobStore, job: &Job, err: &DaemonError) {
    eprintln!("ftsimd: job {} failed: {err}", job.id);
    let mut status = store.load_status(job).unwrap_or(JobStatus {
        state: JobState::Failed,
        cells_total: 0,
        cells_done: 0,
        error: String::new(),
        created_unix_ms: 0,
        finished_unix_ms: 0,
    });
    status.state = JobState::Failed;
    status.error = err.to_string();
    let _ = store.write_status(job, &status);
}

/// Best-effort status bump that never regresses a finalized job.
pub(crate) fn bump_status(store: &JobStore, job: &Job, state: JobState, done: usize, total: usize) {
    if let Ok(s) = store.load_status(job) {
        if s.state == JobState::Done {
            return;
        }
    }
    let _ = store.write_status(
        job,
        &JobStatus {
            state,
            cells_total: total,
            cells_done: done.min(total),
            error: String::new(),
            created_unix_ms: 0,
            finished_unix_ms: 0,
        },
    );
}

/// How a [`run_family`] call ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum FamilyOutcome {
    /// Every cell of the family has a record.
    Finished,
    /// A stop request interrupted the family; streamed rows are kept.
    Interrupted,
    /// The claim was lost (lease stolen after an expiry); the thief owns
    /// the family now and this worker's partial rows are still valid.
    Lost,
    /// The disk filled up (ENOSPC on a cell append): the job was paused
    /// with a visible status instead of crash-looping the worker. Every
    /// streamed row is kept; re-submitting the spec after freeing space
    /// resumes from them.
    Paused,
    /// The stuck-cell watchdog killed a cell that overran its wall-clock
    /// budget. The family's claim is released (drop the assignment) and
    /// the cell stays unrecorded, so it is re-queued on the next
    /// scheduler pass — until its strike count caps out and the job is
    /// marked failed instead.
    Stuck,
}

/// Cells a single coordinate may overrun its deadline before the whole
/// job is marked failed — enough to ride out scheduler noise and
/// probabilistic chaos delays, few enough that a deterministic hang
/// converges to a visible failure quickly.
const WATCHDOG_MAX_STRIKES: u64 = 5;

/// Cells killed by the stuck-cell watchdog in this process (see
/// `GET /healthz`).
static WATCHDOG_KILLS: AtomicU64 = AtomicU64::new(0);

/// Watchdog kills this process has performed.
pub(crate) fn watchdog_kills() -> u64 {
    WATCHDOG_KILLS.load(Ordering::Relaxed)
}

/// The per-cell wall-clock budget: with no completed cell observed yet
/// the configured floor applies (the first cell also pays for the
/// family baseline); afterwards, a generous multiple of the family's
/// observed maximum — a cell 16x slower than its slowest sibling is
/// wedged, not working.
fn cell_budget(observed_max: Duration, cfg: &FabricConfig) -> Duration {
    if observed_max.is_zero() {
        cfg.cell_floor
    } else {
        (observed_max * 16).max(Duration::from_secs(1))
    }
}

/// Reads the job's watchdog sidecar (`watchdog.json`: cell label →
/// strike count). The sidecar is advisory bookkeeping, not a result
/// artifact — a torn or missing file parses as "no strikes yet", which
/// only makes the watchdog more patient.
fn watchdog_strikes(job: &Job) -> Vec<(String, u64)> {
    let path = job.dir().join("watchdog.json");
    let Ok(text) = std::fs::read_to_string(&path) else {
        return Vec::new();
    };
    let Ok(JsonValue::Obj(pairs)) = JsonValue::parse(&text) else {
        return Vec::new();
    };
    pairs
        .into_iter()
        .filter_map(|(label, v)| Some((label, v.as_u64()?)))
        .collect()
}

/// Adds a strike for `label` in the job's watchdog sidecar and returns
/// the new count. Lost updates under concurrent writers only under-count
/// — strikes are a patience budget, not a correctness mechanism.
fn bump_watchdog_strike(job: &Job, label: &str) -> u64 {
    let mut strikes = watchdog_strikes(job);
    let count = match strikes.iter_mut().find(|(l, _)| l == label) {
        Some((_, n)) => {
            *n += 1;
            *n
        }
        None => {
            strikes.push((label.to_string(), 1));
            1
        }
    };
    let doc = JsonValue::Obj(
        strikes
            .into_iter()
            .map(|(l, n)| (l, JsonValue::U64(n)))
            .collect(),
    );
    let _ = std::fs::write(job.dir().join("watchdog.json"), doc.render_pretty(2));
    count
}

/// A cell overran its budget: count the strike, make the overrun visible
/// (healthz counter, stderr, and — once the strikes cap out — a terminal
/// failed status), and hand the family back to the scheduler.
fn note_stuck_cell(store: &JobStore, a: &Assignment, identity: &RunRecord, budget: Duration) {
    WATCHDOG_KILLS.fetch_add(1, Ordering::Relaxed);
    fobs().watchdog_kills.inc();
    fobs().cells_retried.inc();
    let label = identity.cell_label();
    let strikes = bump_watchdog_strike(&a.job, &label);
    trace::emit(TraceEvent::new(
        "watchdog",
        &a.job.id,
        &label,
        &format!("deadline_ms={}", budget.as_millis()),
    ));
    eprintln!(
        "ftsimd: job {}: cell {label} exceeded its {}ms deadline \
         (strike {strikes}/{WATCHDOG_MAX_STRIKES}); re-queueing",
        a.job.id,
        budget.as_millis(),
    );
    if strikes >= WATCHDOG_MAX_STRIKES {
        let err = DaemonError::Io {
            context: format!("cell {label} exceeded deadline ({strikes} strikes)"),
            source: io::Error::new(io::ErrorKind::TimedOut, "stuck-cell watchdog"),
        };
        mark_failed(store, &a.job, &err);
    }
}

/// Runs one claimed family to completion, streaming each record to the
/// job's `cells.csv` and renewing the claim between cells.
///
/// Execution goes through a **sub-experiment**: the job's spec narrowed
/// to the family's single workload, model and budget (full rate, mix
/// and seed axes). Because a record is a pure function of its cell
/// coordinates, the narrowed grid produces exactly the rows the full
/// grid would — same fork bounds, same baseline decisions — without
/// paying the whole job's planning cost per claim.
///
/// # Errors
///
/// [`DaemonError`] when the sub-grid cannot be built (the job is marked
/// failed by the caller's next scan) or streaming I/O breaks.
pub(crate) fn run_family(
    store: &JobStore,
    a: &mut Assignment,
    cfg: &FabricConfig,
    stop: &dyn Fn() -> bool,
) -> Result<FamilyOutcome, DaemonError> {
    let mut sub = a.spec.clone();
    sub.workloads = vec![a.family.workload.clone()];
    sub.models = vec![a.family.model.clone()];
    sub.budgets = vec![a.family.budget];
    sub.threads = 1; // cells run on this worker thread only

    let (mut writer, existing) =
        match AppendWriter::open(a.job.cells_path(), &RunRecord::csv_header()) {
            Ok(opened) => opened,
            // The open itself appends (the header, or the tail repair), so a
            // full disk can surface here just as well as on a row append.
            Err(e) if ftsim_chaos::is_enospc(&e) => return Ok(pause_for_enospc(store, &a.job)),
            Err(e) => {
                return Err(io_err(format!("opening {}", a.job.cells_path().display()))(
                    e,
                ))
            }
        };
    let (prior, dropped) = from_csv_tolerant(&existing);
    if dropped > 0 {
        eprintln!(
            "ftsimd: {}: dropped {dropped} torn line(s) from cells.csv; re-simulating those cells",
            a.job.id
        );
    }
    let plan = std::sync::Arc::new(
        sub.to_experiment()?
            .resume_from(prior)
            .plan()
            .map_err(DaemonError::Experiment)?,
    );

    // Cells execute on a helper thread so the watchdog can abandon one
    // that wedges: the main thread feeds indices and waits with a
    // deadline. A chaos gate at `fabric.cell.<family-slug>` sits at the
    // top of each cell, so plans can hang exactly this family
    // (`delay@fabric.cell.<slug>*`) to exercise the watchdog. On every
    // exit path the index channel drops, the helper's `recv` fails, and
    // it unwinds on its own — including the abandonment case, where it
    // first finishes the wedged cell nobody is waiting for.
    let (idx_tx, idx_rx) = std::sync::mpsc::channel::<usize>();
    let (rec_tx, rec_rx) = std::sync::mpsc::channel::<(RunRecord, CellPath, StageProfile)>();
    {
        let plan = std::sync::Arc::clone(&plan);
        let site = format!("{}{}", fp::FABRIC_CELL_PREFIX, a.family.slug());
        std::thread::spawn(move || {
            while let Ok(idx) = idx_rx.recv() {
                let _ = ftsim_chaos::io().gate(&site);
                if rec_tx.send(plan.run_cell_observed(idx)).is_err() {
                    return; // abandoned by the watchdog
                }
            }
        });
    }

    let mut observed_max = Duration::ZERO;
    let mut done = a.job_done;
    for idx in 0..plan.len() {
        if plan.prior(idx).is_some() {
            continue; // already recorded (this pass resumed it)
        }
        if stop() {
            return Ok(FamilyOutcome::Interrupted);
        }
        if !a.claim.renew()? {
            return Ok(FamilyOutcome::Lost);
        }
        let budget = cell_budget(observed_max, cfg);
        let started = Instant::now();
        if idx_tx.send(idx).is_err() {
            return Err(DaemonError::Io {
                context: "cell worker thread died".to_string(),
                source: io::Error::new(io::ErrorKind::BrokenPipe, "worker channel closed"),
            });
        }
        let (record, path, stage_profile) = match rec_rx.recv_timeout(budget) {
            Ok(cell) => cell,
            Err(std::sync::mpsc::RecvTimeoutError::Timeout) => {
                note_stuck_cell(store, a, &plan.identity(idx), budget);
                return Ok(FamilyOutcome::Stuck);
            }
            Err(std::sync::mpsc::RecvTimeoutError::Disconnected) => {
                return Err(DaemonError::Io {
                    context: "cell worker thread died".to_string(),
                    source: io::Error::new(io::ErrorKind::BrokenPipe, "worker channel closed"),
                });
            }
        };
        observed_max = observed_max.max(started.elapsed());
        let label = record.cell_label();
        trace::emit(TraceEvent::new(
            path.name(),
            &a.job.id,
            &label,
            &format!(
                "cycles={} ms={}",
                record.cycles,
                started.elapsed().as_millis()
            ),
        ));
        let row = record.to_csv_row();
        if let Err(e) = writer.append_row(&row) {
            if ftsim_chaos::is_enospc(&e) {
                return Ok(pause_for_enospc(store, &a.job));
            }
            return Err(io_err(format!(
                "appending to {}",
                a.job.cells_path().display()
            ))(e));
        }
        let m = fobs();
        m.cells_completed.inc();
        m.append_bytes.add(row.len() as u64 + 1); // the row plus its newline
        trace::emit(TraceEvent::new(
            "append",
            &a.job.id,
            &label,
            &format!("bytes={}", row.len() + 1),
        ));
        append_profile_row(&a.job, &label, path, &stage_profile);
        done += 1;
        // Keep `status` live for dashboards. The count is this worker's
        // view — concurrent peers make it momentarily stale, and the
        // next bump or finalization corrects it.
        bump_status(store, &a.job, JobState::Running, done, a.job_total);
    }
    a.job_done = done;
    Ok(FamilyOutcome::Finished)
}

/// Disk full while streaming cells. Losing the record is unavoidable,
/// but crashing the worker (and retrying into the same full disk) helps
/// nobody: pause the job with a status a human will actually see, keep
/// every streamed row, and let an identical re-submit resume once space
/// exists.
fn pause_for_enospc(store: &JobStore, job: &Job) -> FamilyOutcome {
    eprintln!(
        "ftsimd: job {}: disk full appending cells.csv; pausing the job",
        job.id
    );
    let _ = store.request_job_stop(job);
    if let Ok(mut status) = store.load_status(job) {
        if status.state != JobState::Done {
            status.error = "paused: no space left on device while appending cells.csv; \
                 free space and re-submit the spec to resume"
                .to_string();
            let _ = store.write_status(job, &status);
        }
    }
    FamilyOutcome::Paused
}

/// Header of the per-cell stage-profile sidecar (`<job>/profile.csv`):
/// one row per profiled cell — exact stage call counts plus estimated
/// per-stage wall nanoseconds (extrapolated from 1-in-64 cycle samples).
pub(crate) fn profile_header() -> String {
    let mut cols = vec!["label".to_string(), "path".to_string()];
    cols.extend(["cycles".to_string(), "samples".to_string()]);
    for s in STAGE_NAMES {
        cols.push(format!("{s}_calls"));
    }
    for s in STAGE_NAMES {
        cols.push(format!("{s}_est_ns"));
    }
    cols.join(",")
}

/// Best-effort append of one cell's stage profile to the job's
/// `profile.csv` sidecar. Empty profiles (profiling off, resumed cells)
/// are skipped. All errors — including a chaos-injected one at the
/// `obs.profile.append` failpoint — are swallowed: the sidecar is pure
/// observability and must never change a sweep's outcome. The site name
/// deliberately sits outside the `fabric.*` and `csv.*` globs ambient CI
/// chaos plans target, so enabling profiling does not consume their
/// injection budgets.
fn append_profile_row(job: &Job, label: &str, path: CellPath, prof: &StageProfile) {
    if prof.is_empty() {
        return;
    }
    if ftsim_chaos::io().gate(fp::OBS_PROFILE_APPEND).is_err() {
        return;
    }
    let file = job.profile_path();
    let fresh = !file.exists();
    let Ok(mut f) = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(&file)
    else {
        return;
    };
    use std::io::Write as _;
    if fresh {
        let _ = writeln!(f, "{}", profile_header());
    }
    let est = prof.est_total_ns();
    let mut row = format!("{label},{},{},{}", path.name(), prof.cycles, prof.samples);
    for calls in prof.calls {
        row.push_str(&format!(",{calls}"));
    }
    for ns in est {
        row.push_str(&format!(",{ns}"));
    }
    let _ = writeln!(f, "{row}");
}

/// Merges a job's streamed records into grid order (newest row per
/// cell), returning them with the grid's total cell count. An in-flight
/// job yields fewer records than the total; a finalizable one yields
/// exactly as many.
///
/// # Errors
///
/// [`DaemonError`] when the spec does not resolve to a grid.
pub(crate) fn merged_records(
    job: &Job,
    spec: &JobSpec,
) -> Result<(Vec<RunRecord>, usize), DaemonError> {
    let identities = spec.to_experiment()?.identities()?;
    let streamed = read_cells(job);
    let (streamed, _) = from_csv_tolerant(&streamed);
    let index = identity_index(&streamed);
    let records: Vec<RunRecord> = identities
        .iter()
        .filter_map(|id| index.get(&identity_key(id)).copied().cloned())
        .collect();
    Ok((records, identities.len()))
}

/// Finalizes a job if — and only if — every grid cell has a streamed
/// record: assembles the records in grid order (newest row per cell)
/// and writes `results.csv`/`results.json` atomically, then marks the
/// job done and clears its claims. Concurrent finalizers write
/// byte-identical artifacts, so the last rename winning is harmless.
/// Returns whether the job is now finalized.
///
/// # Errors
///
/// [`DaemonError`] for unresolvable specs or I/O trouble.
pub(crate) fn try_finalize(
    store: &JobStore,
    job: &Job,
    spec: &JobSpec,
) -> Result<bool, DaemonError> {
    let (records, total) = merged_records(job, spec)?;
    if records.len() < total {
        return Ok(false);
    }
    write_atomic(
        fp::FABRIC_FINALIZE_RESULTS_CSV,
        &job.results_path(),
        to_csv(&records).as_bytes(),
    )?;
    write_atomic(
        fp::FABRIC_FINALIZE_RESULTS_JSON,
        &job.results_json_path(),
        to_json(&records).as_bytes(),
    )?;
    store.write_status(
        job,
        &JobStatus {
            state: JobState::Done,
            cells_total: total,
            cells_done: total,
            error: String::new(),
            created_unix_ms: 0,
            finished_unix_ms: 0,
        },
    )?;
    // Claims are scaffolding; a straggler holding one re-runs a cell to
    // a byte-identical row at worst.
    ftsim_chaos::io()
        .remove_dir_all(fp::FABRIC_FINALIZE_CLEAR_CLAIMS, &job.claims_dir())
        .ok();
    fobs().jobs_finalized.inc();
    trace::emit(TraceEvent::new(
        "merge",
        &job.id,
        "",
        &format!("cells={total}"),
    ));
    Ok(true)
}

/// Re-queues `running` jobs that no live claim is working — the
/// graceful-shutdown sweep, so a stopped fabric leaves only `queued`
/// and terminal states behind (and the status files tell the truth:
/// nobody is running them).
pub(crate) fn requeue_unclaimed(store: &JobStore) -> Result<(), DaemonError> {
    for job in store.jobs()? {
        let Ok(status) = store.load_status(&job) else {
            continue;
        };
        if status.state == JobState::Running && live_claims(&job) == 0 {
            store.write_status(
                &job,
                &JobStatus {
                    state: JobState::Queued,
                    ..status
                },
            )?;
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_job(tag: &str) -> (JobStore, Job) {
        let dir = std::env::temp_dir().join(format!("ftsimd-fabric-{tag}-{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        let store = JobStore::open(dir).unwrap();
        let mut spec = JobSpec::new("claims");
        spec.workloads = vec!["gcc".to_string()];
        spec.models = vec!["SS-1".to_string()];
        spec.budgets = vec![1_000];
        let (id, _) = store.submit(&spec).unwrap();
        let job = store.job(&id).unwrap();
        (store, job)
    }

    fn family() -> FamilyId {
        FamilyId {
            workload: "gcc".to_string(),
            budget: 1_000,
            model: "SS-1".to_string(),
        }
    }

    #[test]
    fn claim_is_exclusive_until_released() {
        let (store, job) = temp_job("exclusive");
        let cfg_a = FabricConfig::new(Duration::from_secs(30));
        let cfg_b = FabricConfig::new(Duration::from_secs(30));
        assert_ne!(cfg_a.owner, cfg_b.owner);

        let held = try_claim(&job, &family(), &cfg_a).unwrap().unwrap();
        assert!(try_claim(&job, &family(), &cfg_b).unwrap().is_none());
        assert_eq!(live_claims(&job), 1);
        drop(held);
        assert_eq!(live_claims(&job), 0, "drop releases");
        assert!(try_claim(&job, &family(), &cfg_b).unwrap().is_some());
        std::fs::remove_dir_all(store.root()).ok();
    }

    #[test]
    fn expired_lease_is_stolen_and_old_holder_notices() {
        let (store, job) = temp_job("steal");
        let fast = FabricConfig::new(Duration::from_millis(40));
        let slow = FabricConfig::new(Duration::from_secs(30));

        let mut dying = try_claim(&job, &family(), &fast).unwrap().unwrap();
        std::thread::sleep(Duration::from_millis(80)); // lease expires
        let thief = try_claim(&job, &family(), &slow).unwrap();
        assert!(thief.is_some(), "an expired lease is stealable");
        // The original holder's heartbeat sees the loss...
        std::thread::sleep(Duration::from_millis(15)); // past lease/4
        assert!(!dying.renew().unwrap());
        // ...and its drop must not release the thief's claim.
        drop(dying);
        assert_eq!(live_claims(&job), 1);
        std::fs::remove_dir_all(store.root()).ok();
    }

    #[test]
    fn renewal_extends_the_lease() {
        let (store, job) = temp_job("renew");
        let cfg = FabricConfig::new(Duration::from_millis(120));
        let other = FabricConfig::new(Duration::from_millis(120));
        let mut held = try_claim(&job, &family(), &cfg).unwrap().unwrap();
        for _ in 0..4 {
            std::thread::sleep(Duration::from_millis(40));
            assert!(held.renew().unwrap());
            // The renewed lease is never stealable.
            assert!(try_claim(&job, &family(), &other).unwrap().is_none());
        }
        std::fs::remove_dir_all(store.root()).ok();
    }

    #[test]
    fn unparseable_claim_is_held_until_stale() {
        let (store, job) = temp_job("torn");
        let cfg = FabricConfig::new(Duration::from_millis(60));
        std::fs::create_dir_all(job.claims_dir()).unwrap();
        let path = job.claims_dir().join(format!("{}.lease", family().slug()));
        std::fs::write(&path, b"{ torn").unwrap();
        // Fresh garbage is presumed a mid-write peer.
        assert!(try_claim(&job, &family(), &cfg).unwrap().is_none());
        // Two leases later it is debris.
        std::thread::sleep(Duration::from_millis(130));
        assert!(try_claim(&job, &family(), &cfg).unwrap().is_some());
        std::fs::remove_dir_all(store.root()).ok();
    }

    #[test]
    fn scheduling_prefers_priority_then_fair_share() {
        let dir = std::env::temp_dir().join(format!("ftsimd-fabric-sched-{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        let store = JobStore::open(&dir).unwrap();
        let mut base = JobSpec::new("low");
        base.workloads = vec!["gcc".to_string()];
        base.models = vec!["SS-1".to_string()];
        base.budgets = vec![1_000];
        base.submitter = "alice".to_string();
        store.submit(&base).unwrap();
        let mut vip = base.clone();
        vip.name = "high".to_string();
        vip.priority = 5;
        vip.submitter = "bob".to_string();
        let (vip_id, _) = store.submit(&vip).unwrap();

        let cfg = FabricConfig::new(Duration::from_secs(30));
        let NextWork::Work(a) = next_assignment(&store, &cfg, None).unwrap() else {
            panic!("claimable work expected");
        };
        assert_eq!(a.job.id, vip_id, "higher priority claims first");

        // With bob's job claimed, fair share points the next worker at
        // alice's equal-priority job, even though bob submitted another:
        let mut tie = base.clone();
        tie.name = "bob-second".to_string();
        tie.submitter = "bob".to_string();
        store.submit(&tie).unwrap();
        let NextWork::Work(b) = next_assignment(&store, &cfg, None).unwrap() else {
            panic!("claimable work expected");
        };
        assert_eq!(
            b.job.id, "0001-low",
            "fair share prefers the submitter with no live claims"
        );
        drop((a, b));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn corrupt_status_is_quarantined_and_rebuilt() {
        let (store, job) = temp_job("corrupt-status");
        std::fs::write(job.status_path(), "{ definitely not json").unwrap();
        let cfg = FabricConfig::new(Duration::from_secs(30));
        let NextWork::Work(a) = next_assignment(&store, &cfg, None).unwrap() else {
            panic!("job must be schedulable again after the rebuild");
        };
        assert_eq!(a.job.id, job.id);
        drop(a);
        assert_eq!(store.quarantined_count(), 1, "evidence must be preserved");
        let rebuilt = store.load_status(&job).unwrap();
        assert_eq!(rebuilt.cells_total, 1);
        assert_eq!(rebuilt.cells_done, 0);
        std::fs::remove_dir_all(store.root()).ok();
    }

    #[test]
    fn missing_status_is_rebuilt() {
        let (store, job) = temp_job("missing-status");
        std::fs::remove_file(job.status_path()).unwrap();
        let cfg = FabricConfig::new(Duration::from_secs(30));
        assert!(matches!(
            next_assignment(&store, &cfg, None).unwrap(),
            NextWork::Work(_)
        ));
        assert!(job.status_path().exists(), "rebuilt status must persist");
        std::fs::remove_dir_all(store.root()).ok();
    }

    #[test]
    fn corrupt_spec_is_quarantined_and_job_parked_failed() {
        let (store, job) = temp_job("corrupt-spec");
        std::fs::write(job.spec_path(), "{{{{ not a spec").unwrap();
        let cfg = FabricConfig::new(Duration::from_secs(30));
        match next_assignment(&store, &cfg, None).unwrap() {
            NextWork::Idle { incomplete } => {
                assert_eq!(incomplete, 0, "a failed job must not block drain")
            }
            NextWork::Work(_) => panic!("a corrupt spec must not be runnable"),
        }
        assert!(
            !job.spec_path().exists(),
            "spec must be moved to quarantine"
        );
        assert!(store.quarantined_count() >= 1);
        let status = store.load_status(&job).unwrap();
        assert_eq!(status.state, JobState::Failed);
        assert!(!status.error.is_empty());
        std::fs::remove_dir_all(store.root()).ok();
    }

    #[test]
    fn paused_jobs_are_skipped_and_do_not_block_drain() {
        let (store, job) = temp_job("paused");
        store.request_job_stop(&job).unwrap();
        let cfg = FabricConfig::new(Duration::from_secs(30));
        match next_assignment(&store, &cfg, None).unwrap() {
            NextWork::Idle { incomplete } => assert_eq!(incomplete, 0),
            NextWork::Work(_) => panic!("paused jobs must not be claimed"),
        }
        // Re-submitting the identical spec un-pauses.
        let spec = store.load_spec(&job).unwrap();
        store.submit(&spec).unwrap();
        assert!(matches!(
            next_assignment(&store, &cfg, None).unwrap(),
            NextWork::Work(_)
        ));
        std::fs::remove_dir_all(store.root()).ok();
    }
}
