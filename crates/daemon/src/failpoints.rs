//! The daemon's failpoint catalog.
//!
//! Every filesystem and socket operation in the daemon routes through
//! [`ftsim_chaos::IoEnv`] under one of these site names, so a chaos plan
//! (`FTSIM_CHAOS=<seed>:<spec>`) can target the exact primitive: fail it,
//! tear it, delay it, or abort the process there. The crash-matrix suite
//! iterates [`CATALOG`] and proves that a kill at each site followed by a
//! `serve --drain` restart yields results byte-identical to the one-shot
//! grid.
//!
//! Site names are **stable identifiers**: tests, CI chaos plans and the
//! docs' failure-model table all refer to them, so renaming one is a
//! breaking change to the failure model.

/// One entry of the failpoint catalog: where it sits and what recovery
/// the fabric owes when the operation dies there.
#[derive(Debug, Clone, Copy)]
pub struct Failpoint {
    /// Stable dotted site name, as used in `FTSIM_CHAOS` plans.
    pub site: &'static str,
    /// The guarded operation.
    pub op: &'static str,
    /// Expected recovery when the process dies or the op fails here.
    pub recovery: &'static str,
}

/// Creating the state directory tree (`JobStore::open`).
pub const STORE_STATE_CREATE: &str = "store.state.create";
/// Exclusive `create_dir` claiming a fresh job id at submit.
pub const STORE_JOB_DIR_CREATE: &str = "store.job_dir.create";
/// Atomic write of a job's canonical `spec.json`.
pub const STORE_WRITE_SPEC: &str = "store.write_spec";
/// Reading a job's `spec.json`.
pub const STORE_READ_SPEC: &str = "store.read_spec";
/// Atomic temp+rename replacement of a job's `status.json`.
pub const STORE_WRITE_STATUS: &str = "store.write_status";
/// Reading a job's `status.json`.
pub const STORE_READ_STATUS: &str = "store.read_status";
/// Listing the `jobs/` directory.
pub const STORE_LIST_JOBS: &str = "store.list_jobs";
/// Removing a job directory (`remove`, `--fresh` re-submission).
pub const STORE_REMOVE_JOB: &str = "store.remove_job";
/// Writing a stop/pause sentinel.
pub const STORE_SENTINEL_WRITE: &str = "store.sentinel.write";
/// Clearing a stop/pause sentinel.
pub const STORE_SENTINEL_CLEAR: &str = "store.sentinel.clear";
/// Moving a corrupt state file into `<state>/quarantine/`.
pub const STORE_QUARANTINE: &str = "store.quarantine";
/// Reading the admission-control policy (`<state>/quota.json`).
pub const STORE_QUOTA_READ: &str = "store.quota.read";
/// Atomic write of the admission-control policy.
pub const STORE_QUOTA_WRITE: &str = "store.quota.write";
/// Removing an expired job directory during a GC pass.
pub const STORE_GC_REMOVE: &str = "store.gc.remove";

/// Reading a family's claim lease document.
pub const FABRIC_LEASE_READ: &str = "fabric.lease.read";
/// Exclusive `create_new` of a claim lease.
pub const FABRIC_CLAIM_CREATE: &str = "fabric.claim.create";
/// Atomic rewrite of a held lease at heartbeat renewal.
pub const FABRIC_CLAIM_RENEW: &str = "fabric.claim.renew";
/// Removing an owned lease when a family finishes.
pub const FABRIC_CLAIM_RELEASE: &str = "fabric.claim.release";
/// Rename-to-stale of an expired peer lease before re-claiming.
pub const FABRIC_CLAIM_STEAL: &str = "fabric.claim.steal";
/// Listing a job's `claims/` directory.
pub const FABRIC_CLAIMS_LIST: &str = "fabric.claims.list";
/// Reading `cells.csv` for resume/merge.
pub const FABRIC_CELLS_READ: &str = "fabric.cells.read";
/// Atomic write of the final grid-order `results.csv`.
pub const FABRIC_FINALIZE_RESULTS_CSV: &str = "fabric.finalize.results_csv";
/// Atomic write of the final `results.json`.
pub const FABRIC_FINALIZE_RESULTS_JSON: &str = "fabric.finalize.results_json";
/// Removing the `claims/` directory after finalization.
pub const FABRIC_FINALIZE_CLEAR_CLAIMS: &str = "fabric.finalize.clear_claims";
/// Verify-after-write reread of a relaxed-mode claim (`--lease-mode=relaxed`).
pub const FABRIC_CLAIM_VERIFY: &str = "fabric.claim.verify";
/// Per-family cell-execution gate; the full site is
/// `fabric.cell.<family-slug>`, so chaos plans can hang one family's cells
/// (`delay@fabric.cell.gcc-4000-ss-2*`) to exercise the stuck-cell watchdog.
pub const FABRIC_CELL_PREFIX: &str = "fabric.cell.";

/// Writing the bound-address advertisement (`<state>/http.addr`).
pub const HTTP_ADDR_WRITE: &str = "http.addr.write";
/// Accepting an HTTP connection.
pub const HTTP_ACCEPT: &str = "http.accept";
/// Reading an HTTP request head/body from the socket.
pub const HTTP_SERVER_READ: &str = "http.server.read";
/// Writing an HTTP response to the socket.
pub const HTTP_SERVER_RESPOND: &str = "http.server.respond";
/// Client: connecting and sending a request (`--remote`).
pub const HTTP_CLIENT_SEND: &str = "http.client.send";
/// Client: reading a response (`--remote`).
pub const HTTP_CLIENT_RECV: &str = "http.client.recv";

/// Failpoint site covering `AppendWriter::open` (lives in `ftsim-stats`).
pub const CSV_OPEN: &str = "csv.open";
/// Failpoint site covering each fsynced `AppendWriter::append_row`.
pub const CSV_APPEND: &str = "csv.append";

/// Best-effort append of a cell's stage-profile row to `<job>/profile.csv`.
/// Deliberately named outside the `fabric.*` and `csv.*` globs ambient CI
/// chaos plans target: observability writes are swallowed on failure and
/// must not consume those plans' injection budgets.
pub const OBS_PROFILE_APPEND: &str = "obs.profile.append";
/// Best-effort append of a trace event to the per-process NDJSON journal
/// under `<state>/trace/`. Same out-of-glob naming rationale as
/// [`OBS_PROFILE_APPEND`].
pub const OBS_TRACE_APPEND: &str = "obs.trace.append";

/// Every persistence failpoint the crash matrix kills at. Network sites
/// are excluded: an aborted server is client-visible, not a recovery
/// problem for the store.
pub const CATALOG: &[Failpoint] = &[
    Failpoint {
        site: STORE_STATE_CREATE,
        op: "create state directory tree",
        recovery: "next open re-creates; nothing was enqueued yet",
    },
    Failpoint {
        site: STORE_JOB_DIR_CREATE,
        op: "exclusive job-id claim (create_dir)",
        recovery: "a specless job dir is parked failed and never blocks dedup; re-submit claims the next id",
    },
    Failpoint {
        site: STORE_WRITE_SPEC,
        op: "atomic spec.json write",
        recovery: "rename is atomic: either no spec (job parked failed) or a complete one; other jobs proceed",
    },
    Failpoint {
        site: STORE_READ_SPEC,
        op: "spec.json read",
        recovery: "retryable; a corrupt spec is quarantined and the job marked failed",
    },
    Failpoint {
        site: STORE_WRITE_STATUS,
        op: "atomic status.json replace",
        recovery: "old status stays visible (rename is atomic); scheduler rebuilds missing/corrupt status from spec + cells.csv",
    },
    Failpoint {
        site: STORE_READ_STATUS,
        op: "status.json read",
        recovery: "retry on next scheduler pass; corrupt contents are quarantined and rebuilt",
    },
    Failpoint {
        site: STORE_LIST_JOBS,
        op: "jobs/ directory listing",
        recovery: "retry on next scheduler pass",
    },
    Failpoint {
        site: STORE_SENTINEL_WRITE,
        op: "stop/pause sentinel write",
        recovery: "sentinel is advisory; absence means the job keeps running",
    },
    Failpoint {
        site: STORE_SENTINEL_CLEAR,
        op: "stop/pause sentinel removal",
        recovery: "idempotent; next clear removes it",
    },
    Failpoint {
        site: FABRIC_LEASE_READ,
        op: "claim lease read",
        recovery: "treated as contended this pass; unreadable leases age out at 2x lease and are quarantined",
    },
    Failpoint {
        site: FABRIC_CLAIM_CREATE,
        op: "exclusive lease create_new",
        recovery: "claim not taken; family stays assignable, a torn lease ages out as unparseable",
    },
    Failpoint {
        site: FABRIC_CLAIM_RENEW,
        op: "lease heartbeat rewrite",
        recovery: "lease expires and a peer steals the family; duplicate cells merge newest-wins, byte-identical",
    },
    Failpoint {
        site: FABRIC_CLAIM_RELEASE,
        op: "lease removal on family completion",
        recovery: "leftover lease expires and is stolen or swept by finalize",
    },
    Failpoint {
        site: FABRIC_CLAIM_STEAL,
        op: "rename-to-stale of an expired lease",
        recovery: "steal aborts; the expired lease remains stealable on the next pass",
    },
    Failpoint {
        site: FABRIC_CLAIMS_LIST,
        op: "claims/ directory listing",
        recovery: "retry on next scheduler pass",
    },
    Failpoint {
        site: FABRIC_CELLS_READ,
        op: "cells.csv read for resume/merge",
        recovery: "retry; tolerant parser drops at most the torn trailing row, which is re-run",
    },
    Failpoint {
        site: FABRIC_FINALIZE_RESULTS_CSV,
        op: "atomic results.csv write",
        recovery: "job stays Running with all cells done; next pass re-finalizes from cells.csv",
    },
    Failpoint {
        site: FABRIC_FINALIZE_RESULTS_JSON,
        op: "atomic results.json write",
        recovery: "same as results.csv: finalization is idempotent and re-runs",
    },
    Failpoint {
        site: FABRIC_FINALIZE_CLEAR_CLAIMS,
        op: "claims/ cleanup after finalize",
        recovery: "stale claims of a Done job are inert; next finalize sweep removes them",
    },
    Failpoint {
        site: CSV_OPEN,
        op: "cells.csv open/read-back/tail repair",
        recovery: "family assignment fails this pass and is retried; torn tails are repaired on the next successful open",
    },
    Failpoint {
        site: CSV_APPEND,
        op: "fsynced cells.csv row append",
        recovery: "at most the row in flight is torn; tolerant readers drop it and the cell re-runs (ENOSPC pauses the job instead)",
    },
    Failpoint {
        site: OBS_PROFILE_APPEND,
        op: "best-effort profile.csv row append",
        recovery: "error swallowed; the profile row is dropped and sweep results are unchanged",
    },
    Failpoint {
        site: OBS_TRACE_APPEND,
        op: "best-effort trace journal append",
        recovery: "error swallowed; the trace event is dropped and sweep results are unchanged",
    },
];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn catalog_sites_are_unique_and_dotted() {
        let mut seen = std::collections::HashSet::new();
        for fp in CATALOG {
            assert!(seen.insert(fp.site), "duplicate site {}", fp.site);
            assert!(fp.site.contains('.'), "site {} not dotted", fp.site);
            assert!(!fp.recovery.is_empty());
        }
    }
}
