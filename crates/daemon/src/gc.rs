//! TTL garbage collection for the job store.
//!
//! A GC pass reclaims four kinds of state, and **never touches a live
//! family**:
//!
//! - **Expired jobs** — terminal jobs whose spec carries a non-zero
//!   `ttl_secs` (clock starts at `created_unix_ms`) or `retain_secs`
//!   (clock starts at `finished_unix_ms`). The whole job directory is
//!   removed. Jobs with both knobs at zero are kept forever.
//! - **Compactable jobs** — `Done` jobs whose sealed `results.csv`
//!   holds every cell; the streamed `cells.csv` working file (which can
//!   exceed the sealed file several-fold after crash/duplicate runs) is
//!   dropped.
//! - **Stale-lease debris** — `*.stale.*` rename targets left in a
//!   job's `claims/` directory when a steal or its cleanup died
//!   mid-flight. These are inert under the lease protocol (only
//!   `<slug>.lease` itself is ever contended), so removal is safe for
//!   live and terminal jobs alike.
//! - **Aged quarantine files** — corrupt-state evidence older than
//!   [`GcOptions::quarantine_retain`], together with `.reason`
//!   sidecars.
//!
//! Every removal routes through [`crate::failpoints::STORE_GC_REMOVE`],
//! so chaos plans can fail or kill GC mid-pass; the pass is idempotent
//! and the next one finishes the job. Errors on individual entries are
//! swallowed (a peer may be GC'ing concurrently); the report counts
//! only what *this* pass reclaimed.

use std::fmt;
use std::path::Path;
use std::time::Duration;

use ftsim::harness::from_csv_tolerant;

use crate::failpoints as fp;
use crate::store::{DaemonError, Job, JobState, JobStore};

/// Tuning knobs for a GC pass.
#[derive(Debug, Clone)]
pub struct GcOptions {
    /// Quarantined files older than this (by mtime) are deleted.
    pub quarantine_retain: Duration,
}

impl Default for GcOptions {
    fn default() -> Self {
        Self {
            quarantine_retain: Duration::from_secs(7 * 24 * 60 * 60),
        }
    }
}

/// What one GC pass reclaimed.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct GcReport {
    /// Job directories removed because their TTL or retention elapsed.
    pub expired_jobs: usize,
    /// Done jobs whose `cells.csv` was dropped in favour of the sealed
    /// `results.csv`.
    pub compacted_jobs: usize,
    /// `*.stale.*` lease-rename debris files removed from `claims/`.
    pub stale_lease_files: usize,
    /// Quarantine files (including `.reason` sidecars) aged out.
    pub quarantine_files: usize,
}

impl GcReport {
    /// Whether the pass found nothing to reclaim.
    pub fn is_empty(&self) -> bool {
        *self == GcReport::default()
    }
}

impl fmt::Display for GcReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "expired {} job(s), compacted {}, removed {} stale lease file(s), \
             aged out {} quarantine file(s)",
            self.expired_jobs, self.compacted_jobs, self.stale_lease_files, self.quarantine_files
        )
    }
}

/// Runs one garbage-collection pass over the store.
///
/// # Errors
///
/// [`DaemonError::Io`] only when the jobs directory itself cannot be
/// listed; per-job and per-file failures are skipped (and retried by
/// the next pass) so one wedged entry cannot starve the rest.
pub fn gc_pass(store: &JobStore, opts: &GcOptions) -> Result<GcReport, DaemonError> {
    let mut report = GcReport::default();
    let now = ftsim_chaos::io().now_ms();

    for job in store.jobs()? {
        // An unreadable or corrupt status means we cannot prove the job
        // is terminal — leave it for the scheduler's quarantine/rebuild
        // machinery. Stale-lease debris is still safe to drop.
        let status = match store.load_status(&job) {
            Ok(s) => s,
            Err(_) => {
                report.stale_lease_files += sweep_stale_debris(&job);
                continue;
            }
        };
        if !status.terminal() {
            // Live family: debris sweep only, never expiry/compaction.
            report.stale_lease_files += sweep_stale_debris(&job);
            continue;
        }

        // Unreadable/missing spec (e.g. quarantined): (0, 0) — the
        // conservative reading is "no TTL", so the job is kept.
        let (ttl_secs, retain_secs) = store
            .load_spec(&job)
            .map(|s| (s.ttl_secs, s.retain_secs))
            .unwrap_or((0, 0));
        let ttl_elapsed = ttl_secs > 0
            && status.created_unix_ms > 0
            && now
                >= status
                    .created_unix_ms
                    .saturating_add(ttl_secs.saturating_mul(1_000));
        let retain_elapsed = retain_secs > 0
            && status.finished_unix_ms > 0
            && now
                >= status
                    .finished_unix_ms
                    .saturating_add(retain_secs.saturating_mul(1_000));
        if ttl_elapsed || retain_elapsed {
            if ftsim_chaos::io()
                .remove_dir_all(fp::STORE_GC_REMOVE, job.dir())
                .is_ok()
            {
                report.expired_jobs += 1;
            }
            continue;
        }

        report.stale_lease_files += sweep_stale_debris(&job);
        if status.state == JobState::Done && compact_done_job(&job, status.cells_total) {
            report.compacted_jobs += 1;
        }
    }

    report.quarantine_files += sweep_quarantine(&store.quarantine_dir(), opts.quarantine_retain);
    Ok(report)
}

/// Drops a Done job's streamed `cells.csv` once the sealed
/// `results.csv` provably holds every cell. Returns whether anything
/// was removed.
fn compact_done_job(job: &Job, cells_total: usize) -> bool {
    let cells = job.cells_path();
    if !cells.exists() {
        return false;
    }
    let Ok(sealed) = ftsim_chaos::io().read_to_string(fp::FABRIC_CELLS_READ, &job.results_path())
    else {
        return false;
    };
    let (records, dropped) = from_csv_tolerant(&sealed);
    if dropped != 0 || records.len() != cells_total || cells_total == 0 {
        return false;
    }
    ftsim_chaos::io()
        .remove_file(fp::STORE_GC_REMOVE, &cells)
        .is_ok()
}

/// Removes `*.stale.*` rename debris from a job's `claims/` directory.
/// Returns how many files went away.
fn sweep_stale_debris(job: &Job) -> usize {
    let dir = job.claims_dir();
    let Ok(entries) = ftsim_chaos::io().list_dir(fp::FABRIC_CLAIMS_LIST, &dir) else {
        return 0;
    };
    let mut removed = 0;
    for path in entries {
        let is_debris = path
            .file_name()
            .and_then(|n| n.to_str())
            .is_some_and(|n| n.contains(".stale."));
        if is_debris
            && ftsim_chaos::io()
                .remove_file(fp::STORE_GC_REMOVE, &path)
                .is_ok()
        {
            removed += 1;
        }
    }
    removed
}

/// Ages out quarantine evidence (and `.reason` sidecars) whose mtime is
/// older than `retain`. Returns how many files went away.
fn sweep_quarantine(dir: &Path, retain: Duration) -> usize {
    let Ok(entries) = ftsim_chaos::io().list_dir(fp::STORE_QUARANTINE, dir) else {
        return 0;
    };
    let mut removed = 0;
    for path in entries {
        let old_enough = std::fs::metadata(&path)
            .and_then(|m| m.modified())
            .ok()
            .and_then(|mtime| mtime.elapsed().ok())
            .is_some_and(|age| age >= retain);
        if old_enough
            && ftsim_chaos::io()
                .remove_file(fp::STORE_GC_REMOVE, &path)
                .is_ok()
        {
            removed += 1;
        }
    }
    removed
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::JobSpec;
    use crate::store::JobStatus;

    fn temp_store(tag: &str) -> JobStore {
        let dir = std::env::temp_dir().join(format!("ftsimd-gc-{tag}-{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        JobStore::open(dir).unwrap()
    }

    fn small_spec(name: &str) -> JobSpec {
        let mut spec = JobSpec::new(name);
        spec.workloads = vec!["gcc".to_string()];
        spec.models = vec!["SS-1".to_string()];
        spec.budgets = vec![1_000];
        spec
    }

    /// Rewrites a job's status with the given state and a creation stamp
    /// far enough in the past that a 1-second TTL has elapsed.
    fn backdate(store: &JobStore, id: &str, state: JobState) {
        let job = store.job(id).unwrap();
        let mut status = store.load_status(&job).unwrap();
        status.state = state;
        status.created_unix_ms = 1_000; // 1970: any TTL has elapsed
        if status.terminal() {
            status.finished_unix_ms = 1_000;
        }
        // Bypass write_status: its stamp inheritance is exactly what a
        // backdating test must avoid.
        std::fs::write(job.status_path(), status_json(&status)).unwrap();
    }

    fn status_json(status: &JobStatus) -> String {
        format!(
            "{{\"state\": \"{}\", \"cells_total\": {}, \"cells_done\": {}, \"error\": \"\", \
             \"created_unix_ms\": {}, \"finished_unix_ms\": {}}}",
            match status.state {
                JobState::Queued => "queued",
                JobState::Running => "running",
                JobState::Done => "done",
                JobState::Failed => "failed",
            },
            status.cells_total,
            status.cells_done,
            status.created_unix_ms,
            status.finished_unix_ms
        )
    }

    #[test]
    fn expired_terminal_job_is_removed_but_live_sibling_survives() {
        let store = temp_store("expiry");
        let mut spec = small_spec("doomed");
        spec.ttl_secs = 1;
        let (doomed, _) = store.submit(&spec).unwrap();
        let mut spec = small_spec("alive");
        spec.ttl_secs = 1;
        let (alive, _) = store.submit(&spec).unwrap();

        // Both created in 1970, but only the terminal one may be GC'd.
        backdate(&store, &doomed, JobState::Done);
        backdate(&store, &alive, JobState::Running);

        let report = gc_pass(&store, &GcOptions::default()).unwrap();
        assert_eq!(report.expired_jobs, 1);
        assert!(matches!(store.job(&doomed), Err(DaemonError::NoSuchJob(_))));
        assert!(store.job(&alive).is_ok(), "live job must never be GC'd");

        // No TTL configured -> terminal jobs are kept forever.
        let (keeper, _) = store.submit(&small_spec("keeper")).unwrap();
        backdate(&store, &keeper, JobState::Done);
        let report = gc_pass(&store, &GcOptions::default()).unwrap();
        assert_eq!(report.expired_jobs, 0);
        assert!(store.job(&keeper).is_ok());
        std::fs::remove_dir_all(store.root()).ok();
    }

    #[test]
    fn retention_clock_starts_at_finish() {
        let store = temp_store("retain");
        let mut spec = small_spec("r");
        spec.retain_secs = 1;
        let (id, _) = store.submit(&spec).unwrap();
        let job = store.job(&id).unwrap();

        // Terminal but freshly finished: retention has not elapsed.
        let mut status = store.load_status(&job).unwrap();
        status.state = JobState::Failed;
        store.write_status(&job, &status).unwrap();
        let report = gc_pass(&store, &GcOptions::default()).unwrap();
        assert_eq!(report.expired_jobs, 0);
        assert!(store.job(&id).is_ok());

        // Backdate the finish stamp: now it expires.
        backdate(&store, &id, JobState::Failed);
        let report = gc_pass(&store, &GcOptions::default()).unwrap();
        assert_eq!(report.expired_jobs, 1);
        assert!(matches!(store.job(&id), Err(DaemonError::NoSuchJob(_))));
        std::fs::remove_dir_all(store.root()).ok();
    }

    #[test]
    fn done_job_with_complete_results_is_compacted() {
        let store = temp_store("compact");
        let (id, _) = store.submit(&small_spec("c")).unwrap();
        let job = store.job(&id).unwrap();

        // Fabricate a sealed two-row results.csv plus a bloated
        // three-row cells.csv; status says Done with 2 cells.
        use ftsim::harness::{to_csv, RunRecord};
        let rec = RunRecord::default();
        std::fs::write(job.results_path(), to_csv(&[rec.clone(), rec.clone()])).unwrap();
        std::fs::write(
            job.cells_path(),
            to_csv(&[rec.clone(), rec.clone(), rec.clone()]),
        )
        .unwrap();
        let mut status = store.load_status(&job).unwrap();
        status.state = JobState::Done;
        status.cells_total = 2;
        status.cells_done = 2;
        store.write_status(&job, &status).unwrap();

        let report = gc_pass(&store, &GcOptions::default()).unwrap();
        assert_eq!(report.compacted_jobs, 1);
        assert!(!job.cells_path().exists(), "cells.csv must be dropped");
        assert!(job.results_path().exists(), "sealed results must stay");

        // Second pass: nothing left to compact, and an *incomplete*
        // results.csv never triggers compaction.
        std::fs::write(job.cells_path(), to_csv(std::slice::from_ref(&rec))).unwrap();
        std::fs::write(job.results_path(), to_csv(&[rec])).unwrap();
        let report = gc_pass(&store, &GcOptions::default()).unwrap();
        assert_eq!(report.compacted_jobs, 0);
        assert!(job.cells_path().exists());
        std::fs::remove_dir_all(store.root()).ok();
    }

    #[test]
    fn stale_lease_debris_and_aged_quarantine_are_swept() {
        let store = temp_store("debris");
        let (id, _) = store.submit(&small_spec("d")).unwrap();
        let job = store.job(&id).unwrap();

        std::fs::create_dir_all(job.claims_dir()).unwrap();
        std::fs::write(job.claims_dir().join("fam.lease"), b"{}").unwrap();
        std::fs::write(job.claims_dir().join("fam.lease.stale.1.2"), b"{}").unwrap();

        std::fs::create_dir_all(store.quarantine_dir()).unwrap();
        std::fs::write(store.quarantine_dir().join("old.json"), b"x").unwrap();

        // Live job: the real lease survives, the debris does not; the
        // quarantine file is too young for the default 7-day retention.
        let report = gc_pass(&store, &GcOptions::default()).unwrap();
        assert_eq!(report.stale_lease_files, 1);
        assert_eq!(report.quarantine_files, 0);
        assert!(job.claims_dir().join("fam.lease").exists());
        assert!(!job.claims_dir().join("fam.lease.stale.1.2").exists());

        // Zero retention ages everything out immediately.
        let opts = GcOptions {
            quarantine_retain: Duration::ZERO,
        };
        let report = gc_pass(&store, &opts).unwrap();
        assert_eq!(report.quarantine_files, 1);
        assert!(!store.quarantine_dir().join("old.json").exists());
        std::fs::remove_dir_all(store.root()).ok();
    }
}
