//! The daemon's HTTP API: a hand-rolled HTTP/1.1 server over
//! [`std::net::TcpListener`] (this workspace takes no external
//! dependencies — the TOML-subset parser in `spec.rs` set the
//! precedent), plus the minimal client the `ftsimd --remote` paths use.
//!
//! The surface mirrors the CLI verbs one-to-one:
//!
//! | Route                       | Verb                               |
//! |-----------------------------|------------------------------------|
//! | `POST /jobs`                | submit-or-attach (body = spec)     |
//! | `GET /jobs`                 | list every job                     |
//! | `GET /jobs/<id>/status`     | one job's status + family progress |
//! | `GET /jobs/<id>/results`    | grid-order CSV (`?json`, `?watch`) |
//! | `GET /jobs/<id>/report`     | analysis report (JSON; `?format=text`) |
//! | `POST /jobs/<id>/stop`      | pause one job                      |
//! | `POST /stop`                | stop the serving daemon            |
//!
//! Responses carry `Connection: close` and either a `Content-Length`
//! or — for `?watch` streams — no length at all: the client reads to
//! EOF, which is what lets result rows flow as cells complete without
//! chunked-encoding machinery. The bound address is written to
//! `<state>/http.addr`, so `--listen 127.0.0.1:0` (tests, parallel CI)
//! is discoverable.

use crate::fabric::{family_progress, merged_records};
use crate::failpoints as fp;
use crate::spec::JobSpec;
use crate::store::{io_err, write_atomic, DaemonError, Job, JobState, JobStore};
use ftsim::harness::{from_csv, from_csv_tolerant_prefix, to_csv, to_json, RunRecord};
use ftsim_chaos::retry::Backoff;
use ftsim_obs::{metrics, trace};
use ftsim_stats::JsonValue;
use std::cell::RefCell;
use std::io::{BufRead, BufReader, Read, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Largest request head (request line + headers) we accept; the body
/// bound is configurable via [`HttpLimits`].
const MAX_HEAD: usize = 16 * 1024;

/// Request-size and request-pacing bounds the server enforces, set from
/// `serve --max-body` / `--head-timeout-ms`.
#[derive(Debug, Clone, Copy)]
pub(crate) struct HttpLimits {
    /// Largest request body accepted; larger submissions get `413`.
    pub max_body: usize,
    /// Socket read timeout while parsing a request. A slow-loris client
    /// that dribbles its head slower than this gets `408`, freeing the
    /// handler thread.
    pub head_timeout: Duration,
}

impl Default for HttpLimits {
    fn default() -> Self {
        Self {
            max_body: 1024 * 1024,
            head_timeout: Duration::from_secs(10),
        }
    }
}

/// The daemon's HTTP listener, bound and advertised.
pub(crate) struct HttpServer {
    store: JobStore,
    listener: TcpListener,
    limits: HttpLimits,
    /// Bearer token gating every mutating (POST) verb; `None` leaves
    /// the API open (single-tenant default).
    token: Option<String>,
    started: std::time::Instant,
    stopped: Arc<AtomicBool>,
}

impl HttpServer {
    /// Binds `addr`, writes the bound address to `<state>/http.addr`,
    /// and returns the server ready to [`run`](Self::run).
    pub(crate) fn bind(
        store: &JobStore,
        addr: &str,
        limits: HttpLimits,
        token: Option<String>,
    ) -> Result<Self, DaemonError> {
        let listener =
            TcpListener::bind(addr).map_err(io_err(format!("binding http listener on {addr}")))?;
        let local = listener
            .local_addr()
            .map_err(io_err("reading bound http address"))?;
        listener
            .set_nonblocking(true)
            .map_err(io_err("configuring http listener"))?;
        write_atomic(
            fp::HTTP_ADDR_WRITE,
            &store.http_addr_path(),
            local.to_string().as_bytes(),
        )?;
        eprintln!("ftsimd: http api on {local}");
        Ok(Self {
            store: store.clone(),
            listener,
            limits,
            token,
            started: std::time::Instant::now(),
            stopped: Arc::new(AtomicBool::new(false)),
        })
    }

    /// Accept loop: polls the (non-blocking) listener until
    /// `should_stop`, handling each connection on its own thread.
    /// In-flight `?watch` streams notice the shutdown via the shared
    /// `stopped` flag and end their response cleanly.
    pub(crate) fn run(&self, should_stop: &dyn Fn() -> bool, poll: Duration) {
        let nap = poll.min(Duration::from_millis(50));
        loop {
            if should_stop() {
                self.stopped.store(true, Ordering::SeqCst);
                return;
            }
            match self.listener.accept() {
                Ok((stream, _)) => {
                    // The accept failpoint models the kernel handing us a
                    // connection that dies before we can serve it: drop
                    // it and keep accepting (clients retry).
                    if let Err(e) = ftsim_chaos::io().gate(fp::HTTP_ACCEPT) {
                        eprintln!("ftsimd: http accept: {e}");
                        continue;
                    }
                    let store = self.store.clone();
                    let stopped = Arc::clone(&self.stopped);
                    let limits = self.limits;
                    let token = self.token.clone();
                    let started = self.started;
                    std::thread::spawn(move || {
                        // A hung client must not wedge its thread forever.
                        stream.set_read_timeout(Some(limits.head_timeout)).ok();
                        handle(&store, stream, limits, token.as_deref(), started, &stopped);
                    });
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => std::thread::sleep(nap),
                Err(_) => std::thread::sleep(nap),
            }
        }
    }
}

/// One parsed request.
struct Request {
    method: String,
    path: String,
    query: Vec<(String, String)>,
    body: String,
    /// The `Authorization: Bearer <token>` credential, if any.
    bearer: Option<String>,
}

impl Request {
    fn query(&self, key: &str) -> Option<&str> {
        self.query
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.as_str())
    }
}

/// A request the server refuses to process, with the HTTP status it
/// owes the client: `400` (malformed), `408` (slow loris / timeout),
/// `413` (oversized body) or `431` (oversized head).
struct ReqError {
    code: u16,
    message: String,
}

impl ReqError {
    fn new(code: u16, message: impl Into<String>) -> Self {
        Self {
            code,
            message: message.into(),
        }
    }
}

/// `408` for a socket read that timed out (a client dribbling bytes
/// slower than the head timeout), `400` otherwise.
fn read_error(context: &str, e: &std::io::Error) -> ReqError {
    use std::io::ErrorKind::{TimedOut, WouldBlock};
    if matches!(e.kind(), TimedOut | WouldBlock) {
        ReqError::new(408, format!("timed out {context}"))
    } else {
        ReqError::new(400, format!("{context}: {e}"))
    }
}

/// Reads and parses one HTTP/1.1 request from the stream.
fn read_request(stream: &mut TcpStream, limits: HttpLimits) -> Result<Request, ReqError> {
    ftsim_chaos::io()
        .gate(fp::HTTP_SERVER_READ)
        .map_err(|e| read_error("reading request", &e))?;
    // Read bytes until the blank line ending the head.
    let mut head = Vec::new();
    let mut byte = [0u8; 1];
    while !head.ends_with(b"\r\n\r\n") {
        if head.len() > MAX_HEAD {
            return Err(ReqError::new(431, "request head too large"));
        }
        match stream.read(&mut byte) {
            Ok(0) => return Err(ReqError::new(400, "connection closed mid-request")),
            Ok(_) => head.push(byte[0]),
            Err(e) => return Err(read_error("reading request", &e)),
        }
    }
    let head = String::from_utf8_lossy(&head);
    let mut lines = head.split("\r\n");
    let request_line = lines.next().unwrap_or_default();
    let mut parts = request_line.split_whitespace();
    let method = parts.next().unwrap_or_default().to_ascii_uppercase();
    let target = parts.next().unwrap_or_default();
    if method.is_empty() || target.is_empty() {
        return Err(ReqError::new(
            400,
            format!("malformed request line `{request_line}`"),
        ));
    }
    let mut content_length = 0usize;
    let mut bearer = None;
    for line in lines {
        if let Some((name, value)) = line.split_once(':') {
            if name.trim().eq_ignore_ascii_case("content-length") {
                content_length = value
                    .trim()
                    .parse()
                    .map_err(|_| ReqError::new(400, "bad content-length"))?;
            } else if name.trim().eq_ignore_ascii_case("authorization") {
                if let Some(cred) = value.trim().strip_prefix("Bearer ") {
                    bearer = Some(cred.trim().to_string());
                }
            }
        }
    }
    if content_length > limits.max_body {
        return Err(ReqError::new(
            413,
            format!(
                "request body of {content_length} bytes exceeds the {} byte limit",
                limits.max_body
            ),
        ));
    }
    let mut body = vec![0u8; content_length];
    stream
        .read_exact(&mut body)
        .map_err(|e| read_error("reading request body", &e))?;
    let (path, query_text) = match target.split_once('?') {
        Some((p, q)) => (p, q),
        None => (target, ""),
    };
    let query = query_text
        .split('&')
        .filter(|kv| !kv.is_empty())
        .map(|kv| match kv.split_once('=') {
            Some((k, v)) => (k.to_string(), v.to_string()),
            None => (kv.to_string(), String::new()),
        })
        .collect();
    Ok(Request {
        method,
        path: path.to_string(),
        query,
        body: String::from_utf8_lossy(&body).into_owned(),
        bearer,
    })
}

fn status_text(code: u16) -> &'static str {
    match code {
        200 => "OK",
        400 => "Bad Request",
        401 => "Unauthorized",
        404 => "Not Found",
        405 => "Method Not Allowed",
        408 => "Request Timeout",
        413 => "Payload Too Large",
        429 => "Too Many Requests",
        431 => "Request Header Fields Too Large",
        _ => "Internal Server Error",
    }
}

thread_local! {
    /// `(verb, receive time)` of the request this handler thread is
    /// serving. Consumed (`take`) by the first response written, so the
    /// request-latency histogram gets exactly one sample per request
    /// even when a handler writes through `respond` more than once.
    static REQ_CTX: RefCell<Option<(String, std::time::Instant)>> = const { RefCell::new(None) };
}

/// Writes a complete response with a `Content-Length`.
fn respond(stream: &mut TcpStream, code: u16, content_type: &str, body: &str) {
    respond_extra(stream, code, content_type, body, &[]);
}

/// [`respond`] with additional header lines (`Retry-After`,
/// `WWW-Authenticate`, ...), each given as `"Name: value"`.
fn respond_extra(
    stream: &mut TcpStream,
    code: u16,
    content_type: &str,
    body: &str,
    extra_headers: &[String],
) {
    // An injected respond failure drops the response on the floor: the
    // client sees a closed connection (and its retry layer re-asks).
    if let Err(e) = ftsim_chaos::io().gate(fp::HTTP_SERVER_RESPOND) {
        eprintln!("ftsimd: http respond: {e}");
        return;
    }
    let mut head = format!(
        "HTTP/1.1 {code} {}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\nConnection: close\r\n",
        status_text(code),
        body.len()
    );
    for header in extra_headers {
        head.push_str(header);
        head.push_str("\r\n");
    }
    head.push_str("\r\n");
    let _ = stream.write_all(head.as_bytes());
    let _ = stream.write_all(body.as_bytes());
    let _ = stream.flush();
    if let Some((verb, t0)) = REQ_CTX.with(|c| c.borrow_mut().take()) {
        let status = code.to_string();
        metrics::histogram(
            "ftsimd_http_request_ms",
            &[("verb", &verb), ("status", &status)],
            5,
            40,
        )
        .record(t0.elapsed().as_millis() as u64);
    }
}

fn respond_json(stream: &mut TcpStream, code: u16, body: &JsonValue) {
    respond(stream, code, "application/json", &body.render_pretty(2));
}

fn error_json(message: impl Into<String>) -> JsonValue {
    JsonValue::obj([("error".to_string(), JsonValue::Str(message.into()))])
}

/// Compares a presented credential against the configured token without
/// an early exit, so response timing does not leak how long a matching
/// prefix was.
fn token_matches(expected: &str, presented: &str) -> bool {
    let (a, b) = (expected.as_bytes(), presented.as_bytes());
    let mut diff = a.len() ^ b.len();
    for i in 0..a.len().max(b.len()) {
        let x = a.get(i).copied().unwrap_or(0);
        let y = b.get(i).copied().unwrap_or(0);
        diff |= (x ^ y) as usize;
    }
    diff == 0
}

/// Routes one request. Every handler failure turns into a JSON error
/// response; nothing here can take the accept loop down.
fn handle(
    store: &JobStore,
    mut stream: TcpStream,
    limits: HttpLimits,
    token: Option<&str>,
    started: std::time::Instant,
    stopped: &AtomicBool,
) {
    let t0 = std::time::Instant::now();
    let req = match read_request(&mut stream, limits) {
        Ok(req) => {
            REQ_CTX.with(|c| *c.borrow_mut() = Some((req.method.clone(), t0)));
            req
        }
        Err(e) => {
            respond_json(&mut stream, e.code, &error_json(e.message));
            // Drain what the client already sent (an oversized body, a
            // half-written head) before closing: dropping the socket
            // with unread data makes the kernel RST the connection,
            // which can destroy the error response before the client
            // reads it.
            let mut sink = [0u8; 4096];
            let mut drained = 0usize;
            while drained < 4 * 1024 * 1024 {
                match stream.read(&mut sink) {
                    Ok(n) if n > 0 => drained += n,
                    _ => break,
                }
            }
            return;
        }
    };
    // Every mutating verb is a POST; reads stay open so dashboards and
    // `results --watch` keep working without credentials.
    if req.method == "POST" {
        if let Some(expected) = token {
            let authorized = req
                .bearer
                .as_deref()
                .is_some_and(|presented| token_matches(expected, presented));
            if !authorized {
                respond_extra(
                    &mut stream,
                    401,
                    "application/json",
                    &error_json("missing or invalid bearer token").render_pretty(2),
                    &["WWW-Authenticate: Bearer".to_string()],
                );
                return;
            }
        }
    }
    let segments: Vec<&str> = req.path.split('/').filter(|s| !s.is_empty()).collect();
    match (req.method.as_str(), segments.as_slice()) {
        ("POST", ["jobs"]) => post_job(store, &mut stream, &req),
        ("GET", ["jobs"]) => list_jobs(store, &mut stream),
        ("GET", ["jobs", id, "status"]) => job_status(store, &mut stream, id),
        ("GET", ["jobs", id, "results"]) => job_results(store, &mut stream, id, &req, stopped),
        ("GET", ["jobs", id, "report"]) => job_report(store, &mut stream, id, &req, stopped),
        ("POST", ["jobs", id, "stop"]) => job_stop(store, &mut stream, id),
        ("POST", ["stop"]) => {
            match store.request_stop() {
                Ok(()) => respond_json(
                    &mut stream,
                    200,
                    &JsonValue::obj([("stopping".to_string(), JsonValue::Bool(true))]),
                ),
                Err(e) => respond_json(&mut stream, 500, &error_json(e.to_string())),
            };
        }
        ("GET", ["healthz"]) => healthz(store, &mut stream, started),
        ("GET", ["metrics"]) => metrics_endpoint(store, &mut stream),
        ("GET", ["trace"]) => trace_endpoint(store, &mut stream, &req),
        (method, _) if method != "GET" && method != "POST" => {
            respond_json(&mut stream, 405, &error_json("use GET or POST"));
        }
        _ => respond_json(
            &mut stream,
            404,
            &error_json(format!("no route for {} {}", req.method, req.path)),
        ),
    }
}

fn lookup(store: &JobStore, stream: &mut TcpStream, id: &str) -> Option<Job> {
    match store.job(id) {
        Ok(job) => Some(job),
        Err(e) => {
            respond_json(stream, 404, &error_json(e.to_string()));
            None
        }
    }
}

fn post_job(store: &JobStore, stream: &mut TcpStream, req: &Request) {
    let spec = match JobSpec::parse(&req.body) {
        Ok(spec) => spec,
        Err(e) => {
            respond_json(stream, 400, &error_json(e.to_string()));
            return;
        }
    };
    match store.submit(&spec) {
        Ok((id, created)) => {
            let cells = store
                .job(&id)
                .and_then(|job| store.load_status(&job))
                .map(|s| s.cells_total as u64)
                .unwrap_or(0);
            respond_json(
                stream,
                200,
                &JsonValue::obj([
                    ("id".to_string(), JsonValue::Str(id)),
                    ("created".to_string(), JsonValue::Bool(created)),
                    ("cells_total".to_string(), JsonValue::U64(cells)),
                ]),
            );
        }
        Err(
            e @ DaemonError::QuotaExceeded {
                retry_after_secs, ..
            },
        ) => {
            // Structured refusal: the client learns when to come back
            // both from the header and from the body.
            respond_extra(
                stream,
                429,
                "application/json",
                &JsonValue::obj([
                    ("error".to_string(), JsonValue::Str(e.to_string())),
                    (
                        "retry_after_secs".to_string(),
                        JsonValue::U64(retry_after_secs),
                    ),
                ])
                .render_pretty(2),
                &[format!("Retry-After: {retry_after_secs}")],
            );
        }
        Err(e) => respond_json(stream, 400, &error_json(e.to_string())),
    }
}

/// One job's listing entry: status plus the spec's submitter/priority.
fn job_entry(store: &JobStore, job: &Job) -> JsonValue {
    let (submitter, priority) = store
        .load_spec(job)
        .map(|s| (s.submitter, s.priority))
        .unwrap_or_default();
    let mut pairs = vec![("id".to_string(), JsonValue::Str(job.id.clone()))];
    match store.load_status(job) {
        Ok(s) => pairs.extend([
            ("state".to_string(), JsonValue::Str(s.state.to_string())),
            (
                "cells_done".to_string(),
                JsonValue::U64(s.cells_done as u64),
            ),
            (
                "cells_total".to_string(),
                JsonValue::U64(s.cells_total as u64),
            ),
            ("error".to_string(), JsonValue::Str(s.error)),
        ]),
        Err(e) => pairs.push(("error".to_string(), JsonValue::Str(e.to_string()))),
    }
    pairs.extend([
        ("submitter".to_string(), JsonValue::Str(submitter)),
        ("priority".to_string(), JsonValue::I64(priority)),
        (
            "paused".to_string(),
            JsonValue::Bool(store.job_stop_requested(job)),
        ),
    ]);
    JsonValue::Obj(pairs)
}

fn list_jobs(store: &JobStore, stream: &mut TcpStream) {
    match store.jobs() {
        Ok(jobs) => {
            let entries = jobs.iter().map(|job| job_entry(store, job)).collect();
            respond_json(
                stream,
                200,
                &JsonValue::obj([("jobs".to_string(), JsonValue::Arr(entries))]),
            );
        }
        Err(e) => respond_json(stream, 500, &error_json(e.to_string())),
    }
}

fn job_status(store: &JobStore, stream: &mut TcpStream, id: &str) {
    let Some(job) = lookup(store, stream, id) else {
        return;
    };
    let mut doc = match job_entry(store, &job) {
        JsonValue::Obj(pairs) => pairs,
        _ => unreachable!("job_entry builds an object"),
    };
    // Family progress is best-effort decoration, exactly as in the CLI.
    if let Ok(families) = family_progress(store, &job) {
        doc.push((
            "families".to_string(),
            JsonValue::Arr(
                families
                    .iter()
                    .map(|f| {
                        JsonValue::obj([
                            (
                                "workload".to_string(),
                                JsonValue::Str(f.family.workload.clone()),
                            ),
                            ("budget".to_string(), JsonValue::U64(f.family.budget)),
                            ("model".to_string(), JsonValue::Str(f.family.model.clone())),
                            ("done".to_string(), JsonValue::U64(f.done as u64)),
                            ("total".to_string(), JsonValue::U64(f.total as u64)),
                        ])
                    })
                    .collect(),
            ),
        ));
    }
    respond_json(stream, 200, &JsonValue::Obj(doc));
}

fn job_results(
    store: &JobStore,
    stream: &mut TcpStream,
    id: &str,
    req: &Request,
    stopped: &AtomicBool,
) {
    let Some(job) = lookup(store, stream, id) else {
        return;
    };
    if req.query("watch").is_some() {
        let interval = req
            .query("interval")
            .and_then(|v| v.parse().ok())
            .map_or(Duration::from_millis(500), Duration::from_millis);
        stream_results(store, stream, &job, interval, stopped);
        return;
    }
    let json = req.query("json").is_some();
    let done = store
        .load_status(&job)
        .map(|s| s.state == JobState::Done)
        .unwrap_or(false);
    if done {
        // A finished job's artifacts are canonical: serve them verbatim.
        let path = if json {
            job.results_json_path()
        } else {
            job.results_path()
        };
        match std::fs::read_to_string(&path) {
            Ok(text) => respond(
                stream,
                200,
                if json { "application/json" } else { "text/csv" },
                &text,
            ),
            Err(e) => respond_json(stream, 500, &error_json(format!("reading results: {e}"))),
        }
        return;
    }
    let merged = store
        .load_spec(&job)
        .and_then(|spec| merged_records(&job, &spec));
    match merged {
        Ok((records, _total)) => {
            if json {
                respond(stream, 200, "application/json", &to_json(&records));
            } else {
                respond(stream, 200, "text/csv", &to_csv(&records));
            }
        }
        Err(e) => respond_json(stream, 500, &error_json(e.to_string())),
    }
}

/// The retry budget a watch loop grants consecutive failed reads of
/// `cells.csv` before ending the stream: 8 attempts, exponential from
/// 25 ms, capped at 1 s. Shared by the HTTP `?watch` stream and the
/// CLI `results --watch` loop so both degrade identically.
pub(crate) fn watch_backoff() -> Backoff {
    Backoff::new(Duration::from_millis(25), Duration::from_secs(1), 8)
}

/// Streams a job's records as CSV rows while they arrive — the HTTP
/// twin of `ftsimd results --watch`. The response has no
/// `Content-Length`; the client reads rows until the job reaches a
/// terminal state (or the daemon shuts down) and the connection closes.
fn stream_results(
    store: &JobStore,
    stream: &mut TcpStream,
    job: &Job,
    interval: Duration,
    stopped: &AtomicBool,
) {
    let header = RunRecord::csv_header();
    let head = "HTTP/1.1 200 OK\r\nContent-Type: text/csv\r\nConnection: close\r\n\r\n";
    if stream.write_all(head.as_bytes()).is_err() {
        return;
    }
    if stream.write_all(format!("{header}\n").as_bytes()).is_err() {
        return;
    }
    let mut consumed = 0usize; // bytes of cells.csv fully parsed
    let mut backoff = watch_backoff();
    loop {
        // Status first, cells second: a record streamed before the
        // terminal status was set is guaranteed to be seen by the final
        // read.
        let state = match store.load_status(job) {
            Ok(s) => s.state,
            Err(e) => match backoff.next_delay() {
                Some(delay) => {
                    std::thread::sleep(delay);
                    continue;
                }
                None => {
                    eprintln!("ftsimd: watch stream on {}: {e}; giving up", job.id);
                    return;
                }
            },
        };
        let text = match ftsim_chaos::io().read(fp::FABRIC_CELLS_READ, &job.cells_path()) {
            Ok(bytes) => String::from_utf8_lossy(&bytes).into_owned(),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => String::new(),
            Err(e) => {
                // Transient read trouble: back off and retry; a budget
                // of consecutive failures ends the stream (the client
                // sees EOF and can re-watch).
                match backoff.next_delay() {
                    Some(delay) => {
                        std::thread::sleep(delay);
                        continue;
                    }
                    None => {
                        eprintln!("ftsimd: watch stream on {}: {e}; giving up", job.id);
                        return;
                    }
                }
            }
        };
        backoff = watch_backoff(); // a successful read resets the budget
        if text.len() > consumed {
            let (rows, parsed) = if consumed == 0 {
                from_csv_tolerant_prefix(&text)
            } else {
                let doc = format!("{header}\n{}", &text[consumed..]);
                let (rows, parsed) = from_csv_tolerant_prefix(&doc);
                (rows, parsed.saturating_sub(header.len() + 1))
            };
            consumed += parsed;
            for r in &rows {
                if stream
                    .write_all(format!("{}\n", r.to_csv_row()).as_bytes())
                    .is_err()
                {
                    return; // client went away
                }
            }
            if stream.flush().is_err() {
                return;
            }
        }
        match state {
            JobState::Done | JobState::Failed => return,
            JobState::Queued | JobState::Running => {
                if stopped.load(Ordering::SeqCst) {
                    return; // daemon shutting down: end the stream
                }
                std::thread::sleep(interval);
            }
        }
    }
}

fn job_report(
    store: &JobStore,
    stream: &mut TcpStream,
    id: &str,
    req: &Request,
    stopped: &AtomicBool,
) {
    let Some(job) = lookup(store, stream, id) else {
        return;
    };
    if req.query("watch").is_some() {
        let interval = req
            .query("interval")
            .and_then(|v| v.parse().ok())
            .map_or(Duration::from_millis(500), Duration::from_millis);
        stream_report(store, stream, &job, interval, stopped);
        return;
    }
    let done = store
        .load_status(&job)
        .map(|s| s.state == JobState::Done)
        .unwrap_or(false);
    let records = if done {
        std::fs::read_to_string(job.results_path())
            .map_err(|e| e.to_string())
            .and_then(|text| from_csv(&text).map_err(|e| e.to_string()))
    } else {
        store
            .load_spec(&job)
            .and_then(|spec| merged_records(&job, &spec))
            .map(|(records, _)| records)
            .map_err(|e| e.to_string())
    };
    match records {
        Ok(records) => {
            let report = ftsim_analysis::analyze_records(&records);
            if req.query("format") == Some("text") {
                respond(stream, 200, "text/plain", &report.render());
            } else {
                respond(stream, 200, "application/json", &report.to_json());
            }
        }
        Err(message) => respond_json(stream, 500, &error_json(message)),
    }
}

/// One line of a `report?watch` stream: the job's state, how many cells
/// the snapshot covers, and the full analysis report, as one compact
/// JSON object.
pub(crate) fn report_snapshot(state: JobState, records: &[RunRecord]) -> String {
    let report = ftsim_analysis::analyze_records(records);
    JsonValue::obj([
        ("state".to_string(), JsonValue::Str(state.to_string())),
        ("cells".to_string(), JsonValue::U64(records.len() as u64)),
        (
            "report".to_string(),
            JsonValue::parse(&report.to_json()).unwrap_or(JsonValue::Null),
        ),
    ])
    .render()
}

/// Streams incremental analysis snapshots as NDJSON — the HTTP twin of
/// `ftsimd report --watch`, closing the "re-run analysis while a sweep
/// streams" loop. Records come from the tolerant merged-cells reader, so
/// a snapshot is re-emitted whenever new cells land; at the terminal
/// state one final snapshot is always written (from the canonical
/// `results.csv` when the job finished), so the last line a client reads
/// analyzes exactly the records `ftsimd report <job>` would.
fn stream_report(
    store: &JobStore,
    stream: &mut TcpStream,
    job: &Job,
    interval: Duration,
    stopped: &AtomicBool,
) {
    let head = "HTTP/1.1 200 OK\r\nContent-Type: application/x-ndjson\r\nConnection: close\r\n\r\n";
    if stream.write_all(head.as_bytes()).is_err() {
        return;
    }
    let mut last_cells: Option<usize> = None;
    let mut backoff = watch_backoff();
    loop {
        // Status first, records second, for the same reason as
        // `stream_results`: records seen before the terminal status was
        // set are never newer than the final read.
        let state = match store.load_status(job) {
            Ok(s) => s.state,
            Err(_) => match backoff.next_delay() {
                Some(delay) => {
                    std::thread::sleep(delay);
                    continue;
                }
                None => return,
            },
        };
        let terminal = matches!(state, JobState::Done | JobState::Failed);
        let records = if state == JobState::Done {
            std::fs::read_to_string(job.results_path())
                .ok()
                .and_then(|text| from_csv(&text).ok())
        } else {
            store
                .load_spec(job)
                .and_then(|spec| merged_records(job, &spec))
                .ok()
                .map(|(records, _total)| records)
        };
        let Some(records) = records else {
            if terminal {
                return; // failed job with unreadable records: nothing to analyze
            }
            match backoff.next_delay() {
                Some(delay) => {
                    std::thread::sleep(delay);
                    continue;
                }
                None => return,
            }
        };
        backoff = watch_backoff();
        if terminal || last_cells != Some(records.len()) {
            last_cells = Some(records.len());
            let line = report_snapshot(state, &records);
            if stream.write_all(format!("{line}\n").as_bytes()).is_err() {
                return;
            }
            if stream.flush().is_err() {
                return;
            }
        }
        if terminal {
            return;
        }
        if stopped.load(Ordering::SeqCst) {
            return; // daemon shutting down: end the stream
        }
        std::thread::sleep(interval);
    }
}

/// `GET /metrics`: the Prometheus text exposition of every registered
/// metric, preceded by a scrape-time refresh of the store-derived gauges
/// (queue depth in cells, jobs by state, quarantine size) so one
/// process's scrape reflects fabric-wide state, not just its own
/// counters.
fn metrics_endpoint(store: &JobStore, stream: &mut TcpStream) {
    if let Ok(jobs) = store.jobs() {
        let mut queued_cells = 0u64;
        let mut by_state = [
            (JobState::Queued, 0u64),
            (JobState::Running, 0),
            (JobState::Done, 0),
            (JobState::Failed, 0),
        ];
        for job in &jobs {
            if let Ok(s) = store.load_status(job) {
                if let Some(slot) = by_state.iter_mut().find(|(st, _)| *st == s.state) {
                    slot.1 += 1;
                }
                if !matches!(s.state, JobState::Done | JobState::Failed) {
                    queued_cells += s.cells_total.saturating_sub(s.cells_done) as u64;
                }
            }
        }
        metrics::gauge("ftsimd_queued_cells", &[]).set(queued_cells);
        for (state, n) in &by_state {
            metrics::gauge("ftsimd_jobs", &[("state", &state.to_string())]).set(*n);
        }
    }
    metrics::gauge("ftsimd_quarantined_files", &[]).set(store.quarantined_count() as u64);
    respond(stream, 200, "text/plain; version=0.0.4", &metrics::render());
}

/// Reads and timestamp-merges every NDJSON trace journal (including the
/// rotated `.ndjson.1` generation) under `dir`. Damaged lines — the torn
/// tail of a crashed process's journal — are skipped, not errors.
pub(crate) fn read_trace_journals(dir: &std::path::Path) -> Vec<trace::TraceEvent> {
    let mut events = Vec::new();
    let Ok(entries) = std::fs::read_dir(dir) else {
        return events;
    };
    for entry in entries.flatten() {
        let path = entry.path();
        let name = path.file_name().and_then(|n| n.to_str()).unwrap_or("");
        if !name.contains(".ndjson") {
            continue;
        }
        let Ok(text) = std::fs::read_to_string(&path) else {
            continue;
        };
        events.extend(text.lines().filter_map(trace::TraceEvent::parse_line));
    }
    events.sort_by_key(|e| e.ts_ms);
    events
}

/// `GET /trace?n=<count>`: the most recent span events across the whole
/// fabric, merged by timestamp from every process's journal under
/// `<state>/trace/` (falling back to this process's in-memory ring when
/// no journal exists yet), one JSON object per line, oldest first.
fn trace_endpoint(store: &JobStore, stream: &mut TcpStream, req: &Request) {
    let n: usize = req.query("n").and_then(|v| v.parse().ok()).unwrap_or(100);
    let mut events = read_trace_journals(&store.trace_dir());
    if events.is_empty() {
        events = trace::recent(n);
    }
    let skip = events.len().saturating_sub(n);
    let body: String = events[skip..]
        .iter()
        .map(|e| format!("{}\n", e.render_line()))
        .collect();
    respond(stream, 200, "application/x-ndjson", &body);
}

/// `GET /healthz`: fabric diagnostics for dashboards and smoke tests —
/// daemon version and uptime, job and live-claim counts (total and per
/// submitter), the fabric-wide queue depth in cells, the age of the
/// oldest live claim (0 when none carry a creation stamp), per-job
/// cell-progress counts, how many stale peer leases this process has
/// observed (and stolen), how many cells the stuck-cell watchdog has
/// killed, how many corrupt files sit in quarantine, and when the
/// scheduler last completed a pass (0 until the first one).
fn healthz(store: &JobStore, stream: &mut TcpStream, started: std::time::Instant) {
    let (jobs, live, by_submitter, queued_cells, oldest_claim_ms, progress) = match store.jobs() {
        Ok(jobs) => {
            let mut live = 0u64;
            let mut by_submitter: Vec<(String, u64)> = Vec::new();
            let mut queued_cells = 0u64;
            let mut oldest_claim_ms = 0u64;
            let mut progress: Vec<(String, JsonValue)> = Vec::new();
            for job in &jobs {
                if let Ok(s) = store.load_status(job) {
                    if !matches!(s.state, JobState::Done | JobState::Failed) {
                        queued_cells += s.cells_total.saturating_sub(s.cells_done) as u64;
                    }
                    progress.push((
                        job.id.clone(),
                        JsonValue::obj([
                            ("state".to_string(), JsonValue::Str(s.state.to_string())),
                            (
                                "cells_done".to_string(),
                                JsonValue::U64(s.cells_done as u64),
                            ),
                            (
                                "cells_total".to_string(),
                                JsonValue::U64(s.cells_total as u64),
                            ),
                        ]),
                    ));
                }
                let claims = crate::fabric::live_claims(job) as u64;
                if claims == 0 {
                    continue;
                }
                live += claims;
                oldest_claim_ms = oldest_claim_ms.max(crate::fabric::oldest_live_claim_age_ms(job));
                let submitter = store
                    .load_spec(job)
                    .map(|s| s.submitter)
                    .unwrap_or_default();
                match by_submitter.iter_mut().find(|(who, _)| *who == submitter) {
                    Some((_, n)) => *n += claims,
                    None => by_submitter.push((submitter, claims)),
                }
            }
            by_submitter.sort();
            (
                jobs.len() as u64,
                live,
                by_submitter,
                queued_cells,
                oldest_claim_ms,
                progress,
            )
        }
        Err(e) => {
            respond_json(stream, 500, &error_json(e.to_string()));
            return;
        }
    };
    respond_json(
        stream,
        200,
        &JsonValue::obj([
            ("status".to_string(), JsonValue::Str("ok".to_string())),
            (
                "version".to_string(),
                JsonValue::Str(env!("CARGO_PKG_VERSION").to_string()),
            ),
            (
                "uptime_ms".to_string(),
                JsonValue::U64(started.elapsed().as_millis() as u64),
            ),
            ("jobs".to_string(), JsonValue::U64(jobs)),
            ("live_claims".to_string(), JsonValue::U64(live)),
            ("queued_cells".to_string(), JsonValue::U64(queued_cells)),
            (
                "oldest_live_claim_age_ms".to_string(),
                JsonValue::U64(oldest_claim_ms),
            ),
            ("job_progress".to_string(), JsonValue::Obj(progress)),
            (
                "live_claims_by_submitter".to_string(),
                JsonValue::Obj(
                    by_submitter
                        .into_iter()
                        .map(|(who, n)| (who, JsonValue::U64(n)))
                        .collect(),
                ),
            ),
            (
                "stale_leases_observed".to_string(),
                JsonValue::U64(crate::fabric::stale_leases_observed()),
            ),
            (
                "watchdog_kills".to_string(),
                JsonValue::U64(crate::fabric::watchdog_kills()),
            ),
            (
                "quarantined".to_string(),
                JsonValue::U64(store.quarantined_count() as u64),
            ),
            (
                "last_scheduler_pass_unix_ms".to_string(),
                JsonValue::U64(crate::fabric::last_scheduler_pass_ms()),
            ),
        ]),
    );
}

fn job_stop(store: &JobStore, stream: &mut TcpStream, id: &str) {
    let Some(job) = lookup(store, stream, id) else {
        return;
    };
    match store.request_job_stop(&job) {
        Ok(()) => respond_json(
            stream,
            200,
            &JsonValue::obj([("paused".to_string(), JsonValue::Str(job.id))]),
        ),
        Err(e) => respond_json(stream, 500, &error_json(e.to_string())),
    }
}

// ---------------------------------------------------------------------
// Client — what `ftsimd --remote <addr>` speaks. No filesystem access:
// everything the remote verbs show comes over the socket.

/// The `--remote` client's retry budget: 8 attempts, exponential from
/// 25 ms, capped at 2 s. Every daemon verb is idempotent (`POST /jobs`
/// is submit-*or-attach*, the stops are level-triggered sentinels), so
/// re-sending after a transport failure is always safe.
fn client_backoff() -> Backoff {
    Backoff::new(Duration::from_millis(25), Duration::from_secs(2), 8)
}

/// The `Authorization: Bearer ...\r\n` header line the client attaches
/// when `FTSIMD_TOKEN` is set; empty otherwise. Token-gated daemons
/// refuse mutating verbs without it (401).
fn client_auth_header() -> String {
    match std::env::var("FTSIMD_TOKEN") {
        Ok(token) if !token.trim().is_empty() => {
            format!("Authorization: Bearer {}\r\n", token.trim())
        }
        _ => String::new(),
    }
}

/// Performs one request with retry/backoff and returns `(status, body)`.
/// Transport failures — refused connections, dropped sockets, a torn
/// response — are retried under [`client_backoff`]; an HTTP error
/// status is a *response* and is returned, not retried.
pub(crate) fn http_request(
    addr: &str,
    method: &str,
    path: &str,
    body: Option<&str>,
) -> Result<(u16, String), String> {
    let mut backoff = client_backoff();
    loop {
        match http_request_once(addr, method, path, body) {
            Ok(reply) => return Ok(reply),
            Err(e) => match backoff.next_delay() {
                Some(delay) => {
                    eprintln!("ftsimd: {e}; retrying");
                    std::thread::sleep(delay);
                }
                None => return Err(format!("{e} (after {} attempts)", backoff.attempts())),
            },
        }
    }
}

/// One request attempt. The body is read to EOF (every server response
/// carries `Connection: close`).
fn http_request_once(
    addr: &str,
    method: &str,
    path: &str,
    body: Option<&str>,
) -> Result<(u16, String), String> {
    ftsim_chaos::io()
        .gate(fp::HTTP_CLIENT_SEND)
        .map_err(|e| format!("sending request: {e}"))?;
    let mut stream = TcpStream::connect(addr).map_err(|e| format!("connecting to {addr}: {e}"))?;
    stream.set_read_timeout(Some(Duration::from_secs(30))).ok();
    let body = body.unwrap_or("");
    let request = format!(
        "{method} {path} HTTP/1.1\r\nHost: {addr}\r\nContent-Length: {}\r\n{}Connection: close\r\n\r\n{body}",
        body.len(),
        client_auth_header()
    );
    stream
        .write_all(request.as_bytes())
        .map_err(|e| format!("sending request: {e}"))?;
    ftsim_chaos::io()
        .gate(fp::HTTP_CLIENT_RECV)
        .map_err(|e| format!("reading response: {e}"))?;
    let mut response = String::new();
    stream
        .read_to_string(&mut response)
        .map_err(|e| format!("reading response: {e}"))?;
    split_response(&response)
}

fn split_response(response: &str) -> Result<(u16, String), String> {
    let (head, body) = response
        .split_once("\r\n\r\n")
        .ok_or("malformed response (no header/body break)")?;
    let code = head
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .ok_or("malformed status line")?;
    Ok((code, body.to_string()))
}

/// Performs a streaming GET, invoking `on_line` for each body line as
/// it arrives (used by `results --watch` over `--remote`). Stops early
/// when `on_line` returns `false` (e.g. a broken downstream pipe).
///
/// Transport failures *before the first body line* are retried under
/// [`client_backoff`] — once rows have been forwarded, a retry would
/// duplicate them, so a mid-stream failure is reported instead.
pub(crate) fn http_stream(
    addr: &str,
    path: &str,
    on_line: &mut dyn FnMut(&str) -> bool,
) -> Result<u16, String> {
    let mut backoff = client_backoff();
    loop {
        match http_stream_once(addr, path, on_line) {
            Ok(code) => return Ok(code),
            Err((true, e)) => return Err(e),
            Err((false, e)) => match backoff.next_delay() {
                Some(delay) => {
                    eprintln!("ftsimd: {e}; retrying");
                    std::thread::sleep(delay);
                }
                None => return Err(format!("{e} (after {} attempts)", backoff.attempts())),
            },
        }
    }
}

/// One streaming attempt; failures carry whether any body line was
/// already delivered to `on_line` (which forbids a retry).
fn http_stream_once(
    addr: &str,
    path: &str,
    on_line: &mut dyn FnMut(&str) -> bool,
) -> Result<u16, (bool, String)> {
    let fresh = |e: String| (false, e);
    ftsim_chaos::io()
        .gate(fp::HTTP_CLIENT_SEND)
        .map_err(|e| fresh(format!("sending request: {e}")))?;
    let mut stream =
        TcpStream::connect(addr).map_err(|e| fresh(format!("connecting to {addr}: {e}")))?;
    let request = format!(
        "GET {path} HTTP/1.1\r\nHost: {addr}\r\n{}Connection: close\r\n\r\n",
        client_auth_header()
    );
    stream
        .write_all(request.as_bytes())
        .map_err(|e| fresh(format!("sending request: {e}")))?;
    ftsim_chaos::io()
        .gate(fp::HTTP_CLIENT_RECV)
        .map_err(|e| fresh(format!("reading response: {e}")))?;
    let mut reader = BufReader::new(stream);
    // Head: read header lines until the blank one.
    let mut line = String::new();
    reader
        .read_line(&mut line)
        .map_err(|e| fresh(format!("reading status line: {e}")))?;
    let code: u16 = line
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| fresh("malformed status line".to_string()))?;
    loop {
        let mut header = String::new();
        let n = reader
            .read_line(&mut header)
            .map_err(|e| fresh(format!("reading headers: {e}")))?;
        if n == 0 || header == "\r\n" || header == "\n" {
            break;
        }
    }
    // Body: forward line by line until EOF or the sink gives up.
    let mut delivered = false;
    loop {
        let mut body_line = String::new();
        match reader.read_line(&mut body_line) {
            Ok(0) => return Ok(code),
            Ok(_) => {
                if !on_line(body_line.trim_end_matches(['\r', '\n'])) {
                    return Ok(code);
                }
                delivered = true;
            }
            Err(e) => return Err((delivered, format!("reading stream: {e}"))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn token_comparison_matches_only_exact_credentials() {
        assert!(token_matches("s3cret", "s3cret"));
        assert!(!token_matches("s3cret", "s3cre"));
        assert!(!token_matches("s3cret", "s3creT"));
        assert!(!token_matches("s3cret", "s3cret-and-more"));
        assert!(!token_matches("s3cret", ""));
        assert!(token_matches("", ""));
    }

    #[test]
    fn response_splitting() {
        let (code, body) =
            split_response("HTTP/1.1 200 OK\r\nContent-Length: 2\r\n\r\nhi").unwrap();
        assert_eq!(code, 200);
        assert_eq!(body, "hi");
        assert!(split_response("garbage").is_err());
    }

    #[test]
    fn server_round_trip_over_a_real_socket() {
        let dir = std::env::temp_dir().join(format!("ftsimd-http-{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        let store = JobStore::open(&dir).unwrap();
        let server = HttpServer::bind(
            &store,
            "127.0.0.1:0",
            HttpLimits {
                max_body: 4 * 1024,
                head_timeout: Duration::from_millis(300),
            },
            None,
        )
        .unwrap();
        let addr = std::fs::read_to_string(store.http_addr_path()).unwrap();
        let stop = AtomicBool::new(false);
        // A failed assertion below must still stop the accept loop, or
        // the scope join would hang the test forever.
        struct StopOnDrop<'a>(&'a AtomicBool);
        impl Drop for StopOnDrop<'_> {
            fn drop(&mut self) {
                self.0.store(true, Ordering::SeqCst);
            }
        }
        std::thread::scope(|scope| {
            scope.spawn(|| server.run(&|| stop.load(Ordering::SeqCst), Duration::from_millis(10)));
            let _guard = StopOnDrop(&stop);

            // Submit over HTTP...
            let spec = "name = \"http-rt\"\nworkloads = [\"gcc\"]\nmodels = [\"SS-1\"]\nbudgets = [1000]\n";
            let (code, body) = http_request(&addr, "POST", "/jobs", Some(spec)).unwrap();
            assert_eq!(code, 200, "{body}");
            let doc = JsonValue::parse(&body).unwrap();
            let id = doc.get("id").unwrap().as_str().unwrap().to_string();
            assert_eq!(doc.get("created").unwrap().as_bool(), Some(true));

            // ...list and status see it...
            let (code, body) = http_request(&addr, "GET", "/jobs", None).unwrap();
            assert_eq!(code, 200);
            assert!(body.contains(&id));
            let (code, body) =
                http_request(&addr, "GET", &format!("/jobs/{id}/status"), None).unwrap();
            assert_eq!(code, 200);
            let doc = JsonValue::parse(&body).unwrap();
            assert_eq!(doc.get("state").unwrap().as_str(), Some("queued"));

            // ...a bad spec and a bad id are client errors...
            let (code, _) = http_request(&addr, "POST", "/jobs", Some("nope =")).unwrap();
            assert_eq!(code, 400);
            let (code, _) = http_request(&addr, "GET", "/jobs/0099-nope/status", None).unwrap();
            assert_eq!(code, 404);
            let (code, _) = http_request(&addr, "PUT", "/jobs", None).unwrap();
            assert_eq!(code, 405);

            // ...healthz reports fabric diagnostics...
            let (code, body) = http_request(&addr, "GET", "/healthz", None).unwrap();
            assert_eq!(code, 200);
            let doc = JsonValue::parse(&body).unwrap();
            assert_eq!(doc.get("status").unwrap().as_str(), Some("ok"));
            assert_eq!(
                doc.get("version").unwrap().as_str(),
                Some(env!("CARGO_PKG_VERSION"))
            );
            assert!(doc.get("uptime_ms").unwrap().as_u64().is_some());
            assert_eq!(doc.get("jobs").unwrap().as_u64(), Some(1));
            assert_eq!(doc.get("live_claims").unwrap().as_u64(), Some(0));
            assert_eq!(doc.get("quarantined").unwrap().as_u64(), Some(0));
            assert_eq!(doc.get("watchdog_kills").unwrap().as_u64(), Some(0));
            assert!(doc.get("live_claims_by_submitter").is_some());
            assert!(doc.get("stale_leases_observed").is_some());
            assert!(doc.get("last_scheduler_pass_unix_ms").is_some());

            // ...an oversized body is refused with 413 before parsing...
            let big = "x".repeat(8 * 1024);
            let (code, _) = http_request(&addr, "POST", "/jobs", Some(&big)).unwrap();
            assert_eq!(code, 413);

            // ...a malformed request line gets 400, a slow-loris client
            // that never finishes its head gets 408...
            let mut raw = TcpStream::connect(&addr).unwrap();
            raw.write_all(b"NONSENSE\r\n\r\n").unwrap();
            let mut reply = String::new();
            raw.read_to_string(&mut reply).unwrap();
            assert!(reply.starts_with("HTTP/1.1 400"), "{reply}");
            let mut slow = TcpStream::connect(&addr).unwrap();
            slow.write_all(b"GET /jobs HT").unwrap(); // ...and stall
            let mut reply = String::new();
            slow.read_to_string(&mut reply).unwrap();
            assert!(reply.starts_with("HTTP/1.1 408"), "{reply}");

            // ...and a per-job stop pauses it.
            let (code, _) = http_request(&addr, "POST", &format!("/jobs/{id}/stop"), None).unwrap();
            assert_eq!(code, 200);
            let job = store.job(&id).unwrap();
            assert!(store.job_stop_requested(&job));
        });
        std::fs::remove_dir_all(&dir).ok();
    }
}
