//! # ftsim-daemon — `ftsimd`, the long-running sweep daemon
//!
//! The paper's results come from large fault-injection sweeps; this
//! crate turns the one-shot [`Experiment`](ftsim::harness::Experiment)
//! grids into a **service**: jobs are submitted as TOML/JSON specs,
//! queued in a persistent state directory, executed by a worker pool
//! that shares each (workload, budget, model) family's fault-free
//! prefix through the checkpoint/fork engine, and streamed to disk as
//! cells complete — so heavy design-space exploration survives
//! shutdowns, crashes and restarts without re-simulating a single
//! finished cell.
//!
//! The pieces:
//!
//! * [`JobSpec`] — the spec format and its mapping onto experiment
//!   grids (workloads × models × fault rates × budgets × seeds, every
//!   workload and machine referenced by name);
//! * [`JobStore`] — the state directory: a persistent queue with
//!   per-job directories, atomically-replaced status documents, an
//!   append-safe incremental results log, and the graceful-shutdown
//!   sentinel;
//! * [`run_job`] / [`serve`] — execution: family-sharded workers,
//!   crash-safe streaming, resume-on-restart, and the daemon loop;
//! * the **fabric** ([`try_claim`], [`ClaimGuard`], [`FabricConfig`]) —
//!   per-family claim files with lease expiry and heartbeat renewal, so
//!   N `serve` processes on one state directory partition work, steal
//!   from crashed peers, and schedule by priority + submitter fair
//!   share; single-process operation is the N=1 special case;
//! * an HTTP API (`serve --listen`) and its `--remote` client — every
//!   daemon verb over a hand-rolled `std::net` server, no filesystem
//!   access required of submitters; mutating verbs can be gated behind
//!   a bearer token (`serve --token-file`);
//! * **tenancy hardening** — per-submitter admission quotas
//!   ([`QuotaPolicy`], rejected work gets a structured
//!   429-with-retry-after), job TTLs with a garbage-collection pass
//!   ([`gc_pass`], also `ftsimd gc`), a stuck-cell watchdog with a
//!   bounded strike count, and an NFS-tolerant relaxed lease mode
//!   ([`LeaseMode`]) that verifies claims by owner echo instead of
//!   trusting `O_EXCL`;
//! * [`failpoints`] — the failure model: every filesystem and socket
//!   operation above routes through the [`ftsim_chaos::IoEnv`] layer
//!   (`FTSIM_CHAOS=<seed>:<spec>`) under a stable site name, so chaos
//!   plans, the crash-matrix suite and the docs all speak about the
//!   same catalog of failure sites;
//! * **observability** — [`ftsim_obs`] metrics and trace spans threaded
//!   through the fabric: Prometheus text on `GET /metrics` (fabric
//!   vitals + per-worker sim throughput), a per-process span journal
//!   under `<state>/trace/` merged by `GET /trace` / `ftsimd trace`,
//!   live analysis streaming (`GET /jobs/<id>/report?watch`, `ftsimd
//!   report --watch`), and `FTSIM_PROFILE=1` per-stage wall-time
//!   profiles rendered by `ftsimd profile`. None of it is simulation
//!   state: records stay byte-identical with the layer on, off, or
//!   failing;
//! * [`cli`] — the `ftsimd` command-line front end
//!   (`submit`/`serve`/`jobs`/`status`/`results`/`report`/`trace`/
//!   `profile`/`gc`/`stop`).
//!
//! The load-bearing invariant, inherited from the harness and checked
//! by this crate's integration test: **a job's final results are
//! byte-identical to a one-shot `Experiment::run` of the same axes**,
//! no matter how many times the daemon was killed and restarted along
//! the way. The daemon changes what a sweep *costs* and *survives* —
//! never what it measures.
//!
//! # Example
//!
//! Submit and drain a small job in-process (what `ftsimd submit` +
//! `ftsimd serve --drain` do across processes):
//!
//! ```
//! use ftsim_daemon::{JobSpec, JobStore, ServeOptions};
//!
//! let mut spec = JobSpec::new("doc-demo");
//! spec.workloads = vec!["gcc".to_string()];
//! spec.models = vec!["SS-1".to_string(), "SS-2".to_string()];
//! spec.budgets = vec![1_500];
//!
//! let dir = std::env::temp_dir().join("ftsimd-doc-demo");
//! # std::fs::remove_dir_all(&dir).ok();
//! let store = JobStore::open(&dir).unwrap();
//! let (job_id, created) = store.submit(&spec).unwrap();
//! assert!(created);
//! ftsim_daemon::serve(&store, &ServeOptions { drain: true, ..Default::default() }).unwrap();
//!
//! let job = store.job(&job_id).unwrap();
//! let text = std::fs::read_to_string(job.results_path()).unwrap();
//! let records = ftsim::harness::from_csv(&text).unwrap();
//! assert_eq!(records.len(), 2);
//! assert!(records.iter().all(|r| r.ok()));
//! # std::fs::remove_dir_all(&dir).ok();
//! ```

#![warn(missing_docs)]

pub mod cli;
mod fabric;
pub mod failpoints;
mod gc;
mod http;
mod runner;
mod spec;
mod store;

pub use fabric::{try_claim, ClaimGuard, FabricConfig, LeaseMode};
pub use gc::{gc_pass, GcOptions, GcReport};
pub use runner::{install_signal_handlers, run_job, serve, signalled, JobOutcome, ServeOptions};
pub use spec::{model_by_name, JobSpec, SpecError};
pub use store::{DaemonError, Job, JobState, JobStatus, JobStore, QuotaPolicy};
