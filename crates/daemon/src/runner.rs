//! Job execution: the fabric worker loop, incremental result streaming,
//! and the serve loop.
//!
//! Since the fabric landed, *all* execution — one process or many —
//! goes through the claim/lease scheduler in [`crate::fabric`]: a
//! worker thread repeatedly asks [`next_assignment`] for a family to
//! claim, runs it through a narrowed sub-experiment
//! ([`run_family`]), and finalizes the job when its last cell lands
//! ([`try_finalize`]). A single `ftsimd serve` process is simply the
//! N=1 special case — its workers contend for claims nobody else
//! wants — which is what keeps the determinism goldens unchanged: the
//! records a family produces do not depend on who claimed it.
//!
//! Each completed cell's record is appended to the job's `cells.csv`
//! (one synced write per row) before the worker moves on, so killing a
//! daemon — gracefully or with `SIGKILL` — loses at most the cells in
//! flight, and any surviving process steals the dead one's families
//! once their leases expire.
//!
//! When every cell has a record, the job's records are assembled in
//! grid order and written as `results.csv`/`results.json` —
//! byte-identical to what `Experiment::run` on the same axes would
//! serialize, which the daemon integration tests assert.

use crate::fabric::{
    bump_status, next_assignment, requeue_unclaimed, run_family, try_finalize, FabricConfig,
    FamilyOutcome, LeaseMode, NextWork,
};
use crate::failpoints as fp;
use crate::gc::{gc_pass, GcOptions};
use crate::store::{DaemonError, Job, JobState, JobStore, QuotaPolicy};
use ftsim_obs::{metrics, trace};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Mutex;
use std::time::Duration;

/// Journal size at which the per-process trace file is rotated aside
/// (renamed to `.ndjson.1`, one generation kept) so an unattended fabric
/// cannot grow an unbounded journal.
const TRACE_ROTATE_BYTES: u64 = 1024 * 1024;

/// Installs the process-wide observability hooks for a fabric process:
/// stamps every trace event with this worker's owner id, journals events
/// as NDJSON under `<state>/trace/<owner>.ndjson` (best-effort — any
/// error, including one injected at the `obs.trace.append` failpoint, is
/// swallowed), and forwards chaos injections into a counter and a
/// `chaos` trace event. Idempotent per process in effect: a second call
/// just re-points the sink.
///
/// Everything registered here observes the run without touching it: no
/// RNG is consumed, no simulation or fabric decision reads any of it.
pub(crate) fn install_observability(store: &JobStore, owner: &str) {
    trace::set_owner(owner);
    let dir = store.trace_dir();
    // Owner ids are `host:pid:seq`; ':' is path-hostile on some mounts.
    let path = dir.join(format!("{}.ndjson", owner.replace(':', "-")));
    trace::set_sink(Box::new(move |event| {
        if ftsim_chaos::io().gate(fp::OBS_TRACE_APPEND).is_err() {
            return;
        }
        let _ = std::fs::create_dir_all(&dir);
        if let Ok(meta) = std::fs::metadata(&path) {
            if meta.len() >= TRACE_ROTATE_BYTES {
                let _ = std::fs::rename(&path, path.with_extension("ndjson.1"));
            }
        }
        if let Ok(mut f) = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(&path)
        {
            use std::io::Write as _;
            let _ = writeln!(f, "{}", event.render_line());
        }
    }));
    // Chaos injections become visible fabric vitals. The re-entrancy
    // guard matters: emitting the trace event runs the sink, whose own
    // chaos gate could inject (a plan targeting `obs.*`) and re-enter
    // this observer forever.
    ftsim_chaos::set_injection_observer(|_code, site| {
        use std::cell::Cell;
        thread_local! {
            static IN_OBSERVER: Cell<bool> = const { Cell::new(false) };
        }
        if IN_OBSERVER.with(|g| g.replace(true)) {
            return;
        }
        metrics::counter("ftsimd_chaos_injections_total", &[("site", site)]).inc();
        trace::emit(trace::TraceEvent::new("chaos", "", "", site));
        IN_OBSERVER.with(|g| g.set(false));
    });
}

/// How a [`run_job`] call ended.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum JobOutcome {
    /// Every cell has a record; final results are on disk.
    Completed,
    /// A shutdown request interrupted the sweep; the job is re-queued
    /// with its streamed records intact.
    Interrupted,
    /// This process ran out of claimable work, but the job is not done:
    /// its remaining families are held by other fabric processes (or
    /// the job was paused). Whoever streams the last cell finalizes.
    Yielded,
}

/// Process-wide graceful-shutdown flag, set by SIGINT/SIGTERM (via
/// [`install_signal_handlers`]) and polled between cells.
static SIGNALLED: AtomicBool = AtomicBool::new(false);

/// Whether a signal has requested shutdown.
pub fn signalled() -> bool {
    SIGNALLED.load(Ordering::SeqCst)
}

/// Installs SIGINT/SIGTERM handlers that flip the [`signalled`] flag, so
/// Ctrl-C gives the same graceful stop as `ftsimd stop`. No-op off Unix.
pub fn install_signal_handlers() {
    #[cfg(unix)]
    {
        extern "C" fn on_signal(_: i32) {
            SIGNALLED.store(true, Ordering::SeqCst);
        }
        extern "C" {
            fn signal(signum: i32, handler: usize) -> usize;
        }
        const SIGINT: i32 = 2;
        const SIGTERM: i32 = 15;
        let handler = on_signal as extern "C" fn(i32) as *const () as usize;
        unsafe {
            signal(SIGINT, handler);
            signal(SIGTERM, handler);
        }
    }
}

/// Worker-pool width: the spec's `threads` cap, or every available core.
fn worker_count(threads: usize) -> usize {
    if threads > 0 {
        threads
    } else {
        std::thread::available_parallelism().map_or(1, |n| n.get())
    }
}

/// Runs one job until this process can make no more progress on it,
/// streaming records. This is the fabric restricted to a single job id:
/// workers claim its families one by one and run them; if another
/// process holds some families, the call returns
/// [`JobOutcome::Yielded`] instead of waiting.
///
/// Progress is visible throughout: `status.json` moves to `running`
/// with a live `cells_done` count, and `cells.csv` grows one synced row
/// per completed cell. `stop` is polled between cells (alongside the
/// store's stop sentinel and the process [`signalled`] flag); on
/// interruption the job goes back to `queued` and the next `serve`
/// resumes it.
///
/// # Errors
///
/// [`DaemonError`] for unrunnable jobs (bad spec/grid — the job is
/// marked `failed`) or state-directory I/O trouble.
pub fn run_job(store: &JobStore, job: &Job, stop: &AtomicBool) -> Result<JobOutcome, DaemonError> {
    run_job_with(store, job, stop, &FabricConfig::default())
}

/// [`run_job`] with an explicit fabric identity/lease policy.
///
/// # Errors
///
/// As [`run_job`].
pub fn run_job_with(
    store: &JobStore,
    job: &Job,
    stop: &AtomicBool,
    cfg: &FabricConfig,
) -> Result<JobOutcome, DaemonError> {
    // Surface unrunnable jobs now (marked failed by the scheduler scan),
    // and learn the worker width from the spec.
    let threads = match store.load_spec(job) {
        Ok(spec) => spec.threads,
        Err(e) => {
            crate::fabric::mark_failed(store, job, &e);
            return Err(e);
        }
    };
    let workers = worker_count(threads);
    let should_stop = || stop.load(Ordering::SeqCst) || signalled() || store.stop_requested();
    let failure: Mutex<Option<DaemonError>> = Mutex::new(None);
    let fail = |e: DaemonError| {
        let mut slot = failure.lock().expect("failure lock");
        if slot.is_none() {
            *slot = Some(e);
        }
        stop.store(true, Ordering::SeqCst);
    };

    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                if should_stop() {
                    break;
                }
                match next_assignment(store, cfg, Some(&job.id)) {
                    Ok(NextWork::Work(mut a)) => {
                        bump_status(store, &a.job, JobState::Running, a.job_done, a.job_total);
                        match run_family(store, &mut a, cfg, &should_stop) {
                            Ok(FamilyOutcome::Finished) => {
                                if let Err(e) = try_finalize(store, &a.job, &a.spec) {
                                    fail(e);
                                }
                            }
                            Ok(
                                FamilyOutcome::Interrupted
                                | FamilyOutcome::Lost
                                | FamilyOutcome::Paused
                                | FamilyOutcome::Stuck,
                            ) => {}
                            Err(e) => fail(e),
                        }
                    }
                    Ok(NextWork::Idle { .. }) => break,
                    Err(e) => {
                        fail(e);
                        break;
                    }
                }
            });
        }
    });

    let status = store.load_status(job)?;
    if let Some(e) = failure.into_inner().expect("failure lock") {
        // Streaming broke: the job stays queued (its log is still
        // consistent up to the failure) and the error propagates —
        // unless the scheduler already parked it as failed.
        if status.state == JobState::Running {
            bump_status(
                store,
                job,
                JobState::Queued,
                status.cells_done,
                status.cells_total,
            );
        }
        return Err(e);
    }
    match status.state {
        JobState::Done => Ok(JobOutcome::Completed),
        _ if should_stop() => {
            bump_status(
                store,
                job,
                JobState::Queued,
                status.cells_done,
                status.cells_total,
            );
            Ok(JobOutcome::Interrupted)
        }
        _ => {
            // No claimable work left here, but the job is not done:
            // foreign claims (or a pause) hold the rest.
            if status.state == JobState::Running && crate::fabric::live_claims(job) == 0 {
                bump_status(
                    store,
                    job,
                    JobState::Queued,
                    status.cells_done,
                    status.cells_total,
                );
            }
            Ok(JobOutcome::Yielded)
        }
    }
}

/// Serve-loop options.
#[derive(Debug, Clone)]
pub struct ServeOptions {
    /// Exit once every job is terminal instead of polling for new jobs —
    /// batch mode, used by tests and the examples. Work held by live
    /// foreign claims is *waited out* (their leases expire if the
    /// holder died), so a draining server never abandons an incomplete
    /// job.
    pub drain: bool,
    /// Queue poll interval when idle.
    pub poll: Duration,
    /// Claim-lease duration: how long a crashed peer's families stay
    /// unstealable.
    pub lease: Duration,
    /// Worker-thread count (`0` = one per available core).
    pub workers: usize,
    /// HTTP bind address (e.g. `127.0.0.1:0`); `None` disables the API.
    /// The bound address is written to `<state>/http.addr`.
    pub listen: Option<String>,
    /// Largest HTTP request body accepted (`--max-body`, bytes); larger
    /// submissions are refused with `413`.
    pub max_body: usize,
    /// Socket read timeout while parsing an HTTP request
    /// (`--head-timeout-ms`); a slow-loris client gets `408`.
    pub head_timeout: Duration,
    /// Claim-acquisition discipline (`--lease-mode`):
    /// [`LeaseMode::Strict`] trusts `O_EXCL`; [`LeaseMode::Relaxed`]
    /// verifies every claim by owner echo, for NFS-grade filesystems.
    pub lease_mode: LeaseMode,
    /// Bearer token gating mutating HTTP verbs (`--token-file` /
    /// `FTSIMD_TOKEN`); `None` leaves the API open.
    pub token: Option<String>,
    /// How often the serve loop runs a TTL garbage-collection pass
    /// (`--gc-interval-ms`); zero disables background GC (an explicit
    /// `ftsimd gc` still works).
    pub gc_interval: Duration,
    /// Admission-control policy to install at startup
    /// (`--max-live-jobs`/`--max-queued-cells`/`--max-state-bytes`);
    /// `None` leaves `<state>/quota.json` as it stands.
    pub quota: Option<QuotaPolicy>,
}

impl Default for ServeOptions {
    fn default() -> Self {
        let limits = crate::http::HttpLimits::default();
        Self {
            drain: false,
            poll: Duration::from_millis(500),
            lease: Duration::from_secs(30),
            workers: 0,
            listen: None,
            max_body: limits.max_body,
            head_timeout: limits.head_timeout,
            lease_mode: LeaseMode::Strict,
            token: None,
            gc_interval: Duration::from_secs(3600),
            quota: None,
        }
    }
}

/// The daemon's main loop: a pool of fabric workers, each repeatedly
/// claiming the highest-priority family across **all** jobs and
/// running it. Work stealing falls out of the
/// claim protocol: an idle worker — this process's or any peer's —
/// claims whatever unclaimed (or expired-lease) family the scheduler
/// ranks first, so N cooperating processes drain one store together.
///
/// A job failing ([`JobState::Failed`], e.g. its spec no longer
/// resolves) does not stop the daemon; the error is reported on stderr
/// and the queue moves on. On graceful shutdown (signal, `ftsimd stop`,
/// or a drained queue) `running` jobs nobody is working are re-queued.
///
/// With [`ServeOptions::listen`] set, an HTTP thread serves the daemon
/// API (`POST /jobs`, `GET /jobs`, status/results/report/stop) on the
/// bound address until the serve loop exits.
///
/// # Errors
///
/// [`DaemonError`] only for state-directory-level trouble (the queue
/// itself being unreadable/unwritable) or a bind failure.
pub fn serve(store: &JobStore, opts: &ServeOptions) -> Result<(), DaemonError> {
    store.clear_stop()?;
    let stop = AtomicBool::new(false);
    let mut cfg = FabricConfig::new(opts.lease);
    cfg.mode = opts.lease_mode;
    install_observability(store, &cfg.owner);
    if let Some(quota) = &opts.quota {
        store.set_quota_policy(quota)?;
    }
    let should_stop = || stop.load(Ordering::SeqCst) || signalled() || store.stop_requested();
    let failure: Mutex<Option<DaemonError>> = Mutex::new(None);
    // Set when a drain-mode worker finds the queue empty; it also flips
    // `stop` so the HTTP and GC threads join instead of polling forever.
    let drained = AtomicBool::new(false);

    let http = match &opts.listen {
        Some(addr) => {
            let limits = crate::http::HttpLimits {
                max_body: opts.max_body,
                head_timeout: opts.head_timeout,
            };
            Some(crate::http::HttpServer::bind(
                store,
                addr,
                limits,
                opts.token.clone(),
            )?)
        }
        None => None,
    };

    std::thread::scope(|scope| {
        if let Some(server) = &http {
            scope.spawn(|| server.run(&should_stop, opts.poll));
        }
        if !opts.gc_interval.is_zero() {
            // Background TTL GC: nap in poll-sized slices so shutdown
            // is prompt, run a pass each time the interval elapses.
            scope.spawn(|| {
                let nap = opts
                    .poll
                    .min(Duration::from_millis(200))
                    .max(Duration::from_millis(1));
                let mut slept = Duration::ZERO;
                while !should_stop() {
                    std::thread::sleep(nap);
                    slept += nap;
                    if slept < opts.gc_interval {
                        continue;
                    }
                    slept = Duration::ZERO;
                    match gc_pass(store, &GcOptions::default()) {
                        Ok(report) if !report.is_empty() => {
                            println!("ftsimd: gc: {report}");
                        }
                        Ok(_) => {}
                        Err(e) => eprintln!("ftsimd: gc pass failed: {e}"),
                    }
                }
            });
        }
        for _ in 0..worker_count(opts.workers) {
            scope.spawn(|| loop {
                if should_stop() {
                    break;
                }
                match next_assignment(store, &cfg, None) {
                    Ok(NextWork::Work(mut a)) => {
                        bump_status(store, &a.job, JobState::Running, a.job_done, a.job_total);
                        match run_family(store, &mut a, &cfg, &should_stop) {
                            Ok(FamilyOutcome::Finished) => {
                                match try_finalize(store, &a.job, &a.spec) {
                                    Ok(true) => println!("ftsimd: job {} done", a.job.id),
                                    Ok(false) => {}
                                    Err(e) => {
                                        eprintln!("ftsimd: finalizing {}: {e}", a.job.id);
                                    }
                                }
                            }
                            Ok(FamilyOutcome::Interrupted) => {
                                println!("ftsimd: job {} interrupted, re-queued", a.job.id);
                            }
                            Ok(FamilyOutcome::Lost) => {
                                eprintln!(
                                    "ftsimd: lost claim on {} ({}); peer took over",
                                    a.job.id, a.family
                                );
                            }
                            Ok(FamilyOutcome::Paused) => {
                                eprintln!(
                                    "ftsimd: job {} paused (disk full); resubmit its spec \
                                     to resume once space is freed",
                                    a.job.id
                                );
                            }
                            Ok(FamilyOutcome::Stuck) => {
                                // Already reported and strike-counted by
                                // the watchdog; the claim releases on drop
                                // and the cell re-queues.
                            }
                            Err(e) => {
                                // Per-job trouble (bad sub-grid, broken
                                // stream): report and move on; the job is
                                // either parked failed or stays queued.
                                eprintln!("ftsimd: job {} failed: {e}", a.job.id);
                                std::thread::sleep(opts.poll);
                            }
                        }
                    }
                    Ok(NextWork::Idle { incomplete }) => {
                        if incomplete == 0 && opts.drain {
                            drained.store(true, Ordering::SeqCst);
                            stop.store(true, Ordering::SeqCst);
                            break;
                        }
                        // Idle with incomplete jobs in drain mode means
                        // live foreign claims: wait for progress or for
                        // their leases to expire, then steal.
                        std::thread::sleep(opts.poll);
                    }
                    Err(e) => {
                        // The store itself is unreadable: fatal.
                        let mut slot = failure.lock().expect("failure lock");
                        if slot.is_none() {
                            *slot = Some(e);
                        }
                        stop.store(true, Ordering::SeqCst);
                        break;
                    }
                }
            });
        }
    });
    drop(http);

    if let Some(e) = failure.into_inner().expect("failure lock") {
        return Err(e);
    }
    if should_stop() && !drained.load(Ordering::SeqCst) {
        println!("ftsimd: stop requested, exiting");
    } else {
        println!("ftsimd: queue drained, exiting");
    }
    requeue_unclaimed(store)?;
    store.clear_stop()?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::JobSpec;
    use ftsim::harness::{to_csv, to_json};

    fn temp_store(tag: &str) -> JobStore {
        let dir = std::env::temp_dir().join(format!("ftsimd-runner-{tag}-{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        JobStore::open(dir).unwrap()
    }

    fn spec() -> JobSpec {
        let mut spec = JobSpec::new("unit");
        spec.workloads = vec!["gcc".to_string(), "equake".to_string()];
        spec.models = vec!["SS-1".to_string(), "SS-2".to_string()];
        spec.fault_rates_pm = vec![0.0, 4_000.0];
        spec.budgets = vec![1_500];
        spec.seeds = vec![7];
        spec
    }

    #[test]
    fn job_results_match_one_shot_grid() {
        let store = temp_store("match");
        let (id, _) = store.submit(&spec()).unwrap();
        let job = store.job(&id).unwrap();
        let outcome = run_job(&store, &job, &AtomicBool::new(false)).unwrap();
        assert_eq!(outcome, JobOutcome::Completed);
        assert_eq!(store.load_status(&job).unwrap().state, JobState::Done);

        let direct = spec().to_experiment().unwrap().run().unwrap();
        let from_daemon = std::fs::read_to_string(job.results_path()).unwrap();
        assert_eq!(from_daemon, to_csv(&direct));
        let json = std::fs::read_to_string(job.results_json_path()).unwrap();
        assert_eq!(json, to_json(&direct));
        assert!(
            !job.claims_dir().exists(),
            "finalization cleans the claim table"
        );

        // Re-running a done job's store is a no-op for serve (drain).
        serve(
            &store,
            &ServeOptions {
                drain: true,
                poll: Duration::from_millis(1),
                ..Default::default()
            },
        )
        .unwrap();
        assert_eq!(
            std::fs::read_to_string(job.results_path()).unwrap(),
            to_csv(&direct)
        );
        std::fs::remove_dir_all(store.root()).ok();
    }

    #[test]
    fn immediate_stop_requeues_with_no_progress_lost() {
        let store = temp_store("stop");
        let (id, _) = store.submit(&spec()).unwrap();
        let job = store.job(&id).unwrap();
        // A pre-set stop flag interrupts before any cell runs.
        let outcome = run_job(&store, &job, &AtomicBool::new(true)).unwrap();
        assert_eq!(outcome, JobOutcome::Interrupted);
        let status = store.load_status(&job).unwrap();
        assert_eq!(status.state, JobState::Queued);
        assert_eq!(status.cells_done, 0);

        // A later run completes and matches the one-shot grid.
        let outcome = run_job(&store, &job, &AtomicBool::new(false)).unwrap();
        assert_eq!(outcome, JobOutcome::Completed);
        let direct = spec().to_experiment().unwrap().run().unwrap();
        assert_eq!(
            std::fs::read_to_string(job.results_path()).unwrap(),
            to_csv(&direct)
        );
        std::fs::remove_dir_all(store.root()).ok();
    }

    #[test]
    fn serve_drains_the_queue_in_submission_order() {
        let store = temp_store("drain");
        let (a, _) = store.submit(&spec()).unwrap();
        let mut other = spec();
        other.name = "unit-b".to_string();
        other.workloads = vec!["gcc".to_string()];
        other.fault_rates_pm = vec![0.0];
        let (b, _) = store.submit(&other).unwrap();
        serve(
            &store,
            &ServeOptions {
                drain: true,
                poll: Duration::from_millis(1),
                ..Default::default()
            },
        )
        .unwrap();
        for id in [&a, &b] {
            let job = store.job(id).unwrap();
            assert_eq!(store.load_status(&job).unwrap().state, JobState::Done);
            assert!(job.results_path().exists());
        }
        std::fs::remove_dir_all(store.root()).ok();
    }

    #[test]
    fn a_foreign_claim_makes_run_job_yield() {
        let store = temp_store("yield");
        let (id, _) = store.submit(&spec()).unwrap();
        let job = store.job(&id).unwrap();
        // A peer (different owner) claims one of the four families.
        let peer = FabricConfig::new(Duration::from_secs(30));
        let family = ftsim::harness::FamilyId {
            workload: "gcc".to_string(),
            budget: 1_500,
            model: "SS-1".to_string(),
        };
        let held = crate::fabric::try_claim(&job, &family, &peer)
            .unwrap()
            .expect("fresh claim");

        let outcome = run_job(&store, &job, &AtomicBool::new(false)).unwrap();
        assert_eq!(outcome, JobOutcome::Yielded, "peer holds gcc/SS-1");
        drop(held);
        // With the claim released, the job completes and matches the
        // one-shot grid.
        let outcome = run_job(&store, &job, &AtomicBool::new(false)).unwrap();
        assert_eq!(outcome, JobOutcome::Completed);
        let direct = spec().to_experiment().unwrap().run().unwrap();
        assert_eq!(
            std::fs::read_to_string(job.results_path()).unwrap(),
            to_csv(&direct)
        );
        std::fs::remove_dir_all(store.root()).ok();
    }
}
