//! Job execution: the family-sharded worker pool, incremental result
//! streaming, and the serve loop.
//!
//! One job runs as follows. The spec's [`Experiment`] is rebuilt, primed
//! with every record already in the job's `cells.csv` (so a restarted
//! daemon re-simulates nothing), and materialized into a
//! [`SweepPlan`](ftsim::harness::SweepPlan). The plan's runnable cells
//! are grouped into **shards** — one per (workload, budget, model)
//! family — and a worker pool pulls whole shards: the first cell of a
//! shard warms the family's checkpointed fault-free baseline, and every
//! faulty sibling in the shard then forks from it, exactly as the
//! one-shot [`Experiment::run`] would. Each completed cell's record is
//! appended to `cells.csv` (one synced write per row) before the worker
//! moves on, so killing the daemon — gracefully or with `SIGKILL` —
//! loses at most the cells in flight.
//!
//! When every cell has a record, the job's records are assembled in grid
//! order and written as `results.csv`/`results.json` — byte-identical to
//! what `Experiment::run` on the same axes would serialize, which the
//! daemon integration test asserts.

use crate::store::{io_err, write_atomic, DaemonError, Job, JobState, JobStatus, JobStore};
use ftsim::harness::{from_csv_tolerant, to_csv, to_json, RunRecord};
use ftsim_stats::csv::AppendWriter;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::Duration;

/// How a [`run_job`] call ended.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum JobOutcome {
    /// Every cell has a record; final results are on disk.
    Completed,
    /// A shutdown request interrupted the sweep; the job is re-queued
    /// with its streamed records intact.
    Interrupted,
}

/// Process-wide graceful-shutdown flag, set by SIGINT/SIGTERM (via
/// [`install_signal_handlers`]) and polled between cells.
static SIGNALLED: AtomicBool = AtomicBool::new(false);

/// Whether a signal has requested shutdown.
pub fn signalled() -> bool {
    SIGNALLED.load(Ordering::SeqCst)
}

/// Installs SIGINT/SIGTERM handlers that flip the [`signalled`] flag, so
/// Ctrl-C gives the same graceful stop as `ftsimd stop`. No-op off Unix.
pub fn install_signal_handlers() {
    #[cfg(unix)]
    {
        extern "C" fn on_signal(_: i32) {
            SIGNALLED.store(true, Ordering::SeqCst);
        }
        extern "C" {
            fn signal(signum: i32, handler: usize) -> usize;
        }
        const SIGINT: i32 = 2;
        const SIGTERM: i32 = 15;
        let handler = on_signal as extern "C" fn(i32) as *const () as usize;
        unsafe {
            signal(SIGINT, handler);
            signal(SIGTERM, handler);
        }
    }
}

/// Runs one job to completion or interruption, streaming records.
///
/// Progress is visible throughout: `status.json` moves to `running` with
/// a live `cells_done` count, and `cells.csv` grows one synced row per
/// completed cell. `stop` is polled between cells (alongside the store's
/// stop sentinel and the process [`signalled`] flag); on interruption the
/// job goes back to `queued` and the next `serve` resumes it.
///
/// # Errors
///
/// [`DaemonError`] for unrunnable jobs (bad spec/grid — the job is
/// marked `failed`) or state-directory I/O trouble.
pub fn run_job(store: &JobStore, job: &Job, stop: &AtomicBool) -> Result<JobOutcome, DaemonError> {
    let spec = store.load_spec(job);
    let planned = spec.and_then(|spec| {
        let (writer, existing) = AppendWriter::open(job.cells_path(), &RunRecord::csv_header())
            .map_err(io_err(format!("opening {}", job.cells_path().display())))?;
        let (prior, dropped) = from_csv_tolerant(&existing);
        if dropped > 0 {
            eprintln!(
                "ftsimd: {}: dropped {dropped} torn line(s) from cells.csv; re-simulating those cells",
                job.id
            );
        }
        let plan = spec
            .to_experiment()?
            .resume_from(prior)
            .plan()
            .map_err(DaemonError::Experiment)?;
        Ok((writer, plan))
    });
    let (writer, plan) = match planned {
        Ok(parts) => parts,
        Err(e) => {
            // The job itself is unrunnable: record why and park it as
            // failed rather than wedging the queue on it forever.
            let mut status = store.load_status(job).unwrap_or(JobStatus {
                state: JobState::Failed,
                cells_total: 0,
                cells_done: 0,
                error: String::new(),
            });
            status.state = JobState::Failed;
            status.error = e.to_string();
            store.write_status(job, &status)?;
            return Err(e);
        }
    };

    let total = plan.len();
    let done_at_start = total - plan.runnable();
    store.write_status(
        job,
        &JobStatus {
            state: JobState::Running,
            cells_total: total,
            cells_done: done_at_start,
            error: String::new(),
        },
    )?;

    // Shards keep each family's cells on one worker so the checkpointed
    // baseline is warmed once and reused for every fork in the family.
    let shards = plan.shards();
    let should_stop = || stop.load(Ordering::SeqCst) || signalled() || store.stop_requested();

    struct Progress {
        writer: AppendWriter,
        records: Vec<Option<RunRecord>>,
        done: usize,
    }
    let progress = Mutex::new(Progress {
        writer,
        records: (0..total).map(|_| None).collect(),
        done: done_at_start,
    });
    let next_shard = AtomicUsize::new(0);
    let io_failure: Mutex<Option<DaemonError>> = Mutex::new(None);
    let workers = plan.workers().min(shards.len().max(1));

    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                if should_stop() {
                    break;
                }
                let si = next_shard.fetch_add(1, Ordering::Relaxed);
                let Some(shard) = shards.get(si) else { break };
                for &idx in shard {
                    if should_stop() {
                        break;
                    }
                    let record = plan.run_cell(idx);
                    let mut p = progress.lock().expect("progress lock");
                    let row = record.to_csv_row();
                    p.records[idx] = Some(record);
                    p.done += 1;
                    let done = p.done;
                    if let Err(e) = p.writer.append_row(&row) {
                        *io_failure.lock().expect("failure lock") =
                            Some(io_err(format!(
                                "appending to {}",
                                job.cells_path().display()
                            ))(e));
                        stop.store(true, Ordering::SeqCst);
                        break;
                    }
                    drop(p);
                    // Keep `status` live for dashboards; a torn write is
                    // impossible (atomic replace) and a stale count is
                    // corrected by the next cell.
                    let _ = store.write_status(
                        job,
                        &JobStatus {
                            state: JobState::Running,
                            cells_total: total,
                            cells_done: done,
                            error: String::new(),
                        },
                    );
                }
            });
        }
    });

    if let Some(e) = io_failure.into_inner().expect("failure lock") {
        // Streaming broke: the job stays queued (its log is still
        // consistent up to the failure) and the error propagates.
        store.write_status(
            job,
            &JobStatus {
                state: JobState::Queued,
                cells_total: total,
                cells_done: progress.lock().expect("progress lock").done,
                error: String::new(),
            },
        )?;
        return Err(e);
    }

    let progress = progress.into_inner().expect("progress lock");
    if progress.done < total {
        store.write_status(
            job,
            &JobStatus {
                state: JobState::Queued,
                cells_total: total,
                cells_done: progress.done,
                error: String::new(),
            },
        )?;
        return Ok(JobOutcome::Interrupted);
    }

    // Assemble final records in grid order: freshly-run cells from this
    // pass, everything else from the prior (resumed) records.
    let records: Vec<RunRecord> = progress
        .records
        .into_iter()
        .enumerate()
        .map(|(idx, slot)| match slot {
            Some(record) => record,
            None => plan
                .prior(idx)
                .cloned()
                .expect("cells without a fresh record were resumed"),
        })
        .collect();
    write_atomic(&job.results_path(), to_csv(&records).as_bytes())?;
    write_atomic(&job.results_json_path(), to_json(&records).as_bytes())?;
    store.write_status(
        job,
        &JobStatus {
            state: JobState::Done,
            cells_total: total,
            cells_done: total,
            error: String::new(),
        },
    )?;
    Ok(JobOutcome::Completed)
}

/// Serve-loop options.
#[derive(Debug, Clone)]
pub struct ServeOptions {
    /// Exit once the queue is empty instead of polling for new jobs —
    /// batch mode, used by tests and the examples.
    pub drain: bool,
    /// Queue poll interval when idle.
    pub poll: Duration,
}

impl Default for ServeOptions {
    fn default() -> Self {
        Self {
            drain: false,
            poll: Duration::from_millis(500),
        }
    }
}

/// The daemon's main loop: repeatedly pick the oldest runnable job
/// (`queued`, or `running` — a previous daemon's crash — which resumes
/// from its streamed records) and execute it; between jobs, honour stop
/// requests and, without [`ServeOptions::drain`], poll for new
/// submissions.
///
/// A job failing ([`JobState::Failed`], e.g. its spec no longer
/// resolves) does not stop the daemon; the error is reported on stderr
/// and the queue moves on.
///
/// # Errors
///
/// [`DaemonError`] only for state-directory-level trouble (the queue
/// itself being unreadable/unwritable).
pub fn serve(store: &JobStore, opts: &ServeOptions) -> Result<(), DaemonError> {
    store.clear_stop()?;
    let stop = AtomicBool::new(false);
    loop {
        if stop.load(Ordering::SeqCst) || signalled() || store.stop_requested() {
            println!("ftsimd: stop requested, exiting");
            store.clear_stop()?;
            return Ok(());
        }
        let next = store.jobs()?.into_iter().find(|job| {
            matches!(
                store.load_status(job).map(|s| s.state),
                Ok(JobState::Queued | JobState::Running)
            )
        });
        match next {
            Some(job) => match run_job(store, &job, &stop) {
                Ok(JobOutcome::Completed) => println!("ftsimd: job {} done", job.id),
                Ok(JobOutcome::Interrupted) => {
                    println!("ftsimd: job {} interrupted, re-queued", job.id);
                }
                Err(e) => eprintln!("ftsimd: job {} failed: {e}", job.id),
            },
            None if opts.drain => {
                println!("ftsimd: queue drained, exiting");
                return Ok(());
            }
            None => std::thread::sleep(opts.poll),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::JobSpec;

    fn temp_store(tag: &str) -> JobStore {
        let dir = std::env::temp_dir().join(format!("ftsimd-runner-{tag}-{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        JobStore::open(dir).unwrap()
    }

    fn spec() -> JobSpec {
        let mut spec = JobSpec::new("unit");
        spec.workloads = vec!["gcc".to_string(), "equake".to_string()];
        spec.models = vec!["SS-1".to_string(), "SS-2".to_string()];
        spec.fault_rates_pm = vec![0.0, 4_000.0];
        spec.budgets = vec![1_500];
        spec.seeds = vec![7];
        spec
    }

    #[test]
    fn job_results_match_one_shot_grid() {
        let store = temp_store("match");
        let (id, _) = store.submit(&spec()).unwrap();
        let job = store.job(&id).unwrap();
        let outcome = run_job(&store, &job, &AtomicBool::new(false)).unwrap();
        assert_eq!(outcome, JobOutcome::Completed);
        assert_eq!(store.load_status(&job).unwrap().state, JobState::Done);

        let direct = spec().to_experiment().unwrap().run().unwrap();
        let from_daemon = std::fs::read_to_string(job.results_path()).unwrap();
        assert_eq!(from_daemon, to_csv(&direct));
        let json = std::fs::read_to_string(job.results_json_path()).unwrap();
        assert_eq!(json, to_json(&direct));

        // Re-running a done job's store is a no-op for serve (drain).
        serve(
            &store,
            &ServeOptions {
                drain: true,
                poll: Duration::from_millis(1),
            },
        )
        .unwrap();
        assert_eq!(
            std::fs::read_to_string(job.results_path()).unwrap(),
            to_csv(&direct)
        );
        std::fs::remove_dir_all(store.root()).ok();
    }

    #[test]
    fn immediate_stop_requeues_with_no_progress_lost() {
        let store = temp_store("stop");
        let (id, _) = store.submit(&spec()).unwrap();
        let job = store.job(&id).unwrap();
        // A pre-set stop flag interrupts before any cell runs.
        let outcome = run_job(&store, &job, &AtomicBool::new(true)).unwrap();
        assert_eq!(outcome, JobOutcome::Interrupted);
        let status = store.load_status(&job).unwrap();
        assert_eq!(status.state, JobState::Queued);
        assert_eq!(status.cells_done, 0);

        // A later run completes and matches the one-shot grid.
        let outcome = run_job(&store, &job, &AtomicBool::new(false)).unwrap();
        assert_eq!(outcome, JobOutcome::Completed);
        let direct = spec().to_experiment().unwrap().run().unwrap();
        assert_eq!(
            std::fs::read_to_string(job.results_path()).unwrap(),
            to_csv(&direct)
        );
        std::fs::remove_dir_all(store.root()).ok();
    }

    #[test]
    fn serve_drains_the_queue_in_submission_order() {
        let store = temp_store("drain");
        let (a, _) = store.submit(&spec()).unwrap();
        let mut other = spec();
        other.name = "unit-b".to_string();
        other.workloads = vec!["gcc".to_string()];
        other.fault_rates_pm = vec![0.0];
        let (b, _) = store.submit(&other).unwrap();
        serve(
            &store,
            &ServeOptions {
                drain: true,
                poll: Duration::from_millis(1),
            },
        )
        .unwrap();
        for id in [&a, &b] {
            let job = store.job(id).unwrap();
            assert_eq!(store.load_status(&job).unwrap().state, JobState::Done);
            assert!(job.results_path().exists());
        }
        std::fs::remove_dir_all(store.root()).ok();
    }
}
