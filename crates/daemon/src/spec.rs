//! Sweep-job specifications: the TOML/JSON documents `ftsimd submit`
//! accepts, and their mapping onto [`Experiment`] grids.
//!
//! A spec names every grid axis by *name* — workloads are the Table 2
//! benchmark profiles, models are the paper's machine presets — so jobs
//! are plain text, diffable, and independent of the Rust API:
//!
//! ```toml
//! name = "fig6-mini"
//! workloads = ["fpppp", "gcc"]
//! models = ["SS-2", "SS-3M"]
//! fault_rates = [0.0, 200.0, 5000.0]
//! site_mixes = ["uniform", "addr-heavy"]
//! budgets = [4000]
//! seeds = [3]
//! oracle = "final"
//! checkpointing = true
//! ```
//!
//! The JSON form is the same document with JSON syntax; parsed specs
//! normalize to one canonical JSON rendering ([`JobSpec::to_json`]),
//! which is what the job store persists and compares for
//! submit-or-attach deduplication.

use ftsim::harness::{Experiment, Workload};
use ftsim_core::{MachineConfig, OracleMode, RedundancyConfig};
use ftsim_faults::SiteMix;
use ftsim_stats::JsonValue;
use std::fmt;

/// A job spec that fails to parse or to resolve against the simulator's
/// registries.
#[derive(Debug, Clone, PartialEq)]
pub enum SpecError {
    /// The document is not syntactically valid TOML/JSON.
    Syntax(String),
    /// A required field is absent.
    MissingField(&'static str),
    /// A field holds the wrong type or an unusable value.
    BadField {
        /// Field name.
        field: &'static str,
        /// What was wrong with it.
        message: String,
    },
    /// A key the spec format does not define (typo guard).
    UnknownField(String),
    /// A workload name not in the benchmark registry.
    UnknownWorkload(String),
    /// A model name not in the machine registry.
    UnknownModel(String),
    /// A site-mix name not in the preset registry.
    UnknownSiteMix(String),
}

impl fmt::Display for SpecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SpecError::Syntax(msg) => write!(f, "spec syntax error: {msg}"),
            SpecError::MissingField(field) => write!(f, "spec is missing required field `{field}`"),
            SpecError::BadField { field, message } => {
                write!(f, "spec field `{field}`: {message}")
            }
            SpecError::UnknownField(key) => write!(f, "spec has unknown field `{key}`"),
            SpecError::UnknownWorkload(name) => write!(
                f,
                "unknown workload `{name}` (expected a Table 2 profile, e.g. gcc, fpppp, equake, \
                 or a graduated fuzz workload, e.g. fuzz-ras-7)"
            ),
            SpecError::UnknownModel(name) => write!(
                f,
                "unknown model `{name}` (expected SS-<r>, SS-<r>M or Static-2, e.g. SS-1, SS-2, SS-3M)"
            ),
            SpecError::UnknownSiteMix(name) => write!(
                f,
                "unknown site mix `{name}` (expected one of: {})",
                ftsim_faults::PRESET_NAMES.join(", ")
            ),
        }
    }
}

impl std::error::Error for SpecError {}

/// A declarative sweep job: the grid axes of an [`Experiment`] with every
/// workload and machine model referenced by name.
///
/// # Examples
///
/// ```
/// use ftsim_daemon::JobSpec;
///
/// let spec = JobSpec::parse(
///     r#"
///     name = "demo"
///     workloads = ["gcc"]
///     models = ["SS-1", "SS-2"]
///     budgets = [2000]
///     "#,
/// )
/// .unwrap();
/// assert_eq!(spec.name, "demo");
/// assert_eq!(spec.models, ["SS-1", "SS-2"]);
/// // Unset axes take the harness defaults: fault-free, seed 0.
/// assert_eq!(spec.fault_rates_pm, [0.0]);
/// let experiment = spec.to_experiment().unwrap();
/// assert_eq!(experiment.cells(), 2);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct JobSpec {
    /// Human-readable job name (used in the job id).
    pub name: String,
    /// Workload axis: benchmark profile names (`gcc`, `fpppp`, …).
    pub workloads: Vec<String>,
    /// Model axis: machine preset names (`SS-1`, `SS-2`, `SS-3M`,
    /// `Static-2`, or any `SS-<r>`/`SS-<r>M`).
    pub models: Vec<String>,
    /// Fault-rate axis in faults per million instructions. Default:
    /// fault-free.
    pub fault_rates_pm: Vec<f64>,
    /// Fault-site-mix axis: [`SiteMix`] preset names (`uniform`,
    /// `addr-heavy`, `control-only`, `data-only`). Default: uniform.
    pub site_mixes: Vec<String>,
    /// Committed-instruction budget axis. Default: the harness's
    /// [`DEFAULT_BUDGET`](ftsim::harness::DEFAULT_BUDGET).
    pub budgets: Vec<u64>,
    /// Fault-injector seed axis. Default: `[0]`.
    pub seeds: Vec<u64>,
    /// Whether each cell verifies final state against the in-order
    /// oracle. Default: off (performance sweeps).
    pub oracle: OracleMode,
    /// Whether families share fault-free prefixes via checkpoint-forking.
    /// Default: **on** — prefix sharing is the daemon's point, and it
    /// never changes a record.
    pub checkpointing: bool,
    /// Worker-thread cap (`0` = one per available core). Default: `0`.
    /// In the fabric this also caps how many *claims* (families) may run
    /// concurrently for this job across all cooperating processes.
    pub threads: usize,
    /// Scheduling priority: higher runs first when the fabric picks the
    /// next family to claim. Default: `0`.
    pub priority: i64,
    /// Who submitted the job — a free-form tenant label used for
    /// fair-share scheduling across submitters. Default: `""`.
    pub submitter: String,
    /// Maximum job lifetime in seconds, measured from submission. Once a
    /// job is **terminal** and older than this, garbage collection may
    /// remove it (GC never touches a live job, TTL or not). `0` disables
    /// the lifetime bound. Default: `0`.
    pub ttl_secs: u64,
    /// How long to retain a terminal job's artifacts after it finishes,
    /// in seconds; past this, garbage collection may remove it. `0`
    /// means retain forever (unless `ttl_secs` expires it). Default: `0`.
    pub retain_secs: u64,
}

impl JobSpec {
    /// A spec with the given name and the documented axis defaults;
    /// callers fill the workload and model axes.
    pub fn new(name: impl Into<String>) -> Self {
        Self {
            name: name.into(),
            workloads: Vec::new(),
            models: Vec::new(),
            fault_rates_pm: vec![0.0],
            site_mixes: vec!["uniform".to_string()],
            budgets: vec![ftsim::harness::DEFAULT_BUDGET],
            seeds: vec![0],
            oracle: OracleMode::Off,
            checkpointing: true,
            threads: 0,
            priority: 0,
            submitter: String::new(),
            ttl_secs: 0,
            retain_secs: 0,
        }
    }

    /// Parses a spec from TOML or JSON, deciding by the first
    /// non-whitespace character (`{` means JSON).
    ///
    /// # Errors
    ///
    /// [`SpecError`] for syntax errors, missing/mistyped/unknown fields.
    pub fn parse(text: &str) -> Result<Self, SpecError> {
        let doc = if text.trim_start().starts_with('{') {
            JsonValue::parse(text).map_err(|e| SpecError::Syntax(e.to_string()))?
        } else {
            toml_to_json(text)?
        };
        Self::from_fields(&doc)
    }

    /// Builds a spec from a parsed JSON object (shared by both syntaxes).
    fn from_fields(doc: &JsonValue) -> Result<Self, SpecError> {
        let JsonValue::Obj(pairs) = doc else {
            return Err(SpecError::Syntax("spec must be a table/object".to_string()));
        };
        const KNOWN: [&str; 14] = [
            "name",
            "workloads",
            "models",
            "fault_rates",
            "site_mixes",
            "budgets",
            "seeds",
            "oracle",
            "checkpointing",
            "threads",
            "priority",
            "submitter",
            "ttl_secs",
            "retain_secs",
        ];
        if let Some((key, _)) = pairs.iter().find(|(k, _)| !KNOWN.contains(&k.as_str())) {
            return Err(SpecError::UnknownField(key.clone()));
        }

        let name = doc
            .get("name")
            .ok_or(SpecError::MissingField("name"))?
            .as_str()
            .ok_or_else(|| bad("name", "must be a string"))?
            .to_string();
        if name.trim().is_empty() {
            return Err(bad("name", "must be non-empty"));
        }
        let mut spec = Self::new(name);
        spec.workloads =
            string_list(doc, "workloads")?.ok_or(SpecError::MissingField("workloads"))?;
        spec.models = string_list(doc, "models")?.ok_or(SpecError::MissingField("models"))?;
        if let Some(rates) = f64_list(doc, "fault_rates")? {
            spec.fault_rates_pm = rates;
        }
        if let Some(mixes) = string_list(doc, "site_mixes")? {
            spec.site_mixes = mixes;
        }
        if let Some(budgets) = u64_list(doc, "budgets")? {
            spec.budgets = budgets;
        }
        if let Some(seeds) = u64_list(doc, "seeds")? {
            spec.seeds = seeds;
        }
        if let Some(v) = doc.get("oracle") {
            spec.oracle = v
                .as_str()
                .and_then(OracleMode::from_name)
                .ok_or_else(|| bad("oracle", "must be \"off\" or \"final\""))?;
        }
        if let Some(v) = doc.get("checkpointing") {
            spec.checkpointing = v
                .as_bool()
                .ok_or_else(|| bad("checkpointing", "must be a bool"))?;
        }
        if let Some(v) = doc.get("threads") {
            spec.threads = v
                .as_u64()
                .and_then(|n| usize::try_from(n).ok())
                .ok_or_else(|| bad("threads", "must be a non-negative integer"))?;
        }
        if let Some(v) = doc.get("priority") {
            spec.priority = v
                .as_i64()
                .ok_or_else(|| bad("priority", "must be an integer"))?;
        }
        if let Some(v) = doc.get("submitter") {
            spec.submitter = v
                .as_str()
                .ok_or_else(|| bad("submitter", "must be a string"))?
                .to_string();
        }
        if let Some(v) = doc.get("ttl_secs") {
            spec.ttl_secs = v
                .as_u64()
                .ok_or_else(|| bad("ttl_secs", "must be a non-negative integer"))?;
        }
        if let Some(v) = doc.get("retain_secs") {
            spec.retain_secs = v
                .as_u64()
                .ok_or_else(|| bad("retain_secs", "must be a non-negative integer"))?;
        }
        Ok(spec)
    }

    /// The canonical JSON rendering of this spec — what the job store
    /// persists as `spec.json` and compares to deduplicate re-submissions.
    /// `parse(to_json())` round-trips exactly.
    pub fn to_json(&self) -> String {
        let oracle = self.oracle.name();
        JsonValue::obj([
            ("name".to_string(), JsonValue::Str(self.name.clone())),
            (
                "workloads".to_string(),
                JsonValue::Arr(
                    self.workloads
                        .iter()
                        .map(|w| JsonValue::Str(w.clone()))
                        .collect(),
                ),
            ),
            (
                "models".to_string(),
                JsonValue::Arr(
                    self.models
                        .iter()
                        .map(|m| JsonValue::Str(m.clone()))
                        .collect(),
                ),
            ),
            (
                "fault_rates".to_string(),
                JsonValue::Arr(
                    self.fault_rates_pm
                        .iter()
                        .map(|&r| JsonValue::F64(r))
                        .collect(),
                ),
            ),
            (
                "site_mixes".to_string(),
                JsonValue::Arr(
                    self.site_mixes
                        .iter()
                        .map(|m| JsonValue::Str(m.clone()))
                        .collect(),
                ),
            ),
            (
                "budgets".to_string(),
                JsonValue::Arr(self.budgets.iter().map(|&b| JsonValue::U64(b)).collect()),
            ),
            (
                "seeds".to_string(),
                JsonValue::Arr(self.seeds.iter().map(|&s| JsonValue::U64(s)).collect()),
            ),
            ("oracle".to_string(), JsonValue::Str(oracle.to_string())),
            (
                "checkpointing".to_string(),
                JsonValue::Bool(self.checkpointing),
            ),
            ("threads".to_string(), JsonValue::U64(self.threads as u64)),
            ("priority".to_string(), JsonValue::I64(self.priority)),
            (
                "submitter".to_string(),
                JsonValue::Str(self.submitter.clone()),
            ),
            ("ttl_secs".to_string(), JsonValue::U64(self.ttl_secs)),
            ("retain_secs".to_string(), JsonValue::U64(self.retain_secs)),
        ])
        .render_pretty(2)
    }

    /// Resolves the spec's names against the workload and model
    /// registries and builds the equivalent [`Experiment`] grid. The
    /// returned experiment is exactly what a one-shot
    /// [`Experiment::run`] of the same axes would use — that equivalence
    /// is what makes daemon results byte-identical to library results.
    ///
    /// # Errors
    ///
    /// [`SpecError::UnknownWorkload`] / [`SpecError::UnknownModel`] for
    /// unresolvable names (grid-shape validation happens later, in
    /// [`Experiment::plan`]).
    pub fn to_experiment(&self) -> Result<Experiment, SpecError> {
        let workloads: Vec<Workload> = self
            .workloads
            .iter()
            .map(|name| {
                // Table 2 profiles first, then the graduated fuzz-workload
                // registry (stable `fuzz-*` names, regenerated from their
                // frozen generation specs).
                ftsim_workloads::profile(name)
                    .map(Workload::from)
                    .or_else(|| {
                        ftsim_workloads::graduated(name).map(|g| Workload::Program {
                            name: g.name.to_string(),
                            program: g.generate().program,
                        })
                    })
                    .ok_or_else(|| SpecError::UnknownWorkload(name.clone()))
            })
            .collect::<Result<_, _>>()?;
        let models: Vec<MachineConfig> = self
            .models
            .iter()
            .map(|name| model_by_name(name).ok_or_else(|| SpecError::UnknownModel(name.clone())))
            .collect::<Result<_, _>>()?;
        let mixes: Vec<SiteMix> = self
            .site_mixes
            .iter()
            .map(|name| {
                SiteMix::preset(name).ok_or_else(|| SpecError::UnknownSiteMix(name.clone()))
            })
            .collect::<Result<_, _>>()?;
        Ok(Experiment::grid()
            .workloads(workloads)
            .models(models)
            .fault_rates(self.fault_rates_pm.iter().copied())
            .site_mixes(mixes)
            .budgets(self.budgets.iter().copied())
            .seeds(self.seeds.iter().copied())
            .oracle(self.oracle)
            .threads(self.threads)
            .checkpointing(self.checkpointing))
    }
}

fn bad(field: &'static str, message: &str) -> SpecError {
    SpecError::BadField {
        field,
        message: message.to_string(),
    }
}

fn list<'a>(doc: &'a JsonValue, field: &'static str) -> Result<Option<&'a [JsonValue]>, SpecError> {
    match doc.get(field) {
        None => Ok(None),
        Some(v) => {
            let items = v.as_arr().ok_or_else(|| bad(field, "must be an array"))?;
            if items.is_empty() {
                return Err(bad(field, "must be non-empty"));
            }
            Ok(Some(items))
        }
    }
}

fn string_list(doc: &JsonValue, field: &'static str) -> Result<Option<Vec<String>>, SpecError> {
    list(doc, field)?
        .map(|items| {
            items
                .iter()
                .map(|v| {
                    v.as_str()
                        .map(str::to_string)
                        .ok_or_else(|| bad(field, "must contain only strings"))
                })
                .collect()
        })
        .transpose()
}

fn f64_list(doc: &JsonValue, field: &'static str) -> Result<Option<Vec<f64>>, SpecError> {
    list(doc, field)?
        .map(|items| {
            items
                .iter()
                .map(|v| {
                    v.as_f64()
                        .ok_or_else(|| bad(field, "must contain only numbers"))
                })
                .collect()
        })
        .transpose()
}

fn u64_list(doc: &JsonValue, field: &'static str) -> Result<Option<Vec<u64>>, SpecError> {
    list(doc, field)?
        .map(|items| {
            items
                .iter()
                .map(|v| {
                    v.as_u64()
                        .ok_or_else(|| bad(field, "must contain only non-negative integers"))
                })
                .collect()
        })
        .transpose()
}

/// Resolves a machine-model name: the paper presets (`SS-1`, `SS-2`,
/// `SS-3`, `SS-3M`, `Static-2`) plus the generalized redundancy family
/// `SS-<r>` / `SS-<r>M` for `r` in 1–8 (Table 1 hardware with `r`-way
/// replication, rewind-only or majority recovery). Matching is
/// case-insensitive.
///
/// # Examples
///
/// ```
/// use ftsim_daemon::model_by_name;
///
/// assert_eq!(model_by_name("SS-2").unwrap().redundancy.r, 2);
/// assert!(model_by_name("ss-3m").unwrap().redundancy.majority);
/// assert_eq!(model_by_name("Static-2").unwrap().name, "Static-2");
/// assert!(model_by_name("SS-9000").is_none());
/// ```
pub fn model_by_name(name: &str) -> Option<MachineConfig> {
    let lower = name.to_ascii_lowercase();
    match lower.as_str() {
        "ss-1" => return Some(MachineConfig::ss1()),
        "ss-2" => return Some(MachineConfig::ss2()),
        "ss-3" => return Some(MachineConfig::ss3()),
        "ss-3m" => return Some(MachineConfig::ss3_majority()),
        "static-2" => return Some(MachineConfig::static2()),
        _ => {}
    }
    // Generalized SS-<r> / SS-<r>M: Table 1 hardware, r-way replication.
    let digits = lower.strip_prefix("ss-")?;
    let (digits, majority) = match digits.strip_suffix('m') {
        Some(d) => (d, true),
        None => (digits, false),
    };
    let r: u8 = digits.parse().ok().filter(|&r| (1..=8).contains(&r))?;
    if r == 1 && majority {
        return None; // majority election needs R >= 2 live copies
    }
    let redundancy = if r == 1 {
        RedundancyConfig::none()
    } else if majority {
        RedundancyConfig::majority(r)
    } else {
        RedundancyConfig::rewind(r)
    };
    let suffix = if majority { "M" } else { "" };
    Some(
        MachineConfig::ss1()
            .with_redundancy(redundancy)
            .named(&format!("SS-{r}{suffix}")),
    )
}

/// Parses the TOML subset job specs use — top-level `key = value` pairs
/// with string/number/bool scalars and (possibly multi-line) arrays of
/// scalars, `#` comments — into the same [`JsonValue`] object shape the
/// JSON syntax yields. Nested tables are not part of the spec format.
fn toml_to_json(text: &str) -> Result<JsonValue, SpecError> {
    let mut pairs: Vec<(String, JsonValue)> = Vec::new();
    let mut lines = text.lines().enumerate().peekable();
    while let Some((lineno, raw)) = lines.next() {
        let line = strip_comment(raw).trim().to_string();
        if line.is_empty() {
            continue;
        }
        let err = |msg: &str| SpecError::Syntax(format!("line {}: {msg}", lineno + 1));
        let (key, mut value) = line
            .split_once('=')
            .map(|(k, v)| (k.trim().to_string(), v.trim().to_string()))
            .ok_or_else(|| err("expected `key = value`"))?;
        if key.is_empty() || !key.chars().all(|c| c.is_ascii_alphanumeric() || c == '_') {
            return Err(err("bad key (expected [A-Za-z0-9_]+)"));
        }
        // A multi-line array continues until brackets balance.
        while value.starts_with('[') && !brackets_balanced(&value) {
            let (_, cont) = lines.next().ok_or_else(|| err("unterminated array"))?;
            value.push(' ');
            value.push_str(strip_comment(cont).trim());
        }
        if pairs.iter().any(|(k, _)| *k == key) {
            return Err(err("duplicate key"));
        }
        pairs.push((key, toml_value(&value).map_err(|msg| err(&msg))?));
    }
    Ok(JsonValue::Obj(pairs))
}

/// Strips a `#` comment, respecting `"`-quoted strings.
fn strip_comment(line: &str) -> &str {
    let mut in_str = false;
    for (i, c) in line.char_indices() {
        match c {
            '"' => in_str = !in_str,
            '#' if !in_str => return &line[..i],
            _ => {}
        }
    }
    line
}

fn brackets_balanced(s: &str) -> bool {
    let mut depth = 0i32;
    let mut in_str = false;
    for c in s.chars() {
        match c {
            '"' => in_str = !in_str,
            '[' if !in_str => depth += 1,
            ']' if !in_str => depth -= 1,
            _ => {}
        }
    }
    depth == 0
}

/// Parses one TOML scalar or array-of-scalars.
fn toml_value(text: &str) -> Result<JsonValue, String> {
    let text = text.trim();
    if let Some(body) = text.strip_prefix('[') {
        let body = body
            .strip_suffix(']')
            .ok_or_else(|| "unterminated array".to_string())?;
        let mut items = Vec::new();
        for part in split_array_items(body)? {
            let part = part.trim();
            if !part.is_empty() {
                items.push(toml_value(part)?);
            }
        }
        return Ok(JsonValue::Arr(items));
    }
    if let Some(body) = text.strip_prefix('"') {
        let body = body
            .strip_suffix('"')
            .filter(|b| !b.contains('"'))
            .ok_or_else(|| format!("bad string `{text}`"))?;
        return Ok(JsonValue::Str(body.to_string()));
    }
    match text {
        "true" => return Ok(JsonValue::Bool(true)),
        "false" => return Ok(JsonValue::Bool(false)),
        _ => {}
    }
    if !text.contains(['.', 'e', 'E']) {
        if let Ok(n) = text.parse::<u64>() {
            return Ok(JsonValue::U64(n));
        }
        if let Ok(n) = text.parse::<i64>() {
            return Ok(JsonValue::I64(n));
        }
    }
    text.parse::<f64>()
        .map(JsonValue::F64)
        .map_err(|_| format!("bad value `{text}`"))
}

/// Splits array contents on commas outside quotes.
fn split_array_items(body: &str) -> Result<Vec<String>, String> {
    let mut items = Vec::new();
    let mut current = String::new();
    let mut in_str = false;
    for c in body.chars() {
        match c {
            '"' => {
                in_str = !in_str;
                current.push(c);
            }
            ',' if !in_str => items.push(std::mem::take(&mut current)),
            _ => current.push(c),
        }
    }
    if in_str {
        return Err("unterminated string in array".to_string());
    }
    items.push(current);
    Ok(items)
}

#[cfg(test)]
mod tests {
    use super::*;

    const TOML: &str = r#"
        # A miniature Figure 6 sweep.
        name = "fig6-mini"
        workloads = ["fpppp", "gcc"]
        models = [
            "SS-2",   # rewind recovery
            "SS-3M",  # majority election
        ]
        fault_rates = [0.0, 200.0, 5000.0]
        site_mixes = ["uniform", "addr-heavy"]
        budgets = [4000]
        seeds = [3]
        oracle = "final"
        checkpointing = true
        threads = 2
    "#;

    #[test]
    fn toml_and_json_parse_to_the_same_spec() {
        let from_toml = JobSpec::parse(TOML).unwrap();
        assert_eq!(from_toml.name, "fig6-mini");
        assert_eq!(from_toml.workloads, ["fpppp", "gcc"]);
        assert_eq!(from_toml.models, ["SS-2", "SS-3M"]);
        assert_eq!(from_toml.fault_rates_pm, [0.0, 200.0, 5000.0]);
        assert_eq!(from_toml.site_mixes, ["uniform", "addr-heavy"]);
        assert_eq!(from_toml.budgets, [4000]);
        assert_eq!(from_toml.seeds, [3]);
        assert_eq!(from_toml.oracle, OracleMode::Final);
        assert!(from_toml.checkpointing);
        assert_eq!(from_toml.threads, 2);

        let from_json = JobSpec::parse(&from_toml.to_json()).unwrap();
        assert_eq!(from_json, from_toml);
    }

    #[test]
    fn defaults_fill_unset_axes() {
        let spec =
            JobSpec::parse("name = \"d\"\nworkloads = [\"gcc\"]\nmodels = [\"SS-1\"]\n").unwrap();
        assert_eq!(spec.fault_rates_pm, [0.0]);
        assert_eq!(spec.site_mixes, ["uniform"]);
        assert_eq!(spec.budgets, [ftsim::harness::DEFAULT_BUDGET]);
        assert_eq!(spec.seeds, [0]);
        assert_eq!(spec.oracle, OracleMode::Off);
        assert!(spec.checkpointing, "prefix sharing defaults on");
        assert_eq!(spec.threads, 0);
    }

    #[test]
    fn priority_and_submitter_round_trip() {
        let spec = JobSpec::parse(
            "name = \"vip\"\nworkloads = [\"gcc\"]\nmodels = [\"SS-1\"]\npriority = -2\nsubmitter = \"alice\"\n",
        )
        .unwrap();
        assert_eq!(spec.priority, -2);
        assert_eq!(spec.submitter, "alice");
        let back = JobSpec::parse(&spec.to_json()).unwrap();
        assert_eq!(back, spec);

        let defaults =
            JobSpec::parse("name = \"d\"\nworkloads = [\"gcc\"]\nmodels = [\"SS-1\"]\n").unwrap();
        assert_eq!(defaults.priority, 0);
        assert_eq!(defaults.submitter, "");
    }

    #[test]
    fn ttl_and_retain_round_trip() {
        let spec = JobSpec::parse(
            "name = \"t\"\nworkloads = [\"gcc\"]\nmodels = [\"SS-1\"]\nttl_secs = 3600\nretain_secs = 60\n",
        )
        .unwrap();
        assert_eq!(spec.ttl_secs, 3600);
        assert_eq!(spec.retain_secs, 60);
        let back = JobSpec::parse(&spec.to_json()).unwrap();
        assert_eq!(back, spec);

        // Unset means "keep forever": both lifetime bounds default off.
        let defaults =
            JobSpec::parse("name = \"d\"\nworkloads = [\"gcc\"]\nmodels = [\"SS-1\"]\n").unwrap();
        assert_eq!(defaults.ttl_secs, 0);
        assert_eq!(defaults.retain_secs, 0);

        let bad = JobSpec::parse(
            "name = \"t\"\nworkloads = [\"gcc\"]\nmodels = [\"SS-1\"]\nttl_secs = -5\n",
        )
        .unwrap_err();
        assert!(matches!(
            bad,
            SpecError::BadField {
                field: "ttl_secs",
                ..
            }
        ));
    }

    #[test]
    fn errors_name_the_problem() {
        let missing = JobSpec::parse("workloads = [\"gcc\"]\nmodels = [\"SS-1\"]\n").unwrap_err();
        assert_eq!(missing, SpecError::MissingField("name"));

        let unknown = JobSpec::parse(
            "name = \"x\"\nworkloads = [\"gcc\"]\nmodels = [\"SS-1\"]\nbudge = [1]\n",
        )
        .unwrap_err();
        assert_eq!(unknown, SpecError::UnknownField("budge".to_string()));

        let mistyped = JobSpec::parse(
            "name = \"x\"\nworkloads = [\"gcc\"]\nmodels = [\"SS-1\"]\noracle = \"maybe\"\n",
        )
        .unwrap_err();
        assert!(matches!(
            mistyped,
            SpecError::BadField {
                field: "oracle",
                ..
            }
        ));

        let empty =
            JobSpec::parse("name = \"x\"\nworkloads = []\nmodels = [\"SS-1\"]\n").unwrap_err();
        assert!(matches!(
            empty,
            SpecError::BadField {
                field: "workloads",
                ..
            }
        ));

        let bad_syntax = JobSpec::parse("name \"x\"\n").unwrap_err();
        assert!(matches!(bad_syntax, SpecError::Syntax(_)));
    }

    #[test]
    fn registries_resolve_names() {
        let spec = JobSpec::parse(TOML).unwrap();
        let exp = spec.to_experiment().unwrap();
        assert_eq!(exp.cells(), 2 * 2 * 3 * 2);

        let mut bad = spec.clone();
        bad.workloads = vec!["doom".to_string()];
        assert_eq!(
            bad.to_experiment().unwrap_err(),
            SpecError::UnknownWorkload("doom".to_string())
        );
        let mut bad = spec.clone();
        bad.models = vec!["SS-0".to_string()];
        assert_eq!(
            bad.to_experiment().unwrap_err(),
            SpecError::UnknownModel("SS-0".to_string())
        );
        let mut bad = spec;
        bad.site_mixes = vec!["everything-at-once".to_string()];
        let err = bad.to_experiment().unwrap_err();
        assert_eq!(
            err,
            SpecError::UnknownSiteMix("everything-at-once".to_string())
        );
        assert!(err.to_string().contains("addr-heavy"), "{err}");
    }

    #[test]
    fn graduated_fuzz_workloads_resolve() {
        let spec = JobSpec::parse(
            "name = \"grad\"\nworkloads = [\"fuzz-ras-7\", \"gcc\"]\nmodels = [\"SS-2\"]\n\
             budgets = [2000]\n",
        )
        .unwrap();
        let exp = spec.to_experiment().unwrap();
        assert_eq!(exp.cells(), 2);
        let ids = exp.identities().unwrap();
        assert_eq!(ids[0].workload, "fuzz-ras-7");
        assert_eq!(ids[0].suite, "");
        assert_eq!(ids[1].workload, "gcc");
    }

    #[test]
    fn generalized_model_names() {
        let m = model_by_name("SS-4").unwrap();
        assert_eq!(m.name, "SS-4");
        assert_eq!(m.redundancy.r, 4);
        assert!(!m.redundancy.majority);
        let m = model_by_name("ss-5m").unwrap();
        assert_eq!(m.name, "SS-5M");
        assert!(m.redundancy.majority);
        assert!(model_by_name("SS-0").is_none());
        assert!(model_by_name("turbo").is_none());
    }
}
