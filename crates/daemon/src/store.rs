//! The persistent job store: a state directory holding the queue.
//!
//! Everything the daemon knows lives in one directory tree, so jobs
//! survive restarts and crashes, and every state transition is visible
//! to `ftsimd status` while a sweep runs:
//!
//! ```text
//! <state>/
//!   stop                      # graceful-shutdown sentinel (ftsimd stop)
//!   http.addr                 # bound HTTP address (serve --listen)
//!   quarantine/               # corrupt state files + .reason sidecars
//!   jobs/
//!     0001-fig6-mini/
//!       spec.json             # canonical job spec (JobSpec::to_json)
//!       status.json           # state + progress, written atomically
//!       cells.csv             # incremental results, append-safe
//!       results.csv           # final records in grid order (done jobs)
//!       results.json          # same records as JSON (done jobs)
//!       stop                  # per-job pause sentinel (ftsimd stop JOB)
//!       claims/               # fabric claim leases, one per family
//!         gcc-4000-ss-2.lease
//! ```
//!
//! `status.json` is always replaced via write-to-temp + rename, so a
//! reader never sees a torn status; `cells.csv` is an
//! [`ftsim_stats::csv::AppendWriter`] log, so a killed daemon loses at
//! most the row in flight and the next `serve` resumes from the rest.

use crate::failpoints as fp;
use crate::spec::{JobSpec, SpecError};
use ftsim_stats::JsonValue;
use std::fmt;
use std::io;
use std::path::{Path, PathBuf};

/// Daemon-level failure: I/O on the state directory, an unreadable
/// spec/status document, or a job that does not exist.
#[derive(Debug)]
pub enum DaemonError {
    /// Filesystem trouble, tagged with the path involved.
    Io {
        /// What the daemon was doing.
        context: String,
        /// The underlying error.
        source: io::Error,
    },
    /// A spec failed to parse or resolve.
    Spec(SpecError),
    /// A grid failed validation (empty axis, invalid model…).
    Experiment(ftsim::harness::ExperimentError),
    /// A job id that is not in the store.
    NoSuchJob(String),
    /// A persisted document (status.json) that does not parse.
    Corrupt {
        /// The offending file.
        path: PathBuf,
        /// What was wrong.
        message: String,
    },
    /// A submission rejected by admission control: the submitter is over
    /// one of their per-tenant quotas. Maps to HTTP 429 with a
    /// `Retry-After` header.
    QuotaExceeded {
        /// The tenant label the quota applies to.
        submitter: String,
        /// Which limit tripped, human-readable.
        reason: String,
        /// Suggested wait before retrying, in seconds.
        retry_after_secs: u64,
    },
}

impl fmt::Display for DaemonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DaemonError::Io { context, source } => write!(f, "{context}: {source}"),
            DaemonError::Spec(e) => write!(f, "{e}"),
            DaemonError::Experiment(e) => write!(f, "invalid grid: {e}"),
            DaemonError::NoSuchJob(id) => write!(f, "no such job `{id}`"),
            DaemonError::Corrupt { path, message } => {
                write!(f, "corrupt state file {}: {message}", path.display())
            }
            DaemonError::QuotaExceeded {
                submitter,
                reason,
                retry_after_secs,
            } => {
                let who = if submitter.is_empty() {
                    "<anonymous>"
                } else {
                    submitter
                };
                write!(
                    f,
                    "quota exceeded for submitter `{who}`: {reason} (retry after {retry_after_secs}s)"
                )
            }
        }
    }
}

impl std::error::Error for DaemonError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            DaemonError::Io { source, .. } => Some(source),
            DaemonError::Spec(e) => Some(e),
            DaemonError::Experiment(e) => Some(e),
            _ => None,
        }
    }
}

impl From<SpecError> for DaemonError {
    fn from(e: SpecError) -> Self {
        DaemonError::Spec(e)
    }
}

impl From<ftsim::harness::ExperimentError> for DaemonError {
    fn from(e: ftsim::harness::ExperimentError) -> Self {
        DaemonError::Experiment(e)
    }
}

/// Tags an [`io::Error`] with what the daemon was doing.
pub(crate) fn io_err(context: impl Into<String>) -> impl FnOnce(io::Error) -> DaemonError {
    let context = context.into();
    move |source| DaemonError::Io { context, source }
}

/// A job's lifecycle state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JobState {
    /// Submitted (or interrupted mid-run) and waiting for a worker.
    Queued,
    /// Being executed by a daemon right now — or by a daemon that died;
    /// `serve` treats a `Running` job it did not start as resumable.
    Running,
    /// Every cell has a record; `results.csv`/`results.json` are final.
    Done,
    /// The job itself is unrunnable (bad spec/grid) — distinct from
    /// individual cells failing, which still yields a `Done` job whose
    /// records carry per-cell errors.
    Failed,
}

impl JobState {
    fn as_str(self) -> &'static str {
        match self {
            JobState::Queued => "queued",
            JobState::Running => "running",
            JobState::Done => "done",
            JobState::Failed => "failed",
        }
    }

    fn parse(s: &str) -> Option<Self> {
        Some(match s {
            "queued" => JobState::Queued,
            "running" => JobState::Running,
            "done" => JobState::Done,
            "failed" => JobState::Failed,
            _ => return None,
        })
    }
}

impl fmt::Display for JobState {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// A job's persisted status document.
#[derive(Debug, Clone, PartialEq)]
pub struct JobStatus {
    /// Lifecycle state.
    pub state: JobState,
    /// Total grid cells in the job.
    pub cells_total: usize,
    /// Cells with a streamed record so far.
    pub cells_done: usize,
    /// Failure message for [`JobState::Failed`] jobs; empty otherwise.
    pub error: String,
    /// When the job was submitted (ms since the Unix epoch, lease
    /// clock); `0` for statuses written before timestamps existed.
    /// The TTL garbage-collection clock starts here.
    pub created_unix_ms: u64,
    /// When the job reached a terminal state (ms since the Unix epoch);
    /// `0` while live. The retention clock starts here.
    pub finished_unix_ms: u64,
}

impl JobStatus {
    fn queued(cells_total: usize) -> Self {
        Self {
            state: JobState::Queued,
            cells_total,
            cells_done: 0,
            error: String::new(),
            created_unix_ms: ftsim_chaos::io().now_ms(),
            finished_unix_ms: 0,
        }
    }

    /// Whether the job is in a terminal state (done or failed) — the
    /// precondition for TTL/retention garbage collection.
    pub fn terminal(&self) -> bool {
        matches!(self.state, JobState::Done | JobState::Failed)
    }

    fn to_json(&self) -> String {
        JsonValue::obj([
            (
                "state".to_string(),
                JsonValue::Str(self.state.as_str().to_string()),
            ),
            (
                "cells_total".to_string(),
                JsonValue::U64(self.cells_total as u64),
            ),
            (
                "cells_done".to_string(),
                JsonValue::U64(self.cells_done as u64),
            ),
            ("error".to_string(), JsonValue::Str(self.error.clone())),
            (
                "created_unix_ms".to_string(),
                JsonValue::U64(self.created_unix_ms),
            ),
            (
                "finished_unix_ms".to_string(),
                JsonValue::U64(self.finished_unix_ms),
            ),
        ])
        .render_pretty(2)
    }

    fn from_json(text: &str) -> Result<Self, String> {
        let doc = JsonValue::parse(text).map_err(|e| e.to_string())?;
        let field = |name: &str| doc.get(name).ok_or_else(|| format!("missing `{name}`"));
        let state = field("state")?
            .as_str()
            .and_then(JobState::parse)
            .ok_or("bad `state`")?;
        let count = |name: &str| -> Result<usize, String> {
            field(name)?
                .as_u64()
                .and_then(|n| usize::try_from(n).ok())
                .ok_or_else(|| format!("bad `{name}`"))
        };
        // Timestamps were added later: statuses written by older daemons
        // lack them, and must keep parsing (0 = unknown, never GC'd by
        // the retention clock alone).
        let stamp = |name: &str| doc.get(name).and_then(|v| v.as_u64()).unwrap_or(0);
        Ok(Self {
            state,
            cells_total: count("cells_total")?,
            cells_done: count("cells_done")?,
            error: field("error")?.as_str().unwrap_or_default().to_string(),
            created_unix_ms: stamp("created_unix_ms"),
            finished_unix_ms: stamp("finished_unix_ms"),
        })
    }
}

/// Per-submitter admission-control limits, persisted at
/// `<state>/quota.json` so every ingress path — local `submit`, the HTTP
/// `POST /jobs` — enforces the same policy. Each limit applies to one
/// submitter's aggregate footprint; `0` disables that limit.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct QuotaPolicy {
    /// Maximum live (queued or running) jobs per submitter.
    pub max_live_jobs: u64,
    /// Maximum unfinished cells across a submitter's live jobs,
    /// counting the incoming job's own grid.
    pub max_queued_cells: u64,
    /// Maximum bytes of state-directory footprint across a submitter's
    /// job directories.
    pub max_state_bytes: u64,
}

impl QuotaPolicy {
    /// Whether every limit is disabled (the default open-door policy).
    pub fn unlimited(&self) -> bool {
        *self == QuotaPolicy::default()
    }

    fn to_json(self) -> String {
        JsonValue::obj([
            (
                "max_live_jobs".to_string(),
                JsonValue::U64(self.max_live_jobs),
            ),
            (
                "max_queued_cells".to_string(),
                JsonValue::U64(self.max_queued_cells),
            ),
            (
                "max_state_bytes".to_string(),
                JsonValue::U64(self.max_state_bytes),
            ),
        ])
        .render_pretty(2)
    }

    fn from_json(text: &str) -> Result<Self, String> {
        let doc = JsonValue::parse(text).map_err(|e| e.to_string())?;
        let limit = |name: &str| -> Result<u64, String> {
            match doc.get(name) {
                None => Ok(0),
                Some(v) => v.as_u64().ok_or_else(|| format!("bad `{name}`")),
            }
        };
        Ok(Self {
            max_live_jobs: limit("max_live_jobs")?,
            max_queued_cells: limit("max_queued_cells")?,
            max_state_bytes: limit("max_state_bytes")?,
        })
    }
}

/// A handle to one job's state directory.
#[derive(Debug, Clone)]
pub struct Job {
    /// The job id (`NNNN-name`), also the directory name.
    pub id: String,
    dir: PathBuf,
}

impl Job {
    /// The job's state directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Path of the canonical spec document.
    pub fn spec_path(&self) -> PathBuf {
        self.dir.join("spec.json")
    }

    /// Path of the atomically-replaced status document.
    pub fn status_path(&self) -> PathBuf {
        self.dir.join("status.json")
    }

    /// Path of the incremental (append-safe, completion-order) results.
    pub fn cells_path(&self) -> PathBuf {
        self.dir.join("cells.csv")
    }

    /// Path of the final grid-order CSV (exists once the job is done).
    pub fn results_path(&self) -> PathBuf {
        self.dir.join("results.csv")
    }

    /// Path of the final grid-order JSON (exists once the job is done).
    pub fn results_json_path(&self) -> PathBuf {
        self.dir.join("results.json")
    }

    /// Directory of the fabric's per-family claim leases. Living inside
    /// the job directory means `remove` and `--fresh` re-submissions
    /// clean claims up with everything else.
    pub fn claims_dir(&self) -> PathBuf {
        self.dir.join("claims")
    }

    /// Path of the per-job pause sentinel (`ftsimd stop <JOB>`).
    pub fn stop_path(&self) -> PathBuf {
        self.dir.join("stop")
    }

    /// Path of the best-effort per-cell stage-profile sidecar, appended
    /// when `FTSIM_PROFILE=1` is set on the worker (`ftsimd profile`).
    pub fn profile_path(&self) -> PathBuf {
        self.dir.join("profile.csv")
    }
}

/// The daemon's persistent state directory: a queue of jobs plus the
/// graceful-shutdown sentinel.
///
/// All mutation goes through atomic filesystem operations (append-only
/// logs, write-temp-then-rename documents), so any number of `ftsimd`
/// CLI invocations can inspect the store while one daemon serves it.
#[derive(Debug, Clone)]
pub struct JobStore {
    root: PathBuf,
}

impl JobStore {
    /// Opens (creating as needed) a state directory.
    ///
    /// # Errors
    ///
    /// [`DaemonError::Io`] when the directories cannot be created.
    pub fn open(root: impl Into<PathBuf>) -> Result<Self, DaemonError> {
        let root = root.into();
        ftsim_chaos::io()
            .create_dir_all(fp::STORE_STATE_CREATE, &root.join("jobs"))
            .map_err(io_err(format!("creating state dir {}", root.display())))?;
        Ok(Self { root })
    }

    /// The state directory root.
    pub fn root(&self) -> &Path {
        &self.root
    }

    fn jobs_dir(&self) -> PathBuf {
        self.root.join("jobs")
    }

    fn stop_path(&self) -> PathBuf {
        self.root.join("stop")
    }

    /// Path of the bound-HTTP-address document written by
    /// `serve --listen` (how clients and tests discover a `:0` bind).
    pub fn http_addr_path(&self) -> PathBuf {
        self.root.join("http.addr")
    }

    /// Path of the persisted admission-control policy.
    pub fn quota_path(&self) -> PathBuf {
        self.root.join("quota.json")
    }

    /// Directory of the per-process NDJSON trace journals (`ftsimd
    /// trace`, `GET /trace`). One file per fabric owner; merged on read.
    pub fn trace_dir(&self) -> PathBuf {
        self.root.join("trace")
    }

    /// Loads the admission-control policy; a missing file means no
    /// limits.
    ///
    /// # Errors
    ///
    /// [`DaemonError::Io`] or [`DaemonError::Corrupt`] — a policy that
    /// exists but does not parse must fail loudly rather than silently
    /// dropping the operator's limits.
    pub fn quota_policy(&self) -> Result<QuotaPolicy, DaemonError> {
        let path = self.quota_path();
        let text = match ftsim_chaos::io().read_to_string(fp::STORE_QUOTA_READ, &path) {
            Ok(text) => text,
            Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(QuotaPolicy::default()),
            Err(e) => return Err(io_err(format!("reading {}", path.display()))(e)),
        };
        QuotaPolicy::from_json(&text).map_err(|message| DaemonError::Corrupt { path, message })
    }

    /// Persists the admission-control policy atomically.
    ///
    /// # Errors
    ///
    /// [`DaemonError::Io`].
    pub fn set_quota_policy(&self, policy: &QuotaPolicy) -> Result<(), DaemonError> {
        write_atomic(
            fp::STORE_QUOTA_WRITE,
            &self.quota_path(),
            policy.to_json().as_bytes(),
        )
    }

    /// Admission control for a new job: rejects the submission when the
    /// submitter's aggregate footprint (live jobs, queued cells including
    /// the incoming grid, state-directory bytes) would exceed the
    /// persisted [`QuotaPolicy`]. Attach-to-existing is never gated — it
    /// adds no state.
    fn admit(&self, spec: &JobSpec, new_cells: u64, jobs: &[Job]) -> Result<(), DaemonError> {
        let policy = self.quota_policy()?;
        if policy.unlimited() {
            return Ok(());
        }
        let mut live_jobs = 0u64;
        let mut queued_cells = new_cells;
        let mut state_bytes = 0u64;
        for job in jobs {
            let Ok(existing) = self.load_spec(job) else {
                // A specless job dir (crash mid-submit) is parked failed;
                // it cannot be attributed to anyone and never counts.
                continue;
            };
            if existing.submitter != spec.submitter {
                continue;
            }
            state_bytes = state_bytes.saturating_add(dir_size(job.dir()));
            match self.load_status(job) {
                Ok(status) if status.terminal() => {}
                Ok(status) => {
                    live_jobs += 1;
                    queued_cells =
                        queued_cells.saturating_add(
                            status.cells_total.saturating_sub(status.cells_done) as u64,
                        );
                }
                // An unreadable status is conservatively live: the
                // scheduler will rebuild it, and under-admitting beats
                // letting a tenant smuggle work past a corrupt file.
                Err(_) => live_jobs += 1,
            }
        }
        let over = |reason: String| {
            Err(DaemonError::QuotaExceeded {
                submitter: spec.submitter.clone(),
                reason,
                retry_after_secs: QUOTA_RETRY_AFTER_SECS,
            })
        };
        if policy.max_live_jobs > 0 && live_jobs >= policy.max_live_jobs {
            return over(format!(
                "{live_jobs} live jobs at the limit of {}",
                policy.max_live_jobs
            ));
        }
        if policy.max_queued_cells > 0 && queued_cells > policy.max_queued_cells {
            return over(format!(
                "{queued_cells} queued cells (including this grid) over the limit of {}",
                policy.max_queued_cells
            ));
        }
        if policy.max_state_bytes > 0 && state_bytes >= policy.max_state_bytes {
            return over(format!(
                "{state_bytes} state bytes at the limit of {}",
                policy.max_state_bytes
            ));
        }
        Ok(())
    }

    /// Submits a job, or **attaches** to an existing one: if some job in
    /// the store has a byte-identical canonical spec, its id is returned
    /// with `created == false` instead of duplicating the work (this is
    /// what makes re-running a submission script incremental). Returns
    /// `(job_id, created)`.
    ///
    /// # Errors
    ///
    /// [`DaemonError::Spec`]/[`DaemonError::Experiment`] when the spec
    /// does not resolve to a valid grid (rejected at submit time, not
    /// discovered mid-queue), or [`DaemonError::Io`].
    pub fn submit(&self, spec: &JobSpec) -> Result<(String, bool), DaemonError> {
        // Reject unrunnable jobs now, while the submitter is watching.
        let cells_total = spec.to_experiment()?.identities()?.len();
        let canonical = spec.to_json();

        let jobs = self.jobs()?;
        for job in &jobs {
            // A job whose spec cannot be read (crash mid-submit, or the
            // spec was quarantined) never matches; it must not block
            // every future submission.
            let Ok(existing) =
                ftsim_chaos::io().read_to_string(fp::STORE_READ_SPEC, &job.spec_path())
            else {
                continue;
            };
            if existing == canonical {
                // Re-submitting a paused job un-pauses it: attaching is
                // the explicit "I want this to run" signal.
                self.clear_job_stop(job)?;
                return Ok((job.id.clone(), false));
            }
        }

        // Admission control: a brand-new job must fit its submitter's
        // quota (attaching, above, adds no state and is always allowed).
        self.admit(spec, cells_total as u64, &jobs)?;

        let next = jobs
            .iter()
            .filter_map(|j| j.id.split('-').next()?.parse::<u64>().ok())
            .max()
            .unwrap_or(0)
            + 1;
        // Claim the id with an exclusive `create_dir`: a concurrent
        // submitter racing for the same number loses the create and we
        // retry with the next one, instead of both writing into one
        // directory.
        let job = 'claimed: {
            for attempt in 0..64u64 {
                let id = format!("{:04}-{}", next + attempt, slug(&spec.name));
                let dir = self.jobs_dir().join(&id);
                match ftsim_chaos::io().create_dir(fp::STORE_JOB_DIR_CREATE, &dir) {
                    Ok(()) => break 'claimed Job { id, dir },
                    Err(e) if e.kind() == io::ErrorKind::AlreadyExists => continue,
                    Err(e) => return Err(io_err(format!("creating {}", dir.display()))(e)),
                }
            }
            return Err(DaemonError::Io {
                context: "allocating a job id".to_string(),
                source: io::Error::new(io::ErrorKind::AlreadyExists, "64 consecutive ids taken"),
            });
        };
        let id = job.id.clone();
        // Atomic temp+rename: a crash mid-submit leaves either no spec (an
        // empty dir the scheduler ignores) or a complete one — never a
        // torn spec that would wedge the queue.
        write_atomic(fp::STORE_WRITE_SPEC, &job.spec_path(), canonical.as_bytes())?;
        self.write_status(&job, &JobStatus::queued(cells_total))?;
        Ok((id, true))
    }

    /// Removes a job and all its state (spec, streamed and final
    /// results). Used by `--fresh` re-submissions.
    ///
    /// # Errors
    ///
    /// [`DaemonError::NoSuchJob`] or [`DaemonError::Io`].
    pub fn remove(&self, id: &str) -> Result<(), DaemonError> {
        let job = self.job(id)?;
        ftsim_chaos::io()
            .remove_dir_all(fp::STORE_REMOVE_JOB, job.dir())
            .map_err(io_err(format!("removing {}", job.dir().display())))
    }

    /// All jobs, sorted by id (submission order).
    ///
    /// # Errors
    ///
    /// [`DaemonError::Io`] when the jobs directory is unreadable.
    pub fn jobs(&self) -> Result<Vec<Job>, DaemonError> {
        let dir = self.jobs_dir();
        let mut jobs = Vec::new();
        let entries = ftsim_chaos::io()
            .list_dir(fp::STORE_LIST_JOBS, &dir)
            .map_err(io_err(format!("listing {}", dir.display())))?;
        for path in entries {
            if !path.is_dir() {
                continue;
            }
            if let Some(id) = path.file_name().and_then(|n| n.to_str()) {
                jobs.push(Job {
                    id: id.to_string(),
                    dir: path.clone(),
                });
            }
        }
        jobs.sort_by(|a, b| a.id.cmp(&b.id));
        Ok(jobs)
    }

    /// Looks one job up by id.
    ///
    /// # Errors
    ///
    /// [`DaemonError::NoSuchJob`] when absent.
    pub fn job(&self, id: &str) -> Result<Job, DaemonError> {
        let dir = self.jobs_dir().join(id);
        if !dir.is_dir() {
            return Err(DaemonError::NoSuchJob(id.to_string()));
        }
        Ok(Job {
            id: id.to_string(),
            dir,
        })
    }

    /// Loads a job's spec.
    ///
    /// # Errors
    ///
    /// [`DaemonError::Io`] or [`DaemonError::Spec`].
    pub fn load_spec(&self, job: &Job) -> Result<JobSpec, DaemonError> {
        let path = job.spec_path();
        let text = ftsim_chaos::io()
            .read_to_string(fp::STORE_READ_SPEC, &path)
            .map_err(io_err(format!("reading {}", path.display())))?;
        Ok(JobSpec::parse(&text)?)
    }

    /// Loads a job's status document.
    ///
    /// # Errors
    ///
    /// [`DaemonError::Io`] or [`DaemonError::Corrupt`].
    pub fn load_status(&self, job: &Job) -> Result<JobStatus, DaemonError> {
        let path = job.status_path();
        let text = ftsim_chaos::io()
            .read_to_string(fp::STORE_READ_STATUS, &path)
            .map_err(io_err(format!("reading {}", path.display())))?;
        JobStatus::from_json(&text).map_err(|message| DaemonError::Corrupt { path, message })
    }

    /// Replaces a job's status document atomically (write temp, rename).
    ///
    /// Lifecycle timestamps are maintained here so no caller can forget
    /// them: a zero `created_unix_ms` inherits the previous status's
    /// stamp (rebuilds must not reset the TTL clock), and the first
    /// transition into a terminal state stamps `finished_unix_ms`.
    ///
    /// # Errors
    ///
    /// [`DaemonError::Io`].
    pub fn write_status(&self, job: &Job, status: &JobStatus) -> Result<(), DaemonError> {
        let mut status = status.clone();
        if status.created_unix_ms == 0 || (status.terminal() && status.finished_unix_ms == 0) {
            let prior = self.load_status(job).ok();
            if status.created_unix_ms == 0 {
                status.created_unix_ms = prior
                    .as_ref()
                    .map(|p| p.created_unix_ms)
                    .filter(|&ms| ms != 0)
                    .unwrap_or_else(|| ftsim_chaos::io().now_ms());
            }
            if status.terminal() && status.finished_unix_ms == 0 {
                status.finished_unix_ms = prior
                    .as_ref()
                    .map(|p| p.finished_unix_ms)
                    .filter(|&ms| ms != 0)
                    .unwrap_or_else(|| ftsim_chaos::io().now_ms());
            }
        }
        write_atomic(
            fp::STORE_WRITE_STATUS,
            &job.status_path(),
            status.to_json().as_bytes(),
        )
    }

    /// Requests a graceful shutdown: the serving daemon finishes the cell
    /// in flight, re-queues the interrupted job, and exits.
    ///
    /// # Errors
    ///
    /// [`DaemonError::Io`].
    pub fn request_stop(&self) -> Result<(), DaemonError> {
        ftsim_chaos::io()
            .write_file(
                fp::STORE_SENTINEL_WRITE,
                &self.stop_path(),
                b"stop requested\n",
            )
            .map_err(io_err(format!("writing {}", self.stop_path().display())))
    }

    /// Whether a graceful shutdown has been requested.
    pub fn stop_requested(&self) -> bool {
        self.stop_path().exists()
    }

    /// Clears the shutdown sentinel (done by `serve` on startup, so a
    /// stale request from a previous shutdown does not kill the new
    /// daemon immediately).
    ///
    /// # Errors
    ///
    /// [`DaemonError::Io`] (a missing sentinel is fine).
    pub fn clear_stop(&self) -> Result<(), DaemonError> {
        match ftsim_chaos::io().remove_file(fp::STORE_SENTINEL_CLEAR, &self.stop_path()) {
            Ok(()) => Ok(()),
            Err(e) if e.kind() == io::ErrorKind::NotFound => Ok(()),
            Err(e) => Err(io_err(format!("removing {}", self.stop_path().display()))(
                e,
            )),
        }
    }

    /// Pauses one job: the fabric stops claiming its families (cells in
    /// flight finish and are kept). Re-submitting the identical spec
    /// un-pauses it.
    ///
    /// # Errors
    ///
    /// [`DaemonError::Io`].
    pub fn request_job_stop(&self, job: &Job) -> Result<(), DaemonError> {
        ftsim_chaos::io()
            .write_file(fp::STORE_SENTINEL_WRITE, &job.stop_path(), b"paused\n")
            .map_err(io_err(format!("writing {}", job.stop_path().display())))
    }

    /// Whether a job is paused.
    pub fn job_stop_requested(&self, job: &Job) -> bool {
        job.stop_path().exists()
    }

    /// Clears a job's pause sentinel.
    ///
    /// # Errors
    ///
    /// [`DaemonError::Io`] (a missing sentinel is fine).
    pub fn clear_job_stop(&self, job: &Job) -> Result<(), DaemonError> {
        match ftsim_chaos::io().remove_file(fp::STORE_SENTINEL_CLEAR, &job.stop_path()) {
            Ok(()) => Ok(()),
            Err(e) if e.kind() == io::ErrorKind::NotFound => Ok(()),
            Err(e) => Err(io_err(format!("removing {}", job.stop_path().display()))(e)),
        }
    }

    /// The directory corrupt state files are moved into.
    pub fn quarantine_dir(&self) -> PathBuf {
        self.root.join("quarantine")
    }

    /// Moves a corrupt state file out of the way instead of letting it
    /// wedge the scheduler: `path` is renamed into
    /// `<state>/quarantine/` (name-mangled to stay unique) and a
    /// `.reason` sidecar records why. Returns the quarantined path.
    ///
    /// The move is a same-filesystem rename, so the evidence is
    /// preserved byte-for-byte for post-mortems while the live tree is
    /// clean again.
    ///
    /// # Errors
    ///
    /// [`DaemonError::Io`] — including when `path` no longer exists
    /// (quarantine races are possible between fabric peers; callers
    /// treat `NotFound` as "a peer got there first").
    pub fn quarantine(&self, path: &Path, reason: &str) -> Result<PathBuf, DaemonError> {
        let env = ftsim_chaos::io();
        let qdir = self.quarantine_dir();
        env.create_dir_all(fp::STORE_QUARANTINE, &qdir)
            .map_err(io_err(format!("creating {}", qdir.display())))?;
        // Mangle the path relative to the state root into one flat name:
        // jobs/0003-x/status.json → jobs__0003-x__status.json.
        let rel = path.strip_prefix(&self.root).unwrap_or(path);
        let mut base = String::new();
        for comp in rel.components() {
            if !base.is_empty() {
                base.push_str("__");
            }
            base.push_str(&comp.as_os_str().to_string_lossy().replace(['/', '\\'], "_"));
        }
        // Destination names are unconditionally unique: process id plus a
        // monotonic counter. A check-then-rename uniquifier would race
        // between fabric peers quarantining the same path — both compute
        // the same free name and the second rename silently destroys the
        // first capture.
        static QUARANTINE_SEQ: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);
        let seq = QUARANTINE_SEQ.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        let mut dest = qdir.join(format!("{base}.q{}-{seq}", std::process::id()));
        // Belt and braces against pid reuse across reboots: the counter
        // makes same-process collisions impossible, so any survivor here
        // is from a dead process and bumping past it is safe.
        let mut n = 0u32;
        while dest.exists() {
            n += 1;
            dest = qdir.join(format!("{base}.q{}-{seq}.{n}", std::process::id()));
        }
        env.rename(fp::STORE_QUARANTINE, path, &dest)
            .map_err(io_err(format!(
                "quarantining {} to {}",
                path.display(),
                dest.display()
            )))?;
        let reason_path = PathBuf::from(format!("{}.reason", dest.display()));
        // Best-effort: losing the reason note must not fail the recovery
        // path that called us.
        let note = format!("{reason}\noriginal: {}\n", path.display());
        let _ = env.write_file(fp::STORE_QUARANTINE, &reason_path, note.as_bytes());
        Ok(dest)
    }

    /// Number of quarantined state files (excluding `.reason` sidecars).
    /// Zero when the quarantine directory does not exist.
    pub fn quarantined_count(&self) -> usize {
        ftsim_chaos::io()
            .list_dir(fp::STORE_QUARANTINE, &self.quarantine_dir())
            .map(|entries| {
                entries
                    .iter()
                    .filter(|p| p.extension().map(|e| e != "reason").unwrap_or(true))
                    .count()
            })
            .unwrap_or(0)
    }
}

/// Replaces `path` atomically: write a sibling temp file, fsync, rename.
/// The temp name is unique per call (process id + counter), so
/// concurrent writers — e.g. two worker threads bumping a job's status —
/// never truncate each other's in-flight temp file; last rename wins
/// with complete contents either way.
///
/// Routed through the [`ftsim_chaos::IoEnv`] under `site`, so chaos
/// plans can tear the temp write or drop the rename at any caller.
pub(crate) fn write_atomic(site: &str, path: &Path, contents: &[u8]) -> Result<(), DaemonError> {
    ftsim_chaos::io()
        .write_atomic(site, path, contents)
        .map_err(io_err(format!("replacing {}", path.display())))
}

/// `Retry-After` hint handed to over-quota submitters: long enough for a
/// scheduler pass to finish cells or a GC pass to reclaim space, short
/// enough that a polite client retries within the same session.
pub(crate) const QUOTA_RETRY_AFTER_SECS: u64 = 30;

/// Total bytes under `dir`, recursively. Best-effort: entries that vanish
/// or error mid-walk count as zero — admission control must not fail a
/// submit because a sibling job was being finalized concurrently.
pub(crate) fn dir_size(dir: &Path) -> u64 {
    let Ok(entries) = std::fs::read_dir(dir) else {
        return 0;
    };
    let mut total = 0u64;
    for entry in entries.flatten() {
        let Ok(meta) = entry.metadata() else { continue };
        if meta.is_dir() {
            total = total.saturating_add(dir_size(&entry.path()));
        } else {
            total = total.saturating_add(meta.len());
        }
    }
    total
}

/// Squashes a job name into a filesystem-safe slug.
fn slug(name: &str) -> String {
    let mut out = String::with_capacity(name.len());
    for c in name.chars() {
        if c.is_ascii_alphanumeric() {
            out.push(c.to_ascii_lowercase());
        } else if (c == '-' || c == '_' || c.is_whitespace()) && !out.ends_with('-') {
            out.push('-');
        }
    }
    let out = out.trim_matches('-').to_string();
    if out.is_empty() {
        "job".to_string()
    } else {
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_store(tag: &str) -> JobStore {
        let dir = std::env::temp_dir().join(format!("ftsimd-store-{tag}-{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        JobStore::open(dir).unwrap()
    }

    fn small_spec(name: &str) -> JobSpec {
        let mut spec = JobSpec::new(name);
        spec.workloads = vec!["gcc".to_string()];
        spec.models = vec!["SS-1".to_string()];
        spec.budgets = vec![1_000];
        spec
    }

    #[test]
    fn submit_attach_and_remove() {
        let store = temp_store("submit");
        let (id, created) = store.submit(&small_spec("My Job!")).unwrap();
        assert!(created);
        assert_eq!(id, "0001-my-job");

        // Identical spec attaches instead of duplicating.
        let (again, created) = store.submit(&small_spec("My Job!")).unwrap();
        assert!(!created);
        assert_eq!(again, id);

        // A different spec gets the next id.
        let (other, created) = store.submit(&small_spec("other")).unwrap();
        assert!(created);
        assert_eq!(other, "0002-other");

        let status = store.load_status(&store.job(&id).unwrap()).unwrap();
        assert_eq!(status.state, JobState::Queued);
        assert_eq!(status.cells_total, 1);

        store.remove(&id).unwrap();
        assert!(matches!(store.job(&id), Err(DaemonError::NoSuchJob(_))));
        std::fs::remove_dir_all(store.root()).ok();
    }

    #[test]
    fn unrunnable_specs_are_rejected_at_submit() {
        let store = temp_store("reject");
        let mut bad = small_spec("bad");
        bad.workloads = vec!["doom".to_string()];
        assert!(matches!(
            store.submit(&bad),
            Err(DaemonError::Spec(SpecError::UnknownWorkload(_)))
        ));
        let mut bad = small_spec("bad2");
        bad.fault_rates_pm = vec![-3.0];
        assert!(matches!(
            store.submit(&bad),
            Err(DaemonError::Experiment(_))
        ));
        assert!(store.jobs().unwrap().is_empty(), "nothing may be enqueued");
        std::fs::remove_dir_all(store.root()).ok();
    }

    #[test]
    fn status_round_trips_and_stop_sentinel_works() {
        let store = temp_store("status");
        let (id, _) = store.submit(&small_spec("s")).unwrap();
        let job = store.job(&id).unwrap();
        let status = JobStatus {
            state: JobState::Running,
            cells_total: 8,
            cells_done: 3,
            error: String::new(),
            created_unix_ms: 0,
            finished_unix_ms: 0,
        };
        store.write_status(&job, &status).unwrap();
        let loaded = store.load_status(&job).unwrap();
        assert_eq!(loaded.state, status.state);
        assert_eq!(loaded.cells_total, status.cells_total);
        assert_eq!(loaded.cells_done, status.cells_done);
        // write_status inherits the submit-time creation stamp rather
        // than letting a caller's zero reset the TTL clock...
        assert!(loaded.created_unix_ms > 0, "created stamp must survive");
        // ...and a live job has no finished stamp yet.
        assert_eq!(loaded.finished_unix_ms, 0);
        assert!(!loaded.terminal());

        // First terminal transition stamps finished_unix_ms exactly once.
        let mut done = loaded.clone();
        done.state = JobState::Done;
        store.write_status(&job, &done).unwrap();
        let sealed = store.load_status(&job).unwrap();
        assert!(sealed.terminal());
        assert!(sealed.finished_unix_ms >= sealed.created_unix_ms);
        store.write_status(&job, &sealed).unwrap();
        assert_eq!(
            store.load_status(&job).unwrap().finished_unix_ms,
            sealed.finished_unix_ms,
            "finished stamp must not move on rewrite"
        );

        assert!(!store.stop_requested());
        store.request_stop().unwrap();
        assert!(store.stop_requested());
        store.clear_stop().unwrap();
        store.clear_stop().unwrap(); // idempotent
        assert!(!store.stop_requested());
        std::fs::remove_dir_all(store.root()).ok();
    }

    #[test]
    fn quarantine_moves_file_and_writes_reason() {
        let store = temp_store("quarantine");
        let (id, _) = store.submit(&small_spec("q")).unwrap();
        let job = store.job(&id).unwrap();
        std::fs::write(job.status_path(), "{ not json").unwrap();
        assert_eq!(store.quarantined_count(), 0);

        let dest = store
            .quarantine(&job.status_path(), "status.json does not parse")
            .unwrap();
        assert!(!job.status_path().exists(), "file must be moved away");
        assert_eq!(std::fs::read_to_string(&dest).unwrap(), "{ not json");
        let reason = std::fs::read_to_string(format!("{}.reason", dest.display())).unwrap();
        assert!(reason.contains("does not parse"));
        assert_eq!(store.quarantined_count(), 1);

        // A second file with the same mangled name stays distinct.
        std::fs::write(job.status_path(), "also bad").unwrap();
        let dest2 = store.quarantine(&job.status_path(), "again").unwrap();
        assert_ne!(dest, dest2);
        assert_eq!(store.quarantined_count(), 2);
        std::fs::remove_dir_all(store.root()).ok();
    }

    #[test]
    fn quota_policy_round_trips_and_defaults_open() {
        let store = temp_store("quota-rt");
        // No quota.json on disk: everything is unlimited.
        assert!(store.quota_policy().unwrap().unlimited());

        let policy = QuotaPolicy {
            max_live_jobs: 2,
            max_queued_cells: 100,
            max_state_bytes: 1 << 20,
        };
        store.set_quota_policy(&policy).unwrap();
        assert_eq!(store.quota_policy().unwrap(), policy);

        // A corrupt policy file fails loudly instead of silently lifting
        // every limit.
        std::fs::write(store.quota_path(), "{ nope").unwrap();
        assert!(matches!(
            store.quota_policy(),
            Err(DaemonError::Corrupt { .. })
        ));
        std::fs::remove_dir_all(store.root()).ok();
    }

    #[test]
    fn over_quota_submit_rejected_while_in_quota_peer_proceeds() {
        let store = temp_store("quota-enforce");
        store
            .set_quota_policy(&QuotaPolicy {
                max_live_jobs: 1,
                max_queued_cells: 0,
                max_state_bytes: 0,
            })
            .unwrap();

        let mut first = small_spec("alice-1");
        first.submitter = "alice".to_string();
        store.submit(&first).unwrap();

        // Alice is at her live-job limit: a second distinct job is turned
        // away with the structured quota error...
        let mut second = small_spec("alice-2");
        second.submitter = "alice".to_string();
        let err = store.submit(&second).unwrap_err();
        match &err {
            DaemonError::QuotaExceeded {
                submitter,
                retry_after_secs,
                ..
            } => {
                assert_eq!(submitter, "alice");
                assert!(*retry_after_secs > 0);
            }
            other => panic!("expected QuotaExceeded, got {other:?}"),
        }

        // ...but re-submitting (attaching to) her existing job is free,
        let (_, created) = store.submit(&first).unwrap();
        assert!(!created, "attach must bypass admission");
        // and an unrelated tenant is not collateral damage.
        let mut bob = small_spec("bob-1");
        bob.submitter = "bob".to_string();
        assert!(store.submit(&bob).is_ok());
        std::fs::remove_dir_all(store.root()).ok();
    }

    #[test]
    fn quota_frees_up_when_jobs_turn_terminal() {
        let store = temp_store("quota-free");
        store
            .set_quota_policy(&QuotaPolicy {
                max_live_jobs: 1,
                max_queued_cells: 0,
                max_state_bytes: 0,
            })
            .unwrap();
        let mut first = small_spec("c-1");
        first.submitter = "carol".to_string();
        let (id, _) = store.submit(&first).unwrap();

        let mut second = small_spec("c-2");
        second.submitter = "carol".to_string();
        assert!(matches!(
            store.submit(&second),
            Err(DaemonError::QuotaExceeded { .. })
        ));

        // Finish the first job: the slot is released.
        let job = store.job(&id).unwrap();
        let mut status = store.load_status(&job).unwrap();
        status.state = JobState::Done;
        store.write_status(&job, &status).unwrap();
        assert!(store.submit(&second).is_ok());
        std::fs::remove_dir_all(store.root()).ok();
    }

    #[test]
    fn queued_cell_and_state_byte_quotas_enforced() {
        let store = temp_store("quota-cells");
        // The incoming grid itself counts against max_queued_cells.
        store
            .set_quota_policy(&QuotaPolicy {
                max_live_jobs: 0,
                max_queued_cells: 2,
                max_state_bytes: 0,
            })
            .unwrap();
        let mut wide = small_spec("wide");
        wide.submitter = "dave".to_string();
        wide.budgets = vec![1_000, 2_000, 4_000]; // 3 cells > limit of 2
        let err = store.submit(&wide).unwrap_err();
        assert!(
            err.to_string().contains("queued cells"),
            "unexpected: {err}"
        );

        // State-byte quota: any existing footprint at/over the cap blocks
        // new jobs from the same submitter.
        store
            .set_quota_policy(&QuotaPolicy {
                max_live_jobs: 0,
                max_queued_cells: 0,
                max_state_bytes: 1,
            })
            .unwrap();
        let mut one = small_spec("dave-1");
        one.submitter = "dave".to_string();
        store.submit(&one).unwrap(); // first job: zero prior footprint
        let mut two = small_spec("dave-2");
        two.submitter = "dave".to_string();
        assert!(matches!(
            store.submit(&two),
            Err(DaemonError::QuotaExceeded { .. })
        ));
        std::fs::remove_dir_all(store.root()).ok();
    }
}
