//! Graceful-degradation end-to-end tests: corrupt state files are
//! quarantined (not fatal), a full disk pauses the job instead of
//! crash-looping, and the `--remote` client's retry/backoff survives a
//! lossy transport — all without the daemon ever panicking.

use ftsim::harness::to_csv;
use ftsim_daemon::JobSpec;
use std::path::{Path, PathBuf};
use std::process::{Command, Stdio};
use std::time::{Duration, Instant};

const SPEC: &str = r#"
name = "degrade"
workloads = ["gcc"]
models = ["SS-1", "SS-2"]
fault_rates = [0.0, 5000.0]
budgets = [1200]
seeds = [5]
"#;

fn ftsimd() -> Command {
    let mut cmd = Command::new(env!("CARGO_BIN_EXE_ftsimd"));
    cmd.env_remove("FTSIM_CHAOS");
    cmd
}

fn state_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("ftsimd-degrade-{tag}-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn run_ok(state: &Path, args: &[&str]) -> String {
    let out = ftsimd()
        .args(args)
        .args(["--state", state.to_str().unwrap()])
        .output()
        .expect("spawn ftsimd");
    assert!(
        out.status.success(),
        "ftsimd {args:?} failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    String::from_utf8(out.stdout).expect("utf-8 stdout")
}

fn drain(state: &Path, chaos: Option<&str>) {
    let mut cmd = ftsimd();
    cmd.args([
        "serve",
        "--drain",
        "--workers",
        "1",
        "--poll-ms",
        "25",
        "--lease-ms",
        "300",
        "--state",
        state.to_str().unwrap(),
    ])
    .stdout(Stdio::null())
    .stderr(Stdio::null());
    if let Some(plan) = chaos {
        cmd.env("FTSIM_CHAOS", plan);
    }
    let status = cmd.status().expect("spawn drain");
    assert!(
        status.success(),
        "drain must exit cleanly (chaos={chaos:?})"
    );
}

fn expected_csv() -> String {
    to_csv(
        &JobSpec::parse(SPEC)
            .unwrap()
            .to_experiment()
            .unwrap()
            .run()
            .unwrap(),
    )
}

/// Corrupt spec, corrupt status, and garbage lease debris: the healthy
/// job completes byte-identical, the broken one is parked `failed`, and
/// all three pieces of evidence land in `<state>/quarantine/`.
#[test]
fn corrupt_state_is_quarantined_and_healthy_jobs_complete() {
    let state = state_dir("quarantine");
    let spec_path = state.join("job.toml");
    std::fs::write(&spec_path, SPEC).unwrap();
    let healthy = run_ok(&state, &["submit", spec_path.to_str().unwrap()])
        .trim()
        .to_string();

    let broken_spec = SPEC.replace("degrade", "broken");
    std::fs::write(&spec_path, &broken_spec).unwrap();
    let broken = run_ok(&state, &["submit", spec_path.to_str().unwrap()])
        .trim()
        .to_string();

    // Scribble on the broken job's spec and the healthy job's status,
    // and drop unparseable debris where a claim lease should be.
    let jobs = state.join("jobs");
    std::fs::write(jobs.join(&broken).join("spec.json"), "{{{ not json").unwrap();
    std::fs::write(jobs.join(&healthy).join("status.json"), "garbage").unwrap();
    let claims = jobs.join(&healthy).join("claims");
    std::fs::create_dir_all(&claims).unwrap();
    std::fs::write(claims.join("gcc__1200__SS-1.json"), "not a lease").unwrap();

    // Debris older than 2x lease is steal-eligible; backdating is not
    // possible with a fresh file, so give the lease window time to age
    // out during the drain (300 ms lease, drain polls at 25 ms).
    drain(&state, None);

    let results = jobs.join(&healthy).join("results.csv");
    assert_eq!(
        std::fs::read_to_string(&results).unwrap(),
        expected_csv(),
        "healthy job must complete byte-identical despite the corruption"
    );
    let status = run_ok(&state, &["status", &broken]);
    assert!(
        status.contains("state:  failed"),
        "broken job parked failed:\n{status}"
    );

    let quarantine = state.join("quarantine");
    let quarantined: Vec<_> = std::fs::read_dir(&quarantine)
        .expect("quarantine dir exists")
        .filter_map(|e| e.ok())
        .map(|e| e.file_name().to_string_lossy().into_owned())
        .collect();
    assert!(
        quarantined.iter().any(|n| n.contains("spec")),
        "corrupt spec quarantined: {quarantined:?}"
    );
    assert!(
        quarantined.iter().any(|n| n.contains("status")),
        "corrupt status quarantined: {quarantined:?}"
    );
    assert!(
        quarantined.iter().any(|n| n.ends_with(".reason")),
        "reason sidecars written: {quarantined:?}"
    );
    std::fs::remove_dir_all(&state).ok();
}

/// ENOSPC on the first cell append pauses the job with a visible
/// status; freeing space (dropping the plan) and re-submitting resumes
/// to byte-identical results.
#[test]
fn enospc_pauses_the_job_and_resubmit_resumes() {
    let state = state_dir("enospc");
    let spec_path = state.join("job.toml");
    std::fs::write(&spec_path, SPEC).unwrap();
    let job_id = run_ok(&state, &["submit", spec_path.to_str().unwrap()])
        .trim()
        .to_string();

    // Every cells.csv append fails with ENOSPC: the daemon must pause
    // the job (not crash, not spin) and still drain to a clean exit.
    drain(&state, Some("3:enospc@csv.append=1"));

    let status = run_ok(&state, &["status", &job_id]);
    assert!(
        status.contains("paused: no space left on device"),
        "pause reason visible in status:\n{status}"
    );
    assert!(
        !state
            .join("jobs")
            .join(&job_id)
            .join("results.csv")
            .exists(),
        "no results while paused"
    );

    // "Free space" (no chaos plan) and re-submit the identical spec:
    // attaching un-pauses, and the drain completes the sweep.
    let again = run_ok(&state, &["submit", spec_path.to_str().unwrap()]);
    assert_eq!(again.trim(), job_id, "re-submit attaches to the paused job");
    drain(&state, None);
    let results = state.join("jobs").join(&job_id).join("results.csv");
    assert_eq!(std::fs::read_to_string(&results).unwrap(), expected_csv());
    std::fs::remove_dir_all(&state).ok();
}

/// The `--remote` client completes submit → status → results against a
/// clean server while its own transport drops ~30% of sends and ~20%
/// of receives: exponential-backoff retry absorbs the loss.
#[test]
fn remote_client_survives_a_lossy_transport() {
    let state = state_dir("lossy");
    let spec_path = state.join("job.toml");
    std::fs::write(&spec_path, SPEC).unwrap();

    let mut server = ftsimd()
        .args([
            "serve",
            "--listen",
            "127.0.0.1:0",
            "--poll-ms",
            "25",
            "--state",
            state.to_str().unwrap(),
        ])
        .stdout(Stdio::null())
        .stderr(Stdio::null())
        .spawn()
        .expect("spawn serving daemon");

    // The bound address lands in <state>/http.addr once the server is up.
    let addr_path = state.join("http.addr");
    let deadline = Instant::now() + Duration::from_secs(30);
    let addr = loop {
        if let Ok(addr) = std::fs::read_to_string(&addr_path) {
            break addr;
        }
        assert!(Instant::now() < deadline, "server never advertised");
        std::thread::sleep(Duration::from_millis(25));
    };

    let lossy = "7:eio@http.client.send=0.3,eio@http.client.recv=0.2";
    let remote_ok = |args: &[&str]| -> String {
        let out = ftsimd()
            .args(args)
            .args(["--remote", addr.trim()])
            .env("FTSIM_CHAOS", lossy)
            .output()
            .expect("spawn remote ftsimd");
        assert!(
            out.status.success(),
            "remote ftsimd {args:?} failed: {}",
            String::from_utf8_lossy(&out.stderr)
        );
        String::from_utf8(out.stdout).expect("utf-8 stdout")
    };

    let job_id = remote_ok(&["submit", spec_path.to_str().unwrap()])
        .trim()
        .to_string();

    let deadline = Instant::now() + Duration::from_secs(120);
    loop {
        let status = remote_ok(&["status", &job_id]);
        if status.contains("state:  done") {
            break;
        }
        assert!(
            Instant::now() < deadline,
            "job never finished; last status:\n{status}"
        );
        std::thread::sleep(Duration::from_millis(100));
    }

    let results = remote_ok(&["results", &job_id]);
    assert_eq!(
        results,
        expected_csv(),
        "lossy-transport results match the one-shot grid"
    );

    // Shut the server down over the same lossy transport.
    remote_ok(&["stop"]);
    let deadline = Instant::now() + Duration::from_secs(30);
    loop {
        if let Some(code) = server.try_wait().expect("poll server") {
            assert!(code.success(), "server exits cleanly on remote stop");
            break;
        }
        if Instant::now() >= deadline {
            server.kill().ok();
            panic!("server ignored remote stop");
        }
        std::thread::sleep(Duration::from_millis(50));
    }
    std::fs::remove_dir_all(&state).ok();
}
