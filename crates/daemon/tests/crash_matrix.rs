//! The crash matrix: for **every** registered persistence failpoint,
//! run a two-family grid under `FTSIM_CHAOS=<seed>:abort@<site>#1` —
//! killing the daemon dead at that exact operation — then restart it
//! clean with `serve --drain` and require the final results to be
//! byte-identical to a one-shot `Experiment::grid()` of the same spec.
//!
//! Sites a clean drain never reaches (quarantine, steal, remove) simply
//! complete on the first pass; the byte-identity assertion holds either
//! way, which is the point: no failpoint in the catalog can corrupt a
//! result, only delay it.

use ftsim::harness::to_csv;
use ftsim_daemon::{failpoints, JobSpec};
use std::path::{Path, PathBuf};
use std::process::Command;

/// Two (workload, model) families, two fault rates: small enough to
/// re-run ~25 times, wide enough that every store/fabric/csv site is
/// exercised along the way.
const SPEC: &str = r#"
name = "crash-matrix"
workloads = ["gcc"]
models = ["SS-1", "SS-2"]
fault_rates = [0.0, 5000.0]
budgets = [1200]
seeds = [11]
"#;

fn ftsimd() -> Command {
    Command::new(env!("CARGO_BIN_EXE_ftsimd"))
}

fn state_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("ftsimd-chaos-{tag}-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// Runs an ftsimd subcommand with a clean environment (no inherited
/// chaos), asserting success, and returns stdout.
fn run_clean(state: &Path, args: &[&str]) -> String {
    let out = ftsimd()
        .args(args)
        .args(["--state", state.to_str().unwrap()])
        .env_remove("FTSIM_CHAOS")
        .output()
        .expect("spawn ftsimd");
    assert!(
        out.status.success(),
        "ftsimd {args:?} failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    String::from_utf8(out.stdout).expect("utf-8 stdout")
}

/// Drains the queue under a chaos plan. The process is *allowed* to die
/// (that is the experiment); only spawn/reap failures are errors.
fn drain_under_chaos(state: &Path, plan: &str) {
    let status = ftsimd()
        .args([
            "serve",
            "--drain",
            "--workers",
            "1",
            "--poll-ms",
            "25",
            "--lease-ms",
            "300",
            "--state",
            state.to_str().unwrap(),
        ])
        .env("FTSIM_CHAOS", plan)
        .stdout(std::process::Stdio::null())
        .stderr(std::process::Stdio::null())
        .status()
        .expect("spawn chaos drain");
    // Aborted-by-plan (signal) and survived-to-drain are both legal.
    let _ = status;
}

fn drain_clean(state: &Path) {
    run_clean(
        state,
        &[
            "serve",
            "--drain",
            "--workers",
            "1",
            "--poll-ms",
            "25",
            "--lease-ms",
            "300",
        ],
    );
}

#[test]
fn every_registered_failpoint_survives_a_kill_and_restart() {
    let expected = to_csv(
        &JobSpec::parse(SPEC)
            .unwrap()
            .to_experiment()
            .unwrap()
            .run()
            .unwrap(),
    );

    // abort@<site>#1 for the whole catalog, plus deeper hits and
    // non-abort damage at the two highest-traffic sites: a torn row
    // append and a status rename dropped after the unlink-visible
    // moment, both mid-sweep.
    let mut plans: Vec<String> = failpoints::CATALOG
        .iter()
        .map(|f| format!("1:abort@{}#1", f.site))
        .collect();
    plans.push(format!("1:abort@{}#3", failpoints::CSV_APPEND));
    plans.push(format!("1:torn@{}#2", failpoints::CSV_APPEND));
    plans.push(format!(
        "1:drop-rename@{}#2",
        failpoints::STORE_WRITE_STATUS
    ));

    for (i, plan) in plans.iter().enumerate() {
        let state = state_dir(&format!("matrix-{i}"));
        let spec_path = state.join("job.toml");
        std::fs::write(&spec_path, SPEC).unwrap();
        let job_id = run_clean(&state, &["submit", spec_path.to_str().unwrap()])
            .trim()
            .to_string();

        drain_under_chaos(&state, plan);
        // The clean restart must finish the job no matter where the
        // chaos run died (or whether it died at all).
        drain_clean(&state);

        let results = state.join("jobs").join(&job_id).join("results.csv");
        let from_file = std::fs::read_to_string(&results)
            .unwrap_or_else(|e| panic!("[{plan}] results.csv unreadable after drain: {e}"));
        assert_eq!(
            from_file, expected,
            "[{plan}] results.csv differs from the one-shot grid"
        );
        std::fs::remove_dir_all(&state).ok();
    }
}
