//! End-to-end daemon test: submit a two-family grid job, kill the
//! serving daemon mid-sweep with SIGKILL, restart it, and require the
//! merged results to be **byte-identical** to a one-shot
//! `Experiment::grid()` run of the same spec — the daemon's load-bearing
//! guarantee (crash-safety changes cost, never records).

use ftsim::harness::to_csv;
use ftsim_daemon::JobSpec;
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

/// The job: two (workload, model) families crossed with fault rates that
/// exercise every execution path — baseline-served fault-free cells,
/// forked faulty cells, and cold-fallback cells whose first fault lands
/// before the first checkpoint.
const SPEC: &str = r#"
name = "resume-e2e"
workloads = ["fpppp", "gcc"]
models = ["SS-2", "SS-3M"]
fault_rates = [0.0, 200.0, 5000.0, 50000.0]
budgets = [4000]
seeds = [3]
oracle = "final"
checkpointing = true
threads = 2
"#;

fn ftsimd() -> Command {
    Command::new(env!("CARGO_BIN_EXE_ftsimd"))
}

fn state_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("ftsimd-e2e-{tag}-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    dir
}

/// Runs an ftsimd subcommand to completion, asserting success, and
/// returns its stdout.
fn run_ok(state: &Path, args: &[&str]) -> String {
    let out = ftsimd()
        .args(args)
        .args(["--state", state.to_str().unwrap()])
        .output()
        .expect("spawn ftsimd");
    assert!(
        out.status.success(),
        "ftsimd {args:?} failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    String::from_utf8(out.stdout).expect("utf-8 stdout")
}

/// Polls until `cells.csv` holds at least `rows` complete record rows,
/// then returns how many it saw.
fn wait_for_rows(cells: &Path, rows: usize, timeout: Duration) -> usize {
    let deadline = Instant::now() + timeout;
    loop {
        let seen = std::fs::read_to_string(cells)
            .map(|text| {
                let (records, _) = ftsim::harness::from_csv_tolerant(&text);
                records.len()
            })
            .unwrap_or(0);
        if seen >= rows {
            return seen;
        }
        assert!(
            Instant::now() < deadline,
            "timed out waiting for {rows} streamed rows in {}",
            cells.display()
        );
        std::thread::sleep(Duration::from_millis(25));
    }
}

fn kill_hard(child: &mut Child) {
    child.kill().expect("SIGKILL the daemon");
    child.wait().expect("reap the daemon");
}

#[test]
fn killed_daemon_resumes_to_byte_identical_results() {
    let state = state_dir("kill");
    let spec_path = state.join("job.toml");
    std::fs::create_dir_all(&state).unwrap();
    std::fs::write(&spec_path, SPEC).unwrap();

    let job_id = run_ok(&state, &["submit", spec_path.to_str().unwrap()])
        .trim()
        .to_string();
    assert!(job_id.ends_with("-resume-e2e"), "unexpected id `{job_id}`");

    // Re-submitting the identical spec attaches instead of duplicating.
    let again = run_ok(&state, &["submit", spec_path.to_str().unwrap()]);
    assert_eq!(again.trim(), job_id);

    // Serve in the background and SIGKILL as soon as at least one record
    // has been streamed — mid-sweep, with 15 of 16 cells outstanding.
    let mut daemon = ftsimd()
        .args(["serve", "--state", state.to_str().unwrap()])
        .stdout(Stdio::null())
        .stderr(Stdio::null())
        .spawn()
        .expect("spawn serving daemon");
    let cells = state.join("jobs").join(&job_id).join("cells.csv");
    let seen = wait_for_rows(&cells, 1, Duration::from_secs(120));
    kill_hard(&mut daemon);
    assert!(
        seen < 16,
        "daemon finished all 16 cells before the kill; the restart would prove nothing"
    );

    // The killed job must not have final results yet.
    let results = state.join("jobs").join(&job_id).join("results.csv");
    assert!(!results.exists(), "no final results before completion");

    // Restart in drain mode: the job (left `running` by the dead daemon)
    // is picked up, resumed from the streamed rows, and finished.
    run_ok(&state, &["serve", "--drain"]);

    let status = run_ok(&state, &["status", &job_id]);
    assert!(
        status.contains("state:  done"),
        "status after drain:\n{status}"
    );

    // The acceptance criterion: byte-identical to the equivalent
    // one-shot Experiment::grid() with checkpoint-forking enabled.
    let direct = JobSpec::parse(SPEC)
        .unwrap()
        .to_experiment()
        .unwrap()
        .run()
        .unwrap();
    assert!(direct.iter().any(|r| r.faults_injected > 0));
    let expected = to_csv(&direct);
    let from_file = std::fs::read_to_string(&results).unwrap();
    assert_eq!(
        from_file, expected,
        "results.csv differs from one-shot grid"
    );

    // `ftsimd results` prints the same bytes.
    let from_cli = run_ok(&state, &["results", &job_id]);
    assert_eq!(from_cli, expected);

    std::fs::remove_dir_all(&state).ok();
}

#[test]
fn stop_requeues_and_drain_finishes() {
    let state = state_dir("stop");
    let spec_path = state.join("job.toml");
    std::fs::create_dir_all(&state).unwrap();
    std::fs::write(&spec_path, SPEC).unwrap();
    let job_id = run_ok(&state, &["submit", spec_path.to_str().unwrap()])
        .trim()
        .to_string();

    // Ask for a graceful stop while the daemon sweeps: it finishes the
    // cells in flight, re-queues the job, and exits on its own.
    let mut daemon = ftsimd()
        .args(["serve", "--state", state.to_str().unwrap()])
        .stdout(Stdio::null())
        .stderr(Stdio::null())
        .spawn()
        .expect("spawn serving daemon");
    let cells = state.join("jobs").join(&job_id).join("cells.csv");
    wait_for_rows(&cells, 1, Duration::from_secs(120));
    run_ok(&state, &["stop"]);
    let exited = daemon.wait().expect("daemon exit");
    assert!(exited.success(), "graceful stop must exit cleanly");

    let status = run_ok(&state, &["status", &job_id]);
    assert!(
        status.contains("state:  queued") || status.contains("state:  done"),
        "after graceful stop:\n{status}"
    );

    run_ok(&state, &["serve", "--drain"]);
    let direct = JobSpec::parse(SPEC)
        .unwrap()
        .to_experiment()
        .unwrap()
        .run()
        .unwrap();
    let from_cli = run_ok(&state, &["results", &job_id]);
    assert_eq!(from_cli, to_csv(&direct));

    std::fs::remove_dir_all(&state).ok();
}
