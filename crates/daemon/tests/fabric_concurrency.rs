//! Multi-process fabric tests: several `ftsimd serve` processes sharing
//! one state directory must partition a job by family claims, steal the
//! leases of crashed peers, and still produce results **byte-identical**
//! to a one-shot `Experiment::grid()` — the determinism invariant makes
//! the lease protocol a throughput optimization, never a correctness
//! mechanism, and these tests hold it to that.

use ftsim::harness::to_csv;
use ftsim_daemon::JobSpec;
use std::io::{Read, Write};
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

/// Two (workload, model) families so two processes have distinct shards
/// to claim, with fault rates covering baseline, forked and cold cells.
const SPEC: &str = r#"
name = "fabric-e2e"
workloads = ["fpppp", "gcc"]
models = ["SS-2"]
fault_rates = [0.0, 200.0, 5000.0, 50000.0]
budgets = [4000]
seeds = [3]
oracle = "final"
checkpointing = true
threads = 2
"#;

fn ftsimd() -> Command {
    Command::new(env!("CARGO_BIN_EXE_ftsimd"))
}

fn state_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("ftsimd-fabric-{tag}-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    dir
}

fn run_ok(state: &Path, args: &[&str]) -> String {
    let out = ftsimd()
        .args(args)
        .args(["--state", state.to_str().unwrap()])
        .output()
        .expect("spawn ftsimd");
    assert!(
        out.status.success(),
        "ftsimd {args:?} failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    String::from_utf8(out.stdout).expect("utf-8 stdout")
}

fn submit(state: &Path, spec: &str) -> String {
    let spec_path = state.join("job.toml");
    std::fs::create_dir_all(state).unwrap();
    std::fs::write(&spec_path, spec).unwrap();
    run_ok(state, &["submit", spec_path.to_str().unwrap()])
        .trim()
        .to_string()
}

/// Spawns a serving daemon. `FTSIMD_TEST_LEASE_MODE` (set by the CI
/// tenancy job to `relaxed`, usually together with an ambient `nfs@`
/// chaos plan) selects the lease mode, so the same tests prove
/// byte-identity under both the O_EXCL and the owner-echo protocols.
fn spawn_serve(state: &Path, extra: &[&str]) -> Child {
    let mut cmd = ftsimd();
    cmd.args(["serve", "--state", state.to_str().unwrap()]);
    if let Ok(mode) = std::env::var("FTSIMD_TEST_LEASE_MODE") {
        cmd.args(["--lease-mode", &mode]);
    }
    cmd.args(extra)
        .stdout(Stdio::null())
        .stderr(Stdio::null())
        .spawn()
        .expect("spawn serving daemon")
}

/// One raw `GET /healthz` against a daemon that advertised its address
/// in `<state>/http.addr`, returning the JSON body.
fn healthz(state: &Path) -> String {
    let deadline = Instant::now() + Duration::from_secs(30);
    let addr = loop {
        if let Ok(addr) = std::fs::read_to_string(state.join("http.addr")) {
            let addr = addr.trim().to_string();
            if !addr.is_empty() {
                break addr;
            }
        }
        assert!(
            Instant::now() < deadline,
            "daemon never advertised an address"
        );
        std::thread::sleep(Duration::from_millis(25));
    };
    let mut stream = std::net::TcpStream::connect(&addr).expect("connect to daemon");
    stream
        .write_all(b"GET /healthz HTTP/1.1\r\nHost: ftsimd\r\nConnection: close\r\n\r\n")
        .expect("send request");
    let mut response = String::new();
    stream.read_to_string(&mut response).expect("read response");
    assert!(response.starts_with("HTTP/1.1 200"), "healthz: {response}");
    response
        .split_once("\r\n\r\n")
        .map(|(_, body)| body.to_string())
        .unwrap_or_default()
}

/// Polls until `cells.csv` holds at least `rows` complete record rows.
fn wait_for_rows(cells: &Path, rows: usize, timeout: Duration) -> usize {
    let deadline = Instant::now() + timeout;
    loop {
        let seen = std::fs::read_to_string(cells)
            .map(|text| ftsim::harness::from_csv_tolerant(&text).0.len())
            .unwrap_or(0);
        if seen >= rows {
            return seen;
        }
        assert!(
            Instant::now() < deadline,
            "timed out waiting for {rows} streamed rows in {}",
            cells.display()
        );
        std::thread::sleep(Duration::from_millis(25));
    }
}

fn one_shot_csv() -> String {
    let records = JobSpec::parse(SPEC)
        .unwrap()
        .to_experiment()
        .unwrap()
        .run()
        .unwrap();
    assert!(records.iter().any(|r| r.faults_injected > 0));
    to_csv(&records)
}

/// Two cooperating `serve --drain` processes on one state directory
/// split the job's families between them via claim files and finish it
/// byte-identical to the one-shot grid. Each process gets one worker so
/// neither can simply swallow the whole queue before the other starts.
#[test]
fn two_serve_processes_cooperate_to_byte_identical_results() {
    let state = state_dir("coop");
    let job_id = submit(&state, SPEC);

    let mut a = spawn_serve(&state, &["--drain", "--workers", "1"]);
    let mut b = spawn_serve(&state, &["--drain", "--workers", "1"]);
    let a_exit = a.wait().expect("first daemon exit");
    let b_exit = b.wait().expect("second daemon exit");
    assert!(
        a_exit.success() && b_exit.success(),
        "both drains exit clean"
    );

    let status = run_ok(&state, &["status", &job_id]);
    assert!(status.contains("state:  done"), "after drains:\n{status}");

    // Finalization removed the claim scaffolding with the job done.
    assert!(
        !state.join("jobs").join(&job_id).join("claims").exists(),
        "claims directory lingers after finalize"
    );

    let from_cli = run_ok(&state, &["results", &job_id]);
    assert_eq!(
        from_cli,
        one_shot_csv(),
        "cooperative results differ from one-shot grid"
    );

    std::fs::remove_dir_all(&state).ok();
}

/// SIGKILL a claim-holding daemon mid-family: its lease file survives
/// the crash, expires, and a second daemon steals the family and
/// finishes the job — byte-identical to the one-shot grid, with no cell
/// lost and none double-counted.
#[test]
fn killed_holders_lease_expires_and_a_survivor_finishes() {
    let state = state_dir("steal");
    let job_id = submit(&state, SPEC);
    let job_dir = state.join("jobs").join(&job_id);

    // Short leases so the test does not wait 30s for expiry.
    let mut holder = spawn_serve(&state, &["--lease-ms", "1500", "--listen", "127.0.0.1:0"]);
    let seen = wait_for_rows(&job_dir.join("cells.csv"), 1, Duration::from_secs(120));

    // With at least one cell streamed the holder owns a claim: healthz
    // must attribute it to the job's submitter (the default "" tenant).
    let health = healthz(&state);
    for field in [
        "\"live_claims\"",
        "\"live_claims_by_submitter\"",
        "\"watchdog_kills\"",
    ] {
        assert!(health.contains(field), "healthz missing {field}:\n{health}");
    }

    holder.kill().expect("SIGKILL the claim holder");
    holder.wait().expect("reap the claim holder");
    assert!(
        seen < 8,
        "holder finished all 8 cells before the kill; the steal would prove nothing"
    );

    // The crash left its claim file(s) behind — nothing cleaned them up.
    let leases = std::fs::read_dir(job_dir.join("claims"))
        .map(|d| d.count())
        .unwrap_or(0);
    assert!(leases > 0, "a SIGKILLed holder must leave its lease behind");

    // The survivor must wait out the dead peer's lease, steal the
    // family, resume from the streamed rows, and drain to done.
    let survivor = spawn_serve(&state, &["--drain", "--lease-ms", "1500"]);
    let exit = survivor.wait_with_output().expect("survivor daemon exit");
    assert!(exit.status.success(), "survivor drain exits clean");

    let status = run_ok(&state, &["status", &job_id]);
    assert!(status.contains("state:  done"), "after steal:\n{status}");

    let from_cli = run_ok(&state, &["results", &job_id]);
    assert_eq!(
        from_cli,
        one_shot_csv(),
        "post-steal results differ from one-shot grid"
    );

    std::fs::remove_dir_all(&state).ok();
}
