//! End-to-end HTTP API test: a `serve --listen` daemon is driven purely
//! through `ftsimd --remote <addr>` — submit, jobs, status, streamed
//! results, report and stop all travel over the socket. The client
//! processes run in an empty scratch directory that must stay empty:
//! remote verbs touch no state directory at all.

use ftsim::harness::{from_csv_tolerant, to_csv};
use ftsim_daemon::JobSpec;
use std::path::{Path, PathBuf};
use std::process::{Command, Stdio};
use std::time::{Duration, Instant};

/// One family, four cells — the CI smoke grid.
const SPEC: &str = r#"
name = "http-e2e"
workloads = ["gcc"]
models = ["SS-2"]
fault_rates = [0.0, 5000.0]
seeds = [3, 4]
budgets = [2000]
oracle = "final"
checkpointing = true
"#;

fn tmp(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("ftsimd-http-{tag}-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// Runs a remote ftsimd verb from inside `cwd` (kept empty to prove the
/// client needs no filesystem state), returning (exit_ok, stdout).
fn remote(cwd: &Path, addr: &str, args: &[&str]) -> (bool, String) {
    let out = Command::new(env!("CARGO_BIN_EXE_ftsimd"))
        .args(args)
        .args(["--remote", addr])
        .current_dir(cwd)
        .output()
        .expect("spawn ftsimd");
    (
        out.status.success(),
        String::from_utf8(out.stdout).expect("utf-8 stdout"),
    )
}

fn remote_ok(cwd: &Path, addr: &str, args: &[&str]) -> String {
    let (ok, stdout) = remote(cwd, addr, args);
    assert!(ok, "ftsimd --remote {args:?} failed");
    stdout
}

#[test]
fn all_verbs_work_over_http_with_no_client_filesystem_state() {
    let state = tmp("state");
    let scratch = tmp("scratch");
    let spec_path = state.join("job.toml");
    std::fs::write(&spec_path, SPEC).unwrap();

    // Serve with the HTTP API on an ephemeral port; the bound address
    // is advertised in <state>/http.addr.
    let mut daemon = Command::new(env!("CARGO_BIN_EXE_ftsimd"))
        .args(["serve", "--state", state.to_str().unwrap()])
        .args(["--listen", "127.0.0.1:0"])
        .stdout(Stdio::null())
        .stderr(Stdio::null())
        .spawn()
        .expect("spawn serving daemon");
    let addr_path = state.join("http.addr");
    let deadline = Instant::now() + Duration::from_secs(30);
    let addr = loop {
        if let Ok(addr) = std::fs::read_to_string(&addr_path) {
            break addr.trim().to_string();
        }
        assert!(
            Instant::now() < deadline,
            "daemon never advertised http.addr"
        );
        std::thread::sleep(Duration::from_millis(25));
    };

    // submit — the server validates the spec; the client only reads it.
    let job_id = remote_ok(&scratch, &addr, &["submit", spec_path.to_str().unwrap()])
        .trim()
        .to_string();
    assert!(job_id.ends_with("-http-e2e"), "unexpected id `{job_id}`");
    // Re-submitting attaches instead of duplicating — over HTTP too.
    let again = remote_ok(&scratch, &addr, &["submit", spec_path.to_str().unwrap()]);
    assert_eq!(again.trim(), job_id);

    // jobs and status see it.
    let listing = remote_ok(&scratch, &addr, &["jobs"]);
    assert!(listing.contains(&job_id), "jobs listing:\n{listing}");
    let status = remote_ok(&scratch, &addr, &["status", &job_id]);
    assert!(status.contains("cells:"), "remote status:\n{status}");
    let (ok, _) = remote(&scratch, &addr, &["status", "0099-no-such-job"]);
    assert!(!ok, "a bad job id must fail loudly");

    // results --watch streams rows over the socket until the job is
    // done (the daemon is executing it concurrently).
    let watched = remote_ok(
        &scratch,
        &addr,
        &["results", &job_id, "--watch", "--interval", "100"],
    );
    let (rows, _) = from_csv_tolerant(&watched);
    assert_eq!(rows.len(), 4, "watch streamed the full grid:\n{watched}");

    // results — byte-identical to the one-shot grid.
    let expected = {
        let records = JobSpec::parse(SPEC)
            .unwrap()
            .to_experiment()
            .unwrap()
            .run()
            .unwrap();
        to_csv(&records)
    };
    let from_remote = remote_ok(&scratch, &addr, &["results", &job_id]);
    assert_eq!(from_remote, expected, "remote results differ from one-shot");
    let json = remote_ok(&scratch, &addr, &["results", &job_id, "--json"]);
    assert!(json.trim_start().starts_with('['), "json results:\n{json}");

    // report — text and JSON renderings of the analysis layer.
    let report = remote_ok(&scratch, &addr, &["report", &job_id]);
    assert!(report.contains("outcome"), "text report:\n{report}");
    let report_json = remote_ok(&scratch, &addr, &["report", &job_id, "--json"]);
    assert!(
        report_json.contains("\"outcomes\""),
        "json report:\n{report_json}"
    );

    // stop <job> pauses the job; stop shuts the daemon down.
    remote_ok(&scratch, &addr, &["stop", &job_id]);
    assert!(
        state.join("jobs").join(&job_id).join("stop").exists(),
        "per-job stop sentinel written server-side"
    );
    remote_ok(&scratch, &addr, &["stop"]);
    let deadline = Instant::now() + Duration::from_secs(30);
    loop {
        match daemon.try_wait().expect("poll daemon") {
            Some(exit) => {
                assert!(exit.success(), "remote stop exits the daemon cleanly");
                break;
            }
            None => {
                assert!(Instant::now() < deadline, "daemon ignored remote stop");
                std::thread::sleep(Duration::from_millis(50));
            }
        }
    }

    // The client processes ran with no state directory: their scratch
    // working directory is exactly as empty as it started.
    let leftovers: Vec<_> = std::fs::read_dir(&scratch)
        .unwrap()
        .map(|e| e.unwrap().file_name())
        .collect();
    assert!(
        leftovers.is_empty(),
        "remote verbs touched the filesystem: {leftovers:?}"
    );

    std::fs::remove_dir_all(&state).ok();
    std::fs::remove_dir_all(&scratch).ok();
}
