//! End-to-end observability tests: the `/metrics` exposition must parse
//! and stay monotonic across a two-process fabric run, `report?watch`
//! must stream prefix-consistent snapshots whose final line analyzes
//! exactly what `ftsimd report` reports, and — the hard constraint —
//! none of it may perturb the sweep: with metrics, tracing AND stage
//! profiling on (and chaos injecting failures into the exporters), the
//! results stay byte-identical to the one-shot grid.

use ftsim::harness::to_csv;
use ftsim_daemon::JobSpec;
use ftsim_stats::JsonValue;
use std::collections::HashMap;
use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

/// Two (workload, model) families so two processes have distinct shards,
/// with fault rates covering baseline-served, forked and cold cells.
const SPEC: &str = r#"
name = "obs-e2e"
workloads = ["fpppp", "gcc"]
models = ["SS-2"]
fault_rates = [0.0, 200.0, 5000.0, 50000.0]
budgets = [4000]
seeds = [3]
oracle = "final"
checkpointing = true
threads = 2
"#;

fn ftsimd() -> Command {
    let mut cmd = Command::new(env!("CARGO_BIN_EXE_ftsimd"));
    // Ambient chaos from an outer harness must not leak in; each test
    // sets exactly the plan it wants.
    cmd.env_remove("FTSIM_CHAOS");
    cmd
}

fn state_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("ftsimd-obs-{tag}-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    dir
}

fn run_ok(state: &Path, args: &[&str]) -> String {
    let out = ftsimd()
        .args(args)
        .args(["--state", state.to_str().unwrap()])
        .output()
        .expect("spawn ftsimd");
    assert!(
        out.status.success(),
        "ftsimd {args:?} failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    String::from_utf8(out.stdout).expect("utf-8 stdout")
}

fn submit(state: &Path, spec: &str) -> String {
    let spec_path = state.join("job.toml");
    std::fs::create_dir_all(state).unwrap();
    std::fs::write(&spec_path, spec).unwrap();
    run_ok(state, &["submit", spec_path.to_str().unwrap()])
        .trim()
        .to_string()
}

fn spawn_serve(state: &Path, extra: &[&str]) -> Child {
    let mut cmd = ftsimd();
    cmd.args(["serve", "--state", state.to_str().unwrap()]);
    cmd.args(extra)
        .stdout(Stdio::null())
        .stderr(Stdio::null())
        .spawn()
        .expect("spawn serving daemon")
}

/// Waits for `<state>/http.addr` to be advertised and returns it.
fn wait_addr(state: &Path) -> String {
    let deadline = Instant::now() + Duration::from_secs(30);
    loop {
        if let Ok(addr) = std::fs::read_to_string(state.join("http.addr")) {
            let addr = addr.trim().to_string();
            if !addr.is_empty() {
                return addr;
            }
        }
        assert!(
            Instant::now() < deadline,
            "daemon never advertised an address"
        );
        std::thread::sleep(Duration::from_millis(25));
    }
}

/// One raw GET, returning the response body.
fn http_get(addr: &str, path: &str) -> String {
    let mut stream = TcpStream::connect(addr).expect("connect to daemon");
    stream
        .write_all(
            format!("GET {path} HTTP/1.1\r\nHost: ftsimd\r\nConnection: close\r\n\r\n").as_bytes(),
        )
        .expect("send request");
    let mut response = String::new();
    stream.read_to_string(&mut response).expect("read response");
    assert!(
        response.starts_with("HTTP/1.1 200"),
        "GET {path}: {response}"
    );
    response
        .split_once("\r\n\r\n")
        .map(|(_, body)| body.to_string())
        .unwrap_or_default()
}

/// Parses a Prometheus text exposition into `series -> value`, checking
/// every line is either a `# TYPE` comment or `name{labels} value`.
fn parse_prometheus(text: &str) -> HashMap<String, f64> {
    let mut out = HashMap::new();
    for line in text.lines() {
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix("# TYPE ") {
            let mut parts = rest.split_whitespace();
            let (name, kind) = (parts.next().unwrap_or(""), parts.next().unwrap_or(""));
            assert!(!name.is_empty(), "TYPE line without a name: {line}");
            assert!(
                matches!(kind, "counter" | "gauge" | "histogram"),
                "unknown metric type in: {line}"
            );
            continue;
        }
        let (series, value) = line.rsplit_once(' ').expect("sample line has a value");
        let value: f64 = value.parse().unwrap_or_else(|_| {
            panic!("unparseable sample value in: {line}");
        });
        assert!(
            series
                .chars()
                .next()
                .is_some_and(|c| c.is_ascii_alphabetic()),
            "sample series must start with a metric name: {line}"
        );
        out.insert(series.to_string(), value);
    }
    out
}

fn wait_done(state: &Path, job: &str) {
    let deadline = Instant::now() + Duration::from_secs(300);
    loop {
        let status = run_ok(state, &["status", job]);
        if status.contains("state:  done") {
            return;
        }
        assert!(
            Instant::now() < deadline,
            "job {job} never reached done:\n{status}"
        );
        std::thread::sleep(Duration::from_millis(100));
    }
}

/// `/metrics` parses as Prometheus text, shows both fabric-level
/// (`ftsimd_*`) and sim-level (`ftsim_*`) series, and every counter is
/// monotonic between a mid-run scrape and a post-run scrape — across a
/// fabric of two cooperating processes. `/trace` and `ftsimd trace`
/// expose the span journal with the cell lifecycle kinds.
#[test]
fn metrics_parse_and_stay_monotonic_across_a_two_process_fabric() {
    let state = state_dir("metrics");
    let job_id = submit(&state, SPEC);

    // A long-running listener plus a drain peer: the listener stays up
    // for the post-run scrape while the peer proves multi-process.
    let mut listener = spawn_serve(&state, &["--listen", "127.0.0.1:0", "--workers", "1"]);
    let mut peer = spawn_serve(&state, &["--drain", "--workers", "1"]);
    let addr = wait_addr(&state);

    let mid = parse_prometheus(&http_get(&addr, "/metrics"));
    wait_done(&state, &job_id);
    peer.wait().expect("peer drain exit");
    let end = parse_prometheus(&http_get(&addr, "/metrics"));

    // The fabric vitals and the sim-throughput series both surface.
    for series in [
        "ftsimd_claims_total{event=\"acquired\"}",
        "ftsimd_cells_completed_total",
        "ftsimd_append_bytes_total",
        "ftsimd_lease_wait_ms_count",
    ] {
        assert!(end.contains_key(series), "missing {series} in:\n{end:?}");
    }
    assert!(
        end.keys().any(|k| k.starts_with("ftsim_cells_total")),
        "per-worker sim series missing:\n{end:?}"
    );
    // This process completed at least one cell and appended its row.
    assert!(end["ftsimd_cells_completed_total"] >= 1.0);
    assert!(end["ftsimd_append_bytes_total"] > 0.0);
    // Counters and histogram buckets never move backwards.
    for (series, before) in &mid {
        let total_like = series.contains("_total")
            || series.contains("_bucket")
            || series.ends_with("_count")
            || series.ends_with("_sum");
        if !total_like {
            continue; // gauges may move either way
        }
        let after = end.get(series).copied().unwrap_or_else(|| {
            panic!("series {series} vanished between scrapes");
        });
        assert!(
            after >= *before,
            "counter {series} went backwards: {before} -> {after}"
        );
    }

    // healthz carries the new queue-depth and claim-age diagnostics.
    let health = http_get(&addr, "/healthz");
    let doc = JsonValue::parse(&health).expect("healthz is JSON");
    assert_eq!(doc.get("queued_cells").and_then(|v| v.as_u64()), Some(0));
    assert!(doc.get("oldest_live_claim_age_ms").is_some());
    let progress = doc.get("job_progress").expect("per-job progress");
    assert_eq!(
        progress
            .get(&job_id)
            .and_then(|j| j.get("cells_done"))
            .and_then(|v| v.as_u64()),
        Some(8)
    );

    // The trace journal stitched the cell lifecycle together: claims,
    // cell executions, appends and the finalizing merge, with one span
    // correlating a cell's events.
    let trace = http_get(&addr, "/trace?n=500");
    let events: Vec<JsonValue> = trace
        .lines()
        .map(|l| JsonValue::parse(l).expect("trace line is JSON"))
        .collect();
    assert!(!events.is_empty(), "trace journal is empty");
    let kind_of = |e: &JsonValue| {
        e.get("kind")
            .and_then(|v| v.as_str())
            .unwrap_or("")
            .to_string()
    };
    for kind in ["claim", "append", "merge"] {
        assert!(
            events.iter().any(|e| kind_of(e) == kind),
            "no {kind} event in:\n{trace}"
        );
    }
    // The CLI tail prints the same journal.
    let cli_trace = run_ok(&state, &["trace", "-n", "500"]);
    assert!(cli_trace.lines().any(|l| l.contains("\"claim\"")));

    run_ok(&state, &["stop"]);
    listener.wait().expect("listener exit");
    std::fs::remove_dir_all(&state).ok();
}

/// `report?watch` streams at least two incremental NDJSON snapshots on a
/// multi-family job, the snapshots are prefix-consistent (cell coverage
/// never shrinks), and the final snapshot analyzes exactly the records
/// `ftsimd report <job>` reports after the fact.
#[test]
fn report_watch_streams_prefix_consistent_snapshots() {
    let state = state_dir("watch");
    let job_id = submit(&state, SPEC);
    let mut daemon = spawn_serve(&state, &["--listen", "127.0.0.1:0", "--workers", "1"]);
    let addr = wait_addr(&state);

    // Connect before the job finishes; the server closes the stream
    // after the terminal snapshot.
    let mut stream = TcpStream::connect(&addr).expect("connect");
    stream
        .write_all(
            format!(
                "GET /jobs/{job_id}/report?watch&interval=25 HTTP/1.1\r\nHost: f\r\nConnection: close\r\n\r\n"
            )
            .as_bytes(),
        )
        .expect("send watch request");
    let mut reader = BufReader::new(stream);
    let mut line = String::new();
    reader.read_line(&mut line).expect("status line");
    assert!(line.starts_with("HTTP/1.1 200"), "{line}");
    loop {
        let mut header = String::new();
        let n = reader.read_line(&mut header).expect("headers");
        if n == 0 || header == "\r\n" {
            break;
        }
    }
    let mut snapshots: Vec<JsonValue> = Vec::new();
    loop {
        let mut body_line = String::new();
        match reader.read_line(&mut body_line) {
            Ok(0) => break,
            Ok(_) if body_line.trim().is_empty() => {}
            Ok(_) => snapshots.push(JsonValue::parse(body_line.trim()).expect("snapshot is JSON")),
            Err(e) => panic!("reading watch stream: {e}"),
        }
    }
    assert!(
        snapshots.len() >= 2,
        "a multi-family job must stream at least two snapshots, got {}",
        snapshots.len()
    );
    let cells: Vec<u64> = snapshots
        .iter()
        .map(|s| s.get("cells").and_then(|v| v.as_u64()).unwrap())
        .collect();
    assert!(
        cells.windows(2).all(|w| w[0] <= w[1]),
        "snapshot cell coverage shrank: {cells:?}"
    );
    let last = snapshots.last().unwrap();
    assert_eq!(last.get("state").and_then(|v| v.as_str()), Some("done"));
    assert_eq!(last.get("cells").and_then(|v| v.as_u64()), Some(8));

    // The final snapshot's report equals the post-hoc `ftsimd report`.
    let post_hoc = run_ok(&state, &["report", &job_id, "--json"]);
    assert_eq!(
        last.get("report").expect("snapshot report"),
        &JsonValue::parse(&post_hoc).expect("report --json parses"),
        "final watch snapshot diverges from ftsimd report"
    );

    // The CLI watch verb prints the same NDJSON snapshots (on the
    // already-terminal job: exactly the final one).
    let cli_watch = run_ok(&state, &["report", &job_id, "--watch", "--interval", "25"]);
    let cli_last = JsonValue::parse(cli_watch.lines().last().unwrap()).unwrap();
    assert_eq!(cli_last.get("cells").and_then(|v| v.as_u64()), Some(8));

    run_ok(&state, &["stop"]);
    daemon.wait().expect("daemon exit");
    std::fs::remove_dir_all(&state).ok();
}

/// The hard constraint: with stage profiling, metrics and tracing all
/// on — and chaos injecting EIO into both observability exporters — a
/// two-process fabric run (cold, forked and baseline-served cells alike)
/// stays byte-identical to the plain one-shot grid. Observability
/// observes; it never participates.
#[test]
fn profiling_and_metrics_never_perturb_the_golden_results() {
    let state = state_dir("determinism");
    let job_id = submit(&state, SPEC);

    let spawn_profiled = || {
        let mut cmd = ftsimd();
        cmd.args(["serve", "--state", state.to_str().unwrap()])
            .args(["--drain", "--workers", "1"])
            .env("FTSIM_PROFILE", "1")
            // Half of all exporter writes fail; the sweep must not care.
            .env("FTSIM_CHAOS", "9:eio@obs.*=0.5")
            .stdout(Stdio::null())
            .stderr(Stdio::null());
        cmd.spawn().expect("spawn profiled daemon")
    };
    let mut a = spawn_profiled();
    let mut b = spawn_profiled();
    assert!(a.wait().expect("a exits").success());
    assert!(b.wait().expect("b exits").success());

    let status = run_ok(&state, &["status", &job_id]);
    assert!(status.contains("state:  done"), "{status}");

    // Byte-identity against the one-shot grid run in this process with
    // no profiling, no metrics and no chaos.
    let from_cli = run_ok(&state, &["results", &job_id]);
    let records = JobSpec::parse(SPEC)
        .unwrap()
        .to_experiment()
        .unwrap()
        .run()
        .unwrap();
    assert_eq!(
        from_cli,
        to_csv(&records),
        "observability perturbed the golden results"
    );

    // The survivor of the 50% EIO rate still collected profile rows for
    // the cells whose appends went through, and the CLI renders them.
    let profile_csv = state.join("jobs").join(&job_id).join("profile.csv");
    if profile_csv.exists() {
        let table = run_ok(&state, &["profile", &job_id]);
        assert!(table.contains("TOTAL"), "profile table:\n{table}");
        assert!(table.contains("cycles"), "profile table:\n{table}");
    }

    std::fs::remove_dir_all(&state).ok();
}
