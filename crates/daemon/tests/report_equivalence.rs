//! The analysis-interoperability invariant: `ftsimd report` on a daemon
//! job and `Experiment::analyze()` on the equivalent one-shot grid must
//! produce identical tables — same per-site sensitivity, same outcome
//! taxonomy, same latency and MTTF numbers — because both are pure
//! functions of byte-identical record sets.

use ftsim_analysis::{analyze_records, Analyze, CellOutcome};
use ftsim_daemon::{run_job, JobSpec, JobStore};
use std::sync::atomic::AtomicBool;

fn spec() -> JobSpec {
    let mut spec = JobSpec::new("report-eq");
    spec.workloads = vec!["fpppp".to_string(), "gcc".to_string()];
    spec.models = vec!["SS-2".to_string(), "SS-3M".to_string()];
    spec.fault_rates_pm = vec![0.0, 4_000.0];
    // A non-uniform mix cell rides in the same checkpoint-fork family as
    // the uniform one — the fault-free prefix is mix-independent.
    spec.site_mixes = vec!["uniform".to_string(), "addr-heavy".to_string()];
    spec.budgets = vec![1_500];
    spec.seeds = vec![7];
    spec
}

#[test]
fn daemon_report_matches_one_shot_analyze() {
    let dir = std::env::temp_dir().join(format!("ftsimd-report-eq-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    let store = JobStore::open(&dir).unwrap();
    let (id, _) = store.submit(&spec()).unwrap();
    let job = store.job(&id).unwrap();
    run_job(&store, &job, &AtomicBool::new(false)).unwrap();

    // What `ftsimd report` analyzes: the job's canonical results.csv.
    let text = std::fs::read_to_string(job.results_path()).unwrap();
    let job_records = ftsim::harness::from_csv(&text).unwrap();
    let from_daemon = analyze_records(&job_records);

    // What the library user gets from the equivalent one-shot grid.
    let from_grid = spec().to_experiment().unwrap().analyze().unwrap();

    assert_eq!(
        from_daemon.sensitivity, from_grid.sensitivity,
        "per-site sensitivity tables diverged"
    );
    assert_eq!(from_daemon, from_grid, "full reports diverged");
    assert_eq!(
        from_daemon.sensitivity.render(),
        from_grid.sensitivity.render()
    );
    assert_eq!(from_daemon.render(), from_grid.render());

    // The corpus must actually exercise the analysis: faults at both
    // mixes, detections with measured latencies, and a clean taxonomy.
    assert!(from_grid
        .sensitivity
        .rows
        .iter()
        .any(|r| r.site_mix == "addr-heavy"));
    assert!(from_grid
        .sensitivity
        .rows
        .iter()
        .any(|r| r.site_mix == "uniform"));
    assert!(from_grid.latency.rows.iter().any(|r| r.events > 0));
    // All 8 rate-0 cells (2 workloads × 2 models × 2 mixes) are
    // fault-free; a 4000/M cell could join them only if its Bernoulli
    // stream never fired.
    assert!(from_grid.outcome_count(CellOutcome::FaultFree) >= 8);
    assert!(from_grid.outcome_count(CellOutcome::Detected) > 0);
    assert_eq!(
        from_grid.outcome_count(CellOutcome::Sdc),
        0,
        "R >= 2 redundancy must not leak SDCs"
    );
    std::fs::remove_dir_all(&dir).ok();
}
