//! Multi-tenant hardening tests: admission quotas (429 + Retry-After),
//! bearer-token gating of mutating verbs (401), TTL garbage collection
//! that never touches live work, and the stuck-cell watchdog — a hung
//! cell is killed, retried, and the job still converges byte-identical
//! to the one-shot grid, or fails with a bounded strike count when the
//! hang is permanent.

use ftsim::harness::to_csv;
use ftsim_daemon::JobSpec;
use std::io::{Read, Write};
use std::net::TcpStream;
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

fn ftsimd() -> Command {
    Command::new(env!("CARGO_BIN_EXE_ftsimd"))
}

fn state_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("ftsimd-tenancy-{tag}-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn run_ok(state: &Path, args: &[&str]) -> String {
    let out = ftsimd()
        .args(args)
        .args(["--state", state.to_str().unwrap()])
        .output()
        .expect("spawn ftsimd");
    assert!(
        out.status.success(),
        "ftsimd {args:?} failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    String::from_utf8(out.stdout).expect("utf-8 stdout")
}

fn submit(state: &Path, file: &str, spec: &str) -> String {
    let spec_path = state.join(file);
    std::fs::write(&spec_path, spec).unwrap();
    run_ok(state, &["submit", spec_path.to_str().unwrap()])
        .trim()
        .to_string()
}

/// Waits for `<state>/http.addr` to appear and parses the bound address.
fn wait_addr(state: &Path) -> String {
    let deadline = Instant::now() + Duration::from_secs(30);
    loop {
        if let Ok(addr) = std::fs::read_to_string(state.join("http.addr")) {
            let addr = addr.trim().to_string();
            if !addr.is_empty() {
                return addr;
            }
        }
        assert!(
            Instant::now() < deadline,
            "daemon never advertised an address"
        );
        std::thread::sleep(Duration::from_millis(25));
    }
}

/// One raw HTTP exchange, returning (status code, response head, body).
/// Raw so the tests can assert on status lines and headers the `--remote`
/// client never surfaces (Retry-After, WWW-Authenticate).
fn http(
    addr: &str,
    method: &str,
    path: &str,
    body: &str,
    bearer: Option<&str>,
) -> (u16, String, String) {
    let mut stream = TcpStream::connect(addr).expect("connect to daemon");
    let auth = bearer.map_or(String::new(), |t| format!("Authorization: Bearer {t}\r\n"));
    let request = format!(
        "{method} {path} HTTP/1.1\r\nHost: ftsimd\r\n{auth}Content-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len()
    );
    stream.write_all(request.as_bytes()).expect("send request");
    let mut response = String::new();
    stream.read_to_string(&mut response).expect("read response");
    let code: u16 = response
        .split_whitespace()
        .nth(1)
        .and_then(|c| c.parse().ok())
        .unwrap_or_else(|| panic!("unparseable response: {response:?}"));
    let (head, body) = response
        .split_once("\r\n\r\n")
        .unwrap_or_else(|| panic!("headerless response: {response:?}"));
    (code, head.to_string(), body.to_string())
}

fn one_shot_csv(spec: &str) -> String {
    let records = JobSpec::parse(spec)
        .unwrap()
        .to_experiment()
        .unwrap()
        .run()
        .unwrap();
    to_csv(&records)
}

/// One serving daemon with a bearer token and a one-live-job-per-submitter
/// quota. Unauthenticated mutation is refused with 401 (reads stay open);
/// an over-quota submitter gets a structured 429 with Retry-After while an
/// in-quota peer's submission sails through; /healthz reports version,
/// uptime and per-submitter claim counts.
#[test]
fn quotas_and_token_auth_over_http() {
    let state = state_dir("quota");
    let token_path = state.join("api.token");
    std::fs::write(&token_path, "tenancy-secret\n").unwrap();

    let mut daemon = ftsimd()
        .args(["serve", "--state", state.to_str().unwrap()])
        .args(["--listen", "127.0.0.1:0", "--workers", "1"])
        .args(["--token-file", token_path.to_str().unwrap()])
        .args(["--max-live-jobs", "1"])
        .stdout(Stdio::null())
        .stderr(Stdio::null())
        .spawn()
        .expect("spawn serving daemon");
    let addr = wait_addr(&state);
    let tok = Some("tenancy-secret");

    // Big enough that alice's job is still live when her second submit
    // arrives; it is paused immediately after submission anyway.
    let alice1 = r#"
name = "alice-sweep"
submitter = "alice"
workloads = ["fpppp", "gcc"]
models = ["SS-2"]
fault_rates = [0.0, 200.0, 5000.0, 50000.0]
budgets = [4000]
seeds = [3, 4]
oracle = "final"
checkpointing = true
"#;
    let alice2 = r#"
name = "alice-encore"
submitter = "alice"
workloads = ["gcc"]
models = ["SS-1"]
budgets = [1000]
"#;
    let bob = r#"
name = "bob-probe"
submitter = "bob"
workloads = ["gcc"]
models = ["SS-1"]
budgets = [1000]
"#;

    // Mutating verbs are gated: no token and a wrong token both get 401
    // with a WWW-Authenticate challenge. Reads stay open.
    let (code, head, _) = http(&addr, "POST", "/jobs", alice1, None);
    assert_eq!(code, 401, "unauthenticated POST must be refused");
    assert!(head.contains("WWW-Authenticate: Bearer"), "head:\n{head}");
    let (code, _, _) = http(&addr, "POST", "/jobs", alice1, Some("wrong-secret"));
    assert_eq!(code, 401, "wrong token must be refused");
    let (code, _, _) = http(&addr, "GET", "/jobs", "", None);
    assert_eq!(code, 200, "reads stay open without credentials");

    // Authenticated submit lands; pause it at once so it stays live (a
    // paused job is non-terminal) without racing the worker.
    let (code, _, body) = http(&addr, "POST", "/jobs", alice1, tok);
    assert_eq!(code, 200, "authenticated submit: {body}");
    let id = body
        .split('"')
        .nth(3)
        .expect("job id in response")
        .to_string();
    let (code, _, _) = http(&addr, "POST", &format!("/jobs/{id}/stop"), "", tok);
    assert_eq!(code, 200);

    // Alice is at her live-job cap: structured refusal, in header and body.
    let (code, head, body) = http(&addr, "POST", "/jobs", alice2, tok);
    assert_eq!(code, 429, "over-quota submit must get 429: {body}");
    assert!(head.contains("Retry-After:"), "head:\n{head}");
    assert!(body.contains("retry_after_secs"), "body:\n{body}");
    assert!(
        body.contains("alice"),
        "refusal names the submitter: {body}"
    );

    // Bob is a different tenant; his submission is admitted.
    let (code, _, body) = http(&addr, "POST", "/jobs", bob, tok);
    assert_eq!(code, 200, "in-quota peer must proceed: {body}");
    assert!(body.contains("\"created\": true"), "body:\n{body}");

    // Health endpoint reports the new tenancy fields.
    let (code, _, body) = http(&addr, "GET", "/healthz", "", None);
    assert_eq!(code, 200);
    for field in [
        "\"version\"",
        "\"uptime_ms\"",
        "\"live_claims_by_submitter\"",
        "\"watchdog_kills\"",
    ] {
        assert!(body.contains(field), "healthz missing {field}:\n{body}");
    }

    let (code, _, _) = http(&addr, "POST", "/stop", "", tok);
    assert_eq!(code, 200);
    let exit = daemon.wait().expect("daemon exit");
    assert!(exit.success(), "daemon exits clean after POST /stop");

    std::fs::remove_dir_all(&state).ok();
}

/// TTL expiry and compaction through the `gc` verb: a finished job past
/// its TTL is removed, a finished job without one is compacted down to
/// its sealed results (still byte-identical to the one-shot grid), and a
/// queued job is untouchable even with its TTL elapsed — GC only ever
/// collects terminal state.
#[test]
fn gc_expires_terminal_jobs_but_never_live_ones() {
    let state = state_dir("gc");
    let doomed = r#"
name = "doomed"
workloads = ["gcc"]
models = ["SS-1"]
budgets = [1000]
ttl_secs = 1
"#;
    let sealed = r#"
name = "sealed"
workloads = ["gcc"]
models = ["SS-1"]
budgets = [1500]
"#;
    let alive = r#"
name = "alive"
workloads = ["gcc"]
models = ["SS-1"]
budgets = [2000]
ttl_secs = 1
"#;

    let doomed_id = submit(&state, "doomed.toml", doomed);
    let sealed_id = submit(&state, "sealed.toml", sealed);
    let mut drain = ftsimd()
        .args(["serve", "--state", state.to_str().unwrap(), "--drain"])
        .stdout(Stdio::null())
        .stderr(Stdio::null())
        .spawn()
        .expect("spawn draining daemon");
    assert!(drain.wait().expect("drain exit").success());

    // Submitted after the drain so it stays queued — live, with an
    // already-elapsed TTL once the sleep below passes.
    let alive_id = submit(&state, "alive.toml", alive);

    std::thread::sleep(Duration::from_millis(1600));
    let report = run_ok(&state, &["gc"]);
    assert!(
        report.contains("expired 1 job(s)") && report.contains("compacted 1"),
        "gc report:\n{report}"
    );

    let jobs = state.join("jobs");
    assert!(
        !jobs.join(&doomed_id).exists(),
        "expired job must be removed"
    );
    assert!(jobs.join(&alive_id).exists(), "live job must survive GC");
    let status = run_ok(&state, &["status", &alive_id]);
    assert!(status.contains("state:  queued"), "after gc:\n{status}");

    // The sealed job lost its streamed cells.csv but kept the sealed
    // results — and they still match the one-shot grid byte for byte.
    assert!(!jobs.join(&sealed_id).join("cells.csv").exists());
    assert!(jobs.join(&sealed_id).join("results.csv").exists());
    let from_cli = run_ok(&state, &["results", &sealed_id]);
    assert_eq!(from_cli, one_shot_csv(sealed), "compaction altered results");

    // A second pass finds nothing left to reclaim.
    let report = run_ok(&state, &["gc"]);
    assert_eq!(report.trim(), "ftsimd: gc: nothing to reclaim");

    std::fs::remove_dir_all(&state).ok();
}

/// Spec with a single family (slug `gcc-2000-ss-1`) so a chaos delay at
/// `fabric.cell.gcc-2000-ss-1` targets exactly this job's cell gate.
const WD_SPEC: &str = r#"
name = "wd"
workloads = ["gcc"]
models = ["SS-1"]
fault_rates = [0.0, 5000.0]
seeds = [3, 4]
budgets = [2000]
oracle = "final"
checkpointing = true
"#;

fn spawn_wd_serve(state: &Path, chaos: &str, floor_ms: &str) -> Child {
    ftsimd()
        .args(["serve", "--state", state.to_str().unwrap()])
        .args(["--drain", "--workers", "1"])
        .env("FTSIM_CHAOS", chaos)
        .env("FTSIMD_CELL_FLOOR_MS", floor_ms)
        .stdout(Stdio::null())
        .stderr(Stdio::piped())
        .spawn()
        .expect("spawn draining daemon")
}

/// The first attempt at the family's first cell hangs (deterministic
/// hit-numbered delay, far past the watchdog floor); the watchdog kills
/// it, counts a strike, and the retry converges the job byte-identical
/// to the one-shot grid.
#[test]
fn watchdog_kills_a_hung_cell_and_the_retry_converges() {
    let state = state_dir("wd-retry");
    let job_id = submit(&state, "wd.toml", WD_SPEC);

    let drain = spawn_wd_serve(&state, "5:delay@fabric.cell.gcc-2000-ss-1#1:8000", "900");
    let out = drain.wait_with_output().expect("drain exit");
    assert!(out.status.success(), "drain exits clean");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        stderr.contains("exceeded its 900ms deadline") && stderr.contains("strike 1/5"),
        "watchdog kill not reported:\n{stderr}"
    );

    let status = run_ok(&state, &["status", &job_id]);
    assert!(status.contains("state:  done"), "after retry:\n{status}");
    let from_cli = run_ok(&state, &["results", &job_id]);
    assert_eq!(
        from_cli,
        one_shot_csv(WD_SPEC),
        "watchdog retry broke byte-identity"
    );

    std::fs::remove_dir_all(&state).ok();
}

/// Every attempt hangs: after the strike cap the job is marked failed
/// with the offending cell named, instead of wedging the worker forever.
#[test]
fn permanently_stuck_cell_caps_strikes_and_fails_the_job() {
    let state = state_dir("wd-cap");
    let job_id = submit(&state, "wd.toml", WD_SPEC);

    let drain = spawn_wd_serve(&state, "5:delay@fabric.cell.gcc-2000-ss-1*=1:6000", "500");
    let out = drain.wait_with_output().expect("drain exit");
    assert!(out.status.success(), "drain exits clean");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        stderr.contains("strike 5/5"),
        "strike cap never reached:\n{stderr}"
    );

    let status = run_ok(&state, &["status", &job_id]);
    assert!(
        status.contains("state:  failed") && status.contains("exceeded deadline"),
        "after strike cap:\n{status}"
    );

    std::fs::remove_dir_all(&state).ok();
}
