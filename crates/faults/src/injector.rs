//! The fault injector: Bernoulli or plan-driven single-bit corruptions.

use crate::mix::SiteMix;
use crate::plan::FaultPlan;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Where in an instruction copy's lifetime the upset strikes.
///
/// Each point corrupts a different speculative value, exercising a
/// different detection path at the commit-stage cross-check.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum InjectionPoint {
    /// First source operand as read at issue.
    OperandA,
    /// Second source operand as read at issue.
    OperandB,
    /// Computed result (ALU/FP value, load data, or link address).
    Result,
    /// Effective address of a load or store.
    EffAddr,
    /// Store datum.
    StoreData,
    /// Branch direction (the taken/not-taken decision flips).
    BranchDirection,
    /// Branch or jump target address.
    BranchTarget,
    /// Result corrupted *after* execution while waiting in the ROB —
    /// the case that forces the paper to re-check copies at commit time
    /// even if they were compared earlier (§3.2).
    RobWait,
}

impl InjectionPoint {
    /// All injection points.
    pub const ALL: &'static [InjectionPoint] = &[
        InjectionPoint::OperandA,
        InjectionPoint::OperandB,
        InjectionPoint::Result,
        InjectionPoint::EffAddr,
        InjectionPoint::StoreData,
        InjectionPoint::BranchDirection,
        InjectionPoint::BranchTarget,
        InjectionPoint::RobWait,
    ];

    /// Number of injection points (the length of [`InjectionPoint::ALL`]).
    pub const COUNT: usize = 8;

    /// This point's index in [`InjectionPoint::ALL`] — the canonical
    /// ordering used by site mixes and per-site fate tables.
    pub fn index(self) -> usize {
        match self {
            InjectionPoint::OperandA => 0,
            InjectionPoint::OperandB => 1,
            InjectionPoint::Result => 2,
            InjectionPoint::EffAddr => 3,
            InjectionPoint::StoreData => 4,
            InjectionPoint::BranchDirection => 5,
            InjectionPoint::BranchTarget => 6,
            InjectionPoint::RobWait => 7,
        }
    }

    /// A short, stable site code used in compact serializations
    /// (`site_fates` record fields) and report tables.
    pub fn code(self) -> &'static str {
        match self {
            InjectionPoint::OperandA => "opa",
            InjectionPoint::OperandB => "opb",
            InjectionPoint::Result => "res",
            InjectionPoint::EffAddr => "ea",
            InjectionPoint::StoreData => "sd",
            InjectionPoint::BranchDirection => "bdir",
            InjectionPoint::BranchTarget => "btgt",
            InjectionPoint::RobWait => "rob",
        }
    }

    /// Resolves a site code produced by [`InjectionPoint::code`].
    pub fn from_code(code: &str) -> Option<Self> {
        InjectionPoint::ALL
            .iter()
            .copied()
            .find(|p| p.code() == code)
    }
}

/// One concrete fault: a bit to flip at a given point.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultEvent {
    /// Which speculative value is corrupted.
    pub point: InjectionPoint,
    /// Which bit (0–63) flips. Ignored for [`InjectionPoint::BranchDirection`].
    pub bit: u8,
}

impl FaultEvent {
    /// Applies this event's bit flip to `value`.
    pub fn corrupt(&self, value: u64) -> u64 {
        value ^ (1u64 << (self.bit & 63))
    }
}

enum Mode {
    /// No faults at all (fast path for fault-free runs).
    Disabled,
    /// Bernoulli per-copy corruption with probability `rate`. A `None`
    /// mix is the historical uniform site pick (`gen_range` over the
    /// applicable list); `Some` picks by [`SiteMix`] weight. Either way a
    /// non-firing draw consumes exactly one `f64`.
    Random {
        rate: f64,
        rng: Box<SmallRng>,
        mix: Option<Box<SiteMix>>,
    },
    /// Deterministic plan.
    Planned(FaultPlan),
}

impl std::fmt::Debug for Mode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Mode::Disabled => write!(f, "Disabled"),
            Mode::Random { rate, mix, .. } => match mix {
                Some(m) => write!(f, "Random(rate={rate}, mix={})", m.name()),
                None => write!(f, "Random(rate={rate})"),
            },
            Mode::Planned(p) => write!(f, "Planned({} events)", p.len()),
        }
    }
}

/// Draws fault events for dispatched instruction copies.
///
/// The pipeline calls [`FaultInjector::draw`] once per *copy* per dispatch
/// (re-dispatches after a rewind draw again — transients are events in
/// time, not properties of instructions, so a recovered instruction is
/// re-executed fault-free with overwhelming probability).
#[derive(Debug)]
pub struct FaultInjector {
    mode: Mode,
    drawn: u64,
    injected: u64,
}

impl FaultInjector {
    /// An injector that never fires.
    pub fn none() -> Self {
        Self {
            mode: Mode::Disabled,
            drawn: 0,
            injected: 0,
        }
    }

    /// Bernoulli injection: each copy is corrupted with probability
    /// `rate_per_inst` (the paper's fault frequency `f`).
    ///
    /// # Panics
    ///
    /// Panics if `rate_per_inst` is not in `[0, 1]`.
    pub fn random(rate_per_inst: f64, seed: u64) -> Self {
        Self::random_with_mix(rate_per_inst, seed, &SiteMix::uniform())
    }

    /// Bernoulli injection with a weighted fault-site distribution: a
    /// firing draw picks among the victim's applicable points by the
    /// [`SiteMix`]'s weights instead of uniformly.
    ///
    /// The Bernoulli stream itself is mix-independent: the rate trial of
    /// every draw consumes exactly one `f64` and the mix is consulted only
    /// after a fire, so [`FaultInjector::first_possible_fire`] and
    /// [`FaultInjector::fast_forward_fault_free`] — and therefore
    /// checkpoint forking — work identically for any mix. A uniform mix
    /// additionally reproduces [`FaultInjector::random`]'s exact event
    /// stream (same site picks, same bits).
    ///
    /// # Panics
    ///
    /// Panics if `rate_per_inst` is not in `[0, 1]`.
    pub fn random_with_mix(rate_per_inst: f64, seed: u64, mix: &SiteMix) -> Self {
        assert!(
            (0.0..=1.0).contains(&rate_per_inst),
            "fault rate must be a probability"
        );
        if rate_per_inst == 0.0 {
            return Self::none();
        }
        Self {
            mode: Mode::Random {
                rate: rate_per_inst,
                rng: Box::new(SmallRng::seed_from_u64(seed)),
                // The uniform fast path keeps the historical RNG stream.
                mix: (!mix.is_uniform()).then(|| Box::new(mix.clone())),
            },
            drawn: 0,
            injected: 0,
        }
    }

    /// Deterministic injection from a [`FaultPlan`]; each planned event
    /// fires exactly once.
    pub fn from_plan(plan: FaultPlan) -> Self {
        Self {
            mode: Mode::Planned(plan),
            drawn: 0,
            injected: 0,
        }
    }

    /// Decides whether the copy `copy` of the instruction dispatched with
    /// dynamic index `dispatch_seq` suffers an upset, and if so where.
    ///
    /// `applicable` lists the injection points that make sense for this
    /// instruction kind (e.g. a store has no result to corrupt); random
    /// mode picks uniformly among them. Returns `None` when `applicable` is
    /// empty even if the Bernoulli trial fired.
    pub fn draw(
        &mut self,
        dispatch_seq: u64,
        copy: u8,
        applicable: &[InjectionPoint],
    ) -> Option<FaultEvent> {
        self.drawn += 1;
        let event = match &mut self.mode {
            Mode::Disabled => None,
            Mode::Random { rate, rng, mix } => {
                // The rate trial consumes exactly one f64 on every draw —
                // the fork-bound invariant — and only a fire touches the
                // RNG further.
                if rng.gen::<f64>() < *rate && !applicable.is_empty() {
                    let point = match mix {
                        None => Some(applicable[rng.gen_range(0..applicable.len())]),
                        Some(m) => m.pick(applicable, rng.gen::<f64>()),
                    };
                    point.map(|point| FaultEvent {
                        point,
                        bit: rng.gen_range(0..64),
                    })
                } else {
                    None
                }
            }
            Mode::Planned(plan) => plan
                .take(dispatch_seq, copy)
                .filter(|e| applicable.contains(&e.point)),
        };
        if event.is_some() {
            self.injected += 1;
        }
        event
    }

    /// Index of the first draw at which this injector *could* produce a
    /// fault, scanning at most `max_draws` draws ahead; `None` when no
    /// draw in that horizon can fire.
    ///
    /// Must be called on a fresh injector (before any [`FaultInjector::draw`]).
    /// The bound is conservative by construction:
    ///
    /// * `Disabled` never fires;
    /// * `Random` replays its own Bernoulli stream — every non-firing draw
    ///   consumes exactly one `f64`, so the first sample under the rate
    ///   marks the first *possible* injection (the actual one lands there
    ///   or later if that instruction kind has no applicable point);
    /// * `Planned` events are keyed by dispatch index, and with `R` copies
    ///   per instruction the plan's earliest index `d` cannot be reached
    ///   before draw `d · R`... but `R` is the machine's business, so the
    ///   plan conservatively reports `d` itself (draws ≥ dispatch index).
    ///
    /// This is the fork-safety bound for prefix-sharing sweeps: a machine
    /// checkpoint whose draw count is ≤ this index captures state the
    /// faulty run reproduces exactly.
    ///
    /// # Panics
    ///
    /// Panics if any draws were already made (the scan replays the RNG
    /// from its current state, which must be the seeded origin).
    pub fn first_possible_fire(&self, max_draws: u64) -> Option<u64> {
        assert_eq!(self.drawn, 0, "first_possible_fire needs a fresh injector");
        match &self.mode {
            Mode::Disabled => None,
            Mode::Random { rate, rng, .. } => {
                let mut probe = rng.clone();
                (0..max_draws).find(|_| probe.gen::<f64>() < *rate)
            }
            Mode::Planned(plan) => plan.first_event_cycle().filter(|&d| d < max_draws),
        }
    }

    /// Advances the injector as if `draws` draws had been made, none of
    /// which injected a fault.
    ///
    /// This is the consumer side of checkpoint forking: a forked cell's
    /// machine state resumes from a baseline snapshot, and its injector
    /// must resume from the matching point of its own stream. Sound only
    /// when the skipped prefix is actually fault-free for this injector —
    /// i.e. `draws` ≤ [`FaultInjector::first_possible_fire`] — because a
    /// non-firing `Random` draw consumes exactly one `f64` regardless of
    /// the instruction kind drawn for.
    pub fn fast_forward_fault_free(&mut self, draws: u64) {
        if let Mode::Random { rng, .. } = &mut self.mode {
            for _ in 0..draws {
                let _ = rng.gen::<f64>();
            }
        }
        // Planned mode is keyed by dispatch index and consumes no
        // randomness; Disabled has no stream at all. Both only need the
        // draw counter moved.
        self.drawn += draws;
    }

    /// Number of `draw` calls so far.
    pub fn drawn(&self) -> u64 {
        self.drawn
    }

    /// Number of faults produced so far.
    pub fn injected(&self) -> u64 {
        self.injected
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::FaultPlan;

    #[test]
    fn disabled_never_fires() {
        let mut inj = FaultInjector::none();
        for s in 0..100 {
            assert!(inj.draw(s, 0, InjectionPoint::ALL).is_none());
        }
        assert_eq!(inj.drawn(), 100);
        assert_eq!(inj.injected(), 0);
    }

    #[test]
    fn zero_rate_is_disabled() {
        let mut inj = FaultInjector::random(0.0, 1);
        assert!(inj.draw(0, 0, InjectionPoint::ALL).is_none());
    }

    #[test]
    fn rate_one_always_fires() {
        let mut inj = FaultInjector::random(1.0, 7);
        for s in 0..50 {
            let e = inj.draw(s, 0, &[InjectionPoint::Result]).unwrap();
            assert_eq!(e.point, InjectionPoint::Result);
            assert!(e.bit < 64);
        }
        assert_eq!(inj.injected(), 50);
    }

    #[test]
    fn empty_applicable_suppresses() {
        let mut inj = FaultInjector::random(1.0, 7);
        assert!(inj.draw(0, 0, &[]).is_none());
    }

    #[test]
    fn rate_statistics_are_plausible() {
        let mut inj = FaultInjector::random(0.1, 99);
        let mut hits = 0;
        for s in 0..10_000 {
            if inj.draw(s, 0, InjectionPoint::ALL).is_some() {
                hits += 1;
            }
        }
        assert!((800..1200).contains(&hits), "hits = {hits}");
    }

    #[test]
    fn deterministic_with_same_seed() {
        let collect = |seed| {
            let mut inj = FaultInjector::random(0.05, seed);
            (0..1000)
                .filter_map(|s| inj.draw(s, 0, InjectionPoint::ALL).map(|e| (s, e)))
                .collect::<Vec<_>>()
        };
        assert_eq!(collect(5), collect(5));
        assert_ne!(collect(5), collect(6));
    }

    #[test]
    fn corrupt_flips_exactly_one_bit() {
        let e = FaultEvent {
            point: InjectionPoint::Result,
            bit: 17,
        };
        let v = 0xdead_beef_0123_4567u64;
        let c = e.corrupt(v);
        assert_eq!((v ^ c).count_ones(), 1);
        assert_eq!(v ^ c, 1 << 17);
        assert_eq!(e.corrupt(c), v); // involution
    }

    #[test]
    fn first_possible_fire_matches_live_draws() {
        // The scan must agree with what draw() actually does: the first
        // fire lands exactly at the predicted index when every draw offers
        // an applicable point.
        for seed in [1, 7, 42, 99] {
            let fresh = FaultInjector::random(0.01, seed);
            let k = fresh
                .first_possible_fire(10_000)
                .expect("p=0.01 fires within 10k draws");
            let mut live = FaultInjector::random(0.01, seed);
            for s in 0..k {
                assert!(
                    live.draw(s, 0, InjectionPoint::ALL).is_none(),
                    "seed {seed}: premature fire before predicted draw {k}"
                );
            }
            assert!(
                live.draw(k, 0, InjectionPoint::ALL).is_some(),
                "seed {seed}: no fire at predicted draw {k}"
            );
        }
    }

    #[test]
    fn fast_forward_matches_fault_free_prefix() {
        // Cold injector drawing a fault-free prefix == fresh injector
        // fast-forwarded past it: the suffix streams must be identical,
        // even when some prefix draws had no applicable points (they
        // consume the same single sample either way).
        let rate = 0.005;
        let seed = 42;
        let fresh = FaultInjector::random(rate, seed);
        let first = fresh.first_possible_fire(100_000).unwrap();
        let prefix = first.min(500); // any fault-free prefix length works
        assert!(prefix > 0, "test premise: some fault-free prefix exists");

        let mut cold = FaultInjector::random(rate, seed);
        for s in 0..prefix {
            // Alternate applicable and non-applicable kinds.
            let pts: &[InjectionPoint] = if s % 3 == 0 { &[] } else { InjectionPoint::ALL };
            assert!(cold.draw(s, 0, pts).is_none());
        }
        let mut forked = FaultInjector::random(rate, seed);
        forked.fast_forward_fault_free(prefix);
        assert_eq!(forked.drawn(), cold.drawn());
        for s in prefix..prefix + 2_000 {
            assert_eq!(
                cold.draw(s, 0, InjectionPoint::ALL),
                forked.draw(s, 0, InjectionPoint::ALL),
                "suffix diverged at draw {s}"
            );
        }
    }

    #[test]
    fn first_possible_fire_modes() {
        assert_eq!(FaultInjector::none().first_possible_fire(1_000), None);
        // A rate too low to fire within the horizon reports None.
        assert_eq!(
            FaultInjector::random(1e-12, 3).first_possible_fire(100),
            None
        );
        let mut plan = FaultPlan::new();
        plan.add(70, 1, InjectionPoint::Result, 2);
        plan.add(30, 0, InjectionPoint::Result, 1);
        assert_eq!(plan.first_event_cycle(), Some(30));
        assert_eq!(
            FaultInjector::from_plan(plan.clone()).first_possible_fire(1_000),
            Some(30)
        );
        assert_eq!(FaultInjector::from_plan(plan).first_possible_fire(10), None);
        assert_eq!(FaultPlan::new().first_event_cycle(), None);
    }

    #[test]
    fn uniform_mix_is_stream_identical_to_random() {
        // `random_with_mix(uniform)` must reproduce `random`'s exact
        // event stream — site picks and bits included — so the default
        // sweep axis changes nothing about existing golden records.
        let collect = |mut inj: FaultInjector| {
            (0..2_000)
                .filter_map(|s| {
                    let pts: &[InjectionPoint] = if s % 3 == 0 {
                        &[InjectionPoint::Result, InjectionPoint::RobWait]
                    } else {
                        InjectionPoint::ALL
                    };
                    inj.draw(s, 0, pts).map(|e| (s, e))
                })
                .collect::<Vec<_>>()
        };
        let plain = collect(FaultInjector::random(0.02, 11));
        let mixed = collect(FaultInjector::random_with_mix(
            0.02,
            11,
            &SiteMix::uniform(),
        ));
        assert_eq!(plain, mixed);
        assert!(!plain.is_empty());
    }

    #[test]
    fn every_preset_preserves_one_f64_per_nonfiring_draw() {
        // The fork-bound invariant, per preset: a cold injector drawing a
        // fault-free prefix and a fresh injector fast-forwarded past it
        // must produce identical suffix streams, with draws of varying
        // applicability in the prefix.
        for name in crate::mix::PRESET_NAMES {
            let mix = SiteMix::preset(name).unwrap();
            let rate = 0.004;
            let seed = 1_234;
            let fresh = FaultInjector::random_with_mix(rate, seed, &mix);
            let first = fresh.first_possible_fire(200_000).unwrap();
            let prefix = first.min(700);
            assert!(prefix > 0, "{name}: no fault-free prefix to test");

            let mut cold = FaultInjector::random_with_mix(rate, seed, &mix);
            for s in 0..prefix {
                let pts: &[InjectionPoint] = match s % 3 {
                    0 => &[],
                    1 => &[InjectionPoint::EffAddr, InjectionPoint::OperandA],
                    _ => InjectionPoint::ALL,
                };
                assert!(cold.draw(s, 0, pts).is_none(), "{name}: premature fire");
            }
            let mut forked = FaultInjector::random_with_mix(rate, seed, &mix);
            forked.fast_forward_fault_free(prefix);
            assert_eq!(forked.drawn(), cold.drawn());
            for s in prefix..prefix + 3_000 {
                assert_eq!(
                    cold.draw(s, 0, InjectionPoint::ALL),
                    forked.draw(s, 0, InjectionPoint::ALL),
                    "{name}: suffix diverged at draw {s}"
                );
            }
        }
    }

    #[test]
    fn first_possible_fire_is_mix_independent() {
        // The Bernoulli stream is consulted before the mix, so the fork
        // bound must be the same number for every preset at a given
        // (rate, seed).
        for seed in [3, 71] {
            let bounds: Vec<Option<u64>> = crate::mix::PRESET_NAMES
                .iter()
                .map(|name| {
                    FaultInjector::random_with_mix(0.01, seed, &SiteMix::preset(name).unwrap())
                        .first_possible_fire(50_000)
                })
                .collect();
            assert!(bounds.windows(2).all(|w| w[0] == w[1]), "{bounds:?}");
            assert!(bounds[0].is_some());
        }
    }

    #[test]
    fn control_only_mix_fires_only_on_control_points() {
        let mix = SiteMix::preset("control-only").unwrap();
        let mut inj = FaultInjector::random_with_mix(1.0, 5, &mix);
        // Data-only applicability: every fire is suppressed by the mix.
        for s in 0..50 {
            assert!(inj
                .draw(s, 0, &[InjectionPoint::Result, InjectionPoint::RobWait])
                .is_none());
        }
        assert_eq!(inj.injected(), 0);
        // Control applicability: fires land only on control points.
        for s in 50..100 {
            let e = inj
                .draw(
                    s,
                    0,
                    &[
                        InjectionPoint::OperandA,
                        InjectionPoint::BranchDirection,
                        InjectionPoint::BranchTarget,
                    ],
                )
                .expect("rate 1 with positive-weight points fires");
            assert!(matches!(
                e.point,
                InjectionPoint::BranchDirection | InjectionPoint::BranchTarget
            ));
        }
    }

    #[test]
    fn site_codes_round_trip() {
        for &p in InjectionPoint::ALL {
            assert_eq!(InjectionPoint::from_code(p.code()), Some(p));
            assert_eq!(InjectionPoint::ALL[p.index()], p);
        }
        assert_eq!(InjectionPoint::from_code("nope"), None);
        assert_eq!(InjectionPoint::ALL.len(), InjectionPoint::COUNT);
    }

    #[test]
    fn planned_fires_once_at_right_place() {
        let mut plan = FaultPlan::new();
        plan.add(3, 1, InjectionPoint::Result, 5);
        let mut inj = FaultInjector::from_plan(plan);
        assert!(inj.draw(3, 0, InjectionPoint::ALL).is_none()); // wrong copy
        let e = inj.draw(3, 1, InjectionPoint::ALL).unwrap();
        assert_eq!(e.bit, 5);
        assert!(inj.draw(3, 1, InjectionPoint::ALL).is_none()); // consumed
    }

    #[test]
    fn planned_respects_applicability() {
        let mut plan = FaultPlan::new();
        plan.add(0, 0, InjectionPoint::EffAddr, 2);
        let mut inj = FaultInjector::from_plan(plan);
        // Instruction kind without an effective address: event is dropped.
        assert!(inj.draw(0, 0, &[InjectionPoint::Result]).is_none());
    }
}
