//! Transient-fault (single-event-upset) injection for `ftsim`.
//!
//! Reproduces the paper's fault-injection methodology (§5.1.1):
//!
//! > *"We also introduced a 'fault injection' module that can randomly
//! > corrupt some instructions based on a user-specified probability
//! > distribution function. Because our fault injection module may decide
//! > to corrupt some part of an instruction at any stage of the pipeline,
//! > significant changes had to be made [...] to allow rewinds to be
//! > decided later than the decode stage."*
//!
//! A fault is a **single-bit flip** applied to one *speculative* value of
//! one instruction **copy**: an operand, a computed result, an effective
//! address, store data, a branch direction or target, or a value sitting in
//! the ROB awaiting commit. Committed state (architectural registers,
//! caches, memory, TLBs, the rename map, the fetch queue) is ECC-protected
//! by assumption (§3.1) and is never targeted.
//!
//! Two injector modes:
//!
//! * [`FaultInjector::random`] — Bernoulli process with a per-copy
//!   corruption probability (the paper's fault frequency `f`, expressed in
//!   faults per instruction); used for the Figure 6 sweeps.
//!   [`FaultInjector::random_with_mix`] additionally weights the choice of
//!   injection site by a [`SiteMix`] (named presets such as `uniform`,
//!   `addr-heavy`, `control-only`), making the site distribution a sweep
//!   axis without perturbing the Bernoulli stream — a non-firing draw
//!   consumes exactly one `f64` under any mix, which keeps checkpoint
//!   forking sound.
//! * [`FaultInjector::from_plan`] — a deterministic [`FaultPlan`] that
//!   corrupts chosen `(dispatch index, copy)` pairs; used by unit and
//!   property tests to pin down exact detection/recovery behaviour.
//!
//! Every injected fault is tracked in a [`FaultLog`] through its
//! [`FaultFate`] — detected at commit, out-voted by majority election,
//! squashed on the wrong path, flushed by an unrelated rewind, or (only
//! possible without redundancy) silently committed.
//!
//! # Examples
//!
//! ```
//! use ftsim_faults::{FaultInjector, InjectionPoint};
//!
//! let mut inj = FaultInjector::random(0.5, 42);
//! let points = [InjectionPoint::Result];
//! let mut hits = 0;
//! for seq in 0..1000 {
//!     if inj.draw(seq, 0, &points).is_some() {
//!         hits += 1;
//!     }
//! }
//! assert!(hits > 400 && hits < 600); // ~Bernoulli(0.5)
//! ```

#![warn(missing_docs)]

mod injector;
mod log;
mod mix;
mod plan;

pub use injector::{FaultEvent, FaultInjector, InjectionPoint};
pub use log::{FaultCounts, FaultFate, FaultId, FaultLog, FaultRecord, LatencySummary, SiteCounts};
pub use mix::{SiteMix, PRESET_NAMES};
pub use plan::FaultPlan;

/// Converts a rate in faults per million instructions (Figure 6's x-axis
/// unit) to the per-instruction probability used by [`FaultInjector`].
///
/// # Examples
///
/// ```
/// assert_eq!(ftsim_faults::per_million(100.0), 1e-4);
/// ```
pub fn per_million(faults_per_million: f64) -> f64 {
    faults_per_million / 1e6
}
