//! Fault coverage ledger: what happened to every injected upset.

use crate::injector::FaultEvent;
use std::fmt;

/// Identifier of an injected fault within a [`FaultLog`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct FaultId(usize);

/// The eventual fate of an injected fault.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FaultFate {
    /// Injected but not yet resolved (instruction still in flight).
    Pending,
    /// The corrupted copy was on a mispredicted path and was squashed —
    /// the fault never had an architecturally-visible effect.
    SquashedWrongPath,
    /// Flushed by a full rewind triggered by a *different* fault before
    /// this one reached commit.
    SquashedByRewind,
    /// The commit-stage cross-check caught the disagreement and triggered
    /// recovery (the paper's detection + rewind path).
    Detected,
    /// With `R ≥ 3` and majority election, the corrupted copy was
    /// out-voted and the correct majority value committed (§3.2 Recovery).
    Outvoted,
    /// The corrupted value was architecturally masked — the cross-checked
    /// fields of all copies still agreed (e.g. an operand flip that did not
    /// change the result). No error, no recovery needed.
    Masked,
    /// The corruption reached committed state undetected. Possible only
    /// without redundancy (`R = 1`); with `R ≥ 2` this indicates a bug in
    /// the sphere of replication.
    Escaped,
}

/// One injected fault and its tracking state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultRecord {
    /// Dispatch index of the victim instruction.
    pub dispatch_seq: u64,
    /// Victim copy (0-based; `< R`).
    pub copy: u8,
    /// What was corrupted.
    pub event: FaultEvent,
    /// Resolution.
    pub fate: FaultFate,
}

/// Aggregated fate counts.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultCounts {
    /// Total injected.
    pub injected: u64,
    /// Still pending (should be 0 after a drained run).
    pub pending: u64,
    /// Squashed on the wrong path.
    pub squashed_wrong_path: u64,
    /// Flushed by an unrelated rewind.
    pub squashed_by_rewind: u64,
    /// Detected at commit (triggered recovery).
    pub detected: u64,
    /// Out-voted by majority election.
    pub outvoted: u64,
    /// Architecturally masked.
    pub masked: u64,
    /// Escaped to committed state.
    pub escaped: u64,
}

impl FaultCounts {
    /// Faults whose corruption reached a commit-time comparison (the
    /// denominator for coverage: detected + outvoted + escaped).
    pub fn effective(&self) -> u64 {
        self.detected + self.outvoted + self.escaped
    }

    /// Detection coverage over effective faults: `1.0` when nothing
    /// escaped; `1.0` (vacuously) when there were no effective faults.
    pub fn coverage(&self) -> f64 {
        let eff = self.effective();
        if eff == 0 {
            1.0
        } else {
            (self.detected + self.outvoted) as f64 / eff as f64
        }
    }
}

impl fmt::Display for FaultCounts {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "injected={} detected={} outvoted={} masked={} wrong-path={} rewind-flushed={} escaped={} pending={}",
            self.injected,
            self.detected,
            self.outvoted,
            self.masked,
            self.squashed_wrong_path,
            self.squashed_by_rewind,
            self.escaped,
            self.pending
        )
    }
}

/// Records every injected fault and its eventual fate.
///
/// # Examples
///
/// ```
/// use ftsim_faults::{FaultEvent, FaultFate, FaultLog, InjectionPoint};
///
/// let mut log = FaultLog::new();
/// let id = log.record(7, 0, FaultEvent { point: InjectionPoint::Result, bit: 3 });
/// log.resolve(id, FaultFate::Detected);
/// assert_eq!(log.counts().detected, 1);
/// assert_eq!(log.counts().coverage(), 1.0);
/// ```
#[derive(Debug, Clone, Default)]
pub struct FaultLog {
    records: Vec<FaultRecord>,
}

impl FaultLog {
    /// An empty log.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers a new injected fault as [`FaultFate::Pending`].
    pub fn record(&mut self, dispatch_seq: u64, copy: u8, event: FaultEvent) -> FaultId {
        self.records.push(FaultRecord {
            dispatch_seq,
            copy,
            event,
            fate: FaultFate::Pending,
        });
        FaultId(self.records.len() - 1)
    }

    /// Sets the fate of fault `id`.
    ///
    /// A fault's fate may be refined once from `Pending`; later calls are
    /// ignored unless they escalate `Masked`/`Pending` to a terminal fate —
    /// simplest rule that is stable under out-of-order resolution is:
    /// first non-`Pending` write wins.
    pub fn resolve(&mut self, id: FaultId, fate: FaultFate) {
        let r = &mut self.records[id.0];
        if r.fate == FaultFate::Pending {
            r.fate = fate;
        }
    }

    /// All records.
    pub fn records(&self) -> &[FaultRecord] {
        &self.records
    }

    /// Aggregate counts by fate.
    pub fn counts(&self) -> FaultCounts {
        let mut c = FaultCounts {
            injected: self.records.len() as u64,
            ..FaultCounts::default()
        };
        for r in &self.records {
            match r.fate {
                FaultFate::Pending => c.pending += 1,
                FaultFate::SquashedWrongPath => c.squashed_wrong_path += 1,
                FaultFate::SquashedByRewind => c.squashed_by_rewind += 1,
                FaultFate::Detected => c.detected += 1,
                FaultFate::Outvoted => c.outvoted += 1,
                FaultFate::Masked => c.masked += 1,
                FaultFate::Escaped => c.escaped += 1,
            }
        }
        c
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::injector::InjectionPoint;

    fn ev() -> FaultEvent {
        FaultEvent {
            point: InjectionPoint::Result,
            bit: 0,
        }
    }

    #[test]
    fn fates_accumulate() {
        let mut log = FaultLog::new();
        let a = log.record(0, 0, ev());
        let b = log.record(1, 1, ev());
        let c = log.record(2, 0, ev());
        log.resolve(a, FaultFate::Detected);
        log.resolve(b, FaultFate::SquashedWrongPath);
        log.resolve(c, FaultFate::Outvoted);
        let counts = log.counts();
        assert_eq!(counts.injected, 3);
        assert_eq!(counts.detected, 1);
        assert_eq!(counts.squashed_wrong_path, 1);
        assert_eq!(counts.outvoted, 1);
        assert_eq!(counts.pending, 0);
        assert_eq!(counts.effective(), 2);
        assert_eq!(counts.coverage(), 1.0);
    }

    #[test]
    fn first_resolution_wins() {
        let mut log = FaultLog::new();
        let a = log.record(0, 0, ev());
        log.resolve(a, FaultFate::Detected);
        log.resolve(a, FaultFate::Escaped);
        assert_eq!(log.records()[0].fate, FaultFate::Detected);
    }

    #[test]
    fn coverage_with_escape() {
        let mut log = FaultLog::new();
        let a = log.record(0, 0, ev());
        let b = log.record(1, 0, ev());
        log.resolve(a, FaultFate::Detected);
        log.resolve(b, FaultFate::Escaped);
        assert_eq!(log.counts().coverage(), 0.5);
    }

    #[test]
    fn vacuous_coverage_is_one() {
        assert_eq!(FaultLog::new().counts().coverage(), 1.0);
    }

    #[test]
    fn display_lists_all_fates() {
        let mut log = FaultLog::new();
        let a = log.record(0, 0, ev());
        log.resolve(a, FaultFate::Masked);
        let s = log.counts().to_string();
        assert!(s.contains("masked=1"));
        assert!(s.contains("injected=1"));
    }
}
