//! Fault coverage ledger: what happened to every injected upset, where it
//! struck, and how long it stayed live.

use crate::injector::{FaultEvent, InjectionPoint};
use std::fmt;

/// Identifier of an injected fault within a [`FaultLog`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct FaultId(usize);

/// The eventual fate of an injected fault.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FaultFate {
    /// Injected but not yet resolved (instruction still in flight).
    Pending,
    /// The corrupted copy was on a mispredicted path and was squashed —
    /// the fault never had an architecturally-visible effect.
    SquashedWrongPath,
    /// Flushed by a full rewind triggered by a *different* fault before
    /// this one reached commit.
    SquashedByRewind,
    /// The commit-stage cross-check caught the disagreement and triggered
    /// recovery (the paper's detection + rewind path).
    Detected,
    /// With `R ≥ 3` and majority election, the corrupted copy was
    /// out-voted and the correct majority value committed (§3.2 Recovery).
    Outvoted,
    /// The corrupted value was architecturally masked — the cross-checked
    /// fields of all copies still agreed (e.g. an operand flip that did not
    /// change the result). No error, no recovery needed.
    Masked,
    /// The corruption reached committed state undetected. Possible only
    /// without redundancy (`R = 1`); with `R ≥ 2` this indicates a bug in
    /// the sphere of replication.
    Escaped,
}

/// One injected fault and its tracking state.
///
/// Beyond the fate, the record carries the *when* of both endpoints —
/// injection (at dispatch) and resolution — in cycles and in retired
/// architectural instructions, so detection latency can be reported in
/// either unit.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultRecord {
    /// Dispatch index of the victim instruction.
    pub dispatch_seq: u64,
    /// Victim copy (0-based; `< R`).
    pub copy: u8,
    /// What was corrupted.
    pub event: FaultEvent,
    /// Resolution.
    pub fate: FaultFate,
    /// Cycle at which the fault was injected (victim dispatch).
    pub injected_cycle: u64,
    /// Retired-instruction count at injection.
    pub injected_retired: u64,
    /// Cycle at which the fate was resolved (0 while pending).
    pub resolved_cycle: u64,
    /// Retired-instruction count at resolution (0 while pending).
    pub resolved_retired: u64,
}

impl FaultRecord {
    /// Cycles from injection to resolution; `None` while pending.
    pub fn latency_cycles(&self) -> Option<u64> {
        (self.fate != FaultFate::Pending)
            .then(|| self.resolved_cycle.saturating_sub(self.injected_cycle))
    }

    /// Retired instructions from injection to resolution; `None` while
    /// pending.
    pub fn latency_instructions(&self) -> Option<u64> {
        (self.fate != FaultFate::Pending)
            .then(|| self.resolved_retired.saturating_sub(self.injected_retired))
    }
}

/// Aggregated fate counts.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultCounts {
    /// Total injected.
    pub injected: u64,
    /// Still pending (should be 0 after a drained run).
    pub pending: u64,
    /// Squashed on the wrong path.
    pub squashed_wrong_path: u64,
    /// Flushed by an unrelated rewind.
    pub squashed_by_rewind: u64,
    /// Detected at commit (triggered recovery).
    pub detected: u64,
    /// Out-voted by majority election.
    pub outvoted: u64,
    /// Architecturally masked.
    pub masked: u64,
    /// Escaped to committed state.
    pub escaped: u64,
}

impl FaultCounts {
    /// Faults whose corruption reached a commit-time comparison (the
    /// denominator for coverage: detected + outvoted + escaped).
    pub fn effective(&self) -> u64 {
        self.detected + self.outvoted + self.escaped
    }

    /// Detection coverage over effective faults: `1.0` when nothing
    /// escaped; `1.0` (vacuously) when there were no effective faults.
    pub fn coverage(&self) -> f64 {
        let eff = self.effective();
        if eff == 0 {
            1.0
        } else {
            (self.detected + self.outvoted) as f64 / eff as f64
        }
    }

    fn count(&mut self, fate: FaultFate) {
        match fate {
            FaultFate::Pending => self.pending += 1,
            FaultFate::SquashedWrongPath => self.squashed_wrong_path += 1,
            FaultFate::SquashedByRewind => self.squashed_by_rewind += 1,
            FaultFate::Detected => self.detected += 1,
            FaultFate::Outvoted => self.outvoted += 1,
            FaultFate::Masked => self.masked += 1,
            FaultFate::Escaped => self.escaped += 1,
        }
    }

    /// Merges another count set into this one (used when aggregating
    /// per-site tables across runs).
    pub fn merge(&mut self, other: &FaultCounts) {
        self.injected += other.injected;
        self.pending += other.pending;
        self.squashed_wrong_path += other.squashed_wrong_path;
        self.squashed_by_rewind += other.squashed_by_rewind;
        self.detected += other.detected;
        self.outvoted += other.outvoted;
        self.masked += other.masked;
        self.escaped += other.escaped;
    }
}

impl fmt::Display for FaultCounts {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "injected={} detected={} outvoted={} masked={} wrong-path={} rewind-flushed={} escaped={} pending={}",
            self.injected,
            self.detected,
            self.outvoted,
            self.masked,
            self.squashed_wrong_path,
            self.squashed_by_rewind,
            self.escaped,
            self.pending
        )
    }
}

/// Per-[`InjectionPoint`] fate counts: the raw material of fault-site
/// sensitivity tables.
///
/// The compact string form ([`SiteCounts::to_compact`] /
/// [`SiteCounts::from_compact`]) is what run records carry through
/// CSV/JSON: sites in canonical order, zero-injected sites omitted,
/// counts positional — `res=7:0:1:0:4:0:2:0;ea=3:...` with the positions
/// `injected:pending:wrong-path:rewind-flushed:detected:outvoted:masked:escaped`.
///
/// # Examples
///
/// ```
/// use ftsim_faults::{FaultCounts, InjectionPoint, SiteCounts};
///
/// let mut sites = SiteCounts::default();
/// sites.get_mut(InjectionPoint::EffAddr).injected = 3;
/// sites.get_mut(InjectionPoint::EffAddr).detected = 3;
/// let text = sites.to_compact();
/// assert_eq!(text, "ea=3:0:0:0:3:0:0:0");
/// assert_eq!(SiteCounts::from_compact(&text).unwrap(), sites);
/// assert_eq!(SiteCounts::default().to_compact(), "");
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SiteCounts([FaultCounts; InjectionPoint::COUNT]);

impl SiteCounts {
    /// The counts for one injection point.
    pub fn get(&self, point: InjectionPoint) -> &FaultCounts {
        &self.0[point.index()]
    }

    /// Mutable counts for one injection point.
    pub fn get_mut(&mut self, point: InjectionPoint) -> &mut FaultCounts {
        &mut self.0[point.index()]
    }

    /// Iterates `(point, counts)` in canonical order.
    pub fn iter(&self) -> impl Iterator<Item = (InjectionPoint, &FaultCounts)> {
        InjectionPoint::ALL.iter().map(move |&p| (p, self.get(p)))
    }

    /// Whether no fault was recorded at any site.
    pub fn is_empty(&self) -> bool {
        self.0.iter().all(|c| c.injected == 0)
    }

    /// Merges another table into this one, site by site.
    pub fn merge(&mut self, other: &SiteCounts) {
        for (i, c) in other.0.iter().enumerate() {
            self.0[i].merge(c);
        }
    }

    /// The canonical compact encoding (see the type docs). Empty string
    /// when no faults were recorded.
    pub fn to_compact(&self) -> String {
        let mut out = String::new();
        for (p, c) in self.iter() {
            if c.injected == 0 {
                continue;
            }
            if !out.is_empty() {
                out.push(';');
            }
            out.push_str(&format!(
                "{}={}:{}:{}:{}:{}:{}:{}:{}",
                p.code(),
                c.injected,
                c.pending,
                c.squashed_wrong_path,
                c.squashed_by_rewind,
                c.detected,
                c.outvoted,
                c.masked,
                c.escaped
            ));
        }
        out
    }

    /// Parses a string produced by [`SiteCounts::to_compact`].
    ///
    /// # Errors
    ///
    /// A human-readable message for an unknown site code, a malformed
    /// entry, or a non-numeric count.
    pub fn from_compact(text: &str) -> Result<Self, String> {
        let mut sites = SiteCounts::default();
        if text.is_empty() {
            return Ok(sites);
        }
        for part in text.split(';') {
            let (code, counts) = part
                .split_once('=')
                .ok_or_else(|| format!("bad site entry `{part}`"))?;
            let point = InjectionPoint::from_code(code)
                .ok_or_else(|| format!("unknown site code `{code}`"))?;
            let fields: Vec<u64> = counts
                .split(':')
                .map(|n| {
                    n.parse()
                        .map_err(|_| format!("bad count `{n}` in `{part}`"))
                })
                .collect::<Result<_, _>>()?;
            let [injected, pending, swp, sbr, detected, outvoted, masked, escaped] = fields[..]
            else {
                return Err(format!("site entry `{part}` must carry 8 counts"));
            };
            *sites.get_mut(point) = FaultCounts {
                injected,
                pending,
                squashed_wrong_path: swp,
                squashed_by_rewind: sbr,
                detected,
                outvoted,
                masked,
                escaped,
            };
        }
        Ok(sites)
    }
}

/// Aggregate detection-latency telemetry: sums and extrema over the
/// faults that reached a commit-time resolution (detected or out-voted).
///
/// Carrying sums rather than means keeps the summary exactly mergeable
/// across runs and losslessly serializable as integers.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LatencySummary {
    /// Number of detection events measured (detected + out-voted faults).
    pub events: u64,
    /// Sum of injection→resolution latencies in cycles.
    pub cycles_sum: u64,
    /// Sum of injection→resolution latencies in retired instructions.
    pub instructions_sum: u64,
    /// Largest single injection→resolution latency in cycles.
    pub cycles_max: u64,
}

impl LatencySummary {
    /// Mean detection latency in cycles; zero when no events.
    pub fn mean_cycles(&self) -> f64 {
        if self.events == 0 {
            0.0
        } else {
            self.cycles_sum as f64 / self.events as f64
        }
    }

    /// Mean detection latency in retired instructions; zero when no
    /// events.
    pub fn mean_instructions(&self) -> f64 {
        if self.events == 0 {
            0.0
        } else {
            self.instructions_sum as f64 / self.events as f64
        }
    }
}

/// Records every injected fault and its eventual fate.
///
/// # Examples
///
/// ```
/// use ftsim_faults::{FaultEvent, FaultFate, FaultLog, InjectionPoint};
///
/// let mut log = FaultLog::new();
/// let ev = FaultEvent { point: InjectionPoint::Result, bit: 3 };
/// let id = log.record(7, 0, ev, 100, 40);
/// log.resolve(id, FaultFate::Detected, 130, 52);
/// assert_eq!(log.counts().detected, 1);
/// assert_eq!(log.counts().coverage(), 1.0);
/// assert_eq!(log.latency().cycles_sum, 30);
/// assert_eq!(log.per_site().get(InjectionPoint::Result).detected, 1);
/// ```
#[derive(Debug, Clone, Default)]
pub struct FaultLog {
    records: Vec<FaultRecord>,
}

impl FaultLog {
    /// An empty log.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers a new injected fault as [`FaultFate::Pending`], stamped
    /// with the injection-time cycle and retired-instruction count.
    pub fn record(
        &mut self,
        dispatch_seq: u64,
        copy: u8,
        event: FaultEvent,
        cycle: u64,
        retired: u64,
    ) -> FaultId {
        self.records.push(FaultRecord {
            dispatch_seq,
            copy,
            event,
            fate: FaultFate::Pending,
            injected_cycle: cycle,
            injected_retired: retired,
            resolved_cycle: 0,
            resolved_retired: 0,
        });
        FaultId(self.records.len() - 1)
    }

    /// Sets the fate of fault `id`, stamped with the resolution-time
    /// cycle and retired-instruction count.
    ///
    /// A fault's fate may be refined once from `Pending`; later calls are
    /// ignored — the simplest rule that is stable under out-of-order
    /// resolution is: first non-`Pending` write wins.
    pub fn resolve(&mut self, id: FaultId, fate: FaultFate, cycle: u64, retired: u64) {
        let r = &mut self.records[id.0];
        if r.fate == FaultFate::Pending {
            r.fate = fate;
            r.resolved_cycle = cycle;
            r.resolved_retired = retired;
        }
    }

    /// All records.
    pub fn records(&self) -> &[FaultRecord] {
        &self.records
    }

    /// Aggregate counts by fate.
    pub fn counts(&self) -> FaultCounts {
        let mut c = FaultCounts {
            injected: self.records.len() as u64,
            ..FaultCounts::default()
        };
        for r in &self.records {
            c.count(r.fate);
        }
        c
    }

    /// Counts by fate, split by injection site.
    pub fn per_site(&self) -> SiteCounts {
        let mut sites = SiteCounts::default();
        for r in &self.records {
            let c = sites.get_mut(r.event.point);
            c.injected += 1;
            c.count(r.fate);
        }
        sites
    }

    /// Detection-latency telemetry over the faults that reached a
    /// commit-time resolution ([`FaultFate::Detected`] or
    /// [`FaultFate::Outvoted`]): how long each corruption stayed live
    /// between injection and the cross-check that ended it.
    pub fn latency(&self) -> LatencySummary {
        let mut s = LatencySummary::default();
        for r in &self.records {
            if !matches!(r.fate, FaultFate::Detected | FaultFate::Outvoted) {
                continue;
            }
            let cycles = r.latency_cycles().expect("resolved fault");
            s.events += 1;
            s.cycles_sum += cycles;
            s.instructions_sum += r.latency_instructions().expect("resolved fault");
            s.cycles_max = s.cycles_max.max(cycles);
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::injector::InjectionPoint;

    fn ev() -> FaultEvent {
        FaultEvent {
            point: InjectionPoint::Result,
            bit: 0,
        }
    }

    fn ev_at(point: InjectionPoint) -> FaultEvent {
        FaultEvent { point, bit: 1 }
    }

    #[test]
    fn fates_accumulate() {
        let mut log = FaultLog::new();
        let a = log.record(0, 0, ev(), 10, 1);
        let b = log.record(1, 1, ev(), 20, 2);
        let c = log.record(2, 0, ev(), 30, 3);
        log.resolve(a, FaultFate::Detected, 40, 5);
        log.resolve(b, FaultFate::SquashedWrongPath, 25, 2);
        log.resolve(c, FaultFate::Outvoted, 90, 9);
        let counts = log.counts();
        assert_eq!(counts.injected, 3);
        assert_eq!(counts.detected, 1);
        assert_eq!(counts.squashed_wrong_path, 1);
        assert_eq!(counts.outvoted, 1);
        assert_eq!(counts.pending, 0);
        assert_eq!(counts.effective(), 2);
        assert_eq!(counts.coverage(), 1.0);
    }

    #[test]
    fn first_resolution_wins_and_keeps_its_timestamps() {
        let mut log = FaultLog::new();
        let a = log.record(0, 0, ev(), 5, 0);
        log.resolve(a, FaultFate::Detected, 35, 4);
        log.resolve(a, FaultFate::Escaped, 99, 9);
        let r = log.records()[0];
        assert_eq!(r.fate, FaultFate::Detected);
        assert_eq!(r.resolved_cycle, 35);
        assert_eq!(r.latency_cycles(), Some(30));
        assert_eq!(r.latency_instructions(), Some(4));
    }

    #[test]
    fn latency_counts_only_commit_time_resolutions() {
        let mut log = FaultLog::new();
        let a = log.record(0, 0, ev(), 100, 10);
        let b = log.record(1, 0, ev(), 200, 20);
        let c = log.record(2, 0, ev(), 300, 30);
        let d = log.record(3, 0, ev(), 400, 40);
        log.resolve(a, FaultFate::Detected, 150, 15); // 50 cycles, 5 insts
        log.resolve(b, FaultFate::Outvoted, 280, 24); // 80 cycles, 4 insts
        log.resolve(c, FaultFate::Masked, 310, 31); // not a detection
        log.resolve(d, FaultFate::SquashedWrongPath, 404, 40); // nor this
        let s = log.latency();
        assert_eq!(s.events, 2);
        assert_eq!(s.cycles_sum, 130);
        assert_eq!(s.instructions_sum, 9);
        assert_eq!(s.cycles_max, 80);
        assert!((s.mean_cycles() - 65.0).abs() < 1e-12);
        assert!((s.mean_instructions() - 4.5).abs() < 1e-12);
        // A pending fault reports no latency at all.
        let mut pending = FaultLog::new();
        pending.record(0, 0, ev(), 1, 0);
        assert_eq!(pending.latency(), LatencySummary::default());
        assert_eq!(pending.records()[0].latency_cycles(), None);
    }

    #[test]
    fn per_site_counts_split_by_injection_point() {
        let mut log = FaultLog::new();
        let a = log.record(0, 0, ev_at(InjectionPoint::EffAddr), 0, 0);
        let b = log.record(1, 0, ev_at(InjectionPoint::EffAddr), 0, 0);
        let c = log.record(2, 0, ev_at(InjectionPoint::BranchTarget), 0, 0);
        log.resolve(a, FaultFate::Detected, 1, 1);
        log.resolve(b, FaultFate::Masked, 1, 1);
        log.resolve(c, FaultFate::Escaped, 1, 1);
        let sites = log.per_site();
        assert_eq!(sites.get(InjectionPoint::EffAddr).injected, 2);
        assert_eq!(sites.get(InjectionPoint::EffAddr).detected, 1);
        assert_eq!(sites.get(InjectionPoint::EffAddr).masked, 1);
        assert_eq!(sites.get(InjectionPoint::BranchTarget).escaped, 1);
        assert_eq!(sites.get(InjectionPoint::Result).injected, 0);
        assert!(!sites.is_empty());
    }

    #[test]
    fn site_counts_compact_round_trip() {
        let mut log = FaultLog::new();
        for (i, &p) in InjectionPoint::ALL.iter().enumerate() {
            let id = log.record(i as u64, 0, ev_at(p), 0, 0);
            let fate = [
                FaultFate::Detected,
                FaultFate::Outvoted,
                FaultFate::Masked,
                FaultFate::Escaped,
                FaultFate::SquashedWrongPath,
                FaultFate::SquashedByRewind,
            ][i % 6];
            log.resolve(id, fate, 1, 1);
        }
        log.record(99, 0, ev(), 0, 0); // one left pending
        let sites = log.per_site();
        let text = sites.to_compact();
        assert_eq!(SiteCounts::from_compact(&text).unwrap(), sites);

        // Merging two tables equals logging both sets.
        let mut merged = sites;
        merged.merge(&sites);
        assert_eq!(
            merged.get(InjectionPoint::Result).injected,
            2 * sites.get(InjectionPoint::Result).injected
        );

        assert!(SiteCounts::from_compact("zzz=1:0:0:0:0:0:0:0").is_err());
        assert!(SiteCounts::from_compact("res=1:2").is_err());
        assert!(SiteCounts::from_compact("res=a:0:0:0:0:0:0:0").is_err());
        assert!(SiteCounts::from_compact("garbage").is_err());
        assert_eq!(SiteCounts::from_compact("").unwrap(), SiteCounts::default());
    }

    #[test]
    fn coverage_with_escape() {
        let mut log = FaultLog::new();
        let a = log.record(0, 0, ev(), 0, 0);
        let b = log.record(1, 0, ev(), 0, 0);
        log.resolve(a, FaultFate::Detected, 1, 1);
        log.resolve(b, FaultFate::Escaped, 1, 1);
        assert_eq!(log.counts().coverage(), 0.5);
    }

    #[test]
    fn vacuous_coverage_is_one() {
        assert_eq!(FaultLog::new().counts().coverage(), 1.0);
    }

    #[test]
    fn display_lists_all_fates() {
        let mut log = FaultLog::new();
        let a = log.record(0, 0, ev(), 0, 0);
        log.resolve(a, FaultFate::Masked, 1, 1);
        let s = log.counts().to_string();
        assert!(s.contains("masked=1"));
        assert!(s.contains("injected=1"));
    }
}
