//! Fault-site mixes: weighted distributions over [`InjectionPoint`]s.
//!
//! The paper's injector "may decide to corrupt some part of an
//! instruction at any stage of the pipeline" — but not all parts are
//! equally likely targets in a real machine (address datapaths, control
//! logic and data registers have different areas and vulnerability
//! windows), and the follow-on literature characterizes sensitivity *per
//! site*. A [`SiteMix`] makes the site distribution a first-class sweep
//! axis: every injection point carries a non-negative weight, and a
//! firing draw picks among the victim instruction's applicable points
//! with those weights instead of uniformly.
//!
//! **Fork-bound invariant.** Whether or not a mix is attached, a
//! *non-firing* Bernoulli draw consumes exactly one `f64` from the
//! injector's stream: the mix is consulted only *after* the rate trial
//! fires. `FaultInjector::first_possible_fire` and
//! `FaultInjector::fast_forward_fault_free` therefore stay sound for any
//! mix, and checkpoint-forked sweeps remain byte-identical to cold runs.

use crate::injector::InjectionPoint;
use std::fmt;

/// Names of the built-in site-mix presets, in registry order.
pub const PRESET_NAMES: [&str; 4] = ["uniform", "addr-heavy", "control-only", "data-only"];

/// A weighted distribution over the eight [`InjectionPoint`]s.
///
/// Construct via a preset ([`SiteMix::preset`], [`SiteMix::uniform`]) or
/// custom weights ([`SiteMix::custom`]). The mix's name identifies it in
/// run records and job specs; two mixes with equal names are assumed to
/// describe the same distribution when records are grouped for analysis.
///
/// # Examples
///
/// ```
/// use ftsim_faults::{InjectionPoint, SiteMix};
///
/// let mix = SiteMix::preset("control-only").unwrap();
/// assert_eq!(mix.name(), "control-only");
/// assert!(mix.weight(InjectionPoint::BranchDirection) > 0.0);
/// assert_eq!(mix.weight(InjectionPoint::Result), 0.0);
/// assert!(!mix.is_uniform());
/// assert!(SiteMix::uniform().is_uniform());
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct SiteMix {
    name: String,
    weights: [f64; InjectionPoint::COUNT],
}

impl SiteMix {
    /// The uniform mix: every applicable point equally likely (the
    /// injector's historical behaviour, and the default sweep axis).
    pub fn uniform() -> Self {
        Self {
            name: "uniform".to_string(),
            weights: [1.0; InjectionPoint::COUNT],
        }
    }

    /// Resolves a preset by name (see [`PRESET_NAMES`]):
    ///
    /// * `uniform` — all sites weighted equally;
    /// * `addr-heavy` — effective-address corruption dominates (weight 8),
    ///   address-forming operands doubled, everything else weight 1 — the
    ///   "memory datapath is the soft spot" scenario;
    /// * `control-only` — only branch direction and branch/jump target
    ///   corruptions fire (control-logic upsets);
    /// * `data-only` — only computed results, store data and ROB-resident
    ///   values fire (datapath/register upsets).
    pub fn preset(name: &str) -> Option<Self> {
        use InjectionPoint::*;
        let mut weights = [0.0; InjectionPoint::COUNT];
        match name {
            "uniform" => return Some(Self::uniform()),
            "addr-heavy" => {
                weights = [1.0; InjectionPoint::COUNT];
                weights[EffAddr.index()] = 8.0;
                weights[OperandA.index()] = 2.0;
                weights[OperandB.index()] = 2.0;
            }
            "control-only" => {
                weights[BranchDirection.index()] = 1.0;
                weights[BranchTarget.index()] = 1.0;
            }
            "data-only" => {
                weights[Result.index()] = 1.0;
                weights[StoreData.index()] = 1.0;
                weights[RobWait.index()] = 1.0;
            }
            _ => return None,
        }
        Some(Self {
            name: name.to_string(),
            weights,
        })
    }

    /// A custom mix from explicit per-point weights (indexed as
    /// [`InjectionPoint::ALL`]). Weights need not be normalized.
    ///
    /// # Panics
    ///
    /// Panics when any weight is negative or non-finite, or when all
    /// weights are zero (the mix could never fire).
    pub fn custom(name: impl Into<String>, weights: [f64; InjectionPoint::COUNT]) -> Self {
        assert!(
            weights.iter().all(|w| w.is_finite() && *w >= 0.0),
            "site-mix weights must be finite and non-negative"
        );
        assert!(
            weights.iter().any(|w| *w > 0.0),
            "site mix needs at least one positive weight"
        );
        Self {
            name: name.into(),
            weights,
        }
    }

    /// The mix's name, used in run records and job specs.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The weight of one injection point.
    pub fn weight(&self, point: InjectionPoint) -> f64 {
        self.weights[point.index()]
    }

    /// Whether every point carries the same positive weight — in which
    /// case the injector uses its (stream-compatible) uniform fast path.
    pub fn is_uniform(&self) -> bool {
        let first = self.weights[0];
        first > 0.0 && self.weights.iter().all(|w| *w == first)
    }

    /// Picks a point among `applicable` by weight, driven by one uniform
    /// sample `x ∈ [0, 1)`. Returns `None` when every applicable point
    /// has zero weight (the fault is suppressed, like an empty
    /// `applicable` list).
    pub(crate) fn pick(&self, applicable: &[InjectionPoint], x: f64) -> Option<InjectionPoint> {
        let total: f64 = applicable.iter().map(|p| self.weight(*p)).sum();
        if total <= 0.0 {
            return None;
        }
        let mut target = x * total;
        for &p in applicable {
            target -= self.weight(p);
            if target < 0.0 {
                return Some(p);
            }
        }
        // Floating-point slack on the last boundary: fall back to the
        // last positive-weight point.
        applicable
            .iter()
            .rev()
            .find(|p| self.weight(**p) > 0.0)
            .copied()
    }
}

impl Default for SiteMix {
    fn default() -> Self {
        Self::uniform()
    }
}

impl fmt::Display for SiteMix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_resolve_and_unknown_does_not() {
        for name in PRESET_NAMES {
            let mix = SiteMix::preset(name).unwrap_or_else(|| panic!("preset {name}"));
            assert_eq!(mix.name(), name);
        }
        assert!(SiteMix::preset("banana").is_none());
    }

    #[test]
    fn uniform_is_uniform_and_others_are_not() {
        assert!(SiteMix::uniform().is_uniform());
        for name in ["addr-heavy", "control-only", "data-only"] {
            assert!(!SiteMix::preset(name).unwrap().is_uniform(), "{name}");
        }
    }

    #[test]
    fn pick_respects_zero_weights() {
        use InjectionPoint::*;
        let mix = SiteMix::preset("control-only").unwrap();
        // A load's applicable points carry no control weight at all.
        assert_eq!(mix.pick(&[OperandA, EffAddr, Result, RobWait], 0.5), None);
        // Among control points the split is proportional.
        assert_eq!(
            mix.pick(&[BranchDirection, BranchTarget], 0.25),
            Some(BranchDirection)
        );
        assert_eq!(
            mix.pick(&[BranchDirection, BranchTarget], 0.75),
            Some(BranchTarget)
        );
    }

    #[test]
    fn pick_covers_the_whole_unit_interval() {
        use InjectionPoint::*;
        let mix = SiteMix::preset("addr-heavy").unwrap();
        let applicable = [OperandA, EffAddr, Result, RobWait];
        for i in 0..1000 {
            let x = i as f64 / 1000.0;
            assert!(mix.pick(&applicable, x).is_some());
        }
        // The boundary sample x→1 lands on a positive-weight point.
        assert!(mix.pick(&applicable, 0.999_999_999).is_some());
    }

    #[test]
    fn weighted_pick_is_biased_toward_heavy_sites() {
        use InjectionPoint::*;
        let mix = SiteMix::preset("addr-heavy").unwrap();
        let applicable = [OperandA, EffAddr, Result, RobWait];
        let total = 2.0 + 8.0 + 1.0 + 1.0;
        let hits = (0..10_000)
            .filter(|i| mix.pick(&applicable, *i as f64 / 10_000.0) == Some(EffAddr))
            .count();
        let expected = (8.0 / total * 10_000.0) as usize;
        assert!(
            hits.abs_diff(expected) < 100,
            "EffAddr picked {hits}, expected ≈{expected}"
        );
    }

    #[test]
    #[should_panic(expected = "positive weight")]
    fn all_zero_custom_mix_panics() {
        let _ = SiteMix::custom("dead", [0.0; InjectionPoint::COUNT]);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_custom_weight_panics() {
        let mut w = [1.0; InjectionPoint::COUNT];
        w[0] = -1.0;
        let _ = SiteMix::custom("neg", w);
    }
}
