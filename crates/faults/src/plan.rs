//! Deterministic fault plans for tests.

use crate::injector::{FaultEvent, InjectionPoint};
use std::collections::HashMap;

/// A scripted set of fault events keyed by `(dispatch index, copy)`.
///
/// The dispatch index counts architectural instructions as they are
/// dispatched (re-dispatches after a rewind keep counting), so a planned
/// fault fires exactly once even if the victim instruction is later
/// re-executed — matching the transient, non-recurring nature of SEUs.
///
/// # Examples
///
/// ```
/// use ftsim_faults::{FaultInjector, FaultPlan, InjectionPoint};
///
/// let mut plan = FaultPlan::new();
/// plan.add(10, 1, InjectionPoint::Result, 0); // copy 1 of the 10th dispatch
/// let mut inj = FaultInjector::from_plan(plan);
/// assert!(inj.draw(10, 1, InjectionPoint::ALL).is_some());
/// ```
#[derive(Debug, Clone, Default)]
pub struct FaultPlan {
    events: HashMap<(u64, u8), FaultEvent>,
}

impl FaultPlan {
    /// An empty plan.
    pub fn new() -> Self {
        Self::default()
    }

    /// Schedules a bit-`bit` flip at `point` on copy `copy` of the
    /// instruction with dispatch index `dispatch_seq`. Replaces any event
    /// already scheduled for that slot.
    pub fn add(
        &mut self,
        dispatch_seq: u64,
        copy: u8,
        point: InjectionPoint,
        bit: u8,
    ) -> &mut Self {
        self.events
            .insert((dispatch_seq, copy), FaultEvent { point, bit });
        self
    }

    /// Removes and returns the event for `(dispatch_seq, copy)`, if any.
    pub(crate) fn take(&mut self, dispatch_seq: u64, copy: u8) -> Option<FaultEvent> {
        self.events.remove(&(dispatch_seq, copy))
    }

    /// The earliest point on the plan's time axis — the smallest dispatch
    /// index carrying a pending event — or `None` for an empty plan.
    ///
    /// A plan's clock is the *dispatch index* (architectural instructions
    /// in dispatch order), the same unit [`FaultPlan::add`] takes: the
    /// plan cannot fire before the machine dispatches that instruction, so
    /// any machine checkpoint taken strictly before it is a sound fork
    /// point for a run driven by this plan.
    pub fn first_event_cycle(&self) -> Option<u64> {
        self.events.keys().map(|&(dispatch, _)| dispatch).min()
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// `true` when no events remain.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_take_consumes() {
        let mut p = FaultPlan::new();
        p.add(1, 0, InjectionPoint::Result, 3);
        p.add(2, 1, InjectionPoint::EffAddr, 4);
        assert_eq!(p.len(), 2);
        let e = p.take(1, 0).unwrap();
        assert_eq!(e.bit, 3);
        assert!(p.take(1, 0).is_none());
        assert_eq!(p.len(), 1);
        assert!(!p.is_empty());
    }

    #[test]
    fn add_replaces_slot() {
        let mut p = FaultPlan::new();
        p.add(1, 0, InjectionPoint::Result, 3);
        p.add(1, 0, InjectionPoint::Result, 9);
        assert_eq!(p.len(), 1);
        assert_eq!(p.take(1, 0).unwrap().bit, 9);
    }
}
