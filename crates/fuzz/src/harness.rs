//! The property harness: run one generated program through a fault-sweep
//! grid and check every standing invariant.
//!
//! A fuzz seed expands (via [`FuzzSpec::from_seed`]) into one program and
//! a fixed grid of sweep cells: every machine model in [`MODELS`], every
//! fault rate in [`RATES`], every site mix in [`MIX_NAMES`], at a budget
//! just above the program's predicted retirement. The grid is run twice —
//! cold and with checkpoint forking enabled — because the fork machinery
//! itself is under test (the forked-vs-cold identity invariant).

use ftsim::harness::{from_csv, from_json, to_csv, to_json, Experiment, RunRecord, Workload};
use ftsim_core::OracleMode;
use ftsim_daemon::model_by_name;
use ftsim_faults::SiteMix;
use ftsim_isa::Emulator;
use ftsim_workloads::{FuzzProgram, FuzzSpec};

/// Machine models every seed sweeps: the paper's baseline duplicated
/// datapath and the triplicated majority-voting variant (the two
/// recovery disciplines exercise different rewind paths).
pub const MODELS: [&str; 2] = ["SS-2", "SS-3M"];

/// Fault rates (per million instructions) every seed sweeps. Rate 0 is
/// the differential baseline; 300 forks from checkpoints at typical
/// budgets; 2500 usually fires before the first checkpoint.
pub const RATES: [f64; 3] = [0.0, 300.0, 2500.0];

/// Site-mix presets every seed sweeps.
pub const MIX_NAMES: [&str; 2] = ["uniform", "addr-heavy"];

/// Instruction-budget slack added above the predicted retirement when no
/// explicit budget override is given.
pub const BUDGET_SLACK: u64 = 64;

/// Emulator step cap for the self-check: far above any generated
/// program's dynamic length, so hitting it means a runaway loop.
const SELF_CHECK_STEP_CAP: u64 = 20_000_000;

/// The standing invariants the harness checks, in checking order.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Invariant {
    /// Emulator halts with the constructed checksum and retirement count.
    SelfCheck,
    /// Fault-free runs never trip the watchdog or cycle ceiling, and
    /// every cell produces exactly one record.
    Termination,
    /// Fault-free pipelined runs agree with the in-order oracle and are
    /// digest-identical across machine models.
    OracleFaultFree,
    /// Checkpoint-forked sweeps reproduce cold sweeps byte-for-byte.
    ForkedColdIdentity,
    /// CSV and JSON record serialization round-trip losslessly.
    RoundTrip,
    /// Fully masked faulty runs reach the fault-free digest.
    MaskedDigest,
}

impl Invariant {
    /// All invariants in checking order.
    pub const ALL: [Invariant; 6] = [
        Invariant::SelfCheck,
        Invariant::Termination,
        Invariant::OracleFaultFree,
        Invariant::ForkedColdIdentity,
        Invariant::RoundTrip,
        Invariant::MaskedDigest,
    ];

    /// Stable kebab-case name (used in verdict lines and repro files).
    pub fn name(self) -> &'static str {
        match self {
            Invariant::SelfCheck => "self-check",
            Invariant::Termination => "termination",
            Invariant::OracleFaultFree => "oracle-fault-free",
            Invariant::ForkedColdIdentity => "forked-cold-identity",
            Invariant::RoundTrip => "round-trip",
            Invariant::MaskedDigest => "masked-digest",
        }
    }

    /// Resolves a name produced by [`Invariant::name`].
    pub fn from_name(name: &str) -> Option<Self> {
        Invariant::ALL.iter().copied().find(|i| i.name() == name)
    }

    /// Whether this invariant's violation depends on the injected fault
    /// sequence (and therefore benefits from fault-plan shrinking).
    pub fn fault_dependent(self) -> bool {
        matches!(
            self,
            Invariant::ForkedColdIdentity | Invariant::MaskedDigest
        )
    }
}

/// A violated invariant, with enough coordinates to re-check it in
/// isolation during shrinking.
#[derive(Debug, Clone)]
pub struct Violation {
    /// Which invariant failed.
    pub invariant: Invariant,
    /// Deterministic, single-line human-readable description.
    pub detail: String,
    /// Machine model of the offending cell (empty for `SelfCheck`).
    pub model: String,
    /// Fault rate (per million) of the offending cell.
    pub rate_pm: f64,
    /// Site-mix preset name of the offending cell (empty for `SelfCheck`).
    pub mix: String,
}

/// Outcome of checking one spec against the full grid.
#[derive(Debug, Clone)]
pub struct SeedOutcome {
    /// The seed the spec came from (or was assigned).
    pub seed: u64,
    /// The (possibly shrunk) spec that was checked.
    pub spec: FuzzSpec,
    /// Sweep cells run (cold grid size; the forked grid repeats them).
    pub cells: usize,
    /// Total faults injected across the cold grid.
    pub faults_injected: u64,
    /// First invariant violation found, if any.
    pub violation: Option<Violation>,
}

impl SeedOutcome {
    /// Deterministic one-line verdict, suitable for byte-for-byte
    /// comparison across runs.
    pub fn render(&self) -> String {
        let keep = match &self.spec.keep {
            None => String::new(),
            Some(k) => format!(" keep={k:?}"),
        };
        let head = format!(
            "seed {:>5} [{} it={} blocks={}{}] cells={} faults={}",
            self.seed,
            self.spec.variant.name(),
            self.spec.iterations,
            self.spec.blocks,
            keep,
            self.cells,
            self.faults_injected,
        );
        match &self.violation {
            None => format!("{head} ok"),
            Some(v) => format!(
                "{head} VIOLATION {}: {}",
                v.invariant.name(),
                v.detail.replace('\n', "; ")
            ),
        }
    }
}

/// Budget used for a program: the override, or predicted retirement plus
/// [`BUDGET_SLACK`].
pub fn budget_for(fp: &FuzzProgram, budget_override: Option<u64>) -> u64 {
    budget_override.unwrap_or(fp.expected_retired + BUDGET_SLACK)
}

fn mix_presets(names: &[&str]) -> Vec<SiteMix> {
    names
        .iter()
        .map(|n| SiteMix::preset(n).expect("mix preset"))
        .collect()
}

/// Checks the default grid for one fuzz seed.
pub fn check_seed(seed: u64, budget_override: Option<u64>) -> SeedOutcome {
    check_spec(&FuzzSpec::from_seed(seed), seed, budget_override)
}

/// Checks the default grid for an explicit (possibly shrunk) spec.
pub fn check_spec(spec: &FuzzSpec, seed: u64, budget_override: Option<u64>) -> SeedOutcome {
    check_axes(spec, seed, budget_override, &MODELS, &RATES, &MIX_NAMES)
}

/// Checks a restricted grid — the shrinker narrows the axes to the
/// offending cell (keeping rate 0 so the forked sweep still has its free
/// baseline and forks at the faulty rate).
pub fn check_axes(
    spec: &FuzzSpec,
    seed: u64,
    budget_override: Option<u64>,
    models: &[&str],
    rates: &[f64],
    mixes: &[&str],
) -> SeedOutcome {
    let fp = spec.generate();
    let mut outcome = SeedOutcome {
        seed,
        spec: spec.clone(),
        cells: 0,
        faults_injected: 0,
        violation: None,
    };

    // --- self-check: the generator's own prediction ---------------------
    if let Err(detail) = self_check(&fp) {
        outcome.violation = Some(Violation {
            invariant: Invariant::SelfCheck,
            detail,
            model: String::new(),
            rate_pm: 0.0,
            mix: String::new(),
        });
        return outcome;
    }

    let budget = budget_for(&fp, budget_override);
    let grid = |checkpointing: bool| {
        Experiment::grid()
            .workloads([Workload::Program {
                name: format!("fuzz-{seed}"),
                program: fp.program.clone(),
            }])
            .models(models.iter().map(|m| model_by_name(m).expect("model")))
            .fault_rates(rates.iter().copied())
            .site_mixes(mix_presets(mixes))
            .budget(budget)
            .seeds([seed])
            .oracle(OracleMode::Final)
            .checkpointing(checkpointing)
    };
    let cold = grid(false).run().expect("cold sweep");
    let forked = grid(true).run().expect("forked sweep");
    outcome.cells = cold.len();
    outcome.faults_injected = cold.iter().map(|r| r.faults_injected).sum();

    let at = |r: &RunRecord, invariant: Invariant, detail: String| Violation {
        invariant,
        detail,
        model: r.model.clone(),
        rate_pm: r.fault_rate_pm,
        mix: r.site_mix.clone(),
    };

    // --- termination -----------------------------------------------------
    for r in &cold {
        if r.fault_rate_pm == 0.0
            && (r.error.contains("watchdog") || r.error.contains("cycle limit"))
        {
            outcome.violation = Some(at(
                r,
                Invariant::Termination,
                format!("fault-free cell failed to terminate: {}", r.error),
            ));
            return outcome;
        }
    }

    // --- oracle-fault-free -----------------------------------------------
    let truncated = fp.expected_retired > budget;
    let mut baseline_digest: Option<(String, u64)> = None;
    for r in &cold {
        if r.fault_rate_pm != 0.0 {
            continue;
        }
        if !r.error.is_empty() {
            outcome.violation = Some(at(
                r,
                Invariant::OracleFaultFree,
                format!("fault-free cell errored: {}", r.error),
            ));
            return outcome;
        }
        let expect_halt = !truncated;
        if r.halted != expect_halt {
            outcome.violation = Some(at(
                r,
                Invariant::OracleFaultFree,
                format!(
                    "halted={} but budget {budget} vs predicted retirement {} implies {}",
                    r.halted, fp.expected_retired, expect_halt
                ),
            ));
            return outcome;
        }
        let retired_ok = if truncated {
            r.retired_instructions >= budget
        } else {
            r.retired_instructions == fp.expected_retired
        };
        if !retired_ok {
            outcome.violation = Some(at(
                r,
                Invariant::OracleFaultFree,
                format!(
                    "retired {} but the generator predicted {} (budget {budget})",
                    r.retired_instructions, fp.expected_retired
                ),
            ));
            return outcome;
        }
        // Cross-model digest agreement only holds when every model ran the
        // program to completion (truncated runs stop mid-flight at
        // model-dependent points).
        if !truncated {
            match &baseline_digest {
                None => baseline_digest = Some((r.model.clone(), r.state_digest)),
                Some((m0, d0)) if *d0 != r.state_digest => {
                    outcome.violation = Some(at(
                        r,
                        Invariant::OracleFaultFree,
                        format!(
                            "fault-free digest {:#018x} on {} != {:#018x} on {m0}",
                            r.state_digest, r.model, d0
                        ),
                    ));
                    return outcome;
                }
                Some(_) => {}
            }
        }
    }

    // --- forked-cold-identity --------------------------------------------
    if cold.len() != forked.len() {
        outcome.violation = Some(Violation {
            invariant: Invariant::ForkedColdIdentity,
            detail: format!(
                "cold sweep produced {} records, forked produced {}",
                cold.len(),
                forked.len()
            ),
            model: String::new(),
            rate_pm: 0.0,
            mix: String::new(),
        });
        return outcome;
    }
    for (i, (c, f)) in cold.iter().zip(&forked).enumerate() {
        let (cc, ff) = (
            to_csv(std::slice::from_ref(c)),
            to_csv(std::slice::from_ref(f)),
        );
        if cc != ff {
            outcome.violation = Some(at(
                c,
                Invariant::ForkedColdIdentity,
                format!(
                    "record {i} differs between cold and forked sweeps: cold={cc:?} forked={ff:?}"
                ),
            ));
            return outcome;
        }
    }

    // --- round-trip --------------------------------------------------------
    match from_csv(&to_csv(&cold)) {
        Ok(back) if back == cold => {}
        Ok(back) => {
            outcome.violation = Some(Violation {
                invariant: Invariant::RoundTrip,
                detail: format!(
                    "CSV round-trip changed {} of {} records",
                    back.iter().zip(&cold).filter(|(a, b)| a != b).count(),
                    cold.len()
                ),
                model: String::new(),
                rate_pm: 0.0,
                mix: String::new(),
            });
            return outcome;
        }
        Err(e) => {
            outcome.violation = Some(Violation {
                invariant: Invariant::RoundTrip,
                detail: format!("CSV round-trip failed to parse: {e}"),
                model: String::new(),
                rate_pm: 0.0,
                mix: String::new(),
            });
            return outcome;
        }
    }
    match from_json(&to_json(&cold)) {
        Ok(back) if back == cold => {}
        Ok(_) => {
            outcome.violation = Some(Violation {
                invariant: Invariant::RoundTrip,
                detail: "JSON round-trip changed record contents".to_string(),
                model: String::new(),
                rate_pm: 0.0,
                mix: String::new(),
            });
            return outcome;
        }
        Err(e) => {
            outcome.violation = Some(Violation {
                invariant: Invariant::RoundTrip,
                detail: format!("JSON round-trip failed to parse: {e}"),
                model: String::new(),
                rate_pm: 0.0,
                mix: String::new(),
            });
            return outcome;
        }
    }

    // --- masked-digest ------------------------------------------------------
    for r in &cold {
        if r.fault_rate_pm == 0.0 || !r.error.is_empty() || !r.halted {
            continue;
        }
        if r.faults_escaped != 0 || r.faults_pending != 0 {
            continue;
        }
        let Some(base) = cold.iter().find(|b| {
            b.fault_rate_pm == 0.0 && b.model == r.model && b.error.is_empty() && b.halted
        }) else {
            continue;
        };
        if r.retired_instructions == base.retired_instructions
            && r.state_digest != base.state_digest
        {
            outcome.violation = Some(at(
                r,
                Invariant::MaskedDigest,
                format!(
                    "all {} faults masked, same retirement, but digest {:#018x} != fault-free {:#018x}",
                    r.faults_injected, r.state_digest, base.state_digest
                ),
            ));
            return outcome;
        }
    }

    outcome
}

/// The self-check invariant alone: emulator halt, exact retirement, and
/// the constructed checksum at the check address.
pub fn self_check(fp: &FuzzProgram) -> Result<(), String> {
    let mut emu = Emulator::new(&fp.program);
    let retired = emu
        .run(SELF_CHECK_STEP_CAP)
        .map_err(|e| format!("emulator error: {e}"))?;
    if !emu.halted() {
        return Err(format!("no halt within {SELF_CHECK_STEP_CAP} steps"));
    }
    if retired != fp.expected_retired {
        return Err(format!(
            "retired {retired} but the generator predicted {}",
            fp.expected_retired
        ));
    }
    let sum = emu.mem().read_u64(fp.check_addr);
    if sum != fp.expected_checksum {
        return Err(format!(
            "checksum {sum:#018x} at {:#x} but the generator predicted {:#018x}",
            fp.check_addr, fp.expected_checksum
        ));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn invariant_names_round_trip() {
        for inv in Invariant::ALL {
            assert_eq!(Invariant::from_name(inv.name()), Some(inv));
        }
        assert_eq!(Invariant::from_name("nonsense"), None);
    }

    #[test]
    fn grid_axes_resolve() {
        // The default grid's names must all resolve — a rename in the
        // model/mix registries would otherwise panic mid-fuzz.
        for m in MODELS {
            assert!(ftsim_daemon::model_by_name(m).is_some(), "model {m}");
        }
        for m in MIX_NAMES {
            assert!(ftsim_faults::SiteMix::preset(m).is_some(), "mix {m}");
        }
    }
}
