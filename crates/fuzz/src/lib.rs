//! Generative workload fuzzing with a shrinking differential oracle.
//!
//! This crate closes the loop between the seeded program generator in
//! `ftsim-workloads` ([`FuzzSpec`](ftsim_workloads::FuzzSpec)) and the
//! experiment harness in `ftsim`: every generated program is run through
//! a small fault-sweep grid (models × rates × site mixes) and checked
//! against the simulator's *standing invariants* — properties that must
//! hold for every program and every fault plan, not just the golden
//! workloads:
//!
//! - **self-check**: the in-order emulator halts, retires exactly the
//!   predicted dynamic instruction count, and leaves the predicted
//!   checksum at the program's check address.
//! - **oracle-fault-free**: fault-free pipelined runs agree with the
//!   in-order oracle, halt exactly when the budget allows, and produce
//!   the same architectural digest on every machine model.
//! - **forked-cold-identity**: a sweep resumed from checkpoint forks
//!   must produce records byte-identical to a cold sweep.
//! - **round-trip**: CSV and JSON record serialization are lossless.
//! - **masked-digest**: a faulty run whose faults were all masked (none
//!   escaped, none pending) and that retired the same instruction count
//!   as its fault-free baseline must reach the baseline's digest.
//! - **termination**: fault-free runs never trip the watchdog or the
//!   cycle ceiling.
//!
//! On a violation, [`shrink`](shrink::shrink) minimizes both the program
//! (dropping generated blocks, halving iterations) and — for
//! fault-dependent invariants — the fault plan (ddmin over the fired
//! events, replayed through [`FaultPlan`](ftsim_faults::FaultPlan)), and
//! [`repro`] persists the result as a replayable `<seed>.repro.json`.
//!
//! The `ftsim-fuzz` binary drives the loop:
//!
//! ```text
//! ftsim-fuzz run --seeds 0..64        # fuzz a seed range
//! ftsim-fuzz replay 17.repro.json     # re-check a minimized repro
//! ftsim-fuzz graduate 7               # print a GraduatedWorkload entry
//! ```

#![warn(missing_docs)]

pub mod harness;
pub mod repro;
pub mod shrink;

pub use harness::{check_seed, check_spec, Invariant, SeedOutcome, Violation};
pub use repro::{load_repro, replay, save_repro, ReplayReport};
pub use shrink::{shrink, PlanEvent, Repro};
