//! `ftsim-fuzz` — generative workload fuzzing with a shrinking
//! differential oracle.
//!
//! ```text
//! ftsim-fuzz run --seeds 0..64 [--budget N] [--out DIR]
//! ftsim-fuzz replay <repro.json>...
//! ftsim-fuzz graduate <seed> [--variant NAME] [--iterations N] [--blocks N]
//! ```

use std::path::PathBuf;
use std::process::ExitCode;

use ftsim_fuzz::{check_seed, load_repro, replay, save_repro, shrink};
use ftsim_workloads::{FuzzSpec, FuzzVariant};

const USAGE: &str = "usage:
  ftsim-fuzz run --seeds A..B [--budget N] [--out DIR]
      Fuzz the seed range (half-open): generate each program, sweep it
      through the model/rate/mix grid, check every standing invariant,
      and shrink + persist a repro for each violation.
  ftsim-fuzz replay <repro.json>...
      Re-run minimized repro files; exits nonzero if any fails to
      reproduce its pinned violation.
  ftsim-fuzz graduate <seed> [--variant NAME] [--iterations N] [--blocks N]
      Verify a generated program end-to-end and print the
      GraduatedWorkload registry entry for crates/workloads.";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let result = match args.first().map(String::as_str) {
        Some("run") => cmd_run(&args[1..]),
        Some("replay") => cmd_replay(&args[1..]),
        Some("graduate") => cmd_graduate(&args[1..]),
        _ => Err(USAGE.to_string()),
    };
    match result {
        Ok(code) => code,
        Err(msg) => {
            eprintln!("{msg}");
            ExitCode::from(2)
        }
    }
}

/// Parses `A..B` (half-open), `A..=B` (inclusive), or a single seed `N`.
fn parse_seed_range(text: &str) -> Result<std::ops::Range<u64>, String> {
    let bad = || format!("bad seed range `{text}` (expected A..B, A..=B, or N)");
    if let Some((a, b)) = text.split_once("..=") {
        let (a, b): (u64, u64) = (a.parse().map_err(|_| bad())?, b.parse().map_err(|_| bad())?);
        Ok(a..b.checked_add(1).ok_or_else(bad)?)
    } else if let Some((a, b)) = text.split_once("..") {
        Ok(a.parse().map_err(|_| bad())?..b.parse().map_err(|_| bad())?)
    } else {
        let n: u64 = text.parse().map_err(|_| bad())?;
        Ok(n..n + 1)
    }
}

/// Pulls the value after a `--flag` out of an argument list.
fn flag_value<'a>(args: &'a [String], flag: &str) -> Result<Option<&'a str>, String> {
    match args.iter().position(|a| a == flag) {
        None => Ok(None),
        Some(i) => args
            .get(i + 1)
            .map(|v| Some(v.as_str()))
            .ok_or_else(|| format!("{flag} needs a value")),
    }
}

fn cmd_run(args: &[String]) -> Result<ExitCode, String> {
    let seeds = parse_seed_range(
        flag_value(args, "--seeds")?.ok_or_else(|| format!("run needs --seeds\n\n{USAGE}"))?,
    )?;
    let budget = flag_value(args, "--budget")?
        .map(|v| v.parse::<u64>().map_err(|_| format!("bad --budget `{v}`")))
        .transpose()?;
    let out = PathBuf::from(flag_value(args, "--out")?.unwrap_or("fuzz-repros"));

    let total = seeds.end.saturating_sub(seeds.start);
    let mut violations = 0u64;
    for seed in seeds {
        let outcome = check_seed(seed, budget);
        println!("{}", outcome.render());
        if outcome.violation.is_none() {
            continue;
        }
        violations += 1;
        let repro = shrink(&outcome, budget).expect("violating outcomes shrink");
        std::fs::create_dir_all(&out).map_err(|e| format!("mkdir {}: {e}", out.display()))?;
        let path = out.join(format!("{seed}.repro.json"));
        std::fs::write(&path, save_repro(&repro))
            .map_err(|e| format!("write {}: {e}", path.display()))?;
        println!(
            "  shrunk to {} block(s), {} iteration(s), {} plan event(s) -> {}",
            repro.spec.kept().len(),
            repro.spec.iterations,
            repro.plan.as_ref().map_or(0, Vec::len),
            path.display()
        );
    }
    println!("fuzzed {total} seed(s): {violations} violation(s)");
    Ok(if violations == 0 {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    })
}

fn cmd_replay(args: &[String]) -> Result<ExitCode, String> {
    if args.is_empty() {
        return Err(format!("replay needs at least one repro file\n\n{USAGE}"));
    }
    let mut failures = 0u64;
    for file in args {
        let text = std::fs::read_to_string(file).map_err(|e| format!("read {file}: {e}"))?;
        let repro = load_repro(&text).map_err(|e| format!("{file}: {e}"))?;
        let report = replay(&repro);
        if report.reproduced {
            println!(
                "{file}: reproduced {} on seed {}: {}",
                repro.invariant.name(),
                repro.seed,
                report.detail
            );
        } else {
            failures += 1;
            println!(
                "{file}: NOT reproduced ({} on seed {}): {}",
                repro.invariant.name(),
                repro.seed,
                report.detail
            );
        }
    }
    Ok(if failures == 0 {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    })
}

/// Short registry tag per variant (matches the existing `fuzz-<tag>-<seed>`
/// naming in the graduated-workload registry).
fn variant_tag(v: FuzzVariant) -> &'static str {
    match v {
        FuzzVariant::BranchHeavy => "branch",
        FuzzVariant::AliasHeavy => "alias",
        FuzzVariant::RasDeep => "ras",
        FuzzVariant::SerialDiv => "div",
        FuzzVariant::SelfCheckSum => "sum",
    }
}

/// The variant's Rust path in `crates/workloads`.
fn variant_path(v: FuzzVariant) -> &'static str {
    match v {
        FuzzVariant::BranchHeavy => "FuzzVariant::BranchHeavy",
        FuzzVariant::AliasHeavy => "FuzzVariant::AliasHeavy",
        FuzzVariant::RasDeep => "FuzzVariant::RasDeep",
        FuzzVariant::SerialDiv => "FuzzVariant::SerialDiv",
        FuzzVariant::SelfCheckSum => "FuzzVariant::SelfCheckSum",
    }
}

fn cmd_graduate(args: &[String]) -> Result<ExitCode, String> {
    let seed: u64 = args
        .iter()
        .find(|a| !a.starts_with("--"))
        .ok_or_else(|| format!("graduate needs a seed\n\n{USAGE}"))?
        .parse()
        .map_err(|e| format!("bad seed: {e}"))?;
    let mut spec = FuzzSpec::from_seed(seed);
    if let Some(v) = flag_value(args, "--variant")? {
        spec.variant = FuzzVariant::from_name(v).ok_or_else(|| format!("unknown variant `{v}`"))?;
    }
    if let Some(v) = flag_value(args, "--iterations")? {
        spec.iterations = v.parse().map_err(|_| format!("bad --iterations `{v}`"))?;
    }
    if let Some(v) = flag_value(args, "--blocks")? {
        spec.blocks = v.parse().map_err(|_| format!("bad --blocks `{v}`"))?;
    }

    // A workload graduates only if the full invariant grid is clean.
    let outcome = ftsim_fuzz::check_spec(&spec, seed, None);
    if let Some(v) = &outcome.violation {
        return Err(format!(
            "refusing to graduate seed {seed}: {} violated: {}",
            v.invariant.name(),
            v.detail
        ));
    }
    let fp = spec.generate();
    println!(
        "// seed {seed}: {} blocks, {} predicted retired, {} faults across the {} grid cells",
        fp.emitted_blocks, fp.expected_retired, outcome.faults_injected, outcome.cells
    );
    println!("GraduatedWorkload {{");
    println!("    name: \"fuzz-{}-{}\",", variant_tag(spec.variant), seed);
    println!("    spec: FuzzSpec {{");
    println!("        variant: {},", variant_path(spec.variant));
    println!("        seed: {},", spec.seed);
    println!("        iterations: {},", spec.iterations);
    println!("        blocks: {},", spec.blocks);
    match &spec.keep {
        None => println!("        keep: None,"),
        Some(k) => println!("        keep: Some(vec!{k:?}),"),
    }
    println!("    }},");
    println!("    note: \"<why this program earned a registry slot>\",");
    println!("}},");
    Ok(ExitCode::SUCCESS)
}
