//! Repro persistence and replay: a minimized violation serializes to a
//! small JSON document (`<seed>.repro.json`) that pins everything needed
//! to re-trigger it — the generation spec, the offending cell, and (for
//! fault-dependent invariants) the exact fault plan. Replay re-runs the
//! pinned check and reports whether the violation still reproduces.

use crate::harness::{check_axes, self_check, Invariant};
use crate::shrink::{plan_mismatch, PlanEvent, Repro};
use ftsim_faults::InjectionPoint;
use ftsim_stats::JsonValue;
use ftsim_workloads::{FuzzSpec, FuzzVariant};

/// Schema version stamped into every repro file.
pub const REPRO_VERSION: u64 = 1;

/// Outcome of replaying a repro file.
#[derive(Debug, Clone)]
pub struct ReplayReport {
    /// Whether the pinned violation still triggers.
    pub reproduced: bool,
    /// Detail from the replayed check (the fresh violation detail when
    /// reproduced, a diagnostic otherwise).
    pub detail: String,
}

/// Serializes a repro to its canonical pretty-printed JSON document.
pub fn save_repro(r: &Repro) -> String {
    let spec = JsonValue::obj([
        (
            "variant".to_string(),
            JsonValue::Str(r.spec.variant.name().to_string()),
        ),
        ("seed".to_string(), JsonValue::U64(r.spec.seed)),
        (
            "iterations".to_string(),
            JsonValue::U64(u64::from(r.spec.iterations)),
        ),
        (
            "blocks".to_string(),
            JsonValue::U64(u64::from(r.spec.blocks)),
        ),
        (
            "keep".to_string(),
            match &r.spec.keep {
                None => JsonValue::Null,
                Some(k) => {
                    JsonValue::Arr(k.iter().map(|&b| JsonValue::U64(u64::from(b))).collect())
                }
            },
        ),
    ]);
    let cell = JsonValue::obj([
        ("model".to_string(), JsonValue::Str(r.model.clone())),
        ("rate_pm".to_string(), JsonValue::F64(r.rate_pm)),
        ("mix".to_string(), JsonValue::Str(r.mix.clone())),
        ("budget".to_string(), JsonValue::U64(r.budget)),
    ]);
    let plan = match &r.plan {
        None => JsonValue::Null,
        Some(events) => JsonValue::Arr(
            events
                .iter()
                .map(|e| {
                    JsonValue::obj([
                        ("dispatch".to_string(), JsonValue::U64(e.dispatch)),
                        ("copy".to_string(), JsonValue::U64(u64::from(e.copy))),
                        (
                            "point".to_string(),
                            JsonValue::Str(e.point.code().to_string()),
                        ),
                        ("bit".to_string(), JsonValue::U64(u64::from(e.bit))),
                    ])
                })
                .collect(),
        ),
    };
    JsonValue::obj([
        ("version".to_string(), JsonValue::U64(REPRO_VERSION)),
        ("seed".to_string(), JsonValue::U64(r.seed)),
        (
            "invariant".to_string(),
            JsonValue::Str(r.invariant.name().to_string()),
        ),
        ("detail".to_string(), JsonValue::Str(r.detail.clone())),
        ("spec".to_string(), spec),
        ("cell".to_string(), cell),
        ("plan".to_string(), plan),
    ])
    .render_pretty(2)
}

fn field<'a>(v: &'a JsonValue, key: &str) -> Result<&'a JsonValue, String> {
    v.get(key).ok_or_else(|| format!("missing field `{key}`"))
}

fn u64_field(v: &JsonValue, key: &str) -> Result<u64, String> {
    field(v, key)?
        .as_u64()
        .ok_or_else(|| format!("field `{key}` is not an unsigned integer"))
}

fn str_field<'a>(v: &'a JsonValue, key: &str) -> Result<&'a str, String> {
    field(v, key)?
        .as_str()
        .ok_or_else(|| format!("field `{key}` is not a string"))
}

/// Parses a repro document produced by [`save_repro`].
pub fn load_repro(text: &str) -> Result<Repro, String> {
    let doc = JsonValue::parse(text).map_err(|e| format!("bad JSON: {e}"))?;
    let version = u64_field(&doc, "version")?;
    if version != REPRO_VERSION {
        return Err(format!(
            "repro version {version} (this build reads {REPRO_VERSION})"
        ));
    }
    let invariant = str_field(&doc, "invariant")?;
    let invariant = Invariant::from_name(invariant)
        .ok_or_else(|| format!("unknown invariant `{invariant}`"))?;

    let spec_v = field(&doc, "spec")?;
    let variant = str_field(spec_v, "variant")?;
    let variant =
        FuzzVariant::from_name(variant).ok_or_else(|| format!("unknown variant `{variant}`"))?;
    let keep = match field(spec_v, "keep")? {
        JsonValue::Null => None,
        JsonValue::Arr(items) => Some(
            items
                .iter()
                .map(|i| {
                    i.as_u64()
                        .and_then(|b| u32::try_from(b).ok())
                        .ok_or_else(|| "bad block index in `keep`".to_string())
                })
                .collect::<Result<Vec<u32>, String>>()?,
        ),
        _ => return Err("field `keep` is neither null nor an array".to_string()),
    };
    let spec = FuzzSpec {
        variant,
        seed: u64_field(spec_v, "seed")?,
        iterations: u32::try_from(u64_field(spec_v, "iterations")?)
            .map_err(|_| "iterations out of range".to_string())?,
        blocks: u32::try_from(u64_field(spec_v, "blocks")?)
            .map_err(|_| "blocks out of range".to_string())?,
        keep,
    };

    let cell = field(&doc, "cell")?;
    let rate_pm = field(cell, "rate_pm")?
        .as_f64()
        .ok_or_else(|| "field `rate_pm` is not a number".to_string())?;

    let plan = match field(&doc, "plan")? {
        JsonValue::Null => None,
        JsonValue::Arr(items) => Some(
            items
                .iter()
                .map(|e| {
                    let code = str_field(e, "point")?;
                    Ok(PlanEvent {
                        dispatch: u64_field(e, "dispatch")?,
                        copy: u8::try_from(u64_field(e, "copy")?)
                            .map_err(|_| "copy out of range".to_string())?,
                        point: InjectionPoint::from_code(code)
                            .ok_or_else(|| format!("unknown injection-point code `{code}`"))?,
                        bit: u8::try_from(u64_field(e, "bit")?)
                            .map_err(|_| "bit out of range".to_string())?,
                    })
                })
                .collect::<Result<Vec<PlanEvent>, String>>()?,
        ),
        _ => return Err("field `plan` is neither null nor an array".to_string()),
    };

    Ok(Repro {
        seed: u64_field(&doc, "seed")?,
        invariant,
        detail: str_field(&doc, "detail")?.to_string(),
        spec,
        model: str_field(cell, "model")?.to_string(),
        rate_pm,
        mix: str_field(cell, "mix")?.to_string(),
        budget: u64_field(cell, "budget")?,
        plan,
    })
}

/// Replays a repro: re-runs exactly the pinned check (explicit fault
/// plan when present, the isolated cell grid otherwise) and reports
/// whether the violation still triggers.
pub fn replay(r: &Repro) -> ReplayReport {
    // Self-check violations need no machine at all.
    if r.invariant == Invariant::SelfCheck {
        return match self_check(&r.spec.generate()) {
            Err(detail) => ReplayReport {
                reproduced: true,
                detail,
            },
            Ok(()) => ReplayReport {
                reproduced: false,
                detail: "self-check now passes".to_string(),
            },
        };
    }

    // Deterministic plan replay when the shrinker pinned one.
    if let Some(events) = &r.plan {
        let fp = r.spec.generate();
        return match plan_mismatch(&fp, &r.model, r.budget, r.invariant, events) {
            Some(detail) => ReplayReport {
                reproduced: true,
                detail,
            },
            None => ReplayReport {
                reproduced: false,
                detail: "the pinned fault plan no longer triggers the violation".to_string(),
            },
        };
    }

    // Otherwise re-run the offending cell (with its rate-0 baseline)
    // through the grid harness.
    let outcome = if r.model.is_empty() {
        crate::harness::check_spec(&r.spec, r.seed, Some(r.budget))
    } else {
        let rates: Vec<f64> = if r.rate_pm == 0.0 {
            vec![0.0]
        } else {
            vec![0.0, r.rate_pm]
        };
        check_axes(
            &r.spec,
            r.seed,
            Some(r.budget),
            &[r.model.as_str()],
            &rates,
            &[r.mix.as_str()],
        )
    };
    match outcome.violation {
        Some(v) if v.invariant == r.invariant => ReplayReport {
            reproduced: true,
            detail: v.detail,
        },
        Some(v) => ReplayReport {
            reproduced: false,
            detail: format!(
                "a different invariant ({}) now fails: {}",
                v.invariant.name(),
                v.detail
            ),
        },
        None => ReplayReport {
            reproduced: false,
            detail: "all invariants now pass on the pinned cell".to_string(),
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ftsim_workloads::FuzzVariant;

    fn sample() -> Repro {
        Repro {
            seed: 17,
            invariant: Invariant::ForkedColdIdentity,
            detail: "cold != forked".to_string(),
            spec: FuzzSpec {
                variant: FuzzVariant::AliasHeavy,
                seed: 17,
                iterations: 2,
                blocks: 12,
                keep: Some(vec![0, 3, 9]),
            },
            model: "SS-2".to_string(),
            rate_pm: 300.0,
            mix: "uniform".to_string(),
            budget: 1234,
            plan: Some(vec![PlanEvent {
                dispatch: 412,
                copy: 1,
                point: InjectionPoint::EffAddr,
                bit: 17,
            }]),
        }
    }

    #[test]
    fn repro_documents_round_trip() {
        let r = sample();
        assert_eq!(load_repro(&save_repro(&r)).unwrap(), r);

        // Null `keep` and null `plan` round-trip too.
        let mut bare = sample();
        bare.spec.keep = None;
        bare.plan = None;
        assert_eq!(load_repro(&save_repro(&bare)).unwrap(), bare);
    }

    #[test]
    fn unknown_fields_are_rejected_with_context() {
        let doc = save_repro(&sample());
        let err = load_repro(&doc.replace("\"ea\"", "\"zz\"")).unwrap_err();
        assert!(err.contains("injection-point code"), "{err}");
        let err = load_repro(&doc.replace("\"version\": 1", "\"version\": 9")).unwrap_err();
        assert!(err.contains("version 9"), "{err}");
        let err = load_repro(&doc.replace("forked-cold-identity", "nonsense")).unwrap_err();
        assert!(err.contains("unknown invariant"), "{err}");
    }
}
