//! Violation minimization: shrink the *program* (drop generated blocks,
//! halve iterations) and, for fault-dependent invariants, the *fault
//! plan* (ddmin over the fired events, replayed deterministically via
//! [`FaultPlan`]).
//!
//! Every candidate is re-checked against the same invariant on the
//! offending cell in isolation — a shrink step survives only if the
//! smaller input still violates. The generation grammar is closed under
//! shrinking (dropping a block never perturbs the surviving blocks), so
//! candidate programs stay predictable-by-construction and the
//! self-check invariant keeps meaning the same thing all the way down.

use crate::harness::{
    budget_for, check_axes, check_spec, self_check, Invariant, SeedOutcome, Violation,
};
use ftsim_core::{SimBuilder, SimError, SimResult, Simulator};
use ftsim_daemon::model_by_name;
use ftsim_faults::{per_million, FaultInjector, FaultPlan, InjectionPoint, SiteMix};
use ftsim_workloads::{FuzzProgram, FuzzSpec};

/// One fired fault event, extracted from a random-injector run's fault
/// log and replayable through [`FaultPlan`]. The (dispatch, copy) pair is
/// the same key the injector, log, and plan all use, so a logged event
/// replayed as a plan event lands on the same victim.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PlanEvent {
    /// Dispatch index of the victim instruction.
    pub dispatch: u64,
    /// Victim copy (0-based, `< r`).
    pub copy: u8,
    /// Corruption site.
    pub point: InjectionPoint,
    /// Bit to flip.
    pub bit: u8,
}

/// A minimized, replayable violation.
#[derive(Debug, Clone, PartialEq)]
pub struct Repro {
    /// Fuzz seed the violation came from.
    pub seed: u64,
    /// The violated invariant.
    pub invariant: Invariant,
    /// Detail line from the final (minimal) violating check.
    pub detail: String,
    /// Minimal generation spec.
    pub spec: FuzzSpec,
    /// Machine model of the offending cell (empty for `self-check`).
    pub model: String,
    /// Fault rate (per million) of the offending cell.
    pub rate_pm: f64,
    /// Site-mix preset of the offending cell (empty for `self-check`).
    pub mix: String,
    /// Budget the repro was minimized at (replay uses it verbatim).
    pub budget: u64,
    /// Minimal fault plan, when the invariant is fault-dependent and the
    /// fired events reproduce the violation deterministically.
    pub plan: Option<Vec<PlanEvent>>,
}

/// Mirrors the experiment harness's checkpoint cadence so plan-based
/// forks snapshot at the same cycles the real sweep would.
fn checkpoint_interval(budget: u64) -> u64 {
    (budget / 32).clamp(256, 8_192)
}

/// ddmin: greedily removes chunks (halving the chunk size on stagnation)
/// while `test` keeps returning `true` on the reduced input. Returns a
/// 1-minimal subset (removing any single surviving element breaks the
/// violation).
fn ddmin<T: Clone>(mut items: Vec<T>, test: &mut dyn FnMut(&[T]) -> bool) -> Vec<T> {
    if items.is_empty() {
        return items;
    }
    let mut chunk = items.len().div_ceil(2);
    loop {
        let mut reduced = false;
        let mut start = 0;
        while start < items.len() {
            let end = (start + chunk).min(items.len());
            let cand: Vec<T> = items[..start]
                .iter()
                .chain(&items[end..])
                .cloned()
                .collect();
            if test(&cand) {
                items = cand;
                reduced = true;
            } else {
                start = end;
            }
        }
        if items.is_empty() {
            break;
        }
        if reduced {
            chunk = chunk.min(items.len().div_ceil(2)).max(1);
            continue;
        }
        if chunk == 1 {
            break;
        }
        chunk = (chunk / 2).max(1);
    }
    items
}

/// Re-checks `spec` against the violation's invariant on the offending
/// cell in isolation. Rate 0 is kept alongside the faulty rate so the
/// family still has its free baseline and the forked sweep still forks.
fn spec_violates(
    spec: &FuzzSpec,
    seed: u64,
    budget_override: Option<u64>,
    v: &Violation,
) -> Option<String> {
    if v.invariant == Invariant::SelfCheck {
        return self_check(&spec.generate()).err();
    }
    let outcome = if v.model.is_empty() {
        // Grid-level violations (round-trip, record-count mismatches)
        // have no single offending cell; re-check the full grid.
        check_spec(spec, seed, budget_override)
    } else {
        let rates: Vec<f64> = if v.rate_pm == 0.0 {
            vec![0.0]
        } else {
            vec![0.0, v.rate_pm]
        };
        check_axes(
            spec,
            seed,
            budget_override,
            &[v.model.as_str()],
            &rates,
            &[v.mix.as_str()],
        )
    };
    outcome
        .violation
        .filter(|w| w.invariant == v.invariant)
        .map(|w| w.detail)
}

/// Minimizes a violating outcome to a replayable [`Repro`]. Returns
/// `None` when the outcome has no violation.
pub fn shrink(outcome: &SeedOutcome, budget_override: Option<u64>) -> Option<Repro> {
    let v = outcome.violation.as_ref()?;
    let seed = outcome.seed;
    let mut spec = outcome.spec.clone();
    let mut detail = v.detail.clone();

    // Two rounds of [iteration halving, block ddmin]: dropping blocks can
    // unlock further iteration reduction and vice versa.
    for _ in 0..2 {
        // Iterations: try the floor outright, then binary-search down.
        if spec.iterations > 1 {
            let mut cand = spec.clone();
            cand.iterations = 1;
            if let Some(d) = spec_violates(&cand, seed, budget_override, v) {
                spec = cand;
                detail = d;
            } else {
                while spec.iterations > 1 {
                    let mut cand = spec.clone();
                    cand.iterations = spec.iterations / 2;
                    match spec_violates(&cand, seed, budget_override, v) {
                        Some(d) => {
                            spec = cand;
                            detail = d;
                        }
                        None => break,
                    }
                }
            }
        }

        // Blocks: ddmin over the kept indices.
        let base = spec.clone();
        let kept = ddmin(base.kept(), &mut |subset: &[u32]| {
            let mut cand = base.clone();
            cand.keep = Some(subset.to_vec());
            spec_violates(&cand, seed, budget_override, v).is_some()
        });
        spec.keep = if kept.len() == spec.blocks as usize {
            None
        } else {
            Some(kept)
        };
        if let Some(d) = spec_violates(&spec, seed, budget_override, v) {
            detail = d;
        }
    }

    let fp = spec.generate();
    let budget = budget_for(&fp, budget_override);

    // Fault-plan minimization: extract the fired events from the
    // offending cell's random-injector run, confirm they reproduce the
    // violation as an explicit plan, then bisect them.
    let mut plan = None;
    if v.invariant.fault_dependent() && v.rate_pm > 0.0 && !v.model.is_empty() {
        let events = collect_plan(&fp, &v.model, budget, v.rate_pm, &v.mix, seed);
        let mut plan_test = |subset: &[PlanEvent]| {
            plan_mismatch(&fp, &v.model, budget, v.invariant, subset).is_some()
        };
        if plan_test(&events) {
            let minimal = ddmin(events, &mut plan_test);
            detail = plan_mismatch(&fp, &v.model, budget, v.invariant, &minimal)
                .expect("the minimal plan still violates");
            plan = Some(minimal);
        }
    }

    Some(Repro {
        seed,
        invariant: v.invariant,
        detail,
        spec,
        model: v.model.clone(),
        rate_pm: v.rate_pm,
        mix: v.mix.clone(),
        budget,
        plan,
    })
}

fn cell_builder(fp: &FuzzProgram, model: &str, budget: u64) -> SimBuilder {
    Simulator::builder()
        .config(model_by_name(model).expect("known model name"))
        .program(&fp.program)
        .budget(budget)
}

fn build_plan(events: &[PlanEvent]) -> FaultPlan {
    let mut plan = FaultPlan::new();
    for e in events {
        plan.add(e.dispatch, e.copy, e.point, e.bit);
    }
    plan
}

/// Everything a forked run must reproduce about a cold run, flattened to
/// one comparable line.
fn fingerprint(outcome: &Result<SimResult, SimError>) -> String {
    match outcome {
        Ok(r) => format!(
            "ok halted={} cycles={} retired={} digest={:#018x} injected={} detected={} \
             masked={} escaped={} pending={} fault_rewinds={} load_forwards={} dispatched={}",
            r.halted,
            r.cycles,
            r.retired_instructions,
            r.state_digest,
            r.faults.injected,
            r.faults.detected,
            r.faults.masked,
            r.faults.escaped,
            r.faults.pending,
            r.stats.fault_rewinds,
            r.stats.load_forwards,
            r.stats.dispatched_entries,
        ),
        Err(e) => format!("err {e}"),
    }
}

/// Runs the offending cell once with its random injector and returns
/// every fault the log recorded, as replayable plan events.
fn collect_plan(
    fp: &FuzzProgram,
    model: &str,
    budget: u64,
    rate_pm: f64,
    mix: &str,
    seed: u64,
) -> Vec<PlanEvent> {
    let mix = SiteMix::preset(mix).expect("mix preset");
    let injector = FaultInjector::random_with_mix(per_million(rate_pm), seed, &mix);
    let mut sim = match cell_builder(fp, model, budget).injector(injector).build() {
        Ok(sim) => sim,
        Err(_) => return Vec::new(),
    };
    let max_cycles = 100 * budget.max(1_000);
    let proc = sim.processor_mut();
    while !proc.halted() && proc.now() < max_cycles {
        proc.cycle();
        if proc.now() % 64 == 0 && proc.stats_snapshot().retired_instructions >= budget {
            break;
        }
    }
    proc.fault_log()
        .records()
        .iter()
        .map(|r| PlanEvent {
            dispatch: r.dispatch_seq,
            copy: r.copy,
            point: r.event.point,
            bit: r.event.bit,
        })
        .collect()
}

/// Checks whether an explicit fault plan reproduces a fault-dependent
/// violation on one cell; returns the divergence detail when it does.
///
/// For `forked-cold-identity` this replays the plan twice — cold, and
/// forked from the newest baseline checkpoint at or before the first
/// event's dispatch index (the same fork rule the experiment harness
/// uses) — and compares full fingerprints. An empty plan still forks
/// from the newest checkpoint: the harness forks on the first *possible*
/// fire, which can lie beyond the run entirely, so a fork with no fired
/// fault is a real execution mode (and exactly the one a
/// checkpoint-state bug diverges in).
pub fn plan_mismatch(
    fp: &FuzzProgram,
    model: &str,
    budget: u64,
    invariant: Invariant,
    events: &[PlanEvent],
) -> Option<String> {
    match invariant {
        Invariant::ForkedColdIdentity => {
            let plan = build_plan(events);
            let bound = plan.first_event_cycle().unwrap_or(u64::MAX);
            let cold = fingerprint(
                &cell_builder(fp, model, budget)
                    .injector(FaultInjector::from_plan(build_plan(events)))
                    .run(),
            );
            // Fault-free baseline, checkpointing up to the fork bound.
            let (_, checkpoints) = cell_builder(fp, model, budget)
                .build()
                .ok()?
                .run_with_checkpoints(checkpoint_interval(budget), bound);
            let cp = checkpoints
                .iter()
                .rev()
                .find(|cp| cp.draws() <= bound)
                .filter(|cp| cp.cycle() > 0)
                .cloned()?;
            let mut sim = cell_builder(fp, model, budget)
                .injector(FaultInjector::from_plan(plan))
                .build()
                .ok()?;
            let draws = cp.draws();
            let proc = sim.processor_mut();
            proc.restore_owned(cp);
            proc.injector_mut().fast_forward_fault_free(draws);
            let forked = fingerprint(&sim.run());
            (cold != forked).then(|| format!("cold [{cold}] != forked [{forked}]"))
        }
        Invariant::MaskedDigest => {
            let faulty = cell_builder(fp, model, budget)
                .injector(FaultInjector::from_plan(build_plan(events)))
                .run()
                .ok()?;
            if !faulty.halted
                || faulty.faults.injected == 0
                || faulty.faults.escaped != 0
                || faulty.faults.pending != 0
            {
                return None;
            }
            let base = cell_builder(fp, model, budget).run().ok()?;
            if !base.halted || base.retired_instructions != faulty.retired_instructions {
                return None;
            }
            (faulty.state_digest != base.state_digest).then(|| {
                format!(
                    "all {} faults masked, same retirement, but digest {:#018x} != fault-free {:#018x}",
                    faulty.faults.injected, faulty.state_digest, base.state_digest
                )
            })
        }
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ddmin_finds_a_one_minimal_subset() {
        // The violation needs both 3 and 7 present; everything else is noise.
        let items: Vec<u32> = (0..16).collect();
        let mut calls = 0;
        let minimal = ddmin(items, &mut |subset| {
            calls += 1;
            subset.contains(&3) && subset.contains(&7)
        });
        assert_eq!(minimal, vec![3, 7]);
        assert!(calls < 200, "ddmin ran {calls} probes on 16 items");
    }

    #[test]
    fn ddmin_reaches_the_empty_set_when_anything_violates() {
        let minimal = ddmin((0..9u32).collect(), &mut |_| true);
        assert!(minimal.is_empty());
    }

    #[test]
    fn ddmin_keeps_everything_when_only_the_full_set_violates() {
        let items: Vec<u32> = (0..5).collect();
        let full = items.clone();
        let minimal = ddmin(items, &mut |subset| subset == full.as_slice());
        assert_eq!(minimal, full);
    }
}
