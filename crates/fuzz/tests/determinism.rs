//! Determinism of the fuzz loop: the same seed range must render
//! byte-identical verdict lines on every run, and truncated budgets must
//! stay invariant-clean (the harness knows a budget-limited run is not a
//! violation).
//!
//! This binary never sets `FTSIM_PLANT`, so the planted defect stays
//! inert here; the plant-specific behavior lives in `planted.rs` (its
//! own process, because the flag is read from the environment at
//! processor construction).

use ftsim_fuzz::check_seed;

#[test]
fn verdict_lines_are_byte_identical_across_runs() {
    let sweep = || {
        (0..8u64)
            .map(|seed| check_seed(seed, None).render())
            .collect::<Vec<_>>()
            .join("\n")
    };
    let first = sweep();
    let second = sweep();
    assert_eq!(first, second);
    // Every line is a verdict, none a violation: the generator's programs
    // are oracle-clean by construction.
    assert_eq!(first.lines().count(), 8);
    for line in first.lines() {
        assert!(line.ends_with(" ok"), "unexpected violation: {line}");
    }
}

#[test]
fn truncated_budgets_stay_clean() {
    // A budget far below the predicted retirement truncates every cell;
    // the invariants must treat that as expected behavior, not failure.
    for seed in 0..4u64 {
        let outcome = check_seed(seed, Some(500));
        assert!(
            outcome.violation.is_none(),
            "seed {seed} violated under a truncating budget: {}",
            outcome.render()
        );
    }
}
