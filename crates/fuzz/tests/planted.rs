//! End-to-end validation of the catch-and-shrink loop against the
//! deliberately planted checkpoint-state defect in `ftsim-core`
//! (`FTSIM_PLANT`: a load-issue stall counter that is folded into
//! `load_forwards` but deliberately left out of checkpoint state, so
//! forked runs under-count relative to cold runs).
//!
//! Every test in this binary flips `FTSIM_PLANT` on first — the flag is
//! read from the environment when a processor is built, so it must be
//! set before any simulation in this process. The fault-free tier-1
//! suites never set it, which is what keeps the plant invisible
//! everywhere else.

use std::path::Path;
use std::sync::OnceLock;

use ftsim_fuzz::{check_seed, load_repro, replay, save_repro, shrink, Invariant, SeedOutcome};

/// How many seeds the scan may need before the plant is caught. Seed 21
/// trips it today, but the bound (not the index) is the contract.
const SCAN: u64 = 32;

fn plant() {
    std::env::set_var("FTSIM_PLANT", "1");
}

/// First violating outcome in the scan range, computed once per process.
fn first_violation() -> &'static SeedOutcome {
    static FIRST: OnceLock<SeedOutcome> = OnceLock::new();
    FIRST.get_or_init(|| {
        plant();
        (0..SCAN)
            .map(|seed| check_seed(seed, None))
            .find(|o| o.violation.is_some())
            .expect("the planted defect must be caught within the scan range")
    })
}

#[test]
fn planted_defect_is_caught_as_forked_cold_divergence() {
    let outcome = first_violation();
    let v = outcome.violation.as_ref().expect("scan found a violation");
    assert_eq!(v.invariant, Invariant::ForkedColdIdentity);
    // The divergence is a record-field mismatch on a faulty cell of a
    // forked family, not a crash or an oracle error.
    assert!(v.rate_pm > 0.0, "plant diverges on forked (faulty) cells");
    assert!(!v.model.is_empty());
}

#[test]
fn shrinker_minimizes_program_and_plan() {
    plant();
    let outcome = first_violation();
    let repro = shrink(outcome, None).expect("violating outcome shrinks");
    assert_eq!(repro.invariant, Invariant::ForkedColdIdentity);

    let fp = repro.spec.generate();
    assert!(
        fp.emitted_blocks <= 12,
        "minimal program still emits {} blocks",
        fp.emitted_blocks
    );
    assert!(
        repro.spec.iterations <= 2,
        "minimal program still runs {} iterations",
        repro.spec.iterations
    );
    let plan = repro.plan.as_ref().expect(
        "a forked-cold divergence must pin an explicit fault plan \
         (the plant needs no fired fault, only a fork)",
    );
    assert!(
        plan.len() <= 1,
        "minimal plan still has {} events",
        plan.len()
    );

    // The minimal repro replays to the same verdict.
    let report = replay(&repro);
    assert!(
        report.reproduced,
        "minimal repro did not replay: {}",
        report.detail
    );
}

#[test]
fn shrinking_is_deterministic() {
    plant();
    let outcome = first_violation();
    let a = save_repro(&shrink(outcome, None).expect("shrinks"));
    let b = save_repro(&shrink(outcome, None).expect("shrinks"));
    assert_eq!(a, b, "same seed must shrink to a byte-identical repro");
}

#[test]
fn golden_repros_replay_to_their_pinned_verdicts() {
    plant();
    let dir = Path::new(env!("CARGO_MANIFEST_DIR")).join("../../tests/golden/repros");
    let mut entries: Vec<_> = std::fs::read_dir(&dir)
        .expect("golden repro directory exists")
        .map(|e| e.expect("readable dir entry").path())
        .filter(|p| p.extension().is_some_and(|e| e == "json"))
        .collect();
    entries.sort();
    assert!(!entries.is_empty(), "no golden repros checked in");
    for path in entries {
        let text = std::fs::read_to_string(&path).expect("readable repro");
        let repro = load_repro(&text).expect("parseable repro");
        let report = replay(&repro);
        assert!(
            report.reproduced,
            "{} no longer reproduces {}: {}",
            path.display(),
            repro.invariant.name(),
            report.detail
        );
    }
}
