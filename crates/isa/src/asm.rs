//! A small text assembler for writing kernels and examples.
//!
//! # Syntax
//!
//! ```text
//! ; full-line or trailing comments with `;` or `#`
//! start:                      ; labels end with `:`
//!     addi r1, r0, 10
//!     li   r2, 0x123456789    ; pseudo-instruction, expands as needed
//!     ld   r3, 8(r1)          ; memory operands are offset(base)
//!     sfd  f2, 0(r1)
//!     beq  r1, r0, done       ; branch targets are labels
//!     jal  r31, func          ; or `jal func` (links r31)
//!     j    start
//! done:
//!     halt
//! .u64 0x100000 1 2 3         ; data directives: address then values
//! .f64 0x100020 1.5 -2.5
//! ```
//!
//! # Examples
//!
//! ```
//! use ftsim_isa::{asm, Emulator, IntReg};
//!
//! let p = asm::assemble("addi r1, r0, 7\nhalt\n").unwrap();
//! let mut e = Emulator::new(&p);
//! e.run(10).unwrap();
//! assert_eq!(e.regs().read_int(IntReg::new(1)), 7);
//! ```

use crate::inst::Inst;
use crate::op::Opcode;
use crate::program::{BuildError, Program, ProgramBuilder};
use crate::reg::{IntReg, RegClass};
use std::fmt;

/// Assembly error with a 1-based source line number.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AsmError {
    /// 1-based line of the offending source.
    pub line: usize,
    /// Human-readable description.
    pub message: String,
}

impl fmt::Display for AsmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for AsmError {}

impl AsmError {
    fn new(line: usize, message: impl Into<String>) -> Self {
        Self {
            line,
            message: message.into(),
        }
    }
}

fn parse_int(tok: &str, line: usize) -> Result<i64, AsmError> {
    let t = tok.trim();
    let (neg, t) = match t.strip_prefix('-') {
        Some(rest) => (true, rest),
        None => (false, t),
    };
    let value = if let Some(hex) = t.strip_prefix("0x").or_else(|| t.strip_prefix("0X")) {
        i64::from_str_radix(hex, 16)
    } else {
        t.parse::<i64>()
    }
    .map_err(|_| AsmError::new(line, format!("invalid integer `{tok}`")))?;
    Ok(if neg { -value } else { value })
}

fn parse_imm32(tok: &str, line: usize) -> Result<i32, AsmError> {
    let v = parse_int(tok, line)?;
    i32::try_from(v).map_err(|_| AsmError::new(line, format!("immediate `{tok}` exceeds 32 bits")))
}

fn parse_reg(tok: &str, class: RegClass, line: usize) -> Result<u8, AsmError> {
    let t = tok.trim();
    let (prefix, want) = match class {
        RegClass::Int => ('r', "integer"),
        RegClass::Fp => ('f', "floating-point"),
    };
    let idx: u8 = t
        .strip_prefix(prefix)
        .and_then(|rest| rest.parse().ok())
        .filter(|&i| i < 32)
        .ok_or_else(|| AsmError::new(line, format!("expected {want} register, got `{t}`")))?;
    Ok(idx)
}

/// Parses `offset(base)` memory operand syntax.
fn parse_mem_operand(tok: &str, line: usize) -> Result<(i32, u8), AsmError> {
    let t = tok.trim();
    let open = t
        .find('(')
        .ok_or_else(|| AsmError::new(line, format!("expected offset(base), got `{t}`")))?;
    if !t.ends_with(')') {
        return Err(AsmError::new(
            line,
            format!("unclosed memory operand `{t}`"),
        ));
    }
    let off_str = &t[..open];
    let base_str = &t[open + 1..t.len() - 1];
    let offset = if off_str.trim().is_empty() {
        0
    } else {
        parse_imm32(off_str, line)?
    };
    let base = parse_reg(base_str, RegClass::Int, line)?;
    Ok((offset, base))
}

fn split_operands(rest: &str) -> Vec<&str> {
    rest.split(',')
        .map(str::trim)
        .filter(|s| !s.is_empty())
        .collect()
}

fn expect_operands(ops: &[&str], n: usize, mnemonic: &str, line: usize) -> Result<(), AsmError> {
    if ops.len() != n {
        Err(AsmError::new(
            line,
            format!("{mnemonic} expects {n} operand(s), got {}", ops.len()),
        ))
    } else {
        Ok(())
    }
}

/// Assembles source text into a [`Program`].
///
/// # Errors
///
/// Returns [`AsmError`] (with line number) for syntax errors, unknown
/// mnemonics, malformed operands, and label problems (undefined/duplicate
/// labels are reported on line 0 as they are detected at link time).
pub fn assemble(src: &str) -> Result<Program, AsmError> {
    let mut b = ProgramBuilder::new();
    for (i, raw_line) in src.lines().enumerate() {
        let line_no = i + 1;
        let line = raw_line.split([';', '#']).next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        let mut text = line;
        // Leading labels, possibly followed by an instruction.
        while let Some(colon) = text.find(':') {
            let (label, rest) = text.split_at(colon);
            let label = label.trim();
            if label.is_empty() || label.contains(char::is_whitespace) {
                return Err(AsmError::new(line_no, format!("bad label `{label}`")));
            }
            b.label(label);
            text = rest[1..].trim();
            if text.is_empty() {
                break;
            }
        }
        if text.is_empty() {
            continue;
        }
        if let Some(directive) = text.strip_prefix('.') {
            parse_directive(&mut b, directive, line_no)?;
            continue;
        }
        parse_instruction(&mut b, text, line_no)?;
    }
    b.build().map_err(|e| match e {
        BuildError::UndefinedLabel(l) => AsmError::new(0, format!("undefined label `{l}`")),
        BuildError::DuplicateLabel(l) => AsmError::new(0, format!("duplicate label `{l}`")),
        BuildError::OffsetOverflow { label } => {
            AsmError::new(0, format!("displacement to `{label}` overflows"))
        }
    })
}

fn parse_directive(b: &mut ProgramBuilder, directive: &str, line: usize) -> Result<(), AsmError> {
    let mut parts = directive.split_whitespace();
    let name = parts.next().unwrap_or("");
    let rest: Vec<&str> = parts.collect();
    match name {
        "u64" => {
            if rest.is_empty() {
                return Err(AsmError::new(line, ".u64 needs an address"));
            }
            let addr = parse_int(rest[0], line)? as u64;
            let words: Result<Vec<u64>, _> = rest[1..]
                .iter()
                .map(|t| parse_int(t, line).map(|v| v as u64))
                .collect();
            b.data_u64(addr, &words?);
            Ok(())
        }
        "f64" => {
            if rest.is_empty() {
                return Err(AsmError::new(line, ".f64 needs an address"));
            }
            let addr = parse_int(rest[0], line)? as u64;
            let vals: Result<Vec<f64>, _> = rest[1..]
                .iter()
                .map(|t| {
                    t.parse::<f64>()
                        .map_err(|_| AsmError::new(line, format!("invalid float `{t}`")))
                })
                .collect();
            b.data_f64(addr, &vals?);
            Ok(())
        }
        other => Err(AsmError::new(line, format!("unknown directive `.{other}`"))),
    }
}

fn parse_instruction(b: &mut ProgramBuilder, text: &str, line: usize) -> Result<(), AsmError> {
    let (mnemonic, rest) = match text.find(char::is_whitespace) {
        Some(ws) => (&text[..ws], text[ws..].trim()),
        None => (text, ""),
    };
    let ops = split_operands(rest);

    // `li` pseudo-instruction.
    if mnemonic == "li" {
        expect_operands(&ops, 2, "li", line)?;
        let rd = parse_reg(ops[0], RegClass::Int, line)?;
        let v = parse_int(ops[1], line)?;
        b.li(IntReg::new(rd), v);
        return Ok(());
    }

    let op = Opcode::from_mnemonic(mnemonic)
        .ok_or_else(|| AsmError::new(line, format!("unknown mnemonic `{mnemonic}`")))?;

    use Opcode::*;
    match op {
        Nop | Halt => {
            expect_operands(&ops, 0, mnemonic, line)?;
            b.inst(Inst::new(op, 0, 0, 0, 0));
        }
        J => {
            expect_operands(&ops, 1, mnemonic, line)?;
            b.inst_branch_to(Inst::new(op, 0, 0, 0, 0), ops[0]);
        }
        Jal => {
            // `jal label` or `jal rd, label`.
            let (rd, label) = match ops.as_slice() {
                [label] => (31, *label),
                [rd, label] => (parse_reg(rd, RegClass::Int, line)?, *label),
                _ => return Err(AsmError::new(line, "jal expects [rd,] label")),
            };
            b.inst_branch_to(Inst::new(op, rd, 0, 0, 0), label);
        }
        Jr => {
            expect_operands(&ops, 1, mnemonic, line)?;
            let rs = parse_reg(ops[0], RegClass::Int, line)?;
            b.inst(Inst::new(op, 0, rs, 0, 0));
        }
        Jalr => {
            expect_operands(&ops, 2, mnemonic, line)?;
            let rd = parse_reg(ops[0], RegClass::Int, line)?;
            let rs = parse_reg(ops[1], RegClass::Int, line)?;
            b.inst(Inst::new(op, rd, rs, 0, 0));
        }
        Lui => {
            expect_operands(&ops, 2, mnemonic, line)?;
            let rd = parse_reg(ops[0], RegClass::Int, line)?;
            let imm = parse_imm32(ops[1], line)?;
            b.inst(Inst::new(op, rd, 0, 0, imm));
        }
        Beq | Bne | Blt | Bge => {
            expect_operands(&ops, 3, mnemonic, line)?;
            let rs1 = parse_reg(ops[0], RegClass::Int, line)?;
            let rs2 = parse_reg(ops[1], RegClass::Int, line)?;
            b.inst_branch_to(Inst::new(op, 0, rs1, rs2, 0), ops[2]);
        }
        _ if op.is_load() => {
            expect_operands(&ops, 2, mnemonic, line)?;
            let rd_class = op.rd_class().expect("loads write a register");
            let rd = parse_reg(ops[0], rd_class, line)?;
            let (imm, base) = parse_mem_operand(ops[1], line)?;
            b.inst(Inst::new(op, rd, base, 0, imm));
        }
        _ if op.is_store() => {
            expect_operands(&ops, 2, mnemonic, line)?;
            let src_class = op.rs2_class().expect("stores read a data register");
            let src = parse_reg(ops[0], src_class, line)?;
            let (imm, base) = parse_mem_operand(ops[1], line)?;
            b.inst(Inst::new(op, 0, base, src, imm));
        }
        _ => {
            // Generic register/immediate forms driven by the opcode's classes.
            let rd_class = op.rd_class();
            let rs1_class = op.rs1_class();
            let rs2_class = op.rs2_class();
            let uses_imm = op.uses_imm();
            let n = usize::from(rd_class.is_some())
                + usize::from(rs1_class.is_some())
                + usize::from(rs2_class.is_some())
                + usize::from(uses_imm);
            expect_operands(&ops, n, mnemonic, line)?;
            let mut it = ops.iter();
            let rd = match rd_class {
                Some(c) => parse_reg(it.next().unwrap(), c, line)?,
                None => 0,
            };
            let rs1 = match rs1_class {
                Some(c) => parse_reg(it.next().unwrap(), c, line)?,
                None => 0,
            };
            let rs2 = match rs2_class {
                Some(c) => parse_reg(it.next().unwrap(), c, line)?,
                None => 0,
            };
            let imm = if uses_imm {
                parse_imm32(it.next().unwrap(), line)?
            } else {
                0
            };
            b.inst(Inst::new(op, rd, rs1, rs2, imm));
        }
    }
    Ok(())
}

/// Disassembles a program as one instruction per line with PC prefixes.
pub fn disassemble(program: &Program) -> String {
    let mut out = String::new();
    for (i, inst) in program.insts().iter().enumerate() {
        out.push_str(&format!("{:#08x}: {}\n", program.pc_of(i), inst));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::emulator::Emulator;
    use crate::program::DATA_BASE;
    use crate::reg::IntReg;

    #[test]
    fn assemble_and_run_loop() {
        let p = assemble(
            r"
            ; sum 1..=4
                addi r1, r0, 4
                addi r2, r0, 0
            loop: add r2, r2, r1
                addi r1, r1, -1
                bne r1, r0, loop
                halt
            ",
        )
        .unwrap();
        let mut e = Emulator::new(&p);
        e.run(1000).unwrap();
        assert_eq!(e.regs().read_int(IntReg::new(2)), 10);
    }

    #[test]
    fn memory_and_data_directives() {
        let p = assemble(&format!(
            r"
                li r1, {DATA_BASE}
                ld r2, 0(r1)
                lfd f1, 8(r1)
                fadd f1, f1, f1
                sfd f1, 16(r1)
                sd r2, 24(r1)
                halt
            .u64 {DATA_BASE} 41
            .f64 {} 1.25
            ",
            DATA_BASE + 8
        ))
        .unwrap();
        let mut e = Emulator::new(&p);
        e.run(1000).unwrap();
        assert_eq!(e.mem().read_u64(DATA_BASE + 24), 41);
        assert_eq!(f64::from_bits(e.mem().read_u64(DATA_BASE + 16)), 2.5);
    }

    #[test]
    fn jal_both_forms() {
        let p = assemble(
            r"
                jal fn1
                jal r30, fn1
                halt
            fn1:
                jr r31
            ",
        );
        // Second jal links r30 and returns through r31 — stuck? r31 set by
        // first jal to pc of second jal... The program structure is valid
        // assembly; execution correctness is not the point of this test.
        assert!(p.is_ok());
        let p = p.unwrap();
        assert_eq!(p.insts()[0].rd, 31);
        assert_eq!(p.insts()[1].rd, 30);
    }

    #[test]
    fn hex_and_negative_immediates() {
        let p = assemble("addi r1, r0, -0x10\nhalt\n").unwrap();
        assert_eq!(p.insts()[0].imm, -16);
    }

    #[test]
    fn error_reports_line() {
        let err = assemble("nop\nbogus r1\n").unwrap_err();
        assert_eq!(err.line, 2);
        assert!(err.message.contains("bogus"));
    }

    #[test]
    fn wrong_operand_count() {
        let err = assemble("add r1, r2\n").unwrap_err();
        assert!(err.message.contains("expects 3"));
    }

    #[test]
    fn wrong_register_class() {
        let err = assemble("fadd f1, r2, f3\n").unwrap_err();
        assert!(err.message.contains("floating-point"));
    }

    #[test]
    fn undefined_label_reported() {
        let err = assemble("j nowhere\n").unwrap_err();
        assert!(err.message.contains("undefined"));
    }

    #[test]
    fn bad_memory_operand() {
        let err = assemble("ld r1, 8[r2]\n").unwrap_err();
        assert!(err.message.contains("offset(base)"));
    }

    #[test]
    fn disassemble_lists_every_inst() {
        let p = assemble("addi r1, r0, 1\nhalt\n").unwrap();
        let text = disassemble(&p);
        assert_eq!(text.lines().count(), 2);
        assert!(text.contains("addi r1, r0, 1"));
        assert!(text.contains("halt"));
    }

    #[test]
    fn empty_offset_memory_operand() {
        let p = assemble("ld r1, (r2)\nhalt\n").unwrap();
        assert_eq!(p.insts()[0].imm, 0);
    }
}
