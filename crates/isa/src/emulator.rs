//! The in-order, non-speculative reference emulator (architectural oracle).
//!
//! The paper's methodology (§5.1.1) maintains two sets of committed state:
//! one produced by the out-of-order pipeline and one "updated by executing
//! the program in an in-order, non-speculative manner" as a sanity check.
//! This emulator is that second machine. Integration tests compare its
//! final registers and memory against the pipeline's committed state — with
//! fault injection enabled, any divergence means a fault escaped the sphere
//! of replication.

use crate::exec::{execute, load_extend, next_pc};
use crate::inst::Inst;
use crate::program::Program;
use crate::reg::ArchRegs;
use ftsim_mem::SparseMemory;
use std::fmt;

/// Error conditions of the reference emulator.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EmuError {
    /// The PC left the text segment (fell off the end or jumped wild).
    PcOutOfText {
        /// The offending program counter.
        pc: u64,
    },
    /// The step budget was exhausted before `halt` retired.
    StepLimit {
        /// Instructions executed before giving up.
        executed: u64,
    },
    /// `step` was called after the program halted.
    AlreadyHalted,
}

impl fmt::Display for EmuError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EmuError::PcOutOfText { pc } => write!(f, "pc {pc:#x} outside text segment"),
            EmuError::StepLimit { executed } => {
                write!(f, "step limit reached after {executed} instructions")
            }
            EmuError::AlreadyHalted => write!(f, "program already halted"),
        }
    }
}

impl std::error::Error for EmuError {}

/// What one emulated step did — useful for tracing and for tests that walk
/// the committed-PC chain.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StepInfo {
    /// PC of the executed instruction.
    pub pc: u64,
    /// The executed instruction.
    pub inst: Inst,
    /// Architectural next PC.
    pub next_pc: u64,
    /// Whether this step executed `halt`.
    pub halted: bool,
}

/// In-order interpreter over a [`Program`].
///
/// # Examples
///
/// ```
/// use ftsim_isa::{Emulator, IntReg, ProgramBuilder};
///
/// let r1 = IntReg::new(1);
/// let mut b = ProgramBuilder::new();
/// b.addi(r1, IntReg::ZERO, 2);
/// b.mul(r1, r1, r1);
/// b.halt();
/// let p = b.build().unwrap();
///
/// let mut emu = Emulator::new(&p);
/// let retired = emu.run(100).unwrap();
/// assert_eq!(retired, 3);
/// assert_eq!(emu.regs().read_int(r1), 4);
/// ```
#[derive(Debug, Clone)]
pub struct Emulator {
    program: Program,
    regs: ArchRegs,
    mem: SparseMemory,
    pc: u64,
    retired: u64,
    halted: bool,
}

impl Emulator {
    /// Creates an emulator with the program's data image loaded and the PC
    /// at the entry point.
    pub fn new(program: &Program) -> Self {
        let mut mem = SparseMemory::new();
        program.load_data(&mut mem);
        Self {
            pc: program.entry(),
            program: program.clone(),
            regs: ArchRegs::new(),
            mem,
            retired: 0,
            halted: false,
        }
    }

    /// Committed registers.
    pub fn regs(&self) -> &ArchRegs {
        &self.regs
    }

    /// Committed memory.
    pub fn mem(&self) -> &SparseMemory {
        &self.mem
    }

    /// Current PC.
    pub fn pc(&self) -> u64 {
        self.pc
    }

    /// Instructions retired so far.
    pub fn retired(&self) -> u64 {
        self.retired
    }

    /// Whether `halt` has retired.
    pub fn halted(&self) -> bool {
        self.halted
    }

    /// Executes one instruction.
    ///
    /// # Errors
    ///
    /// * [`EmuError::AlreadyHalted`] after `halt` retired;
    /// * [`EmuError::PcOutOfText`] if the PC leaves the text segment.
    pub fn step(&mut self) -> Result<StepInfo, EmuError> {
        if self.halted {
            return Err(EmuError::AlreadyHalted);
        }
        let pc = self.pc;
        let inst = *self
            .program
            .inst_at(pc)
            .ok_or(EmuError::PcOutOfText { pc })?;
        let rs1 = inst.rs1().map_or(0, |r| self.regs.read(r));
        let rs2 = inst.rs2().map_or(0, |r| self.regs.read(r));
        let out = execute(&inst, pc, rs1, rs2);

        if inst.op.is_load() {
            let ea = out.ea.expect("load computes an address");
            let raw = self.mem.read_sized(ea, inst.op.mem_bytes());
            let value = load_extend(inst.op, raw);
            if let Some(rd) = inst.rd() {
                self.regs.write(rd, value);
            }
        } else if inst.op.is_store() {
            let ea = out.ea.expect("store computes an address");
            let value = out.store_value.expect("store carries a value");
            self.mem.write_sized(ea, value, inst.op.mem_bytes());
        } else if let (Some(rd), Some(v)) = (inst.rd(), out.result) {
            self.regs.write(rd, v);
        }

        let npc = next_pc(pc, &out);
        self.pc = npc;
        self.retired += 1;
        self.halted = out.halt;
        Ok(StepInfo {
            pc,
            inst,
            next_pc: npc,
            halted: out.halt,
        })
    }

    /// Runs until `halt` retires, returning the retired-instruction count.
    ///
    /// # Errors
    ///
    /// [`EmuError::StepLimit`] if `max_steps` instructions execute without
    /// halting, or any error from [`Emulator::step`].
    pub fn run(&mut self, max_steps: u64) -> Result<u64, EmuError> {
        let mut steps = 0;
        while !self.halted {
            if steps >= max_steps {
                return Err(EmuError::StepLimit { executed: steps });
            }
            self.step()?;
            steps += 1;
        }
        Ok(self.retired)
    }

    /// Runs exactly `n` further instructions (or until halt), returning how
    /// many executed. Used for lock-step comparison against the pipeline.
    pub fn run_steps(&mut self, n: u64) -> Result<u64, EmuError> {
        let mut executed = 0;
        while executed < n && !self.halted {
            self.step()?;
            executed += 1;
        }
        Ok(executed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::program::{ProgramBuilder, DATA_BASE};
    use crate::reg::{FpReg, IntReg};

    fn r(i: u8) -> IntReg {
        IntReg::new(i)
    }

    fn fr(i: u8) -> FpReg {
        FpReg::new(i)
    }

    #[test]
    fn loop_with_memory() {
        // Sum an array of 5 values through memory.
        let mut b = ProgramBuilder::new();
        b.li(r(1), DATA_BASE as i64); // base
        b.addi(r(2), IntReg::ZERO, 5); // count
        b.addi(r(3), IntReg::ZERO, 0); // sum
        b.label("loop");
        b.ld(r(4), r(1), 0);
        b.add(r(3), r(3), r(4));
        b.addi(r(1), r(1), 8);
        b.addi(r(2), r(2), -1);
        b.bne(r(2), IntReg::ZERO, "loop");
        b.sd(r(3), r(1), 0); // store just past the array
        b.halt();
        b.data_u64(DATA_BASE, &[10, 20, 30, 40, 50]);
        let p = b.build().unwrap();

        let mut e = Emulator::new(&p);
        e.run(10_000).unwrap();
        assert_eq!(e.regs().read_int(r(3)), 150);
        assert_eq!(e.mem().read_u64(DATA_BASE + 40), 150);
    }

    #[test]
    fn call_and_return() {
        let mut b = ProgramBuilder::new();
        b.jal(r(31), "func");
        b.addi(r(2), IntReg::ZERO, 1); // after return
        b.halt();
        b.label("func");
        b.addi(r(3), IntReg::ZERO, 9);
        b.jr(r(31));
        let p = b.build().unwrap();
        let mut e = Emulator::new(&p);
        e.run(100).unwrap();
        assert_eq!(e.regs().read_int(r(2)), 1);
        assert_eq!(e.regs().read_int(r(3)), 9);
        assert_eq!(e.retired(), 5);
    }

    #[test]
    fn fp_pipeline_roundtrip() {
        let mut b = ProgramBuilder::new();
        b.data_f64(DATA_BASE, &[2.0, 8.0]);
        b.li(r(1), DATA_BASE as i64);
        b.lfd(fr(1), r(1), 0);
        b.lfd(fr(2), r(1), 8);
        b.fmul(fr(3), fr(1), fr(2)); // 16
        b.fsqrt(fr(3), fr(3)); // 4
        b.fdiv(fr(4), fr(3), fr(1)); // 2
        b.cvtfi(r(2), fr(4));
        b.sfd(fr(4), r(1), 16);
        b.halt();
        let p = b.build().unwrap();
        let mut e = Emulator::new(&p);
        e.run(100).unwrap();
        assert_eq!(e.regs().read_int(r(2)), 2);
        assert_eq!(f64::from_bits(e.mem().read_u64(DATA_BASE + 16)), 2.0);
    }

    #[test]
    fn pc_out_of_text_detected() {
        // Fall off the end without halt.
        let p = Program::from_insts([Inst::nop()]);
        let mut e = Emulator::new(&p);
        e.step().unwrap();
        assert_eq!(
            e.step().unwrap_err(),
            EmuError::PcOutOfText { pc: p.text_end() }
        );
    }

    #[test]
    fn step_limit_enforced() {
        let mut b = ProgramBuilder::new();
        b.label("spin");
        b.j("spin");
        let p = b.build().unwrap();
        let mut e = Emulator::new(&p);
        assert_eq!(e.run(10), Err(EmuError::StepLimit { executed: 10 }));
    }

    #[test]
    fn step_after_halt_errors() {
        let p = Program::from_insts([Inst::halt()]);
        let mut e = Emulator::new(&p);
        let info = e.step().unwrap();
        assert!(info.halted);
        assert!(e.halted());
        assert_eq!(e.step().unwrap_err(), EmuError::AlreadyHalted);
    }

    #[test]
    fn run_steps_stops_at_halt() {
        let p = Program::from_insts([Inst::nop(), Inst::nop(), Inst::halt()]);
        let mut e = Emulator::new(&p);
        assert_eq!(e.run_steps(2).unwrap(), 2);
        assert!(!e.halted());
        assert_eq!(e.run_steps(10).unwrap(), 1);
        assert!(e.halted());
        assert_eq!(e.retired(), 3);
    }

    #[test]
    fn byte_and_word_stores() {
        let mut b = ProgramBuilder::new();
        b.li(r(1), DATA_BASE as i64);
        b.li(r(2), -2); // 0xfff...fe
        b.sb(r(2), r(1), 0);
        b.sw(r(2), r(1), 8);
        b.lb(r(3), r(1), 0); // sign-extended byte
        b.lw(r(4), r(1), 8); // sign-extended word
        b.halt();
        let p = b.build().unwrap();
        let mut e = Emulator::new(&p);
        e.run(100).unwrap();
        assert_eq!(e.regs().read_int(r(3)) as i64, -2);
        assert_eq!(e.regs().read_int(r(4)) as i64, -2);
        // Only one byte written at offset 0.
        assert_eq!(e.mem().read_u64(DATA_BASE), 0xfe);
    }
}
