//! Binary instruction encoding.
//!
//! Instructions encode into a fixed 64-bit word:
//!
//! ```text
//! bits  0..8   opcode
//! bits  8..16  rd
//! bits 16..24  rs1
//! bits 24..32  rs2
//! bits 32..64  imm (two's-complement)
//! ```
//!
//! The architectural PC still advances by [`INST_BYTES`](crate::INST_BYTES)
//! (4) per instruction — the simulator fetches decoded instructions from the
//! [`Program`](crate::Program) image, and the binary form exists for storage
//! and for the encode/decode round-trip property tests.

use crate::inst::Inst;
use crate::op::Opcode;
use std::fmt;

/// Error produced when decoding an invalid instruction word.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DecodeError {
    /// The opcode byte does not name a valid opcode.
    BadOpcode(u8),
    /// A register field used by this opcode is out of range.
    BadRegister {
        /// The offending opcode.
        op: Opcode,
        /// The raw register field value.
        field: u8,
    },
}

impl fmt::Display for DecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DecodeError::BadOpcode(b) => write!(f, "invalid opcode byte {b:#04x}"),
            DecodeError::BadRegister { op, field } => {
                write!(f, "register field {field} out of range for {op}")
            }
        }
    }
}

impl std::error::Error for DecodeError {}

/// Encodes an instruction into its 64-bit binary form.
///
/// # Examples
///
/// ```
/// use ftsim_isa::{decode, encode, Inst, Opcode};
///
/// let i = Inst::new(Opcode::Addi, 1, 2, 0, -7);
/// assert_eq!(decode(encode(&i)).unwrap(), i);
/// ```
pub fn encode(inst: &Inst) -> u64 {
    (inst.op as u8 as u64)
        | (u64::from(inst.rd) << 8)
        | (u64::from(inst.rs1) << 16)
        | (u64::from(inst.rs2) << 24)
        | ((inst.imm as u32 as u64) << 32)
}

/// Decodes a 64-bit instruction word.
///
/// # Errors
///
/// Returns [`DecodeError::BadOpcode`] for an unknown opcode byte and
/// [`DecodeError::BadRegister`] when a register field *used by that opcode*
/// is ≥ 32 (unused fields are ignored, matching [`Inst`]'s validation).
pub fn decode(word: u64) -> Result<Inst, DecodeError> {
    let op_byte = (word & 0xff) as u8;
    let op = *Opcode::ALL
        .get(op_byte as usize)
        .ok_or(DecodeError::BadOpcode(op_byte))?;
    let rd = ((word >> 8) & 0xff) as u8;
    let rs1 = ((word >> 16) & 0xff) as u8;
    let rs2 = ((word >> 24) & 0xff) as u8;
    let imm = ((word >> 32) as u32) as i32;
    for (class, field) in [
        (op.rd_class(), rd),
        (op.rs1_class(), rs1),
        (op.rs2_class(), rs2),
    ] {
        if class.is_some() && field >= 32 {
            return Err(DecodeError::BadRegister { op, field });
        }
    }
    Ok(Inst {
        op,
        rd,
        rs1,
        rs2,
        imm,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_every_opcode() {
        for &op in Opcode::ALL {
            let inst = Inst {
                op,
                rd: 3,
                rs1: 7,
                rs2: 11,
                imm: -12345,
            };
            let back = decode(encode(&inst)).unwrap();
            assert_eq!(back, inst, "{op}");
        }
    }

    #[test]
    fn imm_extremes_roundtrip() {
        for imm in [i32::MIN, -1, 0, 1, i32::MAX] {
            let inst = Inst::new(Opcode::Addi, 1, 2, 0, imm);
            assert_eq!(decode(encode(&inst)).unwrap().imm, imm);
        }
    }

    #[test]
    fn bad_opcode_rejected() {
        let word = 0xfeu64;
        assert_eq!(decode(word), Err(DecodeError::BadOpcode(0xfe)));
    }

    #[test]
    fn bad_register_rejected_only_when_used() {
        // Add uses all three register fields.
        let bad = (Opcode::Add as u8 as u64) | (40u64 << 8);
        assert!(matches!(
            decode(bad),
            Err(DecodeError::BadRegister {
                op: Opcode::Add,
                field: 40
            })
        ));
        // Nop ignores register fields entirely.
        let ok = (Opcode::Nop as u8 as u64) | (40u64 << 8);
        assert!(decode(ok).is_ok());
    }

    #[test]
    fn error_display() {
        let e = DecodeError::BadOpcode(200);
        assert!(e.to_string().contains("0xc8"));
    }
}
